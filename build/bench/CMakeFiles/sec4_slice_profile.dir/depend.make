# Empty dependencies file for sec4_slice_profile.
# This may be replaced when dependencies are built.
