file(REMOVE_RECURSE
  "CMakeFiles/sec4_slice_profile.dir/sec4_slice_profile.cpp.o"
  "CMakeFiles/sec4_slice_profile.dir/sec4_slice_profile.cpp.o.d"
  "sec4_slice_profile"
  "sec4_slice_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_slice_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
