file(REMOVE_RECURSE
  "CMakeFiles/sec66_load_balance.dir/sec66_load_balance.cpp.o"
  "CMakeFiles/sec66_load_balance.dir/sec66_load_balance.cpp.o.d"
  "sec66_load_balance"
  "sec66_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec66_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
