# Empty compiler generated dependencies file for sec66_load_balance.
# This may be replaced when dependencies are built.
