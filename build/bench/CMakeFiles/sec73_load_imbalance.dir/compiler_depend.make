# Empty compiler generated dependencies file for sec73_load_imbalance.
# This may be replaced when dependencies are built.
