file(REMOVE_RECURSE
  "CMakeFiles/sec73_load_imbalance.dir/sec73_load_imbalance.cpp.o"
  "CMakeFiles/sec73_load_imbalance.dir/sec73_load_imbalance.cpp.o.d"
  "sec73_load_imbalance"
  "sec73_load_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec73_load_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
