file(REMOVE_RECURSE
  "CMakeFiles/sec75_fp_programs.dir/sec75_fp_programs.cpp.o"
  "CMakeFiles/sec75_fp_programs.dir/sec75_fp_programs.cpp.o.d"
  "sec75_fp_programs"
  "sec75_fp_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec75_fp_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
