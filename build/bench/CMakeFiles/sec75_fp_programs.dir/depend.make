# Empty dependencies file for sec75_fp_programs.
# This may be replaced when dependencies are built.
