# Empty compiler generated dependencies file for table1_machine_params.
# This may be replaced when dependencies are built.
