# Empty dependencies file for ext_fp_args.
# This may be replaced when dependencies are built.
