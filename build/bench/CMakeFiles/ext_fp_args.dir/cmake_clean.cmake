file(REMOVE_RECURSE
  "CMakeFiles/ext_fp_args.dir/ext_fp_args.cpp.o"
  "CMakeFiles/ext_fp_args.dir/ext_fp_args.cpp.o.d"
  "ext_fp_args"
  "ext_fp_args.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fp_args.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
