# Empty dependencies file for fig8_partition_size.
# This may be replaced when dependencies are built.
