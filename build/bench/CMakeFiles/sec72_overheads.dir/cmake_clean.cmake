file(REMOVE_RECURSE
  "CMakeFiles/sec72_overheads.dir/sec72_overheads.cpp.o"
  "CMakeFiles/sec72_overheads.dir/sec72_overheads.cpp.o.d"
  "sec72_overheads"
  "sec72_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec72_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
