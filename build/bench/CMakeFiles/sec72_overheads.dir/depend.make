# Empty dependencies file for sec72_overheads.
# This may be replaced when dependencies are built.
