file(REMOVE_RECURSE
  "CMakeFiles/fig9_speedup_4way.dir/fig9_speedup_4way.cpp.o"
  "CMakeFiles/fig9_speedup_4way.dir/fig9_speedup_4way.cpp.o.d"
  "fig9_speedup_4way"
  "fig9_speedup_4way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_speedup_4way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
