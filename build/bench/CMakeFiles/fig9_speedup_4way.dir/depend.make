# Empty dependencies file for fig9_speedup_4way.
# This may be replaced when dependencies are built.
