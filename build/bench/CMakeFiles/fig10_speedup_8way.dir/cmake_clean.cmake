file(REMOVE_RECURSE
  "CMakeFiles/fig10_speedup_8way.dir/fig10_speedup_8way.cpp.o"
  "CMakeFiles/fig10_speedup_8way.dir/fig10_speedup_8way.cpp.o.d"
  "fig10_speedup_8way"
  "fig10_speedup_8way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_speedup_8way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
