# Empty compiler generated dependencies file for fig10_speedup_8way.
# This may be replaced when dependencies are built.
