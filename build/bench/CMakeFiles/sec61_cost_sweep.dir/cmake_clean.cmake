file(REMOVE_RECURSE
  "CMakeFiles/sec61_cost_sweep.dir/sec61_cost_sweep.cpp.o"
  "CMakeFiles/sec61_cost_sweep.dir/sec61_cost_sweep.cpp.o.d"
  "sec61_cost_sweep"
  "sec61_cost_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec61_cost_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
