# Empty dependencies file for sec61_cost_sweep.
# This may be replaced when dependencies are built.
