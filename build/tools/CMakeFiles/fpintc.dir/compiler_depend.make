# Empty compiler generated dependencies file for fpintc.
# This may be replaced when dependencies are built.
