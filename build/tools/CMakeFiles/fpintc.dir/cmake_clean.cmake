file(REMOVE_RECURSE
  "CMakeFiles/fpintc.dir/fpintc.cpp.o"
  "CMakeFiles/fpintc.dir/fpintc.cpp.o.d"
  "fpintc"
  "fpintc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpintc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
