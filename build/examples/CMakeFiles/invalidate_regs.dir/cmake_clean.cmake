file(REMOVE_RECURSE
  "CMakeFiles/invalidate_regs.dir/invalidate_regs.cpp.o"
  "CMakeFiles/invalidate_regs.dir/invalidate_regs.cpp.o.d"
  "invalidate_regs"
  "invalidate_regs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invalidate_regs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
