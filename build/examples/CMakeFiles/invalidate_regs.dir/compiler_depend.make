# Empty compiler generated dependencies file for invalidate_regs.
# This may be replaced when dependencies are built.
