file(REMOVE_RECURSE
  "CMakeFiles/vector_sum.dir/vector_sum.cpp.o"
  "CMakeFiles/vector_sum.dir/vector_sum.cpp.o.d"
  "vector_sum"
  "vector_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
