# Empty compiler generated dependencies file for vector_sum.
# This may be replaced when dependencies are built.
