file(REMOVE_RECURSE
  "CMakeFiles/pipeline_speedup.dir/pipeline_speedup.cpp.o"
  "CMakeFiles/pipeline_speedup.dir/pipeline_speedup.cpp.o.d"
  "pipeline_speedup"
  "pipeline_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
