# Empty compiler generated dependencies file for pipeline_speedup.
# This may be replaced when dependencies are built.
