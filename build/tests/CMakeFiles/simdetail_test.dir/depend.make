# Empty dependencies file for simdetail_test.
# This may be replaced when dependencies are built.
