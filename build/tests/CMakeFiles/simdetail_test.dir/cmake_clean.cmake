file(REMOVE_RECURSE
  "CMakeFiles/simdetail_test.dir/SimulatorDetailTest.cpp.o"
  "CMakeFiles/simdetail_test.dir/SimulatorDetailTest.cpp.o.d"
  "simdetail_test"
  "simdetail_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdetail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
