file(REMOVE_RECURSE
  "CMakeFiles/fpargs_test.dir/FpArgPassingTest.cpp.o"
  "CMakeFiles/fpargs_test.dir/FpArgPassingTest.cpp.o.d"
  "fpargs_test"
  "fpargs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpargs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
