# Empty compiler generated dependencies file for fpargs_test.
# This may be replaced when dependencies are built.
