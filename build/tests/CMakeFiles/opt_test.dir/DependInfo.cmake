
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/OptTest.cpp" "tests/CMakeFiles/opt_test.dir/OptTest.cpp.o" "gcc" "tests/CMakeFiles/opt_test.dir/OptTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fpint_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/fpint_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/fpint_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/fpint_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/fpint_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fpint_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fpint_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/fpint_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sir/CMakeFiles/fpint_sir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fpint_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
