file(REMOVE_RECURSE
  "CMakeFiles/examples_test.dir/ExamplesTest.cpp.o"
  "CMakeFiles/examples_test.dir/ExamplesTest.cpp.o.d"
  "examples_test"
  "examples_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
