# Empty dependencies file for parserfuzz_test.
# This may be replaced when dependencies are built.
