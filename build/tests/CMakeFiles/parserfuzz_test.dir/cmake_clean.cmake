file(REMOVE_RECURSE
  "CMakeFiles/parserfuzz_test.dir/ParserFuzzTest.cpp.o"
  "CMakeFiles/parserfuzz_test.dir/ParserFuzzTest.cpp.o.d"
  "parserfuzz_test"
  "parserfuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parserfuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
