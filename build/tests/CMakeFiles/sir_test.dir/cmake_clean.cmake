file(REMOVE_RECURSE
  "CMakeFiles/sir_test.dir/SirTest.cpp.o"
  "CMakeFiles/sir_test.dir/SirTest.cpp.o.d"
  "sir_test"
  "sir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
