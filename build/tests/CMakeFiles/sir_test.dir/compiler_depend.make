# Empty compiler generated dependencies file for sir_test.
# This may be replaced when dependencies are built.
