file(REMOVE_RECURSE
  "CMakeFiles/fpint_vm.dir/VM.cpp.o"
  "CMakeFiles/fpint_vm.dir/VM.cpp.o.d"
  "libfpint_vm.a"
  "libfpint_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpint_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
