file(REMOVE_RECURSE
  "libfpint_vm.a"
)
