# Empty dependencies file for fpint_vm.
# This may be replaced when dependencies are built.
