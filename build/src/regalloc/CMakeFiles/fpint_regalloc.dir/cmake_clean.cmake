file(REMOVE_RECURSE
  "CMakeFiles/fpint_regalloc.dir/Liveness.cpp.o"
  "CMakeFiles/fpint_regalloc.dir/Liveness.cpp.o.d"
  "CMakeFiles/fpint_regalloc.dir/RegAlloc.cpp.o"
  "CMakeFiles/fpint_regalloc.dir/RegAlloc.cpp.o.d"
  "libfpint_regalloc.a"
  "libfpint_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpint_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
