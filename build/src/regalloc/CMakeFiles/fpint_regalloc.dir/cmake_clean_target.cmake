file(REMOVE_RECURSE
  "libfpint_regalloc.a"
)
