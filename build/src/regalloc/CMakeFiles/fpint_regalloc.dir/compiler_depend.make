# Empty compiler generated dependencies file for fpint_regalloc.
# This may be replaced when dependencies are built.
