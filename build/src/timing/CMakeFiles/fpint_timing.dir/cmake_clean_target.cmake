file(REMOVE_RECURSE
  "libfpint_timing.a"
)
