# Empty compiler generated dependencies file for fpint_timing.
# This may be replaced when dependencies are built.
