file(REMOVE_RECURSE
  "CMakeFiles/fpint_timing.dir/BranchPredictor.cpp.o"
  "CMakeFiles/fpint_timing.dir/BranchPredictor.cpp.o.d"
  "CMakeFiles/fpint_timing.dir/Cache.cpp.o"
  "CMakeFiles/fpint_timing.dir/Cache.cpp.o.d"
  "CMakeFiles/fpint_timing.dir/Simulator.cpp.o"
  "CMakeFiles/fpint_timing.dir/Simulator.cpp.o.d"
  "libfpint_timing.a"
  "libfpint_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpint_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
