file(REMOVE_RECURSE
  "CMakeFiles/fpint_partition.dir/AdvancedPartitioner.cpp.o"
  "CMakeFiles/fpint_partition.dir/AdvancedPartitioner.cpp.o.d"
  "CMakeFiles/fpint_partition.dir/Assignment.cpp.o"
  "CMakeFiles/fpint_partition.dir/Assignment.cpp.o.d"
  "CMakeFiles/fpint_partition.dir/BasicPartitioner.cpp.o"
  "CMakeFiles/fpint_partition.dir/BasicPartitioner.cpp.o.d"
  "CMakeFiles/fpint_partition.dir/CostModel.cpp.o"
  "CMakeFiles/fpint_partition.dir/CostModel.cpp.o.d"
  "CMakeFiles/fpint_partition.dir/DotExport.cpp.o"
  "CMakeFiles/fpint_partition.dir/DotExport.cpp.o.d"
  "CMakeFiles/fpint_partition.dir/FpArgPassing.cpp.o"
  "CMakeFiles/fpint_partition.dir/FpArgPassing.cpp.o.d"
  "CMakeFiles/fpint_partition.dir/Partitioner.cpp.o"
  "CMakeFiles/fpint_partition.dir/Partitioner.cpp.o.d"
  "CMakeFiles/fpint_partition.dir/Rewriter.cpp.o"
  "CMakeFiles/fpint_partition.dir/Rewriter.cpp.o.d"
  "libfpint_partition.a"
  "libfpint_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpint_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
