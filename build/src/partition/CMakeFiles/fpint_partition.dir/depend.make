# Empty dependencies file for fpint_partition.
# This may be replaced when dependencies are built.
