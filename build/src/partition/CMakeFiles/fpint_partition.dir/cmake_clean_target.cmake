file(REMOVE_RECURSE
  "libfpint_partition.a"
)
