
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/AdvancedPartitioner.cpp" "src/partition/CMakeFiles/fpint_partition.dir/AdvancedPartitioner.cpp.o" "gcc" "src/partition/CMakeFiles/fpint_partition.dir/AdvancedPartitioner.cpp.o.d"
  "/root/repo/src/partition/Assignment.cpp" "src/partition/CMakeFiles/fpint_partition.dir/Assignment.cpp.o" "gcc" "src/partition/CMakeFiles/fpint_partition.dir/Assignment.cpp.o.d"
  "/root/repo/src/partition/BasicPartitioner.cpp" "src/partition/CMakeFiles/fpint_partition.dir/BasicPartitioner.cpp.o" "gcc" "src/partition/CMakeFiles/fpint_partition.dir/BasicPartitioner.cpp.o.d"
  "/root/repo/src/partition/CostModel.cpp" "src/partition/CMakeFiles/fpint_partition.dir/CostModel.cpp.o" "gcc" "src/partition/CMakeFiles/fpint_partition.dir/CostModel.cpp.o.d"
  "/root/repo/src/partition/DotExport.cpp" "src/partition/CMakeFiles/fpint_partition.dir/DotExport.cpp.o" "gcc" "src/partition/CMakeFiles/fpint_partition.dir/DotExport.cpp.o.d"
  "/root/repo/src/partition/FpArgPassing.cpp" "src/partition/CMakeFiles/fpint_partition.dir/FpArgPassing.cpp.o" "gcc" "src/partition/CMakeFiles/fpint_partition.dir/FpArgPassing.cpp.o.d"
  "/root/repo/src/partition/Partitioner.cpp" "src/partition/CMakeFiles/fpint_partition.dir/Partitioner.cpp.o" "gcc" "src/partition/CMakeFiles/fpint_partition.dir/Partitioner.cpp.o.d"
  "/root/repo/src/partition/Rewriter.cpp" "src/partition/CMakeFiles/fpint_partition.dir/Rewriter.cpp.o" "gcc" "src/partition/CMakeFiles/fpint_partition.dir/Rewriter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/fpint_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sir/CMakeFiles/fpint_sir.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/fpint_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fpint_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
