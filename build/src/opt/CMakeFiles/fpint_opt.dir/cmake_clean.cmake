file(REMOVE_RECURSE
  "CMakeFiles/fpint_opt.dir/Passes.cpp.o"
  "CMakeFiles/fpint_opt.dir/Passes.cpp.o.d"
  "libfpint_opt.a"
  "libfpint_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpint_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
