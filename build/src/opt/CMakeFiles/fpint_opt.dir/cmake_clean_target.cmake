file(REMOVE_RECURSE
  "libfpint_opt.a"
)
