# Empty compiler generated dependencies file for fpint_opt.
# This may be replaced when dependencies are built.
