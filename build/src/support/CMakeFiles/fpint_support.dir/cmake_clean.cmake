file(REMOVE_RECURSE
  "CMakeFiles/fpint_support.dir/Rng.cpp.o"
  "CMakeFiles/fpint_support.dir/Rng.cpp.o.d"
  "CMakeFiles/fpint_support.dir/Table.cpp.o"
  "CMakeFiles/fpint_support.dir/Table.cpp.o.d"
  "libfpint_support.a"
  "libfpint_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpint_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
