# Empty compiler generated dependencies file for fpint_support.
# This may be replaced when dependencies are built.
