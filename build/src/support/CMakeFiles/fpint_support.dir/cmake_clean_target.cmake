file(REMOVE_RECURSE
  "libfpint_support.a"
)
