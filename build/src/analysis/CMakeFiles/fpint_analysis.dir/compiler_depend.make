# Empty compiler generated dependencies file for fpint_analysis.
# This may be replaced when dependencies are built.
