file(REMOVE_RECURSE
  "CMakeFiles/fpint_analysis.dir/CFG.cpp.o"
  "CMakeFiles/fpint_analysis.dir/CFG.cpp.o.d"
  "CMakeFiles/fpint_analysis.dir/ExecutionEstimate.cpp.o"
  "CMakeFiles/fpint_analysis.dir/ExecutionEstimate.cpp.o.d"
  "CMakeFiles/fpint_analysis.dir/RDG.cpp.o"
  "CMakeFiles/fpint_analysis.dir/RDG.cpp.o.d"
  "CMakeFiles/fpint_analysis.dir/ReachingDefs.cpp.o"
  "CMakeFiles/fpint_analysis.dir/ReachingDefs.cpp.o.d"
  "libfpint_analysis.a"
  "libfpint_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpint_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
