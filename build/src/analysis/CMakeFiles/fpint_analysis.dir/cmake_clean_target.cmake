file(REMOVE_RECURSE
  "libfpint_analysis.a"
)
