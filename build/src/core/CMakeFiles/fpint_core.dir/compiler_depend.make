# Empty compiler generated dependencies file for fpint_core.
# This may be replaced when dependencies are built.
