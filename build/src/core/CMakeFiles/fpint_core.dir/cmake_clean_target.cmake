file(REMOVE_RECURSE
  "libfpint_core.a"
)
