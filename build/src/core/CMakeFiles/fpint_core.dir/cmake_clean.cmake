file(REMOVE_RECURSE
  "CMakeFiles/fpint_core.dir/Pipeline.cpp.o"
  "CMakeFiles/fpint_core.dir/Pipeline.cpp.o.d"
  "libfpint_core.a"
  "libfpint_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpint_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
