file(REMOVE_RECURSE
  "CMakeFiles/fpint_workloads.dir/Compress.cpp.o"
  "CMakeFiles/fpint_workloads.dir/Compress.cpp.o.d"
  "CMakeFiles/fpint_workloads.dir/Ear.cpp.o"
  "CMakeFiles/fpint_workloads.dir/Ear.cpp.o.d"
  "CMakeFiles/fpint_workloads.dir/Gcc.cpp.o"
  "CMakeFiles/fpint_workloads.dir/Gcc.cpp.o.d"
  "CMakeFiles/fpint_workloads.dir/Go.cpp.o"
  "CMakeFiles/fpint_workloads.dir/Go.cpp.o.d"
  "CMakeFiles/fpint_workloads.dir/Ijpeg.cpp.o"
  "CMakeFiles/fpint_workloads.dir/Ijpeg.cpp.o.d"
  "CMakeFiles/fpint_workloads.dir/Li.cpp.o"
  "CMakeFiles/fpint_workloads.dir/Li.cpp.o.d"
  "CMakeFiles/fpint_workloads.dir/M88ksim.cpp.o"
  "CMakeFiles/fpint_workloads.dir/M88ksim.cpp.o.d"
  "CMakeFiles/fpint_workloads.dir/Perl.cpp.o"
  "CMakeFiles/fpint_workloads.dir/Perl.cpp.o.d"
  "CMakeFiles/fpint_workloads.dir/Registry.cpp.o"
  "CMakeFiles/fpint_workloads.dir/Registry.cpp.o.d"
  "CMakeFiles/fpint_workloads.dir/Swim.cpp.o"
  "CMakeFiles/fpint_workloads.dir/Swim.cpp.o.d"
  "CMakeFiles/fpint_workloads.dir/Tomcatv.cpp.o"
  "CMakeFiles/fpint_workloads.dir/Tomcatv.cpp.o.d"
  "libfpint_workloads.a"
  "libfpint_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpint_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
