# Empty compiler generated dependencies file for fpint_workloads.
# This may be replaced when dependencies are built.
