file(REMOVE_RECURSE
  "libfpint_workloads.a"
)
