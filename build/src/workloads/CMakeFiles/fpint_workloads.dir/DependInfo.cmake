
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Compress.cpp" "src/workloads/CMakeFiles/fpint_workloads.dir/Compress.cpp.o" "gcc" "src/workloads/CMakeFiles/fpint_workloads.dir/Compress.cpp.o.d"
  "/root/repo/src/workloads/Ear.cpp" "src/workloads/CMakeFiles/fpint_workloads.dir/Ear.cpp.o" "gcc" "src/workloads/CMakeFiles/fpint_workloads.dir/Ear.cpp.o.d"
  "/root/repo/src/workloads/Gcc.cpp" "src/workloads/CMakeFiles/fpint_workloads.dir/Gcc.cpp.o" "gcc" "src/workloads/CMakeFiles/fpint_workloads.dir/Gcc.cpp.o.d"
  "/root/repo/src/workloads/Go.cpp" "src/workloads/CMakeFiles/fpint_workloads.dir/Go.cpp.o" "gcc" "src/workloads/CMakeFiles/fpint_workloads.dir/Go.cpp.o.d"
  "/root/repo/src/workloads/Ijpeg.cpp" "src/workloads/CMakeFiles/fpint_workloads.dir/Ijpeg.cpp.o" "gcc" "src/workloads/CMakeFiles/fpint_workloads.dir/Ijpeg.cpp.o.d"
  "/root/repo/src/workloads/Li.cpp" "src/workloads/CMakeFiles/fpint_workloads.dir/Li.cpp.o" "gcc" "src/workloads/CMakeFiles/fpint_workloads.dir/Li.cpp.o.d"
  "/root/repo/src/workloads/M88ksim.cpp" "src/workloads/CMakeFiles/fpint_workloads.dir/M88ksim.cpp.o" "gcc" "src/workloads/CMakeFiles/fpint_workloads.dir/M88ksim.cpp.o.d"
  "/root/repo/src/workloads/Perl.cpp" "src/workloads/CMakeFiles/fpint_workloads.dir/Perl.cpp.o" "gcc" "src/workloads/CMakeFiles/fpint_workloads.dir/Perl.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/fpint_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/fpint_workloads.dir/Registry.cpp.o.d"
  "/root/repo/src/workloads/Swim.cpp" "src/workloads/CMakeFiles/fpint_workloads.dir/Swim.cpp.o" "gcc" "src/workloads/CMakeFiles/fpint_workloads.dir/Swim.cpp.o.d"
  "/root/repo/src/workloads/Tomcatv.cpp" "src/workloads/CMakeFiles/fpint_workloads.dir/Tomcatv.cpp.o" "gcc" "src/workloads/CMakeFiles/fpint_workloads.dir/Tomcatv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sir/CMakeFiles/fpint_sir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fpint_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
