file(REMOVE_RECURSE
  "libfpint_sir.a"
)
