
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sir/IR.cpp" "src/sir/CMakeFiles/fpint_sir.dir/IR.cpp.o" "gcc" "src/sir/CMakeFiles/fpint_sir.dir/IR.cpp.o.d"
  "/root/repo/src/sir/IRBuilder.cpp" "src/sir/CMakeFiles/fpint_sir.dir/IRBuilder.cpp.o" "gcc" "src/sir/CMakeFiles/fpint_sir.dir/IRBuilder.cpp.o.d"
  "/root/repo/src/sir/Opcode.cpp" "src/sir/CMakeFiles/fpint_sir.dir/Opcode.cpp.o" "gcc" "src/sir/CMakeFiles/fpint_sir.dir/Opcode.cpp.o.d"
  "/root/repo/src/sir/Parser.cpp" "src/sir/CMakeFiles/fpint_sir.dir/Parser.cpp.o" "gcc" "src/sir/CMakeFiles/fpint_sir.dir/Parser.cpp.o.d"
  "/root/repo/src/sir/Printer.cpp" "src/sir/CMakeFiles/fpint_sir.dir/Printer.cpp.o" "gcc" "src/sir/CMakeFiles/fpint_sir.dir/Printer.cpp.o.d"
  "/root/repo/src/sir/Verifier.cpp" "src/sir/CMakeFiles/fpint_sir.dir/Verifier.cpp.o" "gcc" "src/sir/CMakeFiles/fpint_sir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fpint_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
