file(REMOVE_RECURSE
  "CMakeFiles/fpint_sir.dir/IR.cpp.o"
  "CMakeFiles/fpint_sir.dir/IR.cpp.o.d"
  "CMakeFiles/fpint_sir.dir/IRBuilder.cpp.o"
  "CMakeFiles/fpint_sir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/fpint_sir.dir/Opcode.cpp.o"
  "CMakeFiles/fpint_sir.dir/Opcode.cpp.o.d"
  "CMakeFiles/fpint_sir.dir/Parser.cpp.o"
  "CMakeFiles/fpint_sir.dir/Parser.cpp.o.d"
  "CMakeFiles/fpint_sir.dir/Printer.cpp.o"
  "CMakeFiles/fpint_sir.dir/Printer.cpp.o.d"
  "CMakeFiles/fpint_sir.dir/Verifier.cpp.o"
  "CMakeFiles/fpint_sir.dir/Verifier.cpp.o.d"
  "libfpint_sir.a"
  "libfpint_sir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpint_sir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
