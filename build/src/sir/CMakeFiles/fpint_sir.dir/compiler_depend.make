# Empty compiler generated dependencies file for fpint_sir.
# This may be replaced when dependencies are built.
