#!/usr/bin/env bash
# Build, test, and regenerate every table/figure of the reproduction.
#
# Bench binaries run the parallel evaluation runtime (thread pool +
# run cache + trace reuse); set FPINT_JOBS=N to pin the worker count
# (FPINT_JOBS=1 reproduces a serial evaluation bit-for-bit).
#
# Table/figure text goes to bench_output.txt (stdout only, so the file
# is byte-stable across runs); per-binary wall-clock and cache
# footers print to the terminal.
set -euo pipefail
cd "$(dirname "$0")/.."

# Respect an already-configured build dir (whatever its generator);
# prefer Ninja for fresh configures.
if [ -f build/CMakeCache.txt ]; then
  cmake -B build
else
  cmake -B build -G Ninja
fi
cmake --build build -j "$(nproc)"
ctest --test-dir build 2>&1 | tee test_output.txt

now_ms() { date +%s%3N; }

# Degrade-don't-die: one failing bench binary must not hide the
# others' results, so every binary runs (with a hang guard), each gets
# a pass/fail verdict in the summary, and the script exits nonzero at
# the very end if any failed.
BENCH_TIMEOUT="${FPINT_BENCH_TIMEOUT:-600}"

: > bench_output.txt
declare -a names times verdicts
failures=0
total_start=$(now_ms)
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$b" in
    *micro_algorithms) continue ;; # google-benchmark; run explicitly
  esac
  start=$(now_ms)
  rc=0
  timeout "$BENCH_TIMEOUT" "$b" >> bench_output.txt || rc=$?
  echo >> bench_output.txt
  end=$(now_ms)
  names+=("$(basename "$b")")
  times+=($((end - start)))
  if [ "$rc" -eq 0 ]; then
    verdicts+=(PASS)
  elif [ "$rc" -eq 124 ]; then
    verdicts+=("FAIL (timeout ${BENCH_TIMEOUT}s)")
    failures=$((failures + 1))
  else
    verdicts+=("FAIL (exit $rc)")
    failures=$((failures + 1))
  fi
done
total_end=$(now_ms)

echo
echo "Bench summary (FPINT_JOBS=${FPINT_JOBS:-auto}):"
for i in "${!names[@]}"; do
  printf '  %-28s %6d ms  %s\n' "${names[$i]}" "${times[$i]}" "${verdicts[$i]}"
done
printf '  %-28s %6d ms\n' total $((total_end - total_start))

if [ "$failures" -gt 0 ]; then
  echo "run_all: $failures bench binar$( [ "$failures" -eq 1 ] && echo y || echo ies ) failed" >&2
  exit 1
fi
