#!/usr/bin/env bash
# Build, test, and regenerate every table/figure of the reproduction.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
  echo
done 2>&1 | tee bench_output.txt
