#!/usr/bin/env bash
# Performance-regression gate for the bench suite.
#
# Runs every bench binary with telemetry enabled so each emits a
# structured JSON report into bench_out/ (see docs/OBSERVABILITY.md),
# then diffs the committed golden baseline in scripts/golden/ against
# the fresh tree with fpint-report --check. The simulator is a
# deterministic trace-driven model, so cycle counts are bit-stable
# across hosts and any delta is a real behaviour change.
#
# Usage: scripts/check_regression.sh [--update] [TOLERANCE_PCT]
#   --update        regenerate scripts/golden/ from this run instead
#                   of gating (use after an intentional perf change,
#                   then commit the new goldens)
#   TOLERANCE_PCT   relative slack before a delta is a regression
#                   (default 0.1)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT_DIR=${FPINT_BENCH_OUT:-bench_out}
GOLDEN_DIR=scripts/golden
TOLERANCE=0.1
UPDATE=0
for arg in "$@"; do
  case "$arg" in
    --update) UPDATE=1 ;;
    -h|--help)
      sed -n '2,17p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) TOLERANCE="$arg" ;;
  esac
done

if [ ! -x "$BUILD_DIR/tools/fpint-report" ]; then
  echo "check_regression: $BUILD_DIR/tools/fpint-report not built" \
       "(run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi

rm -rf "$OUT_DIR"
for b in "$BUILD_DIR"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$b" in
    *micro_algorithms) continue ;; # google-benchmark; no JSON report
  esac
  FPINT_TELEMETRY=1 FPINT_BENCH_OUT="$OUT_DIR" "$b" > /dev/null
done

if [ "$UPDATE" = 1 ]; then
  # The golden set is the paper's headline figures; keep it small so
  # the committed baseline stays reviewable.
  mkdir -p "$GOLDEN_DIR"
  for name in fig9_speedup_4way fig10_speedup_8way; do
    cp "$OUT_DIR/$name.json" "$GOLDEN_DIR/$name.json"
  done
  echo "check_regression: refreshed $GOLDEN_DIR from $OUT_DIR"
  exit 0
fi

exec "$BUILD_DIR/tools/fpint-report" --check "--tolerance=$TOLERANCE" \
  "$GOLDEN_DIR" "$OUT_DIR"
