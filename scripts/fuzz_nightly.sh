#!/usr/bin/env bash
# Nightly-depth differential fuzz run, journaled so an interrupted night
# resumes instead of starting over. Derives a fresh base seed (from
# $FPINT_FUZZ_SEED, or the time when unset), logs it so a red run can be
# replayed with FPINT_FUZZ_SEED=<seed> locally, and leaves any reduced
# repros in tests/corpus/regressions/ for the CI artifact upload.
#
# Resume semantics (docs/CAMPAIGNS.md): completed batches are journaled
# in $STATE_DIR; rerunning after a crash/kill/OOM skips them and -- the
# part that matters for replayability -- adopts the base seed logged in
# the journal header, so the resumed run continues the exact random
# sequence the interrupted night started. The state directory is
# removed only after a run that finished (whatever its verdict), so the
# next night starts a fresh campaign with a fresh seed.
set -euo pipefail

FUZZ_BIN=${FUZZ_BIN:-./build/tools/fpint-fuzz}
ITERS=${ITERS:-2000}
BATCH=${BATCH:-100}
STATE_DIR=${STATE_DIR:-campaign_state/fuzz_nightly}
SEED=${FPINT_FUZZ_SEED:-$(date +%s)}

if [ -f "$STATE_DIR/journal.wal" ]; then
  echo "nightly fuzz: journal found in $STATE_DIR; resuming (the journaled seed wins)"
else
  echo "nightly fuzz: seed=$SEED iters=$ITERS batch=$BATCH"
fi
echo "replay with: FPINT_FUZZ_SEED=<logged seed> $FUZZ_BIN --iters $ITERS"

STATUS=0
FPINT_FUZZ_SEED=$SEED "$FUZZ_BIN" --iters "$ITERS" --keep-going --quiet \
  --journal "$STATE_DIR" --batch "$BATCH" || STATUS=$?

# The campaign ran to completion (green or red, exit < 128): clear the
# journal so the next night is a fresh campaign. A killed run (signal
# exit >= 128, or the whole job dying before this line) keeps its
# journal and resumes tomorrow.
if [ "$STATUS" -lt 128 ]; then
  rm -rf "$STATE_DIR"
fi
exit "$STATUS"
