#!/usr/bin/env bash
# Nightly-depth differential fuzz run. Derives a fresh base seed (from
# $FPINT_FUZZ_SEED, or the time when unset), logs it so a red run can be
# replayed with FPINT_FUZZ_SEED=<seed> locally, and leaves any reduced
# repros in tests/corpus/regressions/ for the CI artifact upload.
set -euo pipefail

FUZZ_BIN=${FUZZ_BIN:-./build/tools/fpint-fuzz}
ITERS=${ITERS:-2000}
SEED=${FPINT_FUZZ_SEED:-$(date +%s)}

echo "nightly fuzz: seed=$SEED iters=$ITERS"
echo "replay with: FPINT_FUZZ_SEED=$SEED $FUZZ_BIN --iters $ITERS"
FPINT_FUZZ_SEED=$SEED "$FUZZ_BIN" --iters "$ITERS" --keep-going --quiet
