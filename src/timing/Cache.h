//===- timing/Cache.h - Set-associative cache model -----------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative cache timing model with LRU replacement, matching
/// Table 1: a 64KB 2-way I-cache with 128-byte lines and a 32KB 2-way
/// write-back write-allocate D-cache with 32-byte lines, both with
/// 1-cycle hits and a 6-cycle miss penalty.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_TIMING_CACHE_H
#define FPINT_TIMING_CACHE_H

#include <cstdint>
#include <vector>

namespace fpint {
namespace timing {

struct CacheConfig {
  uint32_t SizeBytes = 32 * 1024;
  uint32_t Assoc = 2;
  uint32_t LineBytes = 32;
  unsigned HitLatency = 1;
  unsigned MissPenalty = 6;
};

/// LRU set-associative cache. Only timing matters; no data is stored.
class Cache {
public:
  explicit Cache(CacheConfig Config);

  /// Accesses \p Addr; returns total latency (hit latency, plus the miss
  /// penalty on a miss). \p Write marks the line dirty.
  unsigned access(uint32_t Addr, bool Write = false);

  /// True if \p Addr currently hits (no state change).
  bool probe(uint32_t Addr) const;

  uint64_t accesses() const { return Accesses; }
  uint64_t misses() const { return Misses; }
  uint64_t writebacks() const { return Writebacks; }
  double missRate() const {
    return Accesses ? static_cast<double>(Misses) /
                          static_cast<double>(Accesses)
                    : 0.0;
  }

  const CacheConfig &config() const { return Config; }

private:
  struct Line {
    uint32_t Tag = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
    bool Dirty = false;
  };

  CacheConfig Config;
  uint32_t NumSets;
  std::vector<Line> Lines; // NumSets * Assoc.
  uint64_t Tick = 0;
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
  uint64_t Writebacks = 0;
};

} // namespace timing
} // namespace fpint

#endif // FPINT_TIMING_CACHE_H
