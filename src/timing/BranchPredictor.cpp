//===- timing/BranchPredictor.cpp - gshare / McFarling predictors ---------===//

#include "timing/BranchPredictor.h"

using namespace fpint;
using namespace fpint::timing;

GsharePredictor::GsharePredictor(unsigned TableBits, unsigned HistoryBits)
    : Table(1u << TableBits, 1),
      HistoryMask((1u << HistoryBits) - 1),
      TableMask((1u << TableBits) - 1) {}

unsigned GsharePredictor::index(uint32_t Pc) const {
  return ((Pc >> 2) ^ (History & HistoryMask)) & TableMask;
}

bool GsharePredictor::predict(uint32_t Pc) {
  return counterPredict(Table[index(Pc)]);
}

void GsharePredictor::update(uint32_t Pc, bool Taken) {
  uint8_t &C = Table[index(Pc)];
  C = counterUpdate(C, Taken);
  History = ((History << 1) | (Taken ? 1u : 0u)) & HistoryMask;
}

McFarlingPredictor::McFarlingPredictor(unsigned TableBits,
                                       unsigned HistoryBits)
    : Gshare(TableBits, HistoryBits), Bimodal(1u << TableBits, 1),
      Chooser(1u << TableBits, 2), TableMask((1u << TableBits) - 1) {}

bool McFarlingPredictor::predict(uint32_t Pc) {
  unsigned Idx = (Pc >> 2) & TableMask;
  bool UseGshare = counterPredict(Chooser[Idx]);
  return UseGshare ? Gshare.predict(Pc) : counterPredict(Bimodal[Idx]);
}

void McFarlingPredictor::update(uint32_t Pc, bool Taken) {
  unsigned Idx = (Pc >> 2) & TableMask;
  bool GsharePred = Gshare.predict(Pc);
  bool BimodalPred = counterPredict(Bimodal[Idx]);
  // Train the chooser toward whichever component was right.
  if (GsharePred != BimodalPred)
    Chooser[Idx] = counterUpdate(Chooser[Idx], GsharePred == Taken);
  Bimodal[Idx] = counterUpdate(Bimodal[Idx], Taken);
  Gshare.update(Pc, Taken); // Also advances the global history.
}
