//===- timing/MachineConfig.h - Table 1 machine parameters ----------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two machine configurations of the paper's Table 1:
///
///   Parameter            4-way              8-way
///   Fetch width          any 4              any 8
///   I-cache              64KB 2-way, 128B lines, 1-cycle hit, 6-cycle miss
///   Branch predictor     gshare, 32K 2-bit counters, 15-bit history
///   Decode/rename width  any 4              any 8
///   Issue window         16 int + 16 fp     32 int + 32 fp
///   Max in-flight        32                 64
///   Retire width         4                  8
///   Functional units     2 int + 2 fp       4 int + 4 fp
///   FU latency           6-cycle mul, 12-cycle div, 1-cycle rest
///   Issue mechanism      out-of-order; loads execute when prior store
///                        addresses are known
///   Physical registers   48 int + 48 fp     80 int + 80 fp
///   D-cache              32KB 2-way WB, 32B lines, 1-cycle hit, 6-cycle
///                        miss, 1 load/store port (2 on the 8-way)
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_TIMING_MACHINECONFIG_H
#define FPINT_TIMING_MACHINECONFIG_H

#include "timing/Cache.h"

#include <string>

namespace fpint {
namespace timing {

enum class PredictorKind { Gshare, McFarling, StaticNotTaken };

struct MachineConfig {
  const char *Name = "4-way";

  unsigned FetchWidth = 4;
  unsigned DecodeWidth = 4;
  unsigned RetireWidth = 4;

  unsigned IntWindow = 16;
  unsigned FpWindow = 16;
  unsigned MaxInFlight = 32;

  unsigned IntUnits = 2;
  unsigned FpUnits = 2;
  unsigned LoadStorePorts = 1;

  unsigned IntPhysRegs = 48;
  unsigned FpPhysRegs = 48;

  CacheConfig ICache{64 * 1024, 2, 128, 1, 6};
  CacheConfig DCache{32 * 1024, 2, 32, 1, 6};

  PredictorKind Predictor = PredictorKind::Gshare;
  unsigned PredictorTableBits = 15; ///< 32K two-bit counters.
  unsigned PredictorHistoryBits = 15;

  /// Extra cycle to redirect fetch after a resolved misprediction.
  unsigned MispredictRedirect = 1;

  /// Table 1 specifies idealized "any 4/8 instructions" fetch. Setting
  /// this models a conventional front end that cannot fetch past a
  /// taken control transfer in the same cycle (ablation).
  bool FetchBreaksOnTaken = false;

  /// Whether the floating-point subsystem is augmented to run integer
  /// (",a") instructions. A conventional machine cannot run partitioned
  /// binaries.
  bool FpaEnabled = true;

  /// Canonical serialization of every simulation-relevant field, used
  /// as (part of) a memoization key by core::RunCache. Two configs
  /// with equal keys produce identical SimStats for any trace. Name is
  /// deliberately excluded (it is a display label). Keep in sync when
  /// adding fields.
  std::string canonicalKey() const {
    auto Cache = [](const CacheConfig &C) {
      return std::to_string(C.SizeBytes) + "/" + std::to_string(C.Assoc) +
             "/" + std::to_string(C.LineBytes) + "/" +
             std::to_string(C.HitLatency) + "/" +
             std::to_string(C.MissPenalty);
    };
    return std::to_string(FetchWidth) + "," + std::to_string(DecodeWidth) +
           "," + std::to_string(RetireWidth) + "," +
           std::to_string(IntWindow) + "," + std::to_string(FpWindow) + "," +
           std::to_string(MaxInFlight) + "," + std::to_string(IntUnits) +
           "," + std::to_string(FpUnits) + "," +
           std::to_string(LoadStorePorts) + "," +
           std::to_string(IntPhysRegs) + "," + std::to_string(FpPhysRegs) +
           ",I" + Cache(ICache) + ",D" + Cache(DCache) + ",P" +
           std::to_string(static_cast<int>(Predictor)) + "/" +
           std::to_string(PredictorTableBits) + "/" +
           std::to_string(PredictorHistoryBits) + ",R" +
           std::to_string(MispredictRedirect) + ",B" +
           std::to_string(FetchBreaksOnTaken) + ",A" +
           std::to_string(FpaEnabled);
  }

  static MachineConfig fourWay() { return MachineConfig(); }

  static MachineConfig eightWay() {
    MachineConfig C;
    C.Name = "8-way";
    C.FetchWidth = 8;
    C.DecodeWidth = 8;
    C.RetireWidth = 8;
    C.IntWindow = 32;
    C.FpWindow = 32;
    C.MaxInFlight = 64;
    C.IntUnits = 4;
    C.FpUnits = 4;
    C.LoadStorePorts = 2;
    C.IntPhysRegs = 80;
    C.FpPhysRegs = 80;
    return C;
  }
};

} // namespace timing
} // namespace fpint

#endif // FPINT_TIMING_MACHINECONFIG_H
