//===- timing/Simulator.cpp - Cycle-level out-of-order simulator ----------===//
//
// Two implementations of the same machine live here (see Simulator.h):
//
//  * runReference -- the original cycle loop over vm::TraceEntry
//    vectors, kept deliberately simple; it is the differential oracle
//    for the fast path (FPINT_SIM_FAST=0, fpint-fuzz cross-check).
//  * runFastRange -- the packed fast path: pre-decoded PackedOp records,
//    one dense seq-indexed ring holding every in-flight instruction
//    (wakeup scoreboard included), incremental window occupancy
//    counters, and event-driven idle-cycle skipping.
//
// The fast path is cycle-exact with respect to the reference loop: all
// SimStats counters and (with a sink attached) every CycleEvent are
// identical. Any behavioural change must be made to both loops;
// tests/SimulatorTest.cpp and the fuzz oracle race them.
//
//===----------------------------------------------------------------------===//

#include "timing/Simulator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace fpint;
using namespace fpint::timing;
using sir::ExecClass;
using sir::Instruction;
using sir::Opcode;
using sir::RegClass;
using vm::TraceEntry;

namespace {

constexpr uint64_t NeverCycle = ~0ULL;

/// Pre-decoded static information about one instruction (reference
/// loop; the fast path uses timing::PackedOp instead).
struct InstrInfo {
  ExecClass Class = ExecClass::IntAlu;
  unsigned Latency = 1;
  bool FpSubsystem = false; ///< Issues from the FP window / FP units.
  bool IsLoad = false;
  bool IsStore = false;
  bool IsCondBranch = false;
  bool Unpipelined = false; ///< Divides occupy their unit fully.

  struct Operand {
    uint8_t File = 0;  ///< 0 = INT file, 1 = FP file.
    uint8_t Arch = 0;  ///< Architectural index within the file.
  };
  Operand Def;
  bool HasDef = false;
  Operand Uses[4];
  unsigned NumUses = 0;
};

/// One in-flight instruction (reference loop).
struct RobEntry {
  const TraceEntry *TE = nullptr;
  const InstrInfo *Info = nullptr;
  uint64_t Seq = 0;        ///< Program order.
  uint64_t FetchCycle = 0;
  bool Dispatched = false;
  bool Issued = false;
  uint64_t DoneCycle = NeverCycle;
  bool Mispredicted = false;
  // Producers of this entry's operands (ROB sequence numbers; entries
  // retire in order so a missing sequence number means "ready").
  uint64_t ProducerSeq[4] = {0, 0, 0, 0};
};

/// One slot of the fast path's in-flight ring. A slot is (re)initialized
/// at fetch and is live while its sequence number is in
/// [RetireSeq, NextSeq); the DoneCycle field doubles as the wakeup
/// scoreboard the reference loop keeps in the DoneAt map.
struct FastEntry {
  const PackedOp *Op = nullptr;
  uint32_t Idx = 0; ///< Dynamic-instruction index (MemAddr/Taken arrays).
  uint64_t FetchCycle = 0;
  uint64_t DoneCycle = NeverCycle;
  uint64_t ProducerSeq[4] = {0, 0, 0, 0};
  bool Issued = false;
  bool Mispredicted = false;
  bool MissedLoad = false; ///< Sink-only: issued load that missed.
};

bool fastPathFromEnv() {
  const char *E = std::getenv("FPINT_SIM_FAST");
  return !(E && std::strcmp(E, "0") == 0);
}

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// Every additive SimStats counter (used by the sampling extrapolation;
/// ratio-derived and provenance fields are handled separately).
#define FPINT_SIM_COUNTERS(X)                                                  \
  X(Cycles)                                                                    \
  X(Instructions)                                                              \
  X(IntIssued)                                                                 \
  X(FpIssued)                                                                  \
  X(CondBranches)                                                              \
  X(Mispredicts)                                                               \
  X(Loads)                                                                     \
  X(Stores)                                                                    \
  X(DCacheMisses)                                                              \
  X(ICacheMisses)                                                              \
  X(StoreForwards)                                                             \
  X(FpBusyCycles)                                                              \
  X(IntIdleFpBusyCycles)

} // namespace

//===----------------------------------------------------------------------===//
// SampleSpec / SimulationOverrun
//===----------------------------------------------------------------------===//

bool SampleSpec::parse(const std::string &Text, SampleSpec &Out) {
  uint64_t V[3];
  size_t Pos = 0;
  for (int I = 0; I < 3; ++I) {
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return false;
    char *End = nullptr;
    V[I] = std::strtoull(Text.c_str() + Pos, &End, 10);
    Pos = static_cast<size_t>(End - Text.c_str());
    if (I < 2) {
      if (Pos >= Text.size() || Text[Pos] != ':')
        return false;
      ++Pos;
    }
  }
  if (Pos != Text.size())
    return false;
  Out.Warmup = V[0];
  Out.Window = V[1];
  Out.Stride = V[2];
  return true;
}

SampleSpec SampleSpec::fromEnv() {
  const char *E = std::getenv("FPINT_SIM_SAMPLE");
  if (!E || !*E)
    return {};
  SampleSpec S;
  if (!parse(E, S)) {
    static bool Warned = false;
    if (!Warned) {
      std::fprintf(stderr,
                   "fpint: ignoring malformed FPINT_SIM_SAMPLE='%s' "
                   "(expected warmup:window:stride)\n",
                   E);
      Warned = true;
    }
    return {};
  }
  return S;
}

SimulationOverrun::SimulationOverrun(uint64_t CycleIn, uint64_t LimitIn,
                                     uint64_t RetiredIn, uint64_t TraceSizeIn)
    : std::runtime_error("simulation overrun: no forward progress after " +
                         std::to_string(LimitIn) + " cycles (" +
                         std::to_string(RetiredIn) + "/" +
                         std::to_string(TraceSizeIn) +
                         " instructions retired)"),
      Cycle(CycleIn), Limit(LimitIn), Retired(RetiredIn),
      TraceSize(TraceSizeIn) {}

//===----------------------------------------------------------------------===//
// Simulator
//===----------------------------------------------------------------------===//

struct Simulator::Impl {
  std::unordered_map<const Instruction *, InstrInfo> InfoCache;
  std::unique_ptr<BranchPredictor> Predictor;
  std::unique_ptr<Cache> ICache;
  std::unique_ptr<Cache> DCache;

  /// Fresh machine state (predictor + caches) for one simulation pass.
  void reset(const MachineConfig &Config) {
    switch (Config.Predictor) {
    case PredictorKind::Gshare:
      Predictor = std::make_unique<GsharePredictor>(
          Config.PredictorTableBits, Config.PredictorHistoryBits);
      break;
    case PredictorKind::McFarling:
      Predictor = std::make_unique<McFarlingPredictor>(
          Config.PredictorTableBits, Config.PredictorHistoryBits);
      break;
    case PredictorKind::StaticNotTaken:
      Predictor = std::make_unique<StaticNotTakenPredictor>();
      break;
    }
    ICache = std::make_unique<Cache>(Config.ICache);
    DCache = std::make_unique<Cache>(Config.DCache);
  }
};

Simulator::Simulator(const MachineConfig &ConfigIn,
                     const regalloc::ModuleAlloc &AllocIn)
    : Config(ConfigIn), Alloc(AllocIn), State(std::make_unique<Impl>()) {
  UseFast = fastPathFromEnv();
  Sample = SampleSpec::fromEnv();
}

Simulator::~Simulator() = default;

SimStats Simulator::run(const std::vector<TraceEntry> &Trace) {
  auto T0 = std::chrono::steady_clock::now();
  SimStats Stats;
  if (UseFast) {
    PackedTrace PT = PackedTrace::build(Trace, Alloc);
    Stats = Sample.enabled() ? runSampled(PT) : runFast(PT);
  } else {
    Stats = runReference(Trace);
  }
  Stats.SimWallMs = msSince(T0);
  return Stats;
}

SimStats Simulator::run(const PackedTrace &Trace) {
  auto T0 = std::chrono::steady_clock::now();
  SimStats Stats;
  if (UseFast) {
    Stats = Sample.enabled() ? runSampled(Trace) : runFast(Trace);
  } else {
    std::vector<TraceEntry> Entries = Trace.entries();
    Stats = runReference(Entries);
  }
  Stats.SimWallMs = msSince(T0);
  return Stats;
}

//===----------------------------------------------------------------------===//
// Reference loop (differential oracle; FPINT_SIM_FAST=0)
//===----------------------------------------------------------------------===//

SimStats Simulator::runReference(const std::vector<TraceEntry> &Trace) {
  SimStats Stats;
  Impl &S = *State;
  S.reset(Config);

  // Decode helper (memoized per static instruction).
  auto InfoOf = [&](const TraceEntry &TE) -> const InstrInfo * {
    auto It = S.InfoCache.find(TE.I);
    if (It != S.InfoCache.end())
      return &It->second;
    const Instruction &I = *TE.I;
    const sir::Function *F = I.parent()->parent();
    InstrInfo Info;
    Info.Class = sir::execClass(I.op());
    Info.Latency = sir::execLatency(Info.Class);
    Info.FpSubsystem = sir::isFpOpcode(I.op()) || I.inFpa();
    Info.IsLoad = I.isLoad();
    Info.IsStore = I.isStore();
    Info.IsCondBranch = I.isCondBranch();
    Info.Unpipelined =
        Info.Class == ExecClass::IntDiv || Info.Class == ExecClass::FpDiv;
    if (I.def().isValid()) {
      Info.HasDef = true;
      Info.Def.File = F->regClass(I.def()) == RegClass::Fp;
      Info.Def.Arch =
          static_cast<uint8_t>(Alloc.archIndexOf(F, I.def()));
    }
    I.forEachUse([&](sir::Reg R, sir::UseKind) {
      assert(Info.NumUses < 4 && "too many operands");
      Info.Uses[Info.NumUses].File = F->regClass(R) == RegClass::Fp;
      Info.Uses[Info.NumUses].Arch =
          static_cast<uint8_t>(Alloc.archIndexOf(F, R));
      ++Info.NumUses;
    });
    if (!Config.FpaEnabled)
      assert(!I.inFpa() &&
             "partitioned binary on a conventional (non-FPa) machine");
    return &S.InfoCache.emplace(TE.I, Info).first->second;
  };

  // Rename state: latest in-flight producer per architectural register,
  // identified by ROB sequence number (0 = architectural/ready).
  uint64_t RenameTable[2][regalloc::ArchLayout::FileSize] = {};
  // Committed-or-done lookup: a producer is "resolved" once done.
  std::unordered_map<uint64_t, uint64_t> DoneAt; // Seq -> DoneCycle.

  std::deque<RobEntry> Rob;     // In-flight, program order.
  std::deque<RobEntry> FetchQ;  // Fetched, not yet dispatched.
  unsigned IntWindowUsed = 0, FpWindowUsed = 0;
  unsigned IntPhysFree = Config.IntPhysRegs - regalloc::ArchLayout::FileSize;
  unsigned FpPhysFree = Config.FpPhysRegs - regalloc::ArchLayout::FileSize;

  size_t FetchIdx = 0;
  uint64_t NextSeq = 1;
  uint64_t Cycle = 0;
  uint64_t FetchResumeCycle = 0;   // Fetch stalled until this cycle.
  uint64_t PendingBranchSeq = 0;   // Mispredicted branch blocking fetch.

  std::vector<uint64_t> IntUnitFree(Config.IntUnits, 0);
  std::vector<uint64_t> FpUnitFree(Config.FpUnits, 0);

  // Producers older than the ROB head have committed (retirement is in
  // order), so their values are architectural. Returns 0 when every
  // operand is ready, else the first still-executing producer's
  // sequence number (the telemetry layer attributes the wait to it).
  auto BlockingProducer = [&](const RobEntry &E,
                              uint64_t OldestSeq) -> uint64_t {
    for (unsigned U = 0; U < E.Info->NumUses; ++U) {
      uint64_t P = E.ProducerSeq[U];
      if (P == 0 || P < OldestSeq)
        continue;
      auto It = DoneAt.find(P);
      if (It == DoneAt.end() || It->second > Cycle)
        return P;
    }
    return 0;
  };

  // Telemetry state (touched only when a sink is attached; without one
  // the loop below pays a single Sink test per cycle). MissedLoads
  // holds issued-but-unretired loads that missed the D-cache so
  // operand waits on them can be attributed to the miss; ResumeKind
  // remembers what last stalled fetch (mispredict redirect vs I-miss).
  std::unordered_set<uint64_t> MissedLoads;
  stats::StallReason ResumeKind = stats::StallReason::None;

  const uint64_t SafetyLimit =
      static_cast<uint64_t>(Trace.size() + 1000) * 400 + 100000;

  while (FetchIdx < Trace.size() || !Rob.empty() || !FetchQ.empty()) {
    // Per-cycle stall attribution (sink-only): the oldest waiting
    // instruction's issue blockage and the first dispatch blockage.
    stats::StallReason IssueBlock = stats::StallReason::None;
    stats::StallReason DispatchBlock = stats::StallReason::None;

    //===------------------------------------------------------------===//
    // Commit (in order, up to RetireWidth).
    //===------------------------------------------------------------===//
    unsigned Retired = 0;
    while (!Rob.empty() && Retired < Config.RetireWidth) {
      RobEntry &Head = Rob.front();
      if (!Head.Issued || Head.DoneCycle > Cycle)
        break;
      if (Sink && Head.Info->IsLoad)
        MissedLoads.erase(Head.Seq);
      if (Head.Info->IsStore)
        // Stores write the cache at retirement (write buffer absorbs
        // the latency; misses were charged at execute via allocation).
        S.DCache->access(Head.TE->MemAddr, /*Write=*/true);
      if (Head.Info->HasDef) {
        // Freeing the previous mapping of the destination register.
        if (Head.Info->Def.File)
          ++FpPhysFree;
        else
          ++IntPhysFree;
      }
      DoneAt.erase(Head.Seq);
      ++Stats.Instructions;
      ++Retired;
      Rob.pop_front();
    }

    //===------------------------------------------------------------===//
    // Issue (per subsystem, oldest first).
    //===------------------------------------------------------------===//
    unsigned IntIssuedNow = 0, FpIssuedNow = 0, PortsUsed = 0;
    const uint64_t OldestSeq = Rob.empty() ? NextSeq : Rob.front().Seq;
    for (RobEntry &E : Rob) {
      if (!E.Dispatched || E.Issued)
        continue;
      const InstrInfo &Info = *E.Info;
      const bool Fp = Info.FpSubsystem;
      auto &Units = Fp ? FpUnitFree : IntUnitFree;
      unsigned &IssuedNow = Fp ? FpIssuedNow : IntIssuedNow;
      if (IssuedNow >= Units.size())
        continue;
      if (uint64_t P = BlockingProducer(E, OldestSeq)) {
        if (Sink && IssueBlock == stats::StallReason::None)
          IssueBlock = MissedLoads.count(P)
                           ? stats::StallReason::DCacheMissWait
                           : stats::StallReason::OperandWait;
        continue;
      }

      // Memory constraints (INT subsystem only).
      unsigned ExtraLatency = 0;
      if (Info.IsLoad || Info.IsStore) {
        if (PortsUsed >= Config.LoadStorePorts)
          continue;
        if (Info.IsLoad) {
          // All prior store addresses must be known (i.e., issued);
          // forward from a matching completed-issue store if possible.
          bool Blocked = false;
          bool Forwarded = false;
          for (const RobEntry &Older : Rob) {
            if (Older.Seq >= E.Seq)
              break;
            if (!Older.Info->IsStore)
              continue;
            if (!Older.Issued) {
              Blocked = true;
              break;
            }
            if (Older.TE->MemAddr / 4 == E.TE->MemAddr / 4)
              Forwarded = true; // Youngest older match wins.
          }
          if (Blocked) {
            if (Sink && IssueBlock == stats::StallReason::None)
              IssueBlock = stats::StallReason::LoadBlockedStoreAddr;
            continue;
          }
          if (Forwarded) {
            ++Stats.StoreForwards;
          } else {
            unsigned Lat = S.DCache->access(E.TE->MemAddr, false);
            ExtraLatency = Lat - Config.DCache.HitLatency;
            if (ExtraLatency)
              ++Stats.DCacheMisses;
          }
        }
      }

      // Find a free functional unit.
      unsigned Unit = ~0u;
      for (unsigned U = 0; U < Units.size(); ++U)
        if (Units[U] <= Cycle) {
          Unit = U;
          break;
        }
      if (Unit == ~0u) {
        if (Sink && IssueBlock == stats::StallReason::None)
          IssueBlock = stats::StallReason::UnitBusy;
        continue;
      }

      // Issue.
      E.Issued = true;
      E.DoneCycle = Cycle + Info.Latency + ExtraLatency;
      Units[Unit] = Info.Unpipelined ? E.DoneCycle : Cycle + 1;
      ++IssuedNow;
      if (Sink && Info.IsLoad && ExtraLatency)
        MissedLoads.insert(E.Seq);
      if (Info.IsLoad || Info.IsStore)
        ++PortsUsed;
      if (Info.HasDef)
        DoneAt[E.Seq] = E.DoneCycle;
      if (E.Mispredicted) {
        FetchResumeCycle =
            std::max(FetchResumeCycle, E.DoneCycle + Config.MispredictRedirect);
        if (Sink)
          ResumeKind = stats::StallReason::FetchMispredict;
        if (PendingBranchSeq == E.Seq)
          PendingBranchSeq = 0;
      }
    }
    Stats.IntIssued += IntIssuedNow;
    Stats.FpIssued += FpIssuedNow;
    if (FpIssuedNow > 0) {
      ++Stats.FpBusyCycles;
      if (IntIssuedNow == 0)
        ++Stats.IntIdleFpBusyCycles;
    }

    //===------------------------------------------------------------===//
    // Dispatch (decode/rename, up to DecodeWidth).
    //===------------------------------------------------------------===//
    unsigned Dispatched = 0;
    while (!FetchQ.empty() && Dispatched < Config.DecodeWidth) {
      RobEntry &E = FetchQ.front();
      if (E.FetchCycle >= Cycle)
        break; // Fetched this cycle; decodes next.
      const InstrInfo &Info = *E.Info;
      if (Rob.size() >= Config.MaxInFlight) {
        if (Sink)
          DispatchBlock = stats::StallReason::RobFull;
        break;
      }
      unsigned &Window = Info.FpSubsystem ? FpWindowUsed : IntWindowUsed;
      unsigned Capacity = Info.FpSubsystem ? Config.FpWindow : Config.IntWindow;
      if (Window >= Capacity) {
        if (Sink)
          DispatchBlock = Info.FpSubsystem ? stats::StallReason::WindowFullFpa
                                           : stats::StallReason::WindowFullInt;
        break;
      }
      if (Info.HasDef) {
        unsigned &Free = Info.Def.File ? FpPhysFree : IntPhysFree;
        if (Free == 0) {
          if (Sink)
            DispatchBlock = stats::StallReason::PhysRegsFull;
          break;
        }
        --Free;
      }

      // Rename: record operand producers, claim the destination.
      for (unsigned U = 0; U < Info.NumUses; ++U)
        E.ProducerSeq[U] =
            RenameTable[Info.Uses[U].File][Info.Uses[U].Arch];
      if (Info.HasDef)
        RenameTable[Info.Def.File][Info.Def.Arch] = E.Seq;

      E.Dispatched = true;
      ++Window;
      Rob.push_back(E);
      FetchQ.pop_front();
      ++Dispatched;
    }
    // Window entries free at issue in real hardware; modeling them as
    // freed at issue:
    // (recomputed below by counting un-issued dispatched entries)
    IntWindowUsed = 0;
    FpWindowUsed = 0;
    for (const RobEntry &E : Rob)
      if (E.Dispatched && !E.Issued)
        ++(E.Info->FpSubsystem ? FpWindowUsed : IntWindowUsed);

    //===------------------------------------------------------------===//
    // Fetch (up to FetchWidth, blocked by mispredicts and I-misses).
    //===------------------------------------------------------------===//
    if (Cycle >= FetchResumeCycle && PendingBranchSeq == 0 &&
        FetchQ.size() < 2 * Config.FetchWidth) {
      for (unsigned N = 0; N < Config.FetchWidth && FetchIdx < Trace.size();
           ++N) {
        const TraceEntry &TE = Trace[FetchIdx];
        const InstrInfo *Info = InfoOf(TE);

        unsigned ILat = S.ICache->access(TE.Pc, false);
        if (ILat > Config.ICache.HitLatency) {
          ++Stats.ICacheMisses;
          FetchResumeCycle = Cycle + (ILat - Config.ICache.HitLatency);
          if (Sink)
            ResumeKind = stats::StallReason::FetchICacheMiss;
        }

        RobEntry E;
        E.TE = &TE;
        E.Info = Info;
        E.Seq = NextSeq++;
        E.FetchCycle = Cycle;
        if (Info->IsCondBranch) {
          ++Stats.CondBranches;
          bool Correct = S.Predictor->predictAndUpdate(TE.Pc, TE.Taken);
          if (!Correct) {
            ++Stats.Mispredicts;
            E.Mispredicted = true;
            PendingBranchSeq = E.Seq;
          }
        }
        if (Info->IsLoad)
          ++Stats.Loads;
        if (Info->IsStore)
          ++Stats.Stores;
        ++FetchIdx;
        bool TakenTransfer =
            (Info->IsCondBranch && TE.Taken) ||
            TE.I->op() == sir::Opcode::Jump ||
            TE.I->op() == sir::Opcode::Call ||
            TE.I->op() == sir::Opcode::Ret;
        bool StopFetch = E.Mispredicted || FetchResumeCycle > Cycle ||
                         (Config.FetchBreaksOnTaken && TakenTransfer);
        FetchQ.push_back(std::move(E));
        if (StopFetch)
          break;
      }
    }

    //===------------------------------------------------------------===//
    // Telemetry: classify the cycle and emit the event (sink-only).
    //===------------------------------------------------------------===//
    if (Sink) {
      using stats::StallReason;
      stats::CycleEvent Ev;
      Ev.IntIssued = IntIssuedNow;
      Ev.FpIssued = FpIssuedNow;
      Ev.IntWindowUsed = IntWindowUsed;
      Ev.FpWindowUsed = FpWindowUsed;
      Ev.IntWindowFull = IntWindowUsed >= Config.IntWindow;
      Ev.FpWindowFull = FpWindowUsed >= Config.FpWindow;
      if (IntIssuedNow + FpIssuedNow == 0) {
        // Attribution priority (documented in stats/Events.h): window
        // backpressure, then the oldest waiting instruction's blockage,
        // then ROB/register backpressure, then the retire/completion
        // drain, then front-end emptiness.
        StallReason R = StallReason::FrontendLatency;
        if (DispatchBlock == StallReason::WindowFullInt ||
            DispatchBlock == StallReason::WindowFullFpa)
          R = DispatchBlock;
        else if (IssueBlock != StallReason::None)
          R = IssueBlock;
        else if (DispatchBlock != StallReason::None)
          R = DispatchBlock;
        else if (!Rob.empty())
          R = StallReason::RetireStall;
        else if (PendingBranchSeq != 0)
          R = StallReason::FetchMispredict;
        else if (Cycle < FetchResumeCycle)
          R = ResumeKind != StallReason::None ? ResumeKind
                                              : StallReason::FetchMispredict;
        Ev.Reason = R;
      }
      Sink->onCycle(Ev);
    }

    ++Cycle;
    if (Cycle > SafetyLimit)
      throw SimulationOverrun(Cycle, SafetyLimit, Stats.Instructions,
                              Trace.size());
  }

  Stats.Cycles = Cycle;
  return Stats;
}

//===----------------------------------------------------------------------===//
// Fast loop (packed SoA + dense ring + cycle skipping)
//===----------------------------------------------------------------------===//

SimStats Simulator::runFast(const PackedTrace &Trace) {
  return runFastRange(Trace, 0, Trace.size(), 0, nullptr);
}

SimStats Simulator::runFastRange(const PackedTrace &PT, size_t Begin,
                                 size_t End, uint64_t WarmupInstrs,
                                 SimStats *WarmupSnap) {
  SimStats Stats;
  Impl &S = *State;
  S.reset(Config);

  if (!Config.FpaEnabled)
    assert(!PT.HasFpa &&
           "partitioned binary on a conventional (non-FPa) machine");

  // The in-flight ring. Live sequence numbers are contiguous:
  //   ROB     = [RetireSeq, DispatchSeq)   (<= MaxInFlight entries)
  //   FetchQ  = [DispatchSeq, NextSeq)     (< 3 * FetchWidth entries)
  // so a power-of-two ring larger than both regions together can never
  // alias a live slot; slots are fully re-initialized at fetch.
  const uint64_t MaxLive =
      static_cast<uint64_t>(Config.MaxInFlight) + 3ULL * Config.FetchWidth + 2;
  uint64_t Capacity = 1;
  while (Capacity < MaxLive)
    Capacity <<= 1;
  const uint64_t Mask = Capacity - 1;
  std::vector<FastEntry> Flight(Capacity);

  uint64_t RenameTable[2][regalloc::ArchLayout::FileSize] = {};
  unsigned IntWindowUsed = 0, FpWindowUsed = 0;
  unsigned IntPhysFree = Config.IntPhysRegs - regalloc::ArchLayout::FileSize;
  unsigned FpPhysFree = Config.FpPhysRegs - regalloc::ArchLayout::FileSize;

  size_t FetchIdx = Begin;
  uint64_t RetireSeq = 1, DispatchSeq = 1, NextSeq = 1;
  uint64_t Cycle = 0;
  uint64_t FetchResumeCycle = 0;
  uint64_t PendingBranchSeq = 0;

  std::vector<uint64_t> IntUnitFree(Config.IntUnits, 0);
  std::vector<uint64_t> FpUnitFree(Config.FpUnits, 0);

  stats::StallReason ResumeKind = stats::StallReason::None;

  bool SnapPending = WarmupSnap && WarmupInstrs > 0;
  if (WarmupSnap)
    *WarmupSnap = SimStats{}; // Warmup == 0: measure from cycle zero.

  const uint64_t SafetyLimit =
      static_cast<uint64_t>((End - Begin) + 1000) * 400 + 100000;

  while (FetchIdx < End || RetireSeq != NextSeq) {
    stats::StallReason IssueBlock = stats::StallReason::None;
    stats::StallReason DispatchBlock = stats::StallReason::None;

    //===------------------------------------------------------------===//
    // Commit (in order, up to RetireWidth).
    //===------------------------------------------------------------===//
    unsigned Retired = 0;
    while (RetireSeq != DispatchSeq && Retired < Config.RetireWidth) {
      FastEntry &Head = Flight[RetireSeq & Mask];
      if (!Head.Issued || Head.DoneCycle > Cycle)
        break;
      const PackedOp &Op = *Head.Op;
      if (Op.is(PackedOp::IsStore))
        S.DCache->access(PT.MemAddr[Head.Idx], /*Write=*/true);
      if (Op.is(PackedOp::HasDef)) {
        if (Op.Def & PackedOp::FileBit)
          ++FpPhysFree;
        else
          ++IntPhysFree;
      }
      ++Stats.Instructions;
      ++Retired;
      ++RetireSeq;
    }

    //===------------------------------------------------------------===//
    // Issue (per subsystem, oldest first).
    //===------------------------------------------------------------===//
    unsigned IntIssuedNow = 0, FpIssuedNow = 0, PortsUsed = 0;
    // True when a load completed its memory evaluation (store-forward
    // scan / D-cache probe, with their counter and cache side effects)
    // but then found no free unit. The reference loop re-runs that
    // evaluation every cycle the load retries, so such a cycle must
    // not be skipped -- the elided cycles would under-count
    // StoreForwards / D-cache traffic. These spans are short: they
    // end at a unit-free wakeup, at most an unpipelined divide away.
    bool LoadEvalNoIssue = false;
    const uint64_t OldestSeq =
        RetireSeq == DispatchSeq ? NextSeq : RetireSeq;
    for (uint64_t Sq = RetireSeq; Sq != DispatchSeq; ++Sq) {
      FastEntry &E = Flight[Sq & Mask];
      if (E.Issued)
        continue;
      const PackedOp &Op = *E.Op;
      const bool Fp = Op.is(PackedOp::FpSubsystem);
      auto &Units = Fp ? FpUnitFree : IntUnitFree;
      unsigned &IssuedNow = Fp ? FpIssuedNow : IntIssuedNow;
      if (IssuedNow >= Units.size())
        continue;

      // Blocking producer: producers older than the ROB head have
      // committed; otherwise the producer's ring slot holds its
      // issue/done state (the dense scoreboard).
      uint64_t Blocking = 0;
      for (unsigned U = 0; U < Op.NumUses; ++U) {
        uint64_t P = E.ProducerSeq[U];
        if (P == 0 || P < OldestSeq)
          continue;
        const FastEntry &Prod = Flight[P & Mask];
        if (!Prod.Issued || Prod.DoneCycle > Cycle) {
          Blocking = P;
          break;
        }
      }
      if (Blocking) {
        if (Sink && IssueBlock == stats::StallReason::None)
          IssueBlock = Flight[Blocking & Mask].MissedLoad
                           ? stats::StallReason::DCacheMissWait
                           : stats::StallReason::OperandWait;
        continue;
      }

      // Memory constraints (INT subsystem only).
      unsigned ExtraLatency = 0;
      if (Op.is(PackedOp::IsLoad) || Op.is(PackedOp::IsStore)) {
        if (PortsUsed >= Config.LoadStorePorts)
          continue;
        if (Op.is(PackedOp::IsLoad)) {
          bool Blocked = false;
          bool Forwarded = false;
          const uint32_t MyLine = PT.MemAddr[E.Idx] / 4;
          for (uint64_t OSq = RetireSeq; OSq != Sq; ++OSq) {
            const FastEntry &Older = Flight[OSq & Mask];
            if (!Older.Op->is(PackedOp::IsStore))
              continue;
            if (!Older.Issued) {
              Blocked = true;
              break;
            }
            if (PT.MemAddr[Older.Idx] / 4 == MyLine)
              Forwarded = true; // Youngest older match wins.
          }
          if (Blocked) {
            if (Sink && IssueBlock == stats::StallReason::None)
              IssueBlock = stats::StallReason::LoadBlockedStoreAddr;
            continue;
          }
          if (Forwarded) {
            ++Stats.StoreForwards;
          } else {
            unsigned Lat = S.DCache->access(PT.MemAddr[E.Idx], false);
            ExtraLatency = Lat - Config.DCache.HitLatency;
            if (ExtraLatency)
              ++Stats.DCacheMisses;
          }
        }
      }

      // Find a free functional unit.
      unsigned Unit = ~0u;
      for (unsigned U = 0; U < Units.size(); ++U)
        if (Units[U] <= Cycle) {
          Unit = U;
          break;
        }
      if (Unit == ~0u) {
        if (Op.is(PackedOp::IsLoad))
          LoadEvalNoIssue = true;
        if (Sink && IssueBlock == stats::StallReason::None)
          IssueBlock = stats::StallReason::UnitBusy;
        continue;
      }

      // Issue.
      E.Issued = true;
      E.DoneCycle = Cycle + Op.Latency + ExtraLatency;
      Units[Unit] = Op.is(PackedOp::Unpipelined) ? E.DoneCycle : Cycle + 1;
      ++IssuedNow;
      if (Sink && Op.is(PackedOp::IsLoad) && ExtraLatency)
        E.MissedLoad = true;
      if (Op.is(PackedOp::IsLoad) || Op.is(PackedOp::IsStore))
        ++PortsUsed;
      if (E.Mispredicted) {
        FetchResumeCycle =
            std::max(FetchResumeCycle, E.DoneCycle + Config.MispredictRedirect);
        if (Sink)
          ResumeKind = stats::StallReason::FetchMispredict;
        if (PendingBranchSeq == Sq)
          PendingBranchSeq = 0;
      }
    }
    Stats.IntIssued += IntIssuedNow;
    Stats.FpIssued += FpIssuedNow;
    if (FpIssuedNow > 0) {
      ++Stats.FpBusyCycles;
      if (IntIssuedNow == 0)
        ++Stats.IntIdleFpBusyCycles;
    }

    //===------------------------------------------------------------===//
    // Dispatch (decode/rename, up to DecodeWidth).
    //===------------------------------------------------------------===//
    unsigned Dispatched = 0;
    while (DispatchSeq != NextSeq && Dispatched < Config.DecodeWidth) {
      FastEntry &E = Flight[DispatchSeq & Mask];
      if (E.FetchCycle >= Cycle)
        break; // Fetched this cycle; decodes next.
      const PackedOp &Op = *E.Op;
      if (DispatchSeq - RetireSeq >= Config.MaxInFlight) {
        if (Sink)
          DispatchBlock = stats::StallReason::RobFull;
        break;
      }
      const bool Fp = Op.is(PackedOp::FpSubsystem);
      unsigned &Window = Fp ? FpWindowUsed : IntWindowUsed;
      unsigned Capacity = Fp ? Config.FpWindow : Config.IntWindow;
      if (Window >= Capacity) {
        if (Sink)
          DispatchBlock = Fp ? stats::StallReason::WindowFullFpa
                             : stats::StallReason::WindowFullInt;
        break;
      }
      if (Op.is(PackedOp::HasDef)) {
        unsigned &Free =
            (Op.Def & PackedOp::FileBit) ? FpPhysFree : IntPhysFree;
        if (Free == 0) {
          if (Sink)
            DispatchBlock = stats::StallReason::PhysRegsFull;
          break;
        }
        --Free;
      }

      // Rename: record operand producers, claim the destination.
      for (unsigned U = 0; U < Op.NumUses; ++U)
        E.ProducerSeq[U] =
            RenameTable[(Op.Uses[U] & PackedOp::FileBit) ? 1 : 0]
                       [Op.Uses[U] & PackedOp::ArchMask];
      if (Op.is(PackedOp::HasDef))
        RenameTable[(Op.Def & PackedOp::FileBit) ? 1 : 0]
                   [Op.Def & PackedOp::ArchMask] = DispatchSeq;

      ++Window;
      ++DispatchSeq;
      ++Dispatched;
    }
    // The reference loop recounts window occupancy after dispatch as
    // "dispatched and not yet issued"; incrementally that is last
    // cycle's recount, plus this cycle's dispatches (added above),
    // minus this cycle's issues (every issue came out of last cycle's
    // recount because issue precedes dispatch within the cycle).
    IntWindowUsed -= IntIssuedNow;
    FpWindowUsed -= FpIssuedNow;

    //===------------------------------------------------------------===//
    // Fetch (up to FetchWidth, blocked by mispredicts and I-misses).
    //===------------------------------------------------------------===//
    unsigned Fetched = 0;
    if (Cycle >= FetchResumeCycle && PendingBranchSeq == 0 &&
        NextSeq - DispatchSeq < 2 * Config.FetchWidth) {
      for (unsigned N = 0; N < Config.FetchWidth && FetchIdx < End; ++N) {
        const PackedOp &Op = PT.op(FetchIdx);

        unsigned ILat = S.ICache->access(Op.Pc, false);
        if (ILat > Config.ICache.HitLatency) {
          ++Stats.ICacheMisses;
          FetchResumeCycle = Cycle + (ILat - Config.ICache.HitLatency);
          if (Sink)
            ResumeKind = stats::StallReason::FetchICacheMiss;
        }

        FastEntry &E = Flight[NextSeq & Mask];
        E.Op = &Op;
        E.Idx = static_cast<uint32_t>(FetchIdx);
        E.FetchCycle = Cycle;
        E.DoneCycle = NeverCycle;
        E.Issued = false;
        E.Mispredicted = false;
        E.MissedLoad = false;
        const bool Taken = PT.Taken[FetchIdx] != 0;
        if (Op.is(PackedOp::IsCondBranch)) {
          ++Stats.CondBranches;
          bool Correct = S.Predictor->predictAndUpdate(Op.Pc, Taken);
          if (!Correct) {
            ++Stats.Mispredicts;
            E.Mispredicted = true;
            PendingBranchSeq = NextSeq;
          }
        }
        if (Op.is(PackedOp::IsLoad))
          ++Stats.Loads;
        if (Op.is(PackedOp::IsStore))
          ++Stats.Stores;
        ++FetchIdx;
        bool TakenTransfer = (Op.is(PackedOp::IsCondBranch) && Taken) ||
                             Op.is(PackedOp::UncondTransfer);
        bool StopFetch = E.Mispredicted || FetchResumeCycle > Cycle ||
                         (Config.FetchBreaksOnTaken && TakenTransfer);
        ++NextSeq;
        ++Fetched;
        if (StopFetch)
          break;
      }
    }

    //===------------------------------------------------------------===//
    // Cycle skipping: when nothing retired, issued, dispatched, or
    // fetched -- and no retrying load re-runs its side-effecting
    // memory evaluation (LoadEvalNoIssue) -- every phase is a pure
    // function of state that can only change at the next wakeup
    // boundary: the earliest in-flight completion, busy-unit free
    // time, or fetch resume cycle. Jump there directly; the cycles in
    // between would have replayed this exact cycle (same stall
    // classification, same occupancy), so they are bulk-emitted
    // through EventSink::onCycles.
    //===------------------------------------------------------------===//
    uint64_t Advance = 1;
    if (Retired == 0 && IntIssuedNow == 0 && FpIssuedNow == 0 &&
        Dispatched == 0 && Fetched == 0 && !LoadEvalNoIssue) {
      uint64_t Next = NeverCycle;
      for (uint64_t Sq = RetireSeq; Sq != DispatchSeq; ++Sq) {
        const FastEntry &E = Flight[Sq & Mask];
        if (E.Issued && E.DoneCycle > Cycle && E.DoneCycle < Next)
          Next = E.DoneCycle;
      }
      for (uint64_t F : IntUnitFree)
        if (F > Cycle && F < Next)
          Next = F;
      for (uint64_t F : FpUnitFree)
        if (F > Cycle && F < Next)
          Next = F;
      if (FetchResumeCycle > Cycle && FetchResumeCycle < Next)
        Next = FetchResumeCycle;
      if (Next != NeverCycle && Next > Cycle + 1)
        Advance = Next - Cycle;
    }

    //===------------------------------------------------------------===//
    // Telemetry: classify the cycle and emit the event (sink-only).
    //===------------------------------------------------------------===//
    if (Sink) {
      using stats::StallReason;
      stats::CycleEvent Ev;
      Ev.IntIssued = IntIssuedNow;
      Ev.FpIssued = FpIssuedNow;
      Ev.IntWindowUsed = IntWindowUsed;
      Ev.FpWindowUsed = FpWindowUsed;
      Ev.IntWindowFull = IntWindowUsed >= Config.IntWindow;
      Ev.FpWindowFull = FpWindowUsed >= Config.FpWindow;
      if (IntIssuedNow + FpIssuedNow == 0) {
        StallReason R = StallReason::FrontendLatency;
        if (DispatchBlock == StallReason::WindowFullInt ||
            DispatchBlock == StallReason::WindowFullFpa)
          R = DispatchBlock;
        else if (IssueBlock != StallReason::None)
          R = IssueBlock;
        else if (DispatchBlock != StallReason::None)
          R = DispatchBlock;
        else if (RetireSeq != DispatchSeq)
          R = StallReason::RetireStall;
        else if (PendingBranchSeq != 0)
          R = StallReason::FetchMispredict;
        else if (Cycle < FetchResumeCycle)
          R = ResumeKind != StallReason::None ? ResumeKind
                                              : StallReason::FetchMispredict;
        Ev.Reason = R;
      }
      if (Advance == 1)
        Sink->onCycle(Ev);
      else
        Sink->onCycles(Ev, Advance);
    }

    Cycle += Advance;
    if (Cycle > SafetyLimit)
      throw SimulationOverrun(Cycle, SafetyLimit, Stats.Instructions,
                              End - Begin);

    if (SnapPending && Stats.Instructions >= WarmupInstrs) {
      *WarmupSnap = Stats;
      WarmupSnap->Cycles = Cycle;
      SnapPending = false;
    }
  }

  Stats.Cycles = Cycle;
  if (SnapPending) {
    // The segment ended inside the warmup; nothing was measured.
    *WarmupSnap = Stats;
  }
  return Stats;
}

//===----------------------------------------------------------------------===//
// Sampled simulation
//===----------------------------------------------------------------------===//

SimStats Simulator::runSampled(const PackedTrace &PT) {
  const uint64_t N = PT.size();
  const uint64_t SegLen = Sample.Warmup + Sample.Window;
  const uint64_t Stride = std::max<uint64_t>({Sample.Stride, SegLen, 1});

  SimStats Acc; // Sum of measured (post-warmup) window deltas.
  for (uint64_t Start = 0; Start < N; Start += Stride) {
    const uint64_t SegEnd = std::min<uint64_t>(Start + SegLen, N);
    SimStats Snap;
    SimStats Seg = runFastRange(PT, Start, SegEnd, Sample.Warmup, &Snap);
    if (Seg.Instructions <= Snap.Instructions)
      continue; // Warmup swallowed the whole segment.
#define FPINT_ACC(F) Acc.F += Seg.F - Snap.F;
    FPINT_SIM_COUNTERS(FPINT_ACC)
#undef FPINT_ACC
  }

  if (Acc.Instructions == 0)
    // Degenerate spec (e.g. warmup longer than every segment): fall
    // back to the exact full simulation.
    return runFast(PT);

  const double Ratio =
      static_cast<double>(N) / static_cast<double>(Acc.Instructions);
  SimStats Out;
#define FPINT_SCALE(F)                                                         \
  Out.F = static_cast<uint64_t>(                                               \
      std::llround(static_cast<double>(Acc.F) * Ratio));
  FPINT_SIM_COUNTERS(FPINT_SCALE)
#undef FPINT_SCALE
  Out.Instructions = N; // The trace length is exact, not extrapolated.
  Out.Sampled = true;
  Out.SampledInstructions = Acc.Instructions;
  Out.SampledCycles = Acc.Cycles;
  return Out;
}

//===----------------------------------------------------------------------===//
// simulateModule
//===----------------------------------------------------------------------===//

SimStats timing::simulateModule(const sir::Module &M,
                                const regalloc::ModuleAlloc &Alloc,
                                const MachineConfig &Config,
                                const std::vector<int32_t> &MainArgs) {
  vm::VM::Options Opts;
  Opts.CollectTrace = true;
  vm::VM Machine(M, Opts);
  auto R = Machine.run(MainArgs);
  assert(R.Ok && "trace generation failed");
  (void)R;
  Simulator Sim(Config, Alloc);
  return Sim.run(Machine.trace());
}
