//===- timing/Simulator.cpp - Cycle-level out-of-order simulator ----------===//

#include "timing/Simulator.h"

#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace fpint;
using namespace fpint::timing;
using sir::ExecClass;
using sir::Instruction;
using sir::Opcode;
using sir::RegClass;
using vm::TraceEntry;

namespace {

constexpr uint64_t NeverCycle = ~0ULL;

/// Pre-decoded static information about one instruction.
struct InstrInfo {
  ExecClass Class = ExecClass::IntAlu;
  unsigned Latency = 1;
  bool FpSubsystem = false; ///< Issues from the FP window / FP units.
  bool IsLoad = false;
  bool IsStore = false;
  bool IsCondBranch = false;
  bool Unpipelined = false; ///< Divides occupy their unit fully.

  struct Operand {
    uint8_t File = 0;  ///< 0 = INT file, 1 = FP file.
    uint8_t Arch = 0;  ///< Architectural index within the file.
  };
  Operand Def;
  bool HasDef = false;
  Operand Uses[4];
  unsigned NumUses = 0;
};

/// One in-flight instruction.
struct RobEntry {
  const TraceEntry *TE = nullptr;
  const InstrInfo *Info = nullptr;
  uint64_t Seq = 0;        ///< Program order.
  uint64_t FetchCycle = 0;
  bool Dispatched = false;
  bool Issued = false;
  uint64_t DoneCycle = NeverCycle;
  bool Mispredicted = false;
  // Producers of this entry's operands (ROB sequence numbers; entries
  // retire in order so a missing sequence number means "ready").
  uint64_t ProducerSeq[4] = {0, 0, 0, 0};
};

} // namespace

struct Simulator::Impl {
  std::unordered_map<const Instruction *, InstrInfo> InfoCache;
  std::unique_ptr<BranchPredictor> Predictor;
  std::unique_ptr<Cache> ICache;
  std::unique_ptr<Cache> DCache;
};

Simulator::Simulator(const MachineConfig &ConfigIn,
                     const regalloc::ModuleAlloc &AllocIn)
    : Config(ConfigIn), Alloc(AllocIn), State(std::make_unique<Impl>()) {}

Simulator::~Simulator() = default;

SimStats Simulator::run(const std::vector<TraceEntry> &Trace) {
  SimStats Stats;
  Impl &S = *State;

  switch (Config.Predictor) {
  case PredictorKind::Gshare:
    S.Predictor = std::make_unique<GsharePredictor>(
        Config.PredictorTableBits, Config.PredictorHistoryBits);
    break;
  case PredictorKind::McFarling:
    S.Predictor = std::make_unique<McFarlingPredictor>(
        Config.PredictorTableBits, Config.PredictorHistoryBits);
    break;
  case PredictorKind::StaticNotTaken:
    S.Predictor = std::make_unique<StaticNotTakenPredictor>();
    break;
  }
  S.ICache = std::make_unique<Cache>(Config.ICache);
  S.DCache = std::make_unique<Cache>(Config.DCache);

  // Decode helper (memoized per static instruction).
  auto InfoOf = [&](const TraceEntry &TE) -> const InstrInfo * {
    auto It = S.InfoCache.find(TE.I);
    if (It != S.InfoCache.end())
      return &It->second;
    const Instruction &I = *TE.I;
    const sir::Function *F = I.parent()->parent();
    InstrInfo Info;
    Info.Class = sir::execClass(I.op());
    Info.Latency = sir::execLatency(Info.Class);
    Info.FpSubsystem = sir::isFpOpcode(I.op()) || I.inFpa();
    Info.IsLoad = I.isLoad();
    Info.IsStore = I.isStore();
    Info.IsCondBranch = I.isCondBranch();
    Info.Unpipelined =
        Info.Class == ExecClass::IntDiv || Info.Class == ExecClass::FpDiv;
    if (I.def().isValid()) {
      Info.HasDef = true;
      Info.Def.File = F->regClass(I.def()) == RegClass::Fp;
      Info.Def.Arch =
          static_cast<uint8_t>(Alloc.archIndexOf(F, I.def()));
    }
    I.forEachUse([&](sir::Reg R, sir::UseKind) {
      assert(Info.NumUses < 4 && "too many operands");
      Info.Uses[Info.NumUses].File = F->regClass(R) == RegClass::Fp;
      Info.Uses[Info.NumUses].Arch =
          static_cast<uint8_t>(Alloc.archIndexOf(F, R));
      ++Info.NumUses;
    });
    if (!Config.FpaEnabled)
      assert(!I.inFpa() &&
             "partitioned binary on a conventional (non-FPa) machine");
    return &S.InfoCache.emplace(TE.I, Info).first->second;
  };

  // Rename state: latest in-flight producer per architectural register,
  // identified by ROB sequence number (0 = architectural/ready).
  uint64_t RenameTable[2][regalloc::ArchLayout::FileSize] = {};
  // Committed-or-done lookup: a producer is "resolved" once done.
  std::unordered_map<uint64_t, uint64_t> DoneAt; // Seq -> DoneCycle.

  std::deque<RobEntry> Rob;     // In-flight, program order.
  std::deque<RobEntry> FetchQ;  // Fetched, not yet dispatched.
  unsigned IntWindowUsed = 0, FpWindowUsed = 0;
  unsigned IntPhysFree = Config.IntPhysRegs - regalloc::ArchLayout::FileSize;
  unsigned FpPhysFree = Config.FpPhysRegs - regalloc::ArchLayout::FileSize;

  size_t FetchIdx = 0;
  uint64_t NextSeq = 1;
  uint64_t Cycle = 0;
  uint64_t FetchResumeCycle = 0;   // Fetch stalled until this cycle.
  uint64_t PendingBranchSeq = 0;   // Mispredicted branch blocking fetch.

  std::vector<uint64_t> IntUnitFree(Config.IntUnits, 0);
  std::vector<uint64_t> FpUnitFree(Config.FpUnits, 0);

  // Producers older than the ROB head have committed (retirement is in
  // order), so their values are architectural. Returns 0 when every
  // operand is ready, else the first still-executing producer's
  // sequence number (the telemetry layer attributes the wait to it).
  auto BlockingProducer = [&](const RobEntry &E,
                              uint64_t OldestSeq) -> uint64_t {
    for (unsigned U = 0; U < E.Info->NumUses; ++U) {
      uint64_t P = E.ProducerSeq[U];
      if (P == 0 || P < OldestSeq)
        continue;
      auto It = DoneAt.find(P);
      if (It == DoneAt.end() || It->second > Cycle)
        return P;
    }
    return 0;
  };

  // Telemetry state (touched only when a sink is attached; without one
  // the loop below pays a single Sink test per cycle). MissedLoads
  // holds issued-but-unretired loads that missed the D-cache so
  // operand waits on them can be attributed to the miss; ResumeKind
  // remembers what last stalled fetch (mispredict redirect vs I-miss).
  std::unordered_set<uint64_t> MissedLoads;
  stats::StallReason ResumeKind = stats::StallReason::None;

  const uint64_t SafetyLimit =
      static_cast<uint64_t>(Trace.size() + 1000) * 400 + 100000;

  while (FetchIdx < Trace.size() || !Rob.empty() || !FetchQ.empty()) {
    // Per-cycle stall attribution (sink-only): the oldest waiting
    // instruction's issue blockage and the first dispatch blockage.
    stats::StallReason IssueBlock = stats::StallReason::None;
    stats::StallReason DispatchBlock = stats::StallReason::None;

    //===------------------------------------------------------------===//
    // Commit (in order, up to RetireWidth).
    //===------------------------------------------------------------===//
    unsigned Retired = 0;
    while (!Rob.empty() && Retired < Config.RetireWidth) {
      RobEntry &Head = Rob.front();
      if (!Head.Issued || Head.DoneCycle > Cycle)
        break;
      if (Sink && Head.Info->IsLoad)
        MissedLoads.erase(Head.Seq);
      if (Head.Info->IsStore)
        // Stores write the cache at retirement (write buffer absorbs
        // the latency; misses were charged at execute via allocation).
        S.DCache->access(Head.TE->MemAddr, /*Write=*/true);
      if (Head.Info->HasDef) {
        // Freeing the previous mapping of the destination register.
        if (Head.Info->Def.File)
          ++FpPhysFree;
        else
          ++IntPhysFree;
      }
      DoneAt.erase(Head.Seq);
      ++Stats.Instructions;
      ++Retired;
      Rob.pop_front();
    }

    //===------------------------------------------------------------===//
    // Issue (per subsystem, oldest first).
    //===------------------------------------------------------------===//
    unsigned IntIssuedNow = 0, FpIssuedNow = 0, PortsUsed = 0;
    const uint64_t OldestSeq = Rob.empty() ? NextSeq : Rob.front().Seq;
    for (RobEntry &E : Rob) {
      if (!E.Dispatched || E.Issued)
        continue;
      const InstrInfo &Info = *E.Info;
      const bool Fp = Info.FpSubsystem;
      auto &Units = Fp ? FpUnitFree : IntUnitFree;
      unsigned &IssuedNow = Fp ? FpIssuedNow : IntIssuedNow;
      if (IssuedNow >= Units.size())
        continue;
      if (uint64_t P = BlockingProducer(E, OldestSeq)) {
        if (Sink && IssueBlock == stats::StallReason::None)
          IssueBlock = MissedLoads.count(P)
                           ? stats::StallReason::DCacheMissWait
                           : stats::StallReason::OperandWait;
        continue;
      }

      // Memory constraints (INT subsystem only).
      unsigned ExtraLatency = 0;
      if (Info.IsLoad || Info.IsStore) {
        if (PortsUsed >= Config.LoadStorePorts)
          continue;
        if (Info.IsLoad) {
          // All prior store addresses must be known (i.e., issued);
          // forward from a matching completed-issue store if possible.
          bool Blocked = false;
          bool Forwarded = false;
          for (const RobEntry &Older : Rob) {
            if (Older.Seq >= E.Seq)
              break;
            if (!Older.Info->IsStore)
              continue;
            if (!Older.Issued) {
              Blocked = true;
              break;
            }
            if (Older.TE->MemAddr / 4 == E.TE->MemAddr / 4)
              Forwarded = true; // Youngest older match wins.
          }
          if (Blocked) {
            if (Sink && IssueBlock == stats::StallReason::None)
              IssueBlock = stats::StallReason::LoadBlockedStoreAddr;
            continue;
          }
          if (Forwarded) {
            ++Stats.StoreForwards;
          } else {
            unsigned Lat = S.DCache->access(E.TE->MemAddr, false);
            ExtraLatency = Lat - Config.DCache.HitLatency;
            if (ExtraLatency)
              ++Stats.DCacheMisses;
          }
        }
      }

      // Find a free functional unit.
      unsigned Unit = ~0u;
      for (unsigned U = 0; U < Units.size(); ++U)
        if (Units[U] <= Cycle) {
          Unit = U;
          break;
        }
      if (Unit == ~0u) {
        if (Sink && IssueBlock == stats::StallReason::None)
          IssueBlock = stats::StallReason::UnitBusy;
        continue;
      }

      // Issue.
      E.Issued = true;
      E.DoneCycle = Cycle + Info.Latency + ExtraLatency;
      Units[Unit] = Info.Unpipelined ? E.DoneCycle : Cycle + 1;
      ++IssuedNow;
      if (Sink && Info.IsLoad && ExtraLatency)
        MissedLoads.insert(E.Seq);
      if (Info.IsLoad || Info.IsStore)
        ++PortsUsed;
      if (Info.HasDef)
        DoneAt[E.Seq] = E.DoneCycle;
      if (E.Mispredicted) {
        FetchResumeCycle =
            std::max(FetchResumeCycle, E.DoneCycle + Config.MispredictRedirect);
        if (Sink)
          ResumeKind = stats::StallReason::FetchMispredict;
        if (PendingBranchSeq == E.Seq)
          PendingBranchSeq = 0;
      }
    }
    Stats.IntIssued += IntIssuedNow;
    Stats.FpIssued += FpIssuedNow;
    if (FpIssuedNow > 0) {
      ++Stats.FpBusyCycles;
      if (IntIssuedNow == 0)
        ++Stats.IntIdleFpBusyCycles;
    }

    //===------------------------------------------------------------===//
    // Dispatch (decode/rename, up to DecodeWidth).
    //===------------------------------------------------------------===//
    unsigned Dispatched = 0;
    while (!FetchQ.empty() && Dispatched < Config.DecodeWidth) {
      RobEntry &E = FetchQ.front();
      if (E.FetchCycle >= Cycle)
        break; // Fetched this cycle; decodes next.
      const InstrInfo &Info = *E.Info;
      if (Rob.size() >= Config.MaxInFlight) {
        if (Sink)
          DispatchBlock = stats::StallReason::RobFull;
        break;
      }
      unsigned &Window = Info.FpSubsystem ? FpWindowUsed : IntWindowUsed;
      unsigned Capacity = Info.FpSubsystem ? Config.FpWindow : Config.IntWindow;
      if (Window >= Capacity) {
        if (Sink)
          DispatchBlock = Info.FpSubsystem ? stats::StallReason::WindowFullFpa
                                           : stats::StallReason::WindowFullInt;
        break;
      }
      if (Info.HasDef) {
        unsigned &Free = Info.Def.File ? FpPhysFree : IntPhysFree;
        if (Free == 0) {
          if (Sink)
            DispatchBlock = stats::StallReason::PhysRegsFull;
          break;
        }
        --Free;
      }

      // Rename: record operand producers, claim the destination.
      for (unsigned U = 0; U < Info.NumUses; ++U)
        E.ProducerSeq[U] =
            RenameTable[Info.Uses[U].File][Info.Uses[U].Arch];
      if (Info.HasDef)
        RenameTable[Info.Def.File][Info.Def.Arch] = E.Seq;

      E.Dispatched = true;
      ++Window;
      Rob.push_back(E);
      FetchQ.pop_front();
      ++Dispatched;
    }
    // Window entries free at issue in real hardware; modeling them as
    // freed at issue:
    // (recomputed below by counting un-issued dispatched entries)
    IntWindowUsed = 0;
    FpWindowUsed = 0;
    for (const RobEntry &E : Rob)
      if (E.Dispatched && !E.Issued)
        ++(E.Info->FpSubsystem ? FpWindowUsed : IntWindowUsed);

    //===------------------------------------------------------------===//
    // Fetch (up to FetchWidth, blocked by mispredicts and I-misses).
    //===------------------------------------------------------------===//
    if (Cycle >= FetchResumeCycle && PendingBranchSeq == 0 &&
        FetchQ.size() < 2 * Config.FetchWidth) {
      for (unsigned N = 0; N < Config.FetchWidth && FetchIdx < Trace.size();
           ++N) {
        const TraceEntry &TE = Trace[FetchIdx];
        const InstrInfo *Info = InfoOf(TE);

        unsigned ILat = S.ICache->access(TE.Pc, false);
        if (ILat > Config.ICache.HitLatency) {
          ++Stats.ICacheMisses;
          FetchResumeCycle = Cycle + (ILat - Config.ICache.HitLatency);
          if (Sink)
            ResumeKind = stats::StallReason::FetchICacheMiss;
        }

        RobEntry E;
        E.TE = &TE;
        E.Info = Info;
        E.Seq = NextSeq++;
        E.FetchCycle = Cycle;
        if (Info->IsCondBranch) {
          ++Stats.CondBranches;
          bool Correct = S.Predictor->predictAndUpdate(TE.Pc, TE.Taken);
          if (!Correct) {
            ++Stats.Mispredicts;
            E.Mispredicted = true;
            PendingBranchSeq = E.Seq;
          }
        }
        if (Info->IsLoad)
          ++Stats.Loads;
        if (Info->IsStore)
          ++Stats.Stores;
        ++FetchIdx;
        bool TakenTransfer =
            (Info->IsCondBranch && TE.Taken) ||
            TE.I->op() == sir::Opcode::Jump ||
            TE.I->op() == sir::Opcode::Call ||
            TE.I->op() == sir::Opcode::Ret;
        bool StopFetch = E.Mispredicted || FetchResumeCycle > Cycle ||
                         (Config.FetchBreaksOnTaken && TakenTransfer);
        FetchQ.push_back(std::move(E));
        if (StopFetch)
          break;
      }
    }

    //===------------------------------------------------------------===//
    // Telemetry: classify the cycle and emit the event (sink-only).
    //===------------------------------------------------------------===//
    if (Sink) {
      using stats::StallReason;
      stats::CycleEvent Ev;
      Ev.IntIssued = IntIssuedNow;
      Ev.FpIssued = FpIssuedNow;
      Ev.IntWindowUsed = IntWindowUsed;
      Ev.FpWindowUsed = FpWindowUsed;
      Ev.IntWindowFull = IntWindowUsed >= Config.IntWindow;
      Ev.FpWindowFull = FpWindowUsed >= Config.FpWindow;
      if (IntIssuedNow + FpIssuedNow == 0) {
        // Attribution priority (documented in stats/Events.h): window
        // backpressure, then the oldest waiting instruction's blockage,
        // then ROB/register backpressure, then the retire/completion
        // drain, then front-end emptiness.
        StallReason R = StallReason::FrontendLatency;
        if (DispatchBlock == StallReason::WindowFullInt ||
            DispatchBlock == StallReason::WindowFullFpa)
          R = DispatchBlock;
        else if (IssueBlock != StallReason::None)
          R = IssueBlock;
        else if (DispatchBlock != StallReason::None)
          R = DispatchBlock;
        else if (!Rob.empty())
          R = StallReason::RetireStall;
        else if (PendingBranchSeq != 0)
          R = StallReason::FetchMispredict;
        else if (Cycle < FetchResumeCycle)
          R = ResumeKind != StallReason::None ? ResumeKind
                                              : StallReason::FetchMispredict;
        Ev.Reason = R;
      }
      Sink->onCycle(Ev);
    }

    ++Cycle;
    if (Cycle > SafetyLimit) {
      assert(false && "simulator failed to make progress");
      break;
    }
  }

  Stats.Cycles = Cycle;
  return Stats;
}

SimStats timing::simulateModule(const sir::Module &M,
                                const regalloc::ModuleAlloc &Alloc,
                                const MachineConfig &Config,
                                const std::vector<int32_t> &MainArgs) {
  vm::VM::Options Opts;
  Opts.CollectTrace = true;
  vm::VM Machine(M, Opts);
  auto R = Machine.run(MainArgs);
  assert(R.Ok && "trace generation failed");
  (void)R;
  Simulator Sim(Config, Alloc);
  return Sim.run(Machine.trace());
}
