//===- timing/Cache.cpp - Set-associative cache model ----------------------===//

#include "timing/Cache.h"

#include <cassert>
#include <cstddef>

using namespace fpint;
using namespace fpint::timing;

Cache::Cache(CacheConfig ConfigIn) : Config(ConfigIn) {
  assert(Config.LineBytes != 0 && Config.Assoc != 0);
  NumSets = Config.SizeBytes / (Config.LineBytes * Config.Assoc);
  assert(NumSets != 0 && (NumSets & (NumSets - 1)) == 0 &&
         "set count must be a power of two");
  Lines.assign(static_cast<size_t>(NumSets) * Config.Assoc, Line());
}

unsigned Cache::access(uint32_t Addr, bool Write) {
  ++Accesses;
  ++Tick;
  uint32_t LineAddr = Addr / Config.LineBytes;
  uint32_t Set = LineAddr & (NumSets - 1);
  uint32_t Tag = LineAddr / NumSets;
  Line *Base = &Lines[static_cast<size_t>(Set) * Config.Assoc];

  for (uint32_t W = 0; W < Config.Assoc; ++W) {
    Line &L = Base[W];
    if (L.Valid && L.Tag == Tag) {
      L.LastUse = Tick;
      L.Dirty |= Write;
      return Config.HitLatency;
    }
  }

  // Miss: evict LRU.
  ++Misses;
  Line *Victim = Base;
  for (uint32_t W = 1; W < Config.Assoc; ++W)
    if (!Base[W].Valid ||
        (Victim->Valid && Base[W].LastUse < Victim->LastUse))
      Victim = &Base[W];
  if (Victim->Valid && Victim->Dirty)
    ++Writebacks;
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->LastUse = Tick;
  Victim->Dirty = Write;
  return Config.HitLatency + Config.MissPenalty;
}

bool Cache::probe(uint32_t Addr) const {
  uint32_t LineAddr = Addr / Config.LineBytes;
  uint32_t Set = LineAddr & (NumSets - 1);
  uint32_t Tag = LineAddr / NumSets;
  const Line *Base = &Lines[static_cast<size_t>(Set) * Config.Assoc];
  for (uint32_t W = 0; W < Config.Assoc; ++W)
    if (Base[W].Valid && Base[W].Tag == Tag)
      return true;
  return false;
}
