//===- timing/PackedTrace.h - SoA-packed dynamic trace --------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cache-friendly structure-of-arrays encoding of a VM dynamic trace,
/// pre-decoded for the timing simulator's fast path.
///
/// The reference simulator walks a `std::vector<vm::TraceEntry>` and
/// chases `const sir::Instruction *` pointers on every dynamic
/// instruction: opcode class, latency, subsystem, and renamed operand
/// identities are re-derived per fetch through a per-run hash map. A
/// PackedTrace performs that decode exactly once per compiled module:
///
///  * per *static* instruction, one dense `PackedOp` record (execution
///    class, FU latency, unpipelined/load/store/branch flags, packed
///    def/use architectural register ids from the regalloc ArchIndex
///    map) -- the set of static instructions is small, so the table
///    stays hot in L1;
///  * per *dynamic* instruction, three flat parallel arrays: the index
///    of its PackedOp, its effective memory address, and its
///    branch-taken bit.
///
/// Like the entry vector it is derived from, a PackedTrace is a pure
/// function of (compiled module, ref input) -- it is independent of any
/// timing::MachineConfig, so one build serves every machine sweep. It
/// is cached on core::TraceHandle beside the entries (built at most
/// once per module) and borrowed by every simulation.
///
/// The encoding is lossless: entry(i) reconstructs the exact
/// vm::TraceEntry the packer consumed (asserted field-for-field by
/// tests/SimulatorTest.cpp), which is also how the reference loop runs
/// from a PackedTrace when the fast path is disabled.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_TIMING_PACKEDTRACE_H
#define FPINT_TIMING_PACKEDTRACE_H

#include "regalloc/RegAlloc.h"
#include "sir/IR.h"
#include "vm/VM.h"

#include <cstdint>
#include <vector>

namespace fpint {
namespace timing {

/// One statically decoded instruction of a PackedTrace. Operand fields
/// pack (file, arch index) into one byte: bit 5 selects the register
/// file (0 = INT, 1 = FP), bits 0-4 the architectural index within it
/// (regalloc::ArchLayout::FileSize == 32).
struct PackedOp {
  static constexpr uint8_t FileBit = 1u << 5;
  static constexpr uint8_t ArchMask = FileBit - 1;

  /// Static flag bits of Flags.
  enum : uint8_t {
    FpSubsystem = 1u << 0,   ///< Issues from the FP window / FP units.
    IsLoad = 1u << 1,
    IsStore = 1u << 2,
    IsCondBranch = 1u << 3,
    Unpipelined = 1u << 4,   ///< Divides occupy their unit fully.
    HasDef = 1u << 5,
    UncondTransfer = 1u << 6, ///< Jump / Call / Ret (perfectly predicted).
    InFpa = 1u << 7,          ///< Partitioned (",a") instruction.
  };

  const sir::Instruction *I = nullptr; ///< Identity (round-trip/debug).
  uint32_t Pc = 0;     ///< Static instruction address (4-byte spaced).
  uint8_t Class = 0;   ///< sir::ExecClass of the opcode.
  uint8_t Latency = 1; ///< sir::execLatency(Class).
  uint8_t Flags = 0;
  uint8_t Def = 0;     ///< Packed destination (valid iff HasDef).
  uint8_t NumUses = 0;
  uint8_t Uses[4] = {0, 0, 0, 0}; ///< Packed sources.

  bool is(uint8_t Flag) const { return (Flags & Flag) != 0; }
};

/// The packed structure-of-arrays trace (see file comment).
struct PackedTrace {
  /// Dense static decode table; OpIdx values index into it.
  std::vector<PackedOp> Ops;

  /// Parallel per-dynamic-instruction arrays, all of size().
  std::vector<uint32_t> OpIdx;
  std::vector<uint32_t> MemAddr; ///< Effective address (loads/stores).
  std::vector<uint8_t> Taken;    ///< Outcome for conditional branches.

  /// Whether any instruction carries the FPa (",a") partition bit; a
  /// conventional (FpaEnabled == false) machine must reject such a
  /// trace, checked once per run instead of once per fetch.
  bool HasFpa = false;

  size_t size() const { return OpIdx.size(); }
  bool empty() const { return OpIdx.empty(); }

  const PackedOp &op(size_t I) const { return Ops[OpIdx[I]]; }

  /// Reconstructs dynamic entry \p I exactly as the packer consumed it.
  vm::TraceEntry entry(size_t I) const {
    const PackedOp &Op = Ops[OpIdx[I]];
    vm::TraceEntry TE;
    TE.I = Op.I;
    TE.Pc = Op.Pc;
    TE.MemAddr = MemAddr[I];
    TE.Taken = Taken[I] != 0;
    return TE;
  }

  /// The full reconstructed entry vector (reference-loop fallback and
  /// round-trip tests).
  std::vector<vm::TraceEntry> entries() const;

  /// Decodes \p Trace once against \p Alloc's architectural register
  /// map. The trace must come from a register-allocated module (every
  /// operand of every traced instruction has an ArchIndex mapping).
  static PackedTrace build(const std::vector<vm::TraceEntry> &Trace,
                           const regalloc::ModuleAlloc &Alloc);
};

} // namespace timing
} // namespace fpint

#endif // FPINT_TIMING_PACKEDTRACE_H
