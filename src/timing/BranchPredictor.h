//===- timing/BranchPredictor.h - gshare / McFarling predictors -----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch prediction per Table 1 of the paper: "McFarling's gshare with
/// 32K 2-bit counters, 15 bit global history". Unconditional control
/// flow is predicted perfectly (also per Table 1), which the simulator
/// handles by never consulting the predictor for it. A McFarling
/// *combining* predictor (bimodal + gshare + chooser) is provided as an
/// ablation option.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_TIMING_BRANCHPREDICTOR_H
#define FPINT_TIMING_BRANCHPREDICTOR_H

#include <cstdint>
#include <vector>

namespace fpint {
namespace timing {

/// Two-bit saturating counter helpers.
inline uint8_t counterUpdate(uint8_t C, bool Taken) {
  if (Taken)
    return C < 3 ? C + 1 : 3;
  return C > 0 ? C - 1 : 0;
}
inline bool counterPredict(uint8_t C) { return C >= 2; }

/// Interface shared by the predictor variants.
class BranchPredictor {
public:
  virtual ~BranchPredictor() = default;

  /// Predicts the direction of the conditional branch at \p Pc.
  virtual bool predict(uint32_t Pc) = 0;

  /// Trains the predictor with the resolved outcome.
  virtual void update(uint32_t Pc, bool Taken) = 0;

  uint64_t lookups() const { return Lookups; }
  uint64_t hits() const { return Hits; }
  double accuracy() const {
    return Lookups ? static_cast<double>(Hits) / static_cast<double>(Lookups)
                   : 1.0;
  }

  /// Convenience: predict, score, and train in one step. Returns true
  /// if the prediction was correct.
  bool predictAndUpdate(uint32_t Pc, bool Taken) {
    bool Pred = predict(Pc);
    ++Lookups;
    bool Correct = Pred == Taken;
    Hits += Correct;
    update(Pc, Taken);
    return Correct;
  }

protected:
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
};

/// gshare: global history XOR branch address indexes a counter table.
class GsharePredictor : public BranchPredictor {
public:
  /// \p TableBits log2 of counter count (paper: 15 -> 32K counters);
  /// \p HistoryBits global history length (paper: 15).
  GsharePredictor(unsigned TableBits = 15, unsigned HistoryBits = 15);

  bool predict(uint32_t Pc) override;
  void update(uint32_t Pc, bool Taken) override;

private:
  unsigned index(uint32_t Pc) const;
  std::vector<uint8_t> Table;
  uint32_t History = 0;
  uint32_t HistoryMask;
  uint32_t TableMask;
};

/// McFarling combining predictor: bimodal + gshare + chooser (ablation).
class McFarlingPredictor : public BranchPredictor {
public:
  explicit McFarlingPredictor(unsigned TableBits = 15,
                              unsigned HistoryBits = 15);

  bool predict(uint32_t Pc) override;
  void update(uint32_t Pc, bool Taken) override;

private:
  GsharePredictor Gshare;
  std::vector<uint8_t> Bimodal;
  std::vector<uint8_t> Chooser;
  uint32_t TableMask;
};

/// Static not-taken predictor (ablation baseline).
class StaticNotTakenPredictor : public BranchPredictor {
public:
  bool predict(uint32_t) override { return false; }
  void update(uint32_t, bool) override {}
};

} // namespace timing
} // namespace fpint

#endif // FPINT_TIMING_BRANCHPREDICTOR_H
