//===- timing/Simulator.h - Cycle-level out-of-order simulator ------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace-driven, cycle-level timing simulator of the paper's
/// partitioned superscalar microarchitecture (Figure 1), in the style of
/// the SimpleScalar out-of-order simulator the authors derived theirs
/// from. The machine has:
///
///  * a shared front end: I-cache, gshare branch predictor (mispredicted
///    conditional branches stall fetch until they resolve, plus a
///    redirect cycle; unconditional control flow is predicted
///    perfectly), fetch/decode/rename of Table 1 widths;
///  * two execution subsystems with separate issue windows, functional
///    units, and physical register files: INT (which alone owns the
///    load/store ports and D-cache) and FP -- optionally augmented (FPa)
///    to execute the 22 offloaded integer opcodes at 1-cycle latency;
///  * out-of-order issue, loads executing only once all prior store
///    addresses are known (with store-to-load forwarding), in-order
///    retirement.
///
/// The dynamic instruction stream comes from the functional VM's trace
/// of a register-allocated module; the regalloc ArchIndex map supplies
/// each operand's architectural register identity for renaming.
///
/// Two cycle loops implement the same machine (docs/ARCHITECTURE.md,
/// "Simulator fast path"):
///
///  * the *reference loop* -- the original, deliberately simple
///    implementation over `vm::TraceEntry` vectors; kept alive as the
///    differential oracle (`FPINT_SIM_FAST=0`, and every fpint-fuzz
///    iteration races the two);
///  * the *fast loop* (default) -- runs over a pre-decoded
///    timing::PackedTrace, keeps all in-flight state in one dense
///    seq-indexed ring (the wakeup scoreboard included), and jumps the
///    cycle counter over provably idle spans instead of ticking through
///    them. It is cycle-exact: SimStats and, with a sink attached, the
///    full stall-attribution telemetry are bit-identical to the
///    reference loop.
///
/// Optionally (`FPINT_SIM_SAMPLE=warmup:window:stride`, or
/// setSampling()) a run samples the trace instead of simulating every
/// instruction: each window of `window` instructions every `stride` is
/// simulated behind `warmup` instructions of cold-start warmup, and the
/// aggregate SimStats are extrapolated from the measured windows. Such
/// stats are clearly marked (`Sampled == true`, `"sampled": true` in
/// bench reports) and must never feed golden/figure paths.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_TIMING_SIMULATOR_H
#define FPINT_TIMING_SIMULATOR_H

#include "regalloc/RegAlloc.h"
#include "sir/IR.h"
#include "stats/Events.h"
#include "timing/BranchPredictor.h"
#include "timing/Cache.h"
#include "timing/MachineConfig.h"
#include "timing/PackedTrace.h"
#include "vm/VM.h"

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace fpint {
namespace timing {

/// Aggregate statistics of one simulation.
struct SimStats {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t IntIssued = 0; ///< Instructions issued in the INT subsystem.
  uint64_t FpIssued = 0;  ///< Instructions issued in the FP subsystem.

  uint64_t CondBranches = 0;
  uint64_t Mispredicts = 0;

  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t DCacheMisses = 0;
  uint64_t ICacheMisses = 0;
  uint64_t StoreForwards = 0;

  uint64_t FpBusyCycles = 0;          ///< Cycles with >=1 FP issue.
  uint64_t IntIdleFpBusyCycles = 0;   ///< ...where INT issued nothing.

  /// Wall-clock time run() spent simulating, in milliseconds. Purely
  /// informational (never compared by the regression gate); feeds the
  /// "sim_wall_ms" / "sim_cycles_per_sec" bench-report fields.
  double SimWallMs = 0.0;

  /// Sampled-simulation provenance (see Simulator::setSampling). When
  /// Sampled is true the aggregate counters above are extrapolated
  /// from SampledInstructions retired over SampledCycles measured
  /// window cycles; Instructions remains the exact trace length.
  bool Sampled = false;
  uint64_t SampledInstructions = 0;
  uint64_t SampledCycles = 0;

  double ipc() const {
    return Cycles ? static_cast<double>(Instructions) /
                        static_cast<double>(Cycles)
                  : 0.0;
  }
  double branchAccuracy() const {
    return CondBranches ? 1.0 - static_cast<double>(Mispredicts) /
                                    static_cast<double>(CondBranches)
                        : 1.0;
  }
  /// Section 7.3's load-imbalance metric: fraction of FP-busy cycles in
  /// which the INT subsystem sat idle.
  double intIdleWhileFpBusy() const {
    return FpBusyCycles ? static_cast<double>(IntIdleFpBusyCycles) /
                              static_cast<double>(FpBusyCycles)
                        : 0.0;
  }
  /// Simulated cycles per wall second (0 when the run was too fast to
  /// time). Informational, like SimWallMs.
  double cyclesPerSecond() const {
    return SimWallMs > 0.0 ? static_cast<double>(Cycles) /
                                 (SimWallMs / 1000.0)
                           : 0.0;
  }

  /// Cycle-level telemetry collected by the run's event sink, or null
  /// when telemetry was disabled (the default). Carrying the breakdown
  /// here lets the memoizing run caches serve it alongside the
  /// aggregate counters.
  std::shared_ptr<const stats::StallBreakdown> Telemetry;
};

/// Sampled-simulation parameters: simulate `Window` instructions every
/// `Stride`, preceded by `Warmup` instructions that warm the machine
/// state but are excluded from the measurement. Inactive (full
/// simulation) unless Window > 0.
struct SampleSpec {
  uint64_t Warmup = 0;
  uint64_t Window = 0;
  uint64_t Stride = 0;

  bool enabled() const { return Window > 0; }

  /// Parses "warmup:window:stride" (decimal). Returns false (leaving
  /// \p Out untouched) on malformed input.
  static bool parse(const std::string &Text, SampleSpec &Out);

  /// The FPINT_SIM_SAMPLE environment spec; disabled when unset or
  /// malformed (a malformed value warns once on stderr).
  static SampleSpec fromEnv();
};

/// Thrown when a simulation exceeds its progress safety limit: the
/// machine configuration cannot drain the trace (e.g. zero functional
/// units for a subsystem the program needs). A typed, reportable
/// harness condition in the spirit of the vm::Trap taxonomy -- matrix
/// harnesses degrade the cell to an ERR row and the differential
/// oracle records a mismatch, instead of an assert killing the run.
class SimulationOverrun : public std::runtime_error {
public:
  SimulationOverrun(uint64_t Cycle, uint64_t Limit, uint64_t Retired,
                    uint64_t TraceSize);

  uint64_t Cycle;     ///< Cycle count when the limit tripped.
  uint64_t Limit;     ///< The safety limit that was exceeded.
  uint64_t Retired;   ///< Instructions retired by then.
  uint64_t TraceSize; ///< Dynamic instructions in the trace.
};

/// Simulates traces against one machine configuration.
class Simulator {
public:
  Simulator(const MachineConfig &Config, const regalloc::ModuleAlloc &Alloc);
  ~Simulator();

  /// Runs \p Trace to completion and returns the statistics. Packs the
  /// trace on the fly when the fast path is active; callers that
  /// simulate one module on many machines should pack once and use the
  /// PackedTrace overload instead (core::simulate does, via the
  /// TraceHandle cache). Throws SimulationOverrun if the machine
  /// cannot drain the trace.
  SimStats run(const std::vector<vm::TraceEntry> &Trace);

  /// Runs a pre-packed trace (no per-run decode). With the fast path
  /// disabled the entries are reconstructed and fed to the reference
  /// loop, so both overloads honor both paths.
  SimStats run(const PackedTrace &Trace);

  /// Attaches \p S to receive one CycleEvent per simulated cycle
  /// (stall attribution + issue occupancy). Null detaches. With no
  /// sink attached the main loop pays a single pointer test per cycle
  /// and produces bit-identical SimStats to the uninstrumented
  /// simulator. The sink must outlive run().
  void setEventSink(stats::EventSink *S) { Sink = S; }

  /// Selects the fast (packed SoA + cycle-skipping) or reference cycle
  /// loop. Defaults to the FPINT_SIM_FAST environment switch (unset or
  /// nonzero = fast; "0" = reference).
  void setFastPath(bool On) { UseFast = On; }
  bool fastPath() const { return UseFast; }

  /// Enables or disables sampled simulation for subsequent runs (an
  /// empty/disabled spec simulates every instruction). Defaults to
  /// SampleSpec::fromEnv(). Sampling requires the fast path; the
  /// reference loop always simulates the full trace.
  void setSampling(SampleSpec S) { Sample = S; }
  const SampleSpec &sampling() const { return Sample; }

  const MachineConfig &config() const { return Config; }

private:
  struct Impl;
  MachineConfig Config;
  const regalloc::ModuleAlloc &Alloc;
  std::unique_ptr<Impl> State;
  stats::EventSink *Sink = nullptr;
  bool UseFast = true;
  SampleSpec Sample;

  SimStats runReference(const std::vector<vm::TraceEntry> &Trace);
  SimStats runFast(const PackedTrace &Trace);
  SimStats runSampled(const PackedTrace &Trace);
  /// One fast-loop pass over dynamic instructions [Begin, End). When
  /// \p WarmupInstrs > 0 and \p WarmupSnap is non-null, *WarmupSnap is
  /// set to the running stats at the end of the cycle in which the
  /// WarmupInstrs-th instruction of the segment retired.
  SimStats runFastRange(const PackedTrace &Trace, size_t Begin, size_t End,
                        uint64_t WarmupInstrs, SimStats *WarmupSnap);
};

/// Convenience: VM-trace + simulate in one call. The module must be
/// register-allocated and produce a successful VM run.
SimStats simulateModule(const sir::Module &M,
                        const regalloc::ModuleAlloc &Alloc,
                        const MachineConfig &Config,
                        const std::vector<int32_t> &MainArgs = {});

} // namespace timing
} // namespace fpint

#endif // FPINT_TIMING_SIMULATOR_H
