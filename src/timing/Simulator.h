//===- timing/Simulator.h - Cycle-level out-of-order simulator ------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace-driven, cycle-level timing simulator of the paper's
/// partitioned superscalar microarchitecture (Figure 1), in the style of
/// the SimpleScalar out-of-order simulator the authors derived theirs
/// from. The machine has:
///
///  * a shared front end: I-cache, gshare branch predictor (mispredicted
///    conditional branches stall fetch until they resolve, plus a
///    redirect cycle; unconditional control flow is predicted
///    perfectly), fetch/decode/rename of Table 1 widths;
///  * two execution subsystems with separate issue windows, functional
///    units, and physical register files: INT (which alone owns the
///    load/store ports and D-cache) and FP -- optionally augmented (FPa)
///    to execute the 22 offloaded integer opcodes at 1-cycle latency;
///  * out-of-order issue, loads executing only once all prior store
///    addresses are known (with store-to-load forwarding), in-order
///    retirement.
///
/// The dynamic instruction stream comes from the functional VM's trace
/// of a register-allocated module; the regalloc ArchIndex map supplies
/// each operand's architectural register identity for renaming.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_TIMING_SIMULATOR_H
#define FPINT_TIMING_SIMULATOR_H

#include "regalloc/RegAlloc.h"
#include "sir/IR.h"
#include "stats/Events.h"
#include "timing/BranchPredictor.h"
#include "timing/Cache.h"
#include "timing/MachineConfig.h"
#include "vm/VM.h"

#include <memory>
#include <vector>

namespace fpint {
namespace timing {

/// Aggregate statistics of one simulation.
struct SimStats {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t IntIssued = 0; ///< Instructions issued in the INT subsystem.
  uint64_t FpIssued = 0;  ///< Instructions issued in the FP subsystem.

  uint64_t CondBranches = 0;
  uint64_t Mispredicts = 0;

  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t DCacheMisses = 0;
  uint64_t ICacheMisses = 0;
  uint64_t StoreForwards = 0;

  uint64_t FpBusyCycles = 0;          ///< Cycles with >=1 FP issue.
  uint64_t IntIdleFpBusyCycles = 0;   ///< ...where INT issued nothing.

  double ipc() const {
    return Cycles ? static_cast<double>(Instructions) /
                        static_cast<double>(Cycles)
                  : 0.0;
  }
  double branchAccuracy() const {
    return CondBranches ? 1.0 - static_cast<double>(Mispredicts) /
                                    static_cast<double>(CondBranches)
                        : 1.0;
  }
  /// Section 7.3's load-imbalance metric: fraction of FP-busy cycles in
  /// which the INT subsystem sat idle.
  double intIdleWhileFpBusy() const {
    return FpBusyCycles ? static_cast<double>(IntIdleFpBusyCycles) /
                              static_cast<double>(FpBusyCycles)
                        : 0.0;
  }

  /// Cycle-level telemetry collected by the run's event sink, or null
  /// when telemetry was disabled (the default). Carrying the breakdown
  /// here lets the memoizing run caches serve it alongside the
  /// aggregate counters.
  std::shared_ptr<const stats::StallBreakdown> Telemetry;
};

/// Simulates traces against one machine configuration.
class Simulator {
public:
  Simulator(const MachineConfig &Config, const regalloc::ModuleAlloc &Alloc);
  ~Simulator();

  /// Runs \p Trace to completion and returns the statistics.
  SimStats run(const std::vector<vm::TraceEntry> &Trace);

  /// Attaches \p S to receive one CycleEvent per simulated cycle
  /// (stall attribution + issue occupancy). Null detaches. With no
  /// sink attached the main loop pays a single pointer test per cycle
  /// and produces bit-identical SimStats to the uninstrumented
  /// simulator. The sink must outlive run().
  void setEventSink(stats::EventSink *S) { Sink = S; }

  const MachineConfig &config() const { return Config; }

private:
  struct Impl;
  MachineConfig Config;
  const regalloc::ModuleAlloc &Alloc;
  std::unique_ptr<Impl> State;
  stats::EventSink *Sink = nullptr;
};

/// Convenience: VM-trace + simulate in one call. The module must be
/// register-allocated and produce a successful VM run.
SimStats simulateModule(const sir::Module &M,
                        const regalloc::ModuleAlloc &Alloc,
                        const MachineConfig &Config,
                        const std::vector<int32_t> &MainArgs = {});

} // namespace timing
} // namespace fpint

#endif // FPINT_TIMING_SIMULATOR_H
