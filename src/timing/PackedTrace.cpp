//===- timing/PackedTrace.cpp - SoA-packed dynamic trace ------------------===//

#include "timing/PackedTrace.h"

#include "sir/Opcode.h"

#include <cassert>
#include <unordered_map>

using namespace fpint;
using namespace fpint::timing;
using sir::ExecClass;
using sir::Instruction;
using sir::Opcode;
using sir::RegClass;

std::vector<vm::TraceEntry> PackedTrace::entries() const {
  std::vector<vm::TraceEntry> Out;
  Out.reserve(size());
  for (size_t I = 0; I < size(); ++I)
    Out.push_back(entry(I));
  return Out;
}

PackedTrace PackedTrace::build(const std::vector<vm::TraceEntry> &Trace,
                               const regalloc::ModuleAlloc &Alloc) {
  PackedTrace PT;
  PT.OpIdx.reserve(Trace.size());
  PT.MemAddr.reserve(Trace.size());
  PT.Taken.reserve(Trace.size());

  // The decode below mirrors the reference simulator's InfoOf helper
  // field for field; the two must stay in lockstep (the fuzz oracle's
  // fast-vs-reference differential would catch a drift).
  std::unordered_map<const Instruction *, uint32_t> Index;
  Index.reserve(1024);

  for (const vm::TraceEntry &TE : Trace) {
    auto It = Index.find(TE.I);
    uint32_t Idx;
    if (It != Index.end()) {
      Idx = It->second;
    } else {
      const Instruction &I = *TE.I;
      const sir::Function *F = I.parent()->parent();
      PackedOp Op;
      Op.I = &I;
      Op.Pc = TE.Pc;
      ExecClass Class = sir::execClass(I.op());
      Op.Class = static_cast<uint8_t>(Class);
      Op.Latency = static_cast<uint8_t>(sir::execLatency(Class));
      if (sir::isFpOpcode(I.op()) || I.inFpa())
        Op.Flags |= PackedOp::FpSubsystem;
      if (I.isLoad())
        Op.Flags |= PackedOp::IsLoad;
      if (I.isStore())
        Op.Flags |= PackedOp::IsStore;
      if (I.isCondBranch())
        Op.Flags |= PackedOp::IsCondBranch;
      if (Class == ExecClass::IntDiv || Class == ExecClass::FpDiv)
        Op.Flags |= PackedOp::Unpipelined;
      if (I.op() == Opcode::Jump || I.op() == Opcode::Call ||
          I.op() == Opcode::Ret)
        Op.Flags |= PackedOp::UncondTransfer;
      if (I.inFpa()) {
        Op.Flags |= PackedOp::InFpa;
        PT.HasFpa = true;
      }
      if (I.def().isValid()) {
        Op.Flags |= PackedOp::HasDef;
        bool Fp = F->regClass(I.def()) == RegClass::Fp;
        unsigned Arch = Alloc.archIndexOf(F, I.def());
        assert(Arch < regalloc::ArchLayout::FileSize);
        Op.Def = static_cast<uint8_t>((Fp ? PackedOp::FileBit : 0) | Arch);
      }
      I.forEachUse([&](sir::Reg R, sir::UseKind) {
        assert(Op.NumUses < 4 && "too many operands");
        bool Fp = F->regClass(R) == RegClass::Fp;
        unsigned Arch = Alloc.archIndexOf(F, R);
        assert(Arch < regalloc::ArchLayout::FileSize);
        Op.Uses[Op.NumUses++] =
            static_cast<uint8_t>((Fp ? PackedOp::FileBit : 0) | Arch);
      });
      Idx = static_cast<uint32_t>(PT.Ops.size());
      PT.Ops.push_back(Op);
      Index.emplace(&I, Idx);
    }
    PT.OpIdx.push_back(Idx);
    PT.MemAddr.push_back(TE.MemAddr);
    PT.Taken.push_back(TE.Taken ? 1 : 0);
  }
  return PT;
}
