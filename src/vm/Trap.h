//===- vm/Trap.h - Typed VM trap taxonomy ---------------------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed trap taxonomy of the functional VM. Every way a sir
/// program can fail to run to completion is one TrapKind; the VM
/// reports a Trap (kind + human-readable detail) instead of a bare
/// string, so harnesses can triage failures structurally: the
/// differential oracle checks that compilation preserves deterministic
/// traps, the fuzzer buckets crashes by trap kind, and the telemetry
/// reports carry the kind of every recorded run.
///
/// Kinds split into two classes (see docs/ROBUSTNESS.md):
///
///  * Deterministic traps are semantic properties of the program and
///    its input (an out-of-bounds access, control falling off a
///    function's end, a malformed call). Partitioning and register
///    allocation must preserve them exactly: a compiled variant that
///    traps differently -- or does not trap -- has been miscompiled.
///  * Resource traps depend on interpreter budgets (step fuel, stack
///    depth, frame memory) that legitimately differ between a program
///    and its compiled clone (copies and spills add instructions), so
///    differential checks treat them as "skip", never as a verdict.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_VM_TRAP_H
#define FPINT_VM_TRAP_H

#include <cstdint>
#include <string>

namespace fpint {
namespace vm {

/// Every distinct way a run can stop abnormally. Keep in sync with
/// trapKindName() and docs/ROBUSTNESS.md.
enum class TrapKind : uint8_t {
  None = 0,          ///< The run completed normally.
  OobLoad,           ///< Load outside the flat memory image.
  OobStore,          ///< Store outside the flat memory image.
  UnknownGlobal,     ///< Address of a global the module does not declare.
  UnknownCallee,     ///< Call to a function the module does not define.
  BadArgCount,       ///< Call-site argument count != callee formals.
  NoMain,            ///< Module has no "main" to start from.
  BadMainArity,      ///< Harness passed main the wrong argument count.
  NoEntryBlock,      ///< Called function has no entry block.
  ControlFellOffEnd, ///< Execution ran past the last block.
  FuelExhausted,     ///< Dynamic instruction budget spent (resource).
  CallDepthExceeded, ///< Recursion guard tripped (resource).
  StackOverflow,     ///< Frame stack met the globals region (resource).
};

/// Stable lower-snake name of \p K ("oob_load", "fuel_exhausted", ...),
/// used in telemetry JSON and crash-bucket keys.
const char *trapKindName(TrapKind K);

/// Inverse of trapKindName(); TrapKind::None for unknown names.
TrapKind trapKindFromName(const std::string &Name);

/// True for traps that depend on interpreter budgets rather than
/// program semantics. Differential checks skip these instead of
/// requiring the compiled program to reproduce them.
bool isResourceTrap(TrapKind K);

/// True for traps the compiled program must reproduce exactly: a
/// semantic property of (program, input), not a budget (resource
/// traps) or a harness setup error (NoMain / BadMainArity).
bool isDeterministicTrap(TrapKind K);

/// One abnormal termination: the kind plus a rendered detail message
/// (site addresses, symbol names) for humans.
struct Trap {
  TrapKind Kind = TrapKind::None;
  std::string Detail;

  explicit operator bool() const { return Kind != TrapKind::None; }

  /// "kind: detail" (or just the kind name when there is no detail).
  std::string message() const;
};

} // namespace vm
} // namespace fpint

#endif // FPINT_VM_TRAP_H
