//===- vm/Trap.cpp - Typed VM trap taxonomy -------------------------------===//

#include "vm/Trap.h"

using namespace fpint;
using namespace fpint::vm;

const char *vm::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::None:
    return "none";
  case TrapKind::OobLoad:
    return "oob_load";
  case TrapKind::OobStore:
    return "oob_store";
  case TrapKind::UnknownGlobal:
    return "unknown_global";
  case TrapKind::UnknownCallee:
    return "unknown_callee";
  case TrapKind::BadArgCount:
    return "bad_arg_count";
  case TrapKind::NoMain:
    return "no_main";
  case TrapKind::BadMainArity:
    return "bad_main_arity";
  case TrapKind::NoEntryBlock:
    return "no_entry_block";
  case TrapKind::ControlFellOffEnd:
    return "control_fell_off_end";
  case TrapKind::FuelExhausted:
    return "fuel_exhausted";
  case TrapKind::CallDepthExceeded:
    return "call_depth_exceeded";
  case TrapKind::StackOverflow:
    return "stack_overflow";
  }
  return "none";
}

TrapKind vm::trapKindFromName(const std::string &Name) {
  static const TrapKind All[] = {
      TrapKind::OobLoad,           TrapKind::OobStore,
      TrapKind::UnknownGlobal,     TrapKind::UnknownCallee,
      TrapKind::BadArgCount,       TrapKind::NoMain,
      TrapKind::BadMainArity,      TrapKind::NoEntryBlock,
      TrapKind::ControlFellOffEnd,
      TrapKind::FuelExhausted,     TrapKind::CallDepthExceeded,
      TrapKind::StackOverflow};
  for (TrapKind K : All)
    if (Name == trapKindName(K))
      return K;
  return TrapKind::None;
}

bool vm::isResourceTrap(TrapKind K) {
  switch (K) {
  case TrapKind::FuelExhausted:
  case TrapKind::CallDepthExceeded:
  case TrapKind::StackOverflow:
    return true;
  default:
    return false;
  }
}

bool vm::isDeterministicTrap(TrapKind K) {
  return K != TrapKind::None && !isResourceTrap(K) &&
         K != TrapKind::NoMain && K != TrapKind::BadMainArity;
}

std::string Trap::message() const {
  if (Detail.empty())
    return trapKindName(Kind);
  return Detail;
}
