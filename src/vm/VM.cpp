//===- vm/VM.cpp - Functional interpreter for sir modules -----------------===//

#include "vm/VM.h"

#include "sir/Printer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

using namespace fpint;
using namespace fpint::vm;
using sir::Instruction;
using sir::Opcode;
using sir::Reg;
using sir::RegClass;

namespace {
constexpr uint32_t GlobalBase = 0x1000;
constexpr uint32_t CodeBase = 0x400000; // Synthetic text segment origin.
} // namespace

VM::VM(const sir::Module &M, Options Opts) : M(M), Opts(Opts) {
  Mem.assign(Opts.MemBytes, 0);
  StackTop = Opts.MemBytes;

  // Lay out globals from GlobalBase upward, word aligned, and copy in
  // initializers. The layout depends only on declaration order, so the
  // original and partitioned variants of a program agree on addresses.
  uint32_t Next = GlobalBase;
  for (const sir::Global &G : M.globals()) {
    GlobalAddrs[G.Name] = Next;
    for (size_t W = 0; W < G.Init.size(); ++W) {
      uint32_t A = Next + static_cast<uint32_t>(W) * 4;
      if (A + 4 <= Mem.size())
        std::memcpy(&Mem[A], &G.Init[W], 4);
    }
    Next += G.SizeWords * 4;
  }

  // Assign a synthetic text address to every function (4 bytes per
  // instruction, 64-byte alignment between functions) for the branch
  // predictor and instruction cache.
  uint32_t Pc = CodeBase;
  for (const auto &F : M.functions()) {
    FuncBasePc[F.get()] = Pc;
    Pc += F->numInstrIds() * 4;
    Pc = (Pc + 63u) & ~63u;
  }
}

uint32_t VM::pcOf(const Instruction &I) const {
  const sir::Function *F = I.parent()->parent();
  auto It = FuncBasePc.find(F);
  assert(It != FuncBasePc.end() && "instruction from foreign module");
  return It->second + I.id() * 4;
}

uint32_t VM::globalAddress(const std::string &Name) const {
  auto It = GlobalAddrs.find(Name);
  return It == GlobalAddrs.end() ? 0 : It->second;
}

std::vector<uint8_t> VM::globalImage() const {
  uint32_t End = GlobalBase;
  for (const sir::Global &G : M.globals()) {
    auto It = GlobalAddrs.find(G.Name);
    if (It != GlobalAddrs.end())
      End = std::max(End, It->second + G.SizeWords * 4);
  }
  End = std::min(End, static_cast<uint32_t>(Mem.size()));
  if (End <= GlobalBase)
    return {};
  return std::vector<uint8_t>(Mem.begin() + GlobalBase, Mem.begin() + End);
}

bool VM::trap(TrapKind Kind, std::string Detail) {
  if (!CurTrap) {
    CurTrap.Kind = Kind;
    CurTrap.Detail = std::move(Detail);
  }
  return false;
}

uint32_t VM::effectiveAddress(const Frame &Fr, const sir::MemOperand &Mem,
                              bool &OkFlag) {
  OkFlag = true;
  int64_t Addr = Mem.Offset;
  if (Mem.IsFrame) {
    Addr += Fr.FramePtr;
  } else if (!Mem.Symbol.empty()) {
    auto It = GlobalAddrs.find(Mem.Symbol);
    if (It == GlobalAddrs.end()) {
      trap(TrapKind::UnknownGlobal, "unknown global '" + Mem.Symbol + "'");
      OkFlag = false;
      return 0;
    }
    Addr += It->second;
  }
  if (Mem.Base.isValid())
    Addr += static_cast<uint32_t>(Fr.IntRegs[Mem.Base.id()]);
  return static_cast<uint32_t>(Addr);
}

bool VM::loadWord(uint32_t Addr, int32_t &Out) {
  if (Addr + 4 > Mem.size() || Addr + 4 < Addr) {
    return trap(TrapKind::OobLoad, "load out of bounds at " + std::to_string(Addr));
  }
  std::memcpy(&Out, &Mem[Addr], 4);
  return true;
}

bool VM::storeWord(uint32_t Addr, int32_t Value) {
  if (Addr + 4 > Mem.size() || Addr + 4 < Addr) {
    return trap(TrapKind::OobStore, "store out of bounds at " + std::to_string(Addr));
  }
  std::memcpy(&Mem[Addr], &Value, 4);
  return true;
}

bool VM::loadByte(uint32_t Addr, uint8_t &Out) {
  if (Addr >= Mem.size()) {
    return trap(TrapKind::OobLoad, "load out of bounds at " + std::to_string(Addr));
  }
  Out = Mem[Addr];
  return true;
}

bool VM::storeByte(uint32_t Addr, uint8_t Value) {
  if (Addr >= Mem.size()) {
    return trap(TrapKind::OobStore, "store out of bounds at " + std::to_string(Addr));
  }
  Mem[Addr] = Value;
  return true;
}

bool VM::exec(const sir::Function &F, const std::vector<int32_t> &Args,
              int32_t &RetValue, unsigned Depth) {
  // Native-stack headroom backstop for the depth guard: the byte cost
  // of one exec() frame varies several-fold between builds (sanitizer
  // redzones), so measure actual consumption from the outermost frame.
  char Probe;
  uintptr_t Here = reinterpret_cast<uintptr_t>(&Probe);
  if (Depth == 0) {
    NativeStackBase = Here;
  } else {
    size_t Used = NativeStackBase > Here ? NativeStackBase - Here
                                         : Here - NativeStackBase;
    if (Used > Opts.MaxNativeStackBytes)
      return trap(TrapKind::StackOverflow,
                  "interpreter stack limit exceeded in '" + F.name() + "'");
  }
  if (Depth > Opts.MaxCallDepth)
    return trap(TrapKind::CallDepthExceeded,
                "call depth limit exceeded in '" + F.name() + "'");

  Frame Fr;
  Fr.F = &F;
  Fr.IntRegs.assign(F.numRegs(), 0);
  Fr.FpRegs.assign(F.numRegs(), 0.0f);

  // Reachable from unverified modules (a call site whose argument list
  // does not match the callee); a trap, not an assert, so malformed
  // input degrades instead of aborting the harness.
  if (Args.size() != F.formals().size())
    return trap(TrapKind::BadArgCount,
                "call to '" + F.name() + "' with " +
                    std::to_string(Args.size()) + " arguments, expected " +
                    std::to_string(F.formals().size()));
  for (size_t A = 0; A < Args.size(); ++A) {
    Reg Formal = F.formals()[A];
    if (F.regClass(Formal) == RegClass::Fp) {
      // FP-passed integer argument (Section 6.6 extension): the value
      // travels as raw bits in the FP file.
      float Raw;
      std::memcpy(&Raw, &Args[A], 4);
      Fr.FpRegs[Formal.id()] = Raw;
    } else {
      Fr.IntRegs[Formal.id()] = Args[A];
    }
  }

  // Allocate this invocation's spill frame.
  uint32_t FrameBytes = (F.frameWords() * 4 + 15u) & ~15u;
  if (FrameBytes > StackTop - GlobalBase)
    return trap(TrapKind::StackOverflow, "stack overflow in '" + F.name() + "'");
  StackTop -= FrameBytes;
  Fr.FramePtr = StackTop;

  auto IntUse = [&](const Instruction &I, unsigned Idx) {
    return Fr.IntRegs[I.uses()[Idx].id()];
  };
  auto FpUse = [&](const Instruction &I, unsigned Idx) {
    return Fr.FpRegs[I.uses()[Idx].id()];
  };
  // FPa-assigned ALU instructions read/write the FP register file but
  // perform integer arithmetic on the 32-bit pattern. We model FP
  // registers of FPa values as exact integer-valued floats is NOT safe;
  // instead FP registers store raw bits for FPa data. To keep one
  // representation, integer data held in the FP file is stored via
  // bit-punned int32 inside the float array.
  auto FpBitsUse = [&](const Instruction &I, unsigned Idx) {
    int32_t V;
    float Raw = Fr.FpRegs[I.uses()[Idx].id()];
    std::memcpy(&V, &Raw, 4);
    return V;
  };
  auto SetFpBits = [&](Reg R, int32_t V) {
    float Raw;
    std::memcpy(&Raw, &V, 4);
    Fr.FpRegs[R.id()] = Raw;
  };
  const sir::Function &Fn = F;
  auto DataUse = [&](const Instruction &I, unsigned Idx) -> int32_t {
    Reg R = I.uses()[Idx];
    if (Fn.regClass(R) == RegClass::Fp)
      return FpBitsUse(I, Idx);
    return Fr.IntRegs[R.id()];
  };
  auto SetData = [&](Reg R, int32_t V) {
    if (Fn.regClass(R) == RegClass::Fp)
      SetFpBits(R, V);
    else
      Fr.IntRegs[R.id()] = V;
  };

  auto Bail = [&]() {
    StackTop += FrameBytes;
    return false;
  };

  const sir::BasicBlock *BB = F.entry();
  size_t Idx = 0;
  if (!BB) {
    trap(TrapKind::NoEntryBlock, "function '" + F.name() + "' has no entry block");
    return Bail();
  }

  bool CountedBlock = false;
  for (;;) {
    // Advance across empty blocks / block ends by falling through.
    while (BB && Idx >= BB->instructions().size()) {
      BB = BB->fallthrough();
      Idx = 0;
      CountedBlock = false;
    }
    if (!BB) {
      trap(TrapKind::ControlFellOffEnd,
           "control fell off the end of '" + F.name() + "'");
      return Bail();
    }
    if (Idx == 0 && !CountedBlock) {
      if (Opts.CollectProfile)
        ++Prof.BlockCounts[BB];
      CountedBlock = true;
    }

    const Instruction &I = *BB->instructions()[Idx];
    if (++Steps > Opts.MaxSteps) {
      trap(TrapKind::FuelExhausted, "dynamic instruction budget exceeded");
      return Bail();
    }
    if (Opts.CollectProfile)
      ++Prof.DynInstrs;

    TraceEntry TE;
    if (Opts.CollectTrace) {
      TE.I = &I;
      TE.Pc = pcOf(I);
    }
    auto Record = [&]() {
      if (Opts.CollectTrace)
        Trace.push_back(TE);
    };

    bool BranchTaken = false;
    const Opcode Op = I.op();
    switch (Op) {
    case Opcode::Add:
      SetData(I.def(), static_cast<int32_t>(
                           static_cast<uint32_t>(DataUse(I, 0)) +
                           static_cast<uint32_t>(DataUse(I, 1))));
      break;
    case Opcode::Sub:
      SetData(I.def(), static_cast<int32_t>(
                           static_cast<uint32_t>(DataUse(I, 0)) -
                           static_cast<uint32_t>(DataUse(I, 1))));
      break;
    case Opcode::AddI:
      SetData(I.def(), static_cast<int32_t>(
                           static_cast<uint32_t>(DataUse(I, 0)) +
                           static_cast<uint32_t>(I.imm())));
      break;
    case Opcode::And:
      SetData(I.def(), DataUse(I, 0) & DataUse(I, 1));
      break;
    case Opcode::AndI:
      SetData(I.def(), DataUse(I, 0) & static_cast<int32_t>(I.imm()));
      break;
    case Opcode::Or:
      SetData(I.def(), DataUse(I, 0) | DataUse(I, 1));
      break;
    case Opcode::OrI:
      SetData(I.def(), DataUse(I, 0) | static_cast<int32_t>(I.imm()));
      break;
    case Opcode::Xor:
      SetData(I.def(), DataUse(I, 0) ^ DataUse(I, 1));
      break;
    case Opcode::XorI:
      SetData(I.def(), DataUse(I, 0) ^ static_cast<int32_t>(I.imm()));
      break;
    case Opcode::Sll:
      SetData(I.def(), static_cast<int32_t>(static_cast<uint32_t>(DataUse(I, 0))
                                            << (I.imm() & 31)));
      break;
    case Opcode::Srl:
      SetData(I.def(), static_cast<int32_t>(static_cast<uint32_t>(DataUse(I, 0)) >>
                                            (I.imm() & 31)));
      break;
    case Opcode::Sra:
      SetData(I.def(), DataUse(I, 0) >> (I.imm() & 31));
      break;
    case Opcode::Slt:
      SetData(I.def(), DataUse(I, 0) < DataUse(I, 1) ? 1 : 0);
      break;
    case Opcode::SltU:
      SetData(I.def(), static_cast<uint32_t>(DataUse(I, 0)) <
                               static_cast<uint32_t>(DataUse(I, 1))
                           ? 1
                           : 0);
      break;
    case Opcode::SltI:
      SetData(I.def(), DataUse(I, 0) < static_cast<int32_t>(I.imm()) ? 1 : 0);
      break;
    case Opcode::Li:
      SetData(I.def(), static_cast<int32_t>(I.imm()));
      break;
    case Opcode::Move:
      SetData(I.def(), DataUse(I, 0));
      break;

    case Opcode::Mul:
      SetData(I.def(), static_cast<int32_t>(
                           static_cast<uint32_t>(DataUse(I, 0)) *
                           static_cast<uint32_t>(DataUse(I, 1))));
      break;
    case Opcode::Div: {
      int32_t A = DataUse(I, 0), B = DataUse(I, 1);
      int32_t R = 0;
      if (B != 0 && !(A == INT32_MIN && B == -1))
        R = A / B;
      SetData(I.def(), R);
      break;
    }
    case Opcode::Rem: {
      int32_t A = DataUse(I, 0), B = DataUse(I, 1);
      int32_t R = A;
      if (B != 0 && !(A == INT32_MIN && B == -1))
        R = A % B;
      SetData(I.def(), R);
      break;
    }
    case Opcode::SllV:
      SetData(I.def(), static_cast<int32_t>(static_cast<uint32_t>(DataUse(I, 0))
                                            << (DataUse(I, 1) & 31)));
      break;
    case Opcode::SrlV:
      SetData(I.def(), static_cast<int32_t>(static_cast<uint32_t>(DataUse(I, 0)) >>
                                            (DataUse(I, 1) & 31)));
      break;
    case Opcode::SraV:
      SetData(I.def(), DataUse(I, 0) >> (DataUse(I, 1) & 31));
      break;
    case Opcode::Nor:
      SetData(I.def(), ~(DataUse(I, 0) | DataUse(I, 1)));
      break;
    case Opcode::La: {
      bool AddrOk = true;
      uint32_t A = effectiveAddress(Fr, I.mem(), AddrOk);
      if (!AddrOk)
        return Bail();
      Fr.IntRegs[I.def().id()] = static_cast<int32_t>(A);
      break;
    }

    case Opcode::Lw: {
      bool AddrOk = true;
      uint32_t A = effectiveAddress(Fr, I.mem(), AddrOk);
      if (!AddrOk)
        return Bail();
      TE.MemAddr = A;
      int32_t V;
      if (!loadWord(A, V))
        return Bail();
      SetData(I.def(), V);
      break;
    }
    case Opcode::Lb:
    case Opcode::Lbu: {
      bool AddrOk = true;
      uint32_t A = effectiveAddress(Fr, I.mem(), AddrOk);
      if (!AddrOk)
        return Bail();
      TE.MemAddr = A;
      uint8_t B;
      if (!loadByte(A, B))
        return Bail();
      int32_t V = Op == Opcode::Lb ? static_cast<int32_t>(static_cast<int8_t>(B))
                                   : static_cast<int32_t>(B);
      Fr.IntRegs[I.def().id()] = V;
      break;
    }
    case Opcode::Sw: {
      bool AddrOk = true;
      uint32_t A = effectiveAddress(Fr, I.mem(), AddrOk);
      if (!AddrOk)
        return Bail();
      TE.MemAddr = A;
      if (!storeWord(A, DataUse(I, 0)))
        return Bail();
      break;
    }
    case Opcode::Sb: {
      bool AddrOk = true;
      uint32_t A = effectiveAddress(Fr, I.mem(), AddrOk);
      if (!AddrOk)
        return Bail();
      TE.MemAddr = A;
      if (!storeByte(A, static_cast<uint8_t>(DataUse(I, 0) & 0xFF)))
        return Bail();
      break;
    }

    case Opcode::Beq:
      BranchTaken = DataUse(I, 0) == DataUse(I, 1);
      break;
    case Opcode::Bne:
      BranchTaken = DataUse(I, 0) != DataUse(I, 1);
      break;
    case Opcode::Blez:
      BranchTaken = DataUse(I, 0) <= 0;
      break;
    case Opcode::Bgtz:
      BranchTaken = DataUse(I, 0) > 0;
      break;
    case Opcode::Bltz:
      BranchTaken = DataUse(I, 0) < 0;
      break;
    case Opcode::FBnez:
      BranchTaken = FpUse(I, 0) != 0.0f;
      break;
    case Opcode::FBeqz:
      BranchTaken = FpUse(I, 0) == 0.0f;
      break;

    case Opcode::Jump:
      TE.Taken = true;
      Record();
      BB = I.target();
      Idx = 0;
      CountedBlock = false;
      continue;

    case Opcode::Call: {
      const sir::Function *Callee = M.functionByName(I.callee());
      if (!Callee) {
        trap(TrapKind::UnknownCallee, "unknown callee '" + I.callee() + "'");
        return Bail();
      }
      std::vector<int32_t> CallArgs;
      CallArgs.reserve(I.uses().size());
      for (unsigned A = 0; A < I.uses().size(); ++A) {
        Reg ArgReg = I.uses()[A];
        if (Fn.regClass(ArgReg) == RegClass::Fp)
          CallArgs.push_back(FpBitsUse(I, A)); // FP-passed argument.
        else
          CallArgs.push_back(IntUse(I, A));
      }
      Record();
      int32_t CallRet = 0;
      if (!exec(*Callee, CallArgs, CallRet, Depth + 1))
        return Bail();
      if (I.def().isValid())
        Fr.IntRegs[I.def().id()] = CallRet;
      ++Idx;
      continue;
    }
    case Opcode::Ret:
      RetValue = I.uses().empty() ? 0 : IntUse(I, 0);
      Record();
      StackTop += FrameBytes;
      return true;

    case Opcode::CpToFp:
      SetFpBits(I.def(), Fr.IntRegs[I.uses()[0].id()]);
      break;
    case Opcode::CpToInt: {
      int32_t V;
      float Raw = Fr.FpRegs[I.uses()[0].id()];
      std::memcpy(&V, &Raw, 4);
      Fr.IntRegs[I.def().id()] = V;
      break;
    }

    case Opcode::FAdd:
      Fr.FpRegs[I.def().id()] = FpUse(I, 0) + FpUse(I, 1);
      break;
    case Opcode::FSub:
      Fr.FpRegs[I.def().id()] = FpUse(I, 0) - FpUse(I, 1);
      break;
    case Opcode::FMul:
      Fr.FpRegs[I.def().id()] = FpUse(I, 0) * FpUse(I, 1);
      break;
    case Opcode::FDiv:
      Fr.FpRegs[I.def().id()] = FpUse(I, 0) / FpUse(I, 1);
      break;
    case Opcode::FLi:
      Fr.FpRegs[I.def().id()] = I.fimm();
      break;
    case Opcode::FMove:
      Fr.FpRegs[I.def().id()] = FpUse(I, 0);
      break;
    case Opcode::FCvtIF: {
      int32_t V;
      float Raw = FpUse(I, 0);
      std::memcpy(&V, &Raw, 4);
      Fr.FpRegs[I.def().id()] = static_cast<float>(V);
      break;
    }
    case Opcode::FCvtFI: {
      // trunc.w.s semantics: NaN, infinities, and values outside the
      // int32 range produce INT32_MAX, as on MIPS. The plain cast is
      // undefined behavior for those inputs (fuzzer-found; see
      // tests/corpus/regressions/fcvt_overflow.sir).
      float Raw = FpUse(I, 0);
      int32_t V;
      if (std::isnan(Raw) || Raw >= 2147483648.0f || Raw < -2147483648.0f)
        V = std::numeric_limits<int32_t>::max();
      else
        V = static_cast<int32_t>(Raw);
      SetFpBits(I.def(), V);
      break;
    }
    case Opcode::FCmpLt:
      Fr.FpRegs[I.def().id()] = FpUse(I, 0) < FpUse(I, 1) ? 1.0f : 0.0f;
      break;
    case Opcode::FCmpLe:
      Fr.FpRegs[I.def().id()] = FpUse(I, 0) <= FpUse(I, 1) ? 1.0f : 0.0f;
      break;
    case Opcode::FCmpEq:
      Fr.FpRegs[I.def().id()] = FpUse(I, 0) == FpUse(I, 1) ? 1.0f : 0.0f;
      break;

    case Opcode::Out:
      Output.push_back(DataUse(I, 0));
      break;
    }

    if (I.isCondBranch()) {
      TE.Taken = BranchTaken;
      Record();
      if (BranchTaken) {
        BB = I.target();
        Idx = 0;
        CountedBlock = false;
      } else {
        ++Idx;
      }
      continue;
    }

    Record();
    ++Idx;
  }
}

VM::Result VM::run(const std::vector<int32_t> &MainArgs) {
  Result R;
  Steps = 0;
  CurTrap = Trap();
  const sir::Function *Main = M.functionByName("main");
  if (!Main) {
    trap(TrapKind::NoMain, "module has no 'main' function");
    R.Trap = CurTrap;
    R.Error = CurTrap.message();
    return R;
  }
  if (Main->formals().size() != MainArgs.size()) {
    trap(TrapKind::BadMainArity,
         "main expects " + std::to_string(Main->formals().size()) +
             " arguments, got " + std::to_string(MainArgs.size()));
    R.Trap = CurTrap;
    R.Error = CurTrap.message();
    return R;
  }

  Output.clear();
  Trace.clear();
  Prof = Profile();

  int32_t Ret = 0;
  bool Ok = exec(*Main, MainArgs, Ret, 0);
  R.Ok = Ok;
  R.Trap = CurTrap;
  R.Error = Ok ? std::string() : CurTrap.message();
  R.Steps = Steps;
  R.ExitValue = Ret;
  R.Output = Output;
  return R;
}

VM::Result vm::runModule(const sir::Module &M,
                         const std::vector<int32_t> &MainArgs,
                         VM::Options Opts) {
  VM Machine(M, Opts);
  return Machine.run(MainArgs);
}
