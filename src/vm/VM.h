//===- vm/VM.h - Functional interpreter for sir modules -------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A functional (not timing) interpreter for sir modules. It serves three
/// roles in the reproduction:
///
///  1. Correctness oracle: partitioned/allocated code must produce the
///     same output stream as the original program.
///  2. Profiler: per-basic-block execution counts feed the advanced
///     partitioning scheme's cost model (the paper used basic-block
///     execution profiles the same way).
///  3. Trace generator: the dynamic instruction stream (with branch
///     outcomes and effective addresses) drives the cycle-level timing
///     simulator, mirroring the SimpleScalar-derived methodology.
///
/// Semantics: 32-bit two's-complement integer arithmetic with wrapping;
/// division by zero yields 0 (remainder yields the dividend) so that
/// randomly generated programs cannot trap; single-precision IEEE floats;
/// byte-addressed little-endian memory with globals placed from 0x1000
/// upward and frame stacks growing down from the top.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_VM_VM_H
#define FPINT_VM_VM_H

#include "sir/IR.h"
#include "vm/Trap.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace fpint {
namespace vm {

/// One dynamically executed instruction, as consumed by the timing
/// simulator.
struct TraceEntry {
  const sir::Instruction *I = nullptr;
  uint32_t Pc = 0;      ///< Static instruction address (4-byte spaced).
  uint32_t MemAddr = 0; ///< Effective address for loads/stores.
  bool Taken = false;   ///< Outcome for conditional branches.
};

/// Per-module execution profile.
struct Profile {
  std::unordered_map<const sir::BasicBlock *, uint64_t> BlockCounts;
  uint64_t DynInstrs = 0;

  uint64_t countOf(const sir::BasicBlock *BB) const {
    auto It = BlockCounts.find(BB);
    return It == BlockCounts.end() ? 0 : It->second;
  }
};

/// Interprets a module starting from "main".
class VM {
public:
  struct Options {
    uint32_t MemBytes = 16u << 20;  ///< Flat memory size.
    uint64_t MaxSteps = 400000000;  ///< Dynamic instruction budget.
    /// Recursion guard. exec() recurses on the native stack (each
    /// guest frame costs a few KB of C++ stack), so this must stay
    /// small enough that the guard trap fires well before the host
    /// stack does.
    unsigned MaxCallDepth = 2000;
    /// Backstop for the depth guard: native exec() frame sizes vary
    /// wildly between builds (sanitizer redzones inflate them
    /// several-fold), so the byte consumption measured from the
    /// outermost frame is also capped, well inside the typical 8 MB
    /// host stack.
    size_t MaxNativeStackBytes = 4u << 20;
    bool CollectTrace = false;      ///< Record the dynamic trace.
    bool CollectProfile = false;    ///< Record block execution counts.
  };

  struct Result {
    bool Ok = false;
    /// Typed cause of an abnormal stop (Kind == None iff Ok). The
    /// taxonomy lives in vm/Trap.h; kinds are deterministic properties
    /// of (program, input) except the resource traps.
    vm::Trap Trap;
    /// Rendered Trap.message() for display; empty when Ok.
    std::string Error;
    uint64_t Steps = 0;
    int32_t ExitValue = 0;
    std::vector<int32_t> Output;
  };

  VM(const sir::Module &M, Options Opts);
  explicit VM(const sir::Module &M) : VM(M, Options()) {}

  /// Runs main(MainArgs...). The module's "main" must take exactly
  /// MainArgs.size() formals.
  Result run(const std::vector<int32_t> &MainArgs = {});

  const std::vector<TraceEntry> &trace() const { return Trace; }

  /// Moves the collected trace out of the VM (for callers that cache
  /// it beyond the VM's lifetime without copying).
  std::vector<TraceEntry> takeTrace() { return std::move(Trace); }
  const Profile &profile() const { return Prof; }

  /// Static code address of \p I (valid after construction).
  uint32_t pcOf(const sir::Instruction &I) const;

  /// Data address of global \p Name; 0 if unknown.
  uint32_t globalAddress(const std::string &Name) const;

  /// Copies out the globals region of memory (empty if the module has
  /// no globals). Globals are laid out purely by declaration order, so
  /// a module and its partitioned/allocated clone agree on the layout:
  /// equality of images after a run means the programs computed the
  /// same memory state. Frame/spill areas are deliberately excluded --
  /// they legitimately differ between compilations.
  std::vector<uint8_t> globalImage() const;

private:
  struct Frame {
    const sir::Function *F = nullptr;
    std::vector<int32_t> IntRegs;
    std::vector<float> FpRegs;
    uint32_t FramePtr = 0;
  };

  bool exec(const sir::Function &F, const std::vector<int32_t> &Args,
            int32_t &RetValue, unsigned Depth);
  uint32_t effectiveAddress(const Frame &Fr, const sir::MemOperand &Mem,
                            bool &OkFlag);

  bool loadWord(uint32_t Addr, int32_t &Out);
  bool storeWord(uint32_t Addr, int32_t Value);
  bool loadByte(uint32_t Addr, uint8_t &Out);
  bool storeByte(uint32_t Addr, uint8_t Value);

  const sir::Module &M;
  Options Opts;
  std::vector<uint8_t> Mem;
  std::unordered_map<std::string, uint32_t> GlobalAddrs;
  std::unordered_map<const sir::Function *, uint32_t> FuncBasePc;
  uint32_t StackTop = 0;
  uintptr_t NativeStackBase = 0;

  /// Records the typed trap that stops the current run (first trap
  /// wins) and returns false so trap sites can `return trap(...)`.
  bool trap(TrapKind Kind, std::string Detail);

  // Run state.
  uint64_t Steps = 0;
  Trap CurTrap;
  std::vector<int32_t> Output;
  std::vector<TraceEntry> Trace;
  Profile Prof;
};

/// Convenience: runs \p M and returns the result (no trace/profile).
VM::Result runModule(const sir::Module &M,
                     const std::vector<int32_t> &MainArgs = {},
                     VM::Options Opts = VM::Options());

} // namespace vm
} // namespace fpint

#endif // FPINT_VM_VM_H
