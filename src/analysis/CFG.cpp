//===- analysis/CFG.cpp - Control-flow graph utilities --------------------===//

#include "analysis/CFG.h"

#include <algorithm>
#include <cassert>

using namespace fpint;
using namespace fpint::analysis;
using sir::BasicBlock;

CFG::CFG(const sir::Function &F) : F(F) {
  const unsigned N = static_cast<unsigned>(F.blocks().size());
  Succs.resize(N);
  Preds.resize(N);
  Reachable.assign(N, false);
  LoopDepth.assign(N, 0);

  std::vector<BasicBlock *> SuccBlocks;
  for (unsigned B = 0; B < N; ++B) {
    SuccBlocks.clear();
    F.blocks()[B]->successors(SuccBlocks);
    for (BasicBlock *S : SuccBlocks) {
      Succs[B].push_back(S->index());
      Preds[S->index()].push_back(B);
    }
  }

  // Depth-first post order from the entry, then reverse.
  if (N != 0) {
    std::vector<unsigned> Post;
    std::vector<uint8_t> State(N, 0); // 0 unseen, 1 on stack, 2 done
    std::vector<std::pair<unsigned, size_t>> Stack;
    Stack.emplace_back(0u, 0u);
    State[0] = 1;
    Reachable[0] = true;
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      if (NextSucc < Succs[B].size()) {
        unsigned S = Succs[B][NextSucc++];
        if (State[S] == 0) {
          State[S] = 1;
          Reachable[S] = true;
          Stack.emplace_back(S, 0u);
        }
        continue;
      }
      State[B] = 2;
      Post.push_back(B);
      Stack.pop_back();
    }
    Rpo.assign(Post.rbegin(), Post.rend());
    for (unsigned B = 0; B < N; ++B)
      if (!Reachable[B])
        Rpo.push_back(B);
  }

  RpoNumber.assign(N, 0);
  for (unsigned Pos = 0; Pos < Rpo.size(); ++Pos)
    RpoNumber[Rpo[Pos]] = Pos;

  computeDominators();
  computeLoops();
}

void CFG::computeDominators() {
  // Cooper-Harvey-Kennedy iterative dominators over RPO.
  const unsigned N = numBlocks();
  Idom.assign(N, 0);
  if (N == 0)
    return;

  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (RpoNumber[A] > RpoNumber[B])
        A = Idom[A];
      while (RpoNumber[B] > RpoNumber[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  std::vector<bool> Processed(N, false);
  Processed[0] = true;
  while (Changed) {
    Changed = false;
    for (unsigned Pos = 1; Pos < Rpo.size(); ++Pos) {
      unsigned B = Rpo[Pos];
      if (!Reachable[B])
        continue;
      unsigned NewIdom = ~0u;
      for (unsigned P : Preds[B]) {
        if (!Reachable[P] || !Processed[P])
          continue;
        NewIdom = NewIdom == ~0u ? P : Intersect(P, NewIdom);
      }
      if (NewIdom == ~0u)
        continue;
      if (!Processed[B] || Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Processed[B] = true;
        Changed = true;
      }
    }
  }
}

bool CFG::dominates(unsigned A, unsigned B) const {
  if (!Reachable[A] || !Reachable[B])
    return false;
  unsigned Cur = B;
  for (;;) {
    if (Cur == A)
      return true;
    if (Cur == 0)
      return A == 0;
    Cur = Idom[Cur];
  }
}

bool CFG::isBackEdge(unsigned From, unsigned To) const {
  return dominates(To, From);
}

void CFG::computeLoops() {
  // For each back edge From -> Header, the natural loop body is Header
  // plus all blocks that reach From without passing through Header.
  // A block's loop depth counts the distinct headers of loops containing
  // it (multiple back edges to the same header are one loop).
  const unsigned N = numBlocks();
  std::vector<std::vector<bool>> InLoopOf; // per discovered header
  std::vector<unsigned> HeaderOf;

  for (unsigned B = 0; B < N; ++B) {
    for (unsigned S : Succs[B]) {
      if (!isBackEdge(B, S))
        continue;
      // Find (or create) this header's membership set.
      size_t H = 0;
      for (; H < HeaderOf.size(); ++H)
        if (HeaderOf[H] == S)
          break;
      if (H == HeaderOf.size()) {
        HeaderOf.push_back(S);
        Headers.push_back(S);
        InLoopOf.emplace_back(N, false);
        InLoopOf[H][S] = true;
      }
      // Reverse flood fill from the latch.
      std::vector<unsigned> Work;
      if (!InLoopOf[H][B]) {
        InLoopOf[H][B] = true;
        Work.push_back(B);
      }
      while (!Work.empty()) {
        unsigned Cur = Work.back();
        Work.pop_back();
        for (unsigned P : Preds[Cur]) {
          if (!Reachable[P] || InLoopOf[H][P])
            continue;
          InLoopOf[H][P] = true;
          Work.push_back(P);
        }
      }
    }
  }

  for (unsigned B = 0; B < N; ++B) {
    unsigned Depth = 0;
    for (const auto &Membership : InLoopOf)
      Depth += Membership[B];
    LoopDepth[B] = Depth;
  }
}
