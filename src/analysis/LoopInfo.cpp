//===- analysis/LoopInfo.cpp - Natural-loop discovery ---------------------===//

#include "analysis/LoopInfo.h"

#include "analysis/AnalysisManager.h"

#include <algorithm>
#include <map>

using namespace fpint;
using namespace fpint::analysis;

bool Loop::contains(unsigned Block) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), Block);
}

LoopInfo::LoopInfo(const sir::Function &F, const CFG &Cfg,
                   const DominatorTree &DT) {
  (void)F;
  const unsigned N = Cfg.numBlocks();
  Innermost.assign(N, Loop::NoLoop);

  // Natural-loop back edges: T -> H where H dominates T. Edges into a
  // non-dominating target (the irreducible-looking shape) form no
  // natural loop. Latches targeting the same header merge.
  std::map<unsigned, std::vector<unsigned>> LatchesByHeader;
  for (unsigned T = 0; T < N; ++T) {
    if (!DT.isReachable(T))
      continue;
    for (unsigned H : Cfg.successors(T))
      if (DT.dominates(H, T))
        LatchesByHeader[H].push_back(T);
  }

  for (auto &[Header, Latches] : LatchesByHeader) {
    Loop L;
    L.Header = Header;
    std::sort(Latches.begin(), Latches.end());
    Latches.erase(std::unique(Latches.begin(), Latches.end()), Latches.end());
    L.Latches = Latches;

    // Body: backward reachability from the latches without crossing
    // the header. Every block on such a path is dominated by the
    // header (back-edge definition), so membership is well defined.
    std::vector<bool> InLoop(N, false);
    InLoop[Header] = true;
    std::vector<unsigned> Work;
    for (unsigned T : Latches)
      if (!InLoop[T]) {
        InLoop[T] = true;
        Work.push_back(T);
      }
    while (!Work.empty()) {
      unsigned B = Work.back();
      Work.pop_back();
      for (unsigned P : Cfg.predecessors(B))
        if (DT.isReachable(P) && !InLoop[P]) {
          InLoop[P] = true;
          Work.push_back(P);
        }
    }
    for (unsigned B = 0; B < N; ++B)
      if (InLoop[B])
        L.Blocks.push_back(B);

    // Exiting / exit blocks.
    for (unsigned B : L.Blocks)
      for (unsigned S : Cfg.successors(B))
        if (!InLoop[S]) {
          if (L.Exiting.empty() || L.Exiting.back() != B)
            L.Exiting.push_back(B);
          L.Exits.push_back(S);
        }
    std::sort(L.Exits.begin(), L.Exits.end());
    L.Exits.erase(std::unique(L.Exits.begin(), L.Exits.end()), L.Exits.end());

    // Preheader: unique outside predecessor of the header whose only
    // successor is the header (so hoisted code runs iff the loop is
    // entered, and only once per entry).
    unsigned Outside = Loop::NoBlock;
    bool Unique = true;
    for (unsigned P : Cfg.predecessors(Header)) {
      if (!DT.isReachable(P) || InLoop[P])
        continue;
      if (Outside == Loop::NoBlock)
        Outside = P;
      else
        Unique = false;
    }
    if (Unique && Outside != Loop::NoBlock &&
        Cfg.successors(Outside).size() == 1)
      L.Preheader = Outside;

    Loops.push_back(std::move(L));
  }

  // Nesting: smaller loops nest inside larger ones sharing blocks.
  // Sort outermost (largest) first so a parent precedes its children
  // and Innermost can be filled by simple overwrite in order.
  std::sort(Loops.begin(), Loops.end(), [](const Loop &A, const Loop &B) {
    if (A.Blocks.size() != B.Blocks.size())
      return A.Blocks.size() > B.Blocks.size();
    return A.Header < B.Header;
  });
  for (size_t I = 0; I < Loops.size(); ++I) {
    // Parent = smallest strictly-larger loop containing our header.
    // Scanning earlier (larger) loops backward finds it first.
    for (size_t J = I; J-- > 0;) {
      if (Loops[J].Blocks.size() > Loops[I].Blocks.size() &&
          Loops[J].contains(Loops[I].Header)) {
        Loops[I].Parent = static_cast<int>(J);
        Loops[I].Depth = Loops[J].Depth + 1;
        break;
      }
    }
    for (unsigned B : Loops[I].Blocks)
      Innermost[B] = static_cast<int>(I);
  }
}

const AnalysisKey *LoopInfoAnalysis::id() {
  static AnalysisKey Key;
  return &Key;
}

std::unique_ptr<LoopInfo> LoopInfoAnalysis::run(const sir::Function &F,
                                                AnalysisManager &AM) {
  const CFG &Cfg = AM.getResult<CFGAnalysis>(F);
  const DominatorTree &DT = AM.getResult<DominatorTreeAnalysis>(F);
  return std::make_unique<LoopInfo>(F, Cfg, DT);
}
