//===- analysis/AnalysisManager.h - Cached per-function analyses ----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lazily-computed, invalidation-aware cache of program analyses, in
/// the shape LLVM-family pass managers use. Compilation stages used to
/// privately rebuild CFG / ReachingDefs / RDG / Liveness for every
/// function they touched; with the manager, a pass asks for
///
///   const analysis::CFG &Cfg = AM.getResult<analysis::CFGAnalysis>(F);
///
/// and the result is computed at most once until something invalidates
/// it. Each analysis type is identified by a unique static key; results
/// are cached per (function, analysis) pair. The manager records which
/// analyses an analysis consulted while computing (ReachingDefs pulls
/// CFG, RDG pulls both), so invalidating a dependency transitively
/// drops its dependents even if a pass claimed to preserve them.
///
/// Invalidation is driven by PreservedAnalyses sets: a pass reports
/// which analyses its IR mutations left intact, and the pass manager
/// calls invalidate() with that set after the pass. Hit / miss /
/// invalidation counters are kept globally and per analysis name; the
/// pass manager snapshots them around every pass for the per-pass
/// telemetry table.
///
/// Contract: cached analyses are built over renumbered functions and
/// hold pointers into the IR, so any pass that mutates a function must
/// not preserve that function's analyses. Module-level results (block
/// execution weights) are keyed by the profile they were derived from
/// and are only invalidated between passes, never by the per-function
/// invalidateFunction() used inside a running pass -- references
/// obtained before a loop stay valid across it.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_ANALYSIS_ANALYSISMANAGER_H
#define FPINT_ANALYSIS_ANALYSISMANAGER_H

#include "analysis/CFG.h"
#include "analysis/ExecutionEstimate.h"
#include "analysis/RDG.h"
#include "analysis/ReachingDefs.h"
#include "sir/IR.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace fpint {
namespace analysis {

/// Unique identity of one analysis type (address-of-static idiom).
struct AnalysisKey {
  char Tag = 0;
};

/// The set of analyses a pass left valid. Defaults to "none preserved"
/// -- the safe claim for any pass that mutates IR.
class PreservedAnalyses {
public:
  static PreservedAnalyses all() {
    PreservedAnalyses P;
    P.All = true;
    return P;
  }
  static PreservedAnalyses none() { return PreservedAnalyses(); }

  template <typename A> PreservedAnalyses &preserve() {
    Ids.insert(A::id());
    return *this;
  }

  bool preservesAll() const { return All; }
  bool isPreserved(const AnalysisKey *Id) const {
    return All || Ids.count(Id) != 0;
  }

private:
  bool All = false;
  std::set<const AnalysisKey *> Ids;
};

/// Caches analysis results per function (and per module for block
/// weights) with dependency-aware invalidation. Not thread-safe: one
/// manager serves one compilation pipeline.
class AnalysisManager {
public:
  struct Counters {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Invalidations = 0;
  };

  AnalysisManager() = default;
  AnalysisManager(const AnalysisManager &) = delete;
  AnalysisManager &operator=(const AnalysisManager &) = delete;

  /// The cached result of analysis \p A over \p F, computing (and
  /// caching) it on a miss. The reference stays valid until the entry
  /// is invalidated.
  template <typename A> const typename A::Result &getResult(const sir::Function &F) {
    const EntryKey K{&F, A::id()};
    if (const void *Hit = lookup(K, A::name()))
      return *static_cast<const typename A::Result *>(Hit);
    beginCompute(K);
    std::unique_ptr<typename A::Result> R = A::run(F, *this);
    const typename A::Result *Raw = R.get();
    endCompute(K, A::name(),
               std::shared_ptr<const void>(std::move(R)));
    return *Raw;
  }

  /// Module-level block execution weights derived from \p Prof (which
  /// may be null: static estimates everywhere). Cached until an
  /// invalidation that does not preserve BlockWeightsAnalysis.
  const BlockWeights &blockWeights(const sir::Module &M,
                                   const vm::Profile *Prof);

  /// Drops every cached entry whose analysis is not in \p PA, plus --
  /// transitively -- everything that depended on a dropped entry. The
  /// pass manager calls this after every pass.
  void invalidate(const PreservedAnalyses &PA);

  /// Drops every per-function entry for \p F (a pass mutated \p F
  /// mid-run). Module-level results are deliberately kept; see the
  /// file comment.
  void invalidateFunction(const sir::Function &F);

  /// Drops everything.
  void clear();

  Counters counters() const { return Counts; }
  /// Per-analysis-name counters, for tests and --time-passes.
  const std::map<std::string, Counters> &countersByAnalysis() const {
    return ByName;
  }

private:
  using EntryKey = std::pair<const void *, const AnalysisKey *>;

  struct Entry {
    std::shared_ptr<const void> Result;
    std::string Name;
    /// Entries consulted while computing this one.
    std::vector<EntryKey> Deps;
  };

  /// Counting lookup; records a dependency edge when called from
  /// inside another analysis' run().
  const void *lookup(const EntryKey &K, const char *Name);
  void beginCompute(const EntryKey &K);
  void endCompute(const EntryKey &K, const char *Name,
                  std::shared_ptr<const void> Result);
  void recordDep(const EntryKey &K);
  /// Attaches dependency edges recorded while their consumer was still
  /// being computed (see recordDep). Called before any invalidation.
  void flushPendingDeps();
  /// Removes \p K and, transitively, every entry that depends on it.
  void erase(const EntryKey &K);

  std::map<EntryKey, Entry> Entries;
  std::vector<EntryKey> Active; ///< Stack of in-flight computations.
  /// (consumer, dependency) edges awaiting the consumer's endCompute.
  std::vector<std::pair<EntryKey, EntryKey>> PendingDeps;
  Counters Counts;
  std::map<std::string, Counters> ByName;

  /// Module-level block-weights cache.
  std::unique_ptr<BlockWeights> Weights;
  const sir::Module *WeightsModule = nullptr;
  const vm::Profile *WeightsProfile = nullptr;
};

//===----------------------------------------------------------------------===//
// Concrete analyses over sir functions.
//===----------------------------------------------------------------------===//

/// analysis::CFG of a renumbered function.
struct CFGAnalysis {
  using Result = CFG;
  static const AnalysisKey *id();
  static const char *name() { return "cfg"; }
  static std::unique_ptr<Result> run(const sir::Function &F,
                                     AnalysisManager &AM);
};

/// Reaching definitions (consults CFGAnalysis).
struct ReachingDefsAnalysis {
  using Result = ReachingDefs;
  static const AnalysisKey *id();
  static const char *name() { return "reaching-defs"; }
  static std::unique_ptr<Result> run(const sir::Function &F,
                                     AnalysisManager &AM);
};

/// The register dependence graph (consults CFG + ReachingDefs).
struct RDGAnalysis {
  using Result = RDG;
  static const AnalysisKey *id();
  static const char *name() { return "rdg"; }
  static std::unique_ptr<Result> run(const sir::Function &F,
                                     AnalysisManager &AM);
};

/// Identity of the module-level block-weights result, so passes can
/// preserve or invalidate it by name like any other analysis.
struct BlockWeightsAnalysis {
  using Result = BlockWeights;
  static const AnalysisKey *id();
  static const char *name() { return "block-weights"; }
};

} // namespace analysis
} // namespace fpint

#endif // FPINT_ANALYSIS_ANALYSISMANAGER_H
