//===- analysis/LoopInfo.h - Natural-loop discovery -----------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loops of a function, discovered from dominator-identified
/// back edges. For every loop we record the header, the member blocks,
/// the latches (back-edge sources), the nesting (parent loop and
/// depth), the preheader when one exists, and the exiting/exit block
/// sets -- exactly the structure LICM (hoist target + exit domination)
/// and the unroller (trip counting, latch rewriting) consume.
///
/// Back edges whose source is not dominated by the target (the
/// irreducible-looking case) do not form a natural loop and are
/// ignored; multiple back edges into one header merge into a single
/// loop with several latches.
///
/// Registered as "loops"; computing it consults "cfg" and "domtree",
/// so invalidating the CFG transitively drops loop info too.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_ANALYSIS_LOOPINFO_H
#define FPINT_ANALYSIS_LOOPINFO_H

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "sir/IR.h"

#include <memory>
#include <vector>

namespace fpint {
namespace analysis {

class AnalysisManager;
struct AnalysisKey;

/// One natural loop. Block identity is the layout index.
struct Loop {
  static constexpr unsigned NoBlock = ~0u;
  static constexpr int NoLoop = -1;

  unsigned Header = 0;
  /// All member blocks (header included), sorted ascending.
  std::vector<unsigned> Blocks;
  /// Back-edge sources, sorted ascending.
  std::vector<unsigned> Latches;
  /// Index of the innermost enclosing loop in LoopInfo::loops(), or
  /// NoLoop for a top-level loop.
  int Parent = NoLoop;
  /// Nesting depth: 1 for a top-level loop, 2 for its children, ...
  unsigned Depth = 1;
  /// The unique predecessor of the header from outside the loop, when
  /// it exists AND has the header as its only successor; NoBlock
  /// otherwise. This is the only block a hoisted instruction may land
  /// in without executing on paths that bypass the loop.
  unsigned Preheader = NoBlock;
  /// Member blocks with at least one successor outside the loop.
  std::vector<unsigned> Exiting;
  /// Non-member successor blocks of Exiting blocks, sorted ascending.
  std::vector<unsigned> Exits;

  bool contains(unsigned Block) const;
};

/// All natural loops of one renumbered function, ordered outermost
/// first (a parent always precedes its children in loops()).
class LoopInfo {
public:
  LoopInfo(const sir::Function &F, const CFG &Cfg, const DominatorTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }

  /// Index into loops() of the innermost loop containing \p Block, or
  /// Loop::NoLoop if the block is in no loop.
  int innermostLoop(unsigned Block) const { return Innermost[Block]; }

  /// Loop-nesting depth of \p Block (0 = not in any loop).
  unsigned depth(unsigned Block) const {
    int L = Innermost[Block];
    return L == Loop::NoLoop ? 0 : Loops[static_cast<size_t>(L)].Depth;
  }

private:
  std::vector<Loop> Loops;
  std::vector<int> Innermost; ///< Per block: innermost loop or NoLoop.
};

/// AnalysisManager adapter (consults CFGAnalysis and
/// DominatorTreeAnalysis; either being dropped drops "loops" too).
struct LoopInfoAnalysis {
  using Result = LoopInfo;
  static const AnalysisKey *id();
  static const char *name() { return "loops"; }
  static std::unique_ptr<Result> run(const sir::Function &F,
                                     AnalysisManager &AM);
};

} // namespace analysis
} // namespace fpint

#endif // FPINT_ANALYSIS_LOOPINFO_H
