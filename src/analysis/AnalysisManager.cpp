//===- analysis/AnalysisManager.cpp - Cached per-function analyses --------===//

#include "analysis/AnalysisManager.h"

#include <cassert>

using namespace fpint;
using namespace fpint::analysis;

const void *AnalysisManager::lookup(const EntryKey &K, const char *Name) {
  auto It = Entries.find(K);
  if (It == Entries.end()) {
    ++Counts.Misses;
    ++ByName[Name].Misses;
    return nullptr;
  }
  ++Counts.Hits;
  ++ByName[Name].Hits;
  recordDep(K);
  return It->second.Result.get();
}

void AnalysisManager::beginCompute(const EntryKey &K) { Active.push_back(K); }

void AnalysisManager::endCompute(const EntryKey &K, const char *Name,
                                 std::shared_ptr<const void> Result) {
  assert(!Active.empty() && Active.back() == K && "unbalanced compute stack");
  Active.pop_back();
  Entry E;
  E.Result = std::move(Result);
  E.Name = Name;
  Entries.emplace(K, std::move(E));
  recordDep(K);
}

void AnalysisManager::recordDep(const EntryKey &K) {
  if (Active.empty())
    return;
  auto It = Entries.find(Active.back());
  // The consumer is still being computed, so its entry may not exist
  // yet; dependencies discovered before endCompute are attached then.
  // In practice nested getResult calls resolve depth-first, so by the
  // time a dependency is recorded the consumer is always the innermost
  // in-flight entry and we stash the edge on a side list instead.
  if (It != Entries.end()) {
    It->second.Deps.push_back(K);
    return;
  }
  PendingDeps.emplace_back(Active.back(), K);
}

void AnalysisManager::erase(const EntryKey &K) {
  auto It = Entries.find(K);
  if (It == Entries.end())
    return;
  ++Counts.Invalidations;
  ++ByName[It->second.Name].Invalidations;
  Entries.erase(It);
  // Transitively drop dependents: any entry that recorded K as a dep.
  std::vector<EntryKey> Dependents;
  for (const auto &KV : Entries)
    for (const EntryKey &Dep : KV.second.Deps)
      if (Dep == K) {
        Dependents.push_back(KV.first);
        break;
      }
  for (const EntryKey &D : Dependents)
    erase(D);
}

void AnalysisManager::invalidate(const PreservedAnalyses &PA) {
  flushPendingDeps();
  if (PA.preservesAll())
    return;
  std::vector<EntryKey> Doomed;
  for (const auto &KV : Entries)
    if (!PA.isPreserved(KV.first.second))
      Doomed.push_back(KV.first);
  for (const EntryKey &K : Doomed)
    erase(K);
  if (Weights && !PA.isPreserved(BlockWeightsAnalysis::id())) {
    Weights.reset();
    WeightsModule = nullptr;
    WeightsProfile = nullptr;
    ++Counts.Invalidations;
    ++ByName[BlockWeightsAnalysis::name()].Invalidations;
  }
}

void AnalysisManager::invalidateFunction(const sir::Function &F) {
  flushPendingDeps();
  std::vector<EntryKey> Doomed;
  for (const auto &KV : Entries)
    if (KV.first.first == static_cast<const void *>(&F))
      Doomed.push_back(KV.first);
  for (const EntryKey &K : Doomed)
    erase(K);
}

void AnalysisManager::clear() {
  Entries.clear();
  Active.clear();
  PendingDeps.clear();
  Weights.reset();
  WeightsModule = nullptr;
  WeightsProfile = nullptr;
}

void AnalysisManager::flushPendingDeps() {
  for (const auto &[Consumer, Dep] : PendingDeps) {
    auto It = Entries.find(Consumer);
    if (It != Entries.end())
      It->second.Deps.push_back(Dep);
  }
  PendingDeps.clear();
}

const BlockWeights &AnalysisManager::blockWeights(const sir::Module &M,
                                                  const vm::Profile *Prof) {
  if (Weights && WeightsModule == &M && WeightsProfile == Prof) {
    ++Counts.Hits;
    ++ByName[BlockWeightsAnalysis::name()].Hits;
    return *Weights;
  }
  ++Counts.Misses;
  ++ByName[BlockWeightsAnalysis::name()].Misses;
  Weights = std::make_unique<BlockWeights>(M, Prof);
  WeightsModule = &M;
  WeightsProfile = Prof;
  return *Weights;
}

//===----------------------------------------------------------------------===//
// Concrete analyses.
//===----------------------------------------------------------------------===//

const AnalysisKey *CFGAnalysis::id() {
  static AnalysisKey Key;
  return &Key;
}

std::unique_ptr<CFG> CFGAnalysis::run(const sir::Function &F,
                                      AnalysisManager &) {
  return std::make_unique<CFG>(F);
}

const AnalysisKey *ReachingDefsAnalysis::id() {
  static AnalysisKey Key;
  return &Key;
}

std::unique_ptr<ReachingDefs>
ReachingDefsAnalysis::run(const sir::Function &F, AnalysisManager &AM) {
  const CFG &Cfg = AM.getResult<CFGAnalysis>(F);
  return std::make_unique<ReachingDefs>(F, Cfg);
}

const AnalysisKey *RDGAnalysis::id() {
  static AnalysisKey Key;
  return &Key;
}

std::unique_ptr<RDG> RDGAnalysis::run(const sir::Function &F,
                                      AnalysisManager &AM) {
  const CFG &Cfg = AM.getResult<CFGAnalysis>(F);
  const ReachingDefs &RD = AM.getResult<ReachingDefsAnalysis>(F);
  return std::make_unique<RDG>(F, Cfg, RD);
}

const AnalysisKey *BlockWeightsAnalysis::id() {
  static AnalysisKey Key;
  return &Key;
}
