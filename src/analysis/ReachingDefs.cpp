//===- analysis/ReachingDefs.cpp - Reaching-definitions dataflow ----------===//

#include "analysis/ReachingDefs.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace fpint;
using namespace fpint::analysis;
using sir::Instruction;
using sir::Reg;

namespace {

/// Minimal bit vector for dataflow sets.
class BitVec {
public:
  explicit BitVec(unsigned Bits = 0) : Words((Bits + 63) / 64, 0) {}

  void set(unsigned I) { Words[I / 64] |= (1ULL << (I % 64)); }
  void reset(unsigned I) { Words[I / 64] &= ~(1ULL << (I % 64)); }
  bool test(unsigned I) const { return Words[I / 64] & (1ULL << (I % 64)); }

  /// this |= Other; returns true if anything changed.
  bool orWith(const BitVec &Other) {
    bool Changed = false;
    for (size_t W = 0; W < Words.size(); ++W) {
      uint64_t New = Words[W] | Other.Words[W];
      Changed |= New != Words[W];
      Words[W] = New;
    }
    return Changed;
  }

  /// this = (this & ~Kill) | Gen.
  void transfer(const BitVec &Gen, const BitVec &Kill) {
    for (size_t W = 0; W < Words.size(); ++W)
      Words[W] = (Words[W] & ~Kill.Words[W]) | Gen.Words[W];
  }

  bool operator==(const BitVec &Other) const { return Words == Other.Words; }

private:
  std::vector<uint64_t> Words;
};

} // namespace

ReachingDefs::ReachingDefs(const sir::Function &F, const CFG &Cfg) {
  // Enumerate def sites: formals first (entry definitions), then every
  // instruction def in layout order.
  std::unordered_map<uint32_t, std::vector<unsigned>> DefsOfReg;
  for (Reg Formal : F.formals()) {
    DefsOfReg[Formal.id()].push_back(static_cast<unsigned>(Defs.size()));
    Defs.push_back(DefSite{nullptr, Formal});
  }
  std::unordered_map<const Instruction *, unsigned> DefIdxOf;
  F.forEachInstr([&](const Instruction &I) {
    if (!I.def().isValid())
      return;
    DefIdxOf[&I] = static_cast<unsigned>(Defs.size());
    DefsOfReg[I.def().id()].push_back(static_cast<unsigned>(Defs.size()));
    Defs.push_back(DefSite{&I, I.def()});
  });

  const unsigned NumDefs = static_cast<unsigned>(Defs.size());
  const unsigned NumBlocks = Cfg.numBlocks();

  // GEN/KILL per block.
  std::vector<BitVec> Gen(NumBlocks, BitVec(NumDefs));
  std::vector<BitVec> Kill(NumBlocks, BitVec(NumDefs));
  for (unsigned B = 0; B < NumBlocks; ++B) {
    // Last definition of each register within the block wins.
    std::unordered_map<uint32_t, unsigned> LastDef;
    for (const auto &I : F.blocks()[B]->instructions())
      if (I->def().isValid())
        LastDef[I->def().id()] = DefIdxOf[I.get()];
    for (const auto &[RegId, DefIdx] : LastDef) {
      Gen[B].set(DefIdx);
      for (unsigned Other : DefsOfReg[RegId])
        if (Other != DefIdx)
          Kill[B].set(Other);
      // A block that defines a register also kills the def it generates
      // from the *incoming* perspective of other defs only; the
      // generated def survives by the (IN - KILL) | GEN transfer.
    }
    // Defs of registers redefined later in the same block never leave
    // the block, which the LastDef map already captures.
  }

  // Entry IN: formal-parameter definitions.
  std::vector<BitVec> In(NumBlocks, BitVec(NumDefs));
  std::vector<BitVec> Out(NumBlocks, BitVec(NumDefs));
  BitVec EntryIn(NumDefs);
  for (unsigned D = 0; D < F.formals().size(); ++D)
    EntryIn.set(D);
  if (NumBlocks > 0)
    In[0] = EntryIn;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B : Cfg.reversePostOrder()) {
      BitVec NewIn = B == 0 ? EntryIn : BitVec(NumDefs);
      for (unsigned P : Cfg.predecessors(B))
        NewIn.orWith(Out[P]);
      BitVec NewOut = NewIn;
      NewOut.transfer(Gen[B], Kill[B]);
      if (!(NewIn == In[B]) || !(NewOut == Out[B])) {
        In[B] = NewIn;
        Out[B] = NewOut;
        Changed = true;
      }
    }
  }

  // Walk each block, tracking the current reaching set precisely, and
  // record def -> use edges.
  for (unsigned B = 0; B < NumBlocks; ++B) {
    BitVec Cur = In[B];
    for (const auto &I : F.blocks()[B]->instructions()) {
      I->forEachUse([&](Reg R, sir::UseKind Kind) {
        unsigned UseIdx = static_cast<unsigned>(Uses.size());
        Uses.push_back(UseSite{I.get(), R, Kind});
        auto It = DefsOfReg.find(R.id());
        if (It == DefsOfReg.end())
          return; // Never defined: reads as zero.
        for (unsigned D : It->second)
          if (Cur.test(D))
            Edges.emplace_back(D, UseIdx);
      });
      if (I->def().isValid()) {
        for (unsigned D : DefsOfReg[I->def().id()])
          Cur.reset(D);
        Cur.set(DefIdxOf[I.get()]);
      }
    }
  }
}

std::vector<unsigned> ReachingDefs::reachingDefsOf(unsigned UseIdx) const {
  std::vector<unsigned> Result;
  for (const auto &[D, U] : Edges)
    if (U == UseIdx)
      Result.push_back(D);
  return Result;
}
