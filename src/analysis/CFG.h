//===- analysis/CFG.h - Control-flow graph utilities ----------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function control-flow analyses: predecessor/successor lists,
/// reverse post order, iterative dominators, natural-loop detection, and
/// loop nesting depth. Loop depth feeds the paper's static execution
/// estimate n_B = p_B * 5^(d_B) used when no profile covers a function.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_ANALYSIS_CFG_H
#define FPINT_ANALYSIS_CFG_H

#include "sir/IR.h"

#include <vector>

namespace fpint {
namespace analysis {

/// Control-flow facts about one function. Block identity is the layout
/// index (BasicBlock::index()), so the function must be renumbered.
class CFG {
public:
  explicit CFG(const sir::Function &F);

  const sir::Function &function() const { return F; }
  unsigned numBlocks() const { return static_cast<unsigned>(Succs.size()); }

  const std::vector<unsigned> &successors(unsigned Block) const {
    return Succs[Block];
  }
  const std::vector<unsigned> &predecessors(unsigned Block) const {
    return Preds[Block];
  }

  /// Blocks in reverse post order (entry first); unreachable blocks are
  /// appended after the reachable ones in layout order.
  const std::vector<unsigned> &reversePostOrder() const { return Rpo; }

  bool isReachable(unsigned Block) const { return Reachable[Block]; }

  /// Immediate dominator of \p Block (its own index for the entry block;
  /// entry index for unreachable blocks).
  unsigned idom(unsigned Block) const { return Idom[Block]; }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(unsigned A, unsigned B) const;

  /// True if the edge From -> To is a back edge (To dominates From).
  bool isBackEdge(unsigned From, unsigned To) const;

  /// Loop nesting depth of \p Block (0 = not in any natural loop).
  unsigned loopDepth(unsigned Block) const { return LoopDepth[Block]; }

  /// Loop headers discovered (targets of back edges), for tests.
  const std::vector<unsigned> &loopHeaders() const { return Headers; }

private:
  void computeDominators();
  void computeLoops();

  const sir::Function &F;
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;
  std::vector<unsigned> Rpo;
  std::vector<bool> Reachable;
  std::vector<unsigned> Idom;
  std::vector<unsigned> RpoNumber;
  std::vector<unsigned> LoopDepth;
  std::vector<unsigned> Headers;
};

} // namespace analysis
} // namespace fpint

#endif // FPINT_ANALYSIS_CFG_H
