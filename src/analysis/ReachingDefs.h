//===- analysis/ReachingDefs.h - Reaching-definitions dataflow ------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic reaching-definitions bitvector dataflow over a function. The
/// register dependence graph (Section 3 of the paper) draws an edge from
/// instruction i to instruction j whenever i produces a value that j may
/// consume; those edges are exactly the def-use pairs this analysis
/// computes. Formal parameters act as definitions at function entry
/// (the paper's "dummy nodes").
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_ANALYSIS_REACHINGDEFS_H
#define FPINT_ANALYSIS_REACHINGDEFS_H

#include "analysis/CFG.h"
#include "sir/IR.h"

#include <vector>

namespace fpint {
namespace analysis {

/// A definition site: either an instruction's def, or (when I is null) a
/// formal parameter defined at function entry.
struct DefSite {
  const sir::Instruction *I = nullptr;
  sir::Reg R;
};

/// A use site: one register operand of an instruction, tagged with its
/// RDG role (plain operand, address input, or stored value).
struct UseSite {
  const sir::Instruction *I = nullptr;
  sir::Reg R;
  sir::UseKind Kind = sir::UseKind::Plain;
};

/// Reaching definitions for one (renumbered) function.
class ReachingDefs {
public:
  ReachingDefs(const sir::Function &F, const CFG &Cfg);

  const std::vector<DefSite> &defSites() const { return Defs; }
  const std::vector<UseSite> &useSites() const { return Uses; }

  /// Def-use pairs as (def site index, use site index).
  const std::vector<std::pair<unsigned, unsigned>> &edges() const {
    return Edges;
  }

  /// Indices of the reaching def sites for use site \p UseIdx.
  std::vector<unsigned> reachingDefsOf(unsigned UseIdx) const;

private:
  std::vector<DefSite> Defs;
  std::vector<UseSite> Uses;
  std::vector<std::pair<unsigned, unsigned>> Edges;
};

} // namespace analysis
} // namespace fpint

#endif // FPINT_ANALYSIS_REACHINGDEFS_H
