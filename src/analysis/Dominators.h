//===- analysis/Dominators.h - Dominator tree and frontiers ---------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dominator tree of a function, with dominance frontiers, built on
/// top of the CFG's Cooper-Harvey-Kennedy immediate dominators. Where
/// analysis::CFG answers point queries (idom, dominates), this analysis
/// materializes the tree itself -- children lists, a DFS pre-order with
/// entry/exit stamps for O(1) dominance queries, and per-block
/// dominance frontiers -- which is what the dominator-ordered mid-end
/// transforms (GVN's extended-region walk, LICM's exit-domination
/// check) traverse.
///
/// Registered in the AnalysisManager as "domtree"; computing it
/// consults "cfg", so invalidating the CFG transitively drops the tree
/// (and everything built on it, e.g. "loops").
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_ANALYSIS_DOMINATORS_H
#define FPINT_ANALYSIS_DOMINATORS_H

#include "analysis/CFG.h"
#include "sir/IR.h"

#include <memory>
#include <vector>

namespace fpint {
namespace analysis {

class AnalysisManager;
struct AnalysisKey;

/// The dominator tree of one renumbered function. Block identity is the
/// layout index, like CFG. Unreachable blocks are not part of the tree:
/// they have no children, appear in no frontier, and are dominated only
/// by themselves.
class DominatorTree {
public:
  DominatorTree(const sir::Function &F, const CFG &Cfg);

  unsigned numBlocks() const { return static_cast<unsigned>(Kids.size()); }

  /// Immediate dominator (entry maps to itself; unreachable blocks map
  /// to themselves too, keeping them out of every other block's chain).
  unsigned idom(unsigned Block) const { return Idom[Block]; }

  /// Tree children of \p Block, in ascending layout order.
  const std::vector<unsigned> &children(unsigned Block) const {
    return Kids[Block];
  }

  /// True if \p A dominates \p B (reflexive), via DFS interval stamps:
  /// O(1). False whenever either block is unreachable (unless A == B).
  bool dominates(unsigned A, unsigned B) const {
    if (A == B)
      return true;
    if (!Reach[A] || !Reach[B])
      return false;
    return In[A] <= In[B] && Out[B] <= Out[A];
  }

  bool properlyDominates(unsigned A, unsigned B) const {
    return A != B && dominates(A, B);
  }

  /// Dominance frontier of \p Block: the blocks where \p Block's
  /// dominance stops (Cooper-Harvey-Kennedy walk). Sorted ascending.
  const std::vector<unsigned> &frontier(unsigned Block) const {
    return Frontier[Block];
  }

  /// Reachable blocks in dominator-tree DFS pre-order (entry first).
  /// Children are visited in ascending layout order, so the order is
  /// deterministic.
  const std::vector<unsigned> &preorder() const { return Pre; }

  bool isReachable(unsigned Block) const { return Reach[Block]; }

private:
  std::vector<unsigned> Idom;
  std::vector<std::vector<unsigned>> Kids;
  std::vector<std::vector<unsigned>> Frontier;
  std::vector<unsigned> In, Out; ///< DFS interval stamps.
  std::vector<unsigned> Pre;
  std::vector<bool> Reach;
};

/// AnalysisManager adapter (consults CFGAnalysis, so a dropped "cfg"
/// transitively drops "domtree").
struct DominatorTreeAnalysis {
  using Result = DominatorTree;
  static const AnalysisKey *id();
  static const char *name() { return "domtree"; }
  static std::unique_ptr<Result> run(const sir::Function &F,
                                     AnalysisManager &AM);
};

} // namespace analysis
} // namespace fpint

#endif // FPINT_ANALYSIS_DOMINATORS_H
