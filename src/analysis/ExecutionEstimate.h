//===- analysis/ExecutionEstimate.h - Block execution weights -------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-count estimates for the advanced partitioning scheme's cost
/// model. The paper obtains n_B from basic-block profiles; functions not
/// covered by the profile fall back to the probabilistic estimate
/// n_B = p_B * 5^(d_B), where p_B assumes both directions of every branch
/// are equally likely and d_B is the loop nesting depth (Section 6.1).
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_ANALYSIS_EXECUTIONESTIMATE_H
#define FPINT_ANALYSIS_EXECUTIONESTIMATE_H

#include "analysis/CFG.h"
#include "sir/IR.h"
#include "vm/VM.h"

#include <unordered_map>
#include <vector>

namespace fpint {
namespace analysis {

/// The paper's static estimate: n_B = p_B * 5^(d_B), indexed by block
/// layout position. p_B propagates from the entry along forward (non
/// back) edges, splitting evenly at branches.
std::vector<double> staticEstimate(const sir::Function &F, const CFG &Cfg);

/// Per-block execution weights for a whole module: profiled functions
/// use exact counts, unprofiled ones the static estimate.
class BlockWeights {
public:
  /// \p Prof may be null (forces static estimates everywhere).
  BlockWeights(const sir::Module &M, const vm::Profile *Prof);

  double weightOf(const sir::BasicBlock *BB) const {
    auto It = Weights.find(BB);
    return It == Weights.end() ? 0.0 : It->second;
  }

  /// True if the function's weights came from a profile.
  bool isProfiled(const sir::Function *F) const {
    auto It = ProfiledFuncs.find(F);
    return It != ProfiledFuncs.end() && It->second;
  }

private:
  std::unordered_map<const sir::BasicBlock *, double> Weights;
  std::unordered_map<const sir::Function *, bool> ProfiledFuncs;
};

} // namespace analysis
} // namespace fpint

#endif // FPINT_ANALYSIS_EXECUTIONESTIMATE_H
