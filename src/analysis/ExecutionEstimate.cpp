//===- analysis/ExecutionEstimate.cpp - Block execution weights -----------===//

#include "analysis/ExecutionEstimate.h"

#include <cmath>

using namespace fpint;
using namespace fpint::analysis;

std::vector<double> analysis::staticEstimate(const sir::Function &F,
                                             const CFG &Cfg) {
  (void)F;
  const unsigned N = Cfg.numBlocks();
  std::vector<double> P(N, 0.0);
  if (N == 0)
    return P;
  P[0] = 1.0;

  // Propagate probabilities along forward edges in reverse post order,
  // splitting evenly at branches (the paper's 50/50 assumption). Back
  // edges are excluded; loop weight enters through the 5^depth factor.
  for (unsigned B : Cfg.reversePostOrder()) {
    if (!Cfg.isReachable(B))
      continue;
    const auto &Succs = Cfg.successors(B);
    unsigned ForwardSuccs = 0;
    for (unsigned S : Succs)
      if (!Cfg.isBackEdge(B, S))
        ++ForwardSuccs;
    if (ForwardSuccs == 0)
      continue;
    double Share = P[B] / static_cast<double>(Succs.size());
    for (unsigned S : Succs)
      if (!Cfg.isBackEdge(B, S))
        P[S] += Share;
  }

  std::vector<double> Estimate(N, 0.0);
  for (unsigned B = 0; B < N; ++B)
    Estimate[B] = P[B] * std::pow(5.0, static_cast<double>(Cfg.loopDepth(B)));
  return Estimate;
}

BlockWeights::BlockWeights(const sir::Module &M, const vm::Profile *Prof) {
  for (const auto &F : M.functions()) {
    // A function counts as profiled if any of its blocks executed.
    bool Profiled = false;
    if (Prof)
      for (const auto &BB : F->blocks())
        if (Prof->countOf(BB.get()) != 0) {
          Profiled = true;
          break;
        }
    ProfiledFuncs[F.get()] = Profiled;
    if (Profiled) {
      for (const auto &BB : F->blocks())
        Weights[BB.get()] = static_cast<double>(Prof->countOf(BB.get()));
      continue;
    }
    CFG Cfg(*F);
    std::vector<double> Est = staticEstimate(*F, Cfg);
    for (unsigned B = 0; B < Cfg.numBlocks(); ++B)
      Weights[F->blocks()[B].get()] = Est[B];
  }
}
