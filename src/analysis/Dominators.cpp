//===- analysis/Dominators.cpp - Dominator tree and frontiers -------------===//

#include "analysis/Dominators.h"

#include "analysis/AnalysisManager.h"

#include <algorithm>

using namespace fpint;
using namespace fpint::analysis;

DominatorTree::DominatorTree(const sir::Function &F, const CFG &Cfg) {
  (void)F;
  const unsigned N = Cfg.numBlocks();
  Idom.assign(N, 0);
  Kids.assign(N, {});
  Frontier.assign(N, {});
  In.assign(N, 0);
  Out.assign(N, 0);
  Reach.assign(N, false);
  if (N == 0)
    return;

  for (unsigned B = 0; B < N; ++B) {
    Reach[B] = Cfg.isReachable(B);
    // Unreachable blocks point at themselves so they never appear on a
    // reachable block's idom chain (CFG maps them to the entry, which
    // would make them look like entry children).
    Idom[B] = Reach[B] ? Cfg.idom(B) : B;
  }
  for (unsigned B = 1; B < N; ++B)
    if (Reach[B])
      Kids[Idom[B]].push_back(B); // Ascending order by construction.

  // DFS pre-order with interval stamps for O(1) dominance queries.
  Pre.reserve(N);
  unsigned Clock = 0;
  std::vector<std::pair<unsigned, size_t>> Stack; // (block, next child).
  Stack.emplace_back(0u, 0u);
  In[0] = ++Clock;
  Pre.push_back(0);
  while (!Stack.empty()) {
    auto &[B, Next] = Stack.back();
    if (Next < Kids[B].size()) {
      unsigned C = Kids[B][Next++];
      In[C] = ++Clock;
      Pre.push_back(C);
      Stack.emplace_back(C, 0u);
    } else {
      Out[B] = ++Clock;
      Stack.pop_back();
    }
  }

  // Cooper-Harvey-Kennedy frontiers: for every join block, walk each
  // predecessor's idom chain up to the join's idom, adding the join to
  // every frontier passed.
  for (unsigned B = 0; B < N; ++B) {
    if (!Reach[B] || Cfg.predecessors(B).size() < 2)
      continue;
    for (unsigned P : Cfg.predecessors(B)) {
      if (!Reach[P])
        continue;
      unsigned Runner = P;
      while (Runner != Idom[B]) {
        Frontier[Runner].push_back(B);
        if (Runner == Idom[Runner])
          break; // Entry: defensive, cannot recur past the root.
        Runner = Idom[Runner];
      }
    }
  }
  for (auto &DF : Frontier) {
    std::sort(DF.begin(), DF.end());
    DF.erase(std::unique(DF.begin(), DF.end()), DF.end());
  }
}

const AnalysisKey *DominatorTreeAnalysis::id() {
  static AnalysisKey Key;
  return &Key;
}

std::unique_ptr<DominatorTree>
DominatorTreeAnalysis::run(const sir::Function &F, AnalysisManager &AM) {
  const CFG &Cfg = AM.getResult<CFGAnalysis>(F);
  return std::make_unique<DominatorTree>(F, Cfg);
}
