//===- analysis/RDG.h - Register dependence graph -------------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register dependence graph of Section 3 of the paper: a directed
/// graph with a node per static instruction and an edge i -> j whenever i
/// produces a register value j may consume (from reaching definitions).
/// Loads and stores are split into an address node and a value node so
/// that backward slices never cross a load's value and forward slices
/// never cross an address: the address computation executes in the INT
/// subsystem while the data may live in either register file. Calls and
/// returns get their own node kinds because the calling convention pins
/// them to integer registers; formal parameters appear as dummy
/// definition nodes at function entry (Section 6.4).
///
/// The graph also exposes the paper's computational slices: backward and
/// forward slices, the LdSt slice (everything feeding a memory address),
/// and connected components of the undirected graph, which the basic
/// partitioning scheme assigns wholesale to one subsystem.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_ANALYSIS_RDG_H
#define FPINT_ANALYSIS_RDG_H

#include "analysis/CFG.h"
#include "analysis/ReachingDefs.h"
#include "sir/IR.h"

#include <vector>

namespace fpint {
namespace analysis {

enum class NodeKind : uint8_t {
  Plain,     ///< ALU op, copy, branch, jump, or FP op.
  LoadAddr,  ///< Address half of a load (INT subsystem).
  LoadVal,   ///< Value half of a load (either register file).
  StoreAddr, ///< Address half of a store (INT subsystem).
  StoreVal,  ///< Value half of a store (either register file).
  CallNode,  ///< A call: argument uses and result def (integer regs).
  RetNode,   ///< A return: its value use (integer regs).
  OutVal,    ///< The value side of an Out (store-value-like terminal).
  Formal,    ///< Dummy definition of a formal parameter at entry.
};

struct RDGNode {
  const sir::Instruction *I = nullptr; ///< Null for Formal nodes.
  NodeKind Kind = NodeKind::Plain;
  sir::Reg Def;                       ///< Value this node defines, if any.
  const sir::BasicBlock *BB = nullptr; ///< Block for execution counts.
  std::vector<unsigned> Preds;
  std::vector<unsigned> Succs;
};

/// Register dependence graph for one (renumbered) function.
class RDG {
public:
  RDG(const sir::Function &F, const CFG &Cfg);
  /// As above, but reuses a prebuilt reaching-definitions result (the
  /// analysis manager caches both; the CFG parameter documents the
  /// dependency and keeps the overloads symmetric).
  RDG(const sir::Function &F, const CFG &Cfg, const ReachingDefs &RD);

  const sir::Function &function() const { return F; }
  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }
  const RDGNode &node(unsigned Id) const { return Nodes[Id]; }

  /// The primary node of \p I: its Plain/CallNode/RetNode/OutVal node,
  /// or ~0u for loads and stores (which have only split nodes).
  unsigned primaryNode(const sir::Instruction &I) const;
  /// The address node of load/store \p I (~0u otherwise).
  unsigned addressNode(const sir::Instruction &I) const;
  /// The value node of load/store \p I (~0u otherwise).
  unsigned valueNode(const sir::Instruction &I) const;
  /// The Formal node for formal index \p FormalIdx.
  unsigned formalNode(unsigned FormalIdx) const;

  /// Every node belonging to \p I (one for most, two for loads/stores).
  std::vector<unsigned> nodesOf(const sir::Instruction &I) const;

  /// Marks the backward slice of \p From (inclusive) in \p InSlice.
  void backwardSlice(unsigned From, std::vector<bool> &InSlice) const;
  /// Marks the forward slice of \p From (inclusive) in \p InSlice.
  void forwardSlice(unsigned From, std::vector<bool> &InSlice) const;

  /// The LdSt slice: union of backward slices of all address nodes
  /// (Section 3: "the set of all instructions that contribute to the
  /// computation of addresses for load/store instructions").
  std::vector<bool> ldstSlice() const;

  /// The branch slice rooted at branch instruction \p Br.
  std::vector<bool> branchSlice(const sir::Instruction &Br) const;

  /// Connected component id of each node in the undirected graph.
  const std::vector<unsigned> &componentOf() const { return Component; }
  unsigned numComponents() const { return NumComponents; }

  /// True if this node's value directly feeds a call argument or return
  /// value (the paper's "actual parameter" producers, Section 6.4).
  bool feedsCallOrRet(unsigned NodeId) const;

private:
  void build(const ReachingDefs &RD);
  unsigned addNode(const sir::Instruction *I, NodeKind Kind, sir::Reg Def,
                   const sir::BasicBlock *BB);
  void addEdge(unsigned From, unsigned To);
  void computeComponents();

  const sir::Function &F;
  std::vector<RDGNode> Nodes;
  // Per instruction id: primary / address / value node ids (~0u if none).
  std::vector<unsigned> Primary;
  std::vector<unsigned> Address;
  std::vector<unsigned> Value;
  std::vector<unsigned> Formals;
  std::vector<unsigned> Component;
  unsigned NumComponents = 0;
};

} // namespace analysis
} // namespace fpint

#endif // FPINT_ANALYSIS_RDG_H
