//===- analysis/RDG.cpp - Register dependence graph -----------------------===//

#include "analysis/RDG.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace fpint;
using namespace fpint::analysis;
using sir::Instruction;
using sir::Opcode;
using sir::Reg;
using sir::UseKind;

unsigned RDG::addNode(const Instruction *I, NodeKind Kind, Reg Def,
                      const sir::BasicBlock *BB) {
  Nodes.push_back(RDGNode{I, Kind, Def, BB, {}, {}});
  return static_cast<unsigned>(Nodes.size() - 1);
}

void RDG::addEdge(unsigned From, unsigned To) {
  // Avoid duplicate parallel edges (a def may reach the same use through
  // several operand slots).
  auto &Out = Nodes[From].Succs;
  if (std::find(Out.begin(), Out.end(), To) != Out.end())
    return;
  Out.push_back(To);
  Nodes[To].Preds.push_back(From);
}

RDG::RDG(const sir::Function &F, const CFG &Cfg) : F(F) {
  ReachingDefs RD(F, Cfg);
  build(RD);
}

RDG::RDG(const sir::Function &F, const CFG &, const ReachingDefs &RD)
    : F(F) {
  build(RD);
}

void RDG::build(const ReachingDefs &RD) {
  const unsigned NumInstrs = F.numInstrIds();
  Primary.assign(NumInstrs, ~0u);
  Address.assign(NumInstrs, ~0u);
  Value.assign(NumInstrs, ~0u);

  // Dummy definition nodes for formal parameters (attributed to entry).
  const sir::BasicBlock *Entry = F.entry();
  for (Reg Formal : F.formals())
    Formals.push_back(addNode(nullptr, NodeKind::Formal, Formal, Entry));

  // Create nodes. Loads and stores split into address/value halves.
  F.forEachInstr([&](const Instruction &I) {
    const sir::BasicBlock *BB = I.parent();
    const unsigned Id = I.id();
    switch (I.op()) {
    case Opcode::Lw:
    case Opcode::Lb:
    case Opcode::Lbu:
      Address[Id] = addNode(&I, NodeKind::LoadAddr, Reg(), BB);
      Value[Id] = addNode(&I, NodeKind::LoadVal, I.def(), BB);
      break;
    case Opcode::Sw:
    case Opcode::Sb:
      Address[Id] = addNode(&I, NodeKind::StoreAddr, Reg(), BB);
      Value[Id] = addNode(&I, NodeKind::StoreVal, Reg(), BB);
      break;
    case Opcode::Call:
      Primary[Id] = addNode(&I, NodeKind::CallNode, I.def(), BB);
      break;
    case Opcode::Ret:
      Primary[Id] = addNode(&I, NodeKind::RetNode, Reg(), BB);
      break;
    case Opcode::Out:
      Primary[Id] = addNode(&I, NodeKind::OutVal, Reg(), BB);
      break;
    default:
      Primary[Id] = addNode(&I, NodeKind::Plain, I.def(), BB);
      break;
    }
  });

  // Wire def-use edges through the split-node mapping.
  auto ProducerNode = [&](const DefSite &DS) -> unsigned {
    if (!DS.I) {
      // Formal parameter dummy node.
      for (size_t FI = 0; FI < F.formals().size(); ++FI)
        if (F.formals()[FI] == DS.R)
          return Formals[FI];
      assert(false && "formal def site without formal node");
      return ~0u;
    }
    const unsigned Id = DS.I->id();
    if (DS.I->isLoad())
      return Value[Id];
    return Primary[Id];
  };
  auto ConsumerNode = [&](const UseSite &US) -> unsigned {
    const unsigned Id = US.I->id();
    switch (US.Kind) {
    case UseKind::Address:
      return Address[Id];
    case UseKind::StoreValue:
      return US.I->op() == Opcode::Out ? Primary[Id] : Value[Id];
    case UseKind::Plain:
      return Primary[Id];
    }
    return ~0u;
  };

  for (const auto &[DefIdx, UseIdx] : RD.edges()) {
    unsigned From = ProducerNode(RD.defSites()[DefIdx]);
    unsigned To = ConsumerNode(RD.useSites()[UseIdx]);
    if (From != ~0u && To != ~0u)
      addEdge(From, To);
  }

  computeComponents();
}

unsigned RDG::primaryNode(const Instruction &I) const {
  return Primary[I.id()];
}
unsigned RDG::addressNode(const Instruction &I) const {
  return Address[I.id()];
}
unsigned RDG::valueNode(const Instruction &I) const { return Value[I.id()]; }

unsigned RDG::formalNode(unsigned FormalIdx) const {
  assert(FormalIdx < Formals.size() && "formal index out of range");
  return Formals[FormalIdx];
}

std::vector<unsigned> RDG::nodesOf(const Instruction &I) const {
  std::vector<unsigned> Result;
  const unsigned Id = I.id();
  if (Primary[Id] != ~0u)
    Result.push_back(Primary[Id]);
  if (Address[Id] != ~0u)
    Result.push_back(Address[Id]);
  if (Value[Id] != ~0u)
    Result.push_back(Value[Id]);
  return Result;
}

void RDG::backwardSlice(unsigned From, std::vector<bool> &InSlice) const {
  InSlice.resize(Nodes.size(), false);
  std::vector<unsigned> Work;
  if (!InSlice[From]) {
    InSlice[From] = true;
    Work.push_back(From);
  }
  while (!Work.empty()) {
    unsigned Cur = Work.back();
    Work.pop_back();
    for (unsigned P : Nodes[Cur].Preds) {
      if (InSlice[P])
        continue;
      InSlice[P] = true;
      Work.push_back(P);
    }
  }
}

void RDG::forwardSlice(unsigned From, std::vector<bool> &InSlice) const {
  InSlice.resize(Nodes.size(), false);
  std::vector<unsigned> Work;
  if (!InSlice[From]) {
    InSlice[From] = true;
    Work.push_back(From);
  }
  while (!Work.empty()) {
    unsigned Cur = Work.back();
    Work.pop_back();
    for (unsigned S : Nodes[Cur].Succs) {
      if (InSlice[S])
        continue;
      InSlice[S] = true;
      Work.push_back(S);
    }
  }
}

std::vector<bool> RDG::ldstSlice() const {
  std::vector<bool> Slice(Nodes.size(), false);
  for (unsigned N = 0; N < Nodes.size(); ++N)
    if (Nodes[N].Kind == NodeKind::LoadAddr ||
        Nodes[N].Kind == NodeKind::StoreAddr)
      backwardSlice(N, Slice);
  return Slice;
}

std::vector<bool> RDG::branchSlice(const Instruction &Br) const {
  assert(Br.isCondBranch() && "branch slice of a non-branch");
  std::vector<bool> Slice(Nodes.size(), false);
  backwardSlice(Primary[Br.id()], Slice);
  return Slice;
}

bool RDG::feedsCallOrRet(unsigned NodeId) const {
  for (unsigned S : Nodes[NodeId].Succs) {
    NodeKind K = Nodes[S].Kind;
    if (K == NodeKind::CallNode || K == NodeKind::RetNode)
      return true;
  }
  return false;
}

void RDG::computeComponents() {
  // Union-find over undirected edges.
  std::vector<unsigned> Parent(Nodes.size());
  std::iota(Parent.begin(), Parent.end(), 0u);
  std::vector<unsigned> Rank(Nodes.size(), 0);

  std::vector<unsigned> PathBuf;
  auto Find = [&](unsigned X) {
    PathBuf.clear();
    while (Parent[X] != X) {
      PathBuf.push_back(X);
      X = Parent[X];
    }
    for (unsigned P : PathBuf)
      Parent[P] = X;
    return X;
  };
  auto Union = [&](unsigned A, unsigned B) {
    A = Find(A);
    B = Find(B);
    if (A == B)
      return;
    if (Rank[A] < Rank[B])
      std::swap(A, B);
    Parent[B] = A;
    if (Rank[A] == Rank[B])
      ++Rank[A];
  };

  for (unsigned N = 0; N < Nodes.size(); ++N)
    for (unsigned S : Nodes[N].Succs)
      Union(N, S);

  Component.assign(Nodes.size(), 0);
  std::vector<unsigned> CompId(Nodes.size(), ~0u);
  NumComponents = 0;
  for (unsigned N = 0; N < Nodes.size(); ++N) {
    unsigned Root = Find(N);
    if (CompId[Root] == ~0u)
      CompId[Root] = NumComponents++;
    Component[N] = CompId[Root];
  }
}
