//===- stats/StatsRegistry.cpp - Process-wide run-record registry ---------===//

#include "stats/StatsRegistry.h"

#include "core/RunCache.h"

using namespace fpint;
using namespace fpint::stats;

void StatsRegistry::record(const std::string &Workload,
                           const core::PipelineConfig &Pipeline,
                           const timing::MachineConfig &Machine,
                           const timing::SimStats &Stats,
                           vm::TrapKind Trap,
                           std::vector<core::PassStat> Passes,
                           RegAllocSummary RegAlloc) {
  RunRecord R;
  R.Id = runId(Workload, Pipeline, Machine);
  R.Workload = Workload;
  R.Pipeline = Pipeline;
  R.Machine = Machine;
  R.Stats = Stats;
  R.Trap = Trap;
  R.Passes = std::move(Passes);
  R.RegAlloc = std::move(RegAlloc);
  std::lock_guard<std::mutex> Lock(Mu);
  Records.emplace(R.Id, std::move(R)); // First record per id wins.
}

size_t StatsRegistry::numRecords() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Records.size();
}

json::Value StatsRegistry::reportJson(const std::string &BinaryName) const {
  json::Value Doc = json::Value::object();
  Doc.set("schema", ReportSchema);
  Doc.set("binary", BinaryName);
  json::Value Runs = json::Value::array();
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &KV : Records) {
    const RunRecord &R = KV.second;
    json::Value Run = json::Value::object();
    Run.set("id", R.Id);
    Run.set("workload", R.Workload);
    Run.set("scheme", partition::schemeName(R.Pipeline.Scheme));
    Run.set("trap", vm::trapKindName(R.Trap));
    Run.set("machine", machineToJson(R.Machine));
    Run.set("pipeline", pipelineConfigToJson(R.Pipeline));
    Run.set("stats", simStatsToJson(R.Stats));
    if (!R.Passes.empty())
      Run.set("passes", passStatsToJson(R.Passes));
    if (R.RegAlloc.valid())
      Run.set("regalloc", regAllocSummaryToJson(R.RegAlloc));
    Runs.push(std::move(Run));
  }
  Doc.set("runs", std::move(Runs));
  // In-memory memoization counters of this process, so in-process
  // (RunCache) and on-disk (fpint-serve) hit rates are separable in
  // fpint-report. Misses count distinct keys and hits the replays, so
  // the numbers are scheduling-independent and safe to byte-diff.
  const core::RunCache::Stats CS = core::RunCache::global().stats();
  json::Value RC = json::Value::object();
  RC.set("compile_hits", CS.CompileHits);
  RC.set("compile_misses", CS.CompileMisses);
  RC.set("sim_hits", CS.SimHits);
  RC.set("sim_misses", CS.SimMisses);
  Doc.set("run_cache", std::move(RC));
  return Doc;
}

bool StatsRegistry::writeReport(const std::string &OutDir,
                                const std::string &BinaryName,
                                std::string *Err) const {
  return writeReportDoc(OutDir, BinaryName, reportJson(BinaryName), Err);
}

void StatsRegistry::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Records.clear();
}

StatsRegistry &StatsRegistry::global() {
  static StatsRegistry Registry;
  return Registry;
}
