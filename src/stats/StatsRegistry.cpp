//===- stats/StatsRegistry.cpp - Process-wide run-record registry ---------===//

#include "stats/StatsRegistry.h"

#include <cstdio>
#include <filesystem>

using namespace fpint;
using namespace fpint::stats;

void StatsRegistry::record(const std::string &Workload,
                           const core::PipelineConfig &Pipeline,
                           const timing::MachineConfig &Machine,
                           const timing::SimStats &Stats,
                           vm::TrapKind Trap,
                           std::vector<core::PassStat> Passes) {
  RunRecord R;
  R.Id = runId(Workload, Pipeline, Machine);
  R.Workload = Workload;
  R.Pipeline = Pipeline;
  R.Machine = Machine;
  R.Stats = Stats;
  R.Trap = Trap;
  R.Passes = std::move(Passes);
  std::lock_guard<std::mutex> Lock(Mu);
  Records.emplace(R.Id, std::move(R)); // First record per id wins.
}

size_t StatsRegistry::numRecords() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Records.size();
}

json::Value StatsRegistry::reportJson(const std::string &BinaryName) const {
  json::Value Doc = json::Value::object();
  Doc.set("schema", ReportSchema);
  Doc.set("binary", BinaryName);
  json::Value Runs = json::Value::array();
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &KV : Records) {
    const RunRecord &R = KV.second;
    json::Value Run = json::Value::object();
    Run.set("id", R.Id);
    Run.set("workload", R.Workload);
    Run.set("scheme", partition::schemeName(R.Pipeline.Scheme));
    Run.set("trap", vm::trapKindName(R.Trap));
    Run.set("machine", machineToJson(R.Machine));
    Run.set("pipeline", pipelineConfigToJson(R.Pipeline));
    Run.set("stats", simStatsToJson(R.Stats));
    if (!R.Passes.empty())
      Run.set("passes", passStatsToJson(R.Passes));
    Runs.push(std::move(Run));
  }
  Doc.set("runs", std::move(Runs));
  return Doc;
}

bool StatsRegistry::writeReport(const std::string &OutDir,
                                const std::string &BinaryName,
                                std::string *Err) const {
  std::error_code EC;
  std::filesystem::create_directories(OutDir, EC);
  if (EC) {
    if (Err)
      *Err = "cannot create " + OutDir + ": " + EC.message();
    return false;
  }
  const std::string Path = OutDir + "/" + BinaryName + ".json";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Path;
    return false;
  }
  const std::string Text = reportJson(BinaryName).dump() + "\n";
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size() && std::fclose(F) == 0;
  if (!Ok && Err)
    *Err = "short write to " + Path;
  return Ok;
}

void StatsRegistry::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Records.clear();
}

StatsRegistry &StatsRegistry::global() {
  static StatsRegistry Registry;
  return Registry;
}
