//===- stats/Report.cpp - Structured JSON results and diffing -------------===//

#include "stats/Report.h"

#include "core/RunCache.h"
#include "support/Hash.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

using namespace fpint;
using namespace fpint::stats;
using json::Value;

const char *const stats::ReportSchema = "fpint-bench-report-v1";

static Value cacheToJson(const timing::CacheConfig &C) {
  Value V = Value::object();
  V.set("size_bytes", C.SizeBytes);
  V.set("assoc", C.Assoc);
  V.set("line_bytes", C.LineBytes);
  V.set("hit_latency", C.HitLatency);
  V.set("miss_penalty", C.MissPenalty);
  return V;
}

static const char *predictorName(timing::PredictorKind K) {
  switch (K) {
  case timing::PredictorKind::Gshare:
    return "gshare";
  case timing::PredictorKind::McFarling:
    return "mcfarling";
  case timing::PredictorKind::StaticNotTaken:
    return "static_not_taken";
  }
  return "?";
}

Value stats::machineToJson(const timing::MachineConfig &M) {
  Value V = Value::object();
  V.set("name", M.Name);
  V.set("fetch_width", M.FetchWidth);
  V.set("decode_width", M.DecodeWidth);
  V.set("retire_width", M.RetireWidth);
  V.set("int_window", M.IntWindow);
  V.set("fp_window", M.FpWindow);
  V.set("max_in_flight", M.MaxInFlight);
  V.set("int_units", M.IntUnits);
  V.set("fp_units", M.FpUnits);
  V.set("load_store_ports", M.LoadStorePorts);
  V.set("int_phys_regs", M.IntPhysRegs);
  V.set("fp_phys_regs", M.FpPhysRegs);
  V.set("icache", cacheToJson(M.ICache));
  V.set("dcache", cacheToJson(M.DCache));
  Value P = Value::object();
  P.set("kind", predictorName(M.Predictor));
  P.set("table_bits", M.PredictorTableBits);
  P.set("history_bits", M.PredictorHistoryBits);
  V.set("predictor", std::move(P));
  V.set("mispredict_redirect", M.MispredictRedirect);
  V.set("fetch_breaks_on_taken", M.FetchBreaksOnTaken);
  V.set("fpa_enabled", M.FpaEnabled);
  return V;
}

static Value argsToJson(const std::vector<int32_t> &Args) {
  Value V = Value::array();
  for (int32_t A : Args)
    V.push(static_cast<int64_t>(A));
  return V;
}

Value stats::pipelineConfigToJson(const core::PipelineConfig &C) {
  Value V = Value::object();
  V.set("scheme", partition::schemeName(C.Scheme));
  Value Costs = Value::object();
  Costs.set("copy_overhead", C.Costs.CopyOverhead);
  Costs.set("dup_overhead", C.Costs.DupOverhead);
  Costs.set("fpa_share_cap", C.Costs.FpaShareCap);
  V.set("costs", std::move(Costs));
  V.set("train_args", argsToJson(C.TrainArgs));
  V.set("ref_args", argsToJson(C.RefArgs));
  V.set("run_register_allocation", C.RunRegisterAllocation);
  V.set("enable_fp_arg_passing", C.EnableFpArgPassing);
  V.set("run_optimizations", C.RunOptimizations);
  V.set("passes", C.Passes); // Explicit pipeline override ("" = default).
  V.set("regalloc", C.RegAllocator); // Backend override ("" = incumbent).
  return V;
}

RegAllocSummary RegAllocSummary::of(const regalloc::ModuleAlloc &A) {
  RegAllocSummary S;
  S.Allocator = A.AllocatorName;
  for (const auto &KV : A.Funcs) {
    ++S.Functions;
    S.SpilledIntervals += KV.second.SpilledIntervals;
    S.SpillSlots += KV.second.SpillSlots;
    S.SpillLoads += KV.second.SpillLoads;
    S.SpillStores += KV.second.SpillStores;
    S.CalleeSaveStores += KV.second.CalleeSaveStores;
    S.CalleeSaveRestores += KV.second.CalleeSaveRestores;
    S.WallMs += KV.second.WallMs;
  }
  return S;
}

Value stats::regAllocSummaryToJson(const RegAllocSummary &S) {
  Value V = Value::object();
  V.set("allocator", S.Allocator);
  V.set("functions", S.Functions);
  V.set("spilled_intervals", S.SpilledIntervals);
  V.set("spill_slots", S.SpillSlots);
  V.set("spill_loads", S.SpillLoads);
  V.set("spill_stores", S.SpillStores);
  V.set("callee_save_stores", S.CalleeSaveStores);
  V.set("callee_save_restores", S.CalleeSaveRestores);
  // Informational, like every wall_ms in the schema.
  V.set("wall_ms", S.WallMs);
  return V;
}

Value stats::passStatsToJson(const std::vector<core::PassStat> &Passes) {
  Value V = Value::array();
  for (const core::PassStat &P : Passes) {
    Value Row = Value::object();
    Row.set("name", P.Name);
    Row.set("wall_ms", P.WallMs);
    Row.set("changes", P.Changes);
    Row.set("analysis_hits", P.AnalysisHits);
    Row.set("analysis_misses", P.AnalysisMisses);
    Row.set("analysis_invalidations", P.AnalysisInvalidations);
    V.push(std::move(Row));
  }
  return V;
}

static Value histToJson(const std::vector<uint64_t> &H) {
  Value V = Value::array();
  for (uint64_t N : H)
    V.push(N);
  return V;
}

Value stats::breakdownToJson(const StallBreakdown &B) {
  Value V = Value::object();
  V.set("cycles", B.Cycles);
  V.set("non_issuing_cycles", B.NonIssuingCycles);
  Value Stalls = Value::object();
  for (unsigned R = 1; R < NumStallReasons; ++R)
    Stalls.set(stallReasonName(static_cast<StallReason>(R)),
               B.StallCycles[R]);
  V.set("stalls", std::move(Stalls));
  V.set("int_issue_hist", histToJson(B.IntIssueHist));
  V.set("fp_issue_hist", histToJson(B.FpIssueHist));
  V.set("int_window_full_cycles", B.IntWindowFullCycles);
  V.set("fp_window_full_cycles", B.FpWindowFullCycles);
  double Cyc = B.Cycles ? static_cast<double>(B.Cycles) : 1.0;
  V.set("int_window_occupancy_avg",
        static_cast<double>(B.IntWindowOccupancySum) / Cyc);
  V.set("fp_window_occupancy_avg",
        static_cast<double>(B.FpWindowOccupancySum) / Cyc);
  V.set("partition_holds", B.partitionHolds());
  return V;
}

Value stats::simStatsToJson(const timing::SimStats &S) {
  Value V = Value::object();
  V.set("cycles", S.Cycles);
  V.set("instructions", S.Instructions);
  V.set("ipc", S.ipc());
  V.set("int_issued", S.IntIssued);
  V.set("fp_issued", S.FpIssued);
  V.set("cond_branches", S.CondBranches);
  V.set("mispredicts", S.Mispredicts);
  V.set("branch_accuracy", S.branchAccuracy());
  V.set("loads", S.Loads);
  V.set("stores", S.Stores);
  V.set("dcache_misses", S.DCacheMisses);
  V.set("icache_misses", S.ICacheMisses);
  V.set("store_forwards", S.StoreForwards);
  V.set("fp_busy_cycles", S.FpBusyCycles);
  V.set("int_idle_fp_busy_cycles", S.IntIdleFpBusyCycles);
  V.set("int_idle_while_fp_busy", S.intIdleWhileFpBusy());
  // Informational throughput figures: never gated by diffReports or
  // fpint-report (wall time is machine/load dependent).
  V.set("sim_wall_ms", S.SimWallMs);
  V.set("sim_cycles_per_sec", S.cyclesPerSecond());
  if (S.Sampled) {
    // Sampled (extrapolated) statistics are clearly marked and must
    // never feed golden/figure paths.
    V.set("sampled", true);
    V.set("sampled_instructions", S.SampledInstructions);
    V.set("sampled_cycles", S.SampledCycles);
  }
  if (S.Telemetry)
    V.set("telemetry", breakdownToJson(*S.Telemetry));
  return V;
}

std::string stats::runId(const std::string &Workload,
                         const core::PipelineConfig &Pipeline,
                         const timing::MachineConfig &Machine) {
  // support::fnv1a64 is platform-stable (std::hash is not), and ids
  // are committed in golden baselines.
  uint64_t H =
      support::fnv1a64(core::RunCache::runKey(Workload, Pipeline) + "|" +
                       Machine.canonicalKey());
  char Tag[12];
  std::snprintf(Tag, sizeof(Tag), "%08" PRIx64,
                static_cast<uint64_t>((H & 0xffffffffULL) ^ (H >> 32)));
  return Workload + "/" + partition::schemeName(Pipeline.Scheme) + "/" +
         Machine.Name + "#" + Tag;
}

bool stats::writeReportDoc(const std::string &OutDir, const std::string &Name,
                           const json::Value &Doc, std::string *Err) {
  std::error_code EC;
  std::filesystem::create_directories(OutDir, EC);
  if (EC) {
    if (Err)
      *Err = "cannot create " + OutDir + ": " + EC.message();
    return false;
  }
  const std::string Path = OutDir + "/" + Name + ".json";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Path;
    return false;
  }
  const std::string Text = Doc.dump() + "\n";
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size() && std::fclose(F) == 0;
  if (!Ok && Err)
    *Err = "short write to " + Path;
  return Ok;
}

//===----------------------------------------------------------------------===//
// Diffing.
//===----------------------------------------------------------------------===//

DiffResult stats::diffReports(const Value &Base, const Value &Current,
                              const DiffOptions &Opts) {
  DiffResult R;
  auto checkSchema = [&](const Value &Doc, const char *Which) {
    if (Doc.strOr("schema", "") != ReportSchema)
      R.Problems.push_back(std::string(Which) +
                           " report has wrong or missing schema tag");
  };
  checkSchema(Base, "baseline");
  checkSchema(Current, "current");

  const Value *CurRuns = Current.find("runs");
  const Value *BaseRuns = Base.find("runs");
  if (!BaseRuns || !BaseRuns->isArray() || !CurRuns || !CurRuns->isArray()) {
    R.Problems.push_back("missing runs array");
    return R;
  }

  auto findRun = [&](const std::string &Id) -> const Value * {
    for (const Value &Run : CurRuns->items())
      if (Run.strOr("id", "") == Id)
        return &Run;
    return nullptr;
  };

  for (const Value &BaseRun : BaseRuns->items()) {
    const std::string Id = BaseRun.strOr("id", "");
    const Value *CurRun = findRun(Id);
    if (!CurRun) {
      R.Problems.push_back("run missing from current tree: " + Id);
      continue;
    }
    const Value *BS = BaseRun.find("stats");
    const Value *CS = CurRun->find("stats");
    if (!BS || !BS->isObject() || !CS || !CS->isObject()) {
      R.Problems.push_back("run has no stats object: " + Id);
      continue;
    }

    auto addDelta = [&](const char *Metric, double B, double C,
                        bool Regressed) {
      MetricDelta D;
      D.RunId = Id;
      D.Metric = Metric;
      D.Base = B;
      D.Current = C;
      D.DeltaPct = B != 0 ? (C - B) / B * 100.0 : 0.0;
      D.Regression = Regressed;
      if (Regressed)
        ++R.Regressions;
      R.Deltas.push_back(std::move(D));
    };

    const double Tol = Opts.TolerancePct / 100.0;
    double BCyc = BS->numberOr("cycles", 0);
    double CCyc = CS->numberOr("cycles", 0);
    addDelta("cycles", BCyc, CCyc, CCyc > BCyc * (1.0 + Tol));
    double BIpc = BS->numberOr("ipc", 0);
    double CIpc = CS->numberOr("ipc", 0);
    addDelta("ipc", BIpc, CIpc, CIpc < BIpc * (1.0 - Tol));

    // Simulator wall time: informational trend only. Baselines
    // predating the field (or runs too fast to time) are skipped; a
    // slower simulator is never a report regression.
    double BWall = BS->numberOr("sim_wall_ms", 0);
    double CWall = CS->numberOr("sim_wall_ms", 0);
    if (BWall > 0 && CWall > 0) {
      addDelta("sim_wall_ms", BWall, CWall, false);
      R.Deltas.back().Informational = true;
    }

    double BIns = BS->numberOr("instructions", 0);
    double CIns = CS->numberOr("instructions", 0);
    if (BIns != CIns) {
      addDelta("instructions", BIns, CIns, false);
      R.Problems.push_back("dynamic instruction count changed for " + Id +
                           " (compiler behaviour change)");
    }

    // Per-pass compile telemetry: for a fixed pipeline the change
    // counts and analysis cache counters are deterministic, so any
    // drift is a compile-side behaviour change. Baselines predating
    // the "passes" array are skipped; wall_ms is informational and
    // never compared.
    const Value *BP = BaseRun.find("passes");
    const Value *CP = CurRun->find("passes");
    if (BP && BP->isArray() && CP && CP->isArray()) {
      if (BP->items().size() != CP->items().size()) {
        R.Problems.push_back("pass pipeline shape changed for " + Id);
      } else {
        for (size_t I = 0; I < BP->items().size(); ++I) {
          const Value &BRow = BP->items()[I];
          const Value &CRow = CP->items()[I];
          const std::string BName = BRow.strOr("name", "");
          if (BName != CRow.strOr("name", "")) {
            R.Problems.push_back("pass order changed for " + Id + ": '" +
                                 BName + "' vs '" + CRow.strOr("name", "") +
                                 "'");
            continue;
          }
          for (const char *Metric :
               {"changes", "analysis_hits", "analysis_misses",
                "analysis_invalidations"}) {
            double BV = BRow.numberOr(Metric, 0);
            double CV = CRow.numberOr(Metric, 0);
            if (BV != CV)
              R.Problems.push_back(
                  "pass '" + BName + "' " + Metric + " changed for " + Id +
                  " (" + std::to_string(static_cast<long long>(BV)) +
                  " -> " + std::to_string(static_cast<long long>(CV)) + ")");
          }
        }
      }
    }

    // Register-allocation telemetry: backend identity and spill
    // footprint are deterministic for a fixed pipeline, so drift is a
    // compile-side behaviour change. Baselines predating the
    // "regalloc" object are skipped; wall_ms is informational like
    // sim_wall_ms.
    const Value *BA = BaseRun.find("regalloc");
    const Value *CA = CurRun->find("regalloc");
    if (BA && BA->isObject() && CA && CA->isObject()) {
      const std::string BAlloc = BA->strOr("allocator", "");
      const std::string CAlloc = CA->strOr("allocator", "");
      if (BAlloc != CAlloc)
        R.Problems.push_back("register allocator changed for " + Id +
                             " ('" + BAlloc + "' -> '" + CAlloc + "')");
      for (const char *Metric :
           {"functions", "spilled_intervals", "spill_slots", "spill_loads",
            "spill_stores", "callee_save_stores", "callee_save_restores"}) {
        double BV = BA->numberOr(Metric, 0);
        double CV = CA->numberOr(Metric, 0);
        if (BV != CV)
          R.Problems.push_back(
              "regalloc " + std::string(Metric) + " changed for " + Id +
              " (" + std::to_string(static_cast<long long>(BV)) + " -> " +
              std::to_string(static_cast<long long>(CV)) + ")");
      }
      double BWallA = BA->numberOr("wall_ms", 0);
      double CWallA = CA->numberOr("wall_ms", 0);
      if (BWallA > 0 && CWallA > 0) {
        MetricDelta D;
        D.RunId = Id;
        D.Metric = "regalloc_wall_ms";
        D.Base = BWallA;
        D.Current = CWallA;
        D.DeltaPct = BWallA != 0 ? (CWallA - BWallA) / BWallA * 100.0 : 0.0;
        D.Informational = true;
        R.Deltas.push_back(std::move(D));
      }
    }
  }

  // Optional top-level metric objects ("run_cache" memoization
  // counters, "serve" latency/throughput from fpint-loadgen,
  // "campaign" resume/retry accounting from fpint-explore): compared
  // member-by-member when both trees carry them, but strictly
  // informational -- cache hit rates, wall-clock service latency, and
  // how often a campaign resumed or retried are environment-dependent
  // and never gate.
  auto diffInfoObject = [&](const char *Key) {
    const Value *BO = Base.find(Key);
    const Value *CO = Current.find(Key);
    if (!BO || !BO->isObject() || !CO || !CO->isObject())
      return;
    for (const auto &KV : BO->members()) {
      if (!KV.second.isNumber())
        continue;
      const Value *CV = CO->find(KV.first);
      if (!CV || !CV->isNumber())
        continue;
      MetricDelta D;
      D.RunId = Key;
      D.Metric = KV.first;
      D.Base = KV.second.number();
      D.Current = CV->number();
      D.DeltaPct = D.Base != 0 ? (D.Current - D.Base) / D.Base * 100.0 : 0.0;
      D.Informational = true;
      R.Deltas.push_back(std::move(D));
    }
  };
  diffInfoObject("run_cache");
  diffInfoObject("serve");
  diffInfoObject("campaign");
  return R;
}
