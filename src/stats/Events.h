//===- stats/Events.h - Cycle-level telemetry events ----------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event layer of the telemetry subsystem: the timing simulator's
/// main loop feeds one CycleEvent per simulated cycle into an attached
/// EventSink. The layer is header-only and dependency-free so that
/// timing:: can emit events without linking the stats library (which
/// itself depends on core:: for report serialization).
///
/// Zero-overhead-when-disabled contract: a Simulator with no sink
/// attached pays exactly one pointer test per cycle; all attribution
/// bookkeeping (blocking-producer search, missed-load tracking,
/// dispatch-block classification) is guarded behind that test, so the
/// default configuration reproduces the seed simulator byte for byte.
///
/// Stall attribution: every cycle in which *no* instruction issues
/// (INT and FP subsystems combined) is assigned exactly one
/// StallReason, so the reason counters partition the non-issuing
/// cycles:
///
///     sum over reasons of StallCycles[reason] == NonIssuingCycles.
///
/// A non-issuing cycle usually has several plausible culprits (a full
/// FPa window whose entries are all waiting on a missed load, say);
/// the simulator resolves the ambiguity with a fixed priority,
/// documented in docs/OBSERVABILITY.md:
///
///   1. window-full backpressure observed at dispatch (WindowFullInt /
///      WindowFullFpa) -- the paper's Section 7.3 question "how often
///      did the FPa window sit full" takes precedence;
///   2. the oldest dispatched-but-unissued instruction's block reason:
///      LoadBlockedStoreAddr, DCacheMissWait (operand produced by an
///      in-flight load that missed), OperandWait, UnitBusy;
///   3. dispatch blocked by ROB occupancy or physical registers
///      (RobFull / PhysRegsFull);
///   4. RetireStall -- everything in flight has issued and the machine
///      is waiting on completion / in-order retirement;
///   5. front-end emptiness: FetchMispredict (unresolved mispredict or
///      its redirect shadow), FetchICacheMiss, or FrontendLatency
///      (fetch/decode ramp at startup or after a redirect).
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_STATS_EVENTS_H
#define FPINT_STATS_EVENTS_H

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace fpint {
namespace stats {

/// Why a non-issuing cycle failed to issue. None marks cycles that did
/// issue (and is never counted as a stall).
enum class StallReason : uint8_t {
  None = 0,
  FetchMispredict,      ///< Fetch squashed by an unresolved mispredict
                        ///< (or its post-resolution redirect cycles).
  FetchICacheMiss,      ///< Fetch waiting on an I-cache fill.
  FrontendLatency,      ///< Fetch/decode ramp: instructions fetched but
                        ///< not yet dispatchable (startup, redirect).
  WindowFullInt,        ///< Dispatch blocked: INT issue window full.
  WindowFullFpa,        ///< Dispatch blocked: FP/FPa issue window full.
  RobFull,              ///< Dispatch blocked: max in-flight reached.
  PhysRegsFull,         ///< Dispatch blocked: physical registers spent.
  OperandWait,          ///< Oldest waiting instr needs an in-flight def.
  DCacheMissWait,       ///< ...and that def is a load that missed.
  LoadBlockedStoreAddr, ///< Oldest waiting instr is a load behind a
                        ///< store whose address is still unknown.
  UnitBusy,             ///< Operands ready, but every functional unit
                        ///< is occupied (unpipelined divides).
  RetireStall,          ///< All in-flight work issued; waiting on
                        ///< completion / in-order retirement.
  NumReasons
};

constexpr unsigned NumStallReasons =
    static_cast<unsigned>(StallReason::NumReasons);

/// Stable lower_snake_case identifier, used as the JSON key.
inline const char *stallReasonName(StallReason R) {
  switch (R) {
  case StallReason::None:
    return "none";
  case StallReason::FetchMispredict:
    return "fetch_mispredict";
  case StallReason::FetchICacheMiss:
    return "fetch_icache_miss";
  case StallReason::FrontendLatency:
    return "frontend_latency";
  case StallReason::WindowFullInt:
    return "window_full_int";
  case StallReason::WindowFullFpa:
    return "window_full_fpa";
  case StallReason::RobFull:
    return "rob_full";
  case StallReason::PhysRegsFull:
    return "phys_regs_full";
  case StallReason::OperandWait:
    return "operand_wait";
  case StallReason::DCacheMissWait:
    return "dcache_miss_wait";
  case StallReason::LoadBlockedStoreAddr:
    return "load_blocked_store_addr";
  case StallReason::UnitBusy:
    return "unit_busy";
  case StallReason::RetireStall:
    return "retire_stall";
  case StallReason::NumReasons:
    break;
  }
  return "?";
}

/// What the simulator observed in one cycle.
struct CycleEvent {
  uint32_t IntIssued = 0;     ///< Instructions issued from the INT window.
  uint32_t FpIssued = 0;      ///< Instructions issued from the FP window.
  uint32_t IntWindowUsed = 0; ///< INT window occupancy after dispatch.
  uint32_t FpWindowUsed = 0;  ///< FP window occupancy after dispatch.
  bool IntWindowFull = false;
  bool FpWindowFull = false;
  /// The attributed reason when IntIssued + FpIssued == 0; None otherwise.
  StallReason Reason = StallReason::None;
};

/// Receiver of per-cycle events. Sinks are attached to a Simulator for
/// the duration of one run() and are not required to be thread-safe
/// (each simulation owns its sink).
class EventSink {
public:
  virtual ~EventSink() = default;
  virtual void onCycle(const CycleEvent &E) = 0;

  /// \p N consecutive cycles that all observed exactly \p E. The
  /// fast-path simulator emits skipped idle spans through this hook so
  /// cycle skipping stays O(1) per span; the default forwards to
  /// onCycle N times, so any sink remains bit-identical to a per-cycle
  /// feed.
  virtual void onCycles(const CycleEvent &E, uint64_t N) {
    for (uint64_t I = 0; I < N; ++I)
      onCycle(E);
  }
};

/// The standard accumulating sink: stall-attribution counters plus
/// per-subsystem issue-slot occupancy histograms.
class StallBreakdown final : public EventSink {
public:
  uint64_t Cycles = 0;           ///< Total cycles observed.
  uint64_t NonIssuingCycles = 0; ///< Cycles with zero issues overall.
  uint64_t StallCycles[NumStallReasons] = {};

  /// IssueHist[k] = cycles in which exactly k instructions issued from
  /// that subsystem's window; each histogram sums to Cycles.
  std::vector<uint64_t> IntIssueHist, FpIssueHist;

  uint64_t IntWindowFullCycles = 0, FpWindowFullCycles = 0;
  uint64_t IntWindowOccupancySum = 0, FpWindowOccupancySum = 0;

  void onCycle(const CycleEvent &E) override {
    ++Cycles;
    bump(IntIssueHist, E.IntIssued);
    bump(FpIssueHist, E.FpIssued);
    IntWindowOccupancySum += E.IntWindowUsed;
    FpWindowOccupancySum += E.FpWindowUsed;
    IntWindowFullCycles += E.IntWindowFull;
    FpWindowFullCycles += E.FpWindowFull;
    if (E.IntIssued + E.FpIssued == 0) {
      ++NonIssuingCycles;
      ++StallCycles[static_cast<unsigned>(E.Reason)];
    }
  }

  /// O(1) accumulation of a skipped idle span: N cycles that all
  /// observed E add N to every counter a per-cycle feed would have
  /// bumped, so fast-path telemetry stays bit-identical to the
  /// reference loop at any span length.
  void onCycles(const CycleEvent &E, uint64_t N) override {
    Cycles += N;
    bumpN(IntIssueHist, E.IntIssued, N);
    bumpN(FpIssueHist, E.FpIssued, N);
    IntWindowOccupancySum += static_cast<uint64_t>(E.IntWindowUsed) * N;
    FpWindowOccupancySum += static_cast<uint64_t>(E.FpWindowUsed) * N;
    IntWindowFullCycles += E.IntWindowFull ? N : 0;
    FpWindowFullCycles += E.FpWindowFull ? N : 0;
    if (E.IntIssued + E.FpIssued == 0) {
      NonIssuingCycles += N;
      StallCycles[static_cast<unsigned>(E.Reason)] += N;
    }
  }

  /// Sum of all attributed stall cycles (None excluded; the simulator
  /// never attributes None to a non-issuing cycle).
  uint64_t attributedStallCycles() const {
    uint64_t Sum = 0;
    for (unsigned R = 1; R < NumStallReasons; ++R)
      Sum += StallCycles[R];
    return Sum;
  }

  uint64_t stalls(StallReason R) const {
    return StallCycles[static_cast<unsigned>(R)];
  }

  /// The subsystem invariant the test suite asserts: attributed stall
  /// cycles partition the non-issuing cycles exactly.
  bool partitionHolds() const {
    return attributedStallCycles() == NonIssuingCycles &&
           StallCycles[0] == 0;
  }

private:
  static void bump(std::vector<uint64_t> &Hist, uint32_t K) {
    if (Hist.size() <= K)
      Hist.resize(K + 1, 0);
    ++Hist[K];
  }

  static void bumpN(std::vector<uint64_t> &Hist, uint32_t K, uint64_t N) {
    if (Hist.size() <= K)
      Hist.resize(K + 1, 0);
    Hist[K] += N;
  }
};

namespace detail {
/// -1 = not yet decided (consult the environment on first query).
inline std::atomic<int> TelemetryMode{-1};
} // namespace detail

/// Process-wide telemetry switch. Defaults to the FPINT_TELEMETRY
/// environment variable (unset, empty, or "0" = off); programmatic
/// overrides win. When off, core::simulate attaches no sink and the
/// simulator's behaviour and output are bit-identical to the
/// uninstrumented loop.
inline bool telemetryEnabled() {
  int M = detail::TelemetryMode.load(std::memory_order_relaxed);
  if (M >= 0)
    return M != 0;
  const char *E = std::getenv("FPINT_TELEMETRY");
  bool On = E && *E && std::strcmp(E, "0") != 0;
  detail::TelemetryMode.store(On ? 1 : 0, std::memory_order_relaxed);
  return On;
}

/// Forces telemetry on or off (tests and tools). Note the run caches
/// memoize SimStats including any telemetry payload, so flip this
/// before simulating, not between cached lookups.
inline void setTelemetryEnabled(bool On) {
  detail::TelemetryMode.store(On ? 1 : 0, std::memory_order_relaxed);
}

} // namespace stats
} // namespace fpint

#endif // FPINT_STATS_EVENTS_H
