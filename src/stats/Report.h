//===- stats/Report.h - Structured JSON results and diffing ---------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serialization layer of the telemetry subsystem: turns one
/// simulated (workload, scheme, machine) point -- MachineConfig,
/// PipelineConfig, SimStats, and the cycle-level StallBreakdown -- into
/// a canonical JSON record, and diffs two such report trees for the
/// fpint-report regression gate.
///
/// Schema (see docs/OBSERVABILITY.md for the field-by-field version):
///
///   {
///     "schema": "fpint-bench-report-v1",
///     "binary": "<bench binary name>",
///     "runs": [ { "id": "<workload>/<scheme>/<machine>#<fnv64/8>",
///                 "workload": ..., "scheme": ..., "machine": {...},
///                 "pipeline": {...}, "stats": {..., "telemetry": {...}} } ]
///   }
///
/// Run ids embed a stable FNV-1a hash of the full pipeline + machine
/// canonical keys so that visually identical points (e.g. the 4-way
/// machine with and without FPa, or two cost-sweep settings) never
/// collide; diffing matches runs by id.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_STATS_REPORT_H
#define FPINT_STATS_REPORT_H

#include "core/Pipeline.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace fpint {
namespace stats {

/// Schema tag emitted in (and required of) every report document.
extern const char *const ReportSchema;

json::Value machineToJson(const timing::MachineConfig &M);
json::Value pipelineConfigToJson(const core::PipelineConfig &C);
/// Includes a "telemetry" sub-object iff \p S carries a breakdown.
json::Value simStatsToJson(const timing::SimStats &S);
json::Value breakdownToJson(const StallBreakdown &B);
/// The per-pass compile telemetry table ("passes" array of a run):
/// name, wall ms, change count, and analysis cache counters per pass.
json::Value passStatsToJson(const std::vector<core::PassStat> &Passes);

/// Register-allocation telemetry of one run (the "regalloc" object):
/// which backend ran and its spill/reload/save-restore footprint.
/// Every field except WallMs is deterministic for a fixed pipeline
/// and is gated by diffReports; WallMs is informational like
/// sim_wall_ms.
struct RegAllocSummary {
  std::string Allocator; ///< Backend registry name ("" = regalloc absent).
  unsigned Functions = 0;
  unsigned SpilledIntervals = 0;
  unsigned SpillSlots = 0;
  unsigned SpillLoads = 0;
  unsigned SpillStores = 0;
  unsigned CalleeSaveStores = 0;
  unsigned CalleeSaveRestores = 0;
  double WallMs = 0.0;

  /// Aggregates \p A; a default-constructed ModuleAlloc (regalloc
  /// never ran) yields an invalid summary that is simply not emitted.
  static RegAllocSummary of(const regalloc::ModuleAlloc &A);
  bool valid() const { return !Allocator.empty(); }
};

json::Value regAllocSummaryToJson(const RegAllocSummary &S);

/// The stable run identity used as the diff key:
///   <workload>/<scheme>/<machine-name>#<first 8 hex of fnv1a64(keys)>.
std::string runId(const std::string &Workload,
                  const core::PipelineConfig &Pipeline,
                  const timing::MachineConfig &Machine);

/// Writes \p Doc (canonical dump, newline-terminated) to
/// <OutDir>/<Name>.json, creating OutDir. Shared by StatsRegistry and
/// the serving load generator so every report lands on disk the same
/// way. Returns false with \p Err set on I/O failure.
bool writeReportDoc(const std::string &OutDir, const std::string &Name,
                    const json::Value &Doc, std::string *Err);

//===----------------------------------------------------------------------===//
// Report diffing (the regression gate's engine).
//===----------------------------------------------------------------------===//

struct DiffOptions {
  /// Relative tolerance, in percent, before a cycles increase or an
  /// IPC decrease counts as a regression.
  double TolerancePct = 0.1;
};

/// One compared metric of one run.
struct MetricDelta {
  std::string RunId;
  std::string Metric; ///< "cycles", "ipc", "instructions", "sim_wall_ms".
  double Base = 0, Current = 0;
  double DeltaPct = 0; ///< (Current - Base) / Base * 100.
  bool Regression = false;
  /// Informational metrics (simulator wall time) are surfaced for
  /// trend-watching but can never regress, whatever the delta.
  bool Informational = false;
};

struct DiffResult {
  std::vector<MetricDelta> Deltas; ///< Base-report run order.
  /// Structural findings: runs missing from the current tree, schema
  /// mismatches, unparseable stats. Problems fail a --check run.
  std::vector<std::string> Problems;
  unsigned Regressions = 0;

  bool clean() const { return Regressions == 0 && Problems.empty(); }
};

/// Diffs two single-report documents (both must carry ReportSchema).
/// Every run of \p Base is matched by id in \p Current; cycles and IPC
/// are gated against the tolerance, instruction-count changes are
/// reported as problems (a changed dynamic instruction count means the
/// compiler changed, not just the machine). Runs only in \p Current
/// are ignored (new coverage is not a regression). The optional
/// top-level "run_cache", "serve", and "campaign" objects (memoization
/// counters, fpint-loadgen serving metrics, and fpint-explore
/// resume/retry accounting) are compared member-by-member when both
/// documents carry them, but always as informational deltas -- cache
/// hit rates, service latency, and campaign resume counts never gate a
/// PR.
DiffResult diffReports(const json::Value &Base, const json::Value &Current,
                       const DiffOptions &Opts);

} // namespace stats
} // namespace fpint

#endif // FPINT_STATS_REPORT_H
