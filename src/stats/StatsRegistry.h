//===- stats/StatsRegistry.h - Process-wide run-record registry -----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects one RunRecord per distinct simulated (workload, pipeline
/// config, machine) point so a bench binary can emit its structured
/// JSON report at exit. The bench harness records from thread-pool
/// workers, so the registry is thread-safe; records are keyed and
/// ordered by their stable run id, making the emitted report
/// independent of worker scheduling (canonical bytes, like the
/// text tables).
///
/// The registry is passive when telemetry is disabled: enabled()
/// mirrors stats::telemetryEnabled() and the harness skips record()
/// entirely, so seed behaviour is unchanged by default.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_STATS_STATSREGISTRY_H
#define FPINT_STATS_STATSREGISTRY_H

#include "stats/Report.h"

#include <map>
#include <mutex>
#include <string>

namespace fpint {
namespace stats {

/// One simulated evaluation point.
struct RunRecord {
  std::string Id;       ///< stats::runId() of the point.
  std::string Workload; ///< Module / workload name.
  core::PipelineConfig Pipeline;
  timing::MachineConfig Machine;
  timing::SimStats Stats;
  /// Trap of the run's functional ref execution (TrapKind::None for a
  /// clean run); emitted as the record's "trap" field.
  vm::TrapKind Trap = vm::TrapKind::None;
  /// Per-pass compile telemetry of the run (emitted as the record's
  /// "passes" array; empty when the harness did not capture it).
  std::vector<core::PassStat> Passes;
  /// Register-allocation telemetry (emitted as the record's "regalloc"
  /// object; invalid when regalloc did not run or was not captured).
  RegAllocSummary RegAlloc;
};

class StatsRegistry {
public:
  /// Whether telemetry (and therefore JSON emission) is on for this
  /// process. Mirrors stats::telemetryEnabled().
  bool enabled() const { return telemetryEnabled(); }

  /// Records one simulated point; duplicate ids (cache hits replayed
  /// by several figures) keep the first record. Thread-safe.
  void record(const std::string &Workload,
              const core::PipelineConfig &Pipeline,
              const timing::MachineConfig &Machine,
              const timing::SimStats &Stats,
              vm::TrapKind Trap = vm::TrapKind::None,
              std::vector<core::PassStat> Passes = {},
              RegAllocSummary RegAlloc = {});

  size_t numRecords() const;

  /// The full report document for this process, runs ordered by id.
  json::Value reportJson(const std::string &BinaryName) const;

  /// Writes reportJson() to <OutDir>/<BinaryName>.json (creating
  /// OutDir), returning false with \p Err set on I/O failure.
  bool writeReport(const std::string &OutDir, const std::string &BinaryName,
                   std::string *Err) const;

  /// Drops all records (tests).
  void clear();

  /// The process-wide registry the bench harness records into.
  static StatsRegistry &global();

private:
  mutable std::mutex Mu;
  std::map<std::string, RunRecord> Records; ///< Keyed by run id.
};

} // namespace stats
} // namespace fpint

#endif // FPINT_STATS_STATSREGISTRY_H
