//===- core/RunCache.h - Memoized compile + simulate results --------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide memoization for the evaluation harness. The bench
/// matrix re-requests the same (workload, scheme, costs) compiles and
/// the same (compiled run, machine) simulations many times -- across
/// figures, sweeps, and conventional baselines -- so both layers are
/// cached:
///
///  * compile(): memoizes core::compileAndMeasure keyed by a canonical
///    serialization of (module name, every PipelineConfig field
///    including CostParams). Each distinct point compiles exactly once
///    per process; all callers share one immutable PipelineRun.
///  * simulate(): memoizes core::simulate keyed by (run identity,
///    MachineConfig::canonicalKey()). Together with the run's cached
///    ref-input trace (PipelineRun::refTrace), the functional VM
///    executes at most once per compiled module no matter how many
///    machines it is simulated on.
///
/// Thread-safety: both layers are safe to call from thread-pool
/// workers. A second request for an in-flight key blocks on the
/// computing thread's shared_future instead of duplicating work; that
/// wait is deadlock-free because the computing task is by construction
/// already running on some thread.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_CORE_RUNCACHE_H
#define FPINT_CORE_RUNCACHE_H

#include "core/Pipeline.h"

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fpint {
namespace core {

class RunCache {
public:
  /// Cached runs are immutable and shared; they stay alive for the
  /// cache's lifetime (traces point into the run's module).
  using RunPtr = std::shared_ptr<const PipelineRun>;

  /// Memoized compileAndMeasure. \p ModuleName must uniquely identify
  /// \p M's contents (the workload registry guarantees this for
  /// benchmark modules); the full \p Config is part of the key. The
  /// returned run may be a failed one (!ok()) -- failures are cached
  /// too so a bad configuration reports once instead of recompiling.
  RunPtr compile(const sir::Module &M, const std::string &ModuleName,
                 const PipelineConfig &Config);

  /// Memoized core::simulate for a run obtained from this cache (or
  /// any externally owned run that outlives the cache entries).
  timing::SimStats simulate(const RunPtr &Run,
                            const timing::MachineConfig &Machine);

  /// Canonical compile-cache key: every Config field, serialized
  /// exactly (doubles in hex-float form). Exposed for tests.
  static std::string runKey(const std::string &ModuleName,
                            const PipelineConfig &Config);

  struct Stats {
    uint64_t CompileHits = 0;
    uint64_t CompileMisses = 0;
    uint64_t SimHits = 0;
    uint64_t SimMisses = 0;
  };
  Stats stats() const;

  /// Drops every cached run and simulation (tests only; callers must
  /// not hold RunPtrs across a clear if they rely on trace identity).
  void clear();

  /// The process-wide cache shared by all bench binaries' helpers.
  static RunCache &global();

private:
  template <typename V> struct Entry {
    std::shared_future<V> Ready;
  };

  mutable std::mutex Mu;
  std::map<std::string, Entry<RunPtr>> Compiles;
  std::map<std::pair<const PipelineRun *, std::string>,
           Entry<timing::SimStats>>
      Sims;
  /// Keeps every simulated run alive so Sims' pointer keys stay
  /// unambiguous even for runs that were not produced by compile().
  std::vector<RunPtr> Retained;
  Stats Counts;
};

} // namespace core
} // namespace fpint

#endif // FPINT_CORE_RUNCACHE_H
