//===- core/Pipeline.h - End-to-end offload pipeline ----------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point tying the whole reproduction together, in the
/// paper's methodology:
///
///   1. profile the original program on a training input (basic-block
///      execution counts);
///   2. partition it with the basic or advanced scheme (or leave it
///      conventional);
///   3. allocate registers (FPa operands get FP registers);
///   4. check the compiled program against the original on the
///      measurement input (the reproduction's correctness oracle);
///   5. measure partition statistics (Figure 8 / Section 7.2) and, on
///      demand, simulate cycle-level timing against a Table 1 machine
///      (Figures 9 and 10).
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_CORE_PIPELINE_H
#define FPINT_CORE_PIPELINE_H

#include "opt/Passes.h"
#include "partition/FpArgPassing.h"
#include "partition/Partitioner.h"
#include "regalloc/RegAlloc.h"
#include "sir/IR.h"
#include "timing/MachineConfig.h"
#include "timing/Simulator.h"
#include "transform/Transforms.h"
#include "vm/VM.h"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fpint {
namespace core {

struct PipelineConfig {
  partition::Scheme Scheme = partition::Scheme::Advanced;
  partition::CostParams Costs;
  std::vector<int32_t> TrainArgs; ///< main() args for the profiling run.
  std::vector<int32_t> RefArgs;   ///< main() args for measurement runs.
  bool RunRegisterAllocation = true;
  /// Section 6.6 interprocedural extension: pass integer arguments in
  /// FP registers where that removes copy round-trips (advanced scheme
  /// only).
  bool EnableFpArgPassing = false;
  /// Run the machine-independent optimizer before profiling and
  /// partitioning (the paper partitions after "-O3"-level cleanup).
  bool RunOptimizations = true;
  /// Pipeline text overriding the default pass sequence (see
  /// core/PassManager.h). Empty means: use $FPINT_PASSES if set, else
  /// the default text, which reproduces the historical flow exactly.
  /// A non-empty value becomes part of the run cache key.
  std::string Passes;
  /// Register-allocation backend for the "regalloc" pipeline stage
  /// (regalloc::AllocatorRegistry name). Empty means the default
  /// incumbent ("regalloc"); a non-empty value becomes part of the
  /// run cache key so compiled artifacts never alias across
  /// backends. The explicit "regalloc-linear" pipeline token
  /// overrides this field, mirroring partition-basic/-advanced.
  std::string RegAllocator;
};

/// Per-pass boundary telemetry, one row per executed pass. Flows into
/// PipelineRun, stats::RunRecord, and the bench_out JSON "passes"
/// section; deterministic fields (Changes, cache counters) are diffed
/// by fpint-report, WallMs is informational.
struct PassStat {
  std::string Name;
  double WallMs = 0.0;
  unsigned Changes = 0;
  uint64_t AnalysisHits = 0;
  uint64_t AnalysisMisses = 0;
  uint64_t AnalysisInvalidations = 0;
};

/// Lazily captured dynamic trace of a compiled module on the ref
/// input. The trace is a pure function of (compiled module, ref args)
/// -- it does not depend on any timing::MachineConfig -- so one
/// capture can be replayed against any number of machine
/// configurations. Thread-safe: concurrent first requests race only
/// on the call_once.
struct TraceHandle {
  std::once_flag Once;
  std::vector<vm::TraceEntry> Entries;

  /// Number of VM executions performed to fill this handle (0 until
  /// the first refTrace() call, 1 after; never more).
  unsigned Captures = 0;

  /// Packed SoA decode of Entries for the simulator fast path, built
  /// at most once per module (like the entries themselves) and shared
  /// by every machine sweep. Same thread-safety story as Once.
  std::once_flag PackedOnce;
  std::shared_ptr<const timing::PackedTrace> Packed;
};

/// A compiled (partitioned + allocated) program with its measurements.
struct PipelineRun {
  /// Module identity for reports and cache keys (set by RunCache and
  /// the bench harness; empty for ad-hoc compileAndMeasure calls).
  std::string Name;
  std::unique_ptr<sir::Module> Compiled;
  regalloc::ModuleAlloc Alloc;
  partition::ModuleRewrite Rewrite;
  partition::FpArgReport FpArgs; ///< 6.6 extension results (if enabled).
  opt::OptReport Opt;            ///< Pre-partitioning cleanup results.
  transform::MidEndReport Transform; ///< Mid-end pass results (if run).
  partition::DynStats Stats;  ///< Dynamic accounting on the ref input.
  vm::VM::Result RefResult;   ///< Functional run on the ref input.
  bool OutputsMatchOriginal = false;
  std::vector<std::string> Errors;
  PipelineConfig Config;
  /// Per-pass telemetry from the compile pipeline, in execution order.
  std::vector<PassStat> PassStats;

  /// Cached ref-input trace (set by compileAndMeasure; shared so that
  /// moving the run keeps the handle stable). TraceEntry values point
  /// into *Compiled, so the trace is valid only while this run lives.
  std::shared_ptr<TraceHandle> Trace;

  bool ok() const { return Errors.empty() && OutputsMatchOriginal; }

  /// The ref-input dynamic trace, captured on first use and replayed
  /// thereafter. Requires ok() and register-allocated code.
  const std::vector<vm::TraceEntry> &refTrace() const;

  /// The packed SoA decode of refTrace() (machine-independent, like
  /// the trace itself), built on first use and reused across every
  /// MachineConfig. Requires ok() and register-allocated code.
  const timing::PackedTrace &packedTrace() const;
};

/// Compiles \p Original per \p Config and measures it functionally.
/// \p Original is not modified.
PipelineRun compileAndMeasure(const sir::Module &Original,
                              PipelineConfig Config);

/// Traces the compiled program on the ref input and simulates it on
/// \p Machine. When stats::telemetryEnabled(), a StallBreakdown sink
/// is attached for the run and returned via SimStats::Telemetry.
timing::SimStats simulate(const PipelineRun &Run,
                          const timing::MachineConfig &Machine);

/// Convenience for the benchmark harness: speedup of \p Partitioned over
/// \p Conventional (cycles ratio).
double speedup(const timing::SimStats &Conventional,
               const timing::SimStats &Partitioned);

} // namespace core
} // namespace fpint

#endif // FPINT_CORE_PIPELINE_H
