//===- core/RunCache.cpp - Memoized compile + simulate results ------------===//

#include "core/RunCache.h"

#include <cstdio>

using namespace fpint;
using namespace fpint::core;

namespace {

void appendDouble(std::string &Out, double V) {
  // Hex-float form is exact: distinct doubles never collide, equal
  // doubles always serialize identically.
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%a", V);
  Out += Buf;
}

void appendArgs(std::string &Out, const std::vector<int32_t> &Args) {
  Out += '[';
  for (int32_t A : Args) {
    Out += std::to_string(A);
    Out += ',';
  }
  Out += ']';
}

} // namespace

std::string RunCache::runKey(const std::string &ModuleName,
                             const PipelineConfig &Config) {
  std::string Key = ModuleName;
  Key += '|';
  Key += std::to_string(static_cast<int>(Config.Scheme));
  Key += '|';
  appendDouble(Key, Config.Costs.CopyOverhead);
  Key += '|';
  appendDouble(Key, Config.Costs.DupOverhead);
  Key += '|';
  appendDouble(Key, Config.Costs.FpaShareCap);
  Key += '|';
  appendArgs(Key, Config.TrainArgs);
  Key += '|';
  appendArgs(Key, Config.RefArgs);
  Key += '|';
  Key += Config.RunRegisterAllocation ? '1' : '0';
  Key += Config.EnableFpArgPassing ? '1' : '0';
  Key += Config.RunOptimizations ? '1' : '0';
  // An explicit pipeline override compiles different code, so it must
  // key separately; the empty default is omitted to keep every
  // historical key (and the golden run ids derived from it) stable.
  if (!Config.Passes.empty()) {
    Key += '|';
    Key += Config.Passes;
  }
  // Same story for a non-default register-allocation backend: it
  // compiles different code, so it must key separately, and the empty
  // default is omitted so historical keys (and golden run ids) stay
  // stable.
  if (!Config.RegAllocator.empty()) {
    Key += "|regalloc=";
    Key += Config.RegAllocator;
  }
  return Key;
}

RunCache::RunPtr RunCache::compile(const sir::Module &M,
                                   const std::string &ModuleName,
                                   const PipelineConfig &Config) {
  const std::string Key = runKey(ModuleName, Config);
  std::shared_future<RunPtr> Ready;
  std::promise<RunPtr> Fill;
  bool Compute = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Compiles.find(Key);
    if (It != Compiles.end()) {
      ++Counts.CompileHits;
      Ready = It->second.Ready;
    } else {
      ++Counts.CompileMisses;
      Ready = Fill.get_future().share();
      Compiles.emplace(Key, Entry<RunPtr>{Ready});
      Compute = true;
    }
  }
  if (Compute) {
    try {
      PipelineRun Run = compileAndMeasure(M, Config);
      Run.Name = ModuleName;
      Fill.set_value(std::make_shared<const PipelineRun>(std::move(Run)));
    } catch (...) {
      Fill.set_exception(std::current_exception());
    }
  }
  // Waiting here is deadlock-free: a present-but-unready entry means
  // the computing thread is already running (it inserted the entry
  // before computing), never queued behind this one.
  return Ready.get();
}

timing::SimStats RunCache::simulate(const RunPtr &Run,
                                    const timing::MachineConfig &Machine) {
  const std::pair<const PipelineRun *, std::string> Key(
      Run.get(), Machine.canonicalKey());
  std::shared_future<timing::SimStats> Ready;
  std::promise<timing::SimStats> Fill;
  bool Compute = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Sims.find(Key);
    if (It != Sims.end()) {
      ++Counts.SimHits;
      Ready = It->second.Ready;
    } else {
      ++Counts.SimMisses;
      Ready = Fill.get_future().share();
      Sims.emplace(Key, Entry<timing::SimStats>{Ready});
      // Pin the run so the pointer half of the key can never be
      // reused by a different allocation while the entry exists.
      Retained.push_back(Run);
      Compute = true;
    }
  }
  if (Compute) {
    try {
      Fill.set_value(core::simulate(*Run, Machine));
    } catch (...) {
      Fill.set_exception(std::current_exception());
    }
  }
  return Ready.get();
}

RunCache::Stats RunCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counts;
}

void RunCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Compiles.clear();
  Sims.clear();
  Retained.clear();
  Counts = Stats();
}

RunCache &RunCache::global() {
  static RunCache Cache;
  return Cache;
}
