//===- core/PassManager.h - Pass-manager compilation pipeline -------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A unified pass framework over sir modules, in the shape LLVM-family
/// compilers use. The compile side of core::compileAndMeasure is
/// expressed as a sequence of named ModulePasses driven by a
/// PassManager:
///
///   opt, profile, partition, fp-arg-passing, regalloc
///
/// Every registered stage is available by name (PassRegistry), so the
/// pipeline is configurable as *pipeline text*: a comma-separated pass
/// list with a fixpoint(...) combinator, parsed by parsePipeline().
/// The default text reproduces the historical hard-coded flow exactly
/// -- each built-in pass internally honors the PipelineConfig gates
/// (RunOptimizations, Scheme, EnableFpArgPassing,
/// RunRegisterAllocation), so one text is byte-identical to the legacy
/// pipeline for every configuration.
///
/// The manager owns the observability at pass boundaries:
///
///  * per-pass wall-clock, change counts, and analysis cache
///    hit/miss/invalidation deltas (PassStat, flowing into
///    stats::Report and bench_out JSON);
///  * FPINT_VERIFY_EACH_PASS=1 verifies the module after every pass
///    and attributes the first broken invariant to the pass that
///    broke it;
///  * FPINT_PRINT_AFTER=<pass> dumps the module (sir::Printer) to
///    stderr after the named pass.
///
/// Analyses (CFG / ReachingDefs / RDG / Liveness / block weights) are
/// cached in an analysis::AnalysisManager across passes; each pass
/// reports a PreservedAnalyses set and the manager invalidates
/// everything else at the boundary.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_CORE_PASSMANAGER_H
#define FPINT_CORE_PASSMANAGER_H

#include "analysis/AnalysisManager.h"
#include "core/Pipeline.h"
#include "sir/IR.h"
#include "vm/VM.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fpint {
namespace core {

/// Mutable state threaded through one compile pipeline: the config the
/// gated passes consult, the training profile, and every per-stage
/// report that ends up on the PipelineRun.
struct PassState {
  const PipelineConfig *Config = nullptr;

  /// Training profile collected by the "profile" pass. HaveProfile
  /// distinguishes "no profile pass ran" (partitioning falls back to
  /// static estimates) from an empty profile.
  vm::Profile Profile;
  bool HaveProfile = false;

  opt::OptReport Opt;
  transform::MidEndReport Transform;
  partition::ModuleRewrite Rewrite;
  partition::FpArgReport FpArgs;
  regalloc::ModuleAlloc Alloc;
  /// The scheme the most recent partition pass actually invoked (None
  /// until one runs). fp-arg-passing gates on this rather than on
  /// Config.Scheme so explicit "partition-advanced" pipelines compose.
  partition::Scheme RanScheme = partition::Scheme::None;

  std::vector<std::string> Errors;
  /// A pass declared the pipeline unrecoverable (training run failed,
  /// or verify-each-pass found corruption): remaining passes are
  /// skipped and compileAndMeasure returns early, matching the legacy
  /// control flow.
  bool Fatal = false;
};

/// One transformation (or diagnostic) stage over a module.
class ModulePass {
public:
  virtual ~ModulePass() = default;

  /// Stable name; for combinators this is the full round-trip text
  /// (e.g. "fixpoint(copy-prop,dce)").
  virtual std::string name() const = 0;

  /// Runs over \p M. Returns the number of IR changes made (0 for
  /// analysis-only passes); diagnostics and reports go to \p State.
  virtual unsigned run(sir::Module &M, analysis::AnalysisManager &AM,
                       PassState &State) = 0;

  /// Analyses left valid by the most recent run(). The default is the
  /// safe claim for a transformation; passes that only read the module
  /// override to all(). Queried by the PassManager immediately after
  /// run().
  virtual analysis::PreservedAnalyses preserved() const {
    return analysis::PreservedAnalyses::none();
  }
};

/// One transformation over a single function, lifted to a ModulePass by
/// FunctionPassAdaptor.
class FunctionPass {
public:
  virtual ~FunctionPass() = default;
  virtual std::string name() const = 0;
  /// Returns the number of changes made to \p F.
  virtual unsigned runOnFunction(sir::Function &F,
                                 analysis::AnalysisManager &AM) = 0;
};

/// Runs a FunctionPass over every function, invalidating each mutated
/// function's cached analyses and renumbering the module if anything
/// changed (downstream stages require renumbered IR).
class FunctionPassAdaptor : public ModulePass {
public:
  explicit FunctionPassAdaptor(std::unique_ptr<FunctionPass> FP)
      : FP(std::move(FP)) {}

  std::string name() const override { return FP->name(); }
  unsigned run(sir::Module &M, analysis::AnalysisManager &AM,
               PassState &State) override;
  analysis::PreservedAnalyses preserved() const override {
    return Mutated ? analysis::PreservedAnalyses::none()
                   : analysis::PreservedAnalyses::all();
  }

private:
  std::unique_ptr<FunctionPass> FP;
  bool Mutated = false;
};

/// Repeats a sub-pipeline until a full iteration makes no changes, or
/// the iteration cap cuts it off. Round-trips as
/// "fixpoint(a,b,...)". Convergence telemetry (iterations run, whether
/// the cap was hit) is folded into the pass's PassStat.
class FixpointPass : public ModulePass {
public:
  static constexpr unsigned DefaultMaxIterations = 8;

  FixpointPass(std::vector<std::unique_ptr<ModulePass>> Passes,
               unsigned MaxIterations = DefaultMaxIterations)
      : Passes(std::move(Passes)), MaxIterations(MaxIterations) {}

  std::string name() const override;
  unsigned run(sir::Module &M, analysis::AnalysisManager &AM,
               PassState &State) override;
  analysis::PreservedAnalyses preserved() const override {
    return Mutated ? analysis::PreservedAnalyses::none()
                   : analysis::PreservedAnalyses::all();
  }

  unsigned iterations() const { return Iterations; }
  bool converged() const { return Converged; }

private:
  std::vector<std::unique_ptr<ModulePass>> Passes;
  unsigned MaxIterations;
  unsigned Iterations = 0;
  bool Converged = true;
  bool Mutated = false;
};

/// Name -> factory map of every available pass. The global() registry
/// is pre-populated with the built-in stages:
///
///   opt             gated fixpoint optimizer (opt::optimizeModule)
///   copy-prop, const-fold, cse, dce
///                   the individual optimizations, ungated
///   profile         training-input profiling run (fatal on failure)
///   partition       Config.Scheme-dispatched partitioner (gated)
///   partition-basic, partition-advanced
///                   explicit scheme selection, ignoring Config.Scheme
///   fp-arg-passing  Section 6.6 extension (gated)
///   regalloc        register allocation, backend selected by
///                   Config.RegAllocator (gated)
///   regalloc-linear register allocation with the Poletto-Sarkar
///                   linear-scan backend, ignoring Config.RegAllocator
///   verify          structural verification as a pipeline stage
///
/// Tests may registerPass() additional names; re-registering a name
/// replaces the factory (latest wins).
class PassRegistry {
public:
  using Factory = std::function<std::unique_ptr<ModulePass>()>;

  static PassRegistry &global();

  void registerPass(const std::string &Name, Factory F);
  /// Null if \p Name is unknown.
  std::unique_ptr<ModulePass> create(const std::string &Name) const;
  bool contains(const std::string &Name) const;
  std::vector<std::string> names() const;

private:
  std::map<std::string, Factory> Factories;
};

/// Parses pipeline text -- comma-separated registered pass names with
/// optional whitespace and the fixpoint(...) combinator, e.g.
///
///   "opt, profile, partition, regalloc"
///   "fixpoint(copy-prop,const-fold,cse,dce),profile,partition-basic"
///
/// into pass instances from \p Registry. Returns false and sets
/// \p Error (mentioning the offending token) on malformed text or an
/// unknown pass name.
bool parsePipeline(const std::string &Text,
                   std::vector<std::unique_ptr<ModulePass>> &Out,
                   std::string &Error,
                   const PassRegistry &Registry = PassRegistry::global());

/// The pipeline text equivalent to the historical hard-coded compile
/// flow (each stage self-gates on PipelineConfig, so this one text is
/// correct for every configuration).
const char *defaultPipelineText();

/// The "opt2" preset: the local optimizer plus the full mid-end (GVN,
/// LICM, unroll, inline) and a second local cleanup, ahead of the
/// default back half. The token "opt2" in pipeline text expands to
/// this; "unroll<N>" selects a partial-unroll factor for the unroll
/// pass anywhere in pipeline text.
const char *opt2PipelineText();

/// The text compileAndMeasure will run for \p Config:
/// Config.Passes if set, else $FPINT_PASSES if set, else the default.
std::string effectivePipelineText(const PipelineConfig &Config);

/// Drives a pass sequence over a module with per-pass telemetry and
/// boundary invalidation.
class PassManager {
public:
  struct Options {
    /// Verify the module after every pass; the first failure is
    /// attributed to the pass and aborts the pipeline.
    bool VerifyEach = false;
    /// Dump the module to stderr after the named pass ("" = never).
    std::string PrintAfter;

    /// Reads FPINT_VERIFY_EACH_PASS / FPINT_PRINT_AFTER.
    static Options fromEnv();
  };

  PassManager() = default;
  explicit PassManager(Options Opts) : Opts(std::move(Opts)) {}

  void add(std::unique_ptr<ModulePass> P) { Passes.push_back(std::move(P)); }
  /// Parses \p Text into this manager. Existing passes are kept (text
  /// appends). Returns false and sets \p Error on a parse failure.
  bool parse(const std::string &Text, std::string &Error,
             const PassRegistry &Registry = PassRegistry::global());

  /// Round-trip text of the current sequence.
  std::string text() const;

  /// Runs every pass in order. After each pass: snapshots telemetry,
  /// invalidates non-preserved analyses, honors VerifyEach /
  /// PrintAfter, and stops early when State.Fatal is set. Returns one
  /// PassStat per executed pass.
  std::vector<PassStat> run(sir::Module &M, analysis::AnalysisManager &AM,
                            PassState &State);

private:
  Options Opts;
  std::vector<std::unique_ptr<ModulePass>> Passes;
};

} // namespace core
} // namespace fpint

#endif // FPINT_CORE_PASSMANAGER_H
