//===- core/Pipeline.cpp - End-to-end offload pipeline --------------------===//

#include "core/Pipeline.h"

#include "core/PassManager.h"
#include "sir/Verifier.h"
#include "support/FaultInject.h"

using namespace fpint;
using namespace fpint::core;

PipelineRun core::compileAndMeasure(const sir::Module &Original,
                                    PipelineConfig Config) {
  support::fault::inject("compile");
  PipelineRun Run;
  Run.Config = Config;
  Run.Trace = std::make_shared<TraceHandle>();
  Run.Compiled = Original.clone();
  sir::Module &M = *Run.Compiled;

  // Compile side: a pass pipeline over the clone (the clone shares no
  // blocks with the original, so the profile pass trains on the clone
  // itself before it is rewritten). The default text reproduces the
  // historical hard-coded flow: opt, profile, partition,
  // fp-arg-passing, regalloc, each self-gated on Config.
  PassManager PM(PassManager::Options::fromEnv());
  std::string ParseError;
  if (!PM.parse(effectivePipelineText(Config), ParseError)) {
    Run.Errors.push_back("pipeline: " + ParseError);
    return Run;
  }

  analysis::AnalysisManager AM;
  PassState State;
  State.Config = &Run.Config;
  Run.PassStats = PM.run(M, AM, State);

  Run.Opt = State.Opt;
  Run.Transform = State.Transform;
  Run.Rewrite = std::move(State.Rewrite);
  Run.FpArgs = State.FpArgs;
  Run.Alloc = std::move(State.Alloc);
  Run.Errors.insert(Run.Errors.end(), State.Errors.begin(),
                    State.Errors.end());
  // A fatal pass (training failure, verify-each corruption) aborts
  // before the final verify, like the legacy early return did.
  if (State.Fatal)
    return Run;

  for (const std::string &E : sir::verify(M))
    Run.Errors.push_back("verify: " + E);
  if (!Run.Errors.empty())
    return Run;

  // 4. Functional equivalence on the measurement input, collecting the
  // measurement profile in the same run.
  vm::VM::Options MeasureOpts;
  MeasureOpts.CollectProfile = true;
  vm::VM Measurer(M, MeasureOpts);
  Run.RefResult = Measurer.run(Config.RefArgs);
  auto OriginalRun = vm::runModule(Original, Config.RefArgs);

  const vm::TrapKind OrigTrap = OriginalRun.Trap.Kind;
  const vm::TrapKind CompTrap = Run.RefResult.Trap.Kind;
  if (!OriginalRun.Ok && !vm::isDeterministicTrap(OrigTrap)) {
    Run.Errors.push_back("original run failed: " + OriginalRun.Error);
    return Run;
  }
  if (!Run.RefResult.Ok && !vm::isDeterministicTrap(CompTrap)) {
    Run.Errors.push_back("measurement run failed: " + Run.RefResult.Error);
    return Run;
  }

  // Functional equivalence covers traps: a deterministic trap in the
  // original must re-occur -- same kind -- in the compiled program,
  // with identical output up to the trap. (Trap *sites* legitimately
  // move; the kind and the observable prefix may not.)
  if (OrigTrap != CompTrap) {
    Run.Errors.push_back(
        std::string("trap divergence: original ") +
        vm::trapKindName(OrigTrap) + " vs compiled " +
        vm::trapKindName(CompTrap));
    return Run;
  }
  Run.OutputsMatchOriginal = OriginalRun.Output == Run.RefResult.Output;
  if (!Run.OutputsMatchOriginal)
    Run.Errors.push_back("compiled program output diverged from original");

  // 5. Dynamic accounting (Figure 8 / Section 7.2 metrics).
  Run.Stats =
      partition::computeDynStats(M, Measurer.profile(), &Run.Rewrite);
  return Run;
}

const std::vector<vm::TraceEntry> &PipelineRun::refTrace() const {
  assert(ok() && "tracing a failed pipeline run");
  assert(Trace && "run was not produced by compileAndMeasure");
  std::call_once(Trace->Once, [this] {
    vm::VM::Options Opts;
    Opts.CollectTrace = true;
    vm::VM Machine(*Compiled, Opts);
    auto R = Machine.run(Config.RefArgs);
    // ok() already proved this module/input pair executes cleanly --
    // or traps deterministically, in which case the replay traps the
    // same way and the trace prefix is the dynamic stream.
    assert((R.Ok || R.Trap.Kind == RefResult.Trap.Kind) &&
           "trace generation failed");
    (void)R;
    Trace->Entries = Machine.takeTrace();
    Trace->Captures = 1;
  });
  return Trace->Entries;
}

const timing::PackedTrace &PipelineRun::packedTrace() const {
  assert(Trace && "run was not produced by compileAndMeasure");
  std::call_once(Trace->PackedOnce, [this] {
    Trace->Packed = std::make_shared<const timing::PackedTrace>(
        timing::PackedTrace::build(refTrace(), Alloc));
  });
  return *Trace->Packed;
}

timing::SimStats core::simulate(const PipelineRun &Run,
                                const timing::MachineConfig &Machine) {
  support::fault::inject("simulate");
  assert(Run.ok() && "simulating a failed pipeline run");
  assert(Run.Config.RunRegisterAllocation &&
         "timing simulation needs register-allocated code");
  // Replay the cached ref-input trace: the dynamic instruction stream
  // depends only on the compiled module and ref args, never on the
  // machine configuration, so one capture -- and one packed decode --
  // serves every machine.
  timing::Simulator Sim(Machine, Run.Alloc);
  auto RunOnce = [&]() -> timing::SimStats {
    return Sim.fastPath() ? Sim.run(Run.packedTrace())
                          : Sim.run(Run.refTrace());
  };
  if (!stats::telemetryEnabled())
    return RunOnce();
  auto Breakdown = std::make_shared<stats::StallBreakdown>();
  Sim.setEventSink(Breakdown.get());
  timing::SimStats Stats = RunOnce();
  Stats.Telemetry = std::move(Breakdown);
  return Stats;
}

double core::speedup(const timing::SimStats &Conventional,
                     const timing::SimStats &Partitioned) {
  if (Partitioned.Cycles == 0)
    return 0.0;
  return static_cast<double>(Conventional.Cycles) /
         static_cast<double>(Partitioned.Cycles);
}
