//===- core/PassManager.cpp - Pass-manager compilation pipeline -----------===//

#include "core/PassManager.h"

#include "opt/Passes.h"
#include "regalloc/Allocator.h"
#include "sir/Printer.h"
#include "sir/Verifier.h"
#include "transform/Transforms.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace fpint;
using namespace fpint::core;

namespace {

/// Gated built-in passes consult the pipeline configuration; a null
/// State.Config (library callers driving a PassManager directly) means
/// default gates.
const PipelineConfig &configOf(const PassState &State) {
  static const PipelineConfig Defaults;
  return State.Config ? *State.Config : Defaults;
}

//===----------------------------------------------------------------------===//
// Built-in passes.
//===----------------------------------------------------------------------===//

/// The legacy step 0: machine-independent cleanup to a (capped)
/// fixpoint, gated on RunOptimizations.
class OptPass : public ModulePass {
public:
  std::string name() const override { return "opt"; }

  unsigned run(sir::Module &M, analysis::AnalysisManager &,
               PassState &State) override {
    LastChanges = 0;
    if (!configOf(State).RunOptimizations)
      return 0;
    State.Opt = opt::optimizeModule(M);
    LastChanges = State.Opt.total();
    return LastChanges;
  }

  analysis::PreservedAnalyses preserved() const override {
    // renumber() is idempotent on an unmutated module, so a changeless
    // optimizer run leaves cached analyses intact.
    return LastChanges == 0 ? analysis::PreservedAnalyses::all()
                            : analysis::PreservedAnalyses::none();
  }

private:
  unsigned LastChanges = 0;
};

/// One individual optimization as a FunctionPass.
class SingleOptPass : public FunctionPass {
public:
  SingleOptPass(const char *Name, unsigned (*Fn)(sir::Function &))
      : Name(Name), Fn(Fn) {}

  std::string name() const override { return Name; }
  unsigned runOnFunction(sir::Function &F,
                         analysis::AnalysisManager &) override {
    return Fn(F);
  }

private:
  const char *Name;
  unsigned (*Fn)(sir::Function &);
};

/// The legacy step 1: profile the (not yet partitioned) module on the
/// training input. A non-deterministic failure is fatal -- there is
/// nothing meaningful to compile against; a deterministic trap leaves
/// a valid prefix profile (the compiled program must reproduce the
/// trap, which compileAndMeasure checks).
class ProfilePass : public ModulePass {
public:
  std::string name() const override { return "profile"; }

  unsigned run(sir::Module &M, analysis::AnalysisManager &,
               PassState &State) override {
    vm::VM::Options Opts;
    Opts.CollectProfile = true;
    vm::VM Trainer(M, Opts);
    auto Result = Trainer.run(configOf(State).TrainArgs);
    if (!Result.Ok && !vm::isDeterministicTrap(Result.Trap.Kind)) {
      State.Errors.push_back("training run failed: " + Result.Error);
      State.Fatal = true;
      return 0;
    }
    State.Profile = Trainer.profile();
    State.HaveProfile = true;
    return 0;
  }

  analysis::PreservedAnalyses preserved() const override {
    return analysis::PreservedAnalyses::all();
  }
};

/// The legacy step 2: partitioning. "partition" dispatches on
/// Config.Scheme (including None: no-op); "partition-basic" /
/// "partition-advanced" force a scheme regardless of configuration.
class PartitionPass : public ModulePass {
public:
  enum class Mode { FromConfig, Basic, Advanced };

  explicit PartitionPass(Mode Which) : Which(Which) {}

  std::string name() const override {
    switch (Which) {
    case Mode::FromConfig:
      return "partition";
    case Mode::Basic:
      return "partition-basic";
    case Mode::Advanced:
      return "partition-advanced";
    }
    return "partition";
  }

  unsigned run(sir::Module &M, analysis::AnalysisManager &AM,
               PassState &State) override {
    const PipelineConfig &Config = configOf(State);
    partition::Scheme S = Which == Mode::FromConfig ? Config.Scheme
                          : Which == Mode::Basic
                              ? partition::Scheme::Basic
                              : partition::Scheme::Advanced;
    State.Rewrite = partition::partitionModule(
        M, S, State.HaveProfile ? &State.Profile : nullptr, Config.Costs,
        &AM);
    State.RanScheme = S;
    for (const std::string &E : State.Rewrite.Errors)
      State.Errors.push_back("partition: " + E);
    Mutated = !State.Rewrite.Reports.empty();
    // The basic scheme mutates without inserting instructions (it only
    // flips FPa bits), so count rewritten functions alongside the
    // inserted copy / dup traffic.
    return static_cast<unsigned>(State.Rewrite.Reports.size()) +
           State.Rewrite.StaticCopies + State.Rewrite.StaticDups +
           State.Rewrite.StaticCopyBacks;
  }

  analysis::PreservedAnalyses preserved() const override {
    return Mutated ? analysis::PreservedAnalyses::none()
                   : analysis::PreservedAnalyses::all();
  }

private:
  Mode Which;
  bool Mutated = false;
};

/// The legacy step 2b: Section 6.6 interprocedural extension, gated on
/// EnableFpArgPassing and on the advanced scheme actually having run
/// (its rewrite report is what identifies the removable copies).
class FpArgPassingPass : public ModulePass {
public:
  std::string name() const override { return "fp-arg-passing"; }

  unsigned run(sir::Module &M, analysis::AnalysisManager &,
               PassState &State) override {
    LastChanges = 0;
    if (!configOf(State).EnableFpArgPassing ||
        State.RanScheme != partition::Scheme::Advanced)
      return 0;
    State.FpArgs = partition::passArgsInFpRegisters(M, State.Rewrite);
    LastChanges = State.FpArgs.ArgsConverted +
                  State.FpArgs.EntryCopiesRemoved +
                  State.FpArgs.CopyBacksRemoved;
    return LastChanges;
  }

  analysis::PreservedAnalyses preserved() const override {
    return LastChanges == 0 ? analysis::PreservedAnalyses::all()
                            : analysis::PreservedAnalyses::none();
  }

private:
  unsigned LastChanges = 0;
};

/// The legacy step 3: register allocation, gated on
/// RunRegisterAllocation. The "regalloc" spelling dispatches on
/// Config.RegAllocator (empty = the incumbent backend); the
/// "regalloc-linear" spelling forces the linear-scan backend
/// regardless of the config, mirroring partition-basic/-advanced.
class RegAllocPass : public ModulePass {
public:
  RegAllocPass() = default;
  explicit RegAllocPass(std::string Forced) : Forced(std::move(Forced)) {}

  std::string name() const override {
    return Forced.empty() ? "regalloc" : Forced;
  }

  unsigned run(sir::Module &M, analysis::AnalysisManager &AM,
               PassState &State) override {
    Ran = false;
    if (!configOf(State).RunRegisterAllocation)
      return 0;
    Ran = true;
    const std::string &Backend =
        Forced.empty() ? configOf(State).RegAllocator : Forced;
    State.Alloc = regalloc::allocateModuleWith(Backend, M, &AM);
    for (const std::string &E : State.Alloc.Errors)
      State.Errors.push_back("regalloc: " + E);
    unsigned Changes = static_cast<unsigned>(State.Alloc.Funcs.size());
    for (const auto &KV : State.Alloc.Funcs)
      Changes += KV.second.SpillCode;
    return Changes;
  }

  analysis::PreservedAnalyses preserved() const override {
    // Calling-convention lowering rewrites every function even when no
    // spill code lands, so a run is never analysis-preserving.
    return Ran ? analysis::PreservedAnalyses::none()
               : analysis::PreservedAnalyses::all();
  }

private:
  std::string Forced; ///< Empty: dispatch on Config.RegAllocator.
  bool Ran = false;
};

//===----------------------------------------------------------------------===//
// Mid-end transform passes (src/transform). All gate on
// RunOptimizations like "opt", so the -noopt oracle variants and the
// default pipeline are unaffected by their registration.
//===----------------------------------------------------------------------===//

/// Dominator-ordered global value numbering.
class GvnPass : public ModulePass {
public:
  std::string name() const override { return "gvn"; }

  unsigned run(sir::Module &M, analysis::AnalysisManager &AM,
               PassState &State) override {
    LastChanges = 0;
    if (!configOf(State).RunOptimizations)
      return 0;
    for (const auto &F : M.functions()) {
      unsigned Changes = transform::runGVN(*F, AM);
      if (Changes)
        AM.invalidateFunction(*F);
      LastChanges += Changes;
    }
    if (LastChanges)
      M.renumber();
    State.Transform.GvnReplaced += LastChanges;
    return LastChanges;
  }

  analysis::PreservedAnalyses preserved() const override {
    return LastChanges == 0 ? analysis::PreservedAnalyses::all()
                            : analysis::PreservedAnalyses::none();
  }

private:
  unsigned LastChanges = 0;
};

/// Loop-invariant code motion into preheaders.
class LicmPass : public ModulePass {
public:
  std::string name() const override { return "licm"; }

  unsigned run(sir::Module &M, analysis::AnalysisManager &AM,
               PassState &State) override {
    LastChanges = 0;
    if (!configOf(State).RunOptimizations)
      return 0;
    for (const auto &F : M.functions())
      LastChanges += transform::runLICM(*F, AM);
    if (LastChanges)
      M.renumber();
    State.Transform.LicmHoisted += LastChanges;
    return LastChanges;
  }

  analysis::PreservedAnalyses preserved() const override {
    return LastChanges == 0 ? analysis::PreservedAnalyses::all()
                            : analysis::PreservedAnalyses::none();
  }

private:
  unsigned LastChanges = 0;
};

/// Loop unrolling; Factor 0 is full-unroll only ("unroll"), Factor N
/// is the "unroll<N>" spelling with partial unrolling by N.
class UnrollPass : public ModulePass {
public:
  explicit UnrollPass(unsigned Factor) : Factor(Factor) {}

  std::string name() const override {
    return Factor ? "unroll<" + std::to_string(Factor) + ">" : "unroll";
  }

  unsigned run(sir::Module &M, analysis::AnalysisManager &AM,
               PassState &State) override {
    LastChanges = 0;
    if (!configOf(State).RunOptimizations)
      return 0;
    transform::UnrollOptions Opts;
    Opts.Factor = Factor;
    for (const auto &F : M.functions()) {
      transform::UnrollResult R = transform::runUnroll(*F, AM, Opts);
      State.Transform.LoopsFullyUnrolled += R.FullyUnrolled;
      State.Transform.LoopsPartiallyUnrolled += R.PartiallyUnrolled;
      State.Transform.UnrollInstrsAdded += R.InstrsAdded;
      LastChanges += R.FullyUnrolled + R.PartiallyUnrolled;
    }
    if (LastChanges)
      M.renumber();
    return LastChanges;
  }

  analysis::PreservedAnalyses preserved() const override {
    return LastChanges == 0 ? analysis::PreservedAnalyses::all()
                            : analysis::PreservedAnalyses::none();
  }

private:
  unsigned Factor;
  unsigned LastChanges = 0;
};

/// Bottom-up acyclic call-graph inlining.
class InlinePass : public ModulePass {
public:
  std::string name() const override { return "inline"; }

  unsigned run(sir::Module &M, analysis::AnalysisManager &,
               PassState &State) override {
    LastChanges = 0;
    if (!configOf(State).RunOptimizations)
      return 0;
    transform::InlineResult R = transform::runInline(M);
    State.Transform.CallsInlined += R.CallsInlined;
    State.Transform.InlineSkippedRecursive += R.SkippedRecursive;
    State.Transform.InlineSkippedBudget += R.SkippedBudget;
    LastChanges = R.CallsInlined;
    return LastChanges;
  }

  analysis::PreservedAnalyses preserved() const override {
    return LastChanges == 0 ? analysis::PreservedAnalyses::all()
                            : analysis::PreservedAnalyses::none();
  }

private:
  unsigned LastChanges = 0;
};

/// Structural verification as an explicit pipeline stage (the final
/// compileAndMeasure verify is separate and unconditional).
class VerifyPass : public ModulePass {
public:
  std::string name() const override { return "verify"; }

  unsigned run(sir::Module &M, analysis::AnalysisManager &,
               PassState &State) override {
    for (const std::string &E : sir::verify(M))
      State.Errors.push_back("verify: " + E);
    return 0;
  }

  analysis::PreservedAnalyses preserved() const override {
    return analysis::PreservedAnalyses::all();
  }
};

std::unique_ptr<ModulePass> makeSingleOpt(const char *Name,
                                          unsigned (*Fn)(sir::Function &)) {
  return std::make_unique<FunctionPassAdaptor>(
      std::make_unique<SingleOptPass>(Name, Fn));
}

} // namespace

//===----------------------------------------------------------------------===//
// FunctionPassAdaptor / FixpointPass.
//===----------------------------------------------------------------------===//

unsigned FunctionPassAdaptor::run(sir::Module &M,
                                  analysis::AnalysisManager &AM,
                                  PassState &) {
  unsigned Total = 0;
  for (const auto &F : M.functions()) {
    unsigned Changes = FP->runOnFunction(*F, AM);
    if (Changes)
      AM.invalidateFunction(*F);
    Total += Changes;
  }
  // Downstream stages require renumbered IR; renumbering an unmutated
  // function is id-stable, so cached analyses of untouched functions
  // survive it.
  if (Total)
    M.renumber();
  Mutated = Total != 0;
  return Total;
}

std::string FixpointPass::name() const {
  std::string Name = "fixpoint(";
  for (size_t I = 0; I < Passes.size(); ++I) {
    if (I)
      Name += ",";
    Name += Passes[I]->name();
  }
  Name += ")";
  return Name;
}

unsigned FixpointPass::run(sir::Module &M, analysis::AnalysisManager &AM,
                           PassState &State) {
  unsigned Total = 0;
  Iterations = 0;
  Converged = false;
  Mutated = false;
  while (Iterations < MaxIterations) {
    unsigned RoundChanges = 0;
    for (const auto &P : Passes) {
      RoundChanges += P->run(M, AM, State);
      // Inner boundaries invalidate like outer ones; the per-pass
      // telemetry row covers the whole fixpoint.
      AM.invalidate(P->preserved());
      if (State.Fatal) {
        Total += RoundChanges;
        Mutated = Mutated || Total != 0;
        return Total;
      }
    }
    ++Iterations;
    Total += RoundChanges;
    if (!RoundChanges) {
      Converged = true;
      break;
    }
    Mutated = true;
  }
  return Total;
}

//===----------------------------------------------------------------------===//
// PassRegistry.
//===----------------------------------------------------------------------===//

PassRegistry &PassRegistry::global() {
  static PassRegistry *R = [] {
    auto *Reg = new PassRegistry();
    Reg->registerPass("opt", [] { return std::make_unique<OptPass>(); });
    Reg->registerPass("copy-prop", [] {
      return makeSingleOpt("copy-prop", opt::propagateCopies);
    });
    Reg->registerPass("const-fold", [] {
      return makeSingleOpt("const-fold", opt::foldConstants);
    });
    Reg->registerPass("cse", [] {
      return makeSingleOpt("cse", opt::eliminateCommonSubexpressions);
    });
    Reg->registerPass("dce", [] {
      return makeSingleOpt("dce", opt::eliminateDeadCode);
    });
    Reg->registerPass("gvn", [] { return std::make_unique<GvnPass>(); });
    Reg->registerPass("licm", [] { return std::make_unique<LicmPass>(); });
    Reg->registerPass("unroll",
                      [] { return std::make_unique<UnrollPass>(0); });
    Reg->registerPass("inline",
                      [] { return std::make_unique<InlinePass>(); });
    Reg->registerPass("profile",
                      [] { return std::make_unique<ProfilePass>(); });
    Reg->registerPass("partition", [] {
      return std::make_unique<PartitionPass>(PartitionPass::Mode::FromConfig);
    });
    Reg->registerPass("partition-basic", [] {
      return std::make_unique<PartitionPass>(PartitionPass::Mode::Basic);
    });
    Reg->registerPass("partition-advanced", [] {
      return std::make_unique<PartitionPass>(PartitionPass::Mode::Advanced);
    });
    Reg->registerPass("fp-arg-passing",
                      [] { return std::make_unique<FpArgPassingPass>(); });
    Reg->registerPass("regalloc",
                      [] { return std::make_unique<RegAllocPass>(); });
    Reg->registerPass("regalloc-linear", [] {
      return std::make_unique<RegAllocPass>("regalloc-linear");
    });
    Reg->registerPass("verify",
                      [] { return std::make_unique<VerifyPass>(); });
    return Reg;
  }();
  return *R;
}

void PassRegistry::registerPass(const std::string &Name, Factory F) {
  Factories[Name] = std::move(F);
}

std::unique_ptr<ModulePass>
PassRegistry::create(const std::string &Name) const {
  auto It = Factories.find(Name);
  return It == Factories.end() ? nullptr : It->second();
}

bool PassRegistry::contains(const std::string &Name) const {
  return Factories.count(Name) != 0;
}

std::vector<std::string> PassRegistry::names() const {
  std::vector<std::string> Names;
  for (const auto &KV : Factories)
    Names.push_back(KV.first);
  return Names;
}

//===----------------------------------------------------------------------===//
// Pipeline text.
//===----------------------------------------------------------------------===//

namespace {

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\n\r");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\n\r");
  return S.substr(B, E - B + 1);
}

/// Splits \p Text on top-level commas (commas inside parentheses stay
/// with their token). Returns false on unbalanced parentheses.
bool splitTopLevel(const std::string &Text, std::vector<std::string> &Out,
                   std::string &Error) {
  int Depth = 0;
  std::string Cur;
  for (char C : Text) {
    if (C == '(')
      ++Depth;
    else if (C == ')') {
      if (--Depth < 0) {
        Error = "unbalanced ')' in pipeline text";
        return false;
      }
    }
    if (C == ',' && Depth == 0) {
      Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (Depth != 0) {
    Error = "unbalanced '(' in pipeline text";
    return false;
  }
  Out.push_back(Cur);
  return true;
}

bool parseInto(const std::string &Text,
               std::vector<std::unique_ptr<ModulePass>> &Out,
               std::string &Error, const PassRegistry &Registry) {
  std::vector<std::string> Tokens;
  if (!splitTopLevel(Text, Tokens, Error))
    return false;
  for (const std::string &Raw : Tokens) {
    std::string Tok = trim(Raw);
    if (Tok.empty()) {
      Error = "empty pass name in pipeline text '" + Text + "'";
      return false;
    }
    if (Tok == "opt2") {
      // Preset: expands in place, so "--passes=opt2" works everywhere
      // plain pipeline text does.
      if (!parseInto(core::opt2PipelineText(), Out, Error, Registry))
        return false;
      continue;
    }
    const std::string UnrollHead = "unroll<";
    if (Tok.rfind(UnrollHead, 0) == 0 && Tok.back() == '>') {
      const std::string Num =
          Tok.substr(UnrollHead.size(), Tok.size() - UnrollHead.size() - 1);
      unsigned Factor = 0;
      bool Valid = !Num.empty() && Num.size() <= 2;
      for (char C : Num) {
        if (C < '0' || C > '9') {
          Valid = false;
          break;
        }
        Factor = Factor * 10 + static_cast<unsigned>(C - '0');
      }
      if (!Valid || Factor < 2 || Factor > 16) {
        Error = "invalid unroll factor in '" + Tok + "' (want unroll<2..16>)";
        return false;
      }
      Out.push_back(std::make_unique<UnrollPass>(Factor));
      continue;
    }
    const std::string FixpointHead = "fixpoint(";
    if (Tok.rfind(FixpointHead, 0) == 0 && Tok.back() == ')') {
      std::string Inner = Tok.substr(
          FixpointHead.size(), Tok.size() - FixpointHead.size() - 1);
      std::vector<std::unique_ptr<ModulePass>> Sub;
      if (!parseInto(Inner, Sub, Error, Registry))
        return false;
      Out.push_back(std::make_unique<FixpointPass>(std::move(Sub)));
      continue;
    }
    std::unique_ptr<ModulePass> P = Registry.create(Tok);
    if (!P) {
      Error = "unknown pass '" + Tok + "'";
      return false;
    }
    Out.push_back(std::move(P));
  }
  return true;
}

} // namespace

bool core::parsePipeline(const std::string &Text,
                         std::vector<std::unique_ptr<ModulePass>> &Out,
                         std::string &Error, const PassRegistry &Registry) {
  if (trim(Text).empty()) {
    Error = "empty pipeline text";
    return false;
  }
  std::vector<std::unique_ptr<ModulePass>> Parsed;
  if (!parseInto(Text, Parsed, Error, Registry))
    return false;
  for (auto &P : Parsed)
    Out.push_back(std::move(P));
  return true;
}

const char *core::defaultPipelineText() {
  return "opt,profile,partition,fp-arg-passing,regalloc";
}

const char *core::opt2PipelineText() {
  // The second "opt" cleans up what the mid-end exposes: inlined arg
  // moves copy-propagate away, unrolled counter updates fold, and GVN
  // moves feed DCE.
  return "opt,gvn,licm,unroll,inline,opt,profile,partition,fp-arg-passing,"
         "regalloc";
}

std::string core::effectivePipelineText(const PipelineConfig &Config) {
  if (!Config.Passes.empty())
    return Config.Passes;
  if (const char *Env = std::getenv("FPINT_PASSES"))
    if (*Env)
      return Env;
  return defaultPipelineText();
}

//===----------------------------------------------------------------------===//
// PassManager.
//===----------------------------------------------------------------------===//

PassManager::Options PassManager::Options::fromEnv() {
  Options Opts;
  if (const char *V = std::getenv("FPINT_VERIFY_EACH_PASS"))
    Opts.VerifyEach = *V && std::string(V) != "0";
  if (const char *P = std::getenv("FPINT_PRINT_AFTER"))
    Opts.PrintAfter = P;
  return Opts;
}

bool PassManager::parse(const std::string &Text, std::string &Error,
                        const PassRegistry &Registry) {
  return parsePipeline(Text, Passes, Error, Registry);
}

std::string PassManager::text() const {
  std::string Text;
  for (size_t I = 0; I < Passes.size(); ++I) {
    if (I)
      Text += ",";
    Text += Passes[I]->name();
  }
  return Text;
}

std::vector<PassStat> PassManager::run(sir::Module &M,
                                       analysis::AnalysisManager &AM,
                                       PassState &State) {
  std::vector<PassStat> Stats;
  for (const auto &P : Passes) {
    if (State.Fatal)
      break;
    const analysis::AnalysisManager::Counters Before = AM.counters();
    const auto T0 = std::chrono::steady_clock::now();
    unsigned Changes = P->run(M, AM, State);
    // The boundary invalidation runs inside the pass's accounting
    // window so the invalidation cost is attributed to the pass that
    // caused it.
    AM.invalidate(P->preserved());
    const auto T1 = std::chrono::steady_clock::now();
    const analysis::AnalysisManager::Counters After = AM.counters();

    PassStat S;
    S.Name = P->name();
    S.WallMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
    S.Changes = Changes;
    S.AnalysisHits = After.Hits - Before.Hits;
    S.AnalysisMisses = After.Misses - Before.Misses;
    S.AnalysisInvalidations = After.Invalidations - Before.Invalidations;
    Stats.push_back(S);

    if (!Opts.PrintAfter.empty() && Opts.PrintAfter == S.Name)
      std::fprintf(stderr, "; module after pass '%s'\n%s", S.Name.c_str(),
                   sir::toString(M).c_str());

    if (State.Fatal)
      break;
    if (Opts.VerifyEach) {
      std::vector<std::string> Errs = sir::verify(M);
      if (!Errs.empty()) {
        State.Errors.push_back("verify after pass '" + S.Name +
                               "': " + Errs.front());
        State.Fatal = true;
        break;
      }
    }
  }
  return Stats;
}
