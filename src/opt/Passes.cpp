//===- opt/Passes.cpp - Machine-independent optimizations -----------------===//

#include "opt/Passes.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace fpint;
using namespace fpint::opt;
using sir::BasicBlock;
using sir::Function;
using sir::Instruction;
using sir::Opcode;
using sir::Reg;

namespace {

/// True for instructions with no side effects whose only product is
/// their destination register. Loads are excluded: removing one could
/// suppress an out-of-bounds fault.
bool isPure(const Instruction &I) {
  switch (I.op()) {
  case Opcode::Call:
  case Opcode::Ret:
  case Opcode::Jump:
  case Opcode::Out:
    return false;
  default:
    break;
  }
  if (I.isCondBranch() || I.isStore() || I.isLoad())
    return false;
  return I.def().isValid();
}

/// Evaluates a foldable integer operation. Mirrors VM semantics.
bool evalConst(Opcode Op, int32_t A, int32_t B, int64_t Imm, int32_t &Out) {
  auto U = [](int32_t V) { return static_cast<uint32_t>(V); };
  switch (Op) {
  case Opcode::Add:
    Out = static_cast<int32_t>(U(A) + U(B));
    return true;
  case Opcode::Sub:
    Out = static_cast<int32_t>(U(A) - U(B));
    return true;
  case Opcode::AddI:
    Out = static_cast<int32_t>(U(A) + U(static_cast<int32_t>(Imm)));
    return true;
  case Opcode::And:
    Out = A & B;
    return true;
  case Opcode::AndI:
    Out = A & static_cast<int32_t>(Imm);
    return true;
  case Opcode::Or:
    Out = A | B;
    return true;
  case Opcode::OrI:
    Out = A | static_cast<int32_t>(Imm);
    return true;
  case Opcode::Xor:
    Out = A ^ B;
    return true;
  case Opcode::XorI:
    Out = A ^ static_cast<int32_t>(Imm);
    return true;
  case Opcode::Nor:
    Out = ~(A | B);
    return true;
  case Opcode::Sll:
    Out = static_cast<int32_t>(U(A) << (Imm & 31));
    return true;
  case Opcode::Srl:
    Out = static_cast<int32_t>(U(A) >> (Imm & 31));
    return true;
  case Opcode::Sra:
    Out = A >> (Imm & 31);
    return true;
  case Opcode::SllV:
    Out = static_cast<int32_t>(U(A) << (B & 31));
    return true;
  case Opcode::SrlV:
    Out = static_cast<int32_t>(U(A) >> (B & 31));
    return true;
  case Opcode::SraV:
    Out = A >> (B & 31);
    return true;
  case Opcode::Slt:
    Out = A < B;
    return true;
  case Opcode::SltU:
    Out = U(A) < U(B);
    return true;
  case Opcode::SltI:
    Out = A < static_cast<int32_t>(Imm);
    return true;
  case Opcode::Mul:
    Out = static_cast<int32_t>(U(A) * U(B));
    return true;
  case Opcode::Div:
    if (B == 0 || (A == INT32_MIN && B == -1))
      Out = 0;
    else
      Out = A / B;
    return true;
  case Opcode::Rem:
    if (B == 0 || (A == INT32_MIN && B == -1))
      Out = A;
    else
      Out = A % B;
    return true;
  default:
    return false;
  }
}

/// Turns \p I into "move Def, Src" preserving class (FMove for FP).
void rewriteToMove(Function &F, Instruction &I, Reg Src) {
  bool Fp = F.regClass(I.def()) == sir::RegClass::Fp;
  I.setOp(Fp ? Opcode::FMove : Opcode::Move);
  I.uses() = {Src};
  I.setImm(0);
  // A retargeted instruction loses any FPa marking only if the move
  // cannot carry it; integer moves remain offloadable, so keep the bit.
  if (Fp && I.inFpa())
    I.setInFpa(false);
}

} // namespace

bool opt::isPureInstr(const Instruction &I) { return isPure(I); }

bool opt::evalConstOp(Opcode Op, int32_t A, int32_t B, int64_t Imm,
                      int32_t &Out) {
  return evalConst(Op, A, B, Imm, Out);
}

void opt::rewriteInstrToMove(Function &F, Instruction &I, Reg Src) {
  rewriteToMove(F, I, Src);
}

unsigned opt::propagateCopies(Function &F) {
  unsigned Changed = 0;
  for (const auto &BB : F.blocks()) {
    // Current copy source per register (resolving chains on record).
    std::unordered_map<uint32_t, Reg> Source;
    auto Invalidate = [&](Reg Def) {
      Source.erase(Def.id());
      for (auto It = Source.begin(); It != Source.end();)
        It = It->second == Def ? Source.erase(It) : std::next(It);
    };
    for (const auto &I : BB->instructions()) {
      // Rewrite uses first.
      for (Reg &U : I->uses()) {
        auto It = Source.find(U.id());
        if (It != Source.end() && It->second != U) {
          U = It->second;
          ++Changed;
        }
      }
      if (I->mem().Base.isValid()) {
        auto It = Source.find(I->mem().Base.id());
        if (It != Source.end() && It->second != I->mem().Base) {
          I->mem().Base = It->second;
          ++Changed;
        }
      }
      if (!I->def().isValid())
        continue;
      Invalidate(I->def());
      if ((I->op() == Opcode::Move || I->op() == Opcode::FMove) &&
          I->uses()[0] != I->def() &&
          F.regClass(I->uses()[0]) == F.regClass(I->def())) {
        Reg Src = I->uses()[0];
        auto It = Source.find(Src.id());
        Source[I->def().id()] = It != Source.end() ? It->second : Src;
      }
    }
  }
  return Changed;
}

unsigned opt::foldConstants(Function &F) {
  unsigned Changed = 0;
  for (const auto &BB : F.blocks()) {
    std::unordered_map<uint32_t, int32_t> Consts;
    for (const auto &I : BB->instructions()) {
      const Opcode Op = I->op();
      auto ConstOf = [&](Reg R, int32_t &V) {
        auto It = Consts.find(R.id());
        if (It == Consts.end())
          return false;
        V = It->second;
        return true;
      };

      bool Simplified = false;
      if (isPure(*I) && Op != Opcode::Move && Op != Opcode::FMove &&
          Op != Opcode::La && !sir::isFpOpcode(Op)) {
        int32_t A = 0, B = 0, Result = 0;
        const auto &Uses = I->uses();
        bool HaveA = !Uses.empty() && ConstOf(Uses[0], A);
        bool HaveB = Uses.size() > 1 ? ConstOf(Uses[1], B) : true;
        if ((Uses.empty() || (HaveA && HaveB)) &&
            evalConst(Op, A, B, I->imm(), Result)) {
          bool Fpa = I->inFpa();
          I->setOp(Opcode::Li);
          I->uses().clear();
          I->setImm(Result);
          I->setInFpa(Fpa);
          Simplified = true;
          ++Changed;
        } else if (Uses.size() == 1) {
          // Algebraic identities on register-immediate forms.
          int64_t Imm = I->imm();
          bool Identity =
              (Op == Opcode::AddI && Imm == 0) ||
              (Op == Opcode::OrI && Imm == 0) ||
              (Op == Opcode::XorI && Imm == 0) ||
              ((Op == Opcode::Sll || Op == Opcode::Srl ||
                Op == Opcode::Sra) &&
               (Imm & 31) == 0) ||
              (Op == Opcode::AndI && Imm == -1);
          if (Identity) {
            Reg Src = I->uses()[0];
            bool Fpa = I->inFpa();
            rewriteToMove(F, *I, Src);
            I->setInFpa(Fpa && !sir::isFpOpcode(I->op()));
            Simplified = true;
            ++Changed;
          }
        }
      }

      if (!I->def().isValid())
        continue;
      Consts.erase(I->def().id());
      if (I->op() == Opcode::Li)
        Consts[I->def().id()] = static_cast<int32_t>(I->imm());
      (void)Simplified;
    }
  }
  return Changed;
}

unsigned opt::eliminateCommonSubexpressions(Function &F) {
  unsigned Changed = 0;
  for (const auto &BB : F.blocks()) {
    // Available pure expressions: key -> defining register.
    struct Expr {
      Opcode Op;
      int64_t Imm;
      uint32_t U0, U1;
      bool operator<(const Expr &O) const {
        return std::tie(Op, Imm, U0, U1) < std::tie(O.Op, O.Imm, O.U0, O.U1);
      }
    };
    std::map<Expr, Reg> Available;
    auto InvalidateReg = [&](Reg Def) {
      for (auto It = Available.begin(); It != Available.end();) {
        bool Kill = It->second == Def || It->first.U0 == Def.id() ||
                    It->first.U1 == Def.id();
        It = Kill ? Available.erase(It) : std::next(It);
      }
    };
    for (const auto &I : BB->instructions()) {
      const bool Candidate =
          isPure(*I) && I->op() != Opcode::Move && I->op() != Opcode::FMove &&
          I->op() != Opcode::CpToFp && I->op() != Opcode::CpToInt &&
          I->op() != Opcode::Li && I->op() != Opcode::FLi &&
          I->op() != Opcode::La && !I->inFpa();
      if (Candidate) {
        Expr Key{I->op(), I->imm(),
                 I->uses().size() > 0 ? I->uses()[0].id() : 0,
                 I->uses().size() > 1 ? I->uses()[1].id() : 0};
        auto It = Available.find(Key);
        if (It != Available.end() &&
            F.regClass(It->second) == F.regClass(I->def())) {
          rewriteToMove(F, *I, It->second);
          ++Changed;
          if (I->def().isValid())
            InvalidateReg(I->def());
          continue;
        }
        if (I->def().isValid()) {
          InvalidateReg(I->def());
          // An instruction that redefines one of its own operands
          // (add %a, %a, %b) computes an expression over the *old*
          // value; recording it would match later recomputations that
          // see the new value.
          bool DefIsOperand = false;
          for (Reg U : I->uses())
            DefIsOperand |= U == I->def();
          if (!DefIsOperand)
            Available.emplace(Key, I->def());
          continue;
        }
      }
      if (I->def().isValid())
        InvalidateReg(I->def());
    }
  }
  return Changed;
}

unsigned opt::eliminateDeadCode(Function &F) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Global use census.
    std::unordered_set<uint32_t> Used;
    F.forEachInstr([&](const Instruction &I) {
      I.forEachUse([&](Reg R, sir::UseKind) { Used.insert(R.id()); });
    });
    for (Reg Formal : F.formals())
      Used.insert(Formal.id()); // Formals are externally visible.

    for (const auto &BB : F.blocks()) {
      auto &Instrs = BB->instructions();
      for (size_t Pos = 0; Pos < Instrs.size();) {
        Instruction &I = *Instrs[Pos];
        if (isPure(I) && !Used.count(I.def().id())) {
          Instrs.erase(Instrs.begin() + Pos);
          ++Removed;
          Changed = true;
          continue;
        }
        ++Pos;
      }
    }
  }
  return Removed;
}

OptReport opt::optimizeModule(sir::Module &M, const OptOptions &Opts) {
  OptReport Report;
  const unsigned Cap = std::max(1u, Opts.MaxRounds);
  for (const auto &F : M.functions()) {
    unsigned Rounds = 0;
    bool LastRoundChanged = false;
    for (unsigned Round = 0; Round < Cap; ++Round) {
      unsigned Before = Report.total();
      Report.CopiesPropagated += propagateCopies(*F);
      Report.ConstantsFolded += foldConstants(*F);
      Report.SubexpressionsEliminated +=
          eliminateCommonSubexpressions(*F);
      Report.DeadInstructionsRemoved += eliminateDeadCode(*F);
      ++Rounds;
      LastRoundChanged = Report.total() != Before;
      if (!LastRoundChanged)
        break;
    }
    Report.TotalRounds += Rounds;
    Report.MaxFunctionRounds = std::max(Report.MaxFunctionRounds, Rounds);
    if (LastRoundChanged)
      ++Report.FunctionsHitCap; // Cut off before a proven fixpoint.
  }
  M.renumber();
  return Report;
}
