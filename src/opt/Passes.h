//===- opt/Passes.h - Machine-independent optimizations -------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic machine-independent optimizations. The paper performs code
/// partitioning "after all the initial machine-independent
/// optimizations are complete" (its benchmarks are compiled -O3: common
/// subexpression elimination, invariant removal, jump optimization);
/// this library provides the corresponding cleanup for sir programs so
/// the partitioner sees optimized code:
///
///  * local copy propagation (forwarding move sources into uses),
///  * local constant folding with algebraic identities,
///  * local common-subexpression elimination over pure operations,
///  * global dead-code elimination of unused pure definitions.
///
/// All passes preserve program outputs exactly (loads are never touched:
/// deleting one could suppress an out-of-bounds fault and change
/// behaviour). Each returns the number of changes; optimizeModule runs
/// them to a fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_OPT_PASSES_H
#define FPINT_OPT_PASSES_H

#include "sir/IR.h"

namespace fpint {
namespace opt {

/// True for instructions with no side effects whose only product is
/// their destination register (loads excluded: removing one could
/// suppress an out-of-bounds fault). Shared with the mid-end
/// transforms (GVN, LICM) so pass libraries agree on purity.
bool isPureInstr(const sir::Instruction &I);

/// Evaluates a foldable integer operation, mirroring VM semantics
/// (division by zero and INT32_MIN/-1 yield 0; x%0 yields x). Returns
/// false for opcodes that cannot be folded. Shared with the unroller's
/// trip-count simulation.
bool evalConstOp(sir::Opcode Op, int32_t A, int32_t B, int64_t Imm,
                 int32_t &Out);

/// Turns \p I into "move Def, Src" preserving register class (FMove
/// for FP destinations). Shared with GVN's redundancy replacement.
void rewriteInstrToMove(sir::Function &F, sir::Instruction &I, sir::Reg Src);

/// Rewrites uses of registers defined by Move/FMove with the move's
/// source, within each basic block. Returns uses rewritten.
unsigned propagateCopies(sir::Function &F);

/// Folds ALU operations whose operands are block-local constants into
/// Li, and applies algebraic identities (x+0, x^0, x<<0, x|0, x&~0
/// become moves). Returns instructions simplified.
unsigned foldConstants(sir::Function &F);

/// Local CSE: a pure operation identical to an earlier one in the same
/// block (same opcode/operands/immediate, operands not redefined in
/// between) becomes a move from the earlier result. Returns
/// instructions replaced.
unsigned eliminateCommonSubexpressions(sir::Function &F);

/// Removes pure instructions (ALU, moves, la, li, copies, FP
/// arithmetic) whose results are never used anywhere in the function.
/// Returns instructions deleted.
unsigned eliminateDeadCode(sir::Function &F);

/// Aggregate change counts and convergence telemetry from
/// optimizeModule.
struct OptReport {
  unsigned CopiesPropagated = 0;
  unsigned ConstantsFolded = 0;
  unsigned SubexpressionsEliminated = 0;
  unsigned DeadInstructionsRemoved = 0;

  /// Fixpoint-iteration telemetry: total rounds executed across all
  /// functions, the largest per-function round count (the module's
  /// iterations-to-convergence), and how many functions were cut off
  /// by the round cap before reaching a fixpoint.
  unsigned TotalRounds = 0;
  unsigned MaxFunctionRounds = 0;
  unsigned FunctionsHitCap = 0;

  bool converged() const { return FunctionsHitCap == 0; }

  unsigned total() const {
    return CopiesPropagated + ConstantsFolded + SubexpressionsEliminated +
           DeadInstructionsRemoved;
  }
};

/// Knobs for optimizeModule.
struct OptOptions {
  /// Hard cap on fixpoint rounds per function. A pathological module
  /// must terminate here instead of spinning; a cap hit is recorded in
  /// OptReport::FunctionsHitCap, never an error (the IR is correct
  /// after any prefix of rounds, just less optimized).
  unsigned MaxRounds = 4;
};

/// Runs all passes over every function to a fixpoint (capped at
/// Opts.MaxRounds rounds per function) and renumbers the module.
OptReport optimizeModule(sir::Module &M, const OptOptions &Opts = OptOptions());

} // namespace opt
} // namespace fpint

#endif // FPINT_OPT_PASSES_H
