//===- workloads/Workloads.h - SPEC95-like synthetic programs -------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates on SPECint95 (Table 2: compress, gcc, go, ijpeg,
/// li, m88ksim, perl) plus floating-point programs for Section 7.5
/// (notably ear from SPEC92). SPEC inputs and sources are proprietary,
/// so this reproduction substitutes one synthetic program per benchmark,
/// written in the sir IR and designed to exercise the same program
/// character that drives the paper's results:
///
///   compress  LZW-style coder: hash chains and a memory-free PRNG
///             (whose loop moves entirely to FPa, Section 6.6)
///   gcc       register-set bookkeeping over pseudo-register tables
///             (the paper's own Figure 3 example is from gcc)
///   go        board evaluation: dense addressing with data-dependent
///             branching -- small basic partition, advanced ~doubles it
///   ijpeg     integer DCT-style transforms: long store-value slices
///             plus a few integer multiplies (the paper notes ~3%)
///   li        call-intensive list interpreter with tiny functions --
///             calling conventions cap the partition, advanced ~= basic
///   m88ksim   instruction-set interpreter: wide decode slices offload
///             heavily but leave the INT side load-imbalanced (7.3)
///   perl      string hashing and matching over byte buffers
///   ear       FP filter bank with offloadable integer side-chains
///             (the paper saw 18% offload and 18% speedup)
///   swim      FP stencil whose integer work is almost pure addressing
///             (negligible change, like most of Section 7.5)
///
/// Every program self-checks by emitting checksums through "out"; the
/// pipeline requires partitioned/allocated variants to match them.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_WORKLOADS_WORKLOADS_H
#define FPINT_WORKLOADS_WORKLOADS_H

#include "sir/IR.h"

#include <memory>
#include <string>
#include <vector>

namespace fpint {
namespace workloads {

struct Workload {
  std::string Name;        ///< Table 2 benchmark name.
  std::string Description; ///< What the synthetic stand-in computes.
  std::string Input;       ///< Table 2 input label (synthetic analogue).
  std::unique_ptr<sir::Module> M;
  std::vector<int32_t> TrainArgs; ///< Profiling-run main() arguments.
  std::vector<int32_t> RefArgs;   ///< Measurement-run main() arguments.
  bool IsFloatingPoint = false;
};

/// The seven SPECint95 stand-ins, in Table 2 order.
std::vector<Workload> intWorkloads();

/// The Section 7.5 floating-point programs.
std::vector<Workload> fpWorkloads();

/// Builds one workload by name ("compress", ..., "ear", "swim").
Workload workloadByName(const std::string &Name);

/// All workload names, integer first.
std::vector<std::string> allWorkloadNames();

} // namespace workloads
} // namespace fpint

#endif // FPINT_WORKLOADS_WORKLOADS_H
