//===- workloads/Go.cpp - Board evaluation (go stand-in) ------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// go's hot code walks board arrays computing neighbour influence and
/// liberty-like counts: the integer work is dominated by address
/// arithmetic over the board (pinned to INT), leaving a small basic
/// partition; the advanced scheme roughly doubles it by duplicating the
/// point index into the FP file so the data-dependent scoring branches
/// can move (the paper reports exactly this 2x for go).
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace fpint::workloads;

namespace {

const char *Source = R"(
global board 441                # 21x21 with a border
global influence 441
global history 256
global score 2

func main(%passes) {
entry:
  # Seed the board with a deterministic pattern: 0 empty, 1/2 stones.
  li %i, 0
seedloop:
  sll %p1, %i, 3
  xor %p2, %p1, %i
  srl %p3, %p2, 2
  add %p4, %p3, %i
  andi %v, %p4, 3
  slti %isbig, %v, 3
  bne %isbig, %zero, store_v
  li %v, 0
store_v:
  la %bp, board
  sll %ioff, %i, 2
  add %bea, %bp, %ioff
  sw %v, 0(%bea)
  addi %i, %i, 1
  slti %it, %i, 441
  bne %it, %zero, seedloop

  li %pass, 0
passloop:
  li %pt, 22                    # first interior point
  li %black, 0
  li %white, 0
ptloop:
  la %bb, board
  sll %poff, %pt, 2
  add %pea, %bb, %poff

  # Four neighbour loads: pure address arithmetic (INT).
  lw %self, 0(%pea)
  lw %north, -84(%pea)
  lw %south, 84(%pea)
  lw %west, -4(%pea)
  lw %east, 4(%pea)

  # Influence of the neighbourhood: chains from loaded values into the
  # influence store -- offloadable by the basic scheme.
  sll %n2, %north, 2
  sll %s2, %south, 2
  add %ns, %n2, %s2
  add %ew, %west, %east
  add %inf, %ns, %ew
  sll %selfw, %self, 4
  add %inf2, %inf, %selfw
  la %ib, influence
  add %iea, %ib, %poff
  sw %inf2, 0(%iea)

  # The influence value indexes a history table (move ordering in real
  # go engines): that address use pins the whole influence chain to INT,
  # keeping go's basic partition small as in the paper.
  andi %hidx, %inf2, 255
  sll %hoff, %hidx, 2
  la %hb, history
  add %hea, %hb, %hoff
  lw %hval, 0(%hea)
  addi %hval2, %hval, 1
  sw %hval2, 0(%hea)

  # Stone counting: branches on loaded values.
  slti %isb, %self, 2
  beq %isb, %zero, count_white
  beq %self, %zero, nextpt
  addi %black, %black, 1
  jmp nextpt
count_white:
  addi %white, %white, 1
nextpt:
  addi %pt, %pt, 1
  slti %ptt, %pt, 419
  bne %ptt, %zero, ptloop

  # Fold the counts into the running score.
  lw %sc, score
  sub %diff, %black, %white
  add %sc2, %sc, %diff
  sw %sc2, score
  addi %pass, %pass, 1
  slt %pt2, %pass, %passes
  bne %pt2, %zero, passloop

  lw %o1, score
  out %o1
  lw %o2, influence+400
  out %o2
  lw %o3, influence+800
  out %o3
  lw %o4, history+128
  out %o4
  ret
}
)";

} // namespace

Workload fpint::workloads::detail::makeGo() {
  return assemble("go", "board influence and stone counting sweeps",
                  "synthetic 21x21 board (train 2, ref 10)", Source, {2},
                  {10});
}
