//===- workloads/Swim.cpp - FP stencil (swim stand-in, Section 7.5) -------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shallow-water-style five-point FP stencil. Its integer work is
/// almost entirely grid addressing (pinned to INT), so the partitioning
/// schemes find essentially nothing to offload -- the paper's Section
/// 7.5 observation that most FP programs see negligible change.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace fpint::workloads;

namespace {

const char *Source = R"(
global gridA 1156               # 34x34 with a border
global gridB 1156

func main(%iters) {
entry:
  # Initialize the grid with converted integer bit patterns.
  li %i, 0
init:
  andi %v1, %i, 255
  addi %v2, %v1, 1
  la %ga, gridA
  sll %ioff, %i, 2
  add %iea, %ga, %ioff
  sw %v2, 0(%iea)
  addi %i, %i, 1
  slti %it, %i, 1156
  bne %it, %zero, init

  # Convert to float in place.
  li %c, 0
conv:
  la %gc, gridA
  sll %coff, %c, 2
  add %cea, %gc, %coff
  l.s %bits, 0(%cea)
  cvtif %fv, %bits
  s.s %fv, 0(%cea)
  addi %c, %c, 1
  slti %ct, %c, 1156
  bne %ct, %zero, conv

  fli %w, 0.2
  li %t, 0
timestep:
  li %r, 1
rowloop:
  li %col, 1
colloop:
  # idx = r*34 + col
  sll %r32, %r, 5
  sll %r2, %r, 1
  add %ridx, %r32, %r2
  add %idx, %ridx, %col
  sll %off, %idx, 2
  la %src, gridA
  add %pc, %src, %off

  l.s %center, 0(%pc)
  l.s %north, -136(%pc)
  l.s %south, 136(%pc)
  l.s %west, -4(%pc)
  l.s %east, 4(%pc)
  fadd %ns, %north, %south
  fadd %we, %west, %east
  fadd %sum4, %ns, %we
  fadd %sum5, %sum4, %center
  fmul %avg, %sum5, %w

  la %dst, gridB
  add %pd, %dst, %off
  s.s %avg, 0(%pd)

  addi %col, %col, 1
  slti %colt, %col, 33
  bne %colt, %zero, colloop
  addi %r, %r, 1
  slti %rt, %r, 33
  bne %rt, %zero, rowloop

  # Copy B back to A (grid swap).
  li %k, 0
swap:
  la %gb2, gridB
  sll %koff, %k, 2
  add %kb, %gb2, %koff
  l.s %tmp, 0(%kb)
  la %ga2, gridA
  add %ka, %ga2, %koff
  s.s %tmp, 0(%ka)
  addi %k, %k, 1
  slti %kt, %k, 1156
  bne %kt, %zero, swap

  addi %t, %t, 1
  slt %tt, %t, %iters
  bne %tt, %zero, timestep

  la %out1, gridA
  l.s %f1, 140(%out1)
  cvtfi %i1, %f1
  cp_to_int %o1, %i1
  out %o1
  l.s %f2, 2300(%out1)
  cvtfi %i2, %f2
  cp_to_int %o2, %i2
  out %o2
  ret
}
)";

} // namespace

Workload fpint::workloads::detail::makeSwim() {
  Workload W = assemble("swim", "five-point FP stencil over a 34x34 grid",
                        "synthetic grid (train 2, ref 8)", Source, {2}, {8});
  W.IsFloatingPoint = true;
  return W;
}
