//===- workloads/M88ksim.cpp - ISA interpreter (m88ksim stand-in) ---------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// m88ksim interprets Motorola 88100 binaries: fetch a word, decode
/// fields, dispatch on the opcode, and emulate the ALU semantics into a
/// simulated register file. Decode and emulation chains hang off the
/// loaded instruction word (offloadable), while register-file indexing
/// is address work (INT) -- a shape that gives m88ksim the largest
/// advanced partition and speedup in the paper, along with the
/// load-imbalance effect of Section 7.3 (INT often idles while FPa
/// executes the emulation chains).
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace fpint::workloads;

namespace {

const char *Source = R"(
global progmem 512              # synthetic guest program
global gregs 32                 # guest register file
global condflag 1

func main(%steps) {
entry:
  # Synthesize a guest program: op in bits 8..10, fields in low bits.
  li %i, 0
genloop:
  sll %g1, %i, 9
  xor %g2, %g1, %i
  srl %g3, %g2, 4
  xor %g4, %g3, %g2
  la %pm, progmem
  sll %goff, %i, 2
  add %gea, %pm, %goff
  sw %g4, 0(%gea)
  addi %i, %i, 1
  slti %gt, %i, 512
  bne %gt, %zero, genloop

  li %pc, 0
  li %n, 0
execloop:
  # Fetch.
  la %pm2, progmem
  andi %pcw, %pc, 511
  sll %poff, %pcw, 2
  add %pea, %pm2, %poff
  lw %inst, 0(%pea)

  # Decode: field extraction chains from the instruction word. The
  # register numbers feed register-file addresses (INT); the opcode and
  # immediate feed only branches and values (offloadable).
  srl %rs1, %inst, 3
  andi %rs1m, %rs1, 31
  srl %rs2, %inst, 16
  andi %rs2m, %rs2, 31
  srl %rdf, %inst, 21
  andi %rdm, %rdf, 31
  srl %opc, %inst, 8
  andi %op, %opc, 7

  # Source register reads.
  la %rf, gregs
  sll %r1off, %rs1m, 2
  add %r1ea, %rf, %r1off
  lw %v1, 0(%r1ea)
  sll %r2off, %rs2m, 2
  add %r2ea, %rf, %r2off
  lw %v2, 0(%r2ea)

  # Dispatch on the opcode (branches on a loaded-value chain).
  beq %op, %zero, do_add
  slti %c1, %op, 2
  bne %c1, %zero, do_sub
  slti %c2, %op, 3
  bne %c2, %zero, do_and
  slti %c3, %op, 4
  bne %c3, %zero, do_or
  slti %c4, %op, 5
  bne %c4, %zero, do_xor
  slti %c5, %op, 6
  bne %c5, %zero, do_shift
  jmp do_addi

do_add:
  add %res, %v1, %v2
  jmp writeback
do_sub:
  sub %res, %v1, %v2
  jmp writeback
do_and:
  and %res, %v1, %v2
  jmp writeback
do_or:
  or %res, %v1, %v2
  jmp writeback
do_xor:
  xor %res, %v1, %v2
  jmp writeback
do_shift:
  andi %sh, %v2, 15
  srav %res, %v1, %sh
  jmp writeback
do_addi:
  addi %res, %v1, 13

writeback:
  # Emulated condition codes: negative/zero/parity chains plus a carry
  # estimate, all value work hanging off the result (offloadable by the
  # basic scheme, like the reg_tick component of Figure 4).
  slt %neg, %res, %zero
  slti %zf, %res, 1
  sll %cc1, %neg, 2
  sll %cc2, %zf, 1
  or %cc, %cc1, %cc2
  sltu %carry, %res, %v1
  or %ccfull, %cc, %carry
  sw %ccfull, condflag

  # Destination write (address from decode).
  sll %rdoff, %rdm, 2
  add %rdea, %rf, %rdoff
  sw %res, 0(%rdea)

  addi %pc, %pc, 1
  addi %n, %n, 1
  slt %nt, %n, %steps
  bne %nt, %zero, execloop

  lw %o0, gregs+12
  out %o0
  lw %o1, gregs+64
  out %o1
  lw %o2, gregs+124
  out %o2
  lw %o3, condflag
  out %o3
  ret
}
)";

} // namespace

Workload fpint::workloads::detail::makeM88ksim() {
  return assemble("m88ksim",
                  "fetch/decode/execute interpreter for a synthetic ISA",
                  "synthetic 512-word guest program (train 1500, ref 9000)",
                  Source, {1500}, {9000});
}
