//===- workloads/WorkloadsImpl.h - Per-benchmark factory functions --------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal: one factory per synthetic benchmark (see Workloads.h for
/// the mapping to the paper's Table 2). Each factory parses an embedded
/// sir program and fixes its training/reference inputs.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_WORKLOADS_WORKLOADSIMPL_H
#define FPINT_WORKLOADS_WORKLOADSIMPL_H

#include "workloads/Workloads.h"

namespace fpint {
namespace workloads {
namespace detail {

Workload makeCompress();
Workload makeGcc();
Workload makeGo();
Workload makeIjpeg();
Workload makeLi();
Workload makeM88ksim();
Workload makePerl();
Workload makeEar();
Workload makeSwim();
Workload makeTomcatv();

/// Parses \p Source (asserting success) and assembles a Workload.
Workload assemble(const char *Name, const char *Description,
                  const char *Input, const char *Source,
                  std::vector<int32_t> TrainArgs,
                  std::vector<int32_t> RefArgs, bool IsFloatingPoint = false);

} // namespace detail
} // namespace workloads
} // namespace fpint

#endif // FPINT_WORKLOADS_WORKLOADSIMPL_H
