//===- workloads/Compress.cpp - LZW-style coder (compress stand-in) -------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// compress95 is an LZW coder over a byte stream. The stand-in keeps its
/// three characteristic pieces:
///
///  * a memory-free xorshift PRNG generating the input bytes -- the
///    paper singles out compress's rand() as a function the partitioner
///    moves entirely to FPa (Section 6.6);
///  * a hash-probe loop whose hash feeds table *addresses* (pinned to
///    INT) while code/checksum chains feed only stores and branches
///    (offloadable);
///  * per-symbol branch work tied to loaded values and, via the
///    advanced scheme's duplication, to the loop induction.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace fpint::workloads;

namespace {

const char *Source = R"(
global inbuf 2048               # one pseudo-byte per word
global hashtab 1026
global outcodes 4096
global g_seed 1 = 1804289383

func gen_byte() {
entry:
  # compress's rand(): static seed, memory-free update chain. The
  # advanced scheme offloads the whole chain, paying one copy-back for
  # the returned value (Section 6.6 observes the paper's partitioner
  # moving this entire function to FPa).
  lw %seed, g_seed
  sll %a, %seed, 13
  xor %b, %seed, %a
  srl %c, %b, 17
  xor %d, %b, %c
  sll %e, %d, 5
  xor %f, %d, %e
  sw %f, g_seed
  ret %f
}

func main(%n) {
entry:
  li %i, 0
  li %wsig, 99
  la %inp, inbuf
fill:                           # generate n pseudo-bytes
  call %seed, gen_byte()
  andi %byte, %seed, 255
  sll %off, %i, 2
  add %ea, %inp, %off
  sw %byte, 0(%ea)
  addi %i, %i, 1
  slt %t, %i, %n
  bne %t, %zero, fill

  # LZW-ish scan: hash probes + code emission + running checksum.
  li %j, 0
  li %prev, 0
  li %code, 256
  li %crc, -1
  li %k, 0
  la %htab, hashtab
  la %ocp, outcodes
scan:
  sll %joff, %j, 2
  add %jea, %inp, %joff
  lw %ch, 0(%jea)
  lw %chv, 0(%jea)              # data-side reload for the value chains

  # Hash feeds an address: its slice stays INT.
  sll %h1, %prev, 4
  xor %h2, %h1, %ch
  andi %h, %h2, 1023
  sll %hoff, %h, 2
  add %hea, %htab, %hoff
  lw %entry, 0(%hea)
  lw %entry2, 4(%hea)

  # Probe outcome: a pure loaded-value comparison chain (offloadable by
  # the basic scheme, like the paper's reg_tick component).
  sub %dif, %entry, %entry2
  xor %probe, %dif, %chv
  andi %pbit, %probe, 15
  beq %pbit, %zero, hit

  # Miss: install the pair and bump the code counter.
  sll %pair1, %prev, 8
  or %pair, %pair1, %ch
  sw %pair, 0(%hea)
  addi %code, %code, 1
hit:
  # Emit a code every symbol; the code chain feeds only store values.
  andi %emit, %code, 4095
  sll %koff, %k, 2
  add %kea, %ocp, %koff
  sw %emit, 0(%kea)
  addi %k, %k, 1
  andi %k, %k, 1023

  # Checksum chain feeds only the final outs: offloadable.
  sll %c1, %crc, 1
  xor %c2, %c1, %chv
  addi %c3, %c2, 7
  move %crc, %c3

  # Rolling window signature rooted at %ch: the character also feeds
  # the hash (an address), so the basic scheme cannot move this chain;
  # the advanced scheme copies ch into the FP file (Figure 5 style).
  sll %w1, %ch, 3
  sub %w2, %w1, %ch
  xor %w3, %w2, %wsig
  sll %w4, %w3, 1
  addi %w5, %w4, 5
  move %wsig, %w5

  move %prev, %ch
  addi %j, %j, 1
  slt %jt, %j, %n
  bne %jt, %zero, scan

  # Self-check: checksum, signature, code counter, emitted codes.
  out %crc
  out %wsig
  out %code
  out %k
  lw %s0, outcodes+40
  out %s0
  lw %s1, outcodes+400
  out %s1
  ret
}
)";

} // namespace

Workload fpint::workloads::detail::makeCompress() {
  return assemble("compress", "LZW-style coder with xorshift input",
                  "synthetic byte stream (train 400, ref 1800)", Source,
                  {400}, {1800});
}
