//===- workloads/Ijpeg.cpp - Integer DCT blocks (ijpeg stand-in) ----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ijpeg's kernels run integer DCT/quantization over 8x8 blocks: long
/// arithmetic slices from loaded pixels into stored coefficients, with
/// occasional integer multiplies (the paper measures ~3% of ijpeg's
/// instructions as multiply/divide). Multiplies are not FPa-offloadable,
/// so under the basic scheme they pin the butterflies that consume their
/// results -- the advanced scheme copies the multiply results into the
/// FP file and recovers the rest, reproducing ijpeg's signature jump
/// (10.7% -> 32.1% in Figure 8).
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace fpint::workloads;

namespace {

const char *Source = R"(
global image 1024               # 16 blocks of 8x8 samples
global coeffs 1024
global quant 64

func main(%blocks) {
entry:
  # Deterministic "image" data.
  li %i, 0
imgfill:
  sll %x1, %i, 7
  xor %x2, %x1, %i
  srl %x3, %x2, 3
  addi %x4, %x3, 17
  andi %pix, %x4, 255
  la %im, image
  sll %ioff, %i, 2
  add %iea, %im, %ioff
  sw %pix, 0(%iea)
  addi %i, %i, 1
  slti %it, %i, 1024
  bne %it, %zero, imgfill

  # Quantization table.
  li %q, 0
qfill:
  andi %qv1, %q, 7
  addi %qv, %qv1, 3
  la %qb, quant
  sll %qoff, %q, 2
  add %qea, %qb, %qoff
  sw %qv, 0(%qea)
  addi %q, %q, 1
  slti %qt, %q, 64
  bne %qt, %zero, qfill

  li %blk, 0
blkloop:
  andi %b15, %blk, 15
  sll %boff, %b15, 8            # 64 words * 4 bytes per block
  li %row, 0
rowloop:
  la %ib, image
  add %rb0, %ib, %boff
  sll %roff, %row, 5            # 8 words * 4 bytes per row
  add %rb, %rb0, %roff

  # Load an 8-sample row.
  lw %s0, 0(%rb)
  lw %s1, 4(%rb)
  lw %s2, 8(%rb)
  lw %s3, 12(%rb)
  lw %s4, 16(%rb)
  lw %s5, 20(%rb)
  lw %s6, 24(%rb)
  lw %s7, 28(%rb)

  # Butterfly stage 1 (pure adds/subs: offloadable values).
  add %t0, %s0, %s7
  sub %t7, %s0, %s7
  add %t1, %s1, %s6
  sub %t6, %s1, %s6
  add %t2, %s2, %s5
  sub %t5, %s2, %s5
  add %t3, %s3, %s4
  sub %t4, %s3, %s4

  # Stage 2 with scaling multiplies (mul pins these chains for the
  # basic scheme; the advanced scheme copies the products to FPa).
  add %u0, %t0, %t3
  sub %u3, %t0, %t3
  add %u1, %t1, %t2
  sub %u2, %t1, %t2
  li %c1, 181
  mul %m5, %t5, %c1
  sra %m5s, %m5, 8
  mul %m6, %t6, %c1
  sra %m6s, %m6, 8

  # Stage 3: outputs mix multiplied and plain terms.
  add %o0, %u0, %u1
  sub %o4, %u0, %u1
  add %o2, %u3, %m5s
  sub %o6, %u3, %m5s
  add %o1, %t7, %m6s
  sub %o7, %t7, %m6s
  add %o3, %u2, %t4
  sub %o5, %u2, %t4

  # Quantize and store the row of coefficients.
  la %cb, coeffs
  add %cb0, %cb, %boff
  add %crb, %cb0, %roff
  la %qb2, quant
  add %qrb, %qb2, %roff
  lw %q0, 0(%qrb)
  srav %d0, %o0, %q0
  sw %d0, 0(%crb)
  lw %q1, 4(%qrb)
  srav %d1, %o1, %q1
  sw %d1, 4(%crb)
  lw %q2, 8(%qrb)
  srav %d2, %o2, %q2
  sw %d2, 8(%crb)
  lw %q3, 12(%qrb)
  srav %d3, %o3, %q3
  sw %d3, 12(%crb)
  lw %q4, 16(%qrb)
  srav %d4, %o4, %q4
  sw %d4, 16(%crb)
  lw %q5, 20(%qrb)
  srav %d5, %o5, %q5
  sw %d5, 20(%crb)
  lw %q6, 24(%qrb)
  srav %d6, %o6, %q6
  sw %d6, 24(%crb)
  lw %q7, 28(%qrb)
  srav %d7, %o7, %q7
  sw %d7, 28(%crb)

  addi %row, %row, 1
  slti %rt, %row, 8
  bne %rt, %zero, rowloop

  # Range-limit pass over the block's low coefficients: pure
  # load -> clamp -> store chains, offloadable by the basic scheme
  # (jpeg's sample range limiting has this shape).
  li %rl, 0
rangeloop:
  la %cb3, coeffs
  add %cb4, %cb3, %boff
  sll %rloff, %rl, 2
  add %rlea, %cb4, %rloff
  lw %cv, 0(%rlea)
  slti %toolow, %cv, -255
  beq %toolow, %zero, nothigh
  li %cv, -255
nothigh:
  slti %inr, %cv, 256
  bne %inr, %zero, inrange
  li %cv, 255
inrange:
  sll %cv2, %cv, 1
  sub %cv3, %cv2, %cv
  sw %cv3, 0(%rlea)
  addi %rl, %rl, 1
  slti %rlt, %rl, 16
  bne %rlt, %zero, rangeloop

  addi %blk, %blk, 1
  slt %bt, %blk, %blocks
  bne %bt, %zero, blkloop

  lw %r0, coeffs+100
  out %r0
  lw %r1, coeffs+2052
  out %r1
  lw %r2, coeffs+3280
  out %r2
  ret
}
)";

} // namespace

Workload fpint::workloads::detail::makeIjpeg() {
  return assemble("ijpeg", "integer DCT + quantization over 8x8 blocks",
                  "synthetic 16-block image (train 24, ref 120)", Source,
                  {24}, {120});
}
