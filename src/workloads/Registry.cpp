//===- workloads/Registry.cpp - Workload registry --------------------------===//

#include "workloads/WorkloadsImpl.h"

#include "sir/Parser.h"
#include "sir/Verifier.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace fpint;
using namespace fpint::workloads;

Workload workloads::detail::assemble(const char *Name,
                                     const char *Description,
                                     const char *Input, const char *Source,
                                     std::vector<int32_t> TrainArgs,
                                     std::vector<int32_t> RefArgs,
                                     bool IsFloatingPoint) {
  sir::ParseResult PR = sir::parseModule(Source);
  if (!PR.ok()) {
    std::fprintf(stderr, "workload '%s' failed to parse: %s (line %u)\n",
                 Name, PR.Error.c_str(), PR.Line);
    std::abort();
  }
  auto Errors = sir::verify(*PR.M);
  if (!Errors.empty()) {
    std::fprintf(stderr, "workload '%s' failed to verify: %s\n", Name,
                 Errors[0].c_str());
    std::abort();
  }
  Workload W;
  W.Name = Name;
  W.Description = Description;
  W.Input = Input;
  W.M = std::move(PR.M);
  W.TrainArgs = std::move(TrainArgs);
  W.RefArgs = std::move(RefArgs);
  W.IsFloatingPoint = IsFloatingPoint;
  return W;
}

std::vector<Workload> workloads::intWorkloads() {
  std::vector<Workload> Result;
  Result.push_back(detail::makeCompress());
  Result.push_back(detail::makeGcc());
  Result.push_back(detail::makeGo());
  Result.push_back(detail::makeIjpeg());
  Result.push_back(detail::makeLi());
  Result.push_back(detail::makeM88ksim());
  Result.push_back(detail::makePerl());
  return Result;
}

std::vector<Workload> workloads::fpWorkloads() {
  std::vector<Workload> Result;
  Result.push_back(detail::makeEar());
  Result.push_back(detail::makeSwim());
  Result.push_back(detail::makeTomcatv());
  return Result;
}

Workload workloads::workloadByName(const std::string &Name) {
  if (Name == "compress")
    return detail::makeCompress();
  if (Name == "gcc")
    return detail::makeGcc();
  if (Name == "go")
    return detail::makeGo();
  if (Name == "ijpeg")
    return detail::makeIjpeg();
  if (Name == "li")
    return detail::makeLi();
  if (Name == "m88ksim")
    return detail::makeM88ksim();
  if (Name == "perl")
    return detail::makePerl();
  if (Name == "ear")
    return detail::makeEar();
  if (Name == "swim")
    return detail::makeSwim();
  if (Name == "tomcatv")
    return detail::makeTomcatv();
  std::fprintf(stderr, "unknown workload '%s'\n", Name.c_str());
  std::abort();
}

std::vector<std::string> workloads::allWorkloadNames() {
  return {"compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "ear",
          "swim", "tomcatv"};
}
