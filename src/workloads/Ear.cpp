//===- workloads/Ear.cpp - FP filter bank (ear stand-in, Section 7.5) -----===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ear (SPEC92) models the human ear with floating-point filter banks,
/// but carries substantial *integer* side computation (thresholding,
/// zero-crossing and histogram bookkeeping). The paper found 18% of its
/// instructions -- integer branch and store-value slices -- offloadable,
/// for a matching 18% speedup. The stand-in pairs an FIR filter cascade
/// (native FP) with integer envelope chains hanging off the converted
/// samples.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace fpint::workloads;

namespace {

const char *Source = R"(
global samples 2048
global filtered 2048
global envelope 2048
global crossings 1
global amphist 64

func main(%n) {
entry:
  # Synthesize an integer waveform, then run an FP filter over it.
  li %i, 0
genloop:
  # Quadratic waveform synthesis: the multiply pins this generator
  # chain to INT (real signal synthesis is multiply-heavy), keeping the
  # offloadable fraction down to the filter loop's envelope work.
  mul %w1, %i, %i
  srl %w2, %w1, 3
  xor %w2b, %w2, %i
  andi %w3, %w2b, 1023
  addi %wav, %w3, -512
  la %sb, samples
  sll %ioff, %i, 2
  add %iea, %sb, %ioff
  sw %wav, 0(%iea)
  # Amplitude histogram: the sample value indexes the bin, pinning the
  # generator chain to INT under both schemes (as in real ear, where
  # generated samples immediately feed table lookups).
  srl %bin, %w3, 4
  sll %bo, %bin, 2
  la %hb, amphist
  add %hea, %hb, %bo
  lw %hv, 0(%hea)
  addi %hv1, %hv, 1
  sw %hv1, 0(%hea)
  addi %i, %i, 1
  slt %it, %i, %n
  bne %it, %zero, genloop

  fli %a0, 0.25
  fli %a1, 0.5
  fli %a2, 0.25
  fli %fprev, 0.0
  li %j, 1
  li %ncross, 0
  li %energy, 0
filter:
  la %sb2, samples
  sll %joff, %j, 2
  add %jea, %sb2, %joff

  # Three-tap FIR on converted samples (native FP subsystem).
  l.s %x0b, -4(%jea)
  cvtif %x0, %x0b
  l.s %x1b, 0(%jea)
  cvtif %x1, %x1b
  l.s %x2b, 4(%jea)
  cvtif %x2, %x2b
  fmul %m0, %x0, %a0
  fmul %m1, %x1, %a1
  fmul %m2, %x2, %a2
  fadd %s01, %m0, %m1
  fadd %y, %s01, %m2
  la %fb, filtered
  add %fea, %fb, %joff
  cvtfi %yi, %y
  s.s %yi, 0(%fea)

  # Integer envelope: a short chain from the loaded raw sample into
  # the envelope store and the energy/zero-crossing counters -- the
  # offloadable integer work inside an FP program that gives the
  # paper's Section 7.5 "ear" effect (~18% of the instructions).
  lw %raw, 0(%jea)
  sra %mag1, %raw, 31
  xor %mag2, %raw, %mag1
  sub %mag, %mag2, %mag1
  la %eb, envelope
  add %eea, %eb, %joff
  sw %mag, 0(%eea)

  bltz %raw, crossed
  jmp nocross
crossed:
  addi %ncross, %ncross, 1
nocross:
  add %energy, %energy, %mag

  addi %j, %j, 1
  addi %lim, %n, -1
  slt %jt, %j, %lim
  bne %jt, %zero, filter

  out %ncross
  out %energy
  lw %o1, filtered+100
  out %o1
  lw %o2, envelope+200
  out %o2
  lw %o3, amphist+32
  out %o3
  ret
}
)";

} // namespace

Workload fpint::workloads::detail::makeEar() {
  Workload W = assemble(
      "ear", "FIR filter bank with integer envelope side-chains",
      "synthetic waveform (train 500, ref 1900)", Source, {500}, {1900});
  W.IsFloatingPoint = true;
  return W;
}
