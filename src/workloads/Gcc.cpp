//===- workloads/Gcc.cpp - Register bookkeeping (gcc stand-in) ------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// gcc spends much of its time in passes that sweep pseudo-register
/// tables testing bitmasks and updating per-register bookkeeping -- the
/// paper's own running example (Figure 3) is gcc's invalidate_for_call.
/// The stand-in runs three such sweeps per "compiled function":
/// invalidate_for_call itself, a use-count update keyed on a second
/// bitmask, and a cost-propagation pass whose values chain through
/// loads and stores.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace fpint::workloads;

namespace {

const char *Source = R"(
global regs_invalidated_by_call 1 = 151065093
global regs_ever_live 1 = 920350134
global reg_tick 128
global reg_n_refs 128
global reg_cost 128
global deleted 1

func delete_equiv_reg(%regno) {
entry:
  lw %d, deleted
  add %d2, %d, %regno
  sw %d2, deleted
  ret
}

func main(%funcs) {
entry:
  li %f, 0
outer:
  # Pass 1: invalidate_for_call (the paper's Figure 3).
  li %regno, 0
inval:
  lw %mask, regs_invalidated_by_call
  srav %bit, %mask, %regno
  andi %b1, %bit, 1
  beq %b1, %zero, skip1
  call delete_equiv_reg(%regno)
  la %base, reg_tick
  andi %r6, %regno, 63
  sll %idx, %r6, 2
  add %ea, %base, %idx
  lw %tick, 0(%ea)
  bltz %tick, skip1
  addi %tick1, %tick, 1
  sw %tick1, 0(%ea)
skip1:
  addi %regno, %regno, 1
  slti %t1, %regno, 66
  bne %t1, %zero, inval

  # Pass 2: reference counting keyed on a different mask.
  li %rn, 0
refs:
  lw %live, regs_ever_live
  srav %lb, %live, %rn
  andi %lb1, %lb, 1
  beq %lb1, %zero, skip2
  la %nb, reg_n_refs
  andi %rn6, %rn, 63
  sll %ridx, %rn6, 2
  add %rea, %nb, %ridx
  lw %nref, 0(%rea)
  sll %w, %nref, 1
  xor %w2, %w, %rn
  andi %w3, %w2, 65535
  sw %w3, 0(%rea)
  # The updated count indexes the cost table (couples this chain to an
  # address, keeping gcc's advanced partition moderate).
  andi %ci, %w3, 63
  sll %cio, %ci, 2
  la %cb0, reg_cost
  add %ciea, %cb0, %cio
  lw %cv, 0(%ciea)
  addi %cv1, %cv, 1
  sw %cv1, 0(%ciea)
skip2:
  addi %rn, %rn, 1
  slti %t2, %rn, 66
  bne %t2, %zero, refs

  # Pass 3: cost propagation; loaded costs chain into stored costs.
  li %cn, 1
costs:
  la %cb, reg_cost
  sll %cidx, %cn, 2
  add %cea, %cb, %cidx
  lw %cost, 0(%cea)
  addi %pidx, %cidx, -4
  add %pea, %cb, %pidx
  lw %pcost, 0(%pea)
  add %sum, %cost, %pcost
  sra %half, %sum, 1
  addi %adj, %half, 3
  slti %big, %adj, 5000
  bne %big, %zero, small
  li %adj, 0
small:
  sw %adj, 0(%cea)
  addi %cn, %cn, 1
  slti %t3, %cn, 64
  bne %t3, %zero, costs

  addi %f, %f, 1
  slt %ft, %f, %funcs
  bne %ft, %zero, outer

  lw %o1, deleted
  out %o1
  lw %o2, reg_tick+20
  out %o2
  lw %o3, reg_n_refs+40
  out %o3
  lw %o4, reg_cost+200
  out %o4
  ret
}
)";

} // namespace

Workload fpint::workloads::detail::makeGcc() {
  return assemble("gcc", "register-table sweeps (invalidate_for_call etc.)",
                  "synthetic pseudo-register tables (train 4, ref 24)",
                  Source, {4}, {24});
}
