//===- workloads/Li.cpp - List interpreter (xlisp/li stand-in) ------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// li (xlisp) is call-intensive with many tiny functions operating on
/// cons cells: almost every value either comes from memory, feeds
/// memory addresses (cell pointers), or crosses a call boundary -- all
/// of which pin computation to the INT subsystem. The paper observes
/// that li's FPa partition is small and that the advanced scheme barely
/// improves on the basic one; the stand-in keeps that shape with a
/// cons-cell arena, car/cdr/cons helpers, recursive list sums, and an
/// eval-like dispatch loop.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace fpint::workloads;

namespace {

const char *Source = R"(
global arena 4096               # cons cells: [car, cdr] word pairs
global freeptr 1
global nil 1

func cons(%car, %cdr) {
entry:
  lw %fp, freeptr
  sll %off, %fp, 3
  la %ab, arena
  add %ea, %ab, %off
  sw %car, 0(%ea)
  sw %cdr, 4(%ea)
  addi %fp2, %fp, 1
  sw %fp2, freeptr
  ret %ea
}

func car(%cell) {
entry:
  lw %v, 0(%cell)
  ret %v
}

func cdr(%cell) {
entry:
  lw %v, 4(%cell)
  ret %v
}

func sum_list(%cell) {
entry:
  bne %cell, %zero, walk
  li %z, 0
  ret %z
walk:
  call %head, car(%cell)
  call %tail, cdr(%cell)
  call %rest, sum_list(%tail)
  add %s, %head, %rest
  ret %s
}

func map_double(%cell) {
entry:
  beq %cell, %zero, done
  call %v, car(%cell)
  sll %v2, %v, 1
  sw %v2, 0(%cell)
  call %next, cdr(%cell)
  call map_double(%next)
done:
  ret
}

func main(%iters) {
entry:
  li %it, 0
iterloop:
  # Reset the arena and build a 48-element list.
  li %zero0, 0
  sw %zero0, freeptr
  li %lst, 0
  li %k, 0
build:
  xori %val, %k, 21
  andi %val2, %val, 63
  call %lst2, cons(%val2, %lst)
  move %lst, %lst2
  addi %k, %k, 1
  slti %kt, %k, 48
  bne %kt, %zero, build

  call map_double(%lst)
  call %total, sum_list(%lst)
  out %total

  # eval-style dispatch: walk the list, branching on tag bits.
  li %acc, 0
  move %cur, %lst
evalloop:
  beq %cur, %zero, evaldone
  lw %v3, 0(%cur)               # inlined car (a macro in xlisp)
  andi %tag, %v3, 3
  beq %tag, %zero, tag0
  slti %t1, %tag, 2
  bne %t1, %zero, tag1
  add %acc, %acc, %v3
  jmp advance
tag1:
  sub %acc, %acc, %v3
  jmp advance
tag0:
  xor %acc, %acc, %v3
advance:
  call %cur2, cdr(%cur)
  move %cur, %cur2
  jmp evalloop
evaldone:
  out %acc

  addi %it, %it, 1
  slt %itt, %it, %iters
  bne %itt, %zero, iterloop
  ret
}
)";

} // namespace

Workload fpint::workloads::detail::makeLi() {
  return assemble("li", "cons-cell interpreter with tiny hot functions",
                  "synthetic 48-cell lists (train 3, ref 16)", Source, {3},
                  {16});
}
