//===- workloads/Tomcatv.cpp - FP mesh relaxation (tomcatv stand-in) ------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// tomcatv (SPEC92/95 FP) generates meshes by iterative relaxation with
/// residual-based convergence checks. Its integer side splits between
/// grid addressing (pinned) and a small residual-threshold counting
/// chain off converted values -- slightly more offloadable than swim's
/// pure stencil but still "negligible change" territory in the paper's
/// Section 7.5 terms.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace fpint::workloads;

namespace {

const char *Source = R"(
global meshx 676               # 26x26 grid
global meshy 676
global resid 676
global stats 4

func main(%iters) {
entry:
  # Seed both coordinate grids.
  li %i, 0
seed:
  andi %sx, %i, 127
  la %mx, meshx
  sll %ioff, %i, 2
  add %xea, %mx, %ioff
  sw %sx, 0(%xea)
  addi %sy1, %i, 64
  andi %sy, %sy1, 127
  la %my, meshy
  add %yea, %my, %ioff
  sw %sy, 0(%yea)
  addi %i, %i, 1
  slti %it, %i, 676
  bne %it, %zero, seed

  # Convert to float in place.
  li %c, 0
conv:
  la %mx2, meshx
  sll %coff, %c, 2
  add %cxa, %mx2, %coff
  l.s %xb, 0(%cxa)
  cvtif %xf, %xb
  s.s %xf, 0(%cxa)
  la %my2, meshy
  add %cya, %my2, %coff
  l.s %yb, 0(%cya)
  cvtif %yf, %yb
  s.s %yf, 0(%cya)
  addi %c, %c, 1
  slti %ct, %c, 676
  bne %ct, %zero, conv

  fli %w, 0.25
  fli %thresh, 3.0
  li %t, 0
sweep:
  li %r, 1
  li %nbig, 0
rowloop:
  li %col, 1
colloop:
  # idx = r*26 + col
  sll %r16, %r, 4
  sll %r8, %r, 3
  add %r24, %r16, %r8
  sll %r2, %r, 1
  add %ridx, %r24, %r2
  add %idx, %ridx, %col
  sll %off, %idx, 2
  la %bx, meshx
  add %px, %bx, %off

  # Relax the x grid toward the 4-neighbour average.
  l.s %cx, 0(%px)
  l.s %nx, -104(%px)
  l.s %sx2, 104(%px)
  l.s %wx, -4(%px)
  l.s %ex, 4(%px)
  fadd %ns, %nx, %sx2
  fadd %we, %wx, %ex
  fadd %sum, %ns, %we
  fmul %avg, %sum, %w
  fsub %res, %avg, %cx
  fadd %newx, %cx, %res
  s.s %newx, 0(%px)

  # Residual magnitude and the convergence counter: a short integer
  # chain off the converted residual (the offloadable sliver).
  fcmplt %big, %thresh, %res
  fbeqz %big, small
  addi %nbig, %nbig, 1
small:
  cvtfi %ri, %res
  cp_to_int %rint, %ri
  la %rb, resid
  add %rea, %rb, %off
  sw %rint, 0(%rea)

  addi %col, %col, 1
  slti %colt, %col, 25
  bne %colt, %zero, colloop
  addi %r, %r, 1
  slti %rt, %r, 25
  bne %rt, %zero, rowloop

  sw %nbig, stats
  addi %t, %t, 1
  slt %tt, %t, %iters
  bne %tt, %zero, sweep

  lw %o1, stats
  out %o1
  lw %o2, resid+240
  out %o2
  la %ox, meshx
  l.s %f1, 432(%ox)
  cvtfi %i1, %f1
  cp_to_int %o3, %i1
  out %o3
  ret
}
)";

} // namespace

Workload fpint::workloads::detail::makeTomcatv() {
  Workload W = assemble("tomcatv", "mesh relaxation with residual counting",
                        "synthetic 26x26 mesh (train 2, ref 9)", Source,
                        {2}, {9});
  W.IsFloatingPoint = true;
  return W;
}
