//===- workloads/Perl.cpp - String hashing/matching (perl stand-in) -------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// perl's hot paths hash identifier strings into symbol tables and scan
/// text for matches. Hash values feed bucket *addresses*, so hashing is
/// pinned to INT; the scoring/occurrence chains that hang off loaded
/// characters are offloadable, and the advanced scheme additionally
/// frees the scan-position branch slices by duplicating the cursor.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace fpint::workloads;

namespace {

const char *Source = R"(
global text 4096                # one pseudo-character per word
global buckets 512
global counts 512
global needle 8 = 5 12 9 20 9 14 7 0

func main(%passes) {
entry:
  li %n, 1200
  # Deterministic "text" over a 26-letter alphabet.
  li %i, 0
textfill:
  sll %x1, %i, 11
  xor %x2, %x1, %i
  srl %x3, %x2, 5
  add %x4, %x3, %x2
  la %tb, text
  sll %ioff, %i, 2
  add %iea, %tb, %ioff
  # ch = x4 % 26 via repeated mask-and-fold approximation.
  andi %chm, %x4, 31
  slti %ok, %chm, 26
  bne %ok, %zero, havech
  addi %chm, %chm, -6
havech:
  sw %chm, 0(%iea)
  addi %i, %i, 1
  slt %it, %i, %n
  bne %it, %zero, textfill

  li %pass, 0
passloop:

  # Pass 1: hash 8-character windows into buckets.
  li %p, 0
  li %hits, 0
hashloop:
  la %tb2, text
  sll %poff, %p, 2
  add %pea, %tb2, %poff
  lw %c0, 0(%pea)
  lw %c1, 4(%pea)
  lw %c2, 8(%pea)
  lw %c3, 12(%pea)

  # h = ((c0*33 + c1)*33 + c2)*33 + c3, built from shifts/adds; it
  # indexes the bucket table, pinning this chain to INT.
  sll %h1, %c0, 5
  add %h2, %h1, %c0
  add %h3, %h2, %c1
  sll %h4, %h3, 5
  add %h5, %h4, %h3
  add %h6, %h5, %c2
  sll %h7, %h6, 5
  add %h8, %h7, %h6
  add %h9, %h8, %c3
  andi %h, %h9, 511

  sll %hoff, %h, 2
  la %bb, buckets
  add %bea, %bb, %hoff
  lw %bv, 0(%bea)
  addi %bv2, %bv, 1
  sw %bv2, 0(%bea)

  # Occurrence scoring: chains from the characters into a counter
  # (value/branch work, offloadable).
  sub %d01, %c0, %c1
  bne %d01, %zero, nodouble
  addi %hits, %hits, 1
nodouble:
  addi %p, %p, 1
  addi %lim, %n, -8
  slt %pt, %p, %lim
  bne %pt, %zero, hashloop
  out %hits

  # Pass 2: needle matching (loaded-value compare chains).
  li %q, 0
  li %found, 0
matchloop:
  la %tb3, text
  sll %qoff, %q, 2
  add %qea, %tb3, %qoff
  li %k, 0
  li %good, 1
inner:
  sll %koff, %k, 2
  add %nea0, %qea, %koff
  lw %tc, 0(%nea0)
  la %nb, needle
  add %nea1, %nb, %koff
  lw %nc, 0(%nea1)
  beq %tc, %nc, chmatch
  li %good, 0
  jmp innerdone
chmatch:
  addi %k, %k, 1
  slti %kt, %k, 6
  bne %kt, %zero, inner
innerdone:
  beq %good, %zero, nomatch
  addi %found, %found, 1
nomatch:
  addi %q, %q, 1
  addi %qlim, %n, -8
  slt %qt, %q, %qlim
  bne %qt, %zero, matchloop
  out %found

  addi %pass, %pass, 1
  slt %passt, %pass, %passes
  bne %passt, %zero, passloop

  lw %o1, buckets+96
  out %o1
  lw %o2, counts+4
  out %o2
  ret
}
)";

} // namespace

Workload fpint::workloads::detail::makePerl() {
  return assemble("perl", "window hashing and needle matching over text",
                  "synthetic 26-letter text (train 1 pass, ref 5 passes)",
                  Source, {1}, {5});
}
