//===- testgen/Oracle.h - Differential partition-equivalence oracle -------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-checkable form of the paper's core claim: partitioning is
/// semantics-preserving. Given a module, the oracle runs the original
/// through the functional VM and then pushes the module through every
/// configured pipeline variant (conventional, basic, advanced, advanced
/// with FP argument passing, ...), comparing for each variant:
///
///  * the output stream (every `out` value, in order);
///  * main's exit value;
///  * the final memory image of the globals region;
///  * dynamic accounting: partition::computeDynStats totals must agree
///    with the instruction-level trace (total, FPa share, native FP,
///    loads, stores);
///  * timing cross-check: timing::Simulator must retire exactly the
///    traced instruction count, and its per-subsystem issue counters
///    must match the partition bits in the trace.
///
/// A hook (CompiledMutator) lets tests and the acceptance gate inject a
/// deliberate miscompile into the compiled module and confirm the
/// oracle catches it.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_TESTGEN_ORACLE_H
#define FPINT_TESTGEN_ORACLE_H

#include "core/Pipeline.h"
#include "sir/IR.h"
#include "timing/MachineConfig.h"

#include <functional>
#include <string>
#include <vector>

namespace fpint {
namespace testgen {

/// One named pipeline configuration to check against the original.
struct VariantSpec {
  std::string Name;
  core::PipelineConfig Config;
};

/// The standard variant battery: conventional, basic, advanced,
/// advanced+fpargs, and basic/advanced without the pre-partitioning
/// optimizer.
std::vector<VariantSpec> defaultVariants();

/// The mid-end variant battery: each new transform pass alone on top of
/// the default flow (gvn, licm, unroll, unroll<4>, inline) plus the
/// full "opt2" preset pipeline, all under the advanced scheme with
/// register allocation and FP argument passing. Append these to
/// OracleOptions::Variants to differentially test the mid-end.
std::vector<VariantSpec> midendVariants();

/// The register-allocator variant battery: each registered allocator
/// backend (incumbent "regalloc" and the Poletto-Sarkar
/// "regalloc-linear") under the none/basic/advanced schemes, with the
/// optimizer on and FP argument passing under advanced. Append these to
/// OracleOptions::Variants to differentially race the allocators.
std::vector<VariantSpec> regallocVariants();

struct OracleOptions {
  std::vector<VariantSpec> Variants = defaultVariants();
  std::vector<int32_t> Args;      ///< main() arguments (train == ref).
  uint64_t BaselineMaxSteps = 20000000; ///< Step budget for the original.
  bool CheckTiming = true;        ///< Run the simulator cross-checks.
  timing::MachineConfig Machine;  ///< Machine for the timing cross-check.
  /// Test hook: applied to each variant's compiled module before the
  /// equivalence checks, simulating a compiler bug. Must not add or
  /// remove virtual registers (the regalloc map is reused).
  std::function<void(sir::Module &)> CompiledMutator;
  /// Progress breadcrumbs ("baseline", then each variant name) emitted
  /// just before the corresponding work starts. Sandboxed drivers use
  /// this to attribute crashes and hangs to a pipeline stage.
  std::function<void(const std::string &Stage)> Progress;
};

struct OracleReport {
  /// True when the baseline run hit a resource limit (step budget,
  /// stack depth, ...). Not a correctness verdict; fuzzers should
  /// skip the module.
  bool BaselineSkipped = false;
  std::string BaselineError;
  /// Deterministic trap of the baseline run (TrapKind::None when it
  /// ran to completion). When set, the oracle switches to
  /// trap-equivalence mode: every variant must trap with the same
  /// kind after producing the same output prefix and memory image.
  vm::TrapKind BaselineTrap = vm::TrapKind::None;
  /// One message per detected divergence, prefixed "[variant] ".
  std::vector<std::string> Mismatches;
  uint64_t BaselineDynInstrs = 0;

  bool ok() const { return !BaselineSkipped && Mismatches.empty(); }
};

/// Runs the full differential check of \p M under \p Opts.
OracleReport runOracle(const sir::Module &M,
                       const OracleOptions &Opts = OracleOptions());

} // namespace testgen
} // namespace fpint

#endif // FPINT_TESTGEN_ORACLE_H
