//===- testgen/Reducer.cpp - Delta-debugging testcase reducer -------------===//

#include "testgen/Reducer.h"

#include "sir/Parser.h"
#include "sir/Printer.h"

#include <algorithm>
#include <vector>

using namespace fpint;
using namespace fpint::testgen;

unsigned testgen::countInstructions(const sir::Module &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    F->forEachInstr([&](const sir::Instruction &) { ++N; });
  return N;
}

namespace {

std::vector<std::string> splitLines(const std::string &Src) {
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start <= Src.size()) {
    size_t End = Src.find('\n', Start);
    if (End == std::string::npos) {
      if (Start < Src.size())
        Lines.push_back(Src.substr(Start));
      break;
    }
    Lines.push_back(Src.substr(Start, End - Start));
    Start = End + 1;
  }
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

class ReducerRun {
public:
  ReducerRun(const InterestingPredicate &StillFails,
             const ReducerOptions &Opts)
      : StillFails(StillFails), Opts(Opts) {}

  ReduceOutcome run(const std::string &Source) {
    Lines = splitLines(Source);

    bool AnyChange = false;
    for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
      bool Changed = false;
      // Coarse-to-fine chunk deletion: whole functions first shrink
      // fastest, then halving down to single lines.
      for (size_t Chunk = std::max<size_t>(1, Lines.size() / 2); Chunk >= 1;
           Chunk = Chunk == 1 ? 0 : Chunk / 2) {
        Changed |= sweep(Chunk);
        if (Probes >= Opts.MaxProbes)
          break;
      }
      AnyChange |= Changed;
      if (!Changed || Probes >= Opts.MaxProbes)
        break;
    }

    ReduceOutcome Out;
    Out.Probes = Probes;
    Out.Reduced = AnyChange;
    Out.Text = joinLines(Lines);
    // Canonicalize through the printer when that stays interesting
    // (it renames registers and drops comments/blank lines).
    sir::ParseResult PR = sir::parseModule(Out.Text);
    if (PR.ok()) {
      Out.InstrCount = countInstructions(*PR.M);
      std::string Canon = sir::toString(*PR.M);
      sir::ParseResult CanonPR = sir::parseModule(Canon);
      if (CanonPR.ok() && StillFails(*CanonPR.M))
        Out.Text = Canon;
    }
    return Out;
  }

private:
  /// Tries deleting every aligned [I, I+Chunk) range once; keeps any
  /// deletion that still reproduces. Returns whether anything stuck.
  bool sweep(size_t Chunk) {
    bool Changed = false;
    size_t I = 0;
    while (I < Lines.size() && Probes < Opts.MaxProbes) {
      std::vector<std::string> Candidate;
      Candidate.reserve(Lines.size());
      size_t End = std::min(Lines.size(), I + Chunk);
      Candidate.insert(Candidate.end(), Lines.begin(), Lines.begin() + I);
      Candidate.insert(Candidate.end(), Lines.begin() + End, Lines.end());
      if (Candidate.size() < Lines.size() && probe(Candidate)) {
        Lines = std::move(Candidate);
        Changed = true;
        // Do not advance: the same index now names fresh lines.
      } else {
        I += Chunk;
      }
    }
    return Changed;
  }

  bool probe(const std::vector<std::string> &Candidate) {
    ++Probes;
    sir::ParseResult PR = sir::parseModule(joinLines(Candidate));
    if (!PR.ok())
      return false;
    return StillFails(*PR.M);
  }

  const InterestingPredicate &StillFails;
  const ReducerOptions &Opts;
  std::vector<std::string> Lines;
  unsigned Probes = 0;
};

} // namespace

ReduceOutcome testgen::reduceModule(const std::string &Source,
                                    const InterestingPredicate &StillFails,
                                    const ReducerOptions &Opts) {
  return ReducerRun(StillFails, Opts).run(Source);
}
