//===- testgen/Reducer.h - Delta-debugging testcase reducer ---------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failing sir program to a minimal reproduction by
/// delta-debugging its textual form: repeatedly delete line ranges at
/// decreasing granularity (ddmin-style) and keep any candidate that
/// still parses and still satisfies the caller's "interesting"
/// predicate (typically: the differential oracle still reports a
/// mismatch). Candidates that fail to parse are simply rejected, which
/// keeps the transformation language trivial -- structural damage is
/// filtered rather than avoided.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_TESTGEN_REDUCER_H
#define FPINT_TESTGEN_REDUCER_H

#include "sir/IR.h"

#include <functional>
#include <string>

namespace fpint {
namespace testgen {

/// Returns true when a candidate module still reproduces the failure.
/// The module passed in is parsed, renumbered, and structurally valid.
using InterestingPredicate = std::function<bool(const sir::Module &)>;

struct ReducerOptions {
  unsigned MaxRounds = 12;   ///< Fixpoint rounds over all granularities.
  unsigned MaxProbes = 8000; ///< Hard cap on predicate evaluations.
};

struct ReduceOutcome {
  std::string Text;          ///< The reduced program (parseable).
  unsigned InstrCount = 0;   ///< Static instructions in the result.
  unsigned Probes = 0;       ///< Predicate evaluations spent.
  bool Reduced = false;      ///< Whether anything was removed.
};

/// Shrinks \p Source, which must parse and satisfy \p StillFails, to a
/// smaller program that still satisfies it. Returns the final text and
/// its instruction count.
ReduceOutcome reduceModule(const std::string &Source,
                           const InterestingPredicate &StillFails,
                           const ReducerOptions &Opts = ReducerOptions());

/// Counts static instructions in \p M (label/global lines excluded) --
/// the size metric reduction minimizes.
unsigned countInstructions(const sir::Module &M);

} // namespace testgen
} // namespace fpint

#endif // FPINT_TESTGEN_REDUCER_H
