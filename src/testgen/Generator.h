//===- testgen/Generator.h - Seeded random sir module generator -----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random but well-formed sir modules for differential testing
/// of the partitioning pipeline. Every generated module satisfies, by
/// construction:
///
///  * it passes sir::verify including the strict dataflow check (no use
///    of a register without a definition on every path);
///  * it terminates: all loop backedges belong to counted do-while loops
///    over fresh counter registers, conditional forward branches form
///    structured diamonds, and the call graph is acyclic;
///  * every memory access is in bounds: addresses are either constant
///    offsets into a global or index computations masked to the
///    (power-of-two) global size;
///  * main takes no arguments, helpers take at most 3 (the register
///    allocator's argument-register limit is 4).
///
/// Generation is a pure function of (GenConfig, Seed): the same pair
/// reproduces the same module bit-for-bit on every platform, which is
/// what makes fuzzing failures replayable from a single integer.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_TESTGEN_GENERATOR_H
#define FPINT_TESTGEN_GENERATOR_H

#include "sir/IR.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fpint {
namespace testgen {

/// Knobs for the shape and opcode mix of generated modules. All
/// probabilities are percentages; weights are relative.
struct GenConfig {
  // --- Program shape -----------------------------------------------------
  unsigned NumHelpers = 2;     ///< Callable helper functions (acyclic).
  unsigned MaxFormals = 3;     ///< Per-helper formal parameters (<= 3).
  unsigned NumGlobals = 2;     ///< Global arrays (power-of-two sized).
  unsigned MaxGlobalWords = 32;///< Upper bound on global size in words.

  // --- Control flow ------------------------------------------------------
  unsigned MainRegionDepth = 3;   ///< Max nesting of loops/diamonds in main.
  unsigned HelperRegionDepth = 1; ///< Max nesting in helpers (bounds work).
  unsigned MaxLoopTrip = 12;      ///< Max iterations of one counted loop.
  unsigned LoopPct = 22;          ///< Chance a region step opens a loop.
  unsigned DiamondPct = 28;       ///< Chance a region step opens a diamond.
  unsigned ElsePct = 50;          ///< Chance a diamond has an else arm.

  // --- Instruction mix (relative weights) --------------------------------
  unsigned AluWeight = 10;    ///< Simple ALU ops (the FPa-offloadable set).
  unsigned MulDivWeight = 2;  ///< Mul/Div/Rem and variable shifts.
  unsigned MemWeight = 6;     ///< Loads and stores (word and byte).
  unsigned FpWeight = 3;      ///< Native floating-point operations.
  unsigned CallWeight = 2;    ///< Calls to lower-index helpers.
  unsigned OutWeight = 3;     ///< Output-stream writes.

  // --- Budgets -----------------------------------------------------------
  unsigned MainInstrBudget = 90;   ///< Static instructions in main.
  unsigned HelperInstrBudget = 30; ///< Static instructions per helper.

  // --- Feature gates -----------------------------------------------------
  bool AllowFp = true;    ///< Emit native FP ops and FP-conditional diamonds.
  bool AllowBytes = true; ///< Emit lb/lbu/sb.
  bool AllowCalls = true; ///< Emit calls.
};

/// A handful of named opcode-mix/shape presets the fuzzer cycles
/// through ("default", "branchy", "memory", "fp", "calls", "tiny").
GenConfig presetConfig(const std::string &Name);

/// Names accepted by presetConfig, for --help text and iteration.
const std::vector<std::string> &presetNames();

/// Generates one module from \p Config and \p Seed. The result is
/// renumbered and verifier-clean (callers may assert so).
std::unique_ptr<sir::Module> generateModule(const GenConfig &Config,
                                            uint64_t Seed);

/// Mixes a base seed and an iteration index into a module seed
/// (splitmix64-style), so "--seed S" runs are reproducible per
/// iteration with "--one <moduleSeed>".
uint64_t moduleSeed(uint64_t BaseSeed, uint64_t Iteration);

} // namespace testgen
} // namespace fpint

#endif // FPINT_TESTGEN_GENERATOR_H
