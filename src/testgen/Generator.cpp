//===- testgen/Generator.cpp - Seeded random sir module generator ---------===//

#include "testgen/Generator.h"

#include "sir/IRBuilder.h"
#include "sir/Verifier.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>

using namespace fpint;
using namespace fpint::testgen;
using sir::BasicBlock;
using sir::Function;
using sir::Instruction;
using sir::IRBuilder;
using sir::MemOperand;
using sir::Opcode;
using sir::Reg;
using sir::RegClass;

namespace {

/// Rounds \p V down to a power of two (minimum 1).
uint32_t floorPow2(uint32_t V) {
  uint32_t P = 1;
  while (P * 2 <= V)
    P *= 2;
  return P;
}

class GeneratorImpl {
public:
  GeneratorImpl(const GenConfig &C, uint64_t Seed) : C(C), R(Seed) {}

  std::unique_ptr<sir::Module> run() {
    M = std::make_unique<sir::Module>();
    genGlobals();
    // Helpers first, lowest index first, so that any function may call
    // only strictly lower-index helpers: the call graph is acyclic.
    for (unsigned H = 0; H < C.NumHelpers; ++H)
      genFunction("f" + std::to_string(H), /*IsMain=*/false);
    genFunction("main", /*IsMain=*/true);
    M->renumber();
    return std::move(M);
  }

private:
  //===--------------------------------------------------------------------===
  // Globals
  //===--------------------------------------------------------------------===

  void genGlobals() {
    unsigned N = std::max(1u, C.NumGlobals);
    for (unsigned G = 0; G < N; ++G) {
      uint32_t Words =
          floorPow2(static_cast<uint32_t>(4 + R.nextBelow(
                        std::max(1u, C.MaxGlobalWords - 3))));
      std::vector<int32_t> Init;
      uint32_t InitCount = static_cast<uint32_t>(R.nextBelow(Words + 1));
      for (uint32_t W = 0; W < InitCount; ++W)
        Init.push_back(randomValue());
      M->addGlobal("g" + std::to_string(G), Words, std::move(Init));
      GlobalWords.push_back(Words);
    }
  }

  /// A value distribution that mixes small counters, bit patterns, and
  /// full-width extremes (so shifts, compares, and wrap-around all see
  /// interesting operands).
  int32_t randomValue() {
    switch (R.nextBelow(5)) {
    case 0:
      return static_cast<int32_t>(R.nextInRange(-8, 8));
    case 1:
      return static_cast<int32_t>(R.nextInRange(-300, 300));
    case 2:
      return static_cast<int32_t>(1u << R.nextBelow(32));
    case 3: {
      static const int32_t Extremes[] = {INT32_MIN, INT32_MAX, -1, 0,
                                         0x55555555, static_cast<int32_t>(0xAAAAAAAA)};
      return Extremes[R.nextBelow(6)];
    }
    default:
      return static_cast<int32_t>(static_cast<uint32_t>(R.next()));
    }
  }

  //===--------------------------------------------------------------------===
  // Per-function state
  //===--------------------------------------------------------------------===

  struct FnState {
    Function *F = nullptr;
    IRBuilder B;
    std::vector<Reg> IntPool; ///< Registers defined on every path to here.
    std::vector<Reg> FpPool;
    unsigned Budget = 0;      ///< Remaining static instructions to emit.
    unsigned MaxDepth = 0;
    unsigned HelperIndex = 0; ///< Callable helpers: indices < HelperIndex.
    unsigned NextBlock = 0;   ///< Fresh block name counter.
  };

  Reg pickInt(FnState &S) {
    assert(!S.IntPool.empty());
    return S.IntPool[R.nextBelow(S.IntPool.size())];
  }
  Reg pickFp(FnState &S) {
    assert(!S.FpPool.empty());
    return S.FpPool[R.nextBelow(S.FpPool.size())];
  }
  void pushInt(FnState &S, Reg V) {
    // Bound the pool so pick distribution stays spread while register
    // pressure (and thus spilling) still grows with program size.
    if (S.IntPool.size() >= 32)
      S.IntPool[R.nextBelow(S.IntPool.size())] = V;
    else
      S.IntPool.push_back(V);
  }
  void pushFp(FnState &S, Reg V) {
    if (S.FpPool.size() >= 16)
      S.FpPool[R.nextBelow(S.FpPool.size())] = V;
    else
      S.FpPool.push_back(V);
  }

  BasicBlock *newBlock(FnState &S, const char *Tag) {
    return S.F->addBlock(std::string(Tag) + std::to_string(S.NextBlock++));
  }

  /// Saturating budget spend (the budget is advisory; shapes may
  /// overshoot by a few instructions near zero).
  void spend(FnState &S, unsigned N) {
    S.Budget = S.Budget > N ? S.Budget - N : 0;
  }

  /// Appends a conditional branch / jump whose target may be patched
  /// after the arms exist (blocks must be created in layout order, so
  /// forward targets are not known yet at emission time).
  Instruction *emitBranch(FnState &S, Opcode Op, Reg A, Reg B) {
    auto I = std::make_unique<Instruction>(Op);
    if (A.isValid())
      I->uses().push_back(A);
    if (B.isValid())
      I->uses().push_back(B);
    return S.B.insertBlock()->append(std::move(I));
  }

  /// Emits "Dst = Dst + Imm" (the builder only creates fresh defs; loop
  /// counters need an in-place update).
  void addiInto(FnState &S, Reg Dst, int64_t Imm) {
    auto I = std::make_unique<Instruction>(Opcode::AddI);
    I->setDef(Dst);
    I->uses().push_back(Dst);
    I->setImm(Imm);
    S.B.insertBlock()->append(std::move(I));
  }

  //===--------------------------------------------------------------------===
  // Function generation
  //===--------------------------------------------------------------------===

  void genFunction(const std::string &Name, bool IsMain) {
    Function *F = M->addFunction(Name);
    FnState S;
    S.F = F;
    S.Budget = IsMain ? C.MainInstrBudget : C.HelperInstrBudget;
    S.MaxDepth = IsMain ? C.MainRegionDepth : C.HelperRegionDepth;
    // A helper is not yet in Helpers while its own body is generated,
    // so both cases reduce to "everything generated so far is callable".
    S.HelperIndex = static_cast<unsigned>(Helpers.size());

    unsigned NumFormals =
        IsMain ? 0
               : static_cast<unsigned>(R.nextBelow(
                     std::min(C.MaxFormals, 3u) + 1));
    for (unsigned A = 0; A < NumFormals; ++A)
      S.IntPool.push_back(F->addFormal());

    BasicBlock *Entry = F->addBlock("entry");
    S.B.setInsertPoint(Entry);

    // Seed the data pool with a few constants so every picker has
    // material to work with.
    unsigned Seeds = 2 + static_cast<unsigned>(R.nextBelow(3));
    for (unsigned I = 0; I < Seeds; ++I)
      pushInt(S, S.B.li(randomValue()));
    if (C.AllowFp)
      pushFp(S, S.B.fli(randomFloat()));

    genRegion(S, /*Depth=*/0);

    // Make the function's work observable, then return.
    if (IsMain) {
      unsigned Outs = 1 + static_cast<unsigned>(R.nextBelow(3));
      for (unsigned I = 0; I < Outs; ++I)
        S.B.out(pickInt(S));
      S.B.ret();
    } else {
      S.B.ret(pickInt(S));
      Helpers.push_back(F);
      HelperFormals.push_back(NumFormals);
    }
  }

  float randomFloat() {
    switch (R.nextBelow(4)) {
    case 0:
      return static_cast<float>(R.nextInRange(-10, 10));
    case 1:
      return static_cast<float>(R.nextDouble() * 100.0 - 50.0);
    case 2:
      return 0.0f;
    default:
      return static_cast<float>(R.nextInRange(-5, 5)) * 0.25f;
    }
  }

  /// Emits a structured region: a sequence of straight-line
  /// instructions, diamonds, and counted loops. Consumes S.Budget.
  void genRegion(FnState &S, unsigned Depth) {
    // Leave headroom for the enclosing loop/diamond plumbing and the
    // function epilogue.
    while (S.Budget > 4) {
      uint64_t Shape = R.nextBelow(100);
      if (Depth < S.MaxDepth && Shape < C.LoopPct && S.Budget > 12) {
        genLoop(S, Depth);
      } else if (Depth < S.MaxDepth && Shape < C.LoopPct + C.DiamondPct &&
                 S.Budget > 10) {
        genDiamond(S, Depth);
      } else {
        genStraightline(S, Depth);
      }
      // Occasionally stop early so region lengths vary.
      if (R.chance(1, 8))
        break;
    }
  }

  //===--------------------------------------------------------------------===
  // Control-flow shapes
  //===--------------------------------------------------------------------===

  /// Counted do-while loop over a fresh counter register:
  ///
  ///   li %n, trip
  /// body:
  ///   ...region...
  ///   addi %n, %n, -1
  ///   bgtz %n, body
  /// after:
  ///
  /// The counter is fresh and never enters the data pool, so nothing in
  /// the body can change it: the loop always terminates.
  void genLoop(FnState &S, unsigned Depth) {
    // Shrink trip counts with nesting depth to bound the dynamic
    // instruction count of the whole module.
    unsigned MaxTrip = std::max(2u, C.MaxLoopTrip >> (2 * Depth));
    int64_t Trip = 1 + static_cast<int64_t>(R.nextBelow(MaxTrip));
    Reg Counter = S.B.function()->newReg(RegClass::Int);
    S.B.liInto(Counter, Trip);

    BasicBlock *Body = newBlock(S, "loop");
    S.B.setInsertPoint(Body);
    spend(S, 3);

    // Body additions to the pool are not definitely defined after a
    // later reentry's partial path; structurally they are (do-while,
    // straight pool discipline), but discarding keeps the invariant
    // trivially true for nested shapes.
    std::vector<Reg> SavedInt = S.IntPool, SavedFp = S.FpPool;
    genRegion(S, Depth + 1);
    S.IntPool = std::move(SavedInt);
    S.FpPool = std::move(SavedFp);

    addiInto(S, Counter, -1);
    S.B.bgtz(Counter, Body);

    BasicBlock *After = newBlock(S, "after");
    S.B.setInsertPoint(After);
  }

  /// Structured if/then[/else] diamond with a forward branch:
  ///
  ///   b<cc> ..., else      (or join when there is no else arm)
  /// then:
  ///   ...region... [jump join]
  /// else:
  ///   ...region...
  /// join:
  ///
  /// Blocks are created strictly in layout order (nested shapes append
  /// their own blocks while an arm is generated), so the branch and
  /// jump targets are patched in once the arms are complete.
  void genDiamond(FnState &S, unsigned Depth) {
    bool HasElse = R.chance(C.ElsePct, 100);
    bool FpCond = C.AllowFp && !S.FpPool.empty() && R.chance(1, 4);

    Instruction *CondBr;
    if (FpCond) {
      Reg Cond;
      switch (R.nextBelow(3)) {
      case 0:
        Cond = S.B.fcmplt(pickFp(S), pickFp(S));
        break;
      case 1:
        Cond = S.B.fcmple(pickFp(S), pickFp(S));
        break;
      default:
        Cond = S.B.fcmpeq(pickFp(S), pickFp(S));
        break;
      }
      CondBr = emitBranch(
          S, R.chance(1, 2) ? Opcode::FBnez : Opcode::FBeqz, Cond, Reg());
      spend(S, 2);
    } else {
      switch (R.nextBelow(5)) {
      case 0:
        CondBr = emitBranch(S, Opcode::Beq, pickInt(S), pickInt(S));
        break;
      case 1:
        CondBr = emitBranch(S, Opcode::Bne, pickInt(S), pickInt(S));
        break;
      case 2:
        CondBr = emitBranch(S, Opcode::Blez, pickInt(S), Reg());
        break;
      case 3:
        CondBr = emitBranch(S, Opcode::Bgtz, pickInt(S), Reg());
        break;
      default:
        CondBr = emitBranch(S, Opcode::Bltz, pickInt(S), Reg());
        break;
      }
      spend(S, 1);
    }

    // Then arm: registers defined inside are not defined on the
    // branch-taken path, so arm-local defs never escape to the pool.
    std::vector<Reg> SavedInt = S.IntPool, SavedFp = S.FpPool;
    S.B.setInsertPoint(newBlock(S, "then"));
    genRegion(S, Depth + 1);

    Instruction *ThenJmp = nullptr;
    if (HasElse) {
      ThenJmp = emitBranch(S, Opcode::Jump, Reg(), Reg());
      spend(S, 1);
      BasicBlock *Else = newBlock(S, "else");
      CondBr->setTarget(Else);
      S.IntPool = SavedInt;
      S.FpPool = SavedFp;
      S.B.setInsertPoint(Else);
      genRegion(S, Depth + 1);
    }

    BasicBlock *Join = newBlock(S, "join");
    if (HasElse)
      ThenJmp->setTarget(Join);
    else
      CondBr->setTarget(Join);
    S.IntPool = std::move(SavedInt);
    S.FpPool = std::move(SavedFp);
    S.B.setInsertPoint(Join);
  }

  //===--------------------------------------------------------------------===
  // Straight-line instructions
  //===--------------------------------------------------------------------===

  void genStraightline(FnState &S, unsigned Depth) {
    unsigned WAlu = C.AluWeight;
    unsigned WMulDiv = WAlu + C.MulDivWeight;
    unsigned WMem = WMulDiv + C.MemWeight;
    unsigned WFp = WMem + (C.AllowFp ? C.FpWeight : 0);
    unsigned WCall = WFp + (C.AllowCalls && !Helpers.empty() &&
                                    canCall(S, Depth)
                                ? C.CallWeight
                                : 0);
    unsigned WOut = WCall + C.OutWeight;
    if (WOut == 0)
      return;

    uint64_t Pick = R.nextBelow(WOut);
    if (Pick < WAlu)
      genAlu(S);
    else if (Pick < WMulDiv)
      genMulDiv(S);
    else if (Pick < WMem)
      genMem(S);
    else if (Pick < WFp)
      genFp(S);
    else if (Pick < WCall)
      genCall(S);
    else {
      S.B.out(pickInt(S));
      spend(S, 1);
    }
  }

  /// Calls inside deeply nested loops multiply the callee's dynamic
  /// cost; keep them near the top level so module runtimes stay inside
  /// the oracle's step budget.
  bool canCall(const FnState &S, unsigned Depth) const {
    (void)S;
    return Depth <= 2;
  }

  void genAlu(FnState &S) {
    static const Opcode Bin[] = {Opcode::Add, Opcode::Sub,  Opcode::And,
                                 Opcode::Or,  Opcode::Xor,  Opcode::Nor,
                                 Opcode::Slt, Opcode::SltU};
    static const Opcode Imm[] = {Opcode::AddI, Opcode::AndI, Opcode::OrI,
                                 Opcode::XorI, Opcode::Sll,  Opcode::Srl,
                                 Opcode::Sra,  Opcode::SltI};
    if (R.chance(1, 2)) {
      Opcode Op = Bin[R.nextBelow(8)];
      pushInt(S, S.B.binop(Op, pickInt(S), pickInt(S)));
    } else {
      Opcode Op = Imm[R.nextBelow(8)];
      int64_t ImmVal;
      if (Op == Opcode::Sll || Op == Opcode::Srl || Op == Opcode::Sra)
        ImmVal = static_cast<int64_t>(R.nextBelow(32));
      else
        ImmVal = R.nextInRange(-32768, 32767);
      pushInt(S, S.B.immop(Op, pickInt(S), ImmVal));
    }
    if (R.chance(1, 6))
      pushInt(S, S.B.li(randomValue()));
    spend(S, 1);
  }

  void genMulDiv(FnState &S) {
    static const Opcode Ops[] = {Opcode::Mul,  Opcode::Div,  Opcode::Rem,
                                 Opcode::SllV, Opcode::SrlV, Opcode::SraV};
    Opcode Op = Ops[R.nextBelow(6)];
    pushInt(S, S.B.binop(Op, pickInt(S), pickInt(S)));
    spend(S, 1);
  }

  /// An always-in-bounds address for global \p G: either a constant
  /// offset, or a pool value masked to the global's power-of-two size.
  /// Returns the operand and charges \p S.Budget for any address code.
  MemOperand genAddress(FnState &S, unsigned G, bool ByteGranular) {
    uint32_t Words = GlobalWords[G];
    std::string Name = "g" + std::to_string(G);
    if (R.chance(1, 2)) {
      // Direct: constant offset inside the global.
      int32_t Offset =
          ByteGranular
              ? static_cast<int32_t>(R.nextBelow(Words * 4))
              : static_cast<int32_t>(R.nextBelow(Words)) * 4;
      return MemOperand::global(Name, Offset);
    }
    // Computed: base = &g; index = pool & (Words - 1); addr = base+idx*4.
    Reg Base = S.B.la(Name);
    Reg Idx = S.B.andi(pickInt(S), Words - 1);
    Reg Off = S.B.sll(Idx, 2);
    Reg Ea = S.B.add(Base, Off);
    spend(S, 4);
    int32_t Offset =
        ByteGranular ? static_cast<int32_t>(R.nextBelow(4)) : 0;
    return MemOperand::reg(Ea, Offset);
  }

  void genMem(FnState &S) {
    unsigned G = static_cast<unsigned>(R.nextBelow(GlobalWords.size()));
    bool Byte = C.AllowBytes && R.chance(1, 4);
    MemOperand Addr = genAddress(S, G, Byte);
    switch (R.nextBelow(3)) {
    case 0: // Load.
      if (Byte)
        pushInt(S, R.chance(1, 2) ? S.B.lb(Addr) : S.B.lbu(Addr));
      else if (C.AllowFp && R.chance(1, 5))
        pushFp(S, S.B.lwFp(Addr)); // l.s: word load into the FP file.
      else
        pushInt(S, S.B.lw(Addr));
      break;
    case 1: // Store.
      if (Byte)
        S.B.sb(pickInt(S), Addr);
      else if (C.AllowFp && !S.FpPool.empty() && R.chance(1, 5))
        S.B.sw(pickFp(S), Addr); // s.s: word store from the FP file.
      else
        S.B.sw(pickInt(S), Addr);
      break;
    default: // Read-modify-write, a dense address/value slice mix.
      if (Byte) {
        Reg V = S.B.lbu(Addr);
        Reg V2 = S.B.addi(V, R.nextInRange(-4, 4));
        S.B.sb(V2, Addr);
        spend(S, 2);
      } else {
        Reg V = S.B.lw(Addr);
        Reg V2 = S.B.binop(R.chance(1, 2) ? Opcode::Add : Opcode::Xor, V,
                           pickInt(S));
        S.B.sw(V2, Addr);
        spend(S, 2);
      }
      break;
    }
    spend(S, 1);
  }

  void genFp(FnState &S) {
    if (S.FpPool.empty()) {
      pushFp(S, S.B.fli(randomFloat()));
      spend(S, 1);
      return;
    }
    switch (R.nextBelow(8)) {
    case 0:
      pushFp(S, S.B.fadd(pickFp(S), pickFp(S)));
      break;
    case 1:
      pushFp(S, S.B.fsub(pickFp(S), pickFp(S)));
      break;
    case 2:
      pushFp(S, S.B.fmul(pickFp(S), pickFp(S)));
      break;
    case 3:
      pushFp(S, S.B.fdiv(pickFp(S), pickFp(S)));
      break;
    case 4:
      pushFp(S, S.B.fli(randomFloat()));
      break;
    case 5:
      pushFp(S, S.B.fmove(pickFp(S)));
      break;
    case 6:
      // int bits -> float value (cvt.s.w on a value copied across).
      pushFp(S, S.B.fcvtIF(S.B.cpToFp(pickInt(S))));
      spend(S, 1);
      break;
    default:
      // float -> int bits, then back to the INT file as data.
      pushInt(S, S.B.cpToInt(S.B.fcvtFI(pickFp(S))));
      spend(S, 1);
      break;
    }
    spend(S, 1);
  }

  void genCall(FnState &S) {
    // Only strictly lower-index helpers are callable: acyclic graph.
    unsigned Limit = S.HelperIndex;
    if (Limit == 0)
      return;
    unsigned Callee = static_cast<unsigned>(R.nextBelow(Limit));
    std::vector<Reg> Args;
    for (unsigned A = 0; A < HelperFormals[Callee]; ++A)
      Args.push_back(pickInt(S));
    bool WantResult = R.chance(3, 4);
    Reg Res = S.B.call(Helpers[Callee]->name(), Args, WantResult);
    if (WantResult)
      pushInt(S, Res);
    spend(S, 1);
  }

  const GenConfig &C;
  Rng R;
  std::unique_ptr<sir::Module> M;
  std::vector<uint32_t> GlobalWords;
  std::vector<Function *> Helpers;
  std::vector<unsigned> HelperFormals;
};

} // namespace

std::unique_ptr<sir::Module> testgen::generateModule(const GenConfig &Config,
                                                     uint64_t Seed) {
  auto M = GeneratorImpl(Config, Seed).run();
  assert(sir::verify(*M).empty() && "generator emitted an invalid module");
  return M;
}

uint64_t testgen::moduleSeed(uint64_t BaseSeed, uint64_t Iteration) {
  // splitmix64 finalizer over the combined pair.
  uint64_t Z = BaseSeed + 0x9e3779b97f4a7c15ULL * (Iteration + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

GenConfig testgen::presetConfig(const std::string &Name) {
  GenConfig C;
  if (Name == "default" || Name.empty())
    return C;
  if (Name == "branchy") {
    C.LoopPct = 30;
    C.DiamondPct = 45;
    C.AluWeight = 12;
    C.MemWeight = 3;
    C.FpWeight = 1;
    C.MainRegionDepth = 4;
    return C;
  }
  if (Name == "memory") {
    C.MemWeight = 14;
    C.AluWeight = 6;
    C.NumGlobals = 4;
    C.MaxGlobalWords = 64;
    return C;
  }
  if (Name == "fp") {
    C.FpWeight = 10;
    C.AluWeight = 6;
    C.MemWeight = 4;
    return C;
  }
  if (Name == "calls") {
    C.NumHelpers = 3;
    C.CallWeight = 8;
    C.HelperInstrBudget = 40;
    return C;
  }
  if (Name == "tiny") {
    C.NumHelpers = 0;
    C.NumGlobals = 1;
    C.MainInstrBudget = 20;
    C.MainRegionDepth = 1;
    C.FpWeight = 1;
    return C;
  }
  if (Name == "intonly") {
    C.AllowFp = false;
    C.FpWeight = 0;
    return C;
  }
  assert(false && "unknown generator preset");
  return C;
}

const std::vector<std::string> &testgen::presetNames() {
  static const std::vector<std::string> Names = {
      "default", "branchy", "memory", "fp", "calls", "tiny", "intonly"};
  return Names;
}
