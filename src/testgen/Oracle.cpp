//===- testgen/Oracle.cpp - Differential partition-equivalence oracle -----===//

#include "testgen/Oracle.h"

#include "partition/Partitioner.h"
#include "sir/Opcode.h"
#include "support/FaultInject.h"
#include "sir/Printer.h"
#include "sir/Verifier.h"
#include "timing/Simulator.h"
#include "vm/VM.h"

#include <sstream>

using namespace fpint;
using namespace fpint::testgen;

std::vector<VariantSpec> testgen::defaultVariants() {
  std::vector<VariantSpec> Variants;
  auto Add = [&](const char *Name, partition::Scheme S, bool FpArgs,
                 bool Optimize) {
    VariantSpec V;
    V.Name = Name;
    V.Config.Scheme = S;
    V.Config.EnableFpArgPassing = FpArgs;
    V.Config.RunOptimizations = Optimize;
    V.Config.RunRegisterAllocation = true;
    Variants.push_back(std::move(V));
  };
  Add("none", partition::Scheme::None, false, true);
  Add("basic", partition::Scheme::Basic, false, true);
  Add("advanced", partition::Scheme::Advanced, false, true);
  Add("advanced+fpargs", partition::Scheme::Advanced, true, true);
  Add("basic-noopt", partition::Scheme::Basic, false, false);
  Add("advanced-noopt", partition::Scheme::Advanced, false, false);
  return Variants;
}

std::vector<VariantSpec> testgen::midendVariants() {
  std::vector<VariantSpec> Variants;
  auto Add = [&](const std::string &Passes) {
    VariantSpec V;
    V.Name = "passes:" + Passes;
    V.Config.Passes = Passes;
    V.Config.Scheme = partition::Scheme::Advanced;
    V.Config.EnableFpArgPassing = true;
    V.Config.RunOptimizations = true;
    V.Config.RunRegisterAllocation = true;
    Variants.push_back(std::move(V));
  };
  for (const char *Pass : {"gvn", "licm", "unroll", "unroll<4>", "inline"})
    Add(std::string("opt,") + Pass +
        ",profile,partition,fp-arg-passing,regalloc");
  Add("opt2");
  return Variants;
}

std::vector<VariantSpec> testgen::regallocVariants() {
  std::vector<VariantSpec> Variants;
  auto Add = [&](const std::string &Allocator, partition::Scheme S) {
    VariantSpec V;
    V.Name = Allocator + ":" + partition::schemeName(S);
    V.Config.RegAllocator = Allocator;
    V.Config.Scheme = S;
    V.Config.EnableFpArgPassing = S == partition::Scheme::Advanced;
    V.Config.RunOptimizations = true;
    V.Config.RunRegisterAllocation = true;
    Variants.push_back(std::move(V));
  };
  for (const char *Allocator : {"regalloc", "regalloc-linear"})
    for (partition::Scheme S :
         {partition::Scheme::None, partition::Scheme::Basic,
          partition::Scheme::Advanced})
      Add(Allocator, S);
  return Variants;
}

namespace {

/// Everything observable about one functional execution.
struct RunImage {
  vm::VM::Result Result;
  std::vector<uint8_t> Globals;
};

RunImage runFunctional(const sir::Module &M, const std::vector<int32_t> &Args,
                       uint64_t MaxSteps, bool WithTrace,
                       std::vector<vm::TraceEntry> *TraceOut) {
  vm::VM::Options Opts;
  Opts.MaxSteps = MaxSteps;
  Opts.CollectTrace = WithTrace;
  vm::VM Machine(M, Opts);
  RunImage Image;
  Image.Result = Machine.run(Args);
  Image.Globals = Machine.globalImage();
  if (WithTrace && TraceOut)
    *TraceOut = Machine.takeTrace();
  return Image;
}

class OracleRun {
public:
  OracleRun(const sir::Module &M, const OracleOptions &Opts)
      : M(M), Opts(Opts) {}

  OracleReport run() {
    if (Opts.Progress)
      Opts.Progress("baseline");
    Baseline = runFunctional(M, Opts.Args, Opts.BaselineMaxSteps,
                             /*WithTrace=*/false, nullptr);
    if (!Baseline.Result.Ok) {
      // Resource limits say nothing about the program; skip. A
      // deterministic trap is a semantic outcome every variant must
      // reproduce, so the differential check proceeds in trap mode.
      if (!vm::isDeterministicTrap(Baseline.Result.Trap.Kind)) {
        Report.BaselineSkipped = true;
        Report.BaselineError = Baseline.Result.Error;
        return std::move(Report);
      }
      Report.BaselineTrap = Baseline.Result.Trap.Kind;
    }
    Report.BaselineDynInstrs = Baseline.Result.Steps;
    for (const VariantSpec &V : Opts.Variants)
      checkVariant(V);
    return std::move(Report);
  }

private:
  void mismatch(const std::string &Variant, const std::string &Msg) {
    Report.Mismatches.push_back("[" + Variant + "] " + Msg);
  }

  void checkVariant(const VariantSpec &V) {
    if (Opts.Progress)
      Opts.Progress(V.Name);
    core::PipelineConfig Config = V.Config;
    Config.TrainArgs = Opts.Args;
    Config.RefArgs = Opts.Args;

    core::PipelineRun Run = core::compileAndMeasure(M, Config);
    // compileAndMeasure verifies and self-checks its output comparison;
    // any error it reports is a divergence (or a compile failure, which
    // for a verifier-clean input is just as much a bug).
    for (const std::string &E : Run.Errors)
      mismatch(V.Name, "pipeline: " + E);
    if (!Run.Errors.empty() || !Run.Compiled)
      return;

    if (Opts.CompiledMutator) {
      Opts.CompiledMutator(*Run.Compiled);
      Run.Compiled->renumber();
      std::vector<std::string> MutVerify = sir::verify(*Run.Compiled);
      for (const std::string &E : MutVerify)
        mismatch(V.Name, "verify after mutation: " + E);
      if (!MutVerify.empty())
        return; // Caught structurally; the VM may not survive it.
    }

    // Re-execute the compiled module ourselves: the oracle compares
    // more state than the pipeline does (exit value, memory image) and
    // must observe any mutator-injected bug.
    std::vector<vm::TraceEntry> Trace;
    const uint64_t CompiledBudget = Opts.BaselineMaxSteps * 4 + 10000;
    RunImage Compiled = runFunctional(*Run.Compiled, Opts.Args, CompiledBudget,
                                      /*WithTrace=*/true, &Trace);

    // Trap equivalence: the compiled program must stop exactly the way
    // the original did -- same deterministic kind, or not at all.
    const vm::TrapKind CompTrap = Compiled.Result.Trap.Kind;
    if (CompTrap != Report.BaselineTrap) {
      mismatch(V.Name,
               std::string("trap divergence: original ") +
                   vm::trapKindName(Report.BaselineTrap) + ", compiled " +
                   vm::trapKindName(CompTrap) +
                   (Compiled.Result.Error.empty()
                        ? std::string()
                        : " (" + Compiled.Result.Error + ")"));
      return;
    }

    compareFunctional(V.Name, Compiled,
                      /*Trapped=*/Report.BaselineTrap != vm::TrapKind::None);
    if (Report.BaselineTrap != vm::TrapKind::None)
      return; // Stats/timing invariants assume a completed execution.
    crossCheckStats(V.Name, Run, Trace);
    if (Opts.CheckTiming && Config.RunRegisterAllocation &&
        Run.Alloc.Errors.empty())
      crossCheckTiming(V.Name, Run, Trace);
  }

  void compareFunctional(const std::string &Name, const RunImage &Compiled,
                         bool Trapped) {
    // Output stream.
    const auto &Want = Baseline.Result.Output;
    const auto &Got = Compiled.Result.Output;
    if (Want.size() != Got.size()) {
      mismatch(Name, "output length differs: original " +
                         std::to_string(Want.size()) + ", compiled " +
                         std::to_string(Got.size()));
    } else {
      for (size_t I = 0; I < Want.size(); ++I)
        if (Want[I] != Got[I]) {
          mismatch(Name, "output[" + std::to_string(I) + "] differs: original " +
                             std::to_string(Want[I]) + ", compiled " +
                             std::to_string(Got[I]));
          break;
        }
    }

    // Architectural exit state (trapped runs never reach `ret`).
    if (!Trapped && Baseline.Result.ExitValue != Compiled.Result.ExitValue)
      mismatch(Name, "exit value differs: original " +
                         std::to_string(Baseline.Result.ExitValue) +
                         ", compiled " +
                         std::to_string(Compiled.Result.ExitValue));

    // Memory image of the globals region.
    if (Baseline.Globals.size() != Compiled.Globals.size()) {
      mismatch(Name, "globals image size differs");
    } else {
      for (size_t A = 0; A < Baseline.Globals.size(); ++A)
        if (Baseline.Globals[A] != Compiled.Globals[A]) {
          std::ostringstream OS;
          OS << "memory image differs at globals+0x" << std::hex << A
             << ": original 0x" << static_cast<unsigned>(Baseline.Globals[A])
             << ", compiled 0x" << static_cast<unsigned>(Compiled.Globals[A]);
          mismatch(Name, OS.str());
          break;
        }
    }
  }

  /// The stats subsystem counts dynamic instructions from the block
  /// profile; the trace lists them one by one. Both views must agree.
  void crossCheckStats(const std::string &Name, const core::PipelineRun &Run,
                       const std::vector<vm::TraceEntry> &Trace) {
    uint64_t Fpa = 0, NativeFp = 0, Loads = 0, Stores = 0;
    for (const vm::TraceEntry &TE : Trace) {
      if (TE.I->inFpa())
        ++Fpa;
      if (sir::isFpOpcode(TE.I->op()))
        ++NativeFp;
      if (TE.I->isLoad())
        ++Loads;
      if (TE.I->isStore())
        ++Stores;
    }
    auto Check = [&](const char *What, uint64_t StatsVal, uint64_t TraceVal) {
      if (StatsVal != TraceVal)
        mismatch(Name, std::string("stats/trace disagree on ") + What +
                           ": stats " + std::to_string(StatsVal) + ", trace " +
                           std::to_string(TraceVal));
    };
    const partition::DynStats &S = Run.Stats;
    Check("total dynamic instructions", S.Total, Trace.size());
    Check("FPa instructions", S.Fpa, Fpa);
    Check("native FP instructions", S.NativeFp, NativeFp);
    Check("loads", S.Loads, Loads);
    Check("stores", S.Stores, Stores);
  }

  /// The timing simulator must retire exactly the traced instructions,
  /// and its INT/FP issue split must match the partition bits. Both
  /// cycle loops run -- the fast path is differentially checked against
  /// the reference loop on every oracle iteration.
  void crossCheckTiming(const std::string &Name, const core::PipelineRun &Run,
                        const std::vector<vm::TraceEntry> &Trace) {
    timing::Simulator Sim(Opts.Machine, Run.Alloc);
    // The invariants below assume every instruction was simulated;
    // sampled (extrapolated) stats would break them by construction.
    Sim.setSampling({});

    timing::SimStats Stats, FastStats;
    try {
      Sim.setFastPath(false);
      Stats = Sim.run(Trace);
      Sim.setFastPath(true);
      FastStats = Sim.run(Trace);
    } catch (const timing::SimulationOverrun &O) {
      mismatch(Name, std::string("simulator overrun: ") + O.what());
      return;
    }

    auto CheckEq = [&](const char *What, uint64_t Ref, uint64_t Fast) {
      if (Ref != Fast)
        mismatch(Name, std::string("fast-path simulator diverges on ") + What +
                           ": reference " + std::to_string(Ref) + ", fast " +
                           std::to_string(Fast));
    };
    CheckEq("cycles", Stats.Cycles, FastStats.Cycles);
    CheckEq("instructions", Stats.Instructions, FastStats.Instructions);
    CheckEq("int_issued", Stats.IntIssued, FastStats.IntIssued);
    CheckEq("fp_issued", Stats.FpIssued, FastStats.FpIssued);
    CheckEq("cond_branches", Stats.CondBranches, FastStats.CondBranches);
    CheckEq("mispredicts", Stats.Mispredicts, FastStats.Mispredicts);
    CheckEq("loads", Stats.Loads, FastStats.Loads);
    CheckEq("stores", Stats.Stores, FastStats.Stores);
    CheckEq("dcache_misses", Stats.DCacheMisses, FastStats.DCacheMisses);
    CheckEq("icache_misses", Stats.ICacheMisses, FastStats.ICacheMisses);
    CheckEq("store_forwards", Stats.StoreForwards, FastStats.StoreForwards);
    CheckEq("fp_busy_cycles", Stats.FpBusyCycles, FastStats.FpBusyCycles);
    CheckEq("int_idle_fp_busy_cycles", Stats.IntIdleFpBusyCycles,
            FastStats.IntIdleFpBusyCycles);

    uint64_t FpSide = 0;
    for (const vm::TraceEntry &TE : Trace)
      if (TE.I->inFpa() || sir::isFpOpcode(TE.I->op()))
        ++FpSide;

    if (Stats.Instructions != Trace.size())
      mismatch(Name, "simulator retired " + std::to_string(Stats.Instructions) +
                         " instructions, trace has " +
                         std::to_string(Trace.size()));
    if (Stats.IntIssued + Stats.FpIssued != Stats.Instructions)
      mismatch(Name, "issue counters (" + std::to_string(Stats.IntIssued) +
                         " INT + " + std::to_string(Stats.FpIssued) +
                         " FP) do not sum to retired instructions " +
                         std::to_string(Stats.Instructions));
    if (Stats.FpIssued != FpSide)
      mismatch(Name, "simulator issued " + std::to_string(Stats.FpIssued) +
                         " in the FP subsystem, partition bits say " +
                         std::to_string(FpSide));
    if (!Trace.empty() && Stats.Cycles == 0)
      mismatch(Name, "simulator reported zero cycles for a nonempty trace");
  }

  const sir::Module &M;
  const OracleOptions &Opts;
  RunImage Baseline;
  OracleReport Report;
};

} // namespace

OracleReport testgen::runOracle(const sir::Module &M,
                                const OracleOptions &Opts) {
  support::fault::inject("oracle");
  return OracleRun(M, Opts).run();
}
