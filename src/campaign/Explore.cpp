//===- campaign/Explore.cpp - Machine design-space explorer ---------------===//

#include "campaign/Explore.h"

#include "core/Pipeline.h"
#include "core/RunCache.h"
#include "stats/Report.h"
#include "support/Hash.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

using namespace fpint;
using namespace fpint::campaign;

const char *const campaign::ExploreSchema = "fpint-explore-report-v1";

namespace {

/// One functional-unit mix axis point.
struct FuMix {
  unsigned IntUnits, FpUnits;
};

/// Scales a Table 1 machine to the swept axis values. The derived
/// fields follow the fourWay() proportions: window 4x the width,
/// in-flight 2x the window, the 32-entry architectural file plus one
/// rename register per window slot per side (win16 -> 48, exactly the
/// 4-way machine), one load/store port per two INT units.
timing::MachineConfig makeMachine(unsigned Width, const FuMix &Fu,
                                  unsigned Window,
                                  timing::PredictorKind Pred,
                                  unsigned DCacheKb) {
  timing::MachineConfig M = timing::MachineConfig::fourWay();
  M.Name = "explore";
  M.FetchWidth = M.DecodeWidth = M.RetireWidth = Width;
  M.IntWindow = M.FpWindow = Window;
  M.MaxInFlight = 2 * Window;
  M.IntUnits = Fu.IntUnits;
  M.FpUnits = Fu.FpUnits;
  M.LoadStorePorts = std::max(1u, Fu.IntUnits / 2);
  M.IntPhysRegs = M.FpPhysRegs = 32 + Window;
  M.DCache.SizeBytes = DCacheKb * 1024;
  M.Predictor = Pred;
  return M;
}

const char *predTag(timing::PredictorKind K) {
  switch (K) {
  case timing::PredictorKind::Gshare:
    return "gs";
  case timing::PredictorKind::McFarling:
    return "mcf";
  case timing::PredictorKind::StaticNotTaken:
    return "st";
  }
  return "?";
}

std::string pointLabel(unsigned Width, const FuMix &Fu, unsigned Window,
                       timing::PredictorKind Pred, unsigned DCacheKb) {
  return "w" + std::to_string(Width) + "_fu" + std::to_string(Fu.IntUnits) +
         "+" + std::to_string(Fu.FpUnits) + "_win" + std::to_string(Window) +
         "_" + predTag(Pred) + "_d" + std::to_string(DCacheKb) + "k";
}

/// Cross product of the per-grid axis lists, filtered to feasible
/// machines (no more INT units than issue width, no more FP than INT
/// units -- the paper's machines are INT-led).
std::vector<MachinePoint>
crossGrid(const std::vector<unsigned> &Widths, const std::vector<FuMix> &Fus,
          const std::vector<timing::PredictorKind> &Preds,
          const std::vector<unsigned> &DCacheKbs) {
  std::vector<MachinePoint> Grid;
  for (unsigned W : Widths)
    for (const FuMix &Fu : Fus) {
      if (Fu.IntUnits > W || Fu.FpUnits > Fu.IntUnits)
        continue;
      unsigned Window = 4 * W;
      for (timing::PredictorKind P : Preds)
        for (unsigned Kb : DCacheKbs)
          Grid.push_back({pointLabel(W, Fu, Window, P, Kb),
                          makeMachine(W, Fu, Window, P, Kb)});
    }
  return Grid;
}

} // namespace

std::vector<MachinePoint> campaign::exploreGrid(const std::string &Grid) {
  using PK = timing::PredictorKind;
  if (Grid == "smoke")
    return crossGrid({2, 4}, {{1, 1}, {2, 2}}, {PK::Gshare}, {32});
  if (Grid == "small")
    return crossGrid({2, 4, 8}, {{1, 1}, {2, 1}, {2, 2}, {4, 2}, {4, 4}},
                     {PK::Gshare, PK::McFarling, PK::StaticNotTaken}, {32});
  if (Grid == "full")
    return crossGrid({2, 4, 8}, {{1, 1}, {2, 1}, {2, 2}, {4, 2}, {4, 4}},
                     {PK::Gshare, PK::McFarling, PK::StaticNotTaken},
                     {16, 32, 64});
  return {};
}

uint64_t campaign::resourceCost(const timing::MachineConfig &M) {
  uint64_t Cost = 0;
  // Execution resources dominate: functional units and memory ports.
  Cost += 6ull * (M.IntUnits + M.FpUnits);
  Cost += 8ull * M.LoadStorePorts;
  // Pipe widths and out-of-order capacity.
  Cost += 4ull * (M.FetchWidth + M.DecodeWidth + M.RetireWidth);
  Cost += 2ull * (M.IntWindow + M.FpWindow);
  Cost += M.MaxInFlight;
  Cost += M.IntPhysRegs + M.FpPhysRegs;
  // SRAM: caches by the kilobyte, predictor state by the 512 bits.
  Cost += (M.ICache.SizeBytes + M.DCache.SizeBytes) / 1024;
  uint64_t PredBits = 0;
  switch (M.Predictor) {
  case timing::PredictorKind::Gshare:
    PredBits = 2ull << M.PredictorTableBits;
    break;
  case timing::PredictorKind::McFarling:
    PredBits = 3ull * (2ull << M.PredictorTableBits);
    break;
  case timing::PredictorKind::StaticNotTaken:
    break;
  }
  Cost += PredBits / 512;
  return Cost;
}

std::vector<bool> campaign::paretoFrontier(const std::vector<uint64_t> &Cost,
                                           const std::vector<double> &Value) {
  std::vector<bool> OnFrontier(Cost.size(), true);
  for (size_t I = 0; I < Cost.size(); ++I)
    for (size_t J = 0; J < Cost.size(); ++J) {
      if (I == J)
        continue;
      bool NoWorse = Cost[J] <= Cost[I] && Value[J] >= Value[I];
      bool Better = Cost[J] < Cost[I] || Value[J] > Value[I];
      if (NoWorse && Better) {
        OnFrontier[I] = false;
        break;
      }
    }
  return OnFrontier;
}

json::Value campaign::evaluateExploreCell(const std::string &WorkloadName,
                                          const timing::MachineConfig &M) {
  workloads::Workload W = workloads::workloadByName(WorkloadName);

  core::PipelineConfig Conv;
  Conv.Scheme = partition::Scheme::None;
  Conv.TrainArgs = W.TrainArgs;
  Conv.RefArgs = W.RefArgs;
  core::PipelineConfig Aug = Conv;
  Aug.Scheme = partition::Scheme::Advanced;

  // Deliberately core::compileAndMeasure, not RunCache::global(): cells
  // run in forked sandbox children and must not touch shared parent
  // state (see Campaign.h's fork contract).
  core::PipelineRun ConvRun = core::compileAndMeasure(*W.M, Conv);
  if (!ConvRun.ok())
    throw std::runtime_error(
        "conventional pipeline failed for " + WorkloadName + ": " +
        (ConvRun.Errors.empty() ? "output mismatch" : ConvRun.Errors[0]));
  core::PipelineRun AugRun = core::compileAndMeasure(*W.M, Aug);
  if (!AugRun.ok())
    throw std::runtime_error(
        "advanced pipeline failed for " + WorkloadName + ": " +
        (AugRun.Errors.empty() ? "output mismatch" : AugRun.Errors[0]));

  // The conventional baseline runs on the FPa-disabled twin of the
  // swept machine (a conventional machine cannot run ",a" code; the
  // augmented binary needs FPa on).
  timing::MachineConfig ConvM = M;
  ConvM.FpaEnabled = false;
  timing::MachineConfig AugM = M;
  AugM.FpaEnabled = true;
  timing::SimStats ConvS = core::simulate(ConvRun, ConvM);
  timing::SimStats AugS = core::simulate(AugRun, AugM);

  // Integer counters only: the cell document must be a deterministic
  // function of (workload, machine) so journal replay is byte-exact.
  json::Value Doc = json::Value::object();
  Doc.set("workload", WorkloadName);
  Doc.set("conv_cycles", ConvS.Cycles);
  Doc.set("aug_cycles", AugS.Cycles);
  Doc.set("conv_instructions", ConvS.Instructions);
  Doc.set("aug_instructions", AugS.Instructions);
  Doc.set("aug_fp_issued", AugS.FpIssued);
  return Doc;
}

int campaign::runExplore(const ExploreOptions &Opts, Summary *OutSummary) {
  const std::vector<MachinePoint> Grid = exploreGrid(Opts.Grid);
  if (Grid.empty()) {
    std::fprintf(stderr, "fpint-explore: unknown grid '%s'\n",
                 Opts.Grid.c_str());
    return 2;
  }

  std::vector<std::string> Workloads = Opts.Workloads;
  if (Workloads.empty()) {
    if (Opts.Grid == "smoke")
      Workloads = {"compress", "perl"};
    else if (Opts.Grid == "small")
      Workloads = {"compress", "go", "perl"};
    else
      for (const workloads::Workload &W : workloads::intWorkloads())
        Workloads.push_back(W.Name);
  }
  {
    const std::vector<std::string> Known = workloads::allWorkloadNames();
    for (const std::string &Name : Workloads)
      if (std::find(Known.begin(), Known.end(), Name) == Known.end()) {
        std::fprintf(stderr, "fpint-explore: unknown workload '%s'\n",
                     Name.c_str());
        return 2;
      }
  }

  // Pipeline identity per workload: the conventional and advanced
  // RunCache keys (full PipelineConfig serialization), so a compiler
  // change re-runs every affected cell.
  std::map<std::string, std::string> PipelineKeys;
  for (const std::string &Name : Workloads) {
    workloads::Workload W = workloads::workloadByName(Name);
    core::PipelineConfig Conv;
    Conv.Scheme = partition::Scheme::None;
    Conv.TrainArgs = W.TrainArgs;
    Conv.RefArgs = W.RefArgs;
    core::PipelineConfig Aug = Conv;
    Aug.Scheme = partition::Scheme::Advanced;
    PipelineKeys[Name] = core::RunCache::runKey(Name, Conv) + "|" +
                         core::RunCache::runKey(Name, Aug);
  }

  // Cells in deterministic (machine-major) order; the campaign key
  // folds every cell key so any change of grid, workload set, compiler
  // identity, or schema starts a fresh campaign instead of resuming a
  // stale one.
  struct CellTarget {
    std::string Workload;
    const timing::MachineConfig *M;
    size_t MachineIdx;
  };
  std::vector<Cell> Cells;
  std::map<std::string, CellTarget> Targets;
  uint64_t CampaignHash = support::fnv1a64(ExploreSchema);
  CampaignHash = support::fnv1a64("\x1f" + Opts.Grid, CampaignHash);
  for (size_t MI = 0; MI < Grid.size(); ++MI) {
    const MachinePoint &P = Grid[MI];
    const std::string MachineKey = P.M.canonicalKey();
    for (const std::string &Name : Workloads) {
      Cell C;
      C.Key = cellKey(Name, PipelineKeys[Name], MachineKey);
      C.Label = Name + "@" + P.Label;
      CampaignHash = support::fnv1a64("\x1f" + C.Key, CampaignHash);
      Targets[C.Key] = {Name, &P.M, MI};
      Cells.push_back(std::move(C));
    }
  }

  Options RunnerOpts;
  RunnerOpts.Dir = Opts.StateDir;
  RunnerOpts.CampaignKey = support::hex64(CampaignHash);
  RunnerOpts.Jobs = Opts.Jobs;

  Runner R(RunnerOpts);
  std::vector<CellOutcome> Outcomes;
  try {
    Outcomes = R.run(Cells, [&Targets](const Cell &C) {
      const CellTarget &T = Targets.at(C.Key);
      return evaluateExploreCell(T.Workload, *T.M);
    });
  } catch (const std::exception &E) {
    std::fprintf(stderr, "fpint-explore: %s\n", E.what());
    return 2;
  }
  const Summary &Sum = R.summary();
  if (OutSummary)
    *OutSummary = Sum;

  // Aggregate per machine point, in grid order. A machine with any ERR
  // cell is reported (with its error count) but keeps no geomean and
  // never reaches the frontier -- a partial geomean would not be
  // comparable across points.
  json::Value Machines = json::Value::array();
  std::vector<size_t> CompleteIdx;
  std::vector<uint64_t> CompleteCost;
  std::vector<double> CompleteGeomean;
  std::vector<json::Value> MachineDocs(Grid.size());
  for (size_t MI = 0; MI < Grid.size(); ++MI) {
    const MachinePoint &P = Grid[MI];
    json::Value MDoc = json::Value::object();
    MDoc.set("label", P.Label);
    MDoc.set("machine_key", P.M.canonicalKey());
    MDoc.set("cost", resourceCost(P.M));
    json::Value CellsDoc = json::Value::array();
    unsigned Errors = 0;
    double LogSum = 0.0;
    unsigned OkCells = 0;
    for (size_t CI = 0; CI < Cells.size(); ++CI) {
      if (Targets.at(Cells[CI].Key).MachineIdx != MI)
        continue;
      const CellOutcome &Out = Outcomes[CI];
      json::Value CellDoc = json::Value::object();
      CellDoc.set("workload", Targets.at(Cells[CI].Key).Workload);
      CellDoc.set("key", Cells[CI].Key);
      if (Out.ok()) {
        const double ConvCycles = Out.Result.numberOr("conv_cycles", 0);
        const double AugCycles = Out.Result.numberOr("aug_cycles", 0);
        CellDoc.set("conv_cycles",
                    static_cast<uint64_t>(ConvCycles));
        CellDoc.set("aug_cycles", static_cast<uint64_t>(AugCycles));
        const double Speedup =
            AugCycles > 0 ? ConvCycles / AugCycles : 0.0;
        CellDoc.set("speedup", Speedup);
        if (Speedup > 0) {
          LogSum += std::log(Speedup);
          ++OkCells;
        }
      } else {
        CellDoc.set("error_kind", Out.ErrorKind);
        CellDoc.set("error", Out.Error);
        ++Errors;
      }
      CellsDoc.push(std::move(CellDoc));
    }
    MDoc.set("cells", std::move(CellsDoc));
    if (Errors == 0 && OkCells > 0) {
      const double Geomean = std::exp(LogSum / OkCells);
      MDoc.set("geomean_speedup", Geomean);
      CompleteIdx.push_back(MI);
      CompleteCost.push_back(resourceCost(P.M));
      CompleteGeomean.push_back(Geomean);
    } else {
      MDoc.set("errors", Errors);
    }
    MachineDocs[MI] = std::move(MDoc);
  }

  const std::vector<bool> OnFrontier =
      paretoFrontier(CompleteCost, CompleteGeomean);
  json::Value Frontier = json::Value::array();
  for (size_t K = 0; K < CompleteIdx.size(); ++K)
    MachineDocs[CompleteIdx[K]].set("pareto", static_cast<bool>(OnFrontier[K]));
  for (size_t K = 0; K < CompleteIdx.size(); ++K)
    if (OnFrontier[K])
      Frontier.push(Grid[CompleteIdx[K]].Label);
  for (json::Value &MDoc : MachineDocs)
    Machines.push(std::move(MDoc));

  // The deterministic frontier report: a pure function of grid,
  // workloads, and simulator. CI byte-diffs a resumed campaign's copy
  // against an uninterrupted run's.
  json::Value Doc = json::Value::object();
  Doc.set("schema", ExploreSchema);
  Doc.set("grid", Opts.Grid);
  {
    json::Value WDoc = json::Value::array();
    for (const std::string &Name : Workloads)
      WDoc.push(Name);
    Doc.set("workloads", std::move(WDoc));
  }
  const size_t FrontierSize = Frontier.size();
  Doc.set("machines", std::move(Machines));
  Doc.set("frontier", std::move(Frontier));

  std::string Err;
  if (!publishReport(Opts.OutPath, Doc, &Err)) {
    std::fprintf(stderr, "fpint-explore: %s\n", Err.c_str());
    return 2;
  }

  // Run-varying campaign accounting goes in a sidecar report (never in
  // the deterministic document above): a ReportSchema doc whose
  // "campaign" object fpint-report renders informationally.
  json::Value SideDoc = json::Value::object();
  SideDoc.set("schema", stats::ReportSchema);
  SideDoc.set("binary", "fpint-explore");
  SideDoc.set("runs", json::Value::array());
  SideDoc.set("campaign", summaryToJson(Sum));
  std::string SidePath = Opts.OutPath;
  const std::string Suffix = ".json";
  if (SidePath.size() > Suffix.size() &&
      SidePath.compare(SidePath.size() - Suffix.size(), Suffix.size(),
                       Suffix) == 0)
    SidePath = SidePath.substr(0, SidePath.size() - Suffix.size());
  SidePath += "_campaign.json";
  if (!publishReport(SidePath, SideDoc, &Err)) {
    std::fprintf(stderr, "fpint-explore: %s\n", Err.c_str());
    return 2;
  }

  std::printf("explore: %llu cells (%llu resumed, %llu executed, %llu "
              "retried, %llu errors), %zu/%zu machines complete, %zu on "
              "the frontier\n",
              static_cast<unsigned long long>(Sum.Cells),
              static_cast<unsigned long long>(Sum.Resumed),
              static_cast<unsigned long long>(Sum.Executed),
              static_cast<unsigned long long>(Sum.Retried),
              static_cast<unsigned long long>(Sum.Errors),
              CompleteIdx.size(), Grid.size(), FrontierSize);
  std::printf("explore: report %s\n", Opts.OutPath.c_str());

  return (Opts.Strict && Sum.Errors > 0) ? 1 : 0;
}
