//===- campaign/Journal.h - Append-only write-ahead campaign journal ------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durability primitive under the campaign runtime: an append-only
/// write-ahead journal of JSON records. A campaign (hundreds of
/// MachineConfig x workload cells running for hours) journals every
/// completed cell, so the harness process crashing, being OOM-killed,
/// or losing its node can never lose completed work -- a restarted
/// campaign replays the journal and executes only the unfinished
/// cells.
///
/// On-disk format (see docs/CAMPAIGNS.md):
///
///   [u32 LE record length][canonical JSON record bytes]  repeated
///
/// Records are serialized with support/Json.h's canonical dump, so a
/// replayed record re-dumps to exactly the bytes that were journaled
/// -- the property that makes a resumed campaign's final report
/// byte-identical to an uninterrupted run's.
///
/// Append semantics: length prefix and record body are written with a
/// single write(2) and then fsync(2)ed before append() returns. A
/// record is either durable or it is not in the journal; there is no
/// in-between the reader can observe after recovery.
///
/// Recovery semantics: open() scans the file record by record. The
/// first ill-formed suffix -- a short length prefix, a length running
/// past EOF, an implausible length, or bytes that do not parse as JSON
/// (a crash between write and fsync, a lost tail page) -- is a torn
/// tail: it is truncated off and every complete record before it is
/// replayed. Torn tails only ever cost the single record that was
/// being appended when the process died; that cell simply re-executes.
///
/// The "campaign:journal" fault-injection site fires inside append()
/// *after* the record is durable, in the runner process itself: CI
/// uses it to kill the harness mid-campaign deterministically and
/// assert that a resume loses nothing (docs/ROBUSTNESS.md).
///
/// Thread-safety: append() may be called from pool workers; writes are
/// serialized under an internal mutex. open()/reset() are not
/// concurrent with append().
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_CAMPAIGN_JOURNAL_H
#define FPINT_CAMPAIGN_JOURNAL_H

#include "support/Json.h"

#include <cstddef>
#include <functional>
#include <mutex>
#include <string>

namespace fpint {
namespace campaign {

/// Schema stamp carried by every campaign header record; bump it when
/// the record layout changes so stale journals are discarded instead
/// of misread.
extern const char *const JournalSchema;

class Journal {
public:
  /// What recovery found in a pre-existing journal file.
  struct RecoveryInfo {
    bool Existed = false;       ///< The file was already on disk.
    size_t Records = 0;         ///< Complete records replayed.
    size_t TruncatedBytes = 0;  ///< Torn-tail bytes dropped.
  };

  Journal() = default;
  ~Journal();
  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  /// Opens (creating if absent) the journal at \p Path, replaying every
  /// complete record through \p OnRecord in append order and
  /// truncating any torn tail. Returns false with \p Err set on I/O
  /// failure; the journal is then not open.
  bool open(const std::string &Path,
            const std::function<void(const json::Value &)> &OnRecord,
            RecoveryInfo &Info, std::string *Err);

  /// Appends one record (length prefix + canonical dump, one write,
  /// then fsync). Returns false with \p Err set on I/O failure. Fires
  /// the "campaign:journal" fault site after the record is durable.
  bool append(const json::Value &Record, std::string *Err);

  /// Truncates the journal to empty (a journal bound to a different
  /// campaign identity is discarded, not merged).
  bool reset(std::string *Err);

  bool isOpen() const { return Fd >= 0; }
  const std::string &path() const { return FilePath; }

  /// Upper bound on one record's serialized size; anything larger in a
  /// length prefix is treated as corruption (torn tail).
  static constexpr size_t MaxRecordBytes = 64u << 20;

private:
  int Fd = -1;
  std::string FilePath;
  std::mutex Mu;
};

} // namespace campaign
} // namespace fpint

#endif // FPINT_CAMPAIGN_JOURNAL_H
