//===- campaign/Explore.h - Machine design-space explorer -----------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first consumer of the durable campaign runtime (ROADMAP open
/// item 3): the paper evaluates exactly two machine points (Table 1's
/// 4-way and 8-way); production means knowing the whole frontier.
/// fpint-explore sweeps MachineConfigs -- issue widths, window/ROB
/// sizes, INT/FP functional-unit mixes, predictor and D-cache sizes,
/// generalizing bench/ablation_machine -- crossed with workloads, one
/// campaign cell per (machine, workload) point.
///
/// Each cell compiles the workload conventionally (Scheme::None, FPa
/// disabled) and with the advanced partitioner (FPa enabled), then
/// simulates both on the swept machine; the report aggregates per-
/// machine geomean speedups against an integer resource-cost score and
/// marks the Pareto frontier (no other point is at least as fast for
/// at most the cost). Sweep axes and the cost model are documented in
/// docs/CAMPAIGNS.md.
///
/// Everything in the final report is a pure function of the grid, the
/// workloads, and the (deterministic) simulator -- no wall-clock, no
/// campaign counters -- so a SIGKILLed-and-resumed campaign publishes
/// a report byte-identical to an uninterrupted run (CI asserts this).
/// The run-varying campaign counters go into a separate informational
/// report (see runExplore).
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_CAMPAIGN_EXPLORE_H
#define FPINT_CAMPAIGN_EXPLORE_H

#include "campaign/Campaign.h"
#include "timing/MachineConfig.h"

#include <string>
#include <vector>

namespace fpint {
namespace campaign {

/// Schema tag of the explore report document.
extern const char *const ExploreSchema;

/// One swept machine point with its stable display label (the label
/// encodes the axis values, e.g. "w4_fu2+2_win16_gs_d32k").
struct MachinePoint {
  std::string Label;
  timing::MachineConfig M;
};

struct ExploreOptions {
  std::string Grid = "small";      ///< "smoke", "small", or "full".
  std::vector<std::string> Workloads; ///< Empty: grid-dependent default.
  std::string OutPath = "bench_out/explore.json";
  std::string StateDir;            ///< Empty: campaign default.
  int Jobs = 0;                    ///< Forwarded to Runner::Options.
  bool Strict = false;             ///< Nonzero exit on ERR cells.
};

/// The swept machine grid, in deterministic order with unique labels:
///   smoke  a handful of points (CI's kill/resume job)
///   small  a few dozen points (local sanity sweeps)
///   full   hundreds of points (the real frontier campaign)
/// Unknown names return an empty grid.
std::vector<MachinePoint> exploreGrid(const std::string &Grid);

/// Integer resource-cost score of \p M: a weighted sum of functional
/// units, load/store ports, issue/window/ROB capacity, physical
/// registers, pipe widths, cache bytes, and predictor state. Unitless
/// but monotone in every axis, so Pareto comparisons are meaningful.
uint64_t resourceCost(const timing::MachineConfig &M);

/// Marks the Pareto-optimal points of (cost, value) pairs: Out[i] is
/// true iff no j has Cost[j] <= Cost[i] and Value[j] >= Value[i] with
/// at least one strict inequality. Exposed for tests.
std::vector<bool> paretoFrontier(const std::vector<uint64_t> &Cost,
                                 const std::vector<double> &Value);

/// Child-side evaluation of one cell: compiles \p WorkloadName
/// conventionally and advanced-partitioned, simulates both on \p M
/// (conventional run on the FPa-disabled twin), and returns the cell
/// document (integer cycle/instruction counts only -- deterministic by
/// construction). Throws on pipeline failure. Self-contained: safe in
/// a forked sandbox child.
json::Value evaluateExploreCell(const std::string &WorkloadName,
                                const timing::MachineConfig &M);

/// Runs the explore campaign end to end: builds the grid and cell
/// list, runs them through a durable campaign::Runner (resuming from
/// the state directory), publishes the deterministic frontier report
/// at Opts.OutPath and the informational campaign-counters report next
/// to it (<stem>_campaign.json, rendered by fpint-report's "campaign"
/// object). Returns the process exit code: 0, or 1 when Opts.Strict
/// and some cell degraded to ERR. Fills \p OutSummary when non-null.
int runExplore(const ExploreOptions &Opts, Summary *OutSummary);

} // namespace campaign
} // namespace fpint

#endif // FPINT_CAMPAIGN_EXPLORE_H
