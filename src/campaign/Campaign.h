//===- campaign/Campaign.h - Durable, resumable campaign runtime ----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-safe campaign runtime: runs a set of content-addressed
/// cells (e.g. MachineConfig x workload evaluation points) exactly
/// once across any number of harness restarts.
///
///  * Identity: every cell carries a content key -- chained FNV-1a
///    over (workload, pipeline key, canonical machine key, journal
///    schema), the same platform-stable scheme as the serve DiskCache
///    -- so "the same cell" means the same bytes everywhere.
///  * Durability: each completed cell (OK result or typed ERR) is
///    appended to the write-ahead Journal before the campaign moves
///    on. On restart, journaled cells replay byte-identically and only
///    unfinished cells execute. A torn journal tail costs at most the
///    one record being appended at death; that cell re-executes.
///  * Containment: cells execute in the PR 4 Subprocess sandbox with a
///    per-attempt wall deadline, bounded retries with exponential
///    backoff, and an address-space cap. A cell that exhausts its
///    attempts degrades to a typed ERR record; the campaign never
///    aborts. (Options.Sandbox=false runs cells in-process -- for
///    tests and trusted cell functions only; a crash then kills the
///    runner, though the journal still bounds the loss.)
///  * Publication: consumers build their final report from the
///    returned outcomes and publish it with publishReport() --
///    write-to-tmp-then-rename, the serve::DiskCache atomic-
///    publication idiom -- so readers only ever observe a complete
///    report.
///
/// Parallelism: cells fan out on the shared support::ThreadPool.
/// Sandboxed cells fork from pool workers under the documented
/// serve-style relaxation (see serve/Server.h): the child runs only
/// self-contained compile/simulate code and never touches parent
/// locks, caches, or registries. Options.Jobs=1 runs cells inline on
/// the calling thread -- required when the runner itself executes in a
/// forked child (pool threads do not survive a fork).
///
/// Environment knobs (defaults in parentheses; see docs/CAMPAIGNS.md):
///   FPINT_CAMPAIGN_DIR         state directory ("campaign_state")
///   FPINT_CAMPAIGN_RETRIES     retries per cell after the first try (2)
///   FPINT_CAMPAIGN_BACKOFF_MS  base retry backoff, doubled per retry (50)
///   FPINT_CAMPAIGN_DEADLINE_MS per-attempt wall deadline (120000)
///   FPINT_CAMPAIGN_AS_MB       per-cell address-space cap (4096)
///
/// Fault sites: "campaign:cell" fires inside the sandbox child (crash/
/// hang/oom degrade to ERR; ":once" is absorbed by the retry),
/// "campaign:journal" fires in the runner after each record is durable
/// (killing the harness itself; resume must lose nothing).
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_CAMPAIGN_CAMPAIGN_H
#define FPINT_CAMPAIGN_CAMPAIGN_H

#include "campaign/Journal.h"
#include "support/Json.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fpint {
namespace campaign {

/// One unit of campaign work. Key is the content address (cellKey());
/// Label is the human-readable name used in diagnostics and reports.
struct Cell {
  std::string Key;
  std::string Label;
};

/// Computes one cell's result document. Runs in the sandbox child (or
/// inline with Options.Sandbox=false); must be self-contained -- no
/// parent locks, caches, or registries -- and deterministic: the same
/// cell must always produce the same canonical JSON, because a resumed
/// campaign replays journaled results byte-identically. Signal failure
/// by throwing.
using CellFn = std::function<json::Value(const Cell &)>;

/// Outcome of one cell, whether executed now or replayed from the
/// journal.
struct CellOutcome {
  enum class Status { Ok, Err };
  Status St = Status::Err;
  json::Value Result;     ///< Cell document (Ok only).
  std::string ErrorKind;  ///< "crash", "timeout", "exit", "exception",
                          ///< "bad_payload", "spawn_failed" (Err only).
  std::string Error;      ///< Human-readable detail (Err only).
  unsigned Attempts = 0;  ///< Executions this campaign run (0 if resumed).
  bool Resumed = false;   ///< Replayed from the journal.

  bool ok() const { return St == Status::Ok; }
};

struct Options {
  /// State directory holding journal.wal; empty means
  /// $FPINT_CAMPAIGN_DIR, then "campaign_state".
  std::string Dir;
  /// Identity of the campaign (grid + workloads + schema). A journal
  /// whose header carries a different key is discarded, never merged:
  /// resuming only ever replays cells of this exact campaign.
  std::string CampaignKey;
  int Retries = -1;    ///< <0: $FPINT_CAMPAIGN_RETRIES, then 2.
  int BackoffMs = -1;  ///< <0: $FPINT_CAMPAIGN_BACKOFF_MS, then 50.
  int DeadlineMs = -1; ///< <0: $FPINT_CAMPAIGN_DEADLINE_MS, then 120000.
  int CellAsMb = -1;   ///< <0: $FPINT_CAMPAIGN_AS_MB, then 4096.
  /// 0: fan out on the shared ThreadPool; 1: run cells inline on the
  /// calling thread (required inside a forked child).
  int Jobs = 0;
  /// Fork each cell into a Subprocess sandbox (the production mode).
  bool Sandbox = true;
};

/// Campaign-level accounting for reports and logs. All counts are for
/// this run() call; Resumed cells count toward Completed/Errors too.
struct Summary {
  uint64_t Cells = 0;     ///< Total cells in the campaign.
  uint64_t Completed = 0; ///< Cells with an OK result (incl. resumed).
  uint64_t Resumed = 0;   ///< Cells replayed from the journal.
  uint64_t Executed = 0;  ///< Cells actually run this process.
  uint64_t Retried = 0;   ///< Executed cells that needed >1 attempt.
  uint64_t Errors = 0;    ///< Cells degraded to ERR (incl. resumed).
  uint64_t JournalTruncatedBytes = 0; ///< Torn tail dropped on open.
  bool JournalDiscarded = false; ///< Header mismatched CampaignKey.
};

/// Content address of one (workload, pipeline, machine) cell:
/// 16 lower-case hex digits, stable across processes and platforms
/// (chained FNV-1a, the serve::DiskCache::key scheme, folded with
/// JournalSchema so a layout bump re-runs every cell).
std::string cellKey(const std::string &Workload,
                    const std::string &PipelineKey,
                    const std::string &MachineKey);

/// Serializes \p S as the "campaign" informational object rendered by
/// fpint-report (never gated, like "run_cache" and "serve").
json::Value summaryToJson(const Summary &S);

/// Atomically publishes \p Doc (canonical dump + trailing newline) at
/// \p Path: write to a tmp file in the same directory, then rename.
/// Readers only ever observe an absent or complete report.
bool publishReport(const std::string &Path, const json::Value &Doc,
                   std::string *Err);

class Runner {
public:
  explicit Runner(Options Opts);

  /// Runs the campaign: opens (and recovers) the journal, replays
  /// completed cells, executes the rest, and returns one outcome per
  /// input cell, in input order. Duplicate journal records keep the
  /// last occurrence. Throws std::runtime_error only on campaign-level
  /// I/O failure (journal unwritable); cell failures degrade to ERR
  /// outcomes instead.
  std::vector<CellOutcome> run(const std::vector<Cell> &Cells,
                               const CellFn &Fn);

  const Summary &summary() const { return Sum; }
  const Options &options() const { return Opts; }

private:
  CellOutcome executeCell(const Cell &C, const CellFn &Fn);

  Options Opts;
  Summary Sum;
};

} // namespace campaign
} // namespace fpint

#endif // FPINT_CAMPAIGN_CAMPAIGN_H
