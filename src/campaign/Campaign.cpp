//===- campaign/Campaign.cpp - Durable, resumable campaign runtime --------===//

#include "campaign/Campaign.h"

#include "support/FaultInject.h"
#include "support/Hash.h"
#include "support/Subprocess.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include <unistd.h>

using namespace fpint;
using namespace fpint::campaign;
namespace fs = std::filesystem;

namespace {

int envInt(const char *Name, int Def) {
  const char *E = std::getenv(Name);
  if (!E || !*E)
    return Def;
  return std::atoi(E);
}

std::string envStr(const char *Name, const char *Def) {
  const char *E = std::getenv(Name);
  return E && *E ? E : Def;
}

/// Journal record for one completed cell. The result document is
/// embedded verbatim; its canonical dump is what makes replay
/// byte-identical.
json::Value cellRecord(const std::string &Key, const CellOutcome &Out) {
  json::Value R = json::Value::object();
  R.set("type", "cell");
  R.set("key", Key);
  R.set("status", Out.ok() ? "ok" : "err");
  R.set("attempts", static_cast<int64_t>(Out.Attempts));
  if (Out.ok()) {
    R.set("result", Out.Result);
  } else {
    R.set("error_kind", Out.ErrorKind);
    R.set("error", Out.Error);
  }
  return R;
}

bool parseCellRecord(const json::Value &R, std::string &Key,
                     CellOutcome &Out) {
  if (R.strOr("type", "") != "cell")
    return false;
  Key = R.strOr("key", "");
  if (Key.empty())
    return false;
  Out = CellOutcome();
  Out.Resumed = true;
  Out.Attempts = 0;
  if (R.strOr("status", "") == "ok") {
    const json::Value *Result = R.find("result");
    if (!Result || !Result->isObject())
      return false;
    Out.St = CellOutcome::Status::Ok;
    Out.Result = *Result;
  } else {
    Out.St = CellOutcome::Status::Err;
    Out.ErrorKind = R.strOr("error_kind", "unknown");
    Out.Error = R.strOr("error", "");
  }
  return true;
}

} // namespace

std::string campaign::cellKey(const std::string &Workload,
                              const std::string &PipelineKey,
                              const std::string &MachineKey) {
  uint64_t H = support::fnv1a64(Workload);
  H = support::fnv1a64("\x1f" + PipelineKey, H);
  H = support::fnv1a64("\x1f" + MachineKey, H);
  H = support::fnv1a64("\x1f" + std::string(JournalSchema), H);
  return support::hex64(H);
}

json::Value campaign::summaryToJson(const Summary &S) {
  json::Value V = json::Value::object();
  V.set("cells", S.Cells);
  V.set("completed", S.Completed);
  V.set("resumed", S.Resumed);
  V.set("executed", S.Executed);
  V.set("retried", S.Retried);
  V.set("errors", S.Errors);
  V.set("journal_truncated_bytes", S.JournalTruncatedBytes);
  V.set("journal_discarded", S.JournalDiscarded);
  return V;
}

bool campaign::publishReport(const std::string &Path, const json::Value &Doc,
                             std::string *Err) {
  const std::string Text = Doc.dump() + "\n";
  std::error_code EC;
  fs::path Parent = fs::path(Path).parent_path();
  if (!Parent.empty())
    fs::create_directories(Parent, EC);
  const std::string Tmp =
      Path + ".tmp." + std::to_string(static_cast<long>(getpid()));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      if (Err)
        *Err = "cannot write " + Tmp;
      return false;
    }
    Out.write(Text.data(), static_cast<std::streamsize>(Text.size()));
    Out.flush();
    if (!Out) {
      fs::remove(Tmp, EC);
      if (Err)
        *Err = "short write to " + Tmp;
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    fs::remove(Tmp, EC);
    if (Err)
      *Err = "rename to " + Path + " failed";
    return false;
  }
  return true;
}

Runner::Runner(Options O) : Opts(std::move(O)) {
  if (Opts.Dir.empty())
    Opts.Dir = envStr("FPINT_CAMPAIGN_DIR", "campaign_state");
  if (Opts.Retries < 0)
    Opts.Retries = std::max(0, envInt("FPINT_CAMPAIGN_RETRIES", 2));
  if (Opts.BackoffMs < 0)
    Opts.BackoffMs = std::max(0, envInt("FPINT_CAMPAIGN_BACKOFF_MS", 50));
  if (Opts.DeadlineMs < 0)
    Opts.DeadlineMs = std::max(1, envInt("FPINT_CAMPAIGN_DEADLINE_MS", 120000));
  if (Opts.CellAsMb < 0)
    Opts.CellAsMb = std::max(0, envInt("FPINT_CAMPAIGN_AS_MB", 4096));
}

CellOutcome Runner::executeCell(const Cell &C, const CellFn &Fn) {
  CellOutcome Out;
  const int Attempts = 1 + Opts.Retries;
  for (int Attempt = 1; Attempt <= Attempts; ++Attempt) {
    Out.Attempts = static_cast<unsigned>(Attempt);
    if (Opts.Sandbox) {
      support::SandboxLimits Limits;
      Limits.WallMs = Opts.DeadlineMs;
      Limits.KillGraceMs = 500;
      Limits.AddressSpaceMb = static_cast<uint64_t>(Opts.CellAsMb);
      support::TaskResult R = support::Subprocess::run(
          [&](int PayloadFd) {
            // The child sets its own attempt number: cells fork from
            // pool workers, so a parent-side shared counter would race
            // across concurrent cells.
            support::fault::setAttempt(static_cast<unsigned>(Attempt));
            support::fault::inject("campaign:cell");
            try {
              json::Value Result = Fn(C);
              return support::Subprocess::writeAll(PayloadFd, Result.dump())
                         ? 0
                         : 2;
            } catch (const std::exception &E) {
              std::fprintf(stderr, "%s\n", E.what());
              return 3;
            }
          },
          Limits);

      if (R.ok()) {
        json::Value Result;
        std::string ParseErr;
        if (json::Value::parse(R.Payload, Result, &ParseErr) &&
            Result.isObject()) {
          Out.St = CellOutcome::Status::Ok;
          Out.Result = std::move(Result);
          return Out;
        }
        Out.ErrorKind = "bad_payload";
        Out.Error = "cell payload is not a JSON object: " + ParseErr;
      } else {
        using Status = support::TaskResult::Status;
        Out.ErrorKind = (R.TimedOut || R.Killed) ? "timeout"
                        : R.St == Status::Signaled
                            ? "crash"
                            : R.St == Status::SpawnFailed ? "spawn_failed"
                                                          : "exit";
        Out.Error = R.describe();
        if (!R.StderrTail.empty()) {
          std::string Tail = R.StderrTail;
          if (!Tail.empty() && Tail.back() == '\n')
            Tail.pop_back();
          size_t Line = Tail.rfind('\n');
          Out.Error +=
              ": " + (Line == std::string::npos ? Tail : Tail.substr(Line + 1));
        }
      }
    } else {
      // In-process mode (tests / trusted cell functions): exceptions
      // degrade, but a crash or hang is not contained.
      try {
        support::fault::setAttempt(static_cast<unsigned>(Attempt));
        support::fault::inject("campaign:cell");
        json::Value Result = Fn(C);
        support::fault::setAttempt(1);
        if (!Result.isObject()) {
          Out.ErrorKind = "bad_payload";
          Out.Error = "cell result is not a JSON object";
        } else {
          Out.St = CellOutcome::Status::Ok;
          Out.Result = std::move(Result);
          return Out;
        }
      } catch (const std::exception &E) {
        support::fault::setAttempt(1);
        Out.ErrorKind = "exception";
        Out.Error = E.what();
      }
    }
    if (Attempt < Attempts && Opts.BackoffMs > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(
          Opts.BackoffMs << (Attempt - 1)));
  }
  Out.St = CellOutcome::Status::Err;
  return Out;
}

std::vector<CellOutcome> Runner::run(const std::vector<Cell> &Cells,
                                     const CellFn &Fn) {
  Sum = Summary();
  Sum.Cells = Cells.size();

  Journal J;
  Journal::RecoveryInfo Info;
  std::string Err;
  std::vector<json::Value> Records;
  if (!J.open(Opts.Dir + "/journal.wal",
              [&](const json::Value &R) { Records.push_back(R); }, Info,
              &Err))
    throw std::runtime_error("campaign journal: " + Err);
  Sum.JournalTruncatedBytes = Info.TruncatedBytes;

  // The first record must be this campaign's header; anything else is
  // a different campaign (or an older schema) and is discarded.
  bool HaveHeader = false;
  if (!Records.empty()) {
    const json::Value &H = Records.front();
    HaveHeader = H.strOr("type", "") == "campaign" &&
                 H.strOr("schema", "") == JournalSchema &&
                 H.strOr("key", "") == Opts.CampaignKey;
    if (!HaveHeader) {
      Sum.JournalDiscarded = true;
      Records.clear();
      if (!J.reset(&Err))
        throw std::runtime_error("campaign journal: " + Err);
    }
  }
  if (!HaveHeader) {
    json::Value H = json::Value::object();
    H.set("type", "campaign");
    H.set("schema", JournalSchema);
    H.set("key", Opts.CampaignKey);
    if (!J.append(H, &Err))
      throw std::runtime_error("campaign journal: " + Err);
  }

  // Replay completed cells (last record wins on duplicates).
  std::map<std::string, CellOutcome> Done;
  for (size_t I = HaveHeader ? 1 : 0; I < Records.size(); ++I) {
    std::string Key;
    CellOutcome Out;
    if (parseCellRecord(Records[I], Key, Out))
      Done[Key] = std::move(Out);
  }

  std::vector<CellOutcome> Outcomes(Cells.size());
  std::vector<size_t> Pending;
  for (size_t I = 0; I < Cells.size(); ++I) {
    auto It = Done.find(Cells[I].Key);
    if (It != Done.end()) {
      Outcomes[I] = It->second;
      ++Sum.Resumed;
    } else {
      Pending.push_back(I);
    }
  }

  // Execute the unfinished cells and journal each completion before
  // counting it done. Journal appends are serialized internally; a
  // crash between execution and append merely re-executes that cell
  // on resume (at-least-once execution, exactly-once in the journal).
  std::mutex JournalMu;
  std::string JournalErr;
  auto RunOne = [&](size_t I) {
    CellOutcome Out = executeCell(Cells[I], Fn);
    std::string AppendErr;
    if (!J.append(cellRecord(Cells[I].Key, Out), &AppendErr)) {
      std::lock_guard<std::mutex> Lock(JournalMu);
      if (JournalErr.empty())
        JournalErr = AppendErr;
    }
    Outcomes[I] = std::move(Out);
  };

  if (Opts.Jobs == 1 || Pending.size() <= 1) {
    for (size_t I : Pending)
      RunOne(I);
  } else {
    support::ThreadPool &Pool = support::ThreadPool::global();
    std::vector<std::future<void>> Futures;
    Futures.reserve(Pending.size());
    for (size_t I : Pending)
      Futures.push_back(Pool.submit([&RunOne, I] { RunOne(I); }));
    for (std::future<void> &F : Futures)
      F.get();
  }
  if (!JournalErr.empty())
    throw std::runtime_error("campaign journal: " + JournalErr);

  for (const CellOutcome &Out : Outcomes) {
    if (!Out.Resumed) {
      ++Sum.Executed;
      if (Out.Attempts > 1)
        ++Sum.Retried;
    }
    if (Out.ok())
      ++Sum.Completed;
    else
      ++Sum.Errors;
  }
  return Outcomes;
}
