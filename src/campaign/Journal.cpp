//===- campaign/Journal.cpp - Append-only write-ahead campaign journal ----===//

#include "campaign/Journal.h"

#include "support/FaultInject.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace fpint;
using namespace fpint::campaign;
namespace fs = std::filesystem;

const char *const campaign::JournalSchema = "fpint-campaign-journal-v1";

namespace {

void setErr(std::string *Err, const std::string &What) {
  if (Err)
    *Err = What + ": " + std::strerror(errno);
}

/// EINTR-safe full write.
bool writeAllFd(int Fd, const char *Data, size_t Len) {
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::write(Fd, Data + Done, Len - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

/// EINTR-safe full read of the whole file from offset 0.
bool readWholeFd(int Fd, std::string &Out, std::string *Err) {
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    setErr(Err, "fstat");
    return false;
  }
  Out.clear();
  Out.resize(static_cast<size_t>(St.st_size));
  size_t Done = 0;
  while (Done < Out.size()) {
    ssize_t N = ::pread(Fd, &Out[Done], Out.size() - Done,
                        static_cast<off_t>(Done));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      setErr(Err, "read");
      return false;
    }
    if (N == 0) { // File shrank under us; treat the rest as absent.
      Out.resize(Done);
      break;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

Journal::~Journal() {
  if (Fd >= 0)
    ::close(Fd);
}

bool Journal::open(const std::string &Path,
                   const std::function<void(const json::Value &)> &OnRecord,
                   RecoveryInfo &Info, std::string *Err) {
  Info = RecoveryInfo();
  std::error_code EC;
  fs::create_directories(fs::path(Path).parent_path(), EC);

  Info.Existed = fs::exists(Path, EC);
  int NewFd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (NewFd < 0) {
    setErr(Err, "open " + Path);
    return false;
  }

  std::string Text;
  if (!readWholeFd(NewFd, Text, Err)) {
    ::close(NewFd);
    return false;
  }

  // Replay every complete record; the first ill-formed suffix is a
  // torn tail and marks the truncation point.
  size_t Pos = 0;
  while (Pos + 4 <= Text.size()) {
    uint32_t Len = static_cast<uint8_t>(Text[Pos]) |
                   (static_cast<uint8_t>(Text[Pos + 1]) << 8) |
                   (static_cast<uint8_t>(Text[Pos + 2]) << 16) |
                   (static_cast<uint32_t>(static_cast<uint8_t>(Text[Pos + 3]))
                    << 24);
    if (Len == 0 || Len > MaxRecordBytes || Pos + 4 + Len > Text.size())
      break;
    json::Value Rec;
    std::string ParseErr;
    if (!json::Value::parse(Text.substr(Pos + 4, Len), Rec, &ParseErr))
      break;
    if (OnRecord)
      OnRecord(Rec);
    ++Info.Records;
    Pos += 4 + Len;
  }
  if (Pos < Text.size()) {
    Info.TruncatedBytes = Text.size() - Pos;
    if (::ftruncate(NewFd, static_cast<off_t>(Pos)) != 0) {
      setErr(Err, "ftruncate " + Path);
      ::close(NewFd);
      return false;
    }
  }
  if (::lseek(NewFd, 0, SEEK_END) < 0) {
    setErr(Err, "lseek " + Path);
    ::close(NewFd);
    return false;
  }

  if (Fd >= 0)
    ::close(Fd);
  Fd = NewFd;
  FilePath = Path;
  return true;
}

bool Journal::append(const json::Value &Record, std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "journal is not open";
    return false;
  }
  const std::string Body = Record.dump();
  if (Body.size() > MaxRecordBytes) {
    if (Err)
      *Err = "record exceeds MaxRecordBytes";
    return false;
  }
  std::string Frame;
  Frame.reserve(4 + Body.size());
  uint32_t Len = static_cast<uint32_t>(Body.size());
  char Prefix[4] = {static_cast<char>(Len), static_cast<char>(Len >> 8),
                    static_cast<char>(Len >> 16),
                    static_cast<char>(Len >> 24)};
  Frame.append(Prefix, 4);
  Frame += Body;

  std::lock_guard<std::mutex> Lock(Mu);
  if (!writeAllFd(Fd, Frame.data(), Frame.size())) {
    setErr(Err, "write " + FilePath);
    return false;
  }
  if (::fsync(Fd) != 0) {
    setErr(Err, "fsync " + FilePath);
    return false;
  }
  // Fired only after the record is durable: a "crash" here kills the
  // runner itself without losing the cell just journaled, which is
  // exactly the harness-death scenario the resume path must absorb.
  support::fault::inject("campaign:journal");
  return true;
}

bool Journal::reset(std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "journal is not open";
    return false;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  if (::ftruncate(Fd, 0) != 0 || ::lseek(Fd, 0, SEEK_SET) < 0) {
    setErr(Err, "truncate " + FilePath);
    return false;
  }
  if (::fsync(Fd) != 0) {
    setErr(Err, "fsync " + FilePath);
    return false;
  }
  return true;
}
