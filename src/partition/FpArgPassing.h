//===- partition/FpArgPassing.h - Section 6.6 interprocedural extension ---===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's closing Section 6.6 suggestion: "By performing
/// interprocedural analysis, it might be possible to reduce some of the
/// copy overheads across calls by passing integer arguments in
/// floating-point registers." This pass implements that extension on a
/// partitioned module:
///
/// An argument slot is converted to FP passing when
///  * the callee's only use of the formal is the cp_to_fp the advanced
///    scheme inserted at entry (the formal's consumers all live in
///    FPa), and
///  * every call site's argument register is produced solely by a
///    cp_to_int the advanced scheme inserted (the value was computed
///    in FPa and copied back just to satisfy the convention).
///
/// Conversion rewires the callers to pass the FPa-resident value
/// directly, deletes the callee's entry copy (the FP shadow becomes the
/// formal), and removes caller copy-backs that no longer have integer
/// consumers -- eliminating a cp_to_int + cp_to_fp round trip per call.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_PARTITION_FPARGPASSING_H
#define FPINT_PARTITION_FPARGPASSING_H

#include "partition/Partitioner.h"
#include "sir/IR.h"

namespace fpint {
namespace partition {

struct FpArgReport {
  unsigned ArgsConverted = 0;      ///< Formal slots moved to FP passing.
  unsigned EntryCopiesRemoved = 0; ///< Callee cp_to_fp eliminated.
  unsigned CopyBacksRemoved = 0;   ///< Caller cp_to_int eliminated.
};

/// Applies the extension to \p M in place. \p RW must be the rewrite
/// report from partitioning \p M (it identifies the inserted copies);
/// it is updated to drop the eliminated instructions. Run before
/// register allocation.
FpArgReport passArgsInFpRegisters(sir::Module &M, ModuleRewrite &RW);

} // namespace partition
} // namespace fpint

#endif // FPINT_PARTITION_FPARGPASSING_H
