//===- partition/Assignment.h - Partition assignments ---------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of code partitioning for one function: a side (INT or FPa)
/// for every RDG node, plus the sets of nodes for which the advanced
/// scheme inserts communication:
///
///  * Copy:    INT definitions whose value is copied to the FP file with
///             a cp_to_fp right after the def (Section 5.3/6).
///  * Dup:     INT definitions duplicated as an FPa clone instruction
///             (Section 6.2), so the FPa side recomputes the value with
///             no communication.
///  * CopyBack: FPa definitions whose value must return to the integer
///             file (cp_to_int) because a call argument or return value
///             consumes it (Section 6.4) -- the only FPa-to-INT copies.
///
/// Also defines the pinning rules shared by both partitioning schemes:
/// which nodes can never move to the FPa subsystem.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_PARTITION_ASSIGNMENT_H
#define FPINT_PARTITION_ASSIGNMENT_H

#include "analysis/RDG.h"
#include "sir/IR.h"

#include <vector>

namespace fpint {
namespace partition {

enum class Side : uint8_t { Int, Fpa };

/// Per-function partitioning decision over an RDG's nodes.
struct Assignment {
  const analysis::RDG *G = nullptr;
  std::vector<Side> NodeSide;
  std::vector<bool> Copy;     ///< cp_to_fp after this (INT) definition.
  std::vector<bool> Dup;      ///< FPa clone after this (INT) definition.
  std::vector<bool> CopyBack; ///< cp_to_int after this (FPa) definition.

  explicit Assignment(const analysis::RDG &Rdg)
      : G(&Rdg), NodeSide(Rdg.numNodes(), Side::Int),
        Copy(Rdg.numNodes(), false), Dup(Rdg.numNodes(), false),
        CopyBack(Rdg.numNodes(), false) {}

  bool isFpa(unsigned Node) const { return NodeSide[Node] == Side::Fpa; }

  /// Number of nodes assigned to the FPa subsystem.
  unsigned fpaNodeCount() const {
    unsigned Count = 0;
    for (Side S : NodeSide)
      Count += S == Side::Fpa;
    return Count;
  }
};

/// True if \p Node can never execute in the FPa subsystem: address
/// halves of memory operations, calls/returns/formals (integer calling
/// convention), byte-sized load/store data (no FP byte transfers), and
/// plain instructions outside the 22 offloadable opcodes (including
/// native FP code, which needs no offloading).
bool pinnedToInt(const analysis::RDG &G, unsigned Node);

/// True if \p Node may be duplicated into FPa: only plain, offloadable,
/// value-producing instructions qualify (never loads, calls, formals).
bool dupEligible(const analysis::RDG &G, unsigned Node);

/// True if \p Node defines a register (and can therefore be copied).
bool copyEligible(const analysis::RDG &G, unsigned Node);

} // namespace partition
} // namespace fpint

#endif // FPINT_PARTITION_ASSIGNMENT_H
