//===- partition/Partitioner.h - Whole-module partitioning driver ---------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one of the paper's two partitioning schemes over every function
/// of a module and rewrites the code in place: analysis (CFG, RDG),
/// scheme-specific assignment, structural validation, and rewrite.
/// Also provides partition statistics in the paper's terms -- the "size
/// of the FPa partition" as a percentage of dynamic instructions
/// (Figure 8) and the copy/duplicate overheads (Section 7.2).
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_PARTITION_PARTITIONER_H
#define FPINT_PARTITION_PARTITIONER_H

#include "analysis/AnalysisManager.h"
#include "analysis/ExecutionEstimate.h"
#include "partition/CostModel.h"
#include "partition/Rewriter.h"
#include "sir/IR.h"
#include "vm/VM.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace fpint {
namespace partition {

enum class Scheme {
  None,     ///< Conventional code: everything in the INT subsystem.
  Basic,    ///< Section 5: components, no extra instructions.
  Advanced, ///< Section 6: copies and duplication under the cost model.
};

const char *schemeName(Scheme S);

/// Result of partitioning one module.
struct ModuleRewrite {
  std::unordered_map<const sir::Function *, RewriteReport> Reports;
  unsigned StaticCopies = 0;
  unsigned StaticDups = 0;
  unsigned StaticCopyBacks = 0;
  /// Validation diagnostics (empty on success).
  std::vector<std::string> Errors;
};

/// Partitions and rewrites \p M in place using \p ProfileWeights for the
/// advanced cost model (may be null: static estimates). The module must
/// be renumbered and verify cleanly. When \p AM is non-null the CFG /
/// ReachingDefs / RDG / BlockWeights analyses are fetched through it
/// (cache-aware); each rewritten function's entries are invalidated in
/// place.
ModuleRewrite partitionModule(sir::Module &M, Scheme S,
                              const vm::Profile *ProfileWeights,
                              CostParams Params = CostParams(),
                              analysis::AnalysisManager *AM = nullptr);

/// Dynamic-instruction accounting over a (partitioned) module, computed
/// from a measurement profile of that same module: every instruction in
/// a block executes once per block entry.
struct DynStats {
  uint64_t Total = 0;     ///< All dynamic instructions.
  uint64_t Fpa = 0;       ///< Executed in the FPa subsystem (",a" ops).
  uint64_t NativeFp = 0;  ///< Native floating-point instructions.
  uint64_t Copies = 0;    ///< cp_to_fp (integer partitioning traffic).
  uint64_t Dups = 0;      ///< Duplicated FPa clones.
  uint64_t CopyBacks = 0; ///< cp_to_int for call args / return values.
  uint64_t Loads = 0;
  uint64_t Stores = 0;

  /// The paper's Figure 8 metric: FPa partition size as a fraction of
  /// all dynamic instructions.
  double fpaFraction() const {
    return Total ? static_cast<double>(Fpa) / static_cast<double>(Total) : 0;
  }
  double copyFraction() const {
    return Total ? static_cast<double>(Copies + CopyBacks) /
                       static_cast<double>(Total)
                 : 0;
  }
  double dupFraction() const {
    return Total ? static_cast<double>(Dups) / static_cast<double>(Total) : 0;
  }
};

/// Computes DynStats for \p M from \p MeasureProfile (a profile of a run
/// of \p M itself). \p Rewrite identifies inserted copy/dup instructions;
/// pass null for unpartitioned modules.
DynStats computeDynStats(const sir::Module &M,
                         const vm::Profile &MeasureProfile,
                         const ModuleRewrite *Rewrite);

} // namespace partition
} // namespace fpint

#endif // FPINT_PARTITION_PARTITIONER_H
