//===- partition/BasicPartitioner.cpp - The paper's basic scheme ----------===//

#include "partition/BasicPartitioner.h"

using namespace fpint;
using namespace fpint::partition;
using analysis::RDG;

Assignment partition::partitionBasic(const RDG &G) {
  Assignment A(G);
  const unsigned NumComponents = G.numComponents();
  std::vector<bool> ComponentPinned(NumComponents, false);
  for (unsigned N = 0; N < G.numNodes(); ++N)
    if (pinnedToInt(G, N))
      ComponentPinned[G.componentOf()[N]] = true;
  for (unsigned N = 0; N < G.numNodes(); ++N)
    A.NodeSide[N] = ComponentPinned[G.componentOf()[N]] ? Side::Int : Side::Fpa;
  return A;
}

bool partition::satisfiesBasicConditions(const Assignment &A) {
  const RDG &G = *A.G;
  for (unsigned N = 0; N < G.numNodes(); ++N) {
    if (!A.isFpa(N))
      continue;
    // Condition 2: no ancestor of an FPa node is in INT.
    std::vector<bool> Back;
    G.backwardSlice(N, Back);
    for (unsigned V = 0; V < G.numNodes(); ++V)
      if (Back[V] && !A.isFpa(V))
        return false;
    // Condition 3: no descendant of an FPa node is in INT.
    std::vector<bool> Fwd;
    G.forwardSlice(N, Fwd);
    for (unsigned V = 0; V < G.numNodes(); ++V)
      if (Fwd[V] && !A.isFpa(V))
        return false;
  }
  return true;
}
