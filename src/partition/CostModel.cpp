//===- partition/CostModel.cpp - Section 6.1/6.2 cost model ---------------===//

#include "partition/CostModel.h"

#include <cassert>
#include <limits>

using namespace fpint;
using namespace fpint::partition;
using analysis::RDG;

CostModel::CostModel(const RDG &G, const analysis::BlockWeights &Weights,
                     CostParams Params)
    : G(G), Params(Params) {
  assert(Params.DupOverhead < Params.CopyOverhead &&
         "the paper requires o_dupl < o_copy, else nothing duplicates");
  NodeCount.resize(G.numNodes());
  for (unsigned N = 0; N < G.numNodes(); ++N)
    NodeCount[N] = Weights.weightOf(G.node(N).BB);
  DupCost.assign(G.numNodes(), std::numeric_limits<double>::infinity());
}

void CostModel::recompute(const Assignment &A) {
  const double Inf = std::numeric_limits<double>::infinity();
  DupCost.assign(G.numNodes(), Inf);

  // Iterative min-fixpoint (the RDG may be cyclic through loop-carried
  // dependences; costs only decrease, starting from infinity).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned V = 0; V < G.numNodes(); ++V) {
      if (!dupEligible(G, V))
        continue;
      double Cost = Params.DupOverhead * NodeCount[V];
      for (unsigned U : G.node(V).Preds) {
        // A loop-carried self-dependence is satisfied by the duplicate
        // itself (the paper's Figure 6 duplicates regno's increment,
        // whose clone feeds its own next iteration).
        if (U == V)
          continue;
        if (A.isFpa(U))
          continue; // FPa parents already supply FP-file values.
        Cost += std::min(copyingCost(U), DupCost[U]);
        if (Cost == Inf)
          break;
      }
      if (Cost < DupCost[V]) {
        DupCost[V] = Cost;
        Changed = true;
      }
    }
  }
}
