//===- partition/Rewriter.cpp - Apply an assignment to the code -----------===//

#include "partition/Rewriter.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace fpint;
using namespace fpint::partition;
using analysis::NodeKind;
using analysis::RDG;
using sir::Instruction;
using sir::Opcode;
using sir::Reg;
using sir::RegClass;

namespace {

/// How each integer register is migrated to the FP file.
enum class RegMode : uint8_t {
  Untouched, ///< Never consumed by FPa code.
  Retype,    ///< Every def is FPa: the register itself becomes FP-class.
  Shadow,    ///< Mixed defs: a fresh FP register shadows the INT one.
};

struct RegPlan {
  RegMode Mode = RegMode::Untouched;
  Reg FpReg;  ///< Shadow register (Shadow mode only).
  Reg IntReg; ///< Integer copy-back target when the reg was retyped.
};

class RewriterImpl {
public:
  RewriterImpl(sir::Function &F, const Assignment &A)
      : F(F), A(A), G(*A.G) {}

  RewriteReport run();

private:
  void planRegisters();
  Reg fpVersionOf(Reg R);
  Reg intVersionOf(Reg R);
  void rewriteInstruction(Instruction &I);
  void planInsertAfter(const Instruction &I,
                       std::unique_ptr<Instruction> New);
  void applyInsertions();

  sir::Function &F;
  const Assignment &A;
  const RDG &G;
  RewriteReport Report;

  std::unordered_map<uint32_t, RegPlan> Plans;
  // Insertions: (block, position, sequence) -> instruction, applied in
  // descending position so earlier indices stay valid.
  struct Insertion {
    sir::BasicBlock *BB;
    size_t Pos;
    size_t Seq;
    std::unique_ptr<Instruction> I;
  };
  std::vector<Insertion> Insertions;
  std::vector<Reg> RetypeList;
};

void RewriterImpl::planRegisters() {
  // Collect definition nodes per integer register.
  std::unordered_map<uint32_t, std::vector<unsigned>> DefNodes;
  for (unsigned N = 0; N < G.numNodes(); ++N) {
    Reg D = G.node(N).Def;
    if (D.isValid() && F.regClass(D) == RegClass::Int)
      DefNodes[D.id()].push_back(N);
  }

  for (const auto &[RegId, Nodes] : DefNodes) {
    bool AnyFpa = false, AnyIntOrComm = false, AnyCopyBack = false;
    bool AnyComm = false;
    for (unsigned N : Nodes) {
      if (A.isFpa(N)) {
        AnyFpa = true;
        AnyCopyBack |= A.CopyBack[N];
      } else {
        AnyIntOrComm = true;
        AnyComm |= A.Copy[N] || A.Dup[N];
      }
    }
    if (!AnyFpa && !AnyComm)
      continue; // No FP-file presence needed.

    RegPlan &Plan = Plans[RegId];
    if (AnyFpa && !AnyIntOrComm) {
      Plan.Mode = RegMode::Retype;
      RetypeList.push_back(Reg(RegId));
      if (AnyCopyBack)
        Plan.IntReg = F.newReg(RegClass::Int);
    } else {
      Plan.Mode = RegMode::Shadow;
      Plan.FpReg = F.newReg(RegClass::Fp);
      // Copy-backs in shadow mode restore the original register, which
      // remains INT-class.
      Plan.IntReg = Reg(RegId);
    }
  }
}

Reg RewriterImpl::fpVersionOf(Reg R) {
  auto It = Plans.find(R.id());
  if (It == Plans.end()) {
    // Never-defined register consumed by FPa code: give it a zero
    // shadow (both files read as zero).
    RegPlan &Plan = Plans[R.id()];
    Plan.Mode = RegMode::Shadow;
    Plan.FpReg = F.newReg(RegClass::Fp);
    Plan.IntReg = R;
    return Plan.FpReg;
  }
  const RegPlan &Plan = It->second;
  assert(Plan.Mode != RegMode::Untouched && "FPa use of untouched register");
  return Plan.Mode == RegMode::Retype ? R : Plan.FpReg;
}

Reg RewriterImpl::intVersionOf(Reg R) {
  auto It = Plans.find(R.id());
  if (It == Plans.end() || It->second.Mode == RegMode::Untouched ||
      It->second.Mode == RegMode::Shadow)
    return R;
  assert(It->second.IntReg.isValid() &&
         "retyped register consumed as integer without a copy-back");
  return It->second.IntReg;
}

void RewriterImpl::planInsertAfter(const Instruction &I,
                                   std::unique_ptr<Instruction> New) {
  sir::BasicBlock *BB = I.parent();
  Insertions.push_back(
      Insertion{BB, BB->positionOf(&I) + 1, Insertions.size(),
                std::move(New)});
}

void RewriterImpl::rewriteInstruction(Instruction &I) {
  const Opcode Op = I.op();

  // Native FP instructions are untouched by integer partitioning.
  if (sir::isFpOpcode(Op))
    return;

  auto MakeCopyToFp = [&](Reg FpDst, Reg IntSrc) {
    auto C = std::make_unique<Instruction>(Opcode::CpToFp);
    C->setDef(FpDst);
    C->uses() = {IntSrc};
    return C;
  };
  auto MakeCopyToInt = [&](Reg IntDst, Reg FpSrc) {
    auto C = std::make_unique<Instruction>(Opcode::CpToInt);
    C->setDef(IntDst);
    C->uses() = {FpSrc};
    return C;
  };

  if (I.isLoad()) {
    unsigned Val = G.valueNode(I);
    Reg D = I.def();
    // Native FP loads (l.s in the source) need no rewriting.
    if (F.regClass(D) == RegClass::Fp)
      return;
    if (A.isFpa(Val)) {
      // Loads directly into the FP file (the l.s form).
      if (Plans[D.id()].Mode == RegMode::Shadow)
        I.setDef(Plans[D.id()].FpReg);
      if (A.CopyBack[Val]) {
        auto C = MakeCopyToInt(intVersionOf(D), fpVersionOf(D));
        Report.CopyBackInstrs.push_back(C.get());
        planInsertAfter(I, std::move(C));
      }
    } else if (A.Copy[Val]) {
      auto C = MakeCopyToFp(fpVersionOf(D), D);
      Report.CopyInstrs.push_back(C.get());
      planInsertAfter(I, std::move(C));
    }
    return; // Address side (base register) always stays INT.
  }

  if (I.isStore()) {
    unsigned Val = G.valueNode(I);
    if (A.isFpa(Val) && !I.uses().empty() &&
        F.regClass(I.uses()[0]) != RegClass::Fp)
      I.uses()[0] = fpVersionOf(I.uses()[0]); // s.s form.
    return;
  }

  if (Op == Opcode::Call) {
    unsigned N = G.primaryNode(I);
    // Arguments stay in integer registers; producers that moved to FPa
    // already planted copy-backs next to their definitions.
    for (Reg &U : I.uses())
      U = intVersionOf(U);
    if (I.def().isValid() && A.Copy[N]) {
      auto C = MakeCopyToFp(fpVersionOf(I.def()), I.def());
      Report.CopyInstrs.push_back(C.get());
      planInsertAfter(I, std::move(C));
    }
    return;
  }

  if (Op == Opcode::Ret) {
    for (Reg &U : I.uses())
      U = intVersionOf(U);
    return;
  }

  if (Op == Opcode::Out) {
    unsigned N = G.primaryNode(I);
    if (A.isFpa(N)) {
      I.setInFpa(true);
      for (Reg &U : I.uses())
        U = fpVersionOf(U);
    }
    return;
  }

  if (Op == Opcode::Jump)
    return;

  // Plain nodes: ALU operations, conditional branches, copies.
  unsigned N = G.primaryNode(I);
  if (N == ~0u)
    return;

  if (A.isFpa(N)) {
    I.setInFpa(true);
    for (Reg &U : I.uses())
      U = fpVersionOf(U);
    if (I.def().isValid()) {
      Reg D = I.def();
      if (Plans[D.id()].Mode == RegMode::Shadow)
        I.setDef(Plans[D.id()].FpReg);
      if (A.CopyBack[N]) {
        auto C = MakeCopyToInt(intVersionOf(D), fpVersionOf(D));
        Report.CopyBackInstrs.push_back(C.get());
        planInsertAfter(I, std::move(C));
      }
    }
    return;
  }

  // INT-side plain node: insert communication if flagged.
  if (A.Dup[N]) {
    Reg D = I.def();
    auto Clone = std::make_unique<Instruction>(I.op());
    Clone->setInFpa(true);
    Clone->setImm(I.imm());
    Clone->setDef(fpVersionOf(D));
    for (Reg U : I.uses())
      Clone->uses().push_back(fpVersionOf(U));
    Report.DupInstrs.push_back(Clone.get());
    planInsertAfter(I, std::move(Clone));
  } else if (A.Copy[N]) {
    Reg D = I.def();
    auto C = MakeCopyToFp(fpVersionOf(D), D);
    Report.CopyInstrs.push_back(C.get());
    planInsertAfter(I, std::move(C));
  }
}

void RewriterImpl::applyInsertions() {
  // Descending position within each block keeps earlier indices stable;
  // equal positions apply in reverse sequence order so the final layout
  // preserves creation order.
  std::stable_sort(Insertions.begin(), Insertions.end(),
                   [](const Insertion &L, const Insertion &R) {
                     if (L.BB != R.BB)
                       return L.BB < R.BB;
                     if (L.Pos != R.Pos)
                       return L.Pos > R.Pos;
                     return L.Seq > R.Seq;
                   });
  for (auto &Ins : Insertions)
    Ins.BB->insertAt(Ins.Pos, std::move(Ins.I));
}

RewriteReport RewriterImpl::run() {
  planRegisters();

  // Formal-parameter copies enter at the top of the entry block.
  for (unsigned FI = 0; FI < F.formals().size(); ++FI) {
    unsigned N = G.formalNode(FI);
    if (!A.Copy[N])
      continue;
    Reg Formal = F.formals()[FI];
    auto C = std::make_unique<Instruction>(Opcode::CpToFp);
    C->setDef(fpVersionOf(Formal));
    C->uses() = {Formal};
    Report.CopyInstrs.push_back(C.get());
    Insertions.push_back(
        Insertion{F.entry(), 0, Insertions.size(), std::move(C)});
  }

  // Field rewrites first (they read RDG node ids, which insertion would
  // not invalidate, but keeping phases separate is simpler to reason
  // about), then the planned insertions, then register retyping.
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      rewriteInstruction(*I);

  applyInsertions();

  for (Reg R : RetypeList)
    F.setRegClass(R, RegClass::Fp);

  F.renumber();
  return std::move(Report);
}

} // namespace

RewriteReport partition::applyAssignment(sir::Function &F,
                                         const Assignment &A) {
  return RewriterImpl(F, A).run();
}
