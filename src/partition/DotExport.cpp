//===- partition/DotExport.cpp - Graphviz export of partitioned RDGs ------===//

#include "partition/DotExport.h"

#include "sir/Printer.h"

using namespace fpint;
using namespace fpint::partition;
using analysis::NodeKind;
using analysis::RDG;
using analysis::RDGNode;

static const char *kindSuffix(NodeKind K) {
  switch (K) {
  case NodeKind::LoadAddr:
  case NodeKind::StoreAddr:
    return " [a]";
  case NodeKind::LoadVal:
  case NodeKind::StoreVal:
  case NodeKind::OutVal:
    return " [v]";
  case NodeKind::Formal:
    return " formal";
  default:
    return "";
  }
}

static std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string partition::toDot(const RDG &G, const Assignment *A) {
  std::string Dot = "digraph rdg {\n  rankdir=TB;\n  node [fontsize=10];\n";
  for (unsigned N = 0; N < G.numNodes(); ++N) {
    const RDGNode &Node = G.node(N);
    std::string Label;
    if (Node.I)
      Label = "I" + std::to_string(Node.I->id()) + ": " +
              sir::opcodeName(Node.I->op());
    else
      Label = "arg";
    Label += kindSuffix(Node.Kind);

    std::string Attrs;
    if (A) {
      if (A->isFpa(N))
        Attrs = ", style=filled, fillcolor=lightblue";
      if (A->Copy[N]) {
        Label += " +copy";
        Attrs = ", style=filled, fillcolor=khaki";
      }
      if (A->Dup[N]) {
        Label += " +dup";
        Attrs = ", style=filled, fillcolor=khaki";
      }
      if (A->CopyBack[N])
        Label += " +cpback";
    }
    Dot += "  n" + std::to_string(N) + " [label=\"" + escape(Label) + "\"" +
           Attrs + "];\n";
  }
  for (unsigned N = 0; N < G.numNodes(); ++N)
    for (unsigned S : G.node(N).Succs)
      Dot += "  n" + std::to_string(N) + " -> n" + std::to_string(S) + ";\n";
  Dot += "}\n";
  return Dot;
}
