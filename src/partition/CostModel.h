//===- partition/CostModel.h - Section 6.1/6.2 cost model -----------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The advanced scheme's profitability machinery:
///
///  * Per-node execution counts n_v = n_{B(v)} from block weights.
///  * Copying cost  copying_cost(v) = o_copy * n_{B(v)}.
///  * Duplication cost via the Section 6.2 prepass fixpoint
///      dupl_cost(v) = o_dupl * n_{B(v)}
///                   + sum over parents u of min(copying_cost(u),
///                                               dupl_cost(u)),
///    where parents already in FPa contribute nothing and nodes that
///    cannot be duplicated (loads, calls, formals, unsupported opcodes)
///    have infinite duplication cost.
///  * The duplicate-vs-copy decision: duplicate iff
///    dupl_cost(v) < copying_cost(v). The paper requires
///    o_dupl < o_copy for duplication to ever win.
///
/// Empirically the paper found o_copy in [3,6] and o_dupl in [1.5,3]
/// best; the defaults sit inside those ranges.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_PARTITION_COSTMODEL_H
#define FPINT_PARTITION_COSTMODEL_H

#include "analysis/ExecutionEstimate.h"
#include "analysis/RDG.h"
#include "partition/Assignment.h"

#include <vector>

namespace fpint {
namespace partition {

/// Tunable overhead weights of the Section 6.1 cost model.
struct CostParams {
  double CopyOverhead = 4.0; ///< o_copy, paper's best range [3, 6].
  double DupOverhead = 2.5;  ///< o_dupl, paper's best range [1.5, 3].

  /// Load-balance extension (paper Section 6.6: "the algorithms could
  /// be improved to consider load balance while performing code
  /// partitioning"). When < 1.0, the advanced scheme evicts its least
  /// profitable FPa components until the FPa share of (weighted)
  /// offloadable work does not exceed this cap. 1.0 disables the
  /// extension and reproduces the paper's greedy behaviour.
  double FpaShareCap = 1.0;
};

/// Cost-model state for one function's RDG under fixed block weights.
class CostModel {
public:
  CostModel(const analysis::RDG &G, const analysis::BlockWeights &Weights,
            CostParams Params);

  /// n_v: execution count of the block containing node \p V.
  double execCount(unsigned V) const { return NodeCount[V]; }

  /// o_copy * n_v.
  double copyingCost(unsigned V) const {
    return Params.CopyOverhead * NodeCount[V];
  }

  /// The prepass duplication cost (infinite for ineligible nodes); must
  /// be computed against a current INT/FPa assignment via recompute().
  double duplicationCost(unsigned V) const { return DupCost[V]; }

  /// True if the prepass decides to duplicate rather than copy \p V.
  bool preferDuplicate(unsigned V) const {
    return DupCost[V] < copyingCost(V);
  }

  /// Cheapest way to make \p V's value available in FPa.
  double commCost(unsigned V) const {
    return std::min(copyingCost(V), DupCost[V]);
  }

  /// Re-runs the Section 6.2 fixpoint: parents already assigned to FPa
  /// in \p A contribute no communication cost.
  void recompute(const Assignment &A);

  const CostParams &params() const { return Params; }

private:
  const analysis::RDG &G;
  CostParams Params;
  std::vector<double> NodeCount;
  std::vector<double> DupCost;
};

} // namespace partition
} // namespace fpint

#endif // FPINT_PARTITION_COSTMODEL_H
