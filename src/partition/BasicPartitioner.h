//===- partition/BasicPartitioner.h - The paper's basic scheme ------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The basic partitioning scheme of Section 5: partition the program
/// without introducing any extra instructions, so inter-partition
/// communication happens only through existing loads and stores. The
/// partitioning conditions require that no FPa node exchange a register
/// value with the INT partition in either direction; equivalently, every
/// connected component of the undirected RDG belongs wholly to one
/// partition. Components containing a pinned node (load/store addresses,
/// calls, returns, formals, unsupported opcodes) go to INT; all other
/// components -- which compute only branch outcomes and store values --
/// go to FPa.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_PARTITION_BASICPARTITIONER_H
#define FPINT_PARTITION_BASICPARTITIONER_H

#include "partition/Assignment.h"

namespace fpint {
namespace partition {

/// Runs the basic scheme on \p G; never populates Copy/Dup/CopyBack.
Assignment partitionBasic(const analysis::RDG &G);

/// Checks the Section 5.1 partitioning conditions on \p A: the FPa set
/// is disjoint from INT, and no FPa node's backward or forward slice
/// intersects the INT partition. Returns true if all conditions hold.
bool satisfiesBasicConditions(const Assignment &A);

} // namespace partition
} // namespace fpint

#endif // FPINT_PARTITION_BASICPARTITIONER_H
