//===- partition/Assignment.cpp - Partition assignments -------------------===//

#include "partition/Assignment.h"

using namespace fpint;
using namespace fpint::partition;
using analysis::NodeKind;
using analysis::RDG;
using sir::Opcode;

bool partition::pinnedToInt(const RDG &G, unsigned Node) {
  const analysis::RDGNode &N = G.node(Node);
  switch (N.Kind) {
  case NodeKind::LoadAddr:
  case NodeKind::StoreAddr:
  case NodeKind::CallNode:
  case NodeKind::RetNode:
  case NodeKind::Formal:
    return true;
  case NodeKind::LoadVal: {
    // Byte loads sign/zero-extend into the integer file only; loads
    // already targeting the FP file (native l.s) are not integer
    // computation and stay out of the partitioning universe.
    if (N.I->op() != Opcode::Lw)
      return true;
    const sir::Function &F = *N.I->parent()->parent();
    return F.regClass(N.I->def()) == sir::RegClass::Fp;
  }
  case NodeKind::StoreVal: {
    if (N.I->op() != Opcode::Sw)
      return true;
    const sir::Function &F = *N.I->parent()->parent();
    return !N.I->uses().empty() &&
           F.regClass(N.I->uses()[0]) == sir::RegClass::Fp;
  }
  case NodeKind::OutVal: {
    const sir::Function &F = *N.I->parent()->parent();
    return !N.I->uses().empty() &&
           F.regClass(N.I->uses()[0]) == sir::RegClass::Fp;
  }
  case NodeKind::Plain:
    return !sir::fpaSupports(N.I->op());
  }
  return true;
}

bool partition::dupEligible(const RDG &G, unsigned Node) {
  const analysis::RDGNode &N = G.node(Node);
  return N.Kind == NodeKind::Plain && N.I && sir::fpaSupports(N.I->op()) &&
         N.Def.isValid();
}

bool partition::copyEligible(const RDG &G, unsigned Node) {
  return G.node(Node).Def.isValid();
}
