//===- partition/Rewriter.h - Apply an assignment to the code -------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a partition Assignment into executable code:
///
///  * FPa-assigned instructions get the FPa bit (printed ",a") and their
///    operands move to floating-point registers -- either by retyping a
///    register whose every definition is FPa, or through a fresh FP
///    "shadow" register when INT definitions coexist.
///  * Copy nodes get a cp_to_fp right after the defining instruction
///    (formal parameters: at function entry).
///  * Dup nodes get an FPa clone instruction right after the original,
///    writing the FP shadow so the FPa side recomputes the value with no
///    communication (the paper's Figure 6).
///  * Copy-back nodes get a cp_to_int restoring the integer register for
///    call arguments and return values (Section 6.4).
///  * Loads/stores whose value node is FPa read/write the FP file (the
///    l.s / s.s forms of the paper's Figure 4).
///
/// The rewrite preserves program semantics exactly; the test suite runs
/// original and rewritten modules and compares outputs.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_PARTITION_REWRITER_H
#define FPINT_PARTITION_REWRITER_H

#include "partition/Assignment.h"
#include "sir/IR.h"

#include <vector>

namespace fpint {
namespace partition {

/// What the rewrite inserted, for overhead accounting (Section 7.2).
struct RewriteReport {
  std::vector<const sir::Instruction *> CopyInstrs;     ///< cp_to_fp
  std::vector<const sir::Instruction *> DupInstrs;      ///< FPa clones
  std::vector<const sir::Instruction *> CopyBackInstrs; ///< cp_to_int

  unsigned staticAdded() const {
    return static_cast<unsigned>(CopyInstrs.size() + DupInstrs.size() +
                                 CopyBackInstrs.size());
  }
};

/// Applies \p A to \p F (the function \p A's RDG was built over) and
/// renumbers it. Returns what was inserted.
RewriteReport applyAssignment(sir::Function &F, const Assignment &A);

} // namespace partition
} // namespace fpint

#endif // FPINT_PARTITION_REWRITER_H
