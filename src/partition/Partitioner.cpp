//===- partition/Partitioner.cpp - Whole-module partitioning driver -------===//

#include "partition/Partitioner.h"

#include "analysis/CFG.h"
#include "analysis/RDG.h"
#include "partition/AdvancedPartitioner.h"
#include "partition/BasicPartitioner.h"

#include <memory>
#include <unordered_set>

using namespace fpint;
using namespace fpint::partition;

const char *partition::schemeName(Scheme S) {
  switch (S) {
  case Scheme::None:
    return "conventional";
  case Scheme::Basic:
    return "basic";
  case Scheme::Advanced:
    return "advanced";
  }
  return "<bad>";
}

ModuleRewrite partition::partitionModule(sir::Module &M, Scheme S,
                                         const vm::Profile *ProfileWeights,
                                         CostParams Params,
                                         analysis::AnalysisManager *AM) {
  ModuleRewrite Result;
  if (S == Scheme::None)
    return Result;

  // Block weights and per-function graphs come from the analysis
  // manager when the caller runs under one (the pass pipeline), and
  // are built locally otherwise (direct library use). renumber() is
  // idempotent on an unmutated function, so cached analyses keyed on
  // instruction ids stay valid across it.
  std::unique_ptr<analysis::BlockWeights> LocalWeights;
  const analysis::BlockWeights *Weights;
  if (AM) {
    Weights = &AM->blockWeights(M, ProfileWeights);
  } else {
    LocalWeights =
        std::make_unique<analysis::BlockWeights>(M, ProfileWeights);
    Weights = LocalWeights.get();
  }

  for (const auto &F : M.functions()) {
    F->renumber();
    std::unique_ptr<analysis::CFG> LocalCfg;
    std::unique_ptr<analysis::RDG> LocalRdg;
    const analysis::RDG *GP;
    if (AM) {
      GP = &AM->getResult<analysis::RDGAnalysis>(*F);
    } else {
      LocalCfg = std::make_unique<analysis::CFG>(*F);
      LocalRdg = std::make_unique<analysis::RDG>(*F, *LocalCfg);
      GP = LocalRdg.get();
    }
    const analysis::RDG &G = *GP;

    Assignment A = S == Scheme::Basic
                       ? partitionBasic(G)
                       : partitionAdvanced(G, *Weights, Params);

    std::vector<std::string> Errs = validateAssignment(A);
    if (S == Scheme::Basic && !satisfiesBasicConditions(A))
      Errs.push_back(F->name() +
                     ": basic partition violates Section 5.1 conditions");
    for (std::string &E : Errs)
      Result.Errors.push_back(F->name() + ": " + E);
    if (!Errs.empty())
      continue; // Leave this function unpartitioned.

    RewriteReport Report = applyAssignment(*F, A);
    if (AM)
      AM->invalidateFunction(*F); // The rewrite mutated F's IR.
    Result.StaticCopies += static_cast<unsigned>(Report.CopyInstrs.size());
    Result.StaticDups += static_cast<unsigned>(Report.DupInstrs.size());
    Result.StaticCopyBacks +=
        static_cast<unsigned>(Report.CopyBackInstrs.size());
    Result.Reports.emplace(F.get(), std::move(Report));
  }
  return Result;
}

DynStats partition::computeDynStats(const sir::Module &M,
                                    const vm::Profile &MeasureProfile,
                                    const ModuleRewrite *Rewrite) {
  // Gather the inserted-instruction sets for classification.
  std::unordered_set<const sir::Instruction *> CopySet, DupSet, CopyBackSet;
  if (Rewrite) {
    for (const auto &[F, Report] : Rewrite->Reports) {
      (void)F;
      CopySet.insert(Report.CopyInstrs.begin(), Report.CopyInstrs.end());
      DupSet.insert(Report.DupInstrs.begin(), Report.DupInstrs.end());
      CopyBackSet.insert(Report.CopyBackInstrs.begin(),
                         Report.CopyBackInstrs.end());
    }
  }

  DynStats Stats;
  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      uint64_t Count = MeasureProfile.countOf(BB.get());
      if (Count == 0)
        continue;
      for (const auto &I : BB->instructions()) {
        Stats.Total += Count;
        if (I->inFpa())
          Stats.Fpa += Count;
        if (sir::isFpOpcode(I->op()))
          Stats.NativeFp += Count;
        if (I->isLoad())
          Stats.Loads += Count;
        if (I->isStore())
          Stats.Stores += Count;
        if (CopySet.count(I.get()))
          Stats.Copies += Count;
        if (DupSet.count(I.get()))
          Stats.Dups += Count;
        if (CopyBackSet.count(I.get()))
          Stats.CopyBacks += Count;
      }
    }
  }
  return Stats;
}
