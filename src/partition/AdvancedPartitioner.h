//===- partition/AdvancedPartitioner.h - The paper's advanced scheme ------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The advanced partitioning scheme of Section 6. Starting from an INT
/// partition containing the LdSt slice (and the backward closures of
/// everything FPa cannot execute), the algorithm:
///
///  Phase 1 expands the INT boundary: for each candidate FPa node u, it
///  evaluates the loss of moving u's FPa backward slice P into INT,
///      loss = sum over v in P of [n_v + alpha(v)]  (or -copying_cost(v)
///             when v produces a call argument / return value)
///           + sum over boundary parents q of delta(q),
///  where alpha(v) charges a copy if v still has FPa children outside P
///  and delta(q) credits the removal of q's copy/duplicate when all its
///  FPa children sit inside P. Negative loss means moving P to INT is a
///  net gain, zero defers the decision to u's children.
///
///  Phase 2 tentatively inserts copies and duplicates for the boundary
///  (choosing per the Section 6.2 prepass), then evaluates
///  Profit = Benefit - Overhead per connected component of the
///  disconnected undirected RDG and evicts unprofitable components.
///
///  Calling conventions (Section 6.4): call arguments and return values
///  start in FPa; if their producers stay there, a cp_to_int copy-back
///  is charged and inserted -- the only FPa-to-INT communication.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_PARTITION_ADVANCEDPARTITIONER_H
#define FPINT_PARTITION_ADVANCEDPARTITIONER_H

#include "analysis/ExecutionEstimate.h"
#include "partition/Assignment.h"
#include "partition/CostModel.h"

namespace fpint {
namespace partition {

/// Runs the advanced scheme on \p G with block weights \p W.
Assignment partitionAdvanced(const analysis::RDG &G,
                             const analysis::BlockWeights &W,
                             CostParams Params = CostParams());

/// Structural sanity of an assignment (both schemes): pinned nodes are
/// INT; every FPa node's INT parents carry a copy or duplicate; every
/// duplicated node's INT parents do too (closure); FPa producers of call
/// arguments / return values carry a copy-back; duplicates only on
/// eligible nodes. Returns a list of violations (empty when valid).
std::vector<std::string> validateAssignment(const Assignment &A);

} // namespace partition
} // namespace fpint

#endif // FPINT_PARTITION_ADVANCEDPARTITIONER_H
