//===- partition/FpArgPassing.cpp - Section 6.6 interprocedural extension -===//

#include "partition/FpArgPassing.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace fpint;
using namespace fpint::partition;
using sir::Function;
using sir::Instruction;
using sir::Opcode;
using sir::Reg;
using sir::RegClass;

namespace {

/// Per-function def/use census for one register.
struct RegUsage {
  std::vector<Instruction *> Defs;
  std::vector<Instruction *> Uses; ///< Including memory bases.
};

std::unordered_map<uint32_t, RegUsage> censusOf(Function &F) {
  std::unordered_map<uint32_t, RegUsage> Census;
  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      if (I->def().isValid())
        Census[I->def().id()].Defs.push_back(I.get());
      I->forEachUse([&](Reg R, sir::UseKind) {
        Census[R.id()].Uses.push_back(I.get());
      });
    }
  }
  return Census;
}

} // namespace

FpArgReport partition::passArgsInFpRegisters(sir::Module &M,
                                             ModuleRewrite &RW) {
  FpArgReport Report;

  // Index the partitioner's inserted copies for membership checks.
  std::unordered_set<const Instruction *> EntryCopies, CopyBacks;
  for (const auto &[F, FR] : RW.Reports) {
    (void)F;
    EntryCopies.insert(FR.CopyInstrs.begin(), FR.CopyInstrs.end());
    CopyBacks.insert(FR.CopyBackInstrs.begin(), FR.CopyBackInstrs.end());
  }

  // Call sites per callee name.
  struct Site {
    Function *Caller;
    Instruction *Call;
  };
  std::unordered_map<std::string, std::vector<Site>> Sites;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        if (I->op() == Opcode::Call)
          Sites[I->callee()].push_back(Site{F.get(), I.get()});

  for (const auto &CalleePtr : M.functions()) {
    Function &Callee = *CalleePtr;
    if (Callee.formals().empty())
      continue;
    auto SitesIt = Sites.find(Callee.name());
    if (SitesIt == Sites.end() || SitesIt->second.empty())
      continue; // Never called (e.g. main): nothing to gain.

    auto CalleeCensus = censusOf(Callee);

    for (size_t K = 0; K < Callee.formals().size(); ++K) {
      Reg Formal = Callee.formals()[K];
      if (Callee.regClass(Formal) != RegClass::Int)
        continue; // Already converted.

      // Callee condition: the formal's one and only consumer is the
      // entry cp_to_fp the advanced scheme inserted, and nothing
      // redefines it.
      const RegUsage &FU = CalleeCensus[Formal.id()];
      if (!FU.Defs.empty() || FU.Uses.size() != 1)
        continue;
      Instruction *EntryCopy = FU.Uses[0];
      if (EntryCopy->op() != Opcode::CpToFp || !EntryCopies.count(EntryCopy))
        continue;
      if (EntryCopy->parent() != Callee.entry())
        continue;
      Reg Shadow = EntryCopy->def();

      // Caller condition at every site: the argument register's single
      // definition is a copy-back of an FPa-resident value with a
      // single (static) definition of its own.
      struct Plan {
        Instruction *CopyBack;
        Reg FpSrc;
        Function *Caller;
      };
      std::vector<Plan> Plans;
      bool AllConvertible = true;
      for (const Site &S : SitesIt->second) {
        Reg ArgReg = S.Call->uses()[K];
        auto CallerCensus = censusOf(*S.Caller);
        const RegUsage &AU = CallerCensus[ArgReg.id()];
        if (AU.Defs.size() != 1 ||
            AU.Defs[0]->op() != Opcode::CpToInt ||
            !CopyBacks.count(AU.Defs[0])) {
          AllConvertible = false;
          break;
        }
        Reg FpSrc = AU.Defs[0]->uses()[0];
        if (CallerCensus[FpSrc.id()].Defs.size() != 1) {
          AllConvertible = false;
          break;
        }
        Plans.push_back(Plan{AU.Defs[0], FpSrc, S.Caller});
      }
      if (!AllConvertible || Plans.size() != SitesIt->second.size())
        continue;

      // Convert the slot.
      for (size_t SI = 0; SI < SitesIt->second.size(); ++SI) {
        const Site &S = SitesIt->second[SI];
        S.Call->uses()[K] = Plans[SI].FpSrc;
      }

      // Callee: the FP shadow becomes the formal; the entry copy dies.
      std::vector<Reg> NewFormals = Callee.formals();
      NewFormals[K] = Shadow;
      Callee.setFormals(NewFormals);
      Callee.entry()->erase(EntryCopy);
      auto &CalleeReport = RW.Reports[&Callee];
      CalleeReport.CopyInstrs.erase(
          std::remove(CalleeReport.CopyInstrs.begin(),
                      CalleeReport.CopyInstrs.end(), EntryCopy),
          CalleeReport.CopyInstrs.end());
      EntryCopies.erase(EntryCopy);
      ++Report.EntryCopiesRemoved;

      // Callers: drop copy-backs whose integer value now has no
      // consumers.
      for (const Plan &P : Plans) {
        auto Census = censusOf(*P.Caller); // Recompute after rewiring.
        Reg IntDef = P.CopyBack->def();
        if (!Census[IntDef.id()].Uses.empty())
          continue; // Still feeding another integer consumer.
        P.CopyBack->parent()->erase(P.CopyBack);
        auto &CallerReport = RW.Reports[P.Caller];
        CallerReport.CopyBackInstrs.erase(
            std::remove(CallerReport.CopyBackInstrs.begin(),
                        CallerReport.CopyBackInstrs.end(), P.CopyBack),
            CallerReport.CopyBackInstrs.end());
        CopyBacks.erase(P.CopyBack);
        ++Report.CopyBacksRemoved;
      }
      ++Report.ArgsConverted;

      // The census indexed instruction pointers we just deleted;
      // rebuild for the next formal slot.
      CalleeCensus = censusOf(Callee);
    }
  }

  M.renumber();
  return Report;
}
