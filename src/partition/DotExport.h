//===- partition/DotExport.h - Graphviz export of partitioned RDGs --------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a register dependence graph in Graphviz dot format, in the
/// visual language of the paper's Figures 3-6: split load/store halves
/// labeled [a]/[v], formal-parameter dummy nodes, and (when an
/// assignment is supplied) the FPa partition shaded with copy /
/// duplicate / copy-back annotations. Useful for debugging the
/// partitioners and regenerating paper-style figures.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_PARTITION_DOTEXPORT_H
#define FPINT_PARTITION_DOTEXPORT_H

#include "analysis/RDG.h"
#include "partition/Assignment.h"

#include <string>

namespace fpint {
namespace partition {

/// Renders \p G as a dot graph. If \p A is non-null, FPa nodes are
/// shaded and copy/dup/copy-back markers are appended to labels.
std::string toDot(const analysis::RDG &G, const Assignment *A = nullptr);

} // namespace partition
} // namespace fpint

#endif // FPINT_PARTITION_DOTEXPORT_H
