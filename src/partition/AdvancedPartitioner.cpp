//===- partition/AdvancedPartitioner.cpp - The paper's advanced scheme ----===//

#include "partition/AdvancedPartitioner.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <numeric>
#include <string>
#include <unordered_map>

using namespace fpint;
using namespace fpint::partition;
using analysis::NodeKind;
using analysis::RDG;

namespace {

/// True if the pinned node \p N also pins its entire backward slice.
/// Memory addresses and unsupported consumers need their producers in
/// integer registers; calls/returns instead take copy-backs (6.4), and
/// pinned pure definitions (formals, byte load values) have no register
/// ancestors to pin.
bool pinsBackwardSlice(const RDG &G, unsigned N) {
  const analysis::RDGNode &Node = G.node(N);
  switch (Node.Kind) {
  case NodeKind::LoadAddr:
  case NodeKind::StoreAddr:
    return true;
  case NodeKind::StoreVal:
    return pinnedToInt(G, N); // Byte stores keep integer producers.
  case NodeKind::Plain:
    return pinnedToInt(G, N); // Unsupported opcodes consume int regs.
  default:
    return false;
  }
}

class AdvancedImpl {
public:
  AdvancedImpl(const RDG &G, const analysis::BlockWeights &W,
               CostParams Params)
      : G(G), A(G), Cost(G, W, Params) {}

  Assignment run();

private:
  void initialAssignment();
  void phase1();
  void phase2();
  void balanceLoad();
  void markCopyBacks();
  void computeCopyDupSets();

  double lossOfMoving(const std::vector<unsigned> &P,
                      const std::vector<bool> &InP);
  void pushFpaChildren(unsigned N, std::deque<unsigned> &Queue,
                       std::vector<bool> &Queued);

  const RDG &G;
  Assignment A;
  CostModel Cost;
};

void AdvancedImpl::initialAssignment() {
  // Everything starts in FPa except the pinned nodes and the backward
  // closures of the slice-pinning consumers.
  for (unsigned N = 0; N < G.numNodes(); ++N)
    A.NodeSide[N] = pinnedToInt(G, N) ? Side::Int : Side::Fpa;

  std::vector<bool> Closure(G.numNodes(), false);
  for (unsigned N = 0; N < G.numNodes(); ++N)
    if (pinsBackwardSlice(G, N))
      G.backwardSlice(N, Closure);
  for (unsigned N = 0; N < G.numNodes(); ++N)
    if (Closure[N])
      A.NodeSide[N] = Side::Int;
}

void AdvancedImpl::pushFpaChildren(unsigned N, std::deque<unsigned> &Queue,
                                   std::vector<bool> &Queued) {
  for (unsigned S : G.node(N).Succs)
    if (A.isFpa(S) && !Queued[S]) {
      Queued[S] = true;
      Queue.push_back(S);
    }
}

double AdvancedImpl::lossOfMoving(const std::vector<unsigned> &P,
                                  const std::vector<bool> &InP) {
  double Loss = 0.0;
  for (unsigned V : P) {
    if (G.feedsCallOrRet(V)) {
      // Actual-parameter producers: moving them to INT removes the
      // copy-back they would otherwise need (Section 6.4).
      Loss -= Cost.copyingCost(V);
      continue;
    }
    Loss += Cost.execCount(V);
    // alpha(v): once INT, v must be copied/duplicated if it still has
    // FPa children outside P.
    bool FpaChildOutside = false;
    for (unsigned S : G.node(V).Succs)
      if (A.isFpa(S) && !InP[S])
        FpaChildOutside = true;
    if (FpaChildOutside)
      Loss += Cost.commCost(V);
  }

  // delta(q) over boundary parents of P: a parent whose FPa children all
  // lie inside P no longer needs its copy/duplicate.
  std::vector<bool> Seen(G.numNodes(), false);
  for (unsigned V : P) {
    for (unsigned Q : G.node(V).Preds) {
      if (A.isFpa(Q) || Seen[Q])
        continue;
      Seen[Q] = true;
      bool AllInsideP = true;
      bool AnyFpaChild = false;
      for (unsigned S : G.node(Q).Succs) {
        if (!A.isFpa(S))
          continue;
        AnyFpaChild = true;
        if (!InP[S])
          AllInsideP = false;
      }
      if (AnyFpaChild && AllInsideP)
        Loss -= Cost.commCost(Q);
    }
  }
  return Loss;
}

void AdvancedImpl::phase1() {
  Cost.recompute(A);

  std::deque<unsigned> Queue;
  std::vector<bool> Queued(G.numNodes(), false);
  for (unsigned N = 0; N < G.numNodes(); ++N)
    if (!A.isFpa(N))
      pushFpaChildren(N, Queue, Queued);
  // Also seed FPa nodes with no INT parents (e.g. load values feeding a
  // return): their copy-back cost can make moving them to INT a win.
  for (unsigned N = 0; N < G.numNodes(); ++N)
    if (A.isFpa(N) && G.feedsCallOrRet(N) && !Queued[N]) {
      Queued[N] = true;
      Queue.push_back(N);
    }

  // Safety valve: the worklist is monotone in practice (moves only
  // shrink FPa; deferrals walk forward), but RDG cycles could in theory
  // re-enqueue nodes, so bound the total work.
  uint64_t Budget = static_cast<uint64_t>(G.numNodes() + 1) * 64;

  std::vector<bool> InP;
  while (!Queue.empty() && Budget-- > 0) {
    unsigned U = Queue.front();
    Queue.pop_front();
    Queued[U] = false;
    if (!A.isFpa(U))
      continue;

    // P = FPa nodes in the backward slice of U.
    InP.assign(G.numNodes(), false);
    std::vector<bool> Slice;
    G.backwardSlice(U, Slice);
    std::vector<unsigned> P;
    for (unsigned N = 0; N < G.numNodes(); ++N)
      if (Slice[N] && A.isFpa(N)) {
        InP[N] = true;
        P.push_back(N);
      }

    double Loss = lossOfMoving(P, InP);
    if (Loss < 0.0) {
      for (unsigned N : P)
        A.NodeSide[N] = Side::Int;
      Cost.recompute(A);
      for (unsigned N : P)
        pushFpaChildren(N, Queue, Queued);
    } else if (Loss == 0.0) {
      // Not enough information; revisit when the children are examined.
      for (unsigned N : P)
        pushFpaChildren(N, Queue, Queued);
    }
  }
}

void AdvancedImpl::computeCopyDupSets() {
  Cost.recompute(A);

  // Boundary nodes: INT definitions with at least one FPa consumer.
  std::vector<unsigned> Work;
  for (unsigned N = 0; N < G.numNodes(); ++N) {
    if (A.isFpa(N))
      continue;
    bool HasFpaChild = false;
    for (unsigned S : G.node(N).Succs)
      HasFpaChild |= A.isFpa(S);
    if (!HasFpaChild)
      continue;
    assert(copyEligible(G, N) && "boundary node without a def");
    if (dupEligible(G, N) && Cost.preferDuplicate(N))
      A.Dup[N] = true;
    else
      A.Copy[N] = true;
    Work.push_back(N);
  }

  // Duplicates need their own INT parents available in FPa: close the
  // set (the prepass costs already priced this chain).
  while (!Work.empty()) {
    unsigned V = Work.back();
    Work.pop_back();
    if (!A.Dup[V])
      continue;
    for (unsigned U : G.node(V).Preds) {
      if (A.isFpa(U) || A.Copy[U] || A.Dup[U])
        continue;
      if (dupEligible(G, U) && Cost.preferDuplicate(U))
        A.Dup[U] = true;
      else
        A.Copy[U] = true;
      Work.push_back(U);
    }
  }
}

void AdvancedImpl::markCopyBacks() {
  for (unsigned N = 0; N < G.numNodes(); ++N) {
    A.CopyBack[N] = false;
    if (A.isFpa(N) && G.feedsCallOrRet(N))
      A.CopyBack[N] = true;
  }
}

void AdvancedImpl::phase2() {
  computeCopyDupSets();
  markCopyBacks();

  // Connected components of the "disconnected" graph: FPa-FPa edges plus
  // the attachment of each tentative copy/duplicate to the FPa (or
  // duplicated) consumers it serves. The INT originals stay outside.
  std::vector<unsigned> Parent(G.numNodes());
  std::iota(Parent.begin(), Parent.end(), 0u);
  std::function<unsigned(unsigned)> Find = [&](unsigned X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  auto Union = [&](unsigned X, unsigned Y) { Parent[Find(X)] = Find(Y); };

  auto InCommSet = [&](unsigned N) { return A.Copy[N] || A.Dup[N]; };
  for (unsigned N = 0; N < G.numNodes(); ++N) {
    for (unsigned S : G.node(N).Succs) {
      bool NIn = A.isFpa(N) || InCommSet(N);
      bool SIn = A.isFpa(S) || InCommSet(S);
      if (NIn && SIn)
        Union(N, S);
    }
  }

  // Profit per component holding at least one copy/duplicate.
  std::vector<double> Profit(G.numNodes(), 0.0);
  std::vector<bool> HasComm(G.numNodes(), false);
  for (unsigned N = 0; N < G.numNodes(); ++N) {
    unsigned Root = Find(N);
    if (A.isFpa(N)) {
      Profit[Root] += Cost.execCount(N);
      if (A.CopyBack[N]) {
        Profit[Root] -= Cost.copyingCost(N);
        // Copy-backs are communication too: components kept alive only
        // by call-argument/return-value copies must also justify
        // themselves (Section 6.4).
        HasComm[Root] = true;
      }
    }
    if (A.Copy[N]) {
      Profit[Root] -= Cost.copyingCost(N);
      HasComm[Root] = true;
    }
    if (A.Dup[N]) {
      Profit[Root] -= Cost.params().DupOverhead * Cost.execCount(N);
      HasComm[Root] = true;
    }
  }

  for (unsigned N = 0; N < G.numNodes(); ++N) {
    unsigned Root = Find(N);
    if (!HasComm[Root] || Profit[Root] >= 0.0)
      continue;
    // Unprofitable: move the component's FPa nodes to INT and drop its
    // copies and duplicates.
    if (A.isFpa(N))
      A.NodeSide[N] = Side::Int;
    A.Copy[N] = false;
    A.Dup[N] = false;
  }
  markCopyBacks();
}

void AdvancedImpl::balanceLoad() {
  const double Cap = Cost.params().FpaShareCap;
  if (Cap >= 1.0)
    return;

  // Weighted share of the instruction stream assigned to FPa.
  double TotalWeight = 0.0, FpaWeight = 0.0;
  for (unsigned N = 0; N < G.numNodes(); ++N) {
    TotalWeight += Cost.execCount(N);
    if (A.isFpa(N))
      FpaWeight += Cost.execCount(N);
  }
  if (TotalWeight == 0.0 || FpaWeight / TotalWeight <= Cap)
    return;

  // Group the FPa side into components (same construction as Phase 2).
  std::vector<unsigned> Parent(G.numNodes());
  std::iota(Parent.begin(), Parent.end(), 0u);
  std::function<unsigned(unsigned)> Find = [&](unsigned X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  auto InGroup = [&](unsigned N) {
    return A.isFpa(N) || A.Copy[N] || A.Dup[N];
  };
  for (unsigned N = 0; N < G.numNodes(); ++N)
    for (unsigned S : G.node(N).Succs)
      if (InGroup(N) && InGroup(S))
        Parent[Find(N)] = Find(S);

  struct Group {
    double Benefit = 0.0; ///< Weighted FPa instructions gained.
    double Overhead = 0.0;
    std::vector<unsigned> Nodes;
  };
  std::unordered_map<unsigned, Group> Groups;
  for (unsigned N = 0; N < G.numNodes(); ++N) {
    if (!InGroup(N))
      continue;
    Group &Grp = Groups[Find(N)];
    Grp.Nodes.push_back(N);
    if (A.isFpa(N)) {
      Grp.Benefit += Cost.execCount(N);
      if (A.CopyBack[N])
        Grp.Overhead += Cost.copyingCost(N);
    }
    if (A.Copy[N])
      Grp.Overhead += Cost.copyingCost(N);
    if (A.Dup[N])
      Grp.Overhead += Cost.params().DupOverhead * Cost.execCount(N);
  }

  // Evict in ascending net-profit order until the cap is met.
  std::vector<Group *> Order;
  Order.reserve(Groups.size());
  for (auto &[Root, Grp] : Groups) {
    (void)Root;
    Order.push_back(&Grp);
  }
  std::sort(Order.begin(), Order.end(), [](const Group *L, const Group *R) {
    return (L->Benefit - L->Overhead) < (R->Benefit - R->Overhead);
  });
  for (Group *Grp : Order) {
    if (FpaWeight / TotalWeight <= Cap)
      break;
    for (unsigned N : Grp->Nodes) {
      if (A.isFpa(N)) {
        FpaWeight -= Cost.execCount(N);
        A.NodeSide[N] = Side::Int;
      }
      A.Copy[N] = false;
      A.Dup[N] = false;
    }
  }
  markCopyBacks();
}

Assignment AdvancedImpl::run() {
  initialAssignment();
  phase1();
  phase2();
  balanceLoad();
  return std::move(A);
}

} // namespace

Assignment partition::partitionAdvanced(const RDG &G,
                                        const analysis::BlockWeights &W,
                                        CostParams Params) {
  return AdvancedImpl(G, W, Params).run();
}

std::vector<std::string> partition::validateAssignment(const Assignment &A) {
  std::vector<std::string> Errors;
  const RDG &G = *A.G;
  auto NodeDesc = [&](unsigned N) {
    const analysis::RDGNode &Node = G.node(N);
    std::string S = "node " + std::to_string(N);
    if (Node.I)
      S += " (" + std::string(sir::opcodeName(Node.I->op())) + ")";
    return S;
  };

  for (unsigned N = 0; N < G.numNodes(); ++N) {
    if (A.isFpa(N) && pinnedToInt(G, N))
      Errors.push_back(NodeDesc(N) + ": pinned node assigned to FPa");
    if (A.Dup[N] && !dupEligible(G, N))
      Errors.push_back(NodeDesc(N) + ": ineligible node duplicated");
    if ((A.Copy[N] || A.Dup[N]) && A.isFpa(N))
      Errors.push_back(NodeDesc(N) + ": FPa node carries a copy/dup");
    if (A.CopyBack[N] && !A.isFpa(N))
      Errors.push_back(NodeDesc(N) + ": INT node carries a copy-back");

    if (A.isFpa(N) || A.Dup[N]) {
      // All INT parents must communicate.
      for (unsigned U : G.node(N).Preds)
        if (!A.isFpa(U) && !A.Copy[U] && !A.Dup[U])
          Errors.push_back(NodeDesc(N) + ": INT parent " + NodeDesc(U) +
                           " without copy/duplicate");
    }
    if (A.isFpa(N) && G.feedsCallOrRet(N) && !A.CopyBack[N])
      Errors.push_back(NodeDesc(N) +
                       ": feeds call/return without a copy-back");
    if (A.isFpa(N)) {
      // FPa values may only flow to FPa consumers, copy-backs aside.
      for (unsigned S : G.node(N).Succs) {
        NodeKind K = G.node(S).Kind;
        bool CallRet = K == NodeKind::CallNode || K == NodeKind::RetNode;
        if (!A.isFpa(S) && !CallRet)
          Errors.push_back(NodeDesc(N) + ": FPa value flows to INT " +
                           NodeDesc(S));
      }
    }
  }
  return Errors;
}
