//===- regalloc/Liveness.h - Live-variable analysis -----------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward live-variable dataflow over a function, feeding the linear
/// scan register allocator's live intervals. Registers of both classes
/// are tracked uniformly (they draw from disjoint architectural files).
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_REGALLOC_LIVENESS_H
#define FPINT_REGALLOC_LIVENESS_H

#include "analysis/AnalysisManager.h"
#include "analysis/CFG.h"
#include "sir/IR.h"

#include <memory>
#include <vector>

namespace fpint {
namespace regalloc {

/// Per-block live-in/live-out register sets (bit per register id).
class Liveness {
public:
  Liveness(const sir::Function &F, const analysis::CFG &Cfg);

  bool liveIn(unsigned Block, sir::Reg R) const {
    return In[Block][R.id()];
  }
  bool liveOut(unsigned Block, sir::Reg R) const {
    return Out[Block][R.id()];
  }

  const std::vector<bool> &liveInSet(unsigned Block) const {
    return In[Block];
  }
  const std::vector<bool> &liveOutSet(unsigned Block) const {
    return Out[Block];
  }

private:
  std::vector<std::vector<bool>> In;
  std::vector<std::vector<bool>> Out;
};

/// AnalysisManager adapter for Liveness (consults CFGAnalysis). Lives
/// here rather than in analysis/ because liveness is a regalloc-layer
/// concern and the analysis library must not depend upward.
struct LivenessAnalysis {
  using Result = Liveness;
  static const analysis::AnalysisKey *id();
  static const char *name() { return "liveness"; }
  static std::unique_ptr<Result> run(const sir::Function &F,
                                     analysis::AnalysisManager &AM);
};

} // namespace regalloc
} // namespace fpint

#endif // FPINT_REGALLOC_LIVENESS_H
