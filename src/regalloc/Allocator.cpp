//===- regalloc/Allocator.cpp - Backend registry and module driver --------===//

#include "regalloc/Allocator.h"

#include <chrono>

using namespace fpint;
using namespace fpint::regalloc;

AllocatorRegistry &AllocatorRegistry::global() {
  // Pre-populated deterministically (no cross-TU static-init games):
  // the factories are defined next to each backend implementation.
  static AllocatorRegistry *R = [] {
    auto *Reg = new AllocatorRegistry();
    Reg->registerAllocator("regalloc", createIncumbentAllocator);
    Reg->registerAllocator("regalloc-linear", createLinearScanAllocator);
    return Reg;
  }();
  return *R;
}

void AllocatorRegistry::registerAllocator(const std::string &Name,
                                          Factory F) {
  Factories[Name] = std::move(F);
}

std::unique_ptr<Allocator>
AllocatorRegistry::create(const std::string &Name) const {
  auto It = Factories.find(Name);
  if (It == Factories.end())
    return nullptr;
  return It->second();
}

bool AllocatorRegistry::contains(const std::string &Name) const {
  return Factories.count(Name) != 0;
}

std::vector<std::string> AllocatorRegistry::names() const {
  std::vector<std::string> Out;
  for (const auto &KV : Factories)
    Out.push_back(KV.first);
  return Out;
}

ModuleAlloc regalloc::allocateModuleWith(const std::string &Name,
                                         sir::Module &M,
                                         analysis::AnalysisManager *AM) {
  ModuleAlloc Result;
  const std::string &Effective = Name.empty() ? defaultAllocatorName() : Name;
  std::unique_ptr<Allocator> Alloc =
      AllocatorRegistry::global().create(Effective);
  if (!Alloc) {
    Result.Errors.push_back("unknown register allocator '" + Effective + "'");
    return Result;
  }
  Result.AllocatorName = Alloc->name();
  for (const auto &F : M.functions()) {
    std::string Error;
    // Lowering and rewriting mutate F around the analysis fetches, so
    // bracket each function with invalidations: stale entries from
    // earlier passes are dropped going in, and the allocator's own
    // CFG / liveness / live-interval results are dropped going out.
    if (AM)
      AM->invalidateFunction(*F);
    auto T0 = std::chrono::steady_clock::now();
    bool Ok = Alloc->runOnFunction(*F, Result, AM, Error);
    auto T1 = std::chrono::steady_clock::now();
    if (!Ok)
      Result.Errors.push_back(Error);
    auto It = Result.Funcs.find(F.get());
    if (It != Result.Funcs.end())
      It->second.WallMs =
          std::chrono::duration<double, std::milli>(T1 - T0).count();
    if (AM)
      AM->invalidateFunction(*F);
  }
  return Result;
}

ModuleAlloc regalloc::allocateModule(sir::Module &M,
                                     analysis::AnalysisManager *AM) {
  return allocateModuleWith("", M, AM);
}
