//===- regalloc/LiveIntervals.cpp - Per-register live intervals -----------===//

#include "regalloc/LiveIntervals.h"

#include <algorithm>

using namespace fpint;
using namespace fpint::regalloc;
using sir::Instruction;
using sir::Opcode;
using sir::Reg;

LiveIntervals::LiveIntervals(const sir::Function &F,
                             const analysis::CFG &Cfg,
                             const Liveness &Live) {
  // Linear positions (2 apart so "before" and "after" slots exist),
  // assigned in CFG block order -- the same numbering every allocator
  // historically computed inline.
  BlockStarts.resize(Cfg.numBlocks());
  BlockEnds.resize(Cfg.numBlocks());
  InstrPos.resize(F.numInstrIds());
  unsigned Pos = 0;
  for (unsigned B = 0; B < Cfg.numBlocks(); ++B) {
    BlockStarts[B] = Pos;
    for (const auto &I : F.blocks()[B]->instructions()) {
      InstrPos[I->id()] = Pos;
      if (I->op() == Opcode::Call)
        CallPositions.push_back(Pos);
      Pos += 2;
    }
    BlockEnds[B] = Pos;
  }

  Ranges.assign(F.numRegs(), Range());
  F.forEachInstr([&](const Instruction &I) {
    if (I.def().isValid())
      Ranges[I.def().id()].Defined = true;
    I.forEachUse([&](Reg R, sir::UseKind) { Ranges[R.id()].Used = true; });
  });

  auto Extend = [&](Reg R, unsigned At) {
    Range &Rg = Ranges[R.id()];
    if (Rg.Start == ~0u) {
      Rg.Start = Rg.End = At;
      return;
    }
    Rg.Start = std::min(Rg.Start, At);
    Rg.End = std::max(Rg.End, At);
  };

  for (unsigned B = 0; B < Cfg.numBlocks(); ++B) {
    for (unsigned R = 1; R < F.numRegs(); ++R) {
      if (Live.liveInSet(B)[R])
        Extend(Reg(R), BlockStarts[B]);
      if (Live.liveOutSet(B)[R])
        Extend(Reg(R), BlockEnds[B]);
    }
    for (const auto &I : F.blocks()[B]->instructions()) {
      unsigned P = InstrPos[I->id()];
      I->forEachUse([&](Reg R, sir::UseKind) { Extend(R, P); });
      if (I->def().isValid())
        Extend(I->def(), P);
    }
  }

  // CallPositions is ascending by construction, so "a call strictly
  // inside (Start, End)" is one binary search per register.
  for (unsigned R = 1; R < F.numRegs(); ++R) {
    Range &Rg = Ranges[R];
    if (Rg.Start == ~0u)
      continue;
    auto It = std::lower_bound(CallPositions.begin(), CallPositions.end(),
                               Rg.Start + 1);
    Rg.CrossesCall = It != CallPositions.end() && *It < Rg.End;
  }
}

const analysis::AnalysisKey *LiveIntervalsAnalysis::id() {
  static analysis::AnalysisKey Key;
  return &Key;
}

std::unique_ptr<LiveIntervals>
LiveIntervalsAnalysis::run(const sir::Function &F,
                           analysis::AnalysisManager &AM) {
  const analysis::CFG &Cfg = AM.getResult<analysis::CFGAnalysis>(F);
  const Liveness &Live = AM.getResult<LivenessAnalysis>(F);
  return std::make_unique<LiveIntervals>(F, Cfg, Live);
}
