//===- regalloc/LinearScan.cpp - Poletto-Sarkar linear-scan backend -------===//
//
// The "regalloc-linear" backend: linear scan exactly in the shape of
// Poletto & Sarkar, "Linear Scan Register Allocation" (TOPLAS 1999).
// Differences from the incumbent's scan policy:
//
//  * the active list is kept sorted by increasing end point, so
//    expiry pops from the front and the spill candidate ("spill the
//    interval that ends last", the paper's heuristic) is found from
//    the back instead of by a full sweep;
//  * free registers are round-robin FIFO queues (released registers
//    go to the back), the classic formulation, instead of the
//    incumbent's lowest-index-first rescan.
//
// The FPa-partition and calling-convention constraints are identical:
// INT and FP files are scanned independently (FPa operands arrive as
// RegClass::Fp), and an interval live across a call may only take a
// callee-saved register or spill. Everything outside the scan -- the
// lowering, the LiveIntervals input, the spill/reload rewrite, the
// callee-save prologue/epilogue -- is the shared FuncAllocBase
// machinery, so the two backends differ only in assignment policy.
//
//===----------------------------------------------------------------------===//

#include "regalloc/AllocBase.h"
#include "regalloc/Allocator.h"

#include <algorithm>
#include <deque>

using namespace fpint;
using namespace fpint::regalloc;
using sir::RegClass;

namespace {

class LinearScanFuncAllocator final : public FuncAllocBase {
public:
  using FuncAllocBase::FuncAllocBase;

private:
  void scan(RegClass RC) override;
};

void LinearScanFuncAllocator::scan(RegClass RC) {
  // Round-robin free pools, seeded in ascending index order.
  std::deque<unsigned> CallerFree, CalleeFree;
  for (unsigned I = 0; I < ArchLayout::NumCaller; ++I)
    CallerFree.push_back(ArchLayout::CallerBase + I);
  for (unsigned I = 0; I < ArchLayout::NumCallee; ++I)
    CalleeFree.push_back(ArchLayout::CalleeBase + I);

  // Active intervals sorted by increasing End (ties keep insertion
  // order); the paper's ExpireOldIntervals pops from the front.
  std::vector<unsigned> Active;
  auto EndOf = [&](unsigned IvIdx) { return Intervals[IvIdx].End; };
  auto Insert = [&](unsigned IvIdx) {
    auto It = std::upper_bound(Active.begin(), Active.end(), IvIdx,
                               [&](unsigned L, unsigned R) {
                                 return EndOf(L) < EndOf(R);
                               });
    Active.insert(It, IvIdx);
  };
  auto Release = [&](unsigned ArchIdx) {
    if (isCalleeIdx(ArchIdx))
      CalleeFree.push_back(ArchIdx);
    else
      CallerFree.push_back(ArchIdx);
  };
  auto Take = [&](std::deque<unsigned> &Pool) -> unsigned {
    if (Pool.empty())
      return ~0u;
    unsigned Idx = Pool.front();
    Pool.pop_front();
    if (isCalleeIdx(Idx))
      markCalleeUsed(RC, Idx);
    return Idx;
  };

  for (unsigned IvIdx = 0; IvIdx < Intervals.size(); ++IvIdx) {
    Interval &Iv = Intervals[IvIdx];
    if (Iv.RC != RC)
      continue;

    // ExpireOldIntervals: same boundary rule as the incumbent (end at
    // or before this start expires; reads precede the write at equal
    // positions, so sharing is safe).
    while (!Active.empty() && EndOf(Active.front()) <= Iv.Start) {
      Release(Intervals[Active.front()].ArchIdx);
      Active.erase(Active.begin());
    }

    unsigned Got = Iv.CrossesCall
                       ? Take(CalleeFree)
                       : (CallerFree.empty() ? Take(CalleeFree)
                                             : Take(CallerFree));
    if (Got != ~0u) {
      Iv.ArchIdx = Got;
      Insert(IvIdx);
      continue;
    }

    // SpillAtInterval: the spill candidate is the compatible active
    // interval that ends last -- the first one from the back of the
    // sorted list (for a call-crossing interval, the last one holding
    // a callee-saved register).
    size_t VictimPos = Active.size();
    for (size_t A = Active.size(); A-- > 0;) {
      if (!Iv.CrossesCall || isCalleeIdx(Intervals[Active[A]].ArchIdx)) {
        VictimPos = A;
        break;
      }
    }
    if (VictimPos != Active.size() &&
        EndOf(Active[VictimPos]) > Iv.End) {
      Interval &Victim = Intervals[Active[VictimPos]];
      Iv.ArchIdx = Victim.ArchIdx;
      if (isCalleeIdx(Iv.ArchIdx))
        markCalleeUsed(RC, Iv.ArchIdx);
      spillInterval(Victim);
      Victim.ArchIdx = ~0u;
      Active.erase(Active.begin() + static_cast<long>(VictimPos));
      Insert(IvIdx);
    } else {
      spillInterval(Iv);
    }
  }
}

class LinearScanAllocator final : public Allocator {
public:
  const char *name() const override { return "regalloc-linear"; }

  bool runOnFunction(sir::Function &F, ModuleAlloc &Out,
                     analysis::AnalysisManager *AM,
                     std::string &Error) override {
    LinearScanFuncAllocator Alloc(F, Out, AM);
    return Alloc.run(Error);
  }
};

} // namespace

std::unique_ptr<Allocator> regalloc::createLinearScanAllocator() {
  return std::make_unique<LinearScanAllocator>();
}
