//===- regalloc/AllocBase.cpp - Shared per-function allocator machinery ---===//

#include "regalloc/AllocBase.h"

#include "analysis/CFG.h"
#include "regalloc/Liveness.h"

#include <algorithm>
#include <cassert>
#include <memory>

using namespace fpint;
using namespace fpint::regalloc;
using sir::BasicBlock;
using sir::Instruction;
using sir::MemOperand;
using sir::Opcode;
using sir::Reg;
using sir::RegClass;

Reg FuncAllocBase::archReg(RegClass RC, unsigned Idx) {
  auto Key = std::make_pair(RC, Idx);
  auto It = ArchRegs.find(Key);
  if (It != ArchRegs.end())
    return It->second;
  Reg R = F.newReg(RC);
  ArchRegs.emplace(Key, R);
  return R;
}

void FuncAllocBase::lowerCallingConvention() {
  // Formals: the incoming values arrive in $a0..$aN; copy them into the
  // original formal registers at entry, then retarget the formal list.
  std::vector<Reg> OldFormals = F.formals();
  std::vector<Reg> NewFormals;
  std::vector<std::unique_ptr<Instruction>> EntryMoves;
  for (unsigned A = 0; A < OldFormals.size(); ++A) {
    // FP-passed arguments (Section 6.6 extension) travel in the FP
    // file's argument registers and move with fmove.
    RegClass RC = F.regClass(OldFormals[A]);
    Reg ArgR = archReg(RC, A);
    NewFormals.push_back(ArgR);
    auto Move = std::make_unique<Instruction>(
        RC == RegClass::Fp ? Opcode::FMove : Opcode::Move);
    Move->setDef(OldFormals[A]);
    Move->uses() = {ArgR};
    EntryMoves.push_back(std::move(Move));
  }
  BasicBlock *Entry = F.entry();
  for (size_t A = EntryMoves.size(); A-- > 0;)
    Entry->insertAt(0, std::move(EntryMoves[A]));

  F.setFormals(NewFormals);

  // Call sites: marshal arguments through $a regs and results through
  // $v0.
  for (const auto &BB : F.blocks()) {
    auto &Instrs = BB->instructions();
    for (size_t Pos = 0; Pos < Instrs.size(); ++Pos) {
      Instruction &I = *Instrs[Pos];
      if (I.op() == Opcode::Call) {
        for (size_t A = 0; A < I.uses().size(); ++A) {
          RegClass RC = F.regClass(I.uses()[A]);
          Reg ArgR = archReg(RC, static_cast<unsigned>(A));
          auto Move = std::make_unique<Instruction>(
              RC == RegClass::Fp ? Opcode::FMove : Opcode::Move);
          Move->setDef(ArgR);
          Move->uses() = {I.uses()[A]};
          BB->insertAt(Pos, std::move(Move));
          ++Pos;
          I.uses()[A] = ArgR;
        }
        if (I.def().isValid()) {
          Reg RetR = archReg(RegClass::Int, ArchLayout::RetReg);
          auto Move = std::make_unique<Instruction>(Opcode::Move);
          Move->setDef(I.def());
          Move->uses() = {RetR};
          I.setDef(RetR);
          BB->insertAt(Pos + 1, std::move(Move));
          ++Pos;
        }
        continue;
      }
      if (I.op() == Opcode::Ret && !I.uses().empty()) {
        Reg RetR = archReg(RegClass::Int, ArchLayout::RetReg);
        auto Move = std::make_unique<Instruction>(Opcode::Move);
        Move->setDef(RetR);
        Move->uses() = {I.uses()[0]};
        BB->insertAt(Pos, std::move(Move));
        ++Pos;
        I.uses()[0] = RetR;
      }
    }
  }
  F.renumber();
}

void FuncAllocBase::buildIntervals() {
  // Calling-convention lowering just mutated F, so any cached analyses
  // are stale; the caller invalidated them, making this fetch a clean
  // miss over the lowered IR (with LiveIntervals pulling CFG and
  // Liveness through the same manager, so the per-pass cache counters
  // attribute every lookup to the running regalloc pass).
  std::unique_ptr<analysis::CFG> LocalCfg;
  std::unique_ptr<Liveness> LocalLive;
  std::unique_ptr<LiveIntervals> LocalLI;
  const LiveIntervals *LI;
  if (AM) {
    LI = &AM->getResult<LiveIntervalsAnalysis>(F);
  } else {
    LocalCfg = std::make_unique<analysis::CFG>(F);
    LocalLive = std::make_unique<Liveness>(F, *LocalCfg);
    LocalLI = std::make_unique<LiveIntervals>(F, *LocalCfg, *LocalLive);
    LI = LocalLI.get();
  }

  IsPrecolored.assign(F.numRegs(), false);
  for (const auto &[Key, R] : ArchRegs)
    IsPrecolored[R.id()] = true;

  // The analysis covers every register; which of them are allocatable
  // is policy. Precolored registers are the architectural vregs the
  // lowering introduced; never-defined registers read as zero and are
  // rewritten to the zero register instead of occupying an interval.
  NeverDefined.assign(F.numRegs(), false);
  for (unsigned R = 1; R < F.numRegs(); ++R) {
    const LiveIntervals::Range &Rg = LI->range(Reg(R));
    NeverDefined[R] = Rg.Used && !Rg.Defined && !IsPrecolored[R];
  }

  Intervals.clear();
  for (unsigned R = 1; R < F.numRegs(); ++R) {
    if (IsPrecolored[R] || NeverDefined[R])
      continue;
    const LiveIntervals::Range &Rg = LI->range(Reg(R));
    if (Rg.Start == ~0u)
      continue;
    Intervals.push_back(Interval{Reg(R), F.regClass(Reg(R)), Rg.Start,
                                 Rg.End, Rg.CrossesCall, ~0u, false});
  }

  std::sort(Intervals.begin(), Intervals.end(),
            [](const Interval &A, const Interval &B) {
              if (A.Start != B.Start)
                return A.Start < B.Start;
              return A.R < B.R;
            });
  IntervalOf.assign(F.numRegs(), ~0u);
  for (unsigned I = 0; I < Intervals.size(); ++I)
    IntervalOf[Intervals[I].R.id()] = I;

  CalleeUsed[0].assign(ArchLayout::NumCallee, false);
  CalleeUsed[1].assign(ArchLayout::NumCallee, false);
}

void FuncAllocBase::rewrite() {
  struct PendingInsert {
    BasicBlock *BB;
    size_t Pos; ///< Insert before this position.
    size_t Seq;
    std::unique_ptr<Instruction> I;
  };
  std::vector<PendingInsert> Inserts;

  auto SpillLoad = [&](Reg Scratch, unsigned Slot) {
    auto L = std::make_unique<Instruction>(Opcode::Lw);
    L->setDef(Scratch);
    L->mem() = MemOperand::frame(static_cast<int32_t>(Slot * 4));
    return L;
  };
  auto SpillStore = [&](Reg Scratch, unsigned Slot) {
    auto S = std::make_unique<Instruction>(Opcode::Sw);
    S->uses() = {Scratch};
    S->mem() = MemOperand::frame(static_cast<int32_t>(Slot * 4));
    return S;
  };

  for (const auto &BB : F.blocks()) {
    auto &Instrs = BB->instructions();
    for (size_t Pos = 0; Pos < Instrs.size(); ++Pos) {
      Instruction &I = *Instrs[Pos];

      // Per-instruction scratch assignment for spilled registers.
      std::map<uint32_t, Reg> ScratchOf;
      unsigned NextScratch[2] = {0, 0};
      auto ScratchFor = [&](Reg R) {
        auto It = ScratchOf.find(R.id());
        if (It != ScratchOf.end())
          return It->second;
        RegClass RC = F.regClass(R);
        unsigned &N = NextScratch[RC == RegClass::Fp];
        assert(N < ArchLayout::NumScratch && "out of spill scratch regs");
        Reg S = archReg(RC, ArchLayout::ScratchBase + N++);
        ScratchOf.emplace(R.id(), S);
        return S;
      };

      auto MapUse = [&](Reg &R) {
        if (IsPrecolored[R.id()])
          return;
        if (NeverDefined[R.id()]) {
          R = archReg(F.regClass(R), ZeroRegIndex);
          return;
        }
        unsigned IvIdx = IntervalOf[R.id()];
        assert(IvIdx != ~0u && "use of register without interval");
        const Interval &Iv = Intervals[IvIdx];
        if (!Iv.Spilled) {
          R = archReg(Iv.RC, Iv.ArchIdx);
          return;
        }
        Reg S = ScratchFor(R);
        Inserts.push_back(PendingInsert{
            BB.get(), Pos, Inserts.size(),
            SpillLoad(S, SpillSlotOf[R.id()])});
        ++Result.SpillCode;
        ++Result.SpillLoads;
        R = S;
      };

      for (Reg &U : I.uses())
        MapUse(U);
      if (I.mem().Base.isValid())
        MapUse(I.mem().Base);

      if (I.def().isValid() && !IsPrecolored[I.def().id()]) {
        Reg D = I.def();
        unsigned IvIdx = IntervalOf[D.id()];
        assert(IvIdx != ~0u && "def of register without interval");
        const Interval &Iv = Intervals[IvIdx];
        if (!Iv.Spilled) {
          I.setDef(archReg(Iv.RC, Iv.ArchIdx));
        } else {
          Reg S = ScratchFor(D);
          I.setDef(S);
          Inserts.push_back(PendingInsert{
              BB.get(), Pos + 1, Inserts.size(),
              SpillStore(S, SpillSlotOf[D.id()])});
          ++Result.SpillCode;
          ++Result.SpillStores;
        }
      }
    }
  }

  std::stable_sort(Inserts.begin(), Inserts.end(),
                   [](const PendingInsert &L, const PendingInsert &R) {
                     if (L.BB != R.BB)
                       return L.BB < R.BB;
                     if (L.Pos != R.Pos)
                       return L.Pos > R.Pos;
                     return L.Seq > R.Seq;
                   });
  for (auto &Ins : Inserts)
    Ins.BB->insertAt(Ins.Pos, std::move(Ins.I));
}

void FuncAllocBase::insertCalleeSaves() {
  // Allocate save slots for used callee-saved registers and insert the
  // prologue stores / epilogue reloads.
  std::vector<std::pair<Reg, unsigned>> Saves; // (arch reg, slot)
  for (unsigned ClassIdx = 0; ClassIdx < 2; ++ClassIdx) {
    RegClass RC = ClassIdx ? RegClass::Fp : RegClass::Int;
    for (unsigned I = 0; I < ArchLayout::NumCallee; ++I) {
      if (!CalleeUsed[ClassIdx][I])
        continue;
      Reg R = archReg(RC, ArchLayout::CalleeBase + I);
      Saves.emplace_back(R, NextSlot++);
      if (ClassIdx)
        ++Result.CalleeSavedUsedFp;
      else
        ++Result.CalleeSavedUsedInt;
    }
  }
  if (Saves.empty())
    return;

  BasicBlock *Entry = F.entry();
  for (size_t S = Saves.size(); S-- > 0;) {
    auto Store = std::make_unique<Instruction>(Opcode::Sw);
    Store->uses() = {Saves[S].first};
    Store->mem() = MemOperand::frame(static_cast<int32_t>(Saves[S].second * 4));
    Entry->insertAt(0, std::move(Store));
    ++Result.SpillCode;
    ++Result.CalleeSaveStores;
  }
  for (const auto &BB : F.blocks()) {
    auto &Instrs = BB->instructions();
    for (size_t Pos = 0; Pos < Instrs.size(); ++Pos) {
      if (Instrs[Pos]->op() != Opcode::Ret)
        continue;
      for (const auto &[R, Slot] : Saves) {
        auto Load = std::make_unique<Instruction>(Opcode::Lw);
        Load->setDef(R);
        Load->mem() = MemOperand::frame(static_cast<int32_t>(Slot * 4));
        BB->insertAt(Pos, std::move(Load));
        ++Pos;
        ++Result.SpillCode;
        ++Result.CalleeSaveRestores;
      }
    }
  }
}

void FuncAllocBase::finish() {
  F.setFrameWords(std::max(F.frameWords(), NextSlot));
  F.setAllocated(true);
  F.renumber();

  Result.SpillSlots = NextSlot - BaseSlots;
  Result.ArchIndex.assign(F.numRegs(), ~0u);
  for (const auto &[Key, R] : ArchRegs)
    Result.ArchIndex[R.id()] = Key.second;
  Out.Funcs.emplace(&F, std::move(Result));
}

bool FuncAllocBase::run(std::string &Error) {
  if (F.formals().size() > ArchLayout::NumArgRegs) {
    Error = F.name() + ": more than " +
            std::to_string(ArchLayout::NumArgRegs) + " formals";
    return false;
  }
  // Spill slots start beyond any frame slots the source code already
  // addresses with [frame+N].
  NextSlot = BaseSlots = F.frameWords();
  lowerCallingConvention();
  SpillSlotOf.assign(F.numRegs(), ~0u);
  buildIntervals();
  scan(RegClass::Int);
  scan(RegClass::Fp);
  rewrite();
  insertCalleeSaves();
  finish();
  return true;
}
