//===- regalloc/Liveness.cpp - Live-variable analysis ---------------------===//

#include "regalloc/Liveness.h"

#include <memory>

using namespace fpint;
using namespace fpint::regalloc;
using sir::Reg;

const analysis::AnalysisKey *LivenessAnalysis::id() {
  static analysis::AnalysisKey Key;
  return &Key;
}

std::unique_ptr<Liveness>
LivenessAnalysis::run(const sir::Function &F, analysis::AnalysisManager &AM) {
  const analysis::CFG &Cfg = AM.getResult<analysis::CFGAnalysis>(F);
  return std::make_unique<Liveness>(F, Cfg);
}

Liveness::Liveness(const sir::Function &F, const analysis::CFG &Cfg) {
  const unsigned NumBlocks = Cfg.numBlocks();
  const unsigned NumRegs = F.numRegs();
  In.assign(NumBlocks, std::vector<bool>(NumRegs, false));
  Out.assign(NumBlocks, std::vector<bool>(NumRegs, false));

  // Per-block USE (upward exposed) and DEF sets.
  std::vector<std::vector<bool>> Use(NumBlocks,
                                     std::vector<bool>(NumRegs, false));
  std::vector<std::vector<bool>> Def(NumBlocks,
                                     std::vector<bool>(NumRegs, false));
  for (unsigned B = 0; B < NumBlocks; ++B) {
    for (const auto &I : F.blocks()[B]->instructions()) {
      I->forEachUse([&](Reg R, sir::UseKind) {
        if (!Def[B][R.id()])
          Use[B][R.id()] = true;
      });
      if (I->def().isValid())
        Def[B][I->def().id()] = true;
    }
  }

  // Iterate to fixpoint (backward problem; post order would converge
  // faster, but functions are small).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = NumBlocks; B-- > 0;) {
      std::vector<bool> NewOut(NumRegs, false);
      for (unsigned S : Cfg.successors(B))
        for (unsigned R = 0; R < NumRegs; ++R)
          if (In[S][R])
            NewOut[R] = true;
      std::vector<bool> NewIn = Use[B];
      for (unsigned R = 0; R < NumRegs; ++R)
        if (NewOut[R] && !Def[B][R])
          NewIn[R] = true;
      if (NewOut != Out[B] || NewIn != In[B]) {
        Out[B] = std::move(NewOut);
        In[B] = std::move(NewIn);
        Changed = true;
      }
    }
  }
}
