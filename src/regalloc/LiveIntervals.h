//===- regalloc/LiveIntervals.h - Per-register live intervals -------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linearized live intervals in the Poletto & Sarkar sense: every
/// instruction gets a position (2 apart so "before" and "after" slots
/// exist), and every register gets the [Start, End] hull of the
/// positions where it is used, defined, or live across a block
/// boundary (live-in at the block's start position, live-out at its
/// end position). Call sites are recorded so allocators can classify
/// intervals that are live across a call.
///
/// This is the shared input of every register allocator (see
/// docs/REGALLOC.md): the incumbent and the linear-scan backend both
/// consume one LiveIntervals result, either through the
/// AnalysisManager ("live-intervals", dependency-linked to "cfg" and
/// "liveness") or built locally when no manager is available.
///
/// The analysis is allocator-neutral: it covers *every* register id,
/// including ones an allocator will treat as precolored or
/// never-defined -- filtering those is an allocation policy, not an
/// analysis fact. A register with no events at all keeps the
/// Start == ~0u sentinel.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_REGALLOC_LIVEINTERVALS_H
#define FPINT_REGALLOC_LIVEINTERVALS_H

#include "analysis/AnalysisManager.h"
#include "regalloc/Liveness.h"
#include "sir/IR.h"

#include <memory>
#include <vector>

namespace fpint {
namespace regalloc {

/// Per-register linearized live ranges over one function.
class LiveIntervals {
public:
  /// The [Start, End] hull of one register's events. Start stays ~0u
  /// for a register that is never referenced and never live.
  struct Range {
    unsigned Start = ~0u;
    unsigned End = 0;
    /// Some call position lies strictly inside (Start, End).
    bool CrossesCall = false;
    bool Defined = false; ///< Appears as some instruction's def.
    bool Used = false;    ///< Appears as some instruction's use.
  };

  LiveIntervals(const sir::Function &F, const analysis::CFG &Cfg,
                const Liveness &Live);

  const Range &range(sir::Reg R) const { return Ranges[R.id()]; }
  /// Indexed by register id (size == numRegs at construction).
  const std::vector<Range> &ranges() const { return Ranges; }

  /// Linear position of the instruction with id \p InstrId.
  unsigned instrPos(unsigned InstrId) const { return InstrPos[InstrId]; }
  unsigned blockStart(unsigned Block) const { return BlockStarts[Block]; }
  unsigned blockEnd(unsigned Block) const { return BlockEnds[Block]; }
  /// Call-site positions in ascending order.
  const std::vector<unsigned> &callPositions() const { return CallPositions; }

private:
  std::vector<Range> Ranges;
  std::vector<unsigned> InstrPos;
  std::vector<unsigned> BlockStarts;
  std::vector<unsigned> BlockEnds;
  std::vector<unsigned> CallPositions;
};

/// AnalysisManager adapter for LiveIntervals (consults CFGAnalysis and
/// LivenessAnalysis, so invalidating either transitively drops the
/// intervals). Lives in regalloc/ for the same layering reason as
/// LivenessAnalysis: the analysis library must not depend upward.
struct LiveIntervalsAnalysis {
  using Result = LiveIntervals;
  static const analysis::AnalysisKey *id();
  static const char *name() { return "live-intervals"; }
  static std::unique_ptr<Result> run(const sir::Function &F,
                                     analysis::AnalysisManager &AM);
};

} // namespace regalloc
} // namespace fpint

#endif // FPINT_REGALLOC_LIVEINTERVALS_H
