//===- regalloc/RegAlloc.cpp - Incumbent register-allocation backend ------===//
//
// The original linear-scan allocator, now one backend behind the
// regalloc::Allocator interface (registered as "regalloc" and still
// the default). Its scan policy: lowest-index-first register pools per
// class, caller-saved preferred for intervals that do not cross a
// call, furthest-end victim spilling. Everything around the scan lives
// in AllocBase.cpp and is shared with every other backend.
//
//===----------------------------------------------------------------------===//

#include "regalloc/RegAlloc.h"

#include "regalloc/AllocBase.h"
#include "regalloc/Allocator.h"

#include <algorithm>
#include <cassert>

using namespace fpint;
using namespace fpint::regalloc;
using sir::Reg;
using sir::RegClass;

namespace {

class IncumbentFuncAllocator final : public FuncAllocBase {
public:
  using FuncAllocBase::FuncAllocBase;

private:
  void scan(RegClass RC) override;
};

void IncumbentFuncAllocator::scan(RegClass RC) {
  std::vector<bool> CallerFree(ArchLayout::NumCaller, true);
  std::vector<bool> CalleeFree(ArchLayout::NumCallee, true);
  std::vector<unsigned> Active; // Interval indices, unordered.

  auto Release = [&](unsigned ArchIdx) {
    if (ArchIdx >= ArchLayout::CalleeBase &&
        ArchIdx < ArchLayout::CalleeBase + ArchLayout::NumCallee)
      CalleeFree[ArchIdx - ArchLayout::CalleeBase] = true;
    else
      CallerFree[ArchIdx - ArchLayout::CallerBase] = true;
  };
  auto TakeCaller = [&]() -> unsigned {
    for (unsigned I = 0; I < ArchLayout::NumCaller; ++I)
      if (CallerFree[I]) {
        CallerFree[I] = false;
        return ArchLayout::CallerBase + I;
      }
    return ~0u;
  };
  auto TakeCallee = [&]() -> unsigned {
    for (unsigned I = 0; I < ArchLayout::NumCallee; ++I)
      if (CalleeFree[I]) {
        CalleeFree[I] = false;
        markCalleeUsed(RC, ArchLayout::CalleeBase + I);
        return ArchLayout::CalleeBase + I;
      }
    return ~0u;
  };

  for (unsigned IvIdx = 0; IvIdx < Intervals.size(); ++IvIdx) {
    Interval &Iv = Intervals[IvIdx];
    if (Iv.RC != RC)
      continue;

    // Expire finished intervals (end strictly before this start keeps a
    // def reading its own operands safe at equal positions; equal
    // positions may share since reads precede the write).
    for (size_t A = 0; A < Active.size();) {
      if (Intervals[Active[A]].End <= Iv.Start) {
        Release(Intervals[Active[A]].ArchIdx);
        Active[A] = Active.back();
        Active.pop_back();
      } else {
        ++A;
      }
    }

    unsigned Got = ~0u;
    if (Iv.CrossesCall)
      Got = TakeCallee();
    else {
      Got = TakeCaller();
      if (Got == ~0u)
        Got = TakeCallee();
    }
    if (Got != ~0u) {
      Iv.ArchIdx = Got;
      Active.push_back(IvIdx);
      continue;
    }

    // Out of registers: spill the furthest-ending compatible interval.
    unsigned Victim = ~0u;
    for (unsigned A : Active) {
      const Interval &Act = Intervals[A];
      if (Iv.CrossesCall && !isCalleeIdx(Act.ArchIdx))
        continue;
      if (Victim == ~0u || Act.End > Intervals[Victim].End)
        Victim = A;
    }
    if (Victim != ~0u && Intervals[Victim].End > Iv.End) {
      Iv.ArchIdx = Intervals[Victim].ArchIdx;
      if (isCalleeIdx(Iv.ArchIdx))
        markCalleeUsed(RC, Iv.ArchIdx);
      spillInterval(Intervals[Victim]);
      Intervals[Victim].ArchIdx = ~0u;
      Active.erase(std::find(Active.begin(), Active.end(), Victim));
      Active.push_back(IvIdx);
    } else {
      spillInterval(Iv);
    }
  }
}

class IncumbentAllocator final : public Allocator {
public:
  const char *name() const override { return "regalloc"; }

  bool runOnFunction(sir::Function &F, ModuleAlloc &Out,
                     analysis::AnalysisManager *AM,
                     std::string &Error) override {
    IncumbentFuncAllocator Alloc(F, Out, AM);
    return Alloc.run(Error);
  }
};

} // namespace

std::unique_ptr<Allocator> regalloc::createIncumbentAllocator() {
  return std::make_unique<IncumbentAllocator>();
}

unsigned ModuleAlloc::archIndexOf(const sir::Function *F, Reg R) const {
  auto It = Funcs.find(F);
  assert(It != Funcs.end() && "function not allocated");
  assert(R.id() < It->second.ArchIndex.size() && "register out of range");
  unsigned Idx = It->second.ArchIndex[R.id()];
  assert(Idx != ~0u && "register not mapped to an architectural index");
  return Idx;
}

unsigned ModuleAlloc::totalSpilledIntervals() const {
  unsigned N = 0;
  for (const auto &KV : Funcs)
    N += KV.second.SpilledIntervals;
  return N;
}

unsigned ModuleAlloc::totalSpillSlots() const {
  unsigned N = 0;
  for (const auto &KV : Funcs)
    N += KV.second.SpillSlots;
  return N;
}

unsigned ModuleAlloc::totalSpillLoads() const {
  unsigned N = 0;
  for (const auto &KV : Funcs)
    N += KV.second.SpillLoads;
  return N;
}

unsigned ModuleAlloc::totalSpillStores() const {
  unsigned N = 0;
  for (const auto &KV : Funcs)
    N += KV.second.SpillStores;
  return N;
}

unsigned ModuleAlloc::totalCalleeSaveStores() const {
  unsigned N = 0;
  for (const auto &KV : Funcs)
    N += KV.second.CalleeSaveStores;
  return N;
}

unsigned ModuleAlloc::totalCalleeSaveRestores() const {
  unsigned N = 0;
  for (const auto &KV : Funcs)
    N += KV.second.CalleeSaveRestores;
  return N;
}

double ModuleAlloc::totalWallMs() const {
  double N = 0;
  for (const auto &KV : Funcs)
    N += KV.second.WallMs;
  return N;
}
