//===- regalloc/RegAlloc.cpp - Linear-scan register allocation ------------===//

#include "regalloc/RegAlloc.h"

#include "analysis/CFG.h"
#include "regalloc/Liveness.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>

using namespace fpint;
using namespace fpint::regalloc;
using sir::BasicBlock;
using sir::Instruction;
using sir::MemOperand;
using sir::Opcode;
using sir::Reg;
using sir::RegClass;

namespace {

constexpr unsigned ZeroReg = 31; ///< Architectural zero (reads as 0).

struct Interval {
  Reg R;
  RegClass RC;
  unsigned Start = ~0u;
  unsigned End = 0;
  bool CrossesCall = false;
  unsigned ArchIdx = ~0u; ///< Assigned architectural index.
  bool Spilled = false;
};

class FuncAllocator {
public:
  FuncAllocator(sir::Function &F, ModuleAlloc &Out,
                analysis::AnalysisManager *AM)
      : F(F), Out(Out), AM(AM) {}

  bool run(std::string &Error);

private:
  void lowerCallingConvention();
  void buildIntervals();
  void scan(RegClass RC);
  void rewrite();
  void insertCalleeSaves();
  void finish();

  Reg archReg(RegClass RC, unsigned Idx);

  sir::Function &F;
  ModuleAlloc &Out;
  analysis::AnalysisManager *AM; ///< Optional shared analysis cache.
  FuncAlloc Result;

  // Architectural vregs, created lazily per (class, index).
  std::map<std::pair<RegClass, unsigned>, Reg> ArchRegs;

  std::vector<Interval> Intervals;           // Sorted by Start.
  std::vector<unsigned> IntervalOf;          // Reg id -> interval (~0u).
  std::vector<bool> IsPrecolored;            // Reg id -> fixed arch reg.
  std::vector<bool> NeverDefined;            // Reg id -> reads as zero.
  std::vector<unsigned> SpillSlotOf;         // Reg id -> frame slot.
  unsigned NextSlot = 0;
  unsigned BaseSlots = 0;
  std::vector<bool> CalleeUsed[2];           // Per class, per callee idx.
};

Reg FuncAllocator::archReg(RegClass RC, unsigned Idx) {
  auto Key = std::make_pair(RC, Idx);
  auto It = ArchRegs.find(Key);
  if (It != ArchRegs.end())
    return It->second;
  Reg R = F.newReg(RC);
  ArchRegs.emplace(Key, R);
  return R;
}

void FuncAllocator::lowerCallingConvention() {
  // Formals: the incoming values arrive in $a0..$aN; copy them into the
  // original formal registers at entry, then retarget the formal list.
  std::vector<Reg> OldFormals = F.formals();
  std::vector<Reg> NewFormals;
  std::vector<std::unique_ptr<Instruction>> EntryMoves;
  for (unsigned A = 0; A < OldFormals.size(); ++A) {
    // FP-passed arguments (Section 6.6 extension) travel in the FP
    // file's argument registers and move with fmove.
    RegClass RC = F.regClass(OldFormals[A]);
    Reg ArgR = archReg(RC, A);
    NewFormals.push_back(ArgR);
    auto Move = std::make_unique<Instruction>(
        RC == RegClass::Fp ? Opcode::FMove : Opcode::Move);
    Move->setDef(OldFormals[A]);
    Move->uses() = {ArgR};
    EntryMoves.push_back(std::move(Move));
  }
  BasicBlock *Entry = F.entry();
  for (size_t A = EntryMoves.size(); A-- > 0;)
    Entry->insertAt(0, std::move(EntryMoves[A]));

  F.setFormals(NewFormals);

  // Call sites: marshal arguments through $a regs and results through
  // $v0.
  for (const auto &BB : F.blocks()) {
    auto &Instrs = BB->instructions();
    for (size_t Pos = 0; Pos < Instrs.size(); ++Pos) {
      Instruction &I = *Instrs[Pos];
      if (I.op() == Opcode::Call) {
        for (size_t A = 0; A < I.uses().size(); ++A) {
          RegClass RC = F.regClass(I.uses()[A]);
          Reg ArgR = archReg(RC, static_cast<unsigned>(A));
          auto Move = std::make_unique<Instruction>(
              RC == RegClass::Fp ? Opcode::FMove : Opcode::Move);
          Move->setDef(ArgR);
          Move->uses() = {I.uses()[A]};
          BB->insertAt(Pos, std::move(Move));
          ++Pos;
          I.uses()[A] = ArgR;
        }
        if (I.def().isValid()) {
          Reg RetR = archReg(RegClass::Int, ArchLayout::RetReg);
          auto Move = std::make_unique<Instruction>(Opcode::Move);
          Move->setDef(I.def());
          Move->uses() = {RetR};
          I.setDef(RetR);
          BB->insertAt(Pos + 1, std::move(Move));
          ++Pos;
        }
        continue;
      }
      if (I.op() == Opcode::Ret && !I.uses().empty()) {
        Reg RetR = archReg(RegClass::Int, ArchLayout::RetReg);
        auto Move = std::make_unique<Instruction>(Opcode::Move);
        Move->setDef(RetR);
        Move->uses() = {I.uses()[0]};
        BB->insertAt(Pos, std::move(Move));
        ++Pos;
        I.uses()[0] = RetR;
      }
    }
  }
  F.renumber();
}

void FuncAllocator::buildIntervals() {
  // Calling-convention lowering just mutated F, so any cached analyses
  // are stale; the caller invalidated them, making these fetches clean
  // misses over the lowered IR (with Liveness reusing the CFG).
  std::unique_ptr<analysis::CFG> LocalCfg;
  std::unique_ptr<Liveness> LocalLive;
  const analysis::CFG *CfgP;
  const Liveness *LiveP;
  if (AM) {
    CfgP = &AM->getResult<analysis::CFGAnalysis>(F);
    LiveP = &AM->getResult<LivenessAnalysis>(F);
  } else {
    LocalCfg = std::make_unique<analysis::CFG>(F);
    LocalLive = std::make_unique<Liveness>(F, *LocalCfg);
    CfgP = LocalCfg.get();
    LiveP = LocalLive.get();
  }
  const analysis::CFG &Cfg = *CfgP;
  const Liveness &Live = *LiveP;

  IsPrecolored.assign(F.numRegs(), false);
  for (const auto &[Key, R] : ArchRegs)
    IsPrecolored[R.id()] = true;

  // Linear positions (2 apart so "before" and "after" slots exist).
  std::vector<unsigned> BlockStart(Cfg.numBlocks()), BlockEnd(Cfg.numBlocks());
  std::vector<unsigned> CallPositions;
  unsigned Pos = 0;
  std::vector<unsigned> InstrPos; // By instruction id.
  InstrPos.resize(F.numInstrIds());
  for (unsigned B = 0; B < Cfg.numBlocks(); ++B) {
    BlockStart[B] = Pos;
    for (const auto &I : F.blocks()[B]->instructions()) {
      InstrPos[I->id()] = Pos;
      if (I->op() == Opcode::Call)
        CallPositions.push_back(Pos);
      Pos += 2;
    }
    BlockEnd[B] = Pos;
  }

  // Defined / used registers.
  std::vector<bool> Defined(F.numRegs(), false);
  std::vector<bool> Used(F.numRegs(), false);
  F.forEachInstr([&](const Instruction &I) {
    if (I.def().isValid())
      Defined[I.def().id()] = true;
    I.forEachUse([&](Reg R, sir::UseKind) { Used[R.id()] = true; });
  });
  NeverDefined.assign(F.numRegs(), false);
  for (unsigned R = 1; R < F.numRegs(); ++R)
    NeverDefined[R] = Used[R] && !Defined[R] && !IsPrecolored[R];

  IntervalOf.assign(F.numRegs(), ~0u);
  auto Extend = [&](Reg R, unsigned At) {
    if (IsPrecolored[R.id()] || NeverDefined[R.id()])
      return;
    unsigned &Idx = IntervalOf[R.id()];
    if (Idx == ~0u) {
      Idx = static_cast<unsigned>(Intervals.size());
      Intervals.push_back(Interval{R, F.regClass(R), At, At, false, ~0u,
                                   false});
      return;
    }
    Intervals[Idx].Start = std::min(Intervals[Idx].Start, At);
    Intervals[Idx].End = std::max(Intervals[Idx].End, At);
  };

  for (unsigned B = 0; B < Cfg.numBlocks(); ++B) {
    for (unsigned R = 1; R < F.numRegs(); ++R) {
      if (Live.liveInSet(B)[R])
        Extend(Reg(R), BlockStart[B]);
      if (Live.liveOutSet(B)[R])
        Extend(Reg(R), BlockEnd[B]);
    }
    for (const auto &I : F.blocks()[B]->instructions()) {
      unsigned P = InstrPos[I->id()];
      I->forEachUse([&](Reg R, sir::UseKind) { Extend(R, P); });
      if (I->def().isValid())
        Extend(I->def(), P);
    }
  }

  for (Interval &Iv : Intervals)
    for (unsigned CallPos : CallPositions)
      if (Iv.Start < CallPos && CallPos < Iv.End) {
        Iv.CrossesCall = true;
        break;
      }

  std::sort(Intervals.begin(), Intervals.end(),
            [](const Interval &A, const Interval &B) {
              if (A.Start != B.Start)
                return A.Start < B.Start;
              return A.R < B.R;
            });
  for (unsigned I = 0; I < Intervals.size(); ++I)
    IntervalOf[Intervals[I].R.id()] = I;

  CalleeUsed[0].assign(ArchLayout::NumCallee, false);
  CalleeUsed[1].assign(ArchLayout::NumCallee, false);
}

void FuncAllocator::scan(RegClass RC) {
  std::vector<bool> CallerFree(ArchLayout::NumCaller, true);
  std::vector<bool> CalleeFree(ArchLayout::NumCallee, true);
  std::vector<unsigned> Active; // Interval indices, unordered.

  auto Release = [&](unsigned ArchIdx) {
    if (ArchIdx >= ArchLayout::CalleeBase &&
        ArchIdx < ArchLayout::CalleeBase + ArchLayout::NumCallee)
      CalleeFree[ArchIdx - ArchLayout::CalleeBase] = true;
    else
      CallerFree[ArchIdx - ArchLayout::CallerBase] = true;
  };
  auto TakeCaller = [&]() -> unsigned {
    for (unsigned I = 0; I < ArchLayout::NumCaller; ++I)
      if (CallerFree[I]) {
        CallerFree[I] = false;
        return ArchLayout::CallerBase + I;
      }
    return ~0u;
  };
  auto TakeCallee = [&]() -> unsigned {
    for (unsigned I = 0; I < ArchLayout::NumCallee; ++I)
      if (CalleeFree[I]) {
        CalleeFree[I] = false;
        CalleeUsed[RC == RegClass::Fp][I] = true;
        return ArchLayout::CalleeBase + I;
      }
    return ~0u;
  };
  auto IsCalleeIdx = [](unsigned ArchIdx) {
    return ArchIdx >= ArchLayout::CalleeBase &&
           ArchIdx < ArchLayout::CalleeBase + ArchLayout::NumCallee;
  };

  auto SpillInterval = [&](Interval &Iv) {
    Iv.Spilled = true;
    ++Result.SpilledIntervals;
    if (SpillSlotOf[Iv.R.id()] == ~0u)
      SpillSlotOf[Iv.R.id()] = NextSlot++;
  };

  for (unsigned IvIdx = 0; IvIdx < Intervals.size(); ++IvIdx) {
    Interval &Iv = Intervals[IvIdx];
    if (Iv.RC != RC)
      continue;

    // Expire finished intervals (end strictly before this start keeps a
    // def reading its own operands safe at equal positions; equal
    // positions may share since reads precede the write).
    for (size_t A = 0; A < Active.size();) {
      if (Intervals[Active[A]].End <= Iv.Start) {
        Release(Intervals[Active[A]].ArchIdx);
        Active[A] = Active.back();
        Active.pop_back();
      } else {
        ++A;
      }
    }

    unsigned Got = ~0u;
    if (Iv.CrossesCall)
      Got = TakeCallee();
    else {
      Got = TakeCaller();
      if (Got == ~0u)
        Got = TakeCallee();
    }
    if (Got != ~0u) {
      Iv.ArchIdx = Got;
      Active.push_back(IvIdx);
      continue;
    }

    // Out of registers: spill the furthest-ending compatible interval.
    unsigned Victim = ~0u;
    for (unsigned A : Active) {
      const Interval &Act = Intervals[A];
      if (Iv.CrossesCall && !IsCalleeIdx(Act.ArchIdx))
        continue;
      if (Victim == ~0u || Act.End > Intervals[Victim].End)
        Victim = A;
    }
    if (Victim != ~0u && Intervals[Victim].End > Iv.End) {
      Iv.ArchIdx = Intervals[Victim].ArchIdx;
      if (IsCalleeIdx(Iv.ArchIdx))
        CalleeUsed[RC == RegClass::Fp][Iv.ArchIdx - ArchLayout::CalleeBase] =
            true;
      SpillInterval(Intervals[Victim]);
      Intervals[Victim].ArchIdx = ~0u;
      Active.erase(std::find(Active.begin(), Active.end(), Victim));
      Active.push_back(IvIdx);
    } else {
      SpillInterval(Iv);
    }
  }
}

void FuncAllocator::rewrite() {
  struct PendingInsert {
    BasicBlock *BB;
    size_t Pos; ///< Insert before this position.
    size_t Seq;
    std::unique_ptr<Instruction> I;
  };
  std::vector<PendingInsert> Inserts;

  auto SpillLoad = [&](Reg Scratch, unsigned Slot) {
    auto L = std::make_unique<Instruction>(Opcode::Lw);
    L->setDef(Scratch);
    L->mem() = MemOperand::frame(static_cast<int32_t>(Slot * 4));
    return L;
  };
  auto SpillStore = [&](Reg Scratch, unsigned Slot) {
    auto S = std::make_unique<Instruction>(Opcode::Sw);
    S->uses() = {Scratch};
    S->mem() = MemOperand::frame(static_cast<int32_t>(Slot * 4));
    return S;
  };

  for (const auto &BB : F.blocks()) {
    auto &Instrs = BB->instructions();
    for (size_t Pos = 0; Pos < Instrs.size(); ++Pos) {
      Instruction &I = *Instrs[Pos];

      // Per-instruction scratch assignment for spilled registers.
      std::map<uint32_t, Reg> ScratchOf;
      unsigned NextScratch[2] = {0, 0};
      auto ScratchFor = [&](Reg R) {
        auto It = ScratchOf.find(R.id());
        if (It != ScratchOf.end())
          return It->second;
        RegClass RC = F.regClass(R);
        unsigned &N = NextScratch[RC == RegClass::Fp];
        assert(N < ArchLayout::NumScratch && "out of spill scratch regs");
        Reg S = archReg(RC, ArchLayout::ScratchBase + N++);
        ScratchOf.emplace(R.id(), S);
        return S;
      };

      auto MapUse = [&](Reg &R) {
        if (IsPrecolored[R.id()])
          return;
        if (NeverDefined[R.id()]) {
          R = archReg(F.regClass(R), ZeroReg);
          return;
        }
        unsigned IvIdx = IntervalOf[R.id()];
        assert(IvIdx != ~0u && "use of register without interval");
        const Interval &Iv = Intervals[IvIdx];
        if (!Iv.Spilled) {
          R = archReg(Iv.RC, Iv.ArchIdx);
          return;
        }
        Reg S = ScratchFor(R);
        Inserts.push_back(PendingInsert{
            BB.get(), Pos, Inserts.size(),
            SpillLoad(S, SpillSlotOf[R.id()])});
        ++Result.SpillCode;
        R = S;
      };

      for (Reg &U : I.uses())
        MapUse(U);
      if (I.mem().Base.isValid())
        MapUse(I.mem().Base);

      if (I.def().isValid() && !IsPrecolored[I.def().id()]) {
        Reg D = I.def();
        unsigned IvIdx = IntervalOf[D.id()];
        assert(IvIdx != ~0u && "def of register without interval");
        const Interval &Iv = Intervals[IvIdx];
        if (!Iv.Spilled) {
          I.setDef(archReg(Iv.RC, Iv.ArchIdx));
        } else {
          Reg S = ScratchFor(D);
          I.setDef(S);
          Inserts.push_back(PendingInsert{
              BB.get(), Pos + 1, Inserts.size(),
              SpillStore(S, SpillSlotOf[D.id()])});
          ++Result.SpillCode;
        }
      }
    }
  }

  std::stable_sort(Inserts.begin(), Inserts.end(),
                   [](const PendingInsert &L, const PendingInsert &R) {
                     if (L.BB != R.BB)
                       return L.BB < R.BB;
                     if (L.Pos != R.Pos)
                       return L.Pos > R.Pos;
                     return L.Seq > R.Seq;
                   });
  for (auto &Ins : Inserts)
    Ins.BB->insertAt(Ins.Pos, std::move(Ins.I));
}

void FuncAllocator::insertCalleeSaves() {
  // Allocate save slots for used callee-saved registers and insert the
  // prologue stores / epilogue reloads.
  std::vector<std::pair<Reg, unsigned>> Saves; // (arch reg, slot)
  for (unsigned ClassIdx = 0; ClassIdx < 2; ++ClassIdx) {
    RegClass RC = ClassIdx ? RegClass::Fp : RegClass::Int;
    for (unsigned I = 0; I < ArchLayout::NumCallee; ++I) {
      if (!CalleeUsed[ClassIdx][I])
        continue;
      Reg R = archReg(RC, ArchLayout::CalleeBase + I);
      Saves.emplace_back(R, NextSlot++);
      if (ClassIdx)
        ++Result.CalleeSavedUsedFp;
      else
        ++Result.CalleeSavedUsedInt;
    }
  }
  if (Saves.empty())
    return;

  BasicBlock *Entry = F.entry();
  for (size_t S = Saves.size(); S-- > 0;) {
    auto Store = std::make_unique<Instruction>(Opcode::Sw);
    Store->uses() = {Saves[S].first};
    Store->mem() = MemOperand::frame(static_cast<int32_t>(Saves[S].second * 4));
    Entry->insertAt(0, std::move(Store));
    ++Result.SpillCode;
  }
  for (const auto &BB : F.blocks()) {
    auto &Instrs = BB->instructions();
    for (size_t Pos = 0; Pos < Instrs.size(); ++Pos) {
      if (Instrs[Pos]->op() != Opcode::Ret)
        continue;
      for (const auto &[R, Slot] : Saves) {
        auto Load = std::make_unique<Instruction>(Opcode::Lw);
        Load->setDef(R);
        Load->mem() = MemOperand::frame(static_cast<int32_t>(Slot * 4));
        BB->insertAt(Pos, std::move(Load));
        ++Pos;
        ++Result.SpillCode;
      }
    }
  }
}

void FuncAllocator::finish() {
  F.setFrameWords(std::max(F.frameWords(), NextSlot));
  F.setAllocated(true);
  F.renumber();

  Result.SpillSlots = NextSlot - BaseSlots;
  Result.ArchIndex.assign(F.numRegs(), ~0u);
  for (const auto &[Key, R] : ArchRegs)
    Result.ArchIndex[R.id()] = Key.second;
  Out.Funcs.emplace(&F, std::move(Result));
}

bool FuncAllocator::run(std::string &Error) {
  if (F.formals().size() > ArchLayout::NumArgRegs) {
    Error = F.name() + ": more than " +
            std::to_string(ArchLayout::NumArgRegs) + " formals";
    return false;
  }
  // Spill slots start beyond any frame slots the source code already
  // addresses with [frame+N].
  NextSlot = BaseSlots = F.frameWords();
  lowerCallingConvention();
  SpillSlotOf.assign(F.numRegs(), ~0u);
  buildIntervals();
  scan(RegClass::Int);
  scan(RegClass::Fp);
  rewrite();
  insertCalleeSaves();
  finish();
  return true;
}

} // namespace

unsigned ModuleAlloc::archIndexOf(const sir::Function *F, Reg R) const {
  auto It = Funcs.find(F);
  assert(It != Funcs.end() && "function not allocated");
  assert(R.id() < It->second.ArchIndex.size() && "register out of range");
  unsigned Idx = It->second.ArchIndex[R.id()];
  assert(Idx != ~0u && "register not mapped to an architectural index");
  return Idx;
}

ModuleAlloc regalloc::allocateModule(sir::Module &M,
                                     analysis::AnalysisManager *AM) {
  ModuleAlloc Result;
  for (const auto &F : M.functions()) {
    std::string Error;
    // Lowering and rewriting mutate F around the analysis fetches, so
    // bracket each function with invalidations: stale entries from
    // earlier passes are dropped going in, and the allocator's own
    // CFG / liveness results are dropped going out.
    if (AM)
      AM->invalidateFunction(*F);
    FuncAllocator Alloc(*F, Result, AM);
    if (!Alloc.run(Error))
      Result.Errors.push_back(Error);
    if (AM)
      AM->invalidateFunction(*F);
  }
  return Result;
}
