//===- regalloc/RegAlloc.h - Linear-scan register allocation --------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register allocation after code partitioning, as in the paper
/// ("Register allocation is performed after code partitioning. Operands
/// of instructions assigned to the FPa partition are allocated
/// floating-point registers"). The allocator:
///
///  * lowers the calling convention: arguments move through the integer
///    argument registers $a0-$a3 and results through $v0;
///  * runs Poletto-style linear scan independently over the integer and
///    floating-point files; each file has 12 caller-saved and 12
///    callee-saved allocatable registers plus 3 reserved scratch
///    registers for spill traffic;
///  * intervals live across a call must take callee-saved registers (or
///    spill); used callee-saved registers are saved/restored in the
///    prologue/epilogue -- the save/restore and spill loads/stores are
///    real instructions, so offloading visibly changes memory traffic
///    exactly as the paper discusses in Section 6.6;
///  * rewrites the function onto architectural registers and reports a
///    register -> (file, index) map for the timing simulator's renamer.
///
/// Since the pluggable-backend refactor this header holds the shared
/// vocabulary (ArchLayout, FuncAlloc, ModuleAlloc) plus the
/// default-backend entry point; the backend interface and registry
/// live in regalloc/Allocator.h, and the bullet list above is the
/// contract every backend honors.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_REGALLOC_REGALLOC_H
#define FPINT_REGALLOC_REGALLOC_H

#include "analysis/AnalysisManager.h"
#include "sir/IR.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace fpint {
namespace regalloc {

/// Architectural register indices within one file (0..31).
struct ArchLayout {
  static constexpr unsigned NumArgRegs = 4;  ///< $a0..$a3 (INT file only).
  static constexpr unsigned RetReg = 4;      ///< $v0 (INT file only).
  static constexpr unsigned CallerBase = 5;  ///< $t0..$t11 / $ft0..$ft11.
  static constexpr unsigned NumCaller = 12;
  static constexpr unsigned CalleeBase = 17; ///< $s0..$s11 / $fs0..$fs11.
  static constexpr unsigned NumCallee = 12;
  static constexpr unsigned ScratchBase = 29; ///< $k0..$k2 / $fk0..$fk2.
  static constexpr unsigned NumScratch = 3;
  static constexpr unsigned FileSize = 32;
};

/// Result of allocating one function.
struct FuncAlloc {
  /// Register id -> architectural index within its file (~0u unmapped).
  std::vector<unsigned> ArchIndex;
  unsigned SpilledIntervals = 0;
  unsigned SpillSlots = 0;
  unsigned CalleeSavedUsedInt = 0;
  unsigned CalleeSavedUsedFp = 0;
  /// Spill/reload/save/restore instructions inserted.
  unsigned SpillCode = 0;
  /// The SpillCode split: reloads of spilled values, stores of spilled
  /// defs, and prologue/epilogue callee-save traffic. The four always
  /// sum to SpillCode.
  unsigned SpillLoads = 0;
  unsigned SpillStores = 0;
  unsigned CalleeSaveStores = 0;
  unsigned CalleeSaveRestores = 0;
  /// Wall-clock of this function's allocation (informational, like
  /// every wall_ms in the telemetry schema; never diffed as
  /// deterministic).
  double WallMs = 0.0;
};

/// Result of allocating a module.
struct ModuleAlloc {
  std::unordered_map<const sir::Function *, FuncAlloc> Funcs;
  std::vector<std::string> Errors;
  /// Registry name of the backend that produced this allocation
  /// (empty only for a default-constructed result).
  std::string AllocatorName;

  /// Architectural index of \p R in \p F's file; asserts it is mapped.
  unsigned archIndexOf(const sir::Function *F, sir::Reg R) const;

  unsigned totalSpilledIntervals() const;
  unsigned totalSpillSlots() const;
  unsigned totalSpillLoads() const;
  unsigned totalSpillStores() const;
  unsigned totalCalleeSaveStores() const;
  unsigned totalCalleeSaveRestores() const;
  double totalWallMs() const;
};

/// Allocates every function of \p M in place with the default backend
/// (see regalloc/Allocator.h for the pluggable-backend interface and
/// allocateModuleWith for named selection). The module must verify
/// cleanly; functions may have at most ArchLayout::NumArgRegs formals.
/// When \p AM is non-null every analysis (CFG, liveness, live
/// intervals) is fetched through it; each function's cached analyses
/// are invalidated around its allocation (the allocator rewrites the
/// IR).
ModuleAlloc allocateModule(sir::Module &M,
                           analysis::AnalysisManager *AM = nullptr);

} // namespace regalloc
} // namespace fpint

#endif // FPINT_REGALLOC_REGALLOC_H
