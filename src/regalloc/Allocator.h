//===- regalloc/Allocator.h - Pluggable register-allocation backends ------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-allocation backend interface (see docs/REGALLOC.md).
/// An Allocator rewrites one function at a time onto the architectural
/// register files described by ArchLayout, honoring one fixed
/// contract so every downstream consumer (VM oracle, timing
/// simulator, partition statistics) works with any backend:
///
///  * the calling convention is lowered first (arguments through
///    $a0..$a3 per class, results through $v0);
///  * INT and FP registers are allocated from their own files; FPa
///    partition operands arrive as RegClass::Fp and therefore land in
///    FP registers automatically;
///  * intervals live across a call take callee-saved registers or
///    spill; used callee-saved registers are saved/restored in the
///    prologue/epilogue;
///  * spilled values are rewritten through the reserved scratch
///    registers with frame loads/stores, and the function is left
///    renumbered with setAllocated(true).
///
/// Backends register by name in the AllocatorRegistry; the incumbent
/// is "regalloc" (and remains the default), the Poletto-Sarkar
/// linear-scan backend is "regalloc-linear". Selection flows from
/// pipeline text / PipelineConfig::RegAllocator (see
/// core/PassManager.h); a non-default name is folded into every cache
/// key so compiled artifacts never alias across backends.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_REGALLOC_ALLOCATOR_H
#define FPINT_REGALLOC_ALLOCATOR_H

#include "regalloc/RegAlloc.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fpint {
namespace regalloc {

/// One register-allocation backend. Stateless across functions: the
/// module driver (allocateModule) calls runOnFunction once per
/// function, bracketing each call with AnalysisManager invalidation
/// and recording per-function wall time.
class Allocator {
public:
  virtual ~Allocator() = default;

  /// Stable registry name ("regalloc", "regalloc-linear", ...).
  virtual const char *name() const = 0;

  /// Allocates \p F in place, emplacing its FuncAlloc into
  /// \p Out.Funcs. When \p AM is non-null all analyses (CFG,
  /// liveness, live intervals) must be fetched through it so cache
  /// counters attribute the lookups to the running pass. Returns
  /// false with \p Error set on a contract violation (e.g. too many
  /// formals); \p F is left untouched in that case.
  virtual bool runOnFunction(sir::Function &F, ModuleAlloc &Out,
                             analysis::AnalysisManager *AM,
                             std::string &Error) = 0;
};

/// Name -> factory map of every available backend. global() is
/// pre-populated with "regalloc" (the incumbent, also the default)
/// and "regalloc-linear"; tests may register additional names
/// (latest wins, like PassRegistry).
class AllocatorRegistry {
public:
  using Factory = std::function<std::unique_ptr<Allocator>()>;

  static AllocatorRegistry &global();

  void registerAllocator(const std::string &Name, Factory F);
  /// Null if \p Name is unknown.
  std::unique_ptr<Allocator> create(const std::string &Name) const;
  bool contains(const std::string &Name) const;
  std::vector<std::string> names() const;

private:
  std::map<std::string, Factory> Factories;
};

/// The backend allocateModule dispatches to for an empty name.
inline const char *defaultAllocatorName() { return "regalloc"; }

/// Allocates every function of \p M with the backend named
/// \p Name (empty selects defaultAllocatorName()). An unknown name
/// produces a ModuleAlloc carrying only an error. See
/// regalloc::allocateModule for the AM contract.
ModuleAlloc allocateModuleWith(const std::string &Name, sir::Module &M,
                               analysis::AnalysisManager *AM = nullptr);

/// Backend factories (defined next to each implementation; wired into
/// AllocatorRegistry::global() so registration order is
/// deterministic).
std::unique_ptr<Allocator> createIncumbentAllocator();
std::unique_ptr<Allocator> createLinearScanAllocator();

} // namespace regalloc
} // namespace fpint

#endif // FPINT_REGALLOC_ALLOCATOR_H
