//===- regalloc/AllocBase.h - Shared per-function allocator machinery -----===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend-independent 90% of a register allocator, extracted from
/// the original monolith so every backend shares one implementation of
/// the contract in regalloc/Allocator.h:
///
///   lowerCallingConvention -> buildIntervals -> scan (BACKEND POLICY)
///     -> rewrite -> insertCalleeSaves -> finish
///
/// A backend subclasses FuncAllocBase and implements only scan(): walk
/// the interval list (sorted by start) for one register class and
/// either assign Interval::ArchIdx or spill. Everything around the
/// scan -- the position numbering (via the shared LiveIntervals
/// analysis), the spill-everywhere rewrite through scratch registers,
/// and the callee-save prologue/epilogue -- is common, which is what
/// keeps the VM oracle, simulator renamer, and partition statistics
/// backend-agnostic.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_REGALLOC_ALLOCBASE_H
#define FPINT_REGALLOC_ALLOCBASE_H

#include "regalloc/LiveIntervals.h"
#include "regalloc/RegAlloc.h"

#include <map>
#include <string>
#include <vector>

namespace fpint {
namespace regalloc {

/// Architectural zero (reads as 0); never-defined registers map here.
constexpr unsigned ZeroRegIndex = 31;

/// One allocatable register's lifetime, as the scan policies see it:
/// the LiveIntervals range of a non-precolored, non-never-defined
/// register, plus the scan's assignment outcome.
struct Interval {
  sir::Reg R;
  sir::RegClass RC;
  unsigned Start = ~0u;
  unsigned End = 0;
  bool CrossesCall = false;
  unsigned ArchIdx = ~0u; ///< Assigned architectural index.
  bool Spilled = false;
};

/// Drives one function through the shared allocation skeleton.
/// Single-use: construct, run(), discard.
class FuncAllocBase {
public:
  FuncAllocBase(sir::Function &F, ModuleAlloc &Out,
                analysis::AnalysisManager *AM)
      : F(F), Out(Out), AM(AM) {}
  virtual ~FuncAllocBase() = default;

  /// Runs the full skeleton; false + \p Error on contract violations.
  bool run(std::string &Error);

protected:
  /// Backend policy: assign ArchIdx or spill every interval of class
  /// \p RC, in interval order. Must honor the contract: an interval
  /// with CrossesCall set may only take a callee-saved index (or
  /// spill), and every callee-saved index taken must be marked in
  /// CalleeUsed (markCalleeUsed does both bookkeeping steps).
  virtual void scan(sir::RegClass RC) = 0;

  /// Records that callee-saved index \p ArchIdx of class \p RC is in
  /// use (so it is saved/restored in the prologue/epilogue).
  void markCalleeUsed(sir::RegClass RC, unsigned ArchIdx) {
    CalleeUsed[RC == sir::RegClass::Fp][ArchIdx - ArchLayout::CalleeBase] =
        true;
  }

  /// Spills \p Iv to a (lazily assigned) frame slot.
  void spillInterval(Interval &Iv) {
    Iv.Spilled = true;
    ++Result.SpilledIntervals;
    if (SpillSlotOf[Iv.R.id()] == ~0u)
      SpillSlotOf[Iv.R.id()] = NextSlot++;
  }

  static bool isCalleeIdx(unsigned ArchIdx) {
    return ArchIdx >= ArchLayout::CalleeBase &&
           ArchIdx < ArchLayout::CalleeBase + ArchLayout::NumCallee;
  }

  /// The architectural vreg for (class, index), created lazily.
  sir::Reg archReg(sir::RegClass RC, unsigned Idx);

  sir::Function &F;
  ModuleAlloc &Out;
  analysis::AnalysisManager *AM; ///< Optional shared analysis cache.
  FuncAlloc Result;

  std::vector<Interval> Intervals;  ///< Sorted by (Start, R).
  std::vector<unsigned> IntervalOf; ///< Reg id -> interval (~0u).

private:
  void lowerCallingConvention();
  void buildIntervals();
  void rewrite();
  void insertCalleeSaves();
  void finish();

  // Architectural vregs, created lazily per (class, index).
  std::map<std::pair<sir::RegClass, unsigned>, sir::Reg> ArchRegs;

  std::vector<bool> IsPrecolored;    // Reg id -> fixed arch reg.
  std::vector<bool> NeverDefined;    // Reg id -> reads as zero.
  std::vector<unsigned> SpillSlotOf; // Reg id -> frame slot.
  unsigned NextSlot = 0;
  unsigned BaseSlots = 0;
  std::vector<bool> CalleeUsed[2]; // Per class, per callee idx.
};

} // namespace regalloc
} // namespace fpint

#endif // FPINT_REGALLOC_ALLOCBASE_H
