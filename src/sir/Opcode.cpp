//===- sir/Opcode.cpp - Instruction opcodes --------------------------------===//

#include "sir/Opcode.h"

#include <cassert>

using namespace fpint;
using namespace fpint::sir;

const char *sir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::AddI:
    return "addi";
  case Opcode::And:
    return "and";
  case Opcode::AndI:
    return "andi";
  case Opcode::Or:
    return "or";
  case Opcode::OrI:
    return "ori";
  case Opcode::Xor:
    return "xor";
  case Opcode::XorI:
    return "xori";
  case Opcode::Sll:
    return "sll";
  case Opcode::Srl:
    return "srl";
  case Opcode::Sra:
    return "sra";
  case Opcode::Slt:
    return "slt";
  case Opcode::SltU:
    return "sltu";
  case Opcode::SltI:
    return "slti";
  case Opcode::Li:
    return "li";
  case Opcode::Move:
    return "move";
  case Opcode::Beq:
    return "beq";
  case Opcode::Bne:
    return "bne";
  case Opcode::Blez:
    return "blez";
  case Opcode::Bgtz:
    return "bgtz";
  case Opcode::Bltz:
    return "bltz";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::SllV:
    return "sllv";
  case Opcode::SrlV:
    return "srlv";
  case Opcode::SraV:
    return "srav";
  case Opcode::Nor:
    return "nor";
  case Opcode::La:
    return "la";
  case Opcode::Lw:
    return "lw";
  case Opcode::Lb:
    return "lb";
  case Opcode::Lbu:
    return "lbu";
  case Opcode::Sw:
    return "sw";
  case Opcode::Sb:
    return "sb";
  case Opcode::Jump:
    return "jmp";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::CpToFp:
    return "cp_to_fp";
  case Opcode::CpToInt:
    return "cp_to_int";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FLi:
    return "fli";
  case Opcode::FMove:
    return "fmove";
  case Opcode::FCvtIF:
    return "cvtif";
  case Opcode::FCvtFI:
    return "cvtfi";
  case Opcode::FCmpLt:
    return "fcmplt";
  case Opcode::FCmpLe:
    return "fcmple";
  case Opcode::FCmpEq:
    return "fcmpeq";
  case Opcode::FBnez:
    return "fbnez";
  case Opcode::FBeqz:
    return "fbeqz";
  case Opcode::Out:
    return "out";
  }
  assert(false && "unknown opcode");
  return "<bad>";
}

bool sir::fpaSupports(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::AddI:
  case Opcode::And:
  case Opcode::AndI:
  case Opcode::Or:
  case Opcode::OrI:
  case Opcode::Xor:
  case Opcode::Sll:
  case Opcode::Srl:
  case Opcode::Sra:
  case Opcode::SraV:
  case Opcode::Slt:
  case Opcode::SltU:
  case Opcode::SltI:
  case Opcode::Li:
  case Opcode::Move:
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blez:
  case Opcode::Bgtz:
  case Opcode::Bltz:
    return true;
  default:
    return false;
  }
}

bool sir::isIntCondBranch(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blez:
  case Opcode::Bgtz:
  case Opcode::Bltz:
    return true;
  default:
    return false;
  }
}

bool sir::isFpCondBranch(Opcode Op) {
  return Op == Opcode::FBnez || Op == Opcode::FBeqz;
}

bool sir::isCondBranch(Opcode Op) {
  return isIntCondBranch(Op) || isFpCondBranch(Op);
}

bool sir::isBlockEnder(Opcode Op) {
  return Op == Opcode::Jump || Op == Opcode::Ret;
}

bool sir::isLoad(Opcode Op) {
  return Op == Opcode::Lw || Op == Opcode::Lb || Op == Opcode::Lbu;
}

bool sir::isStore(Opcode Op) { return Op == Opcode::Sw || Op == Opcode::Sb; }

bool sir::isMemory(Opcode Op) { return isLoad(Op) || isStore(Op); }

bool sir::isFpOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FLi:
  case Opcode::FMove:
  case Opcode::FCvtIF:
  case Opcode::FCvtFI:
  case Opcode::FCmpLt:
  case Opcode::FCmpLe:
  case Opcode::FCmpEq:
  case Opcode::FBnez:
  case Opcode::FBeqz:
    return true;
  default:
    return false;
  }
}

bool sir::hasDef(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blez:
  case Opcode::Bgtz:
  case Opcode::Bltz:
  case Opcode::Sw:
  case Opcode::Sb:
  case Opcode::Jump:
  case Opcode::Ret:
  case Opcode::FBnez:
  case Opcode::FBeqz:
  case Opcode::Out:
    return false;
  case Opcode::Call:
    return true; // Optional; the instruction's def register may be invalid.
  default:
    return true;
  }
}

ExecClass sir::execClass(Opcode Op) {
  if (isLoad(Op))
    return ExecClass::LoadOp;
  if (isStore(Op))
    return ExecClass::StoreOp;
  if (isCondBranch(Op))
    return ExecClass::BranchOp;
  switch (Op) {
  case Opcode::Mul:
    return ExecClass::IntMul;
  case Opcode::Div:
  case Opcode::Rem:
    return ExecClass::IntDiv;
  case Opcode::Jump:
  case Opcode::Call:
  case Opcode::Ret:
    return ExecClass::CtrlOp;
  case Opcode::CpToFp:
  case Opcode::CpToInt:
    return ExecClass::XferOp;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FLi:
  case Opcode::FMove:
  case Opcode::FCvtIF:
  case Opcode::FCvtFI:
  case Opcode::FCmpLt:
  case Opcode::FCmpLe:
  case Opcode::FCmpEq:
    return ExecClass::FpAdd;
  case Opcode::FMul:
    return ExecClass::FpMul;
  case Opcode::FDiv:
    return ExecClass::FpDiv;
  case Opcode::Out:
    return ExecClass::OutOp;
  default:
    return ExecClass::IntAlu;
  }
}

unsigned sir::execLatency(ExecClass Class) {
  switch (Class) {
  case ExecClass::IntAlu:
  case ExecClass::LoadOp:
  case ExecClass::StoreOp:
  case ExecClass::BranchOp:
  case ExecClass::CtrlOp:
  case ExecClass::XferOp:
  case ExecClass::OutOp:
    return 1;
  case ExecClass::IntMul:
    return 6;
  case ExecClass::IntDiv:
    return 12;
  case ExecClass::FpAdd:
    return 2;
  case ExecClass::FpMul:
    return 4;
  case ExecClass::FpDiv:
    return 12;
  }
  assert(false && "unknown exec class");
  return 1;
}
