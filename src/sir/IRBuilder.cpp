//===- sir/IRBuilder.cpp - Convenience construction API -------------------===//

#include "sir/IRBuilder.h"

using namespace fpint;
using namespace fpint::sir;

Instruction *IRBuilder::emit(Opcode Op) {
  assert(BB && "no insertion point");
  return BB->append(std::make_unique<Instruction>(Op));
}

Reg IRBuilder::binop(Opcode Op, Reg A, Reg B) {
  Instruction *I = emit(Op);
  Reg D = function()->newReg(RegClass::Int);
  I->setDef(D);
  I->uses() = {A, B};
  return D;
}

Reg IRBuilder::immop(Opcode Op, Reg A, int64_t Imm) {
  Instruction *I = emit(Op);
  Reg D = function()->newReg(RegClass::Int);
  I->setDef(D);
  I->uses() = {A};
  I->setImm(Imm);
  return D;
}

Reg IRBuilder::li(int64_t Imm) {
  Reg D = function()->newReg(RegClass::Int);
  liInto(D, Imm);
  return D;
}

void IRBuilder::liInto(Reg Dst, int64_t Imm) {
  Instruction *I = emit(Opcode::Li);
  I->setDef(Dst);
  I->setImm(Imm);
}

Reg IRBuilder::move(Reg A) {
  Reg D = function()->newReg(RegClass::Int);
  moveInto(D, A);
  return D;
}

void IRBuilder::moveInto(Reg Dst, Reg Src) {
  Instruction *I = emit(Opcode::Move);
  I->setDef(Dst);
  I->uses() = {Src};
}

Reg IRBuilder::la(const std::string &Symbol, int32_t Offset) {
  Instruction *I = emit(Opcode::La);
  Reg D = function()->newReg(RegClass::Int);
  I->setDef(D);
  I->mem() = MemOperand::global(Symbol, Offset);
  return D;
}

Reg IRBuilder::load(Opcode Op, MemOperand Mem) {
  assert(sir::isLoad(Op) && "not a load opcode");
  Instruction *I = emit(Op);
  Reg D = function()->newReg(RegClass::Int);
  I->setDef(D);
  I->mem() = std::move(Mem);
  return D;
}

Reg IRBuilder::lwFp(MemOperand Mem) {
  Reg D = load(Opcode::Lw, std::move(Mem));
  function()->setRegClass(D, RegClass::Fp);
  return D;
}

void IRBuilder::store(Opcode Op, Reg Value, MemOperand Mem) {
  assert(sir::isStore(Op) && "not a store opcode");
  Instruction *I = emit(Op);
  I->uses() = {Value};
  I->mem() = std::move(Mem);
}

void IRBuilder::br(Opcode Op, Reg A, Reg B, BasicBlock *Target) {
  assert(isIntCondBranch(Op) && "not an integer conditional branch");
  assert((B.isValid() || (Op != Opcode::Beq && Op != Opcode::Bne)) &&
         "beq/bne need two register operands");
  Instruction *I = emit(Op);
  if (B.isValid())
    I->uses() = {A, B};
  else
    I->uses() = {A};
  I->setTarget(Target);
}

void IRBuilder::jmp(BasicBlock *Target) {
  Instruction *I = emit(Opcode::Jump);
  I->setTarget(Target);
}

Reg IRBuilder::call(const std::string &Callee, const std::vector<Reg> &Args,
                    bool WantResult) {
  Instruction *I = emit(Opcode::Call);
  I->setCallee(Callee);
  I->uses() = Args;
  Reg D;
  if (WantResult) {
    D = function()->newReg(RegClass::Int);
    I->setDef(D);
  }
  return D;
}

void IRBuilder::ret() { emit(Opcode::Ret); }

void IRBuilder::ret(Reg Value) {
  Instruction *I = emit(Opcode::Ret);
  I->uses() = {Value};
}

void IRBuilder::out(Reg Value) {
  Instruction *I = emit(Opcode::Out);
  I->uses() = {Value};
}

Reg IRBuilder::cpToFp(Reg IntSrc) {
  Instruction *I = emit(Opcode::CpToFp);
  Reg D = function()->newReg(RegClass::Fp);
  I->setDef(D);
  I->uses() = {IntSrc};
  return D;
}

Reg IRBuilder::cpToInt(Reg FpSrc) {
  Instruction *I = emit(Opcode::CpToInt);
  Reg D = function()->newReg(RegClass::Int);
  I->setDef(D);
  I->uses() = {FpSrc};
  return D;
}

Reg IRBuilder::fbinop(Opcode Op, Reg A, Reg B) {
  assert(isFpOpcode(Op) && "not a floating-point opcode");
  Instruction *I = emit(Op);
  Reg D = function()->newReg(RegClass::Fp);
  I->setDef(D);
  I->uses() = {A, B};
  return D;
}

Reg IRBuilder::fli(float Imm) {
  Instruction *I = emit(Opcode::FLi);
  Reg D = function()->newReg(RegClass::Fp);
  I->setDef(D);
  I->setFImm(Imm);
  return D;
}

Reg IRBuilder::fmove(Reg A) {
  Instruction *I = emit(Opcode::FMove);
  Reg D = function()->newReg(RegClass::Fp);
  I->setDef(D);
  I->uses() = {A};
  return D;
}

Reg IRBuilder::fcvtIF(Reg FpIntBits) {
  Instruction *I = emit(Opcode::FCvtIF);
  Reg D = function()->newReg(RegClass::Fp);
  I->setDef(D);
  I->uses() = {FpIntBits};
  return D;
}

Reg IRBuilder::fcvtFI(Reg FpVal) {
  Instruction *I = emit(Opcode::FCvtFI);
  Reg D = function()->newReg(RegClass::Fp);
  I->setDef(D);
  I->uses() = {FpVal};
  return D;
}

void IRBuilder::fbnez(Reg Cond, BasicBlock *Target) {
  Instruction *I = emit(Opcode::FBnez);
  I->uses() = {Cond};
  I->setTarget(Target);
}

void IRBuilder::fbeqz(Reg Cond, BasicBlock *Target) {
  Instruction *I = emit(Opcode::FBeqz);
  I->uses() = {Cond};
  I->setTarget(Target);
}
