//===- sir/Opcode.h - Instruction opcodes ---------------------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcodes for the "sir" intermediate representation, a MIPS-like
/// register-transfer language. The set mirrors the instruction classes the
/// paper's compiler operates on:
///
///  * 17 simple integer ALU operations and 5 conditional branches that the
///    augmented floating-point subsystem (FPa) can execute. These are the
///    paper's "22 extra opcodes" -- in this IR an instruction carries a
///    partition bit instead of a literal duplicate opcode, and the printer
///    renders FPa-assigned instructions with the paper's ",a" suffix.
///  * Integer multiply/divide and variable shifts, which FPa does not
///    support (the paper excludes multiply/divide as rare and expensive).
///  * Loads and stores, which always compute their address in the INT
///    subsystem's load/store unit; the loaded/stored value may live in
///    either register file.
///  * Copy instructions between the register files (MIPS mtc1/mfc1), used
///    by the advanced partitioning scheme.
///  * A small single-precision floating-point set for the paper's Section
///    7.5 experiment on floating-point programs.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SIR_OPCODE_H
#define FPINT_SIR_OPCODE_H

#include <cstdint>

namespace fpint {
namespace sir {

enum class Opcode : uint8_t {
  // Integer ALU. All except XorI are FPa-offloadable; together with
  // SraV (below, needed for the paper's gcc example where a variable
  // arithmetic shift is offloaded) and the five conditional branches
  // they form the paper's 22 FPa opcodes.
  Add,   ///< rd = rs + rt (wrapping)
  Sub,   ///< rd = rs - rt
  AddI,  ///< rd = rs + imm
  And,   ///< rd = rs & rt
  AndI,  ///< rd = rs & imm
  Or,    ///< rd = rs | rt
  OrI,   ///< rd = rs | imm
  Xor,   ///< rd = rs ^ rt
  XorI,  ///< rd = rs ^ imm (not offloadable: outside the 22-opcode set)
  Sll,   ///< rd = rs << imm
  Srl,   ///< rd = (unsigned)rs >> imm
  Sra,   ///< rd = (signed)rs >> imm
  Slt,   ///< rd = (signed)rs < (signed)rt
  SltU,  ///< rd = (unsigned)rs < (unsigned)rt
  SltI,  ///< rd = (signed)rs < imm
  Li,    ///< rd = imm
  Move,  ///< rd = rs

  // Conditional branches, FPa-offloadable (5 ops). Together with the ALU
  // group above these form the paper's 22 FPa opcodes.
  Beq,  ///< if (rs == rt) goto target
  Bne,  ///< if (rs != rt) goto target
  Blez, ///< if (rs <= 0) goto target
  Bgtz, ///< if (rs > 0) goto target
  Bltz, ///< if (rs < 0) goto target

  // Remaining integer operations. SraV is FPa-offloadable (see above);
  // multiply/divide are excluded as in the paper, and SllV/SrlV/Nor/La
  // fall outside the 22-opcode budget.
  Mul,  ///< rd = rs * rt (6-cycle)
  Div,  ///< rd = rs / rt (12-cycle; traps avoided: x/0 == 0)
  Rem,  ///< rd = rs % rt (12-cycle; x%0 == x)
  SllV, ///< rd = rs << (rt & 31)
  SrlV, ///< rd = (unsigned)rs >> (rt & 31)
  SraV, ///< rd = (signed)rs >> (rt & 31)
  Nor,  ///< rd = ~(rs | rt)
  La,   ///< rd = address of a global symbol (+ imm)

  // Memory. Addresses are always computed in the INT subsystem.
  Lw,  ///< rd = mem32[addr]
  Lb,  ///< rd = sign-extended mem8[addr]
  Lbu, ///< rd = zero-extended mem8[addr]
  Sw,  ///< mem32[addr] = rs
  Sb,  ///< mem8[addr] = low byte of rs

  // Control flow (INT subsystem / front end).
  Jump, ///< goto target
  Call, ///< [rd =] call sym(args...); integer calling convention
  Ret,  ///< return [rs]

  // Inter-register-file copies (MIPS mtc1/mfc1 analogues). The advanced
  // partitioning scheme inserts CpToFp; CpToInt appears only for call
  // arguments and return values (Section 6.4 of the paper).
  CpToFp,  ///< fp rd = int rs
  CpToInt, ///< int rd = fp rs

  // Single-precision floating point (always executes in the FP subsystem).
  FAdd,   ///< fd = fs + ft
  FSub,   ///< fd = fs - ft
  FMul,   ///< fd = fs * ft
  FDiv,   ///< fd = fs / ft
  FLi,    ///< fd = float immediate
  FMove,  ///< fd = fs
  FCvtIF, ///< fd = (float)(int32 bits in fs)   [cvt.s.w]
  FCvtFI, ///< fd = (int32)truncate(fs)         [trunc.w.s]
  FCmpLt, ///< fd = fs < ft ? 1.0f : 0.0f       [condition value]
  FCmpLe, ///< fd = fs <= ft ? 1.0f : 0.0f
  FCmpEq, ///< fd = fs == ft ? 1.0f : 0.0f
  FBnez,  ///< if (fs != 0.0f) goto target      [bc1t analogue]
  FBeqz,  ///< if (fs == 0.0f) goto target      [bc1f analogue]

  // Pseudo-instruction: appends an integer to the program's output stream.
  // Behaves like a store to an output port: the address side is trivial
  // and the value may come from either register file.
  Out,
};

/// Total number of opcodes (for table sizing).
constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::Out) + 1;

/// Returns the assembly mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// True if the augmented floating-point subsystem can execute \p Op.
/// Exactly 22 opcodes satisfy this predicate (17 ALU + 5 branches),
/// matching the paper's 22 instruction-set extensions.
bool fpaSupports(Opcode Op);

/// True for the five FPa-offloadable integer conditional branches.
bool isIntCondBranch(Opcode Op);

/// True for the two floating-point conditional branches.
bool isFpCondBranch(Opcode Op);

/// True for any conditional branch.
bool isCondBranch(Opcode Op);

/// True for instructions that end a basic block unconditionally
/// (Jump and Ret). Conditional branches fall through to the next block.
bool isBlockEnder(Opcode Op);

bool isLoad(Opcode Op);
bool isStore(Opcode Op);
bool isMemory(Opcode Op);

/// True for opcodes whose results live in (and operands come from) the
/// floating-point register file: the FAdd...FBeqz group.
bool isFpOpcode(Opcode Op);

/// True if \p Op defines a register (given that calls may or may not).
bool hasDef(Opcode Op);

/// Functional-unit class used by the timing simulator.
enum class ExecClass : uint8_t {
  IntAlu,   ///< 1-cycle integer operation (also valid on FPa units)
  IntMul,   ///< 6-cycle integer multiply
  IntDiv,   ///< 12-cycle integer divide/remainder
  LoadOp,   ///< address generation + data cache access
  StoreOp,  ///< address generation; data written at commit
  BranchOp, ///< conditional branch resolution
  CtrlOp,   ///< jump / call / return handled by the front end
  FpAdd,    ///< 2-cycle FP add/convert/compare
  FpMul,    ///< 4-cycle FP multiply
  FpDiv,    ///< 12-cycle FP divide
  XferOp,   ///< inter-register-file copy
  OutOp,    ///< output port write (store-like)
};

/// Returns the functional-unit class of \p Op.
ExecClass execClass(Opcode Op);

/// Returns the execution latency in cycles of \p Class (cache hits for
/// loads; misses are modeled by the simulator).
unsigned execLatency(ExecClass Class);

} // namespace sir
} // namespace fpint

#endif // FPINT_SIR_OPCODE_H
