//===- sir/Verifier.h - IR structural invariants --------------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks structural and register-class invariants of a module:
/// terminator placement, branch-target sanity, operand register classes
/// consistent with opcodes and FPa assignment, calling-convention
/// constraints (integer argument/return registers), and resolvable
/// callees and globals. The partitioners run the verifier on their
/// output; tests assert empty diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SIR_VERIFIER_H
#define FPINT_SIR_VERIFIER_H

#include "sir/IR.h"

#include <string>
#include <vector>

namespace fpint {
namespace sir {

/// Returns a list of human-readable diagnostics; empty means the module
/// is well formed.
std::vector<std::string> verify(const Module &M);

} // namespace sir
} // namespace fpint

#endif // FPINT_SIR_VERIFIER_H
