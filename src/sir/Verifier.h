//===- sir/Verifier.h - IR structural invariants --------------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks structural and register-class invariants of a module:
/// terminator placement, branch-target sanity, operand register classes
/// consistent with opcodes and FPa assignment, calling-convention
/// constraints (integer argument/return registers), and resolvable
/// callees and globals. The partitioners run the verifier on their
/// output; tests assert empty diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SIR_VERIFIER_H
#define FPINT_SIR_VERIFIER_H

#include "sir/IR.h"

#include <string>
#include <vector>

namespace fpint {
namespace sir {

/// Optional strictness knobs for verify().
struct VerifyOptions {
  /// Also run a must-definition dataflow analysis and reject any use of
  /// a register that lacks a definition on some path from function
  /// entry (use-before-def). Off by default: hand-written programs use
  /// the "%zero always reads 0" convention and register-allocated code
  /// relies on calling-convention defs, both of which this check would
  /// flag. The test generator's output must pass it, and the fuzz
  /// harness runs it on every generated module.
  bool CheckDataflow = false;
};

/// Returns a list of human-readable diagnostics; empty means the module
/// is well formed.
std::vector<std::string> verify(const Module &M);

/// As above with explicit strictness options.
std::vector<std::string> verify(const Module &M, const VerifyOptions &Opts);

} // namespace sir
} // namespace fpint

#endif // FPINT_SIR_VERIFIER_H
