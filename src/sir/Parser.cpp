//===- sir/Parser.cpp - Textual form parsing --------------------------------===//

#include "sir/Parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

using namespace fpint;
using namespace fpint::sir;

namespace {

/// Character cursor over a single source line.
class Cursor {
public:
  explicit Cursor(const std::string &Text) : Text(Text) {}

  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipWs();
    return Pos >= Text.size();
  }

  char peek() {
    skipWs();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  bool eat(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  static bool isIdentChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.';
  }

  /// Parses an identifier ([A-Za-z0-9_.]+); empty string if none.
  std::string ident() {
    skipWs();
    size_t Start = Pos;
    while (Pos < Text.size() && isIdentChar(Text[Pos]))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  /// Parses a decimal or 0x-hex integer with optional sign.
  std::optional<int64_t> integer() {
    skipWs();
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    size_t DigitsStart = Pos;
    bool Hex = false;
    if (Pos + 1 < Text.size() && Text[Pos] == '0' &&
        (Text[Pos + 1] == 'x' || Text[Pos + 1] == 'X')) {
      Pos += 2;
      Hex = true;
      DigitsStart = Pos;
    }
    while (Pos < Text.size() &&
           (Hex ? std::isxdigit(static_cast<unsigned char>(Text[Pos]))
                : std::isdigit(static_cast<unsigned char>(Text[Pos]))))
      ++Pos;
    if (Pos == DigitsStart) {
      Pos = Start;
      return std::nullopt;
    }
    return std::strtoll(Text.c_str() + Start, nullptr, 0);
  }

  /// Parses a floating-point literal.
  std::optional<float> floating() {
    skipWs();
    const char *Begin = Text.c_str() + Pos;
    char *End = nullptr;
    float V = std::strtof(Begin, &End);
    if (End == Begin)
      return std::nullopt;
    Pos += static_cast<size_t>(End - Begin);
    return V;
  }

  size_t position() const { return Pos; }
  std::string rest() const { return Text.substr(Pos); }

private:
  const std::string &Text;
  size_t Pos = 0;
};

/// Pending branch-target reference to resolve once all labels are known.
struct Fixup {
  Instruction *I;
  std::string Label;
  unsigned Line;
};

class ModuleParser {
public:
  explicit ModuleParser(const std::string &Source) : Source(Source) {}

  ParseResult run();

private:
  bool fail(const std::string &Msg) {
    if (Result.Error.empty()) {
      Result.Error = Msg;
      Result.Line = LineNo;
    }
    return false;
  }

  bool parseGlobal(Cursor &C);
  bool parseFuncHeader(Cursor &C);
  bool parseBodyLine(Cursor &C);
  bool parseInstr(Cursor &C, const std::string &Mnemonic);
  bool finishFunction();

  /// Returns the register named \p Name, creating it with class \p RC on
  /// first sight; errors on a class conflict.
  std::optional<Reg> regFor(const std::string &Name, RegClass RC);
  std::optional<Reg> parseReg(Cursor &C, RegClass RC);
  bool parseMem(Cursor &C, MemOperand &Out);
  BasicBlock *ensureBlock();

  const std::string &Source;
  ParseResult Result;
  std::unique_ptr<Module> M = std::make_unique<Module>();
  unsigned LineNo = 0;

  // Per-function state.
  Function *F = nullptr;
  BasicBlock *CurBB = nullptr;
  std::map<std::string, Reg> RegNames;
  std::vector<Fixup> Fixups;
};

std::optional<Reg> ModuleParser::regFor(const std::string &Name, RegClass RC) {
  auto It = RegNames.find(Name);
  if (It == RegNames.end()) {
    Reg R = F->newReg(RC);
    RegNames.emplace(Name, R);
    return R;
  }
  if (F->regClass(It->second) != RC) {
    fail("register %" + Name + " used with conflicting class");
    return std::nullopt;
  }
  return It->second;
}

std::optional<Reg> ModuleParser::parseReg(Cursor &C, RegClass RC) {
  if (!C.eat('%')) {
    fail("expected register, got '" + C.rest() + "'");
    return std::nullopt;
  }
  std::string Name = C.ident();
  if (Name.empty()) {
    fail("expected register name after %");
    return std::nullopt;
  }
  return regFor(Name, RC);
}

bool ModuleParser::parseMem(Cursor &C, MemOperand &Out) {
  Out = MemOperand();
  if (C.eat('[')) {
    std::string Kw = C.ident();
    if (Kw != "frame")
      return fail("expected 'frame' in bracketed address");
    auto Off = C.integer();
    Out = MemOperand::frame(Off ? static_cast<int32_t>(*Off) : 0);
    if (!C.eat(']'))
      return fail("expected ']' after frame offset");
    return true;
  }
  char Next = C.peek();
  if (Next == '-' || Next == '+' || std::isdigit(static_cast<unsigned char>(Next))) {
    auto Off = C.integer();
    if (!Off)
      return fail("malformed address offset");
    // Either a bare "off(%base)" or just an absolute offset.
    if (C.eat('(')) {
      auto Base = parseReg(C, RegClass::Int);
      if (!Base)
        return false;
      if (!C.eat(')'))
        return fail("expected ')' after base register");
      Out = MemOperand::reg(*Base, static_cast<int32_t>(*Off));
      return true;
    }
    Out = MemOperand::reg(Reg(), static_cast<int32_t>(*Off));
    return true;
  }
  std::string Sym = C.ident();
  if (Sym.empty())
    return fail("expected address operand");
  int32_t Off = 0;
  if (C.peek() == '+' || C.peek() == '-') {
    auto OffVal = C.integer();
    if (!OffVal)
      return fail("malformed symbol offset");
    Off = static_cast<int32_t>(*OffVal);
  }
  Out = MemOperand::global(Sym, Off);
  return true;
}

BasicBlock *ModuleParser::ensureBlock() {
  if (!CurBB)
    CurBB = F->addBlock("entry");
  return CurBB;
}

bool ModuleParser::parseGlobal(Cursor &C) {
  std::string Name = C.ident();
  if (Name.empty())
    return fail("expected global name");
  auto Size = C.integer();
  if (!Size || *Size < 0)
    return fail("expected global size in words");
  std::vector<int32_t> Init;
  if (C.eat('=')) {
    while (!C.atEnd()) {
      auto V = C.integer();
      if (!V)
        return fail("malformed global initializer");
      Init.push_back(static_cast<int32_t>(*V));
    }
  }
  if (Init.size() > static_cast<size_t>(*Size))
    return fail("initializer longer than global size");
  if (M->globalByName(Name))
    return fail("duplicate global '" + Name + "'");
  M->addGlobal(Name, static_cast<uint32_t>(*Size), std::move(Init));
  return true;
}

bool ModuleParser::parseFuncHeader(Cursor &C) {
  std::string Name = C.ident();
  if (Name.empty())
    return fail("expected function name");
  if (M->functionByName(Name))
    return fail("duplicate function '" + Name + "'");
  F = M->addFunction(Name);
  CurBB = nullptr;
  RegNames.clear();
  Fixups.clear();
  if (!C.eat('('))
    return fail("expected '(' after function name");
  if (!C.eat(')')) {
    for (;;) {
      if (!C.eat('%'))
        return fail("expected formal parameter register");
      std::string PName = C.ident();
      if (PName.empty())
        return fail("expected formal parameter name");
      if (RegNames.count(PName))
        return fail("duplicate formal parameter %" + PName);
      Reg R = F->addFormal();
      RegNames.emplace(PName, R);
      if (C.eat(')'))
        break;
      if (!C.eat(','))
        return fail("expected ',' or ')' in formal list");
    }
  }
  if (!C.eat('{'))
    return fail("expected '{' after function header");
  if (!C.atEnd())
    return fail("unexpected text after '{'");
  return true;
}

bool ModuleParser::finishFunction() {
  for (const Fixup &Fx : Fixups) {
    BasicBlock *Target = F->blockByName(Fx.Label);
    if (!Target) {
      LineNo = Fx.Line;
      return fail("unknown label '" + Fx.Label + "'");
    }
    Fx.I->setTarget(Target);
  }
  if (F->blocks().empty())
    return fail("function '" + F->name() + "' has no body");
  F = nullptr;
  CurBB = nullptr;
  return true;
}

bool ModuleParser::parseInstr(Cursor &C, const std::string &MnemonicIn) {
  std::string Mnemonic = MnemonicIn;
  bool Fpa = false;
  if (Mnemonic.size() > 2 && Mnemonic.substr(Mnemonic.size() - 2) == ",a") {
    Fpa = true;
    Mnemonic = Mnemonic.substr(0, Mnemonic.size() - 2);
  }

  static const std::map<std::string, Opcode> OpMap = [] {
    std::map<std::string, Opcode> Map;
    for (unsigned I = 0; I < NumOpcodes; ++I) {
      Opcode Op = static_cast<Opcode>(I);
      Map[opcodeName(Op)] = Op;
    }
    return Map;
  }();

  bool FpData = false; // l.s / s.s data side in the FP file.
  Opcode Op;
  if (Mnemonic == "l.s") {
    Op = Opcode::Lw;
    FpData = true;
  } else if (Mnemonic == "s.s") {
    Op = Opcode::Sw;
    FpData = true;
  } else {
    auto It = OpMap.find(Mnemonic);
    if (It == OpMap.end())
      return fail("unknown mnemonic '" + Mnemonic + "'");
    Op = It->second;
  }

  if (Fpa && !fpaSupports(Op) && Op != Opcode::Out)
    return fail("',a' suffix on non-offloadable mnemonic '" + Mnemonic + "'");

  // Register class expected for the data operands of this instruction.
  const bool FpRegs = Fpa || isFpOpcode(Op);
  const RegClass DataRC = (FpRegs || FpData) ? RegClass::Fp : RegClass::Int;

  auto I = std::make_unique<Instruction>(Op);
  I->setInFpa(Fpa);
  Instruction *Raw = I.get();
  BasicBlock *BB = ensureBlock();

  auto Def = [&](RegClass RC) -> bool {
    auto R = parseReg(C, RC);
    if (!R)
      return false;
    Raw->setDef(*R);
    return true;
  };
  auto Use = [&](RegClass RC) -> bool {
    auto R = parseReg(C, RC);
    if (!R)
      return false;
    Raw->uses().push_back(*R);
    return true;
  };
  auto Comma = [&]() -> bool {
    if (!C.eat(','))
      return fail("expected ','");
    return true;
  };
  auto Imm = [&]() -> bool {
    auto V = C.integer();
    if (!V)
      return fail("expected immediate");
    Raw->setImm(*V);
    return true;
  };
  auto Label = [&]() -> bool {
    std::string L = C.ident();
    if (L.empty())
      return fail("expected label");
    Fixups.push_back(Fixup{Raw, L, LineNo});
    return true;
  };

  switch (Op) {
  case Opcode::Li:
    if (!Def(DataRC) || !Comma() || !Imm())
      return false;
    break;
  case Opcode::FLi: {
    if (!Def(RegClass::Fp) || !Comma())
      return false;
    auto V = C.floating();
    if (!V)
      return fail("expected float immediate");
    Raw->setFImm(*V);
    break;
  }
  case Opcode::La: {
    if (!Def(RegClass::Int) || !Comma())
      return false;
    MemOperand Mem;
    if (!parseMem(C, Mem))
      return false;
    if (Mem.Symbol.empty())
      return fail("la requires a global symbol");
    Raw->mem() = Mem;
    break;
  }
  case Opcode::Move:
    if (!Def(DataRC) || !Comma() || !Use(DataRC))
      return false;
    break;
  case Opcode::FMove:
  case Opcode::FCvtIF:
  case Opcode::FCvtFI:
    if (!Def(RegClass::Fp) || !Comma() || !Use(RegClass::Fp))
      return false;
    break;
  case Opcode::CpToFp:
    if (!Def(RegClass::Fp) || !Comma() || !Use(RegClass::Int))
      return false;
    break;
  case Opcode::CpToInt:
    if (!Def(RegClass::Int) || !Comma() || !Use(RegClass::Fp))
      return false;
    break;
  case Opcode::AddI:
  case Opcode::AndI:
  case Opcode::OrI:
  case Opcode::XorI:
  case Opcode::Sll:
  case Opcode::Srl:
  case Opcode::Sra:
  case Opcode::SltI:
    if (!Def(DataRC) || !Comma() || !Use(DataRC) || !Comma() || !Imm())
      return false;
    break;
  case Opcode::Lw:
  case Opcode::Lb:
  case Opcode::Lbu: {
    RegClass RC = FpData ? RegClass::Fp : RegClass::Int;
    if (Op != Opcode::Lw && FpData)
      return fail("only word loads may target the FP file");
    if (!Def(RC) || !Comma())
      return false;
    MemOperand Mem;
    if (!parseMem(C, Mem))
      return false;
    Raw->mem() = Mem;
    break;
  }
  case Opcode::Sw:
  case Opcode::Sb: {
    RegClass RC = FpData ? RegClass::Fp : RegClass::Int;
    if (Op != Opcode::Sw && FpData)
      return fail("only word stores may source the FP file");
    if (!Use(RC) || !Comma())
      return false;
    MemOperand Mem;
    if (!parseMem(C, Mem))
      return false;
    Raw->mem() = Mem;
    break;
  }
  case Opcode::Beq:
  case Opcode::Bne:
    if (!Use(DataRC) || !Comma() || !Use(DataRC) || !Comma() || !Label())
      return false;
    break;
  case Opcode::Blez:
  case Opcode::Bgtz:
  case Opcode::Bltz:
    if (!Use(DataRC) || !Comma() || !Label())
      return false;
    break;
  case Opcode::FBnez:
  case Opcode::FBeqz:
    if (!Use(RegClass::Fp) || !Comma() || !Label())
      return false;
    break;
  case Opcode::Jump:
    if (!Label())
      return false;
    break;
  case Opcode::Call: {
    // "call %d, f(args)" or "call f(args)".
    if (C.peek() == '%') {
      if (!Def(RegClass::Int) || !Comma())
        return false;
    }
    std::string Callee = C.ident();
    if (Callee.empty())
      return fail("expected callee name");
    Raw->setCallee(Callee);
    if (!C.eat('('))
      return fail("expected '(' after callee");
    if (!C.eat(')')) {
      for (;;) {
        if (!Use(RegClass::Int))
          return false;
        if (C.eat(')'))
          break;
        if (!C.eat(','))
          return fail("expected ',' or ')' in argument list");
      }
    }
    break;
  }
  case Opcode::Ret:
    if (!C.atEnd() && !Use(RegClass::Int))
      return false;
    break;
  case Opcode::Out:
    if (!Use(DataRC))
      return false;
    break;
  default:
    // Three-register ALU / FP forms.
    if (!Def(DataRC) || !Comma() || !Use(DataRC) || !Comma() || !Use(DataRC))
      return false;
    break;
  }

  if (!C.atEnd())
    return fail("unexpected trailing text '" + C.rest() + "'");

  // A terminator may not be followed by more instructions in the block;
  // start a fresh anonymous block if code continues.
  BB->append(std::move(I));
  if (Raw->isTerminator())
    CurBB = nullptr;
  return true;
}

bool ModuleParser::parseBodyLine(Cursor &C) {
  std::string First = C.ident();
  if (First.empty())
    return fail("expected label or instruction");

  // "name:" introduces a new basic block.
  if (C.eat(':')) {
    if (!C.atEnd())
      return fail("unexpected text after label");
    if (F->blockByName(First))
      return fail("duplicate label '" + First + "'");
    CurBB = F->addBlock(First);
    return true;
  }

  // Mnemonics may carry the ",a" FPa suffix; the ident stops at the
  // comma, so glue the suffix back on. Operand commas never directly
  // follow the mnemonic (a register or immediate always intervenes).
  std::string Mnemonic = First;
  if (C.eat(',')) {
    std::string Suffix = C.ident();
    if (Suffix != "a")
      return fail("expected 'a' after ',' in mnemonic");
    Mnemonic += ",a";
  }
  return parseInstr(C, Mnemonic);
}

ParseResult ModuleParser::run() {
  std::istringstream In(Source);
  std::string RawLine;
  while (std::getline(In, RawLine)) {
    ++LineNo;
    // Strip comments.
    size_t Hash = RawLine.find('#');
    if (Hash != std::string::npos)
      RawLine = RawLine.substr(0, Hash);
    Cursor C(RawLine);
    if (C.atEnd())
      continue;

    if (!F) {
      std::string Kw = C.ident();
      if (Kw == "global") {
        if (!parseGlobal(C))
          return std::move(Result);
        if (!C.atEnd()) {
          fail("unexpected trailing text after global");
          return std::move(Result);
        }
        continue;
      }
      if (Kw == "func") {
        if (!parseFuncHeader(C))
          return std::move(Result);
        continue;
      }
      fail("expected 'global' or 'func', got '" + Kw + "'");
      return std::move(Result);
    }

    // Inside a function.
    {
      Cursor Probe(RawLine);
      if (Probe.eat('}')) {
        if (!Probe.atEnd()) {
          fail("unexpected text after '}'");
          return std::move(Result);
        }
        if (!finishFunction())
          return std::move(Result);
        continue;
      }
    }
    if (!parseBodyLine(C))
      return std::move(Result);
  }

  if (F) {
    fail("missing '}' at end of function '" + F->name() + "'");
    return std::move(Result);
  }
  M->renumber();
  Result.M = std::move(M);
  return std::move(Result);
}

} // namespace

ParseResult sir::parseModule(const std::string &Source) {
  return ModuleParser(Source).run();
}
