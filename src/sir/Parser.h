//===- sir/Parser.h - Textual form parsing --------------------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the "sir" assembly syntax emitted by sir/Printer.h (and written
/// by hand in tests and examples) back into a Module. Grammar sketch:
///
/// \code
///   module   := (global | func)*
///   global   := "global" NAME SIZE ["=" INT*]
///   func     := "func" NAME "(" [REG ("," REG)*] ")" "{" body "}"
///   body     := (LABEL ":" | instr)*
///   instr    := MNEMONIC operands     ; one per line, "#" comments
///   REG      := "%" IDENT            ; class implied by context: ",a"
///                                    ; suffixed and FP mnemonics use the
///                                    ; FP file, all else the INT file
///   mem      := OFFSET "(" REG ")" | SYMBOL ["+"|"-" OFFSET]
///             | "[" "frame" "+"|"-" OFFSET "]"
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SIR_PARSER_H
#define FPINT_SIR_PARSER_H

#include "sir/IR.h"

#include <memory>
#include <string>

namespace fpint {
namespace sir {

/// Outcome of parsing: either a module, or a diagnostic with the
/// 1-based source line it refers to.
struct ParseResult {
  std::unique_ptr<Module> M;
  std::string Error;
  unsigned Line = 0;

  bool ok() const { return M != nullptr; }
};

/// Parses \p Source into a Module. On success the module is renumbered
/// and ready for analysis; branch targets are resolved.
ParseResult parseModule(const std::string &Source);

} // namespace sir
} // namespace fpint

#endif // FPINT_SIR_PARSER_H
