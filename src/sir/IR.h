//===- sir/IR.h - Instructions, blocks, functions, modules ----------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "sir" intermediate representation. A Module holds global data
/// arrays and Functions; a Function holds BasicBlocks of Instructions over
/// an unbounded set of virtual registers, each with a register class (INT
/// or FP file). Control flow is MIPS-flavored: a conditional branch at the
/// end of a block jumps to its target or falls through to the next block
/// in layout order.
///
/// Every instruction carries a partition bit (InFpa): the paper's
/// compiler assigns integer instructions either to the INT subsystem or to
/// the augmented floating-point subsystem (FPa). The printer renders
/// FPa-assigned instructions with the paper's ",a" suffix.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SIR_IR_H
#define FPINT_SIR_IR_H

#include "sir/Opcode.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace fpint {
namespace sir {

class BasicBlock;
class Function;
class Module;

/// Which architectural register file a value lives in.
enum class RegClass : uint8_t { Int, Fp };

/// A virtual (or, after register allocation, architectural) register.
/// Id 0 is the invalid sentinel; valid registers index the owning
/// function's register-class table.
class Reg {
public:
  Reg() = default;
  explicit Reg(uint32_t Id) : Id(Id) {}

  bool isValid() const { return Id != 0; }
  uint32_t id() const {
    assert(isValid() && "querying invalid register");
    return Id;
  }
  /// Raw id, 0 when invalid. Useful as a map key.
  uint32_t rawId() const { return Id; }

  friend bool operator==(Reg A, Reg B) { return A.Id == B.Id; }
  friend bool operator!=(Reg A, Reg B) { return A.Id != B.Id; }
  friend bool operator<(Reg A, Reg B) { return A.Id < B.Id; }

private:
  uint32_t Id = 0;
};

/// Memory address operand of a load or store:
///   address = (frame pointer if IsFrame) + globalAddress(Symbol) +
///             value(Base) + Offset
/// with the constraint that Symbol and Base are mutually exclusive and
/// IsFrame excludes both (frame slots are addressed by offset alone).
struct MemOperand {
  Reg Base;           ///< Optional base register.
  std::string Symbol; ///< Optional global symbol.
  int32_t Offset = 0; ///< Byte offset.
  bool IsFrame = false;

  static MemOperand reg(Reg Base, int32_t Offset = 0) {
    MemOperand M;
    M.Base = Base;
    M.Offset = Offset;
    return M;
  }
  static MemOperand global(std::string Symbol, int32_t Offset = 0) {
    MemOperand M;
    M.Symbol = std::move(Symbol);
    M.Offset = Offset;
    return M;
  }
  static MemOperand frame(int32_t Offset) {
    MemOperand M;
    M.IsFrame = true;
    M.Offset = Offset;
    return M;
  }
};

/// Role a register use plays in an instruction, as seen by the register
/// dependence graph (Section 3 of the paper): uses feeding an address
/// computation belong to the instruction's *address* node, uses feeding a
/// stored value to its *value* node.
enum class UseKind : uint8_t { Plain, Address, StoreValue };

/// A single IR instruction.
class Instruction {
public:
  Instruction() = default;
  explicit Instruction(Opcode Op) : Op(Op) {}

  Opcode op() const { return Op; }
  void setOp(Opcode NewOp) { Op = NewOp; }

  /// Destination register; invalid for instructions without a def (and
  /// for calls whose result is unused).
  Reg def() const { return Def; }
  void setDef(Reg R) { Def = R; }

  /// Plain register uses. For stores, Uses[0] is the stored value; for
  /// Out, Uses[0] is the emitted value; for calls, the actual arguments;
  /// for branches/ALU ops, the operands.
  const std::vector<Reg> &uses() const { return Uses; }
  std::vector<Reg> &uses() { return Uses; }

  int64_t imm() const { return Imm; }
  void setImm(int64_t V) { Imm = V; }

  float fimm() const { return FImm; }
  void setFImm(float V) { FImm = V; }

  /// Memory operand; meaningful only for loads/stores and La.
  const MemOperand &mem() const { return Mem; }
  MemOperand &mem() { return Mem; }

  /// Callee name; meaningful only for Call.
  const std::string &callee() const { return Callee; }
  void setCallee(std::string Name) { Callee = std::move(Name); }

  /// Branch or jump target block.
  BasicBlock *target() const { return Target; }
  void setTarget(BasicBlock *BB) { Target = BB; }

  /// Whether the partitioner assigned this instruction to the augmented
  /// floating-point subsystem.
  bool inFpa() const { return InFpa; }
  void setInFpa(bool V) { InFpa = V; }

  /// Function-unique id assigned by Function::renumber().
  unsigned id() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  bool isLoad() const { return sir::isLoad(Op); }
  bool isStore() const { return sir::isStore(Op); }
  bool isCondBranch() const { return sir::isCondBranch(Op); }

  /// True if this instruction must be the last in its block.
  bool isTerminator() const { return isBlockEnder(Op) || isCondBranch(); }

  /// Invokes \p Fn for every register use, including the memory base
  /// register, tagged with its RDG role.
  template <typename CallbackT> void forEachUse(CallbackT Fn) const {
    UseKind ValueKind = UseKind::Plain;
    if (isStore() || Op == Opcode::Out)
      ValueKind = UseKind::StoreValue;
    for (const Reg &R : Uses)
      Fn(R, ValueKind);
    if (Mem.Base.isValid())
      Fn(Mem.Base, UseKind::Address);
  }

private:
  Opcode Op = Opcode::Li;
  Reg Def;
  std::vector<Reg> Uses;
  int64_t Imm = 0;
  float FImm = 0.0f;
  MemOperand Mem;
  std::string Callee;
  BasicBlock *Target = nullptr;
  BasicBlock *Parent = nullptr;
  unsigned Id = 0;
  bool InFpa = false;
};

/// A straight-line sequence of instructions with a label. Control enters
/// at the top; it leaves through the terminator or by falling through to
/// the next block in the function's layout order.
class BasicBlock {
public:
  BasicBlock(Function *Parent, std::string Name)
      : ParentFn(Parent), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  Function *parent() const { return ParentFn; }

  /// Layout position within the parent function (set by renumber()).
  unsigned index() const { return Index; }
  void setIndex(unsigned I) { Index = I; }

  using InstrList = std::vector<std::unique_ptr<Instruction>>;
  InstrList &instructions() { return Instrs; }
  const InstrList &instructions() const { return Instrs; }

  bool empty() const { return Instrs.empty(); }
  Instruction *back() { return Instrs.empty() ? nullptr : Instrs.back().get(); }
  const Instruction *back() const {
    return Instrs.empty() ? nullptr : Instrs.back().get();
  }

  /// Appends an instruction and takes ownership.
  Instruction *append(std::unique_ptr<Instruction> I) {
    I->setParent(this);
    Instrs.push_back(std::move(I));
    return Instrs.back().get();
  }

  /// Inserts \p I at position \p Pos (0 = front).
  Instruction *insertAt(size_t Pos, std::unique_ptr<Instruction> I) {
    assert(Pos <= Instrs.size() && "insert position out of range");
    I->setParent(this);
    auto It = Instrs.insert(Instrs.begin() + Pos, std::move(I));
    return It->get();
  }

  /// Returns the position of \p I within this block.
  size_t positionOf(const Instruction *I) const;

  /// Removes \p I from the block (the instruction is destroyed).
  void erase(const Instruction *I) {
    Instrs.erase(Instrs.begin() + positionOf(I));
  }

  /// The block control falls through to (next in layout), or null if this
  /// block ends in an unconditional terminator or is last.
  BasicBlock *fallthrough() const;

  /// Appends this block's successors (taken target and/or fallthrough)
  /// to \p Out.
  void successors(std::vector<BasicBlock *> &Out) const;

private:
  Function *ParentFn;
  std::string Name;
  unsigned Index = 0;
  InstrList Instrs;
};

/// A function: formal parameters (integer calling convention), blocks in
/// layout order, and per-register class information.
class Function {
public:
  Function(Module *Parent, std::string Name)
      : ParentMod(Parent), Name(std::move(Name)) {
    RegClasses.push_back(RegClass::Int); // Slot for the invalid reg id 0.
  }

  const std::string &name() const { return Name; }
  Module *parent() const { return ParentMod; }

  /// Creates a fresh virtual register of class \p RC.
  Reg newReg(RegClass RC = RegClass::Int) {
    RegClasses.push_back(RC);
    return Reg(static_cast<uint32_t>(RegClasses.size() - 1));
  }

  unsigned numRegs() const { return static_cast<unsigned>(RegClasses.size()); }

  RegClass regClass(Reg R) const {
    assert(R.id() < RegClasses.size() && "register out of range");
    return RegClasses[R.id()];
  }
  void setRegClass(Reg R, RegClass RC) {
    assert(R.id() < RegClasses.size() && "register out of range");
    RegClasses[R.id()] = RC;
  }

  /// Formal parameters, in order. The calling convention passes integer
  /// arguments in integer registers (Section 4 of the paper).
  const std::vector<Reg> &formals() const { return Formals; }
  Reg addFormal() {
    Formals.push_back(newReg(RegClass::Int));
    return Formals.back();
  }

  /// Replicates \p Other's formal-parameter list verbatim (for cloning;
  /// the registers must already exist in this function).
  void copyFormalsFrom(const Function &Other) { Formals = Other.Formals; }

  /// Replaces the formal list (used by calling-convention lowering to
  /// retarget formals onto the architectural argument registers).
  void setFormals(std::vector<Reg> NewFormals) {
    Formals = std::move(NewFormals);
  }

  using BlockList = std::vector<std::unique_ptr<BasicBlock>>;
  BlockList &blocks() { return Blocks; }
  const BlockList &blocks() const { return Blocks; }

  BasicBlock *entry() { return Blocks.empty() ? nullptr : Blocks[0].get(); }
  const BasicBlock *entry() const {
    return Blocks.empty() ? nullptr : Blocks[0].get();
  }

  /// Appends a new block named \p BlockName (made unique if necessary).
  BasicBlock *addBlock(std::string BlockName);

  BasicBlock *blockByName(const std::string &BlockName);

  /// Reassigns block layout indices and function-unique instruction ids.
  /// Must be called after structural mutation and before analyses run.
  void renumber();

  /// Total number of instruction ids handed out by the last renumber().
  unsigned numInstrIds() const { return NumInstrIds; }

  /// Number of 4-byte spill slots in this function's frame (set by the
  /// register allocator).
  unsigned frameWords() const { return FrameWords; }
  void setFrameWords(unsigned W) { FrameWords = W; }

  /// Whether registers have been mapped to architectural registers.
  bool isAllocated() const { return Allocated; }
  void setAllocated(bool V) { Allocated = V; }

  /// Visits every instruction in layout order.
  template <typename CallbackT> void forEachInstr(CallbackT Fn) const {
    for (const auto &BB : Blocks)
      for (const auto &I : BB->instructions())
        Fn(*I);
  }

private:
  Module *ParentMod;
  std::string Name;
  std::vector<RegClass> RegClasses;
  std::vector<Reg> Formals;
  BlockList Blocks;
  unsigned NumInstrIds = 0;
  unsigned FrameWords = 0;
  bool Allocated = false;
};

/// A named global data array of 4-byte words with optional initial values
/// (zero-filled beyond the initializer).
struct Global {
  std::string Name;
  uint32_t SizeWords = 0;
  std::vector<int32_t> Init;
};

/// A whole program: globals plus functions. Execution starts at "main".
class Module {
public:
  Function *addFunction(std::string Name);
  Function *functionByName(const std::string &Name);
  const Function *functionByName(const std::string &Name) const;

  std::vector<std::unique_ptr<Function>> &functions() { return Funcs; }
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

  Global &addGlobal(std::string Name, uint32_t SizeWords,
                    std::vector<int32_t> Init = {});
  const Global *globalByName(const std::string &Name) const;
  const std::vector<Global> &globals() const { return Globals; }

  /// Renumbers every function.
  void renumber();

  /// Deep-copies the entire module (used to compare original vs
  /// partitioned programs).
  std::unique_ptr<Module> clone() const;

private:
  std::vector<std::unique_ptr<Function>> Funcs;
  std::vector<Global> Globals;
  std::unordered_map<std::string, Function *> FuncIndex;
  std::unordered_map<std::string, size_t> GlobalIndex;
};

} // namespace sir
} // namespace fpint

#endif // FPINT_SIR_IR_H
