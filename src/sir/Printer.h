//===- sir/Printer.h - Textual form emission ------------------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders modules, functions, and instructions in the "sir" assembly
/// syntax. Instructions assigned to the augmented floating-point
/// subsystem print with the paper's ",a" suffix (e.g. "add,a"); loads and
/// stores whose data side lives in the FP register file print as the MIPS
/// "l.s"/"s.s" forms. The output round-trips through sir::parseModule.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SIR_PRINTER_H
#define FPINT_SIR_PRINTER_H

#include "sir/IR.h"

#include <string>

namespace fpint {
namespace sir {

/// Renders one instruction (no trailing newline).
std::string toString(const Instruction &I);

/// Renders a whole function.
std::string toString(const Function &F);

/// Renders a whole module (globals then functions).
std::string toString(const Module &M);

} // namespace sir
} // namespace fpint

#endif // FPINT_SIR_PRINTER_H
