//===- sir/Verifier.cpp - IR structural invariants -------------------------===//

#include "sir/Verifier.h"

#include "sir/Printer.h"

#include <unordered_map>

using namespace fpint;
using namespace fpint::sir;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Module &M, const VerifyOptions &Opts) : M(M), Opts(Opts) {}

  std::vector<std::string> run() {
    for (const auto &F : M.functions()) {
      checkFunction(*F);
      if (Opts.CheckDataflow)
        checkDataflow(*F);
    }
    return std::move(Errors);
  }

private:
  void error(const Function &F, const Instruction *I, const std::string &Msg) {
    std::string S = F.name();
    if (I)
      S += ": '" + toString(*I) + "'";
    S += ": " + Msg;
    Errors.push_back(std::move(S));
  }

  void checkClass(const Function &F, const Instruction &I, Reg R,
                  RegClass Expected, const char *Role) {
    if (!R.isValid()) {
      error(F, &I, std::string("invalid ") + Role + " register");
      return;
    }
    if (R.id() >= F.numRegs()) {
      error(F, &I, std::string(Role) + " register id out of range");
      return;
    }
    if (F.regClass(R) != Expected)
      error(F, &I,
            std::string(Role) + " register has wrong class (expected " +
                (Expected == RegClass::Fp ? "fp" : "int") + ")");
  }

  void checkFunction(const Function &F);
  void checkInstruction(const Function &F, const Instruction &I);
  void checkDataflow(const Function &F);

  const Module &M;
  VerifyOptions Opts;
  std::vector<std::string> Errors;
};

/// Must-definition forward dataflow: a register is "defined" at a point
/// iff every path from the function entry to that point contains a def
/// of it. A use of an undefined register is reported. Unreachable
/// blocks keep the optimistic "everything defined" state and are never
/// flagged.
void VerifierImpl::checkDataflow(const Function &F) {
  // Register-allocated code defines registers through the calling
  // convention and prologue conventions this analysis cannot see.
  if (F.isAllocated() || F.blocks().empty())
    return;

  const size_t NumBlocks = F.blocks().size();
  const unsigned NumRegs = F.numRegs();
  std::unordered_map<const BasicBlock *, size_t> Index;
  for (size_t B = 0; B < NumBlocks; ++B)
    Index[F.blocks()[B].get()] = B;

  // In-state per block; top is "all defined" so that merges only ever
  // remove facts (intersection semilattice).
  std::vector<std::vector<bool>> In(NumBlocks,
                                    std::vector<bool>(NumRegs, true));
  std::vector<bool> Entry(NumRegs, false);
  for (Reg Formal : F.formals())
    if (Formal.isValid() && Formal.id() < NumRegs)
      Entry[Formal.id()] = true;
  In[0] = Entry;

  auto transfer = [&](size_t B, std::vector<bool> State) {
    for (const auto &I : F.blocks()[B]->instructions())
      if (I->def().isValid() && I->def().id() < NumRegs)
        State[I->def().id()] = true;
    return State;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B = 0; B < NumBlocks; ++B) {
      std::vector<bool> Out = transfer(B, In[B]);
      std::vector<BasicBlock *> Succs;
      F.blocks()[B]->successors(Succs);
      for (BasicBlock *Succ : Succs) {
        auto It = Index.find(Succ);
        if (It == Index.end())
          continue; // Foreign target; reported structurally already.
        std::vector<bool> &SuccIn = In[It->second];
        for (unsigned R = 0; R < NumRegs; ++R)
          if (SuccIn[R] && !Out[R]) {
            SuccIn[R] = false;
            Changed = true;
          }
      }
    }
  }

  // Report: linear scan per block against the converged in-state.
  for (size_t B = 0; B < NumBlocks; ++B) {
    std::vector<bool> State = In[B];
    for (const auto &I : F.blocks()[B]->instructions()) {
      I->forEachUse([&](Reg U, UseKind) {
        if (U.isValid() && U.id() < NumRegs && !State[U.id()])
          error(F, I.get(),
                "use of register %r" + std::to_string(U.id()) +
                    " without a definition on every path");
      });
      if (I->def().isValid() && I->def().id() < NumRegs)
        State[I->def().id()] = true;
    }
  }
}

void VerifierImpl::checkFunction(const Function &F) {
  if (F.blocks().empty()) {
    error(F, nullptr, "function has no blocks");
    return;
  }
  // Formals are integer registers by the base calling convention; the
  // Section 6.6 interprocedural extension may retarget some to the FP
  // file, so either class is structurally valid.
  for (Reg Formal : F.formals())
    if (!Formal.isValid() || Formal.id() >= F.numRegs())
      error(F, nullptr, "formal parameter register out of range");

  for (const auto &BB : F.blocks()) {
    const auto &Instrs = BB->instructions();
    for (size_t Pos = 0; Pos < Instrs.size(); ++Pos) {
      const Instruction &I = *Instrs[Pos];
      if (I.isTerminator() && Pos + 1 != Instrs.size())
        error(F, &I, "terminator is not the last instruction in its block");
      checkInstruction(F, I);
    }
  }

  // Control must not fall off the end of the function.
  const BasicBlock &Last = *F.blocks().back();
  const Instruction *End = Last.back();
  if (!End || !isBlockEnder(End->op()))
    error(F, End, "function may fall off its final block");
}

void VerifierImpl::checkInstruction(const Function &F, const Instruction &I) {
  const Opcode Op = I.op();

  if (I.inFpa() && !fpaSupports(Op) && Op != Opcode::Out)
    error(F, &I, "instruction assigned to FPa but not offloadable");
  if (isFpOpcode(Op) && I.inFpa())
    error(F, &I, "native FP instruction must not carry the FPa bit");

  // Branch/jump targets.
  if (I.isCondBranch() || Op == Opcode::Jump) {
    if (!I.target())
      error(F, &I, "missing branch target");
    else if (I.target()->parent() != &F)
      error(F, &I, "branch target belongs to another function");
  }

  // Memory operands.
  if (isMemory(Op) || Op == Opcode::La) {
    const MemOperand &Mem = I.mem();
    if (Mem.IsFrame && (Mem.Base.isValid() || !Mem.Symbol.empty()))
      error(F, &I, "frame address must not also use base/symbol");
    if (Mem.Base.isValid() && !Mem.Symbol.empty())
      error(F, &I, "address must not combine base register and symbol");
    if (!Mem.Symbol.empty() && !M.globalByName(Mem.Symbol))
      error(F, &I, "unknown global '" + Mem.Symbol + "'");
    if (Mem.Base.isValid())
      checkClass(F, I, Mem.Base, RegClass::Int, "address base");
  }

  // Callee resolution.
  if (Op == Opcode::Call) {
    const Function *Callee = M.functionByName(I.callee());
    if (!Callee)
      error(F, &I, "unknown callee '" + I.callee() + "'");
    else if (Callee->formals().size() != I.uses().size())
      error(F, &I, "argument count does not match callee formals");
  }

  // Expected register classes, mirroring the parser's rules.
  const RegClass DataRC =
      (I.inFpa() || isFpOpcode(Op)) ? RegClass::Fp : RegClass::Int;

  switch (Op) {
  case Opcode::Lw:
    // Word loads may target either file (l.s form).
    if (I.def().isValid() && I.def().id() >= F.numRegs())
      error(F, &I, "def register id out of range");
    break;
  case Opcode::Lb:
  case Opcode::Lbu:
    checkClass(F, I, I.def(), RegClass::Int, "def");
    break;
  case Opcode::Sw:
    if (!I.uses().empty() && I.uses()[0].isValid() &&
        I.uses()[0].id() >= F.numRegs())
      error(F, &I, "store value register id out of range");
    break;
  case Opcode::Sb:
    if (!I.uses().empty())
      checkClass(F, I, I.uses()[0], RegClass::Int, "store value");
    break;
  case Opcode::CpToFp:
    checkClass(F, I, I.def(), RegClass::Fp, "def");
    checkClass(F, I, I.uses()[0], RegClass::Int, "source");
    break;
  case Opcode::CpToInt:
    checkClass(F, I, I.def(), RegClass::Int, "def");
    checkClass(F, I, I.uses()[0], RegClass::Fp, "source");
    break;
  case Opcode::Call: {
    // Each argument's class must match the callee's formal class (INT
    // by convention; FP when the 6.6 extension retargeted the slot).
    const Function *Callee = M.functionByName(I.callee());
    for (size_t A = 0; A < I.uses().size(); ++A) {
      RegClass Expected = RegClass::Int;
      if (Callee && A < Callee->formals().size())
        Expected = Callee->regClass(Callee->formals()[A]);
      checkClass(F, I, I.uses()[A], Expected, "call argument");
    }
    if (I.def().isValid())
      checkClass(F, I, I.def(), RegClass::Int, "call result");
    break;
  }
  case Opcode::Ret:
    if (!I.uses().empty())
      checkClass(F, I, I.uses()[0], RegClass::Int, "return value");
    break;
  case Opcode::Jump:
    break;
  case Opcode::La:
    checkClass(F, I, I.def(), RegClass::Int, "def");
    break;
  default:
    if (hasDef(Op) && I.def().isValid())
      checkClass(F, I, I.def(), DataRC, "def");
    else if (hasDef(Op) && Op != Opcode::Call && !I.def().isValid())
      error(F, &I, "missing def register");
    for (Reg U : I.uses())
      checkClass(F, I, U, DataRC, "use");
    break;
  }
}

} // namespace

std::vector<std::string> sir::verify(const Module &M) {
  return VerifierImpl(M, VerifyOptions()).run();
}

std::vector<std::string> sir::verify(const Module &M,
                                     const VerifyOptions &Opts) {
  return VerifierImpl(M, Opts).run();
}
