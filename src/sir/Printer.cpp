//===- sir/Printer.cpp - Textual form emission -----------------------------===//

#include "sir/Printer.h"

#include <cstdio>

using namespace fpint;
using namespace fpint::sir;

namespace {

std::string regName(const Function &F, Reg R) {
  if (!R.isValid())
    return "%<invalid>";
  const char *Prefix = F.regClass(R) == RegClass::Fp ? "%f" : "%r";
  return Prefix + std::to_string(R.id());
}

std::string memString(const MemOperand &Mem) {
  char Buf[128];
  if (Mem.IsFrame) {
    std::snprintf(Buf, sizeof(Buf), "[frame%+d]", Mem.Offset);
    return Buf;
  }
  if (!Mem.Symbol.empty()) {
    if (Mem.Offset == 0)
      return Mem.Symbol;
    std::snprintf(Buf, sizeof(Buf), "%s%+d", Mem.Symbol.c_str(), Mem.Offset);
    return Buf;
  }
  return std::to_string(Mem.Offset) + "(" +
         (Mem.Base.isValid() ? "%r" + std::to_string(Mem.Base.id())
                             : std::string("%<invalid>")) +
         ")";
}

} // namespace

std::string sir::toString(const Instruction &I) {
  const Function &F = *I.parent()->parent();
  const Opcode Op = I.op();
  std::string Mn = opcodeName(Op);

  // Loads/stores with FP-file data print as the .s forms.
  if (Op == Opcode::Lw && I.def().isValid() &&
      F.regClass(I.def()) == RegClass::Fp)
    Mn = "l.s";
  if (Op == Opcode::Sw && !I.uses().empty() &&
      F.regClass(I.uses()[0]) == RegClass::Fp)
    Mn = "s.s";

  if (I.inFpa())
    Mn += ",a";

  auto R = [&](Reg Rg) { return regName(F, Rg); };
  // Tolerate a missing target: the verifier prints malformed branches in
  // its diagnostics, and that must not crash.
  auto T = [&]() {
    return I.target() ? I.target()->name() : std::string("<no-target>");
  };

  std::string S = Mn + " ";
  switch (Op) {
  case Opcode::Li:
    S += R(I.def()) + ", " + std::to_string(I.imm());
    break;
  case Opcode::FLi: {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.9g", static_cast<double>(I.fimm()));
    S += R(I.def()) + ", " + Buf;
    break;
  }
  case Opcode::La:
    S += R(I.def()) + ", " + memString(I.mem());
    break;
  case Opcode::Move:
  case Opcode::FMove:
  case Opcode::CpToFp:
  case Opcode::CpToInt:
  case Opcode::FCvtIF:
  case Opcode::FCvtFI:
    S += R(I.def()) + ", " + R(I.uses()[0]);
    break;
  case Opcode::AddI:
  case Opcode::AndI:
  case Opcode::OrI:
  case Opcode::XorI:
  case Opcode::Sll:
  case Opcode::Srl:
  case Opcode::Sra:
  case Opcode::SltI:
    S += R(I.def()) + ", " + R(I.uses()[0]) + ", " + std::to_string(I.imm());
    break;
  case Opcode::Lw:
  case Opcode::Lb:
  case Opcode::Lbu:
    S += R(I.def()) + ", " + memString(I.mem());
    break;
  case Opcode::Sw:
  case Opcode::Sb:
    S += R(I.uses()[0]) + ", " + memString(I.mem());
    break;
  case Opcode::Beq:
  case Opcode::Bne:
    S += R(I.uses()[0]) + ", " + R(I.uses()[1]) + ", " + T();
    break;
  case Opcode::Blez:
  case Opcode::Bgtz:
  case Opcode::Bltz:
  case Opcode::FBnez:
  case Opcode::FBeqz:
    S += R(I.uses()[0]) + ", " + T();
    break;
  case Opcode::Jump:
    S += T();
    break;
  case Opcode::Call: {
    if (I.def().isValid())
      S += R(I.def()) + ", ";
    S += I.callee() + "(";
    for (size_t A = 0; A < I.uses().size(); ++A) {
      if (A)
        S += ", ";
      S += R(I.uses()[A]);
    }
    S += ")";
    break;
  }
  case Opcode::Ret:
    if (I.uses().empty())
      S = Mn;
    else
      S += R(I.uses()[0]);
    break;
  case Opcode::Out:
    S += R(I.uses()[0]);
    break;
  default:
    // Three-register ALU and FP forms.
    S += R(I.def()) + ", " + R(I.uses()[0]) + ", " + R(I.uses()[1]);
    break;
  }
  return S;
}

std::string sir::toString(const Function &F) {
  std::string S = "func " + F.name() + "(";
  for (size_t A = 0; A < F.formals().size(); ++A) {
    if (A)
      S += ", ";
    S += regName(F, F.formals()[A]);
  }
  S += ") {\n";
  for (const auto &BB : F.blocks()) {
    S += BB->name() + ":\n";
    for (const auto &I : BB->instructions())
      S += "  " + toString(*I) + "\n";
  }
  S += "}\n";
  return S;
}

std::string sir::toString(const Module &M) {
  std::string S;
  for (const Global &G : M.globals()) {
    S += "global " + G.Name + " " + std::to_string(G.SizeWords);
    if (!G.Init.empty()) {
      S += " =";
      for (int32_t V : G.Init)
        S += " " + std::to_string(V);
    }
    S += "\n";
  }
  if (!M.globals().empty())
    S += "\n";
  for (const auto &F : M.functions())
    S += toString(*F) + "\n";
  return S;
}
