//===- sir/IRBuilder.h - Convenience construction API ---------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An append-only instruction builder, used by examples, tests, and the
/// synthetic workload generators. Each emit method creates fresh virtual
/// registers for results unless an explicit destination is given.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SIR_IRBUILDER_H
#define FPINT_SIR_IRBUILDER_H

#include "sir/IR.h"

namespace fpint {
namespace sir {

/// Builds instructions at the end of a basic block.
class IRBuilder {
public:
  explicit IRBuilder(BasicBlock *BB = nullptr) : BB(BB) {}

  void setInsertPoint(BasicBlock *NewBB) { BB = NewBB; }
  BasicBlock *insertBlock() const { return BB; }
  Function *function() const { return BB ? BB->parent() : nullptr; }

  // Three-register ALU operations (rd = rs OP rt).
  Reg binop(Opcode Op, Reg A, Reg B);
  Reg add(Reg A, Reg B) { return binop(Opcode::Add, A, B); }
  Reg sub(Reg A, Reg B) { return binop(Opcode::Sub, A, B); }
  Reg and_(Reg A, Reg B) { return binop(Opcode::And, A, B); }
  Reg or_(Reg A, Reg B) { return binop(Opcode::Or, A, B); }
  Reg xor_(Reg A, Reg B) { return binop(Opcode::Xor, A, B); }
  Reg nor_(Reg A, Reg B) { return binop(Opcode::Nor, A, B); }
  Reg slt(Reg A, Reg B) { return binop(Opcode::Slt, A, B); }
  Reg sltu(Reg A, Reg B) { return binop(Opcode::SltU, A, B); }
  Reg mul(Reg A, Reg B) { return binop(Opcode::Mul, A, B); }
  Reg div(Reg A, Reg B) { return binop(Opcode::Div, A, B); }
  Reg rem(Reg A, Reg B) { return binop(Opcode::Rem, A, B); }
  Reg sllv(Reg A, Reg B) { return binop(Opcode::SllV, A, B); }
  Reg srlv(Reg A, Reg B) { return binop(Opcode::SrlV, A, B); }
  Reg srav(Reg A, Reg B) { return binop(Opcode::SraV, A, B); }

  // Register-immediate ALU operations (rd = rs OP imm).
  Reg immop(Opcode Op, Reg A, int64_t Imm);
  Reg addi(Reg A, int64_t Imm) { return immop(Opcode::AddI, A, Imm); }
  Reg andi(Reg A, int64_t Imm) { return immop(Opcode::AndI, A, Imm); }
  Reg ori(Reg A, int64_t Imm) { return immop(Opcode::OrI, A, Imm); }
  Reg xori(Reg A, int64_t Imm) { return immop(Opcode::XorI, A, Imm); }
  Reg sll(Reg A, int64_t Imm) { return immop(Opcode::Sll, A, Imm); }
  Reg srl(Reg A, int64_t Imm) { return immop(Opcode::Srl, A, Imm); }
  Reg sra(Reg A, int64_t Imm) { return immop(Opcode::Sra, A, Imm); }
  Reg slti(Reg A, int64_t Imm) { return immop(Opcode::SltI, A, Imm); }

  /// rd = imm.
  Reg li(int64_t Imm);
  /// Writes imm into an existing destination register.
  void liInto(Reg Dst, int64_t Imm);
  /// rd = rs.
  Reg move(Reg A);
  /// Writes rs into an existing destination register.
  void moveInto(Reg Dst, Reg Src);
  /// rd = address of global \p Symbol + Offset.
  Reg la(const std::string &Symbol, int32_t Offset = 0);

  // Memory.
  Reg load(Opcode Op, MemOperand Mem);
  Reg lw(MemOperand Mem) { return load(Opcode::Lw, Mem); }
  Reg lb(MemOperand Mem) { return load(Opcode::Lb, Mem); }
  Reg lbu(MemOperand Mem) { return load(Opcode::Lbu, Mem); }
  /// Loads into the floating-point register file (l.s analogue): the
  /// destination register gets FP class.
  Reg lwFp(MemOperand Mem);
  void store(Opcode Op, Reg Value, MemOperand Mem);
  void sw(Reg Value, MemOperand Mem) { store(Opcode::Sw, Value, Mem); }
  void sb(Reg Value, MemOperand Mem) { store(Opcode::Sb, Value, Mem); }

  // Control flow.
  void br(Opcode Op, Reg A, Reg B, BasicBlock *Target);
  void beq(Reg A, Reg B, BasicBlock *T) { br(Opcode::Beq, A, B, T); }
  void bne(Reg A, Reg B, BasicBlock *T) { br(Opcode::Bne, A, B, T); }
  void blez(Reg A, BasicBlock *T) { br(Opcode::Blez, A, Reg(), T); }
  void bgtz(Reg A, BasicBlock *T) { br(Opcode::Bgtz, A, Reg(), T); }
  void bltz(Reg A, BasicBlock *T) { br(Opcode::Bltz, A, Reg(), T); }
  void jmp(BasicBlock *Target);
  /// Emits a call; returns the result register (invalid if \p WantResult
  /// is false).
  Reg call(const std::string &Callee, const std::vector<Reg> &Args,
           bool WantResult = true);
  void ret();
  void ret(Reg Value);

  /// Appends \p Value to the program output stream.
  void out(Reg Value);

  // Inter-file copies.
  Reg cpToFp(Reg IntSrc);
  Reg cpToInt(Reg FpSrc);

  // Floating point.
  Reg fbinop(Opcode Op, Reg A, Reg B);
  Reg fadd(Reg A, Reg B) { return fbinop(Opcode::FAdd, A, B); }
  Reg fsub(Reg A, Reg B) { return fbinop(Opcode::FSub, A, B); }
  Reg fmul(Reg A, Reg B) { return fbinop(Opcode::FMul, A, B); }
  Reg fdiv(Reg A, Reg B) { return fbinop(Opcode::FDiv, A, B); }
  Reg fcmplt(Reg A, Reg B) { return fbinop(Opcode::FCmpLt, A, B); }
  Reg fcmple(Reg A, Reg B) { return fbinop(Opcode::FCmpLe, A, B); }
  Reg fcmpeq(Reg A, Reg B) { return fbinop(Opcode::FCmpEq, A, B); }
  Reg fli(float Imm);
  Reg fmove(Reg A);
  Reg fcvtIF(Reg FpIntBits);
  Reg fcvtFI(Reg FpVal);
  void fbnez(Reg Cond, BasicBlock *Target);
  void fbeqz(Reg Cond, BasicBlock *Target);

private:
  Instruction *emit(Opcode Op);
  BasicBlock *BB = nullptr;
};

} // namespace sir
} // namespace fpint

#endif // FPINT_SIR_IRBUILDER_H
