//===- sir/IR.cpp - Instructions, blocks, functions, modules --------------===//

#include "sir/IR.h"

#include <algorithm>

using namespace fpint;
using namespace fpint::sir;

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

size_t BasicBlock::positionOf(const Instruction *I) const {
  for (size_t Pos = 0, E = Instrs.size(); Pos != E; ++Pos)
    if (Instrs[Pos].get() == I)
      return Pos;
  assert(false && "instruction not in this block");
  return Instrs.size();
}

BasicBlock *BasicBlock::fallthrough() const {
  const Instruction *Last = back();
  if (Last && isBlockEnder(Last->op()))
    return nullptr;
  const auto &Blocks = ParentFn->blocks();
  if (Index + 1 < Blocks.size())
    return Blocks[Index + 1].get();
  return nullptr;
}

void BasicBlock::successors(std::vector<BasicBlock *> &Out) const {
  const Instruction *Last = back();
  if (Last && Last->isCondBranch()) {
    Out.push_back(Last->target());
    if (BasicBlock *FT = fallthrough())
      Out.push_back(FT);
    return;
  }
  if (Last && Last->op() == Opcode::Jump) {
    Out.push_back(Last->target());
    return;
  }
  if (Last && Last->op() == Opcode::Ret)
    return;
  if (BasicBlock *FT = fallthrough())
    Out.push_back(FT);
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

BasicBlock *Function::addBlock(std::string BlockName) {
  // Make the label unique within the function if it collides.
  if (blockByName(BlockName)) {
    unsigned Suffix = 1;
    std::string Candidate;
    do {
      Candidate = BlockName + "." + std::to_string(Suffix++);
    } while (blockByName(Candidate));
    BlockName = Candidate;
  }
  Blocks.push_back(std::make_unique<BasicBlock>(this, std::move(BlockName)));
  Blocks.back()->setIndex(static_cast<unsigned>(Blocks.size() - 1));
  return Blocks.back().get();
}

BasicBlock *Function::blockByName(const std::string &BlockName) {
  for (const auto &BB : Blocks)
    if (BB->name() == BlockName)
      return BB.get();
  return nullptr;
}

void Function::renumber() {
  unsigned NextId = 0;
  for (size_t I = 0; I < Blocks.size(); ++I) {
    Blocks[I]->setIndex(static_cast<unsigned>(I));
    for (const auto &Instr : Blocks[I]->instructions()) {
      Instr->setParent(Blocks[I].get());
      Instr->setId(NextId++);
      // Grow the frame to cover any frame-relative slot the code touches
      // (hand-written tests use [frame+N] without declaring a size; the
      // register allocator sets FrameWords explicitly and this never
      // shrinks it).
      if (isMemory(Instr->op()) && Instr->mem().IsFrame &&
          Instr->mem().Offset >= 0) {
        unsigned NeedWords = static_cast<unsigned>(Instr->mem().Offset) / 4 + 1;
        if (NeedWords > FrameWords)
          FrameWords = NeedWords;
      }
    }
  }
  NumInstrIds = NextId;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Function *Module::addFunction(std::string Name) {
  assert(!FuncIndex.count(Name) && "duplicate function name");
  Funcs.push_back(std::make_unique<Function>(this, Name));
  FuncIndex[Name] = Funcs.back().get();
  return Funcs.back().get();
}

Function *Module::functionByName(const std::string &Name) {
  auto It = FuncIndex.find(Name);
  return It == FuncIndex.end() ? nullptr : It->second;
}

const Function *Module::functionByName(const std::string &Name) const {
  auto It = FuncIndex.find(Name);
  return It == FuncIndex.end() ? nullptr : It->second;
}

Global &Module::addGlobal(std::string Name, uint32_t SizeWords,
                          std::vector<int32_t> Init) {
  assert(!GlobalIndex.count(Name) && "duplicate global name");
  assert(Init.size() <= SizeWords && "initializer larger than global");
  GlobalIndex[Name] = Globals.size();
  Globals.push_back(Global{std::move(Name), SizeWords, std::move(Init)});
  return Globals.back();
}

const Global *Module::globalByName(const std::string &Name) const {
  auto It = GlobalIndex.find(Name);
  return It == GlobalIndex.end() ? nullptr : &Globals[It->second];
}

void Module::renumber() {
  for (const auto &F : Funcs)
    F->renumber();
}

std::unique_ptr<Module> Module::clone() const {
  auto New = std::make_unique<Module>();
  for (const Global &G : Globals)
    New->addGlobal(G.Name, G.SizeWords, G.Init);
  for (const auto &F : Funcs) {
    Function *NF = New->addFunction(F->name());
    // Reserve identical register ids and classes.
    for (unsigned Id = 1; Id < F->numRegs(); ++Id)
      NF->newReg(F->regClass(Reg(Id)));
    NF->copyFormalsFrom(*F);
    NF->setFrameWords(F->frameWords());
    NF->setAllocated(F->isAllocated());
    // Create blocks first so branch targets can be resolved.
    for (const auto &BB : F->blocks())
      NF->addBlock(BB->name());
    for (size_t BI = 0; BI < F->blocks().size(); ++BI) {
      const BasicBlock &OldBB = *F->blocks()[BI];
      BasicBlock *NewBB = NF->blocks()[BI].get();
      for (const auto &I : OldBB.instructions()) {
        auto NI = std::make_unique<Instruction>(*I);
        if (I->target())
          NI->setTarget(NF->blocks()[I->target()->index()].get());
        NewBB->append(std::move(NI));
      }
    }
  }
  New->renumber();
  return New;
}
