//===- support/FaultInject.h - Test-only fault injection hooks ------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end proof hooks for the fault-containment layer. When the
/// environment carries
///
///   FPINT_FAULT=<kind>:<where>[:once]     kind in {crash, hang, oom}
///
/// every call to fault::inject("<where>") executes the named fault at
/// that point: `crash` dereferences null (SIGSEGV), `hang` ignores
/// SIGTERM and sleeps forever (forcing the watchdog's SIGKILL
/// escalation), `oom` allocates and touches memory until the address-
/// space limit kills the process. With the `:once` suffix the fault
/// only fires while the harness attempt counter is 1 -- the sandbox
/// sets the counter before forking each (re)try, so `:once` models a
/// transient failure that a retry recovers from.
///
/// Instrumented sites: "compile" (core::compileAndMeasure), "simulate"
/// (core::simulate), "cell" (bench::runMatrix sandboxed cell), "oracle"
/// (testgen::runOracle), "serve" (serve::Server miss execution, fired
/// inside the sandbox child or the in-process path),
/// "campaign:journal" (campaign::Journal::append, fired in the *runner*
/// process after a record is durably on disk -- killing the harness
/// itself, which the resumable campaign layer must survive) and
/// "campaign:cell" (campaign::Runner cell execution, fired inside the
/// sandbox child). The hooks are inert unless FPINT_FAULT is set; CI's
/// fault-injection, serve-smoke, and campaign-resume jobs are the only
/// intended users.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SUPPORT_FAULTINJECT_H
#define FPINT_SUPPORT_FAULTINJECT_H

namespace fpint {
namespace support {
namespace fault {

/// True when FPINT_FAULT parsed to an armed fault spec.
bool enabled();

/// Executes the armed fault if \p Where matches the spec (and, for
/// ":once" specs, the attempt counter is 1). No-op otherwise. May not
/// return.
void inject(const char *Where);

/// Sets the 1-based attempt counter consulted by ":once" specs. The
/// sandboxing harness calls this in the parent before each fork, so
/// children inherit the attempt number they are running under.
/// campaign::Runner instead has each sandbox child set its own attempt
/// first thing after fork (cells fork from pool workers, where a
/// shared pre-fork counter would race).
void setAttempt(unsigned Attempt);

/// Arms (or, with nullptr, disarms) a fault spec in-process, exactly
/// as if FPINT_FAULT carried \p SpecText. Tests use this to exercise
/// fault paths without re-execing: FPINT_FAULT is parsed once into a
/// static, so a setenv after the first inject()/enabled() call is
/// invisible -- and forked children inherit the already-parsed spec.
/// An armed override takes precedence over the environment spec and
/// is inherited across fork like the rest of the process image.
void armForTest(const char *SpecText);

} // namespace fault
} // namespace support
} // namespace fpint

#endif // FPINT_SUPPORT_FAULTINJECT_H
