//===- support/ThreadPool.cpp - Fixed-size task thread pool ---------------===//

#include "support/ThreadPool.h"

#include <cstdlib>

using namespace fpint;
using namespace fpint::support;

unsigned ThreadPool::defaultThreadCount() {
  if (const char *Env = std::getenv("FPINT_JOBS")) {
    long N = std::strtol(Env, nullptr, 10);
    if (N >= 1)
      return static_cast<unsigned>(N);
    return 1; // Malformed or non-positive: degenerate single worker.
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool;
  return Pool;
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = defaultThreadCount();
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  Cv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task(); // packaged_task captures any exception into the future.
  }
}
