//===- support/Hash.h - Platform-stable content hashing -------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repository's one content-hash primitive: 64-bit FNV-1a.
/// std::hash is not stable across standard-library implementations,
/// but these hashes leak into artifacts that outlive a process --
/// golden-baseline run ids (stats::runId) and the on-disk
/// content-addressed cache of the serving layer (serve::DiskCache) --
/// so a fixed, platform-independent function is required.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SUPPORT_HASH_H
#define FPINT_SUPPORT_HASH_H

#include <cstdint>
#include <cstdio>
#include <string>

namespace fpint {
namespace support {

/// 64-bit FNV-1a over \p S, optionally chained from a previous hash
/// (pass the prior result as \p Seed to hash a concatenation without
/// materializing it).
inline uint64_t fnv1a64(const std::string &S,
                        uint64_t Seed = 1469598103934665603ULL) {
  uint64_t H = Seed;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

/// Fixed-width lower-case hex spelling of \p H (16 digits).
inline std::string hex64(uint64_t H) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

} // namespace support
} // namespace fpint

#endif // FPINT_SUPPORT_HASH_H
