//===- support/Json.cpp - Minimal canonical JSON reader/writer ------------===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace fpint;
using namespace fpint::json;

void Value::set(const std::string &Key, Value V) {
  for (auto &M : Members)
    if (M.first == Key) {
      M.second = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

const Value *Value::find(const std::string &Key) const {
  for (const auto &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

double Value::numberOr(const std::string &Key, double Default) const {
  const Value *V = find(Key);
  return V && V->isNumber() ? V->number() : Default;
}

const std::string &Value::strOr(const std::string &Key,
                                const std::string &Default) const {
  const Value *V = find(Key);
  return V && V->isString() ? V->str() : Default;
}

std::string Value::formatDouble(double D) {
  if (std::isnan(D))
    return "null"; // JSON has no NaN/Inf; null is the least-bad spelling.
  if (std::isinf(D))
    return D > 0 ? "1e999" : "-1e999"; // Parses back to +-inf via strtod.
  char Buf[40];
  for (int Precision = 1; Precision <= 17; ++Precision) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, D);
    if (std::strtod(Buf, nullptr) == D)
      break;
  }
  std::string S = Buf;
  // A double spelled without '.', 'e', or "inf"/"nan" would re-parse as
  // an integer; force the distinction so round-trips preserve the kind.
  if (S.find_first_of(".eE") == std::string::npos)
    S += ".0";
  return S;
}

static void escapeString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void Value::dumpTo(std::string &Out, unsigned Indent) const {
  const std::string Pad(2 * (Indent + 1), ' ');
  const std::string Close(2 * Indent, ' ');
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    break;
  case Kind::Int:
    Out += std::to_string(IntV);
    break;
  case Kind::Double:
    Out += formatDouble(DoubleV);
    break;
  case Kind::String:
    escapeString(Out, StringV);
    break;
  case Kind::Array:
    if (Items.empty()) {
      Out += "[]";
      break;
    }
    Out += "[\n";
    for (size_t I = 0; I < Items.size(); ++I) {
      Out += Pad;
      Items[I].dumpTo(Out, Indent + 1);
      Out += I + 1 < Items.size() ? ",\n" : "\n";
    }
    Out += Close + "]";
    break;
  case Kind::Object:
    if (Members.empty()) {
      Out += "{}";
      break;
    }
    Out += "{\n";
    for (size_t I = 0; I < Members.size(); ++I) {
      Out += Pad;
      escapeString(Out, Members[I].first);
      Out += ": ";
      Members[I].second.dumpTo(Out, Indent + 1);
      Out += I + 1 < Members.size() ? ",\n" : "\n";
    }
    Out += Close + "}";
    break;
  }
}

std::string Value::dump() const {
  std::string Out;
  dumpTo(Out, 0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser (recursive descent).
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Err;

  explicit Parser(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &What) {
    Err = What + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = std::strtoul(Text.substr(Pos, 4).c_str(), nullptr, 16);
        Pos += 4;
        // Control characters only (the writer never emits higher
        // escapes); anything else degrades to '?'.
        Out += Code < 0x80 ? static_cast<char>(Code) : '?';
        break;
      }
      default:
        return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(Value &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out = Value::object();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        std::string Key;
        if (!parseString(Key))
          return false;
        if (!consume(':'))
          return false;
        Value V;
        if (!parseValue(V))
          return false;
        Out.set(Key, std::move(V));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        return consume('}');
      }
    }
    if (C == '[') {
      ++Pos;
      Out = Value::array();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        Value V;
        if (!parseValue(V))
          return false;
        Out.push(std::move(V));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        return consume(']');
      }
    }
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    if (Text.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      Out = Value(true);
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      Out = Value(false);
      return true;
    }
    if (Text.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      Out = Value();
      return true;
    }
    // Number: integer unless it needs '.', exponent, or overflows.
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    bool IsDouble = false;
    while (Pos < Text.size()) {
      char D = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(D))) {
        ++Pos;
      } else if (D == '.' || D == 'e' || D == 'E' || D == '+' || D == '-') {
        IsDouble = IsDouble || D == '.' || D == 'e' || D == 'E';
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start)
      return fail("unexpected character");
    std::string Num = Text.substr(Start, Pos - Start);
    errno = 0;
    if (!IsDouble) {
      char *End = nullptr;
      long long I = std::strtoll(Num.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out = Value(static_cast<int64_t>(I));
        return true;
      }
    }
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    Out = Value(D);
    return true;
  }
};

} // namespace

bool Value::parse(const std::string &Text, Value &Out, std::string *Err) {
  Parser P(Text);
  if (!P.parseValue(Out)) {
    if (Err)
      *Err = P.Err;
    return false;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (Err)
      *Err = "trailing content at offset " + std::to_string(P.Pos);
    return false;
  }
  return true;
}
