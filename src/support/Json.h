//===- support/Json.h - Minimal canonical JSON reader/writer --------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON value type for the telemetry subsystem's
/// structured results (stats::Report) and the fpint-report regression
/// gate. Design points:
///
///  * Objects preserve insertion order, and dump() emits a fixed
///    2-space-indented layout, so serialization is canonical: two
///    semantically equal documents built in the same field order
///    produce identical bytes (the bench JSON is diffable with plain
///    `diff` and stable under re-runs).
///  * Numbers distinguish integers (int64) from doubles. Doubles are
///    printed in shortest round-trip form, which makes
///    dump(parse(dump(x))) == dump(x) -- the emit -> parse -> emit
///    round-trip the test suite asserts.
///  * No external dependencies; errors are returned, not thrown.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SUPPORT_JSON_H
#define FPINT_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fpint {
namespace json {

class Value {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Value() : K(Kind::Null) {}
  Value(bool B) : K(Kind::Bool), BoolV(B) {}
  Value(int64_t I) : K(Kind::Int), IntV(I) {}
  Value(uint64_t I) : K(Kind::Int), IntV(static_cast<int64_t>(I)) {}
  Value(int I) : K(Kind::Int), IntV(I) {}
  Value(unsigned I) : K(Kind::Int), IntV(I) {}
  Value(double D) : K(Kind::Double), DoubleV(D) {}
  Value(const char *S) : K(Kind::String), StringV(S) {}
  Value(std::string S) : K(Kind::String), StringV(std::move(S)) {}

  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return BoolV; }
  int64_t integer() const { return IntV; }
  /// Numeric value of either number kind.
  double number() const {
    return K == Kind::Int ? static_cast<double>(IntV) : DoubleV;
  }
  const std::string &str() const { return StringV; }

  /// Array access.
  const std::vector<Value> &items() const { return Items; }
  void push(Value V) { Items.push_back(std::move(V)); }
  size_t size() const { return Items.size(); }
  const Value &operator[](size_t I) const { return Items[I]; }

  /// Object access (insertion-ordered). set() replaces an existing key
  /// in place, preserving its position.
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }
  void set(const std::string &Key, Value V);
  /// Null-kind sentinel when absent.
  const Value *find(const std::string &Key) const;
  /// Convenience: member lookup that returns a default when missing or
  /// kind-mismatched.
  double numberOr(const std::string &Key, double Default) const;
  const std::string &strOr(const std::string &Key,
                           const std::string &Default) const;

  /// Canonical serialization: 2-space indent, objects in insertion
  /// order, shortest-round-trip doubles, "\n"-terminated at top level
  /// only if the caller appends it.
  std::string dump() const;

  /// Parses \p Text into \p Out. Returns false and fills \p Err (with
  /// an offset-annotated message) on malformed input. Object member
  /// order is preserved.
  static bool parse(const std::string &Text, Value &Out, std::string *Err);

  /// Shortest decimal spelling of \p D that parses back to exactly the
  /// same double (exposed for the formatting tests).
  static std::string formatDouble(double D);

private:
  void dumpTo(std::string &Out, unsigned Indent) const;

  Kind K;
  bool BoolV = false;
  int64_t IntV = 0;
  double DoubleV = 0.0;
  std::string StringV;
  std::vector<Value> Items;
  std::vector<std::pair<std::string, Value>> Members;
};

} // namespace json
} // namespace fpint

#endif // FPINT_SUPPORT_JSON_H
