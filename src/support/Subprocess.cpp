//===- support/Subprocess.cpp - Fork-based sandboxed task execution -------===//

#include "support/Subprocess.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace fpint;
using namespace fpint::support;

namespace {

double nowSeconds() {
  using namespace std::chrono;
  return duration_cast<duration<double>>(
             steady_clock::now().time_since_epoch())
      .count();
}

void setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

/// Appends everything currently readable from \p Fd to \p Out;
/// returns false once the peer closed (EOF).
bool drainFd(int Fd, std::string &Out) {
  char Buf[4096];
  for (;;) {
    ssize_t N = read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Out.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N == 0)
      return false; // EOF.
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return true;
    if (errno == EINTR)
      continue;
    return false; // Unexpected error; treat as closed.
  }
}

/// Owns both ends of a pipe(); whatever is still open at scope exit is
/// closed. Every early-return path (second pipe() failing, fork
/// failing) releases its descriptors structurally instead of by
/// hand-written close() sequences.
struct ScopedPipe {
  int Fds[2] = {-1, -1};

  ~ScopedPipe() {
    closeRead();
    closeWrite();
  }
  bool open() { return pipe(Fds) == 0; }
  int readFd() const { return Fds[0]; }
  int writeFd() const { return Fds[1]; }
  void closeRead() {
    if (Fds[0] >= 0) {
      close(Fds[0]);
      Fds[0] = -1;
    }
  }
  void closeWrite() {
    if (Fds[1] >= 0) {
      close(Fds[1]);
      Fds[1] = -1;
    }
  }
};

void applyRlimits(const SandboxLimits &Limits) {
  if (Limits.CpuSeconds > 0) {
    struct rlimit RL;
    RL.rlim_cur = Limits.CpuSeconds;
    RL.rlim_max = Limits.CpuSeconds + 2;
    setrlimit(RLIMIT_CPU, &RL);
  }
  // ASan reserves terabytes of virtual shadow at startup, so any
  // RLIMIT_AS cap makes every subsequent child allocation fail; the
  // wall-clock watchdog still bounds runaway children in those builds.
#if !FPINT_BUILT_WITH_ASAN
  if (Limits.AddressSpaceMb > 0) {
    struct rlimit RL;
    RL.rlim_cur = Limits.AddressSpaceMb << 20;
    RL.rlim_max = Limits.AddressSpaceMb << 20;
    setrlimit(RLIMIT_AS, &RL);
  }
#endif
}

} // namespace

bool Subprocess::writeAll(int Fd, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  while (Len > 0) {
    ssize_t N = write(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

std::string TaskResult::describe() const {
  char Buf[128];
  switch (St) {
  case Status::Ok:
    return "ok";
  case Status::ExitNonZero:
    std::snprintf(Buf, sizeof(Buf), "exit %d", ExitCode);
    return Buf;
  case Status::Signaled: {
    const char *Name = strsignal(TermSignal);
    if (TimedOut)
      std::snprintf(Buf, sizeof(Buf), "timeout after %.1fs (%s)", WallSeconds,
                    Killed ? "SIGKILL" : "SIGTERM");
    else
      std::snprintf(Buf, sizeof(Buf), "signal %d (%s)", TermSignal,
                    Name ? Name : "?");
    return Buf;
  }
  case Status::SpawnFailed:
    return "spawn failed";
  }
  return "?";
}

TaskResult Subprocess::run(const ChildFn &Fn, const SandboxLimits &Limits) {
  TaskResult R;

  // All four descriptors are scope-owned: if the second pipe() or the
  // fork() fails, the destructors release whatever was opened and the
  // caller sees SpawnFailed with the parent's fd table unchanged.
  ScopedPipe PayloadPipe, StderrPipe;
  if (!PayloadPipe.open() || !StderrPipe.open())
    return R;

  const double Start = nowSeconds();
  // The child re-flushes inherited stdio buffers on exit; empty them
  // here so buffered parent output is not duplicated per fork.
  std::fflush(nullptr);
  pid_t Pid = fork();
  if (Pid < 0)
    return R;

  if (Pid == 0) {
    // Child: own process group (so the supervisor can kill everything
    // we might spawn), stderr onto the capture pipe, rlimits, task.
    setpgid(0, 0);
    PayloadPipe.closeRead();
    StderrPipe.closeRead();
    dup2(StderrPipe.writeFd(), 2);
    StderrPipe.closeWrite();
    signal(SIGPIPE, SIG_IGN);
    applyRlimits(Limits);
    int Code = 125;
    try {
      Code = Fn(PayloadPipe.writeFd());
    } catch (const std::exception &E) {
      std::fprintf(stderr, "[subprocess] uncaught exception: %s\n", E.what());
      Code = 125;
    } catch (...) {
      std::fprintf(stderr, "[subprocess] uncaught exception\n");
      Code = 125;
    }
    // _exit, not exit: no atexit handlers (they belong to the parent's
    // lifecycle -- running them here would emit duplicate reports).
    std::fflush(nullptr);
    _exit(Code);
  }

  // Parent / supervisor.
  setpgid(Pid, Pid); // Mirror the child's setpgid (wins either way).
  PayloadPipe.closeWrite();
  StderrPipe.closeWrite();
  setNonBlocking(PayloadPipe.readFd());
  setNonBlocking(StderrPipe.readFd());

  std::string StderrAll;
  const double WallDeadline =
      Limits.WallMs > 0 ? Start + Limits.WallMs / 1000.0 : 0;
  double KillDeadline = 0;
  bool PayloadOpen = true, StderrOpen = true;
  int Status = 0;
  struct rusage Ru;
  std::memset(&Ru, 0, sizeof(Ru));

  for (;;) {
    if (PayloadOpen)
      PayloadOpen = drainFd(PayloadPipe.readFd(), R.Payload);
    if (StderrOpen)
      StderrOpen = drainFd(StderrPipe.readFd(), StderrAll);

    pid_t W = wait4(Pid, &Status, WNOHANG, &Ru);
    if (W == Pid)
      break;
    if (W < 0 && errno != EINTR)
      break; // Should not happen; avoid spinning forever.

    const double Now = nowSeconds();
    if (WallDeadline > 0 && Now >= WallDeadline && !R.TimedOut) {
      R.TimedOut = true;
      kill(-Pid, SIGTERM);
      KillDeadline = Now + Limits.KillGraceMs / 1000.0;
    }
    if (R.TimedOut && !R.Killed && Now >= KillDeadline) {
      R.Killed = true;
      kill(-Pid, SIGKILL);
    }

    struct pollfd Fds[2];
    nfds_t NFds = 0;
    if (PayloadOpen)
      Fds[NFds++] = {PayloadPipe.readFd(), POLLIN, 0};
    if (StderrOpen)
      Fds[NFds++] = {StderrPipe.readFd(), POLLIN, 0};
    poll(NFds ? Fds : nullptr, NFds, 20);
  }

  // Drain whatever the pipes still buffer, then close.
  while (PayloadOpen)
    PayloadOpen = drainFd(PayloadPipe.readFd(), R.Payload);
  while (StderrOpen)
    StderrOpen = drainFd(StderrPipe.readFd(), StderrAll);
  PayloadPipe.closeRead();
  StderrPipe.closeRead();

  R.WallSeconds = nowSeconds() - Start;
  R.PeakRssKb = Ru.ru_maxrss;
  if (StderrAll.size() > Limits.StderrTailBytes)
    StderrAll.erase(0, StderrAll.size() - Limits.StderrTailBytes);
  R.StderrTail = std::move(StderrAll);

  if (WIFEXITED(Status)) {
    R.ExitCode = WEXITSTATUS(Status);
    R.St = R.ExitCode == 0 ? TaskResult::Status::Ok
                           : TaskResult::Status::ExitNonZero;
  } else if (WIFSIGNALED(Status)) {
    R.TermSignal = WTERMSIG(Status);
    R.St = TaskResult::Status::Signaled;
  }
  return R;
}
