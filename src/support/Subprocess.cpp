//===- support/Subprocess.cpp - Fork-based sandboxed task execution -------===//

#include "support/Subprocess.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace fpint;
using namespace fpint::support;

namespace {

double nowSeconds() {
  using namespace std::chrono;
  return duration_cast<duration<double>>(
             steady_clock::now().time_since_epoch())
      .count();
}

void setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

/// Appends everything currently readable from \p Fd to \p Out;
/// returns false once the peer closed (EOF).
bool drainFd(int Fd, std::string &Out) {
  char Buf[4096];
  for (;;) {
    ssize_t N = read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Out.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N == 0)
      return false; // EOF.
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return true;
    if (errno == EINTR)
      continue;
    return false; // Unexpected error; treat as closed.
  }
}

void applyRlimits(const SandboxLimits &Limits) {
  if (Limits.CpuSeconds > 0) {
    struct rlimit RL;
    RL.rlim_cur = Limits.CpuSeconds;
    RL.rlim_max = Limits.CpuSeconds + 2;
    setrlimit(RLIMIT_CPU, &RL);
  }
  // ASan reserves terabytes of virtual shadow at startup, so any
  // RLIMIT_AS cap makes every subsequent child allocation fail; the
  // wall-clock watchdog still bounds runaway children in those builds.
#if !FPINT_BUILT_WITH_ASAN
  if (Limits.AddressSpaceMb > 0) {
    struct rlimit RL;
    RL.rlim_cur = Limits.AddressSpaceMb << 20;
    RL.rlim_max = Limits.AddressSpaceMb << 20;
    setrlimit(RLIMIT_AS, &RL);
  }
#endif
}

} // namespace

bool Subprocess::writeAll(int Fd, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  while (Len > 0) {
    ssize_t N = write(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

std::string TaskResult::describe() const {
  char Buf[128];
  switch (St) {
  case Status::Ok:
    return "ok";
  case Status::ExitNonZero:
    std::snprintf(Buf, sizeof(Buf), "exit %d", ExitCode);
    return Buf;
  case Status::Signaled: {
    const char *Name = strsignal(TermSignal);
    if (TimedOut)
      std::snprintf(Buf, sizeof(Buf), "timeout after %.1fs (%s)", WallSeconds,
                    Killed ? "SIGKILL" : "SIGTERM");
    else
      std::snprintf(Buf, sizeof(Buf), "signal %d (%s)", TermSignal,
                    Name ? Name : "?");
    return Buf;
  }
  case Status::SpawnFailed:
    return "spawn failed";
  }
  return "?";
}

TaskResult Subprocess::run(const ChildFn &Fn, const SandboxLimits &Limits) {
  TaskResult R;

  int PayloadPipe[2] = {-1, -1};
  int StderrPipe[2] = {-1, -1};
  if (pipe(PayloadPipe) != 0)
    return R;
  if (pipe(StderrPipe) != 0) {
    close(PayloadPipe[0]);
    close(PayloadPipe[1]);
    return R;
  }

  const double Start = nowSeconds();
  // The child re-flushes inherited stdio buffers on exit; empty them
  // here so buffered parent output is not duplicated per fork.
  std::fflush(nullptr);
  pid_t Pid = fork();
  if (Pid < 0) {
    for (int Fd : {PayloadPipe[0], PayloadPipe[1], StderrPipe[0],
                   StderrPipe[1]})
      close(Fd);
    return R;
  }

  if (Pid == 0) {
    // Child: own process group (so the supervisor can kill everything
    // we might spawn), stderr onto the capture pipe, rlimits, task.
    setpgid(0, 0);
    close(PayloadPipe[0]);
    close(StderrPipe[0]);
    dup2(StderrPipe[1], 2);
    close(StderrPipe[1]);
    signal(SIGPIPE, SIG_IGN);
    applyRlimits(Limits);
    int Code = 125;
    try {
      Code = Fn(PayloadPipe[1]);
    } catch (const std::exception &E) {
      std::fprintf(stderr, "[subprocess] uncaught exception: %s\n", E.what());
      Code = 125;
    } catch (...) {
      std::fprintf(stderr, "[subprocess] uncaught exception\n");
      Code = 125;
    }
    // _exit, not exit: no atexit handlers (they belong to the parent's
    // lifecycle -- running them here would emit duplicate reports).
    std::fflush(nullptr);
    _exit(Code);
  }

  // Parent / supervisor.
  setpgid(Pid, Pid); // Mirror the child's setpgid (wins either way).
  close(PayloadPipe[1]);
  close(StderrPipe[1]);
  setNonBlocking(PayloadPipe[0]);
  setNonBlocking(StderrPipe[0]);

  std::string StderrAll;
  const double WallDeadline =
      Limits.WallMs > 0 ? Start + Limits.WallMs / 1000.0 : 0;
  double KillDeadline = 0;
  bool PayloadOpen = true, StderrOpen = true;
  int Status = 0;
  struct rusage Ru;
  std::memset(&Ru, 0, sizeof(Ru));

  for (;;) {
    if (PayloadOpen)
      PayloadOpen = drainFd(PayloadPipe[0], R.Payload);
    if (StderrOpen)
      StderrOpen = drainFd(StderrPipe[0], StderrAll);

    pid_t W = wait4(Pid, &Status, WNOHANG, &Ru);
    if (W == Pid)
      break;
    if (W < 0 && errno != EINTR)
      break; // Should not happen; avoid spinning forever.

    const double Now = nowSeconds();
    if (WallDeadline > 0 && Now >= WallDeadline && !R.TimedOut) {
      R.TimedOut = true;
      kill(-Pid, SIGTERM);
      KillDeadline = Now + Limits.KillGraceMs / 1000.0;
    }
    if (R.TimedOut && !R.Killed && Now >= KillDeadline) {
      R.Killed = true;
      kill(-Pid, SIGKILL);
    }

    struct pollfd Fds[2];
    nfds_t NFds = 0;
    if (PayloadOpen)
      Fds[NFds++] = {PayloadPipe[0], POLLIN, 0};
    if (StderrOpen)
      Fds[NFds++] = {StderrPipe[0], POLLIN, 0};
    poll(NFds ? Fds : nullptr, NFds, 20);
  }

  // Drain whatever the pipes still buffer, then close.
  while (PayloadOpen)
    PayloadOpen = drainFd(PayloadPipe[0], R.Payload);
  while (StderrOpen)
    StderrOpen = drainFd(StderrPipe[0], StderrAll);
  close(PayloadPipe[0]);
  close(StderrPipe[0]);

  R.WallSeconds = nowSeconds() - Start;
  R.PeakRssKb = Ru.ru_maxrss;
  if (StderrAll.size() > Limits.StderrTailBytes)
    StderrAll.erase(0, StderrAll.size() - Limits.StderrTailBytes);
  R.StderrTail = std::move(StderrAll);

  if (WIFEXITED(Status)) {
    R.ExitCode = WEXITSTATUS(Status);
    R.St = R.ExitCode == 0 ? TaskResult::Status::Ok
                           : TaskResult::Status::ExitNonZero;
  } else if (WIFSIGNALED(Status)) {
    R.TermSignal = WTERMSIG(Status);
    R.St = TaskResult::Status::Signaled;
  }
  return R;
}
