//===- support/Rng.h - Deterministic random number generation ------------===//
//
// Part of the fpint project: a reproduction of Sastry, Palacharla & Smith,
// "Exploiting Idle Floating-Point Resources for Integer Execution",
// PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic pseudo-random number generator
/// (xorshift128+). Workload generators and property tests use this instead
/// of std::mt19937 so that every run of the repository reproduces the same
/// programs, traces, and measurements bit-for-bit across platforms.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SUPPORT_RNG_H
#define FPINT_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace fpint {

/// Deterministic xorshift128+ pseudo-random number generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  /// Re-initializes the generator state from \p Seed via splitmix64, so
  /// that nearby seeds produce uncorrelated streams.
  void reseed(uint64_t Seed);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns true with probability \p Num / \p Denom.
  bool chance(uint64_t Num, uint64_t Denom);

  /// Returns a uniformly distributed double in [0, 1).
  double nextDouble();

private:
  uint64_t State0 = 0;
  uint64_t State1 = 0;
};

} // namespace fpint

#endif // FPINT_SUPPORT_RNG_H
