//===- support/ThreadPool.h - Fixed-size task thread pool -----------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately simple fixed-size thread pool for the evaluation
/// harness: the (workload x scheme x machine) bench matrix is
/// embarrassingly parallel, so plain FIFO scheduling over a fixed
/// worker count is enough -- no work stealing, no task priorities.
///
/// The worker count defaults to std::thread::hardware_concurrency()
/// and can be overridden with the FPINT_JOBS environment variable
/// (clamped to at least 1; FPINT_JOBS=1 gives a single-worker pool,
/// the degenerate but still correct configuration).
///
/// submit() returns a std::future carrying the task's result; an
/// exception thrown by the task is captured and rethrown from
/// future::get(), so callers on the main thread see worker failures
/// as ordinary exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SUPPORT_THREADPOOL_H
#define FPINT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace fpint {
namespace support {

class ThreadPool {
public:
  /// Spawns \p Threads workers (0 means defaultThreadCount()).
  explicit ThreadPool(unsigned Threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Fn and returns a future for its result. Safe to call
  /// from worker threads (tasks may submit subtasks), but a task must
  /// never block on a future of a task that has not started yet --
  /// the harness only ever waits on futures from the main thread, or
  /// on computations already running on another worker.
  template <typename Fn>
  auto submit(Fn &&F) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(F));
    std::future<R> Result = Task->get_future();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Queue.push_back([Task] { (*Task)(); });
    }
    Cv.notify_one();
    return Result;
  }

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }

  /// FPINT_JOBS if set (clamped to >= 1), else hardware_concurrency()
  /// (or 1 if that reports 0).
  static unsigned defaultThreadCount();

  /// Process-wide pool shared by the bench harness (constructed on
  /// first use with defaultThreadCount() workers).
  static ThreadPool &global();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mu;
  std::condition_variable Cv;
  bool Stopping = false;
};

} // namespace support
} // namespace fpint

#endif // FPINT_SUPPORT_THREADPOOL_H
