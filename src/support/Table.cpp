//===- support/Table.cpp - Plain-text report tables -----------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cinttypes>

using namespace fpint;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string Table::fmt(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string Table::pct(double Fraction, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Precision, Fraction * 100.0);
  return Buf;
}

std::string Table::num(uint64_t Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Value);
  return Buf;
}

std::string Table::toString() const {
  std::vector<size_t> Widths(Header.size(), 0);
  auto Widen = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      if (I >= Widths.size())
        Widths.resize(I + 1, 0);
      Widths[I] = std::max(Widths[I], Cells[I].size());
    }
  };
  Widen(Header);
  for (const auto &Row : Rows)
    Widen(Row);

  std::string Out;
  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      const std::string &Cell = I < Cells.size() ? Cells[I] : std::string();
      Out += Cell;
      Out.append(Widths[I] + 2 - Cell.size(), ' ');
    }
    Out += '\n';
  };

  RenderRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  Out.append(Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    RenderRow(Row);
  return Out;
}

void Table::print(std::FILE *Out) const {
  std::string S = toString();
  std::fwrite(S.data(), 1, S.size(), Out);
}
