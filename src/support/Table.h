//===- support/Table.h - Plain-text report tables -------------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny column-aligned table printer used by the benchmark harness to
/// emit paper-shaped tables (Figure 8/9/10 rows, Table 1/2, overhead
/// breakdowns) without dragging in a formatting library.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SUPPORT_TABLE_H
#define FPINT_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace fpint {

/// Accumulates rows of string cells and renders them with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a data row; it may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells);

  /// Formatting helpers for common cell types.
  static std::string fmt(double Value, int Precision = 2);
  static std::string pct(double Fraction, int Precision = 1);
  static std::string num(uint64_t Value);

  /// Renders the table (header, separator, rows) as one string --
  /// exactly the bytes print() would emit.
  std::string toString() const;

  /// Renders the table (header, separator, rows) to \p Out.
  void print(std::FILE *Out = stdout) const;

  /// Number of data rows added so far.
  size_t numRows() const { return Rows.size(); }

  /// Number of header columns (degraded ERR rows pad to this width).
  size_t numCols() const { return Header.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace fpint

#endif // FPINT_SUPPORT_TABLE_H
