//===- support/Subprocess.h - Fork-based sandboxed task execution ---------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-isolation for harness tasks that may crash, hang, or exhaust
/// memory: Subprocess::run forks a child, runs an arbitrary callable in
/// it under RLIMIT_CPU / RLIMIT_AS, and supervises it with a wall-clock
/// watchdog that escalates SIGTERM -> SIGKILL. The parent structurally
/// captures everything a triage layer needs: exit status or fatal
/// signal, whether the watchdog fired (and whether it had to escalate),
/// the tail of the child's stderr, peak RSS, and an arbitrary byte
/// payload the child streamed back over a pipe.
///
/// This is the containment layer under the degrade-don't-die bench
/// matrix (bench::runMatrix sandboxed cells) and the fpint-fuzz
/// campaign runner (sandboxed iterations with crash/hang triage); see
/// docs/ROBUSTNESS.md.
///
/// Forking contract: run() must only be called from a thread that is
/// not racing other threads for locks the child will need (malloc,
/// the run cache). The harnesses guarantee this by dispatching all
/// sandboxed work from the orchestration thread, never from pool
/// workers. The child runs the callable and _exit()s; it never
/// returns into the caller's stack. The one documented relaxation is
/// the fpint-serve daemon, which forks from pool workers but confines
/// the child to self-contained compile/simulate code (no shared
/// caches, registries, or other parent locks); see serve/Server.h.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SUPPORT_SUBPROCESS_H
#define FPINT_SUPPORT_SUBPROCESS_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

/// True when this translation unit is compiled under AddressSanitizer.
/// The sandbox skips RLIMIT_AS in that case (ASan's shadow reservation
/// makes any address-space cap fatal to the child), and the tests skip
/// the expectations that depend on it.
#if defined(__SANITIZE_ADDRESS__)
#define FPINT_BUILT_WITH_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FPINT_BUILT_WITH_ASAN 1
#endif
#endif
#ifndef FPINT_BUILT_WITH_ASAN
#define FPINT_BUILT_WITH_ASAN 0
#endif

namespace fpint {
namespace support {

/// Resource and supervision limits applied to one sandboxed task.
struct SandboxLimits {
  /// Wall-clock watchdog in milliseconds; 0 disables the watchdog.
  int WallMs = 0;
  /// Grace between the watchdog's SIGTERM and the SIGKILL escalation.
  int KillGraceMs = 1000;
  /// RLIMIT_CPU in seconds (soft limit; hard limit +2s); 0 inherits.
  uint64_t CpuSeconds = 0;
  /// RLIMIT_AS in MiB; 0 inherits the parent's limit.
  uint64_t AddressSpaceMb = 0;
  /// How much of the child's stderr to retain (the tail).
  size_t StderrTailBytes = 8192;
};

/// Structured outcome of one sandboxed task.
struct TaskResult {
  enum class Status {
    Ok,          ///< Child exited 0.
    ExitNonZero, ///< Child exited with a nonzero code.
    Signaled,    ///< Child died on a signal (SIGSEGV, SIGKILL, ...).
    SpawnFailed, ///< fork/pipe failed; nothing ran.
  };

  Status St = Status::SpawnFailed;
  int ExitCode = -1;   ///< Valid for Ok / ExitNonZero.
  int TermSignal = 0;  ///< Valid for Signaled.
  bool TimedOut = false; ///< Watchdog sent SIGTERM.
  bool Killed = false;   ///< Watchdog escalated to SIGKILL.
  std::string Payload;    ///< Bytes the child wrote to its payload fd.
  std::string StderrTail; ///< Last StderrTailBytes of child stderr.
  long PeakRssKb = 0;     ///< ru_maxrss of the reaped child.
  double WallSeconds = 0; ///< Fork-to-reap wall clock.

  bool ok() const { return St == Status::Ok; }

  /// Human-readable one-liner: "exit 3", "signal 11 (SIGSEGV)",
  /// "timeout after 2.0s (SIGKILL)", "spawn failed".
  std::string describe() const;
};

class Subprocess {
public:
  /// The child-side task. Receives the write end of the payload pipe;
  /// its return value becomes the child's exit code. Exceptions are
  /// caught, reported on stderr, and mapped to exit code 125.
  using ChildFn = std::function<int(int PayloadFd)>;

  /// Forks and runs \p Fn in the child under \p Limits; blocks until
  /// the child is reaped (or the watchdog destroyed it).
  static TaskResult run(const ChildFn &Fn, const SandboxLimits &Limits);

  /// EINTR-safe full write (child-side helper for the payload fd).
  /// Returns false on a write error (e.g. the supervisor died).
  static bool writeAll(int Fd, const void *Data, size_t Len);
  static bool writeAll(int Fd, const std::string &S) {
    return writeAll(Fd, S.data(), S.size());
  }
};

} // namespace support
} // namespace fpint

#endif // FPINT_SUPPORT_SUBPROCESS_H
