//===- support/FaultInject.cpp - Test-only fault injection hooks ----------===//

#include "support/FaultInject.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

using namespace fpint;
using namespace fpint::support;

namespace {

enum class FaultKind { None, Crash, Hang, Oom };

struct FaultSpec {
  FaultKind Kind = FaultKind::None;
  std::string Where;
  bool Once = false;
};

/// Parses "<kind>:<where>[:once]"; an unparseable spec stays disarmed
/// (and is reported once, so a typo in CI is loud rather than silent).
/// The site name may itself contain a colon ("campaign:journal"), so
/// only a trailing ":once" is treated as a suffix.
FaultSpec parseSpecText(const char *Env) {
  FaultSpec S;
  if (!Env || !*Env)
    return S;
  std::string Text = Env;
  size_t C1 = Text.find(':');
  if (C1 == std::string::npos) {
    std::fprintf(stderr, "[fault] ignoring malformed FPINT_FAULT='%s'\n", Env);
    return S;
  }
  std::string Kind = Text.substr(0, C1);
  std::string Rest = Text.substr(C1 + 1);
  const std::string OnceSuffix = ":once";
  if (Rest.size() > OnceSuffix.size() &&
      Rest.compare(Rest.size() - OnceSuffix.size(), OnceSuffix.size(),
                   OnceSuffix) == 0) {
    S.Once = true;
    Rest = Rest.substr(0, Rest.size() - OnceSuffix.size());
  }
  if (Rest.empty()) {
    std::fprintf(stderr, "[fault] ignoring malformed FPINT_FAULT='%s'\n", Env);
    return S;
  }
  if (Kind == "crash")
    S.Kind = FaultKind::Crash;
  else if (Kind == "hang")
    S.Kind = FaultKind::Hang;
  else if (Kind == "oom")
    S.Kind = FaultKind::Oom;
  else {
    std::fprintf(stderr, "[fault] ignoring malformed FPINT_FAULT='%s'\n", Env);
    return S;
  }
  S.Where = Rest;
  return S;
}

/// Test-armed override (fault::armForTest); takes precedence over the
/// environment spec while armed.
FaultSpec OverrideSpec;
bool HaveOverride = false;

const FaultSpec &spec() {
  static const FaultSpec S = parseSpecText(std::getenv("FPINT_FAULT"));
  return HaveOverride ? OverrideSpec : S;
}

/// 1-based attempt number; inherited across fork() so children know
/// which (re)try they run under.
unsigned CurrentAttempt = 1;

[[noreturn]] void executeCrash(const char *Where) {
  std::fprintf(stderr, "[fault] injected crash at '%s'\n", Where);
  std::fflush(stderr);
  volatile int *P = nullptr;
  *P = 42; // SIGSEGV.
  std::abort();
}

[[noreturn]] void executeHang(const char *Where) {
  std::fprintf(stderr, "[fault] injected hang at '%s'\n", Where);
  std::fflush(stderr);
  // Ignore SIGTERM so the watchdog must escalate to SIGKILL -- the
  // injected hang exercises the full containment path.
  std::signal(SIGTERM, SIG_IGN);
  for (;;) {
    struct timespec TS = {0, 50 * 1000 * 1000};
    nanosleep(&TS, nullptr);
  }
}

[[noreturn]] void executeOom(const char *Where) {
  std::fprintf(stderr, "[fault] injected oom at '%s'\n", Where);
  std::fflush(stderr);
  // Allocate and touch until the sandbox's RLIMIT_AS stops us: the
  // throw from `new` is deliberately uncaught (SIGABRT), proving the
  // supervisor classifies the death instead of inheriting it.
  for (;;) {
    char *P = new char[1 << 20];
    std::memset(P, 0xab, 1 << 20);
  }
}

} // namespace

bool fault::enabled() { return spec().Kind != FaultKind::None; }

void fault::armForTest(const char *SpecText) {
  if (!SpecText) {
    HaveOverride = false;
    OverrideSpec = FaultSpec();
    return;
  }
  OverrideSpec = parseSpecText(SpecText);
  HaveOverride = true;
}

void fault::setAttempt(unsigned Attempt) {
  CurrentAttempt = Attempt == 0 ? 1 : Attempt;
}

void fault::inject(const char *Where) {
  const FaultSpec &S = spec();
  if (S.Kind == FaultKind::None || S.Where != Where)
    return;
  if (S.Once && CurrentAttempt != 1)
    return;
  switch (S.Kind) {
  case FaultKind::Crash:
    executeCrash(Where);
  case FaultKind::Hang:
    executeHang(Where);
  case FaultKind::Oom:
    executeOom(Where);
  case FaultKind::None:
    break;
  }
}
