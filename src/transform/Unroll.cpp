//===- transform/Unroll.cpp - Loop unrolling ------------------------------===//
//
// Single-block self-loops (a block whose conditional branch targets
// itself) are the only shape handled: they are what the sir front end
// and generator produce for counted loops, and they make both the
// trip-count proof and the rewrite exact.
//
// Full unroll proves the trip count by forward simulation. The entry
// state is derived from the dominator chain entry..P (P = the loop's
// unique outside predecessor): a register's entry value is known iff
// every one of its definitions sits on that chain or in the loop
// itself (so no off-path definition can intervene before P) and the
// register is not a formal; registers with no definitions at all are
// the VM's zero-initialized constants. Soundness additionally needs
// every chain block to execute at most once before P branches into the
// loop, so every chain block must be cycle-free -- which also implies
// P fires the entry edge exactly once and the loop is not re-entered.
//
// Partial unroll by factor N is shape-only: N body copies chained by
// their own exit tests, with jump-to-exit trampolines between copies
// (the ISA has no branch-complement opcode to fold the test), and the
// last copy's branch restarting the chain. Trip counts are preserved
// for arbitrary entry values.
//
//===----------------------------------------------------------------------===//

#include "transform/Transforms.h"

#include "analysis/AnalysisManager.h"
#include "opt/Passes.h"

#include <algorithm>
#include <set>
#include <vector>

using namespace fpint;
using sir::BasicBlock;
using sir::Instruction;
using sir::Opcode;
using sir::Reg;

namespace {

struct SimState {
  std::vector<bool> Known;
  std::vector<int32_t> Val;
};

/// Computes the value \p I defines, when provable: integer constants,
/// moves, and ALU over known operands (via the VM-exact evalConstOp).
/// Loads, calls, copies from FP, addresses, and FP results are never
/// known.
bool evalDef(const sir::Function &F, const Instruction &I,
             const SimState &S, int32_t &Out) {
  if (F.regClass(I.def()) != sir::RegClass::Int)
    return false;
  const auto &Uses = I.uses();
  if (I.op() == Opcode::Li) {
    Out = static_cast<int32_t>(I.imm());
    return true;
  }
  if (I.op() == Opcode::Move) {
    if (!S.Known[Uses[0].id()])
      return false;
    Out = S.Val[Uses[0].id()];
    return true;
  }
  if (I.isLoad() || I.op() == Opcode::Call || I.op() == Opcode::La ||
      I.op() == Opcode::CpToInt)
    return false;
  int32_t A = 0, B = 0;
  if (!Uses.empty()) {
    if (!S.Known[Uses[0].id()])
      return false;
    A = S.Val[Uses[0].id()];
  }
  if (Uses.size() > 1) {
    if (!S.Known[Uses[1].id()])
      return false;
    B = S.Val[Uses[1].id()];
  }
  return opt::evalConstOp(I.op(), A, B, I.imm(), Out);
}

/// VM-exact taken/not-taken for the five integer branches.
bool evalBranch(const Instruction &I, const SimState &S, bool &Taken) {
  const auto &Uses = I.uses();
  const size_t Need = (I.op() == Opcode::Beq || I.op() == Opcode::Bne) ? 2 : 1;
  if (Uses.size() < Need)
    return false;
  for (Reg U : Uses)
    if (!S.Known[U.id()])
      return false;
  int32_t A = S.Val[Uses[0].id()];
  switch (I.op()) {
  case Opcode::Beq:
    Taken = A == S.Val[Uses[1].id()];
    return true;
  case Opcode::Bne:
    Taken = A != S.Val[Uses[1].id()];
    return true;
  case Opcode::Blez:
    Taken = A <= 0;
    return true;
  case Opcode::Bgtz:
    Taken = A > 0;
    return true;
  case Opcode::Bltz:
    Taken = A < 0;
    return true;
  default:
    return false;
  }
}

/// True if \p Target is reachable from \p From (From itself counts
/// only if re-entered through a successor edge).
bool reachableFrom(const analysis::CFG &Cfg, unsigned From, unsigned Target) {
  std::vector<bool> Seen(Cfg.numBlocks(), false);
  std::vector<unsigned> Work(Cfg.successors(From).begin(),
                             Cfg.successors(From).end());
  while (!Work.empty()) {
    unsigned B = Work.back();
    Work.pop_back();
    if (B == Target)
      return true;
    if (Seen[B])
      continue;
    Seen[B] = true;
    for (unsigned S : Cfg.successors(B))
      Work.push_back(S);
  }
  return false;
}

/// Attempts to prove the trip count of self-loop block \p L and, on
/// success, replaces it with the exact expansion. Returns the trip
/// count, or 0 when no proof was possible (the loop is untouched).
unsigned tryFullUnroll(sir::Function &F, const analysis::CFG &Cfg,
                       BasicBlock &L, const transform::UnrollOptions &Opts,
                       int64_t &InstrsAdded) {
  const unsigned LIdx = L.index();
  const Instruction *Term = L.back();
  if (!sir::isIntCondBranch(Term->op()))
    return 0; // FP-conditioned loops: values are untracked.

  // Entry shape: the only predecessors may be the loop itself and (for
  // a non-entry loop) a unique outside block P whose sole successor is
  // the header.
  unsigned P = ~0u;
  for (unsigned Pred : Cfg.predecessors(LIdx)) {
    if (Pred == LIdx)
      continue;
    if (P != ~0u)
      return 0;
    P = Pred;
  }
  if (LIdx != 0 && (P == ~0u || !Cfg.isReachable(P) ||
                    Cfg.successors(P).size() != 1))
    return 0;
  if (LIdx == 0 && P != ~0u)
    return 0; // Entry loop re-entered from below.

  // Dominator chain entry..P. Every chain block must be cycle-free so
  // it executes at most once; this also makes the P->L edge fire at
  // most once and keeps the loop from being re-entered.
  std::vector<bool> OnChain(Cfg.numBlocks(), false);
  std::vector<unsigned> Chain;
  if (P != ~0u) {
    unsigned B = P;
    while (true) {
      Chain.push_back(B);
      OnChain[B] = true;
      if (B == Cfg.idom(B))
        break;
      B = Cfg.idom(B);
    }
    std::reverse(Chain.begin(), Chain.end()); // Entry first.
    if (Chain.front() != 0)
      return 0; // Defensive: chain must root at the entry block.
    for (unsigned C : Chain)
      if (reachableFrom(Cfg, C, C))
        return 0;
  }

  // A register's entry value is provable only when every definition of
  // it lies on the chain or in the loop body; formals arrive from the
  // caller. Undefined registers are the zero-register convention.
  SimState S;
  S.Known.assign(F.numRegs(), true);
  S.Val.assign(F.numRegs(), 0);
  std::vector<bool> Poisoned(F.numRegs(), false);
  for (Reg Formal : F.formals())
    Poisoned[Formal.id()] = true;
  for (const auto &BB : F.blocks()) {
    if (BB->index() == LIdx || OnChain[BB->index()])
      continue;
    for (const auto &I : BB->instructions())
      if (I->def().isValid())
        Poisoned[I->def().id()] = true;
  }
  for (unsigned R = 0; R < F.numRegs(); ++R)
    if (Poisoned[R])
      S.Known[R] = false;

  // Replay the chain: each block runs exactly once, in dominator
  // order, and no off-chain definition of a tracked register can
  // interleave. A poisoned register never becomes known here -- its
  // off-chain definitions could still run between chain blocks.
  for (unsigned C : Chain)
    for (const auto &I : F.blocks()[C]->instructions()) {
      if (!I->def().isValid())
        continue;
      uint32_t D = I->def().id();
      int32_t Out = 0;
      if (!Poisoned[D] && evalDef(F, *I, S, Out)) {
        S.Known[D] = true;
        S.Val[D] = Out;
      } else {
        S.Known[D] = false;
      }
    }

  // Simulate the loop. Only the loop body runs between iterations, so
  // definitions now assign normally (poison is overwritten by real,
  // simulated stores to the register).
  const auto &Body = L.instructions();
  const size_t BodySize = Body.size();
  unsigned Trips = 0;
  while (true) {
    for (size_t Pos = 0; Pos + 1 < BodySize; ++Pos) {
      const Instruction &I = *Body[Pos];
      if (!I.def().isValid())
        continue;
      int32_t Out = 0;
      if (evalDef(F, I, S, Out)) {
        S.Known[I.def().id()] = true;
        S.Val[I.def().id()] = Out;
      } else {
        S.Known[I.def().id()] = false;
      }
    }
    ++Trips;
    if (Trips > Opts.MaxTripCount)
      return 0;
    bool Taken = false;
    if (!evalBranch(*Term, S, Taken))
      return 0;
    if (!Taken)
      break;
  }
  if (static_cast<uint64_t>(Trips) * (BodySize - 1) > Opts.MaxUnrolledInstrs)
    return 0;

  // Exact expansion: Trips copies of the body minus the branch; the
  // block then falls through to the old exit.
  BasicBlock::InstrList Unrolled;
  for (unsigned T = 0; T < Trips; ++T)
    for (size_t Pos = 0; Pos + 1 < BodySize; ++Pos) {
      auto Clone = std::make_unique<Instruction>(*Body[Pos]);
      Clone->setParent(&L);
      Unrolled.push_back(std::move(Clone));
    }
  InstrsAdded += static_cast<int64_t>(Trips) *
                     static_cast<int64_t>(BodySize - 1) -
                 static_cast<int64_t>(BodySize);
  L.instructions() = std::move(Unrolled);
  return Trips;
}

/// Replicates self-loop \p L Factor times:
///   [L bcc->c2][x1: j E][c2 bcc->c3][x2: j E]...[cF bcc->L][E ...]
/// Each copy keeps its own exit test; a not-taken test falls through
/// to a trampoline jumping to the old exit (the last copy sits right
/// before it and needs none).
void partialUnroll(sir::Function &F, BasicBlock &L, unsigned Factor,
                   int64_t &InstrsAdded) {
  auto &Blocks = F.blocks();
  const size_t LPos = L.index();
  BasicBlock *Exit = Blocks[LPos + 1].get();
  const size_t OldSize = Blocks.size();
  const size_t BodySize = L.instructions().size();

  std::vector<BasicBlock *> Copies;
  Copies.push_back(&L);
  for (unsigned C = 2; C <= Factor; ++C) {
    BasicBlock *Tramp = F.addBlock(L.name() + ".ux" + std::to_string(C - 1));
    auto Jump = std::make_unique<Instruction>(Opcode::Jump);
    Jump->setTarget(Exit);
    Tramp->append(std::move(Jump));
    BasicBlock *Copy = F.addBlock(L.name() + ".u" + std::to_string(C));
    for (const auto &I : L.instructions()) {
      auto Clone = std::make_unique<Instruction>(*I);
      Copy->append(std::move(Clone));
    }
    Copies.push_back(Copy);
  }
  for (size_t C = 0; C < Copies.size(); ++C)
    Copies[C]->back()->setTarget(C + 1 < Copies.size() ? Copies[C + 1] : &L);

  std::rotate(Blocks.begin() + LPos + 1, Blocks.begin() + OldSize,
              Blocks.end());
  InstrsAdded += static_cast<int64_t>(Factor - 1) *
                 static_cast<int64_t>(BodySize + 1);
}

} // namespace

transform::UnrollResult
transform::runUnroll(sir::Function &F, analysis::AnalysisManager &AM,
                     const UnrollOptions &Opts) {
  UnrollResult R;
  if (F.blocks().empty())
    return R;
  // One loop per round: any rewrite shifts layout indices, so analyses
  // are rebuilt before the next candidate is examined. Neither rewrite
  // creates a new self-loop, and failed candidates are remembered, so
  // this terminates.
  std::set<const BasicBlock *> Failed;
  while (true) {
    F.renumber();
    const analysis::CFG &Cfg = AM.getResult<analysis::CFGAnalysis>(F);
    BasicBlock *L = nullptr;
    for (const auto &BB : F.blocks()) {
      const Instruction *Term = BB->back();
      if (Term && Term->isCondBranch() && Term->target() == BB.get() &&
          BB->index() + 1 < F.blocks().size() &&
          Cfg.isReachable(BB->index()) && !Failed.count(BB.get())) {
        L = BB.get();
        break;
      }
    }
    if (!L)
      break;
    if (unsigned Trips = tryFullUnroll(F, Cfg, *L, Opts, R.InstrsAdded)) {
      (void)Trips;
      ++R.FullyUnrolled;
      AM.invalidateFunction(F);
      continue;
    }
    if (Opts.Factor >= 2 && L->instructions().size() > 1) {
      partialUnroll(F, *L, Opts.Factor, R.InstrsAdded);
      ++R.PartiallyUnrolled;
      AM.invalidateFunction(F);
      Failed.insert(L); // Its branch no longer self-targets anyway.
      continue;
    }
    Failed.insert(L);
  }
  if (R.FullyUnrolled || R.PartiallyUnrolled)
    F.renumber();
  return R;
}
