//===- transform/LICM.cpp - Loop-invariant code motion --------------------===//

#include "transform/Transforms.h"

#include "analysis/AnalysisManager.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "opt/Passes.h"
#include "regalloc/Liveness.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace fpint;
using sir::Instruction;
using sir::Reg;

namespace {

/// One scan over every loop with fresh analyses. Returns instructions
/// hoisted. Conditions are stated in Transforms.h; HoistedRegs keeps
/// this scan honest against its own (now stale) liveness: any
/// candidate touching a register whose definition moved this scan
/// waits for the next scan.
unsigned hoistOnce(sir::Function &F, analysis::AnalysisManager &AM) {
  const analysis::CFG &Cfg = AM.getResult<analysis::CFGAnalysis>(F);
  const analysis::DominatorTree &DT =
      AM.getResult<analysis::DominatorTreeAnalysis>(F);
  const analysis::LoopInfo &LI = AM.getResult<analysis::LoopInfoAnalysis>(F);
  const regalloc::Liveness &Live =
      AM.getResult<regalloc::LivenessAnalysis>(F);
  (void)Cfg;

  unsigned Hoisted = 0;
  std::unordered_set<uint32_t> HoistedRegs;

  // Innermost first (loops() is outermost-first), so invariants leave
  // the innermost loop now and can leave the enclosing loop next scan.
  const auto &Loops = LI.loops();
  for (size_t LoopIdx = Loops.size(); LoopIdx-- > 0;) {
    const analysis::Loop &L = Loops[LoopIdx];
    if (L.Preheader == analysis::Loop::NoBlock)
      continue;
    sir::BasicBlock &Pre = *F.blocks()[L.Preheader];

    // Definition census inside the loop, kept current as hoists move
    // definitions out (users of a freed operand still wait for the
    // next scan's fresh liveness -- see the Stale guard below).
    std::unordered_map<uint32_t, unsigned> DefsInLoop;
    for (unsigned B : L.Blocks)
      for (const auto &I : F.blocks()[B]->instructions())
        if (I->def().isValid())
          ++DefsInLoop[I->def().id()];

    std::vector<std::pair<unsigned, Instruction *>> Candidates;
    for (unsigned B : L.Blocks)
      for (const auto &I : F.blocks()[B]->instructions())
        if (opt::isPureInstr(*I) && !I->inFpa())
          Candidates.push_back({B, I.get()});

    for (auto &[B, I] : Candidates) {
      Reg Def = I->def();
      if (DefsInLoop[Def.id()] != 1)
        continue; // (b) sole definition in the loop (self-reads too).
      if (Live.liveIn(L.Header, Def))
        continue; // (c) an early value could be observed.
      bool Invariant = true;
      for (Reg U : I->uses())
        Invariant &= DefsInLoop.count(U.id())
                         ? DefsInLoop[U.id()] == 0
                         : true;
      if (!Invariant)
        continue; // (a) operand defined inside the loop.
      bool DominatesExits = true;
      for (unsigned E : L.Exiting)
        DominatesExits &= DT.dominates(B, E);
      if (!DominatesExits)
        continue; // (d) might not have executed on some trips.
      bool Stale = HoistedRegs.count(Def.id()) != 0;
      for (Reg U : I->uses())
        Stale |= HoistedRegs.count(U.id()) != 0;
      if (Stale)
        continue; // Liveness no longer describes these registers.

      // Move into the preheader, ahead of its terminator when present.
      sir::BasicBlock &Src = *F.blocks()[B];
      auto &SrcInstrs = Src.instructions();
      size_t Pos = Src.positionOf(I);
      std::unique_ptr<Instruction> Taken = std::move(SrcInstrs[Pos]);
      SrcInstrs.erase(SrcInstrs.begin() + Pos);
      auto &PreInstrs = Pre.instructions();
      size_t At = PreInstrs.size();
      if (At && PreInstrs.back()->isTerminator())
        --At;
      Pre.insertAt(At, std::move(Taken));
      --DefsInLoop[Def.id()];
      HoistedRegs.insert(Def.id());
      ++Hoisted;
    }
  }
  return Hoisted;
}

} // namespace

unsigned transform::runLICM(sir::Function &F, analysis::AnalysisManager &AM) {
  if (F.blocks().empty())
    return 0;
  unsigned Total = 0;
  // Instructions only ever leave loops, so this terminates; the cap is
  // a backstop for pathological inputs.
  for (unsigned Round = 0; Round < 8; ++Round) {
    unsigned Hoisted = hoistOnce(F, AM);
    if (!Hoisted)
      break;
    Total += Hoisted;
    AM.invalidateFunction(F);
    F.renumber();
  }
  return Total;
}
