//===- transform/Transforms.h - Mid-end optimization transforms -----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mid-end: optimization transforms built on the cached dominator
/// and loop analyses, beyond the purely local cleanup in opt/. The
/// paper partitions "after all the initial machine-independent
/// optimizations are complete"; unrolling and inlining in particular
/// reshape RDG connected components and load/store slices, so these
/// transforms are the lever for evaluating the partitioner on
/// realistically optimized code instead of naive input.
///
///  * GVN      dominator-ordered value numbering: subsumes the local
///             CSE within extended regions (a block inherits the value
///             table of its unique predecessor).
///  * LICM     hoists loop-invariant pure instructions into loop
///             preheaders.
///  * Unroll   fully unrolls counted single-block self-loops whose
///             trip count is provable by forward simulation, under a
///             size budget; optionally partial-unrolls by a factor.
///  * Inline   bottom-up inlining over the acyclic part of the call
///             graph, under caller/callee size budgets.
///
/// Every transform preserves VM-observable behaviour exactly (outputs,
/// traps, trip counts); the differential oracle checks each one
/// against the unpartitioned VM. The pipeline-facing passes ("gvn",
/// "licm", "unroll", "unroll<N>", "inline", and the "opt2" preset) are
/// registered in core/PassManager.cpp; this library stays independent
/// of core so tests can drive transforms directly.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_TRANSFORM_TRANSFORMS_H
#define FPINT_TRANSFORM_TRANSFORMS_H

#include "sir/IR.h"

#include <cstdint>

namespace fpint {
namespace analysis {
class AnalysisManager;
}
namespace transform {

/// Global value numbering over dominator-tree extended regions.
/// Candidate/kill rules match opt::eliminateCommonSubexpressions; the
/// extension is that a block with a unique CFG predecessor inherits
/// that predecessor's value table (sound without SSA: the unique
/// predecessor is the immediate dominator and its kills were applied
/// in execution order). Returns redundant instructions replaced by
/// moves. Requires a renumbered function; mutates instructions in
/// place (no structural change).
unsigned runGVN(sir::Function &F, analysis::AnalysisManager &AM);

/// Loop-invariant code motion. Hoists a pure non-memory instruction
/// out of a natural loop into the loop's preheader when (a) every
/// operand has no definition inside the loop, (b) the instruction is
/// its destination's only definition inside the loop, (c) the
/// destination is not live into the loop header (so partially-executed
/// or bypassed iterations cannot observe the hoisted value early), and
/// (d) the defining block dominates every exiting block (the
/// instruction executed on every completed trip anyway). Loads and
/// stores are never moved. Returns instructions hoisted; renumbers the
/// function when it changes anything.
unsigned runLICM(sir::Function &F, analysis::AnalysisManager &AM);

struct UnrollOptions {
  /// Partial-unroll factor; 0 means full-unroll only ("unroll"), N>=2
  /// is the "unroll<N>" pipeline spelling (full unroll is still
  /// attempted first where the trip count is provable).
  unsigned Factor = 0;
  /// Full unroll refuses trip counts above this.
  unsigned MaxTripCount = 64;
  /// ... and refuses bodies whose unrolled size exceeds this.
  unsigned MaxUnrolledInstrs = 256;
};

struct UnrollResult {
  unsigned FullyUnrolled = 0;
  unsigned PartiallyUnrolled = 0;
  /// Net instructions added (negative when a short full unroll shrinks
  /// the program).
  int64_t InstrsAdded = 0;
};

/// Unrolls single-block self-loops (a block whose conditional branch
/// targets itself). Full unroll simulates the loop forward from
/// provably-known entry values (constants established on the dominator
/// chain into the loop, plus the zero-initialized-register
/// convention) and replaces the loop with its exact trip-count
/// expansion; partial unroll replicates the body Factor times with
/// exit trampolines, preserving the trip count for any entry values.
/// Renumbers the function when it changes anything.
UnrollResult runUnroll(sir::Function &F, analysis::AnalysisManager &AM,
                       const UnrollOptions &Opts = UnrollOptions());

struct InlineOptions {
  /// Callees larger than this are never inlined.
  unsigned MaxCalleeInstrs = 48;
  /// A caller is not grown beyond this many instructions.
  unsigned MaxCallerInstrs = 512;
};

struct InlineResult {
  unsigned CallsInlined = 0;
  unsigned SkippedRecursive = 0;
  unsigned SkippedBudget = 0;
};

/// Bottom-up inlining: callees are processed before callers (so a
/// flattened callee body is what gets cloned), call sites are
/// collected before any mutation (newly exposed calls wait for the
/// next pipeline run -- guarantees termination), and any callee on a
/// call-graph cycle (including self-recursion) is refused. Callees
/// that touch their stack frame are skipped (frames are
/// per-activation). Renumbers the module when it changes anything.
InlineResult runInline(sir::Module &M,
                       const InlineOptions &Opts = InlineOptions());

/// Aggregate mid-end telemetry carried on the pipeline run, one field
/// per pass counter (see docs/TRANSFORMS.md).
struct MidEndReport {
  unsigned GvnReplaced = 0;
  unsigned LicmHoisted = 0;
  unsigned LoopsFullyUnrolled = 0;
  unsigned LoopsPartiallyUnrolled = 0;
  int64_t UnrollInstrsAdded = 0;
  unsigned CallsInlined = 0;
  unsigned InlineSkippedRecursive = 0;
  unsigned InlineSkippedBudget = 0;

  unsigned total() const {
    return GvnReplaced + LicmHoisted + LoopsFullyUnrolled +
           LoopsPartiallyUnrolled + CallsInlined;
  }
};

} // namespace transform
} // namespace fpint

#endif // FPINT_TRANSFORM_TRANSFORMS_H
