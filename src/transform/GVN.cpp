//===- transform/GVN.cpp - Dominator-ordered value numbering --------------===//

#include "transform/Transforms.h"

#include "analysis/AnalysisManager.h"
#include "analysis/Dominators.h"
#include "opt/Passes.h"

#include <functional>
#include <map>
#include <tuple>

using namespace fpint;
using sir::Instruction;
using sir::Opcode;
using sir::Reg;

namespace {

/// Value-number key: a pure operation over register ids. Identical to
/// the local CSE's key so GVN strictly subsumes it.
struct Expr {
  Opcode Op;
  int64_t Imm;
  uint32_t U0, U1;
  bool operator<(const Expr &O) const {
    return std::tie(Op, Imm, U0, U1) < std::tie(O.Op, O.Imm, O.U0, O.U1);
  }
};

using ValueTable = std::map<Expr, Reg>;

void invalidateReg(ValueTable &Available, Reg Def) {
  for (auto It = Available.begin(); It != Available.end();) {
    bool Kill = It->second == Def || It->first.U0 == Def.id() ||
                It->first.U1 == Def.id();
    It = Kill ? Available.erase(It) : std::next(It);
  }
}

/// Same candidate set as the local CSE: pure computations with a
/// meaningful expression key. Moves/constants are copy-prop and
/// const-fold territory; FPa-marked instructions carry partition state
/// a replacement would discard.
bool isCandidate(const Instruction &I) {
  return opt::isPureInstr(I) && I.op() != Opcode::Move &&
         I.op() != Opcode::FMove && I.op() != Opcode::CpToFp &&
         I.op() != Opcode::CpToInt && I.op() != Opcode::Li &&
         I.op() != Opcode::FLi && I.op() != Opcode::La && !I.inFpa();
}

unsigned numberBlock(sir::Function &F, sir::BasicBlock &BB,
                     ValueTable &Available) {
  unsigned Changed = 0;
  for (const auto &I : BB.instructions()) {
    if (isCandidate(*I)) {
      Expr Key{I->op(), I->imm(), I->uses().size() > 0 ? I->uses()[0].id() : 0,
               I->uses().size() > 1 ? I->uses()[1].id() : 0};
      auto It = Available.find(Key);
      if (It != Available.end() &&
          F.regClass(It->second) == F.regClass(I->def())) {
        opt::rewriteInstrToMove(F, *I, It->second);
        ++Changed;
        invalidateReg(Available, I->def());
        continue;
      }
      invalidateReg(Available, I->def());
      // A def that is also an operand (add %a, %a, %b) names the *old*
      // value of %a in its key; recording it would match later
      // recomputations over the new value.
      bool DefIsOperand = false;
      for (Reg U : I->uses())
        DefIsOperand |= U == I->def();
      if (!DefIsOperand)
        Available.emplace(Key, I->def());
      continue;
    }
    if (I->def().isValid())
      invalidateReg(Available, I->def());
  }
  return Changed;
}

} // namespace

unsigned transform::runGVN(sir::Function &F, analysis::AnalysisManager &AM) {
  if (F.blocks().empty())
    return 0;
  const analysis::CFG &Cfg = AM.getResult<analysis::CFGAnalysis>(F);
  const analysis::DominatorTree &DT =
      AM.getResult<analysis::DominatorTreeAnalysis>(F);

  unsigned Changed = 0;
  // Walk the dominator tree; a child with a unique CFG predecessor
  // inherits the table as left by that predecessor (which IS its idom,
  // so every kill along the one path in was applied in order). Joins
  // start fresh: without SSA, a value available on only one inbound
  // path may have been clobbered on the other.
  std::function<void(unsigned, ValueTable)> Walk = [&](unsigned Block,
                                                       ValueTable Available) {
    Changed += numberBlock(F, *F.blocks()[Block], Available);
    for (unsigned Child : DT.children(Block))
      Walk(Child, Cfg.predecessors(Child).size() == 1 ? Available
                                                      : ValueTable());
  };
  Walk(0, ValueTable());
  return Changed;
}
