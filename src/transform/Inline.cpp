//===- transform/Inline.cpp - Bottom-up call-graph inlining ---------------===//
//
// Callees are cloned into their callers with a fresh register set:
// layout is [caller prefix + arg moves][callee clone blocks][cont
// block with the caller suffix], so the caller falls through into the
// callee's entry clone and every rewritten `ret` jumps to the
// continuation. A callee register that is never defined reads 0 in the
// caller's frame exactly as it did in a fresh callee frame (the VM
// zero-initializes registers), so no pre-initialization is needed.
//
// Ret rewriting matches the VM's calling convention: `ret %v` becomes
// a move into the call's destination; a valueless `ret` returns 0, so
// it becomes `li dest, 0` when the destination is read. Calls whose
// destination is unused just jump to the continuation.
//
//===----------------------------------------------------------------------===//

#include "transform/Transforms.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

using namespace fpint;
using sir::BasicBlock;
using sir::Function;
using sir::Instruction;
using sir::Opcode;
using sir::Reg;

namespace {

unsigned instrCount(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    N += static_cast<unsigned>(BB->instructions().size());
  return N;
}

/// True when \p F uses its stack frame: frame slots are
/// per-activation, so such a body cannot be spliced into a caller.
bool usesFrame(const Function &F) {
  if (F.frameWords() > 0 || F.isAllocated())
    return true;
  bool Frame = false;
  F.forEachInstr([&](const Instruction &I) { Frame |= I.mem().IsFrame; });
  return Frame;
}

/// Splices a clone of \p Callee into \p Caller at call site \p Site.
void inlineSite(Function &Caller, const Function &Callee, Instruction *Site) {
  BasicBlock *B = Site->parent();
  const size_t CallPos = B->positionOf(Site);
  const Reg CallDef = Site->def();
  const std::vector<Reg> Args = Site->uses();

  // Fresh class-preserving registers for every callee register.
  std::vector<Reg> Map(Callee.numRegs());
  for (uint32_t R = 1; R < Callee.numRegs(); ++R)
    Map[R] = Caller.newReg(Callee.regClass(Reg(R)));
  auto MapReg = [&](Reg R) { return R.isValid() ? Map[R.id()] : Reg(); };

  // Clone blocks first, then the continuation, so the appended suffix
  // [clones..., cont] rotates into place after B in one move.
  auto &Blocks = Caller.blocks();
  const size_t OldSize = Blocks.size();
  std::map<const BasicBlock *, BasicBlock *> BlockMap;
  for (const auto &CB : Callee.blocks())
    BlockMap[CB.get()] =
        Caller.addBlock(Callee.name() + "." + CB->name() + ".inl");
  BasicBlock *Cont = Caller.addBlock(B->name() + ".cont");

  for (const auto &CB : Callee.blocks()) {
    BasicBlock *NB = BlockMap[CB.get()];
    for (const auto &I : CB->instructions()) {
      if (I->op() == Opcode::Ret) {
        if (CallDef.isValid()) {
          auto Set = std::make_unique<Instruction>(
              I->uses().empty() ? Opcode::Li : Opcode::Move);
          Set->setDef(CallDef);
          if (!I->uses().empty())
            Set->uses() = {MapReg(I->uses()[0])};
          NB->append(std::move(Set));
        }
        auto Jump = std::make_unique<Instruction>(Opcode::Jump);
        Jump->setTarget(Cont);
        NB->append(std::move(Jump));
        continue;
      }
      auto Clone = std::make_unique<Instruction>(*I);
      Clone->setDef(MapReg(I->def()));
      for (Reg &U : Clone->uses())
        U = MapReg(U);
      if (Clone->mem().Base.isValid())
        Clone->mem().Base = MapReg(Clone->mem().Base);
      if (I->target())
        Clone->setTarget(BlockMap[I->target()]);
      NB->append(std::move(Clone));
    }
  }

  // The caller's suffix (everything after the call) becomes the
  // continuation; the call itself is dropped; argument moves take its
  // place, and B then falls through into the callee's entry clone.
  auto &Ins = B->instructions();
  for (size_t Pos = CallPos + 1; Pos < Ins.size(); ++Pos)
    Cont->append(std::move(Ins[Pos]));
  Ins.erase(Ins.begin() + CallPos, Ins.end());
  for (size_t A = 0; A < Args.size(); ++A) {
    Reg Formal = MapReg(Callee.formals()[A]);
    bool Fp = Caller.regClass(Formal) == sir::RegClass::Fp;
    auto MoveI =
        std::make_unique<Instruction>(Fp ? Opcode::FMove : Opcode::Move);
    MoveI->setDef(Formal);
    MoveI->uses() = {Args[A]};
    B->append(std::move(MoveI));
  }

  // Locate B positionally (indices are stale after earlier inlines).
  size_t BPos = 0;
  while (Blocks[BPos].get() != B)
    ++BPos;
  std::rotate(Blocks.begin() + BPos + 1, Blocks.begin() + OldSize,
              Blocks.end());
}

} // namespace

transform::InlineResult transform::runInline(sir::Module &M,
                                             const InlineOptions &Opts) {
  InlineResult R;

  // Cyclic functions (self-recursive or in a mutual cycle) are never
  // inlined: detected as "can this function reach itself in the call
  // graph".
  std::map<const Function *, std::vector<const Function *>> Callees;
  for (const auto &F : M.functions()) {
    auto &Out = Callees[F.get()];
    F->forEachInstr([&](const Instruction &I) {
      if (I.op() != Opcode::Call)
        return;
      if (const Function *C = M.functionByName(I.callee()))
        Out.push_back(C);
    });
  }
  auto reachesSelf = [&](const Function *F) {
    std::set<const Function *> Seen;
    std::vector<const Function *> Work(Callees[F].begin(), Callees[F].end());
    while (!Work.empty()) {
      const Function *C = Work.back();
      Work.pop_back();
      if (C == F)
        return true;
      if (!Seen.insert(C).second)
        continue;
      for (const Function *N : Callees[C])
        Work.push_back(N);
    }
    return false;
  };
  std::set<const Function *> Cyclic;
  for (const auto &F : M.functions())
    if (reachesSelf(F.get()))
      Cyclic.insert(F.get());

  // Bottom-up order: post-order over the call graph, so a callee's
  // body is fully flattened before any caller clones it.
  std::vector<Function *> Order;
  std::set<const Function *> Visited;
  std::function<void(Function *)> Visit = [&](Function *F) {
    if (!Visited.insert(F).second)
      return;
    for (const Function *C : Callees[F])
      Visit(const_cast<Function *>(C));
    Order.push_back(F);
  };
  for (const auto &F : M.functions())
    Visit(F.get());

  bool Changed = false;
  for (Function *Caller : Order) {
    // Sites are collected before any mutation of this caller; calls
    // exposed by inlining wait for the next pipeline run (guarantees
    // termination even if a cycle slipped through).
    std::vector<Instruction *> Sites;
    Caller->forEachInstr([&](const Instruction &I) {
      if (I.op() == Opcode::Call)
        Sites.push_back(const_cast<Instruction *>(&I));
    });
    unsigned CallerSize = instrCount(*Caller);
    for (Instruction *Site : Sites) {
      const Function *Callee = M.functionByName(Site->callee());
      if (!Callee || Site->uses().size() != Callee->formals().size() ||
          usesFrame(*Callee))
        continue;
      if (Callee == Caller || Cyclic.count(Callee)) {
        ++R.SkippedRecursive;
        continue;
      }
      const unsigned CalleeSize = instrCount(*Callee);
      if (CalleeSize > Opts.MaxCalleeInstrs ||
          CallerSize + CalleeSize > Opts.MaxCallerInstrs) {
        ++R.SkippedBudget;
        continue;
      }
      const unsigned ArgMoves = static_cast<unsigned>(Site->uses().size());
      inlineSite(*Caller, *Callee, Site); // Destroys the call instr.
      CallerSize += CalleeSize + ArgMoves;
      ++R.CallsInlined;
      Changed = true;
    }
  }
  if (Changed)
    M.renumber();
  return R;
}
