//===- serve/DiskCache.h - Persistent content-addressed result store ------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable tier of the serving layer's result cache: a directory
/// of content-addressed response bodies, keyed by the FNV-1a hash of
/// (module text, pipeline key, machine key, schema stamp) -- the same
/// platform-stable hash family as the PR 2 run ids.
///
/// Layout (see docs/SERVING.md):
///
///   <dir>/<kk>/<16-hex-key>.json      kk = first two hex digits
///   <dir>/tmp.<pid>.<seq>             in-flight writes (never read)
///
/// Each entry wraps its body in a small envelope carrying the schema
/// stamp and its own key. Publication is atomic: the entry is written
/// to a tmp file and rename(2)d into place, so readers (including
/// other daemon processes sharing the directory) only ever observe
/// absent or complete entries, and two writers racing the same key
/// converge on identical bytes. Entries whose stamp or key does not
/// match on read are unlinked and counted as invalidations -- that is
/// how a schema bump (or a corrupted file) self-heals instead of
/// serving stale results.
///
/// Capacity is bounded by MaxEntries; exceeding it evicts the
/// least-recently-modified entries (get() refreshes an entry's mtime,
/// so eviction approximates LRU across daemon restarts).
///
/// Thread-safety: all methods are safe to call concurrently; the file
/// operations are per-entry atomic and the counters are mutex-guarded.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SERVE_DISKCACHE_H
#define FPINT_SERVE_DISKCACHE_H

#include <cstdint>
#include <mutex>
#include <string>

namespace fpint {
namespace serve {

class DiskCache {
public:
  struct Options {
    std::string Dir = "serve_cache";
    /// Entry-count cap; 0 means unbounded.
    size_t MaxEntries = 8192;
  };

  struct Counters {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Stores = 0;
    uint64_t Evictions = 0;
    uint64_t Invalidations = 0; ///< Stale-stamp / corrupt entries dropped.
  };

  explicit DiskCache(Options Opts);

  /// The schema stamp folded into every key and entry envelope. Any
  /// change to the response-body layout (serve::ResponseSchema) or the
  /// stats report schema changes the stamp, so every old entry misses
  /// and is reclaimed.
  static std::string schemaStamp();

  /// Content address of one (module, pipeline, machine) request:
  /// 16 lower-case hex digits, stable across processes, platforms,
  /// and daemon restarts.
  static std::string key(const std::string &ModuleText,
                         const std::string &PipelineKey,
                         const std::string &MachineKey);

  /// Looks \p Key up; on a hit fills \p Body with the stored bytes and
  /// refreshes the entry's mtime. A present-but-stale entry (schema
  /// stamp or key mismatch, unparseable JSON) is unlinked and reported
  /// as a miss.
  bool get(const std::string &Key, std::string &Body);

  /// Publishes \p Body under \p Key (write-then-rename). Returns false
  /// on I/O failure; the cache is then simply cold for that key.
  bool put(const std::string &Key, const std::string &Body);

  Counters counters() const;

  const std::string &dir() const { return Opts.Dir; }

  /// Number of entries currently on disk (maintained incrementally;
  /// exact after construction-time scan).
  size_t entryCount() const;

private:
  std::string pathFor(const std::string &Key) const;
  void evictIfNeeded();

  Options Opts;
  mutable std::mutex Mu;
  Counters Counts;
  size_t Entries = 0;
  uint64_t TmpSeq = 0;
};

} // namespace serve
} // namespace fpint

#endif // FPINT_SERVE_DISKCACHE_H
