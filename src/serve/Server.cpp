//===- serve/Server.cpp - Compilation-as-a-service request engine ---------===//

#include "serve/Server.h"

#include "sir/Parser.h"
#include "support/FaultInject.h"
#include "support/Subprocess.h"
#include "support/ThreadPool.h"
#include "timing/Simulator.h"
#include "vm/Trap.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace fpint;
using namespace fpint::serve;
using json::Value;

//===----------------------------------------------------------------------===//
// Options.
//===----------------------------------------------------------------------===//

namespace {

long envLong(const char *Name, long Def) {
  const char *E = std::getenv(Name);
  if (!E || !*E)
    return Def;
  return std::atol(E);
}

} // namespace

ServerOptions ServerOptions::fromEnv() {
  ServerOptions O;
  if (const char *Dir = std::getenv("FPINT_SERVE_CACHE"))
    if (*Dir)
      O.CacheDir = Dir;
  O.Jobs = static_cast<unsigned>(envLong("FPINT_SERVE_JOBS", 0));
  O.MaxRequestBytes = static_cast<size_t>(
      envLong("FPINT_SERVE_MAX_REQUEST_BYTES",
              static_cast<long>(O.MaxRequestBytes)));
  O.MemCacheEntries = static_cast<size_t>(
      envLong("FPINT_SERVE_MEM_ENTRIES",
              static_cast<long>(O.MemCacheEntries)));
  O.DiskCacheEntries = static_cast<size_t>(
      envLong("FPINT_SERVE_DISK_ENTRIES",
              static_cast<long>(O.DiskCacheEntries)));
  O.SandboxWallMs =
      static_cast<int>(envLong("FPINT_SERVE_TIMEOUT_MS", O.SandboxWallMs));
  O.SandboxKillGraceMs = static_cast<int>(
      envLong("FPINT_SERVE_KILL_GRACE_MS", O.SandboxKillGraceMs));
  O.SandboxAsMb = static_cast<uint64_t>(
      envLong("FPINT_SERVE_AS_MB", static_cast<long>(O.SandboxAsMb)));
  if (const char *S = std::getenv("FPINT_SERVE_SANDBOX"))
    if (*S)
      O.Sandbox = S[0] != '0';
  return O;
}

//===----------------------------------------------------------------------===//
// Deterministic request execution (runs inside the sandbox child, or
// in-process with Sandbox off).
//===----------------------------------------------------------------------===//

namespace {

Value computeBody(const Request &Req) {
  sir::ParseResult PR = sir::parseModule(Req.ModuleText);
  if (!PR.ok())
    return errorBody("parse_error",
                     "line " + std::to_string(PR.Line) + ": " + PR.Error);

  core::PipelineRun Run = core::compileAndMeasure(*PR.M, Req.Pipeline);
  if (!Run.ok()) {
    std::string Detail =
        Run.Errors.empty() ? "output mismatch" : Run.Errors[0];
    return errorBody("compile_error", Detail);
  }

  if (!Req.Simulate)
    return okBody(Run, nullptr);
  try {
    timing::SimStats S = core::simulate(Run, Req.Machine);
    return okBody(Run, &S);
  } catch (const timing::SimulationOverrun &O) {
    return errorBody("overrun",
                     "simulation exceeded " + std::to_string(O.Limit) +
                         " cycles (" + std::to_string(O.Retired) + "/" +
                         std::to_string(O.TraceSize) +
                         " instructions retired)");
  }
}

/// One-line tail of the child's stderr for ERR-response details.
std::string stderrHint(const support::TaskResult &R) {
  std::string Tail = R.StderrTail;
  while (!Tail.empty() && Tail.back() == '\n')
    Tail.pop_back();
  size_t Line = Tail.rfind('\n');
  return Line == std::string::npos ? Tail : Tail.substr(Line + 1);
}

} // namespace

std::pair<Value, bool> Server::execute(const Request &Req) {
  if (!Opts.Sandbox) {
    try {
      support::fault::inject("serve");
      Value Body = computeBody(Req);
      bool Cacheable = Body.strOr("status", "") == "ok" ||
                       isDeterministicErrorKind(
                           Body.find("error")
                               ? Body.find("error")->strOr("kind", "")
                               : "");
      return {std::move(Body), Cacheable};
    } catch (const std::exception &E) {
      return {errorBody("internal", E.what()), false};
    }
  }

  support::SandboxLimits Limits;
  Limits.WallMs = Opts.SandboxWallMs;
  Limits.KillGraceMs = Opts.SandboxKillGraceMs;
  Limits.AddressSpaceMb = Opts.SandboxAsMb;

  support::TaskResult R = support::Subprocess::run(
      [&Req](int PayloadFd) {
        support::fault::inject("serve");
        Value Body = computeBody(Req);
        return support::Subprocess::writeAll(PayloadFd, Body.dump()) ? 0 : 2;
      },
      Limits);

  if (R.ok()) {
    Value Body;
    std::string Err;
    if (json::Value::parse(R.Payload, Body, &Err) && Body.isObject()) {
      bool Cacheable = Body.strOr("status", "") == "ok" ||
                       isDeterministicErrorKind(
                           Body.find("error")
                               ? Body.find("error")->strOr("kind", "")
                               : "");
      return {std::move(Body), Cacheable};
    }
    return {errorBody("internal", "malformed sandbox payload"), false};
  }

  // The sandbox contained a death; type it for the client. None of
  // these are deterministic functions of the request, so none are
  // cached -- a retry after a transient fault can still succeed.
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counts.SandboxDeaths;
  }
  std::string Hint = stderrHint(R);
  std::string Detail = R.describe() + (Hint.empty() ? "" : ": " + Hint);
  const char *Kind = "crash";
  switch (R.St) {
  case support::TaskResult::Status::Signaled:
    Kind = R.TimedOut ? "timeout" : "crash";
    break;
  case support::TaskResult::Status::ExitNonZero:
    Kind = "internal";
    break;
  case support::TaskResult::Status::SpawnFailed:
    Kind = "spawn_failed";
    break;
  case support::TaskResult::Status::Ok:
    break;
  }
  return {errorBody(Kind, Detail), false};
}

//===----------------------------------------------------------------------===//
// Caching and response assembly.
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions O)
    : Opts(std::move(O)),
      Disk(DiskCache::Options{Opts.CacheDir, Opts.DiskCacheEntries}) {}

Server::~Server() = default;

bool Server::memGet(const std::string &Key, std::string &Body) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = MemCache.find(Key);
  if (It == MemCache.end())
    return false;
  Body = It->second;
  return true;
}

void Server::memPut(const std::string &Key, const std::string &Body) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (MemCache.emplace(Key, Body).second) {
    MemOrder.push_back(Key);
    while (Opts.MemCacheEntries > 0 && MemOrder.size() > Opts.MemCacheEntries) {
      MemCache.erase(MemOrder.front());
      MemOrder.pop_front();
    }
  }
}

std::string Server::respond(const Value &Body, const char *Tier,
                            const std::string &Key) {
  Counters C = counters();
  DiskCache::Counters D = Disk.counters();

  Value Cache = Value::object();
  Cache.set("tier", Tier);
  if (!Key.empty())
    Cache.set("key", Key);
  Cache.set("mem_hits", C.MemHits);
  Cache.set("disk_hits", D.Hits);
  Cache.set("disk_misses", D.Misses);
  Cache.set("disk_stores", D.Stores);
  Cache.set("disk_evictions", D.Evictions);
  Cache.set("disk_invalidations", D.Invalidations);

  Value Doc = Value::object();
  Doc.set("schema", ResponseSchema);
  Doc.set("body", Body);
  Doc.set("cache", std::move(Cache));
  return Doc.dump();
}

std::string Server::handleRequest(const std::string &RequestBytes) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counts.Requests;
  }

  Request Req;
  std::string Err;
  if (!parseRequest(RequestBytes, Req, Err)) {
    {
      // Scoped: respond() re-locks Mu for the counter snapshot.
      std::lock_guard<std::mutex> Lock(Mu);
      ++Counts.BadRequests;
      ++Counts.ErrorBodies;
    }
    return respond(errorBody("bad_request", Err), "none", "");
  }

  if (Req.Op == RequestOp::Ping) {
    Value Result = Value::object();
    Result.set("pong", true);
    Value Body = Value::object();
    Body.set("status", "ok");
    Body.set("result", std::move(Result));
    return respond(Body, "none", "");
  }

  if (Req.Op == RequestOp::Stats) {
    Counters C = counters();
    DiskCache::Counters D = Disk.counters();
    Value Result = Value::object();
    Result.set("requests", C.Requests);
    Result.set("mem_hits", C.MemHits);
    Result.set("disk_hits", C.DiskHits);
    Result.set("misses", C.Misses);
    Result.set("bad_requests", C.BadRequests);
    Result.set("error_bodies", C.ErrorBodies);
    Result.set("sandbox_deaths", C.SandboxDeaths);
    Result.set("disk_entries", Disk.entryCount());
    Result.set("disk_stores", D.Stores);
    Result.set("disk_evictions", D.Evictions);
    Result.set("disk_invalidations", D.Invalidations);
    Value Body = Value::object();
    Body.set("status", "ok");
    Body.set("result", std::move(Result));
    return respond(Body, "none", "");
  }

  if (Req.Simulate && !Req.Pipeline.RunRegisterAllocation) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Counts.BadRequests;
      ++Counts.ErrorBodies;
    }
    return respond(errorBody("bad_request",
                             "simulation requires register allocation"),
                   "none", "");
  }

  // Content address: module text + full pipeline key + machine key +
  // whether simulation stats are part of the body. Display names are
  // deliberately excluded (and absent from the body).
  const std::string Key =
      DiskCache::key(Req.ModuleText, pipelineCacheKey(Req.Pipeline),
                     Req.Machine.canonicalKey() +
                         (Req.Simulate ? ";sim=1" : ";sim=0"));

  std::string BodyText;
  if (memGet(Key, BodyText)) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Counts.MemHits;
    }
    Value Body;
    std::string ParseErr;
    json::Value::parse(BodyText, Body, &ParseErr);
    return respond(Body, "memory", Key);
  }

  if (Disk.get(Key, BodyText)) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Counts.DiskHits;
    }
    memPut(Key, BodyText);
    Value Body;
    std::string ParseErr;
    json::Value::parse(BodyText, Body, &ParseErr);
    return respond(Body, "disk", Key);
  }

  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counts.Misses;
  }
  auto [Body, Cacheable] = execute(Req);
  if (Body.strOr("status", "") != "ok") {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counts.ErrorBodies;
  }
  if (Cacheable) {
    const std::string Text = Body.dump();
    Disk.put(Key, Text);
    memPut(Key, Text);
  }
  return respond(Body, "none", Key);
}

//===----------------------------------------------------------------------===//
// Transport.
//===----------------------------------------------------------------------===//

namespace {

void ignoreSigpipeOnce() {
  // A client that disconnects mid-response must surface as a write
  // error, not SIGPIPE.
  static std::once_flag Once;
  std::call_once(Once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

} // namespace

bool Server::serveConnection(int Fd) {
  ignoreSigpipeOnce();
  std::string ReqBytes;
  for (;;) {
    switch (readFrame(Fd, Opts.MaxRequestBytes, ReqBytes)) {
    case FrameStatus::Ok:
      if (!writeFrame(Fd, handleRequest(ReqBytes)))
        return false;
      break;
    case FrameStatus::Eof:
      return true;
    case FrameStatus::Oversized: {
      // The stream is unframed from here on; answer and hang up.
      {
        std::lock_guard<std::mutex> Lock(Mu);
        ++Counts.Requests;
        ++Counts.BadRequests;
        ++Counts.ErrorBodies;
      }
      writeFrame(Fd, respond(errorBody("bad_request",
                                       "request exceeds " +
                                           std::to_string(
                                               Opts.MaxRequestBytes) +
                                           " bytes"),
                             "none", ""));
      return false;
    }
    case FrameStatus::Truncated:
    case FrameStatus::IoError:
      return false;
    }
  }
}

void Server::serveLoop(int ListenFd, const std::atomic<bool> &Stop) {
  ignoreSigpipeOnce();
  if (!Pool)
    Pool = std::make_unique<support::ThreadPool>(Opts.Jobs);
  while (!Stop.load(std::memory_order_relaxed)) {
    struct pollfd P = {ListenFd, POLLIN, 0};
    int N = poll(&P, 1, 200);
    if (N < 0 && errno != EINTR)
      break;
    if (N <= 0 || !(P.revents & POLLIN))
      continue;
    int Conn = accept(ListenFd, nullptr, nullptr);
    if (Conn < 0)
      continue;
    Pool->submit([this, Conn] {
      serveConnection(Conn);
      close(Conn);
    });
  }
  close(ListenFd);
}

Server::Counters Server::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counts;
}

//===----------------------------------------------------------------------===//
// Unix-domain endpoints.
//===----------------------------------------------------------------------===//

namespace {

bool fillSockaddr(const std::string &Path, sockaddr_un &Addr,
                  std::string &Err) {
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

int serve::listenUnix(const std::string &Path, std::string &Err) {
  sockaddr_un Addr;
  if (!fillSockaddr(Path, Addr, Err))
    return -1;
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  unlink(Path.c_str()); // Replace a stale socket file.
  if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "bind " + Path + ": " + std::strerror(errno);
    close(Fd);
    return -1;
  }
  if (listen(Fd, 64) != 0) {
    Err = "listen " + Path + ": " + std::strerror(errno);
    close(Fd);
    return -1;
  }
  return Fd;
}

int serve::connectUnix(const std::string &Path, std::string &Err) {
  sockaddr_un Addr;
  if (!fillSockaddr(Path, Addr, Err))
    return -1;
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "connect " + Path + ": " + std::strerror(errno);
    close(Fd);
    return -1;
  }
  return Fd;
}
