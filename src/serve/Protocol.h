//===- serve/Protocol.h - fpint-serve wire protocol -----------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation-as-a-service wire protocol (see docs/SERVING.md for
/// the field-by-field spec). A connection carries a sequence of frames
/// in both directions; each frame is a 4-byte little-endian length
/// followed by that many bytes of UTF-8 JSON.
///
/// Request document:
///
///   { "op": "compile" | "stats" | "ping",        // default "compile"
///     "module": "<sir assembly text>",           // compile only
///     "name": "<display label>",                 // optional
///     "pipeline": { ...PipelineConfig subset... },
///     "machine": { "base": "4-way"|"8-way", ...overrides... },
///     "simulate": true }                         // default true
///
/// Response document (written by serve::Server):
///
///   { "schema": "fpint-serve-response-v1",
///     "body": { "status": "ok", "result": {...} }
///           | { "status": "error", "error": { "kind": ..., ... } },
///     "cache": { "tier": "memory"|"disk"|"none", ...counters... } }
///
/// The "body" subtree is the deterministic, content-addressed unit:
/// equal requests always produce byte-identical bodies (volatile
/// fields like simulator wall time are zeroed), which is what the
/// disk cache stores and what the CI smoke test byte-diffs cold
/// against warm. The "cache" envelope is per-response metadata and is
/// never cached.
///
/// Parsing is strict: unknown members anywhere in a request are
/// rejected, so a typo ("schme") fails loudly instead of silently
/// compiling under defaults.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SERVE_PROTOCOL_H
#define FPINT_SERVE_PROTOCOL_H

#include "core/Pipeline.h"
#include "support/Json.h"
#include "timing/MachineConfig.h"

#include <cstdint>
#include <string>

namespace fpint {
namespace serve {

/// Response (and cache-entry) schema tag. Bump when the body layout
/// changes; the disk cache folds it into its schema stamp so stale
/// entries self-invalidate.
extern const char *const ResponseSchema;

//===----------------------------------------------------------------------===//
// Framing.
//===----------------------------------------------------------------------===//

/// Outcome of one readFrame() call.
enum class FrameStatus {
  Ok,        ///< A complete frame was read.
  Eof,       ///< Clean end of stream before any length byte.
  Truncated, ///< Stream ended mid-length or mid-payload.
  Oversized, ///< Declared length exceeds the caller's limit.
  IoError,   ///< read() failed.
};

/// Reads one length-prefixed frame from \p Fd into \p Out. A declared
/// length above \p MaxBytes returns Oversized without consuming the
/// payload (the stream is no longer framed; the caller must close the
/// connection). Retries EINTR; blocking fd expected.
FrameStatus readFrame(int Fd, size_t MaxBytes, std::string &Out);

/// Writes one length-prefixed frame. Returns false on a write error
/// (e.g. the peer disconnected).
bool writeFrame(int Fd, const std::string &Payload);

//===----------------------------------------------------------------------===//
// Requests.
//===----------------------------------------------------------------------===//

enum class RequestOp { Compile, Stats, Ping };

/// A validated compile+measure request.
struct Request {
  RequestOp Op = RequestOp::Compile;
  std::string ModuleText; ///< sir assembly (Compile only).
  std::string Name;       ///< Display label (defaults to "mod-<hash8>").
  core::PipelineConfig Pipeline;
  timing::MachineConfig Machine;
  /// Non-empty when the request overrides the machine display name;
  /// MachineConfig::Name is a const char* so the string lives here.
  std::string MachineName;
  bool Simulate = true;
};

/// Parses and strictly validates \p Text into \p Out. Returns false
/// with a diagnostic in \p Err on malformed JSON, unknown members,
/// kind-mismatched fields, or out-of-range values. Never executes
/// anything.
bool parseRequest(const std::string &Text, Request &Out, std::string &Err);

/// The pipeline half of a request, serialized back to the canonical
/// RunCache key form (module name deliberately excluded -- the name is
/// a display label, the module *text* addresses the content).
std::string pipelineCacheKey(const core::PipelineConfig &Config);

//===----------------------------------------------------------------------===//
// Deterministic response bodies.
//===----------------------------------------------------------------------===//

/// Builds the "ok" body for a completed run: partition statistics,
/// per-pass compile telemetry, and (when \p Sim is non-null) the
/// simulation stats with wall-clock fields zeroed so the body is a
/// pure function of the request.
json::Value okBody(const core::PipelineRun &Run, const timing::SimStats *Sim);

/// Builds an "error" body. Deterministic kinds ("parse_error",
/// "compile_error", "overrun") are cacheable; transport/sandbox kinds
/// ("bad_request", "crash", "timeout", "spawn_failed", "internal")
/// are not (see Server::handleRequest).
json::Value errorBody(const std::string &Kind, const std::string &Detail);

/// Whether an error of \p Kind is a deterministic function of the
/// request (and may therefore be cached and replayed).
bool isDeterministicErrorKind(const std::string &Kind);

} // namespace serve
} // namespace fpint

#endif // FPINT_SERVE_PROTOCOL_H
