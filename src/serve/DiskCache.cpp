//===- serve/DiskCache.cpp - Persistent content-addressed result store ----===//

#include "serve/DiskCache.h"

#include "serve/Protocol.h"
#include "stats/Report.h"
#include "support/Hash.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>
#include <utime.h>

using namespace fpint;
using namespace fpint::serve;
namespace fs = std::filesystem;

namespace {

bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

} // namespace

DiskCache::DiskCache(Options O) : Opts(std::move(O)) {
  std::error_code EC;
  fs::create_directories(Opts.Dir, EC);
  // Initial entry census (shards only; tmp files are transient and
  // excluded). The count drives eviction, so approximate is fine --
  // it self-corrects as entries are stored.
  size_t N = 0;
  for (const auto &Shard : fs::directory_iterator(Opts.Dir, EC)) {
    if (!Shard.is_directory())
      continue;
    std::error_code EC2;
    for (const auto &Ent : fs::directory_iterator(Shard.path(), EC2))
      if (Ent.path().extension() == ".json")
        ++N;
  }
  Entries = N;
}

std::string DiskCache::schemaStamp() {
  return std::string(ResponseSchema) + "/" + stats::ReportSchema;
}

std::string DiskCache::key(const std::string &ModuleText,
                           const std::string &PipelineKey,
                           const std::string &MachineKey) {
  uint64_t H = support::fnv1a64(ModuleText);
  H = support::fnv1a64("\x1f" + PipelineKey, H);
  H = support::fnv1a64("\x1f" + MachineKey, H);
  H = support::fnv1a64("\x1f" + schemaStamp(), H);
  return support::hex64(H);
}

std::string DiskCache::pathFor(const std::string &Key) const {
  return Opts.Dir + "/" + Key.substr(0, 2) + "/" + Key + ".json";
}

bool DiskCache::get(const std::string &Key, std::string &Body) {
  const std::string Path = pathFor(Key);
  std::string Text;
  if (!readWholeFile(Path, Text)) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counts.Misses;
    return false;
  }

  json::Value Entry;
  std::string Err;
  bool Stale = !json::Value::parse(Text, Entry, &Err) ||
               Entry.strOr("cache_schema", "") != schemaStamp() ||
               Entry.strOr("key", "") != Key || !Entry.find("body") ||
               !Entry.find("body")->isObject();
  if (Stale) {
    // Schema bump, corruption, or a hash collision between schema
    // generations: reclaim the slot rather than serving it.
    std::error_code EC;
    bool Removed = fs::remove(Path, EC);
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counts.Misses;
    ++Counts.Invalidations;
    if (Removed && Entries > 0)
      --Entries;
    return false;
  }

  Body = Entry.find("body")->dump();
  // Touch for LRU-ish eviction ordering; best-effort.
  utime(Path.c_str(), nullptr);
  std::lock_guard<std::mutex> Lock(Mu);
  ++Counts.Hits;
  return true;
}

bool DiskCache::put(const std::string &Key, const std::string &Body) {
  json::Value BodyDoc;
  std::string Err;
  if (!json::Value::parse(Body, BodyDoc, &Err))
    return false; // Only well-formed bodies are publishable.

  json::Value Entry = json::Value::object();
  Entry.set("cache_schema", schemaStamp());
  Entry.set("key", Key);
  Entry.set("body", std::move(BodyDoc));
  const std::string Text = Entry.dump() + "\n";

  const std::string Path = pathFor(Key);
  std::error_code EC;
  fs::create_directories(fs::path(Path).parent_path(), EC);

  uint64_t Seq;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Seq = ++TmpSeq;
  }
  const std::string Tmp = Opts.Dir + "/tmp." + std::to_string(getpid()) +
                          "." + std::to_string(Seq);
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(Text.data(), static_cast<std::streamsize>(Text.size()));
    Out.flush();
    if (!Out) {
      fs::remove(Tmp, EC);
      return false;
    }
  }
  const bool Fresh = !fs::exists(Path, EC);
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    fs::remove(Tmp, EC);
    return false;
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counts.Stores;
    if (Fresh)
      ++Entries;
  }
  evictIfNeeded();
  return true;
}

void DiskCache::evictIfNeeded() {
  size_t Over;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Opts.MaxEntries == 0 || Entries <= Opts.MaxEntries)
      return;
    Over = Entries - Opts.MaxEntries;
  }

  // Collect (mtime, path) for every entry and drop the oldest. This
  // scan is rare (only on overflow) and the directory is bounded by
  // MaxEntries, so O(n log n) here is fine.
  std::vector<std::pair<fs::file_time_type, fs::path>> All;
  std::error_code EC;
  for (const auto &Shard : fs::directory_iterator(Opts.Dir, EC)) {
    if (!Shard.is_directory())
      continue;
    std::error_code EC2;
    for (const auto &Ent : fs::directory_iterator(Shard.path(), EC2)) {
      if (Ent.path().extension() != ".json")
        continue;
      std::error_code EC3;
      auto T = fs::last_write_time(Ent.path(), EC3);
      if (!EC3)
        All.emplace_back(T, Ent.path());
    }
  }
  std::sort(All.begin(), All.end());

  size_t Dropped = 0;
  for (size_t I = 0; I < All.size() && Dropped < Over; ++I) {
    std::error_code EC4;
    if (fs::remove(All[I].second, EC4))
      ++Dropped;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  Counts.Evictions += Dropped;
  Entries = All.size() - Dropped;
}

DiskCache::Counters DiskCache::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counts;
}

size_t DiskCache::entryCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries;
}
