//===- serve/Protocol.cpp - fpint-serve wire protocol ---------------------===//

#include "serve/Protocol.h"

#include "core/PassManager.h"
#include "core/RunCache.h"
#include "regalloc/Allocator.h"
#include "stats/Report.h"

#include <cerrno>
#include <cstring>
#include <limits>

#include <unistd.h>

using namespace fpint;
using namespace fpint::serve;
using json::Value;

const char *const serve::ResponseSchema = "fpint-serve-response-v1";

//===----------------------------------------------------------------------===//
// Framing.
//===----------------------------------------------------------------------===//

namespace {

/// EINTR-safe read of exactly \p Len bytes. Returns the byte count
/// actually read (short on EOF), or -1 on error.
ssize_t readFull(int Fd, char *Buf, size_t Len) {
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = read(Fd, Buf + Got, Len - Got);
    if (N == 0)
      break;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    Got += static_cast<size_t>(N);
  }
  return static_cast<ssize_t>(Got);
}

} // namespace

FrameStatus serve::readFrame(int Fd, size_t MaxBytes, std::string &Out) {
  char Hdr[4];
  ssize_t N = readFull(Fd, Hdr, 4);
  if (N < 0)
    return FrameStatus::IoError;
  if (N == 0)
    return FrameStatus::Eof;
  if (N < 4)
    return FrameStatus::Truncated;
  uint32_t Len = static_cast<uint8_t>(Hdr[0]) |
                 (static_cast<uint8_t>(Hdr[1]) << 8) |
                 (static_cast<uint8_t>(Hdr[2]) << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Hdr[3])) << 24);
  if (Len > MaxBytes)
    return FrameStatus::Oversized;
  Out.resize(Len);
  if (Len == 0)
    return FrameStatus::Ok;
  N = readFull(Fd, Out.data(), Len);
  if (N < 0)
    return FrameStatus::IoError;
  if (static_cast<size_t>(N) < Len)
    return FrameStatus::Truncated;
  return FrameStatus::Ok;
}

bool serve::writeFrame(int Fd, const std::string &Payload) {
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  char Hdr[4] = {static_cast<char>(Len), static_cast<char>(Len >> 8),
                 static_cast<char>(Len >> 16), static_cast<char>(Len >> 24)};
  std::string Framed(Hdr, 4);
  Framed += Payload;
  size_t Off = 0;
  while (Off < Framed.size()) {
    ssize_t N = write(Fd, Framed.data() + Off, Framed.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Strict request parsing.
//===----------------------------------------------------------------------===//

namespace {

/// Accumulates the first validation diagnostic; subsequent checks
/// become no-ops once one fired.
struct Validator {
  std::string &Err;
  bool ok() const { return Err.empty(); }
  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
  }

  /// Checks that every member of \p Obj is one of \p Allowed.
  void onlyKeys(const Value &Obj, const char *What,
                std::initializer_list<const char *> Allowed) {
    for (const auto &KV : Obj.members()) {
      bool Known = false;
      for (const char *A : Allowed)
        if (KV.first == A)
          Known = true;
      if (!Known)
        fail(std::string("unknown ") + What + " member '" + KV.first + "'");
    }
  }

  bool getString(const Value &Obj, const char *Key, std::string &Out) {
    const Value *V = Obj.find(Key);
    if (!V)
      return false;
    if (!V->isString()) {
      fail(std::string("'") + Key + "' must be a string");
      return false;
    }
    Out = V->str();
    return true;
  }

  bool getBool(const Value &Obj, const char *Key, bool &Out) {
    const Value *V = Obj.find(Key);
    if (!V)
      return false;
    if (V->kind() != Value::Kind::Bool) {
      fail(std::string("'") + Key + "' must be a boolean");
      return false;
    }
    Out = V->boolean();
    return true;
  }

  bool getUnsigned(const Value &Obj, const char *Key, unsigned &Out) {
    const Value *V = Obj.find(Key);
    if (!V)
      return false;
    if (V->kind() != Value::Kind::Int || V->integer() < 0 ||
        V->integer() > std::numeric_limits<unsigned>::max()) {
      fail(std::string("'") + Key + "' must be a non-negative integer");
      return false;
    }
    Out = static_cast<unsigned>(V->integer());
    return true;
  }

  bool getDouble(const Value &Obj, const char *Key, double &Out) {
    const Value *V = Obj.find(Key);
    if (!V)
      return false;
    if (!V->isNumber()) {
      fail(std::string("'") + Key + "' must be a number");
      return false;
    }
    Out = V->number();
    return true;
  }

  bool getArgs(const Value &Obj, const char *Key,
               std::vector<int32_t> &Out) {
    const Value *V = Obj.find(Key);
    if (!V)
      return false;
    if (!V->isArray() || V->size() > 64) {
      fail(std::string("'") + Key +
           "' must be an array of at most 64 integers");
      return false;
    }
    Out.clear();
    for (const Value &E : V->items()) {
      if (E.kind() != Value::Kind::Int ||
          E.integer() < std::numeric_limits<int32_t>::min() ||
          E.integer() > std::numeric_limits<int32_t>::max()) {
        fail(std::string("'") + Key + "' elements must be 32-bit integers");
        return false;
      }
      Out.push_back(static_cast<int32_t>(E.integer()));
    }
    return true;
  }
};

void parsePipelineObj(Validator &V, const Value &Obj,
                      core::PipelineConfig &Cfg) {
  if (!Obj.isObject()) {
    V.fail("'pipeline' must be an object");
    return;
  }
  V.onlyKeys(Obj, "pipeline",
             {"scheme", "costs", "train_args", "ref_args",
              "run_register_allocation", "enable_fp_arg_passing",
              "run_optimizations", "passes", "regalloc"});
  std::string Scheme;
  if (V.getString(Obj, "scheme", Scheme)) {
    if (Scheme == "none")
      Cfg.Scheme = partition::Scheme::None;
    else if (Scheme == "basic")
      Cfg.Scheme = partition::Scheme::Basic;
    else if (Scheme == "advanced")
      Cfg.Scheme = partition::Scheme::Advanced;
    else
      V.fail("'scheme' must be none|basic|advanced");
  }
  if (const Value *Costs = Obj.find("costs")) {
    if (!Costs->isObject()) {
      V.fail("'costs' must be an object");
    } else {
      V.onlyKeys(*Costs, "costs",
                 {"copy_overhead", "dup_overhead", "fpa_share_cap"});
      V.getDouble(*Costs, "copy_overhead", Cfg.Costs.CopyOverhead);
      V.getDouble(*Costs, "dup_overhead", Cfg.Costs.DupOverhead);
      V.getDouble(*Costs, "fpa_share_cap", Cfg.Costs.FpaShareCap);
    }
  }
  V.getArgs(Obj, "train_args", Cfg.TrainArgs);
  V.getArgs(Obj, "ref_args", Cfg.RefArgs);
  V.getBool(Obj, "run_register_allocation", Cfg.RunRegisterAllocation);
  V.getBool(Obj, "enable_fp_arg_passing", Cfg.EnableFpArgPassing);
  V.getBool(Obj, "run_optimizations", Cfg.RunOptimizations);
  if (V.getString(Obj, "passes", Cfg.Passes) && !Cfg.Passes.empty()) {
    std::vector<std::unique_ptr<core::ModulePass>> Parsed;
    std::string ParseErr;
    if (!core::parsePipeline(Cfg.Passes, Parsed, ParseErr))
      V.fail("bad 'passes' pipeline text: " + ParseErr);
  }
  if (V.getString(Obj, "regalloc", Cfg.RegAllocator) &&
      !Cfg.RegAllocator.empty() &&
      !regalloc::AllocatorRegistry::global().contains(Cfg.RegAllocator))
    V.fail("unknown 'regalloc' backend '" + Cfg.RegAllocator + "'");
}

void parseCacheObj(Validator &V, const Value &Obj, const char *What,
                   timing::CacheConfig &C) {
  if (!Obj.isObject()) {
    V.fail(std::string("'") + What + "' must be an object");
    return;
  }
  V.onlyKeys(Obj, What,
             {"size_bytes", "assoc", "line_bytes", "hit_latency",
              "miss_penalty"});
  V.getUnsigned(Obj, "size_bytes", C.SizeBytes);
  V.getUnsigned(Obj, "assoc", C.Assoc);
  V.getUnsigned(Obj, "line_bytes", C.LineBytes);
  V.getUnsigned(Obj, "hit_latency", C.HitLatency);
  V.getUnsigned(Obj, "miss_penalty", C.MissPenalty);
}

void parseMachineObj(Validator &V, const Value &Obj,
                     timing::MachineConfig &M, std::string &DisplayName) {
  if (!Obj.isObject()) {
    V.fail("'machine' must be an object");
    return;
  }
  V.onlyKeys(Obj, "machine",
             {"base", "name", "fetch_width", "decode_width", "retire_width",
              "int_window", "fp_window", "max_in_flight", "int_units",
              "fp_units", "load_store_ports", "int_phys_regs",
              "fp_phys_regs", "icache", "dcache", "predictor",
              "mispredict_redirect", "fetch_breaks_on_taken",
              "fpa_enabled"});
  std::string Base;
  if (V.getString(Obj, "base", Base)) {
    if (Base == "4-way" || Base == "4way")
      M = timing::MachineConfig::fourWay();
    else if (Base == "8-way" || Base == "8way")
      M = timing::MachineConfig::eightWay();
    else
      V.fail("'base' must be 4-way|8-way");
  }
  V.getString(Obj, "name", DisplayName);
  V.getUnsigned(Obj, "fetch_width", M.FetchWidth);
  V.getUnsigned(Obj, "decode_width", M.DecodeWidth);
  V.getUnsigned(Obj, "retire_width", M.RetireWidth);
  V.getUnsigned(Obj, "int_window", M.IntWindow);
  V.getUnsigned(Obj, "fp_window", M.FpWindow);
  V.getUnsigned(Obj, "max_in_flight", M.MaxInFlight);
  V.getUnsigned(Obj, "int_units", M.IntUnits);
  V.getUnsigned(Obj, "fp_units", M.FpUnits);
  V.getUnsigned(Obj, "load_store_ports", M.LoadStorePorts);
  V.getUnsigned(Obj, "int_phys_regs", M.IntPhysRegs);
  V.getUnsigned(Obj, "fp_phys_regs", M.FpPhysRegs);
  if (const Value *C = Obj.find("icache"))
    parseCacheObj(V, *C, "icache", M.ICache);
  if (const Value *C = Obj.find("dcache"))
    parseCacheObj(V, *C, "dcache", M.DCache);
  if (const Value *P = Obj.find("predictor")) {
    if (!P->isObject()) {
      V.fail("'predictor' must be an object");
    } else {
      V.onlyKeys(*P, "predictor", {"kind", "table_bits", "history_bits"});
      std::string Kind;
      if (V.getString(*P, "kind", Kind)) {
        if (Kind == "gshare")
          M.Predictor = timing::PredictorKind::Gshare;
        else if (Kind == "mcfarling")
          M.Predictor = timing::PredictorKind::McFarling;
        else if (Kind == "static_not_taken")
          M.Predictor = timing::PredictorKind::StaticNotTaken;
        else
          V.fail("'predictor.kind' must be "
                 "gshare|mcfarling|static_not_taken");
      }
      V.getUnsigned(*P, "table_bits", M.PredictorTableBits);
      V.getUnsigned(*P, "history_bits", M.PredictorHistoryBits);
    }
  }
  V.getUnsigned(Obj, "mispredict_redirect", M.MispredictRedirect);
  V.getBool(Obj, "fetch_breaks_on_taken", M.FetchBreaksOnTaken);
  V.getBool(Obj, "fpa_enabled", M.FpaEnabled);
}

} // namespace

bool serve::parseRequest(const std::string &Text, Request &Out,
                         std::string &Err) {
  Value Doc;
  if (!Value::parse(Text, Doc, &Err))
    return false;
  if (!Doc.isObject()) {
    Err = "request must be a JSON object";
    return false;
  }
  Validator V{Err};
  V.onlyKeys(Doc, "request",
             {"op", "module", "name", "pipeline", "machine", "simulate"});

  std::string Op = "compile";
  V.getString(Doc, "op", Op);
  if (Op == "compile")
    Out.Op = RequestOp::Compile;
  else if (Op == "stats")
    Out.Op = RequestOp::Stats;
  else if (Op == "ping")
    Out.Op = RequestOp::Ping;
  else
    V.fail("'op' must be compile|stats|ping");

  V.getString(Doc, "name", Out.Name);
  if (Out.Op == RequestOp::Compile) {
    if (!V.getString(Doc, "module", Out.ModuleText) && V.ok())
      V.fail("compile request needs a 'module' string");
    if (V.ok() && Out.ModuleText.empty())
      V.fail("'module' must not be empty");
  } else if (Doc.find("module")) {
    V.fail("'module' is only valid on compile requests");
  }
  if (const Value *P = Doc.find("pipeline"))
    parsePipelineObj(V, *P, Out.Pipeline);
  if (const Value *M = Doc.find("machine"))
    parseMachineObj(V, *M, Out.Machine, Out.MachineName);
  V.getBool(Doc, "simulate", Out.Simulate);
  return V.ok();
}

std::string serve::pipelineCacheKey(const core::PipelineConfig &Config) {
  // The empty leading module-name slot: the serve cache addresses the
  // module by its full text hash, not by a caller-chosen label.
  return core::RunCache::runKey("", Config);
}

//===----------------------------------------------------------------------===//
// Deterministic response bodies.
//===----------------------------------------------------------------------===//

json::Value serve::okBody(const core::PipelineRun &Run,
                          const timing::SimStats *Sim) {
  Value Result = Value::object();

  Value Part = Value::object();
  Part.set("dynamic_instructions", Run.Stats.Total);
  Part.set("fpa_fraction", Run.Stats.fpaFraction());
  Part.set("copy_fraction", Run.Stats.copyFraction());
  Part.set("dup_fraction", Run.Stats.dupFraction());
  Part.set("loads", Run.Stats.Loads);
  Part.set("stores", Run.Stats.Stores);
  Part.set("static_copies", Run.Rewrite.StaticCopies);
  Part.set("static_dups", Run.Rewrite.StaticDups);
  Part.set("static_copy_backs", Run.Rewrite.StaticCopyBacks);
  Result.set("partition", std::move(Part));
  Result.set("exit_value", Run.RefResult.ExitValue);

  // Per-pass telemetry: change counts and analysis-cache counters are
  // deterministic for a fixed pipeline; wall clock is not, so it is
  // zeroed to keep the body content-addressable.
  std::vector<core::PassStat> Passes = Run.PassStats;
  for (core::PassStat &P : Passes)
    P.WallMs = 0.0;
  Result.set("passes", stats::passStatsToJson(Passes));

  if (!Run.Alloc.AllocatorName.empty()) {
    stats::RegAllocSummary RA = stats::RegAllocSummary::of(Run.Alloc);
    RA.WallMs = 0.0; // Volatile; keeps the body content-addressable.
    Result.set("regalloc", stats::regAllocSummaryToJson(RA));
  }

  if (Sim) {
    timing::SimStats S = *Sim;
    S.SimWallMs = 0.0; // Volatile; zeroing also zeroes cycles/sec.
    Result.set("stats", stats::simStatsToJson(S));
  }

  Value Body = Value::object();
  Body.set("status", "ok");
  Body.set("result", std::move(Result));
  return Body;
}

json::Value serve::errorBody(const std::string &Kind,
                             const std::string &Detail) {
  Value E = Value::object();
  E.set("kind", Kind);
  E.set("detail", Detail);
  Value Body = Value::object();
  Body.set("status", "error");
  Body.set("error", std::move(E));
  return Body;
}

bool serve::isDeterministicErrorKind(const std::string &Kind) {
  return Kind == "parse_error" || Kind == "compile_error" ||
         Kind == "overrun";
}
