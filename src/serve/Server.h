//===- serve/Server.h - Compilation-as-a-service request engine -----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving engine behind the fpint-serve daemon: accepts framed
/// compile+measure requests (serve::Protocol), answers them from a
/// two-tier result cache, and executes misses inside the PR 4
/// subprocess sandbox so a poisoned module degrades to one ERR
/// response instead of taking the daemon down.
///
/// Tiers, checked in order per request:
///
///   memory   bounded in-process map of response bodies (hot keys)
///   disk     serve::DiskCache, shared across restarts and processes
///   miss     fork + compile + measure under rlimits and a watchdog
///
/// Only deterministic bodies are published to the caches: successful
/// runs and typed deterministic failures (sir parse errors, pipeline
/// failures, simulator overruns). Sandbox deaths -- crash, watchdog
/// timeout, OOM, spawn failure -- produce uncached ERR responses with
/// a typed reason, so a transient fault never poisons the store.
///
/// Forking contract: handleRequest() forks from thread-pool workers
/// while sibling workers run concurrently. This is safe on the glibc
/// targets this daemon supports because fork() runs the malloc fork
/// handlers (the child's arenas are reinitialized consistently), and
/// the child executes only self-contained compile/simulate code -- it
/// never touches the parent's caches, registries, or any other lock
/// a sibling thread could have held at fork time. This deliberately
/// relaxes the stricter orchestration-thread-only contract the bench
/// harness follows (see support/Subprocess.h).
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_SERVE_SERVER_H
#define FPINT_SERVE_SERVER_H

#include "serve/DiskCache.h"
#include "serve/Protocol.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace fpint {
namespace support {
class ThreadPool;
}

namespace serve {

/// Daemon configuration; every field has an FPINT_SERVE_* environment
/// override (see fromEnv() and docs/SERVING.md).
struct ServerOptions {
  std::string CacheDir = "serve_cache"; ///< FPINT_SERVE_CACHE
  unsigned Jobs = 0;                    ///< FPINT_SERVE_JOBS (0 = auto)
  size_t MaxRequestBytes = 8u << 20;    ///< FPINT_SERVE_MAX_REQUEST_BYTES
  size_t MemCacheEntries = 1024;        ///< FPINT_SERVE_MEM_ENTRIES
  size_t DiskCacheEntries = 8192;       ///< FPINT_SERVE_DISK_ENTRIES
  int SandboxWallMs = 30000;            ///< FPINT_SERVE_TIMEOUT_MS
  int SandboxKillGraceMs = 500;         ///< FPINT_SERVE_KILL_GRACE_MS
  uint64_t SandboxAsMb = 4096;          ///< FPINT_SERVE_AS_MB
  /// FPINT_SERVE_SANDBOX=0 executes misses in-process instead of in a
  /// forked child (faster, but a crashing request kills the server --
  /// tests and trusted single-user runs only).
  bool Sandbox = true;

  static ServerOptions fromEnv();
};

class Server {
public:
  struct Counters {
    uint64_t Requests = 0;
    uint64_t MemHits = 0;
    uint64_t DiskHits = 0;
    uint64_t Misses = 0;        ///< Executed (neither tier hit).
    uint64_t BadRequests = 0;
    uint64_t ErrorBodies = 0;   ///< Responses whose body is an error.
    uint64_t SandboxDeaths = 0; ///< Crash / timeout / oom / spawn-fail.
  };

  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Answers one unframed request document; always returns a complete
  /// response document (never throws). Thread-safe.
  std::string handleRequest(const std::string &RequestBytes);

  /// Serves framed requests on \p Fd until EOF or a transport error.
  /// Returns true on clean EOF. An oversized frame is answered with a
  /// bad_request response and the connection is closed (the stream
  /// can no longer be framed). Thread-safe (one caller per fd).
  bool serveConnection(int Fd);

  /// Accept loop: serves every connection of \p ListenFd on an
  /// internal thread pool until \p Stop becomes true. Returns when
  /// the listener is closed and no more connections are accepted.
  void serveLoop(int ListenFd, const std::atomic<bool> &Stop);

  Counters counters() const;
  const DiskCache &disk() const { return Disk; }
  const ServerOptions &options() const { return Opts; }

private:
  struct CacheLookup {
    std::string Body;  ///< Valid when Tier != "none" or after execute.
    const char *Tier = "none";
  };

  std::string respond(const json::Value &Body, const char *Tier,
                      const std::string &Key);
  bool memGet(const std::string &Key, std::string &Body);
  void memPut(const std::string &Key, const std::string &Body);

  /// Runs one validated compile request (sandboxed or in-process per
  /// Opts.Sandbox) and returns (body, cacheable).
  std::pair<json::Value, bool> execute(const Request &Req);

  ServerOptions Opts;
  DiskCache Disk;
  std::unique_ptr<support::ThreadPool> Pool;

  mutable std::mutex Mu;
  Counters Counts;
  std::map<std::string, std::string> MemCache;
  std::deque<std::string> MemOrder; ///< FIFO eviction for MemCache.
};

/// Creates, binds, and listens on a Unix-domain stream socket at
/// \p Path (an existing socket file is replaced). Returns the listen
/// fd, or -1 with \p Err set.
int listenUnix(const std::string &Path, std::string &Err);

/// Connects to the daemon's Unix-domain socket. Returns the connected
/// fd, or -1 with \p Err set.
int connectUnix(const std::string &Path, std::string &Err);

} // namespace serve
} // namespace fpint

#endif // FPINT_SERVE_SERVER_H
