//===- bench/regalloc_race.cpp - Allocator race on the fig10 corpus -------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Races the registered register-allocation backends -- the incumbent
/// "regalloc" and the Poletto-Sarkar "regalloc-linear" scan -- over the
/// Figure 10 workload corpus under the advanced scheme. For each
/// (workload, allocator) point the table reports the allocator's
/// deterministic footprint (spilled intervals, spill slots, spill
/// loads/stores, callee-save traffic) and the simulated cycle count of
/// the resulting binary on the augmented 8-way machine, plus the cycle
/// delta of each challenger against the incumbent.
///
/// Compile-time is the other half of the race, but wall clock is not
/// reproducible, so it goes to stderr as an informational footer (and
/// into the telemetry JSON as the regalloc object's wall_ms field,
/// which fpint-report treats as informational-only when diffing).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "regalloc/Allocator.h"
#include "support/Table.h"

#include <map>

using namespace fpint;

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("regalloc_race", argc, argv);
  std::printf("Register-allocator race: incumbent vs linear scan "
              "(advanced scheme, 8-way)\n\n");
  timing::MachineConfig Machine = timing::MachineConfig::eightWay();

  const std::vector<std::string> Allocators =
      regalloc::AllocatorRegistry::global().names();

  // Wall-clock totals per allocator, accumulated across cells for the
  // stderr footer. Matrix cells run on pool threads; guard with the
  // harness mutex idiom.
  std::mutex WallMu;
  std::map<std::string, double> WallMs;

  std::vector<workloads::Workload> Ws = workloads::intWorkloads();
  Table T({"benchmark", "allocator", "spilled", "slots", "ld", "st",
           "callee st/ld", "cycles", "d(cyc)"});
  bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
    bench::MatrixRows Rows;
    uint64_t BaseCycles = 0;
    for (const std::string &Allocator : Allocators) {
      core::PipelineConfig Cfg;
      Cfg.Scheme = partition::Scheme::Advanced;
      Cfg.TrainArgs = W.TrainArgs;
      Cfg.RefArgs = W.RefArgs;
      // The default backend keeps RegAllocator empty so its cells
      // share cache entries (and run ids) with the other figures.
      if (Allocator != regalloc::defaultAllocatorName())
        Cfg.RegAllocator = Allocator;

      bench::RunPtr Run = bench::compileModule(*W.M, W.Name, Cfg);
      timing::SimStats S = bench::simulateRun(Run, Machine);
      if (BaseCycles == 0)
        BaseCycles = S.Cycles;

      const regalloc::ModuleAlloc &A = Run->Alloc;
      {
        std::lock_guard<std::mutex> Lock(WallMu);
        WallMs[Allocator] += A.totalWallMs();
      }
      double Delta = BaseCycles
                         ? static_cast<double>(S.Cycles) /
                                   static_cast<double>(BaseCycles) -
                               1.0
                         : 0.0;
      Rows.push_back(
          {W.Name, Allocator, Table::num(A.totalSpilledIntervals()),
           Table::num(A.totalSpillSlots()), Table::num(A.totalSpillLoads()),
           Table::num(A.totalSpillStores()),
           Table::num(A.totalCalleeSaveStores()) + "/" +
               Table::num(A.totalCalleeSaveRestores()),
           Table::num(S.Cycles), Table::pct(Delta)});
    }
    return Rows;
  });
  T.print();
  std::printf("\nd(cyc) is each allocator's simulated-cycle delta against "
              "the incumbent\n(\"%s\") on the same workload; negative is a "
              "win for the challenger.\n",
              regalloc::defaultAllocatorName());

  // Informational only: allocation wall clock per backend (summed over
  // all functions of all workloads this process compiled). Kept off
  // stdout so the reproduced table stays byte-diffable.
  {
    std::lock_guard<std::mutex> Lock(WallMu);
    for (const std::string &Allocator : Allocators)
      std::fprintf(stderr, "[bench] regalloc_race: %s alloc wall %.3f ms\n",
                   Allocator.c_str(), WallMs[Allocator]);
  }
  return bench::harnessExit();
}
