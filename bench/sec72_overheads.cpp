//===- bench/sec72_overheads.cpp - Section 7.2 / 6.5 overheads ------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7.2's overhead measurements for the advanced scheme:
///
///  * the increase in dynamic instruction count from copies and
///    duplicates (paper: <1% for most benchmarks, max 4% for compress,
///    split 3.4% copies + 0.6% duplicates);
///  * the change in static code size (paper: negligible);
///  * the change in load counts from register-pressure shifts after
///    partitioning + allocation (paper, Section 6.6: go -3.7%,
///    gcc +2.6% -- small in both directions).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

using namespace fpint;

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("sec72_overheads", argc, argv);
  std::printf("Section 7.2 / 6.6: Advanced-scheme overheads\n\n");
  std::vector<workloads::Workload> Ws = workloads::intWorkloads();
  Table T({"benchmark", "dyn increase", "copies", "dups", "copy-backs",
           "static growth", "load delta"});
  bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
    bench::RunPtr Conv =
        bench::compileWorkload(W, partition::Scheme::None);
    bench::RunPtr Adv =
        bench::compileWorkload(W, partition::Scheme::Advanced);

    double DynIncrease =
        static_cast<double>(Adv->Stats.Total) /
            static_cast<double>(Conv->Stats.Total) -
        1.0;
    double CopyFrac = static_cast<double>(Adv->Stats.Copies) /
                      static_cast<double>(Adv->Stats.Total);
    double DupFrac = Adv->Stats.dupFraction();
    double CopyBackFrac = static_cast<double>(Adv->Stats.CopyBacks) /
                          static_cast<double>(Adv->Stats.Total);

    unsigned StaticConv = 0, StaticAdv = 0;
    for (const auto &F : Conv->Compiled->functions())
      StaticConv += F->numInstrIds();
    for (const auto &F : Adv->Compiled->functions())
      StaticAdv += F->numInstrIds();
    double StaticGrowth =
        static_cast<double>(StaticAdv) / static_cast<double>(StaticConv) -
        1.0;

    double LoadDelta = static_cast<double>(Adv->Stats.Loads) /
                           static_cast<double>(Conv->Stats.Loads) -
                       1.0;

    return bench::MatrixRows{
        {W.Name, Table::pct(DynIncrease), Table::pct(CopyFrac),
         Table::pct(DupFrac), Table::pct(CopyBackFrac),
         Table::pct(StaticGrowth), Table::pct(LoadDelta, 2)}};
  });
  T.print();
  std::printf("\nPaper: dynamic increase <1%% typical, max 4%% (compress: "
              "3.4%% copies + 0.6%% dups);\nstatic growth negligible; load "
              "deltas small in both directions (go -3.7%%, gcc +2.6%%).\n");
  return bench::harnessExit();
}
