//===- bench/fig9_speedup_4way.cpp - Reproduces Figure 9 ------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 9, "Speedups on a 4-way machine": percentage improvement of
/// the augmented microarchitecture running basic- and advanced-
/// partitioned binaries over the conventional microarchitecture running
/// the unpartitioned binary, on the Table 1 4-way (2 INT + 2 FP)
/// configuration. Paper: 2.5%-23.1% for the advanced scheme, with
/// m88ksim at ~23%, compress/ijpeg over 10%, and the advanced scheme
/// beating basic everywhere except li and m88ksim-like cases.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

using namespace fpint;

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("fig9_speedup_4way", argc, argv);
  std::printf("Figure 9: Speedups over a conventional 4-way machine\n\n");
  timing::MachineConfig Machine = timing::MachineConfig::fourWay();
  timing::MachineConfig Conventional = Machine;
  Conventional.FpaEnabled = false;

  std::vector<workloads::Workload> Ws = workloads::intWorkloads();
  Table T({"benchmark", "basic", "advanced", "conv cycles", "adv IPC",
           "br acc"});
  bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
    bench::RunPtr Conv =
        bench::compileWorkload(W, partition::Scheme::None);
    bench::RunPtr Basic =
        bench::compileWorkload(W, partition::Scheme::Basic);
    bench::RunPtr Adv =
        bench::compileWorkload(W, partition::Scheme::Advanced);

    timing::SimStats ConvStats = bench::simulateRun(Conv, Conventional);
    timing::SimStats BasicStats = bench::simulateRun(Basic, Machine);
    timing::SimStats AdvStats = bench::simulateRun(Adv, Machine);

    return bench::MatrixRows{
        {W.Name, Table::pct(core::speedup(ConvStats, BasicStats) - 1.0),
         Table::pct(core::speedup(ConvStats, AdvStats) - 1.0),
         Table::num(ConvStats.Cycles), Table::fmt(AdvStats.ipc()),
         Table::pct(AdvStats.branchAccuracy())}};
  });
  T.print();
  std::printf("\nPaper: advanced speedups 2.5%%-23.1%%; m88ksim ~23%%, "
              "compress/ijpeg/m88ksim >10%%,\nli smallest; advanced >= basic "
              "except where the partitions barely differ.\n");
  return bench::harnessExit();
}
