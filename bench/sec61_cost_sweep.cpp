//===- bench/sec61_cost_sweep.cpp - Section 6.1 cost-parameter sweep ------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.1: "The copy and duplication overheads, o_copy and o_dupl,
/// were determined empirically. ... o_copy between 3 and 6 and o_dupl
/// between 1.5 and 3 yield the best results." This harness sweeps the
/// two parameters over and around those ranges and reports the mean FPa
/// partition size and mean 4-way speedup across the integer benchmarks,
/// reproducing the ablation behind the paper's chosen defaults.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

using namespace fpint;

int main() {
  std::printf("Section 6.1: cost-model parameter sweep "
              "(advanced scheme, 4-way)\n\n");
  timing::MachineConfig Machine = timing::MachineConfig::fourWay();
  timing::MachineConfig Conventional = Machine;
  Conventional.FpaEnabled = false;

  // Conventional baselines are parameter independent; compute once.
  std::vector<workloads::Workload> Ws = workloads::intWorkloads();
  std::vector<uint64_t> ConvCycles;
  for (const workloads::Workload &W : Ws) {
    core::PipelineRun Conv =
        bench::compileWorkload(W, partition::Scheme::None);
    ConvCycles.push_back(core::simulate(Conv, Conventional).Cycles);
  }

  const double CopySweep[] = {1.5, 3.0, 4.0, 6.0, 9.0};
  const double DupSweep[] = {1.0, 2.5, 5.0};

  Table T({"o_copy", "o_dupl", "mean offload", "mean speedup",
           "mean copy+dup ovh"});
  for (double OCopy : CopySweep) {
    for (double ODup : DupSweep) {
      if (ODup >= OCopy)
        continue; // The paper requires o_dupl < o_copy.
      partition::CostParams P;
      P.CopyOverhead = OCopy;
      P.DupOverhead = ODup;
      double SumOffload = 0, SumSpeedup = 0, SumOvh = 0;
      for (size_t I = 0; I < Ws.size(); ++I) {
        core::PipelineRun Adv =
            bench::compileWorkload(Ws[I], partition::Scheme::Advanced, P);
        timing::SimStats S = core::simulate(Adv, Machine);
        SumOffload += Adv.Stats.fpaFraction();
        SumSpeedup += static_cast<double>(ConvCycles[I]) /
                          static_cast<double>(S.Cycles) -
                      1.0;
        SumOvh += Adv.Stats.copyFraction() + Adv.Stats.dupFraction();
      }
      double N = static_cast<double>(Ws.size());
      T.addRow({Table::fmt(OCopy, 1), Table::fmt(ODup, 1),
                Table::pct(SumOffload / N), Table::pct(SumSpeedup / N),
                Table::pct(SumOvh / N)});
    }
  }
  T.print();
  std::printf("\nPaper: best results with o_copy in [3,6] and o_dupl in "
              "[1.5,3]; too-small\noverheads admit unprofitable copies, "
              "too-large ones forgo profitable offloads.\n");
  return 0;
}
