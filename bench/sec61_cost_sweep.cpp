//===- bench/sec61_cost_sweep.cpp - Section 6.1 cost-parameter sweep ------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.1: "The copy and duplication overheads, o_copy and o_dupl,
/// were determined empirically. ... o_copy between 3 and 6 and o_dupl
/// between 1.5 and 3 yield the best results." This harness sweeps the
/// two parameters over and around those ranges and reports the mean FPa
/// partition size and mean 4-way speedup across the integer benchmarks,
/// reproducing the ablation behind the paper's chosen defaults.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

using namespace fpint;

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("sec61_cost_sweep", argc, argv);
  std::printf("Section 6.1: cost-model parameter sweep "
              "(advanced scheme, 4-way)\n\n");
  timing::MachineConfig Machine = timing::MachineConfig::fourWay();
  timing::MachineConfig Conventional = Machine;
  Conventional.FpaEnabled = false;

  std::vector<workloads::Workload> Ws = workloads::intWorkloads();

  const double CopySweep[] = {1.5, 3.0, 4.0, 6.0, 9.0};
  const double DupSweep[] = {1.0, 2.5, 5.0};

  // One matrix item per admissible (o_copy, o_dupl) point; the
  // parameter-independent conventional baselines are shared across
  // items through the run cache.
  std::vector<partition::CostParams> Sweep;
  for (double OCopy : CopySweep) {
    for (double ODup : DupSweep) {
      if (ODup >= OCopy)
        continue; // The paper requires o_dupl < o_copy.
      partition::CostParams P;
      P.CopyOverhead = OCopy;
      P.DupOverhead = ODup;
      Sweep.push_back(P);
    }
  }

  Table T({"o_copy", "o_dupl", "mean offload", "mean speedup",
           "mean copy+dup ovh"});
  bench::runMatrix(Sweep, T, [&](const partition::CostParams &P) {
    double SumOffload = 0, SumSpeedup = 0, SumOvh = 0;
    for (const workloads::Workload &W : Ws) {
      bench::RunPtr Conv =
          bench::compileWorkload(W, partition::Scheme::None);
      uint64_t ConvCycles = bench::simulateRun(Conv, Conventional).Cycles;
      bench::RunPtr Adv =
          bench::compileWorkload(W, partition::Scheme::Advanced, P);
      timing::SimStats S = bench::simulateRun(Adv, Machine);
      SumOffload += Adv->Stats.fpaFraction();
      SumSpeedup += static_cast<double>(ConvCycles) /
                        static_cast<double>(S.Cycles) -
                    1.0;
      SumOvh += Adv->Stats.copyFraction() + Adv->Stats.dupFraction();
    }
    double N = static_cast<double>(Ws.size());
    return bench::MatrixRows{
        {Table::fmt(P.CopyOverhead, 1), Table::fmt(P.DupOverhead, 1),
         Table::pct(SumOffload / N), Table::pct(SumSpeedup / N),
         Table::pct(SumOvh / N)}};
  });
  T.print();
  std::printf("\nPaper: best results with o_copy in [3,6] and o_dupl in "
              "[1.5,3]; too-small\noverheads admit unprofitable copies, "
              "too-large ones forgo profitable offloads.\n");
  return bench::harnessExit();
}
