//===- bench/micro_algorithms.cpp - Compiler-pass microbenchmarks ---------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the compiler machinery itself
/// (not a paper figure): RDG construction, the two partitioning schemes,
/// register allocation, and the cycle simulator's throughput. Useful for
/// keeping the passes fast as the repository evolves.
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/RDG.h"
#include "core/Pipeline.h"
#include "partition/BasicPartitioner.h"
#include "partition/Partitioner.h"
#include "regalloc/RegAlloc.h"
#include "timing/Simulator.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace fpint;

namespace {

const workloads::Workload &m88k() {
  static workloads::Workload W = workloads::workloadByName("m88ksim");
  return W;
}

void BM_RdgConstruction(benchmark::State &State) {
  const sir::Function &F = *m88k().M->functionByName("main");
  analysis::CFG Cfg(F);
  for (auto _ : State) {
    analysis::RDG G(F, Cfg);
    benchmark::DoNotOptimize(G.numNodes());
  }
}
BENCHMARK(BM_RdgConstruction);

void BM_BasicPartition(benchmark::State &State) {
  const sir::Function &F = *m88k().M->functionByName("main");
  analysis::CFG Cfg(F);
  analysis::RDG G(F, Cfg);
  for (auto _ : State) {
    partition::Assignment A = partition::partitionBasic(G);
    benchmark::DoNotOptimize(A.fpaNodeCount());
  }
}
BENCHMARK(BM_BasicPartition);

void BM_AdvancedPartitionModule(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    auto Clone = m88k().M->clone();
    State.ResumeTiming();
    auto RW = partition::partitionModule(*Clone,
                                         partition::Scheme::Advanced,
                                         /*ProfileWeights=*/nullptr);
    benchmark::DoNotOptimize(RW.StaticCopies);
  }
}
BENCHMARK(BM_AdvancedPartitionModule);

void BM_RegisterAllocation(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    auto Clone = m88k().M->clone();
    State.ResumeTiming();
    auto Alloc = regalloc::allocateModule(*Clone);
    benchmark::DoNotOptimize(Alloc.Funcs.size());
  }
}
BENCHMARK(BM_RegisterAllocation);

void BM_VmInterpreter(benchmark::State &State) {
  const workloads::Workload &W = m88k();
  for (auto _ : State) {
    auto R = vm::runModule(*W.M, W.TrainArgs);
    benchmark::DoNotOptimize(R.Steps);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(25000));
}
BENCHMARK(BM_VmInterpreter);

void BM_CycleSimulator(benchmark::State &State) {
  const workloads::Workload &W = m88k();
  core::PipelineConfig Cfg;
  Cfg.Scheme = partition::Scheme::Advanced;
  Cfg.TrainArgs = W.TrainArgs;
  Cfg.RefArgs = W.TrainArgs; // Short trace for the microbenchmark.
  core::PipelineRun Run = core::compileAndMeasure(*W.M, Cfg);
  vm::VM::Options Opts;
  Opts.CollectTrace = true;
  vm::VM Machine(*Run.Compiled, Opts);
  auto R = Machine.run(W.TrainArgs);
  if (!R.Ok)
    State.SkipWithError("trace generation failed");
  timing::MachineConfig Four = timing::MachineConfig::fourWay();
  for (auto _ : State) {
    timing::Simulator Sim(Four, Run.Alloc);
    timing::SimStats S = Sim.run(Machine.trace());
    benchmark::DoNotOptimize(S.Cycles);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Machine.trace().size()));
}
BENCHMARK(BM_CycleSimulator);

} // namespace

BENCHMARK_MAIN();
