//===- bench/BenchCommon.h - Shared harness helpers -----------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel evaluation runtime shared by the per-figure/per-table
/// reproduction binaries:
///
///  * compileWorkload() / simulateRun(): compile a workload under a
///    scheme and simulate it on a machine, both memoized in the
///    process-wide core::RunCache (each (workload, scheme, costs)
///    point compiles exactly once per process; the VM trace is
///    captured at most once per compiled module).
///  * runMatrix(): fan per-item row computations out on the shared
///    support::ThreadPool and append the resulting Table rows in
///    deterministic item order, so the emitted tables are
///    byte-identical to a serial evaluation.
///  * ScopedBenchReport: per-binary wall-clock / cache footer on
///    stderr (stdout stays reserved for the reproduced tables).
///
/// Threading contract: each matrix item is evaluated by exactly one
/// pool task, so a row function may freely use its own item (including
/// the workload's module) but must touch shared state only through the
/// caches. Row functions signal a bad matrix cell by throwing (e.g.
/// CompileError); runMatrix reports the cell on stderr and keeps
/// evaluating the remaining items instead of killing the binary.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_BENCH_BENCHCOMMON_H
#define FPINT_BENCH_BENCHCOMMON_H

#include "core/Pipeline.h"
#include "core/RunCache.h"
#include "stats/StatsRegistry.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace fpint {
namespace bench {

/// A pipeline produced unusable output for one matrix cell (the
/// harness must never report numbers from a broken build).
class CompileError : public std::runtime_error {
public:
  explicit CompileError(const std::string &What)
      : std::runtime_error(What) {}
};

using RunPtr = core::RunCache::RunPtr;

/// Compiles module \p M (identified by \p Name) under \p Config via
/// the process-wide cache; throws CompileError on pipeline failure.
inline RunPtr compileModule(const sir::Module &M, const std::string &Name,
                            const core::PipelineConfig &Config) {
  RunPtr Run = core::RunCache::global().compile(M, Name, Config);
  if (!Run->ok())
    throw CompileError("pipeline failed for " + Name + " (" +
                       partition::schemeName(Config.Scheme) + "): " +
                       (Run->Errors.empty() ? "output mismatch"
                                            : Run->Errors[0]));
  return Run;
}

/// Compiles \p W under \p Scheme (memoized); throws CompileError on
/// any pipeline error.
inline RunPtr compileWorkload(const workloads::Workload &W,
                              partition::Scheme Scheme,
                              partition::CostParams Costs =
                                  partition::CostParams()) {
  core::PipelineConfig Cfg;
  Cfg.Scheme = Scheme;
  Cfg.Costs = Costs;
  Cfg.TrainArgs = W.TrainArgs;
  Cfg.RefArgs = W.RefArgs;
  return compileModule(*W.M, W.Name, Cfg);
}

/// Simulates \p Run on \p Machine (memoized; replays the run's cached
/// ref-input trace, so the functional VM is not re-executed). With
/// FPINT_TELEMETRY=1 every simulated point is also recorded in the
/// process-wide StatsRegistry, from which ScopedBenchReport emits the
/// binary's bench_out/<name>.json report at exit.
inline timing::SimStats simulateRun(const RunPtr &Run,
                                    const timing::MachineConfig &Machine) {
  timing::SimStats S = core::RunCache::global().simulate(Run, Machine);
  stats::StatsRegistry &Reg = stats::StatsRegistry::global();
  if (Reg.enabled())
    Reg.record(Run->Name, Run->Config, Machine, S);
  return S;
}

/// One row-producing task of a bench matrix: returns the Table rows
/// for a single item (usually one workload).
using MatrixRows = std::vector<std::vector<std::string>>;

/// Evaluates Row(Items[i]) for every item on the shared thread pool
/// and appends the produced rows to \p T in item order, making the
/// parallel table byte-identical to a serial evaluation. A row
/// function that throws fails only its own cell: the error is
/// reported on stderr (prefixed with \p What) and the table simply
/// lacks that item's rows.
template <typename Item, typename RowFn>
void runMatrix(const std::vector<Item> &Items, Table &T, RowFn Row,
               const char *What = "matrix cell") {
  support::ThreadPool &Pool = support::ThreadPool::global();
  std::vector<std::future<MatrixRows>> Pending;
  Pending.reserve(Items.size());
  for (const Item &I : Items)
    Pending.push_back(Pool.submit([&I, &Row] { return Row(I); }));
  for (size_t I = 0; I < Pending.size(); ++I) {
    try {
      for (std::vector<std::string> &R : Pending[I].get())
        T.addRow(std::move(R));
    } catch (const std::exception &E) {
      std::fprintf(stderr, "[bench] %s %zu failed: %s\n", What, I,
                   E.what());
    }
  }
}

/// The (workloads x schemes x machines) convenience form from the
/// evaluation-runtime design: every (scheme, machine) pair is
/// compiled and simulated for each workload (all through the caches),
/// then Row emits the workload's rows from the warmed caches.
template <typename RowFn>
void runMatrix(const std::vector<workloads::Workload> &Ws,
               const std::vector<partition::Scheme> &Schemes,
               const std::vector<timing::MachineConfig> &Machines,
               Table &T, RowFn Row) {
  runMatrix(
      Ws, T,
      [&](const workloads::Workload &W) {
        for (partition::Scheme S : Schemes) {
          RunPtr Run = compileWorkload(W, S);
          for (const timing::MachineConfig &M : Machines)
            simulateRun(Run, M);
        }
        return Row(W);
      },
      "workload row");
}

/// Prints a wall-clock + parallelism + cache-effectiveness footer on
/// stderr when the binary exits, and -- when telemetry is enabled --
/// writes the binary's structured JSON report (one record per
/// simulated point) into bench_out/ (or $FPINT_BENCH_OUT).
/// Construct one at the top of main().
class ScopedBenchReport {
public:
  explicit ScopedBenchReport(const char *Name)
      : Name(Name), Start(std::chrono::steady_clock::now()) {}

  ~ScopedBenchReport() {
    using namespace std::chrono;
    double Secs = duration_cast<duration<double>>(
                      steady_clock::now() - Start)
                      .count();
    core::RunCache::Stats S = core::RunCache::global().stats();
    std::fprintf(stderr,
                 "[bench] %s: wall %.2fs, jobs %u, compiles %llu "
                 "(%llu cached), sims %llu (%llu cached)\n",
                 Name, Secs, support::ThreadPool::global().threadCount(),
                 static_cast<unsigned long long>(S.CompileMisses),
                 static_cast<unsigned long long>(S.CompileHits),
                 static_cast<unsigned long long>(S.SimMisses),
                 static_cast<unsigned long long>(S.SimHits));

    stats::StatsRegistry &Reg = stats::StatsRegistry::global();
    if (!Reg.enabled() || Reg.numRecords() == 0)
      return;
    const char *Dir = std::getenv("FPINT_BENCH_OUT");
    std::string OutDir = Dir && *Dir ? Dir : "bench_out";
    std::string Err;
    if (Reg.writeReport(OutDir, Name, &Err))
      std::fprintf(stderr, "[bench] %s: wrote %s/%s.json (%zu runs)\n",
                   Name, OutDir.c_str(), Name, Reg.numRecords());
    else
      std::fprintf(stderr, "[bench] %s: telemetry report failed: %s\n",
                   Name, Err.c_str());
  }

private:
  const char *Name;
  std::chrono::steady_clock::time_point Start;
};

} // namespace bench
} // namespace fpint

#endif // FPINT_BENCH_BENCHCOMMON_H
