//===- bench/BenchCommon.h - Shared harness helpers -----------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel evaluation runtime shared by the per-figure/per-table
/// reproduction binaries:
///
///  * compileWorkload() / simulateRun(): compile a workload under a
///    scheme and simulate it on a machine, both memoized in the
///    process-wide core::RunCache (each (workload, scheme, costs)
///    point compiles exactly once per process; the VM trace is
///    captured at most once per compiled module).
///  * runMatrix(): fan per-item row computations out on the shared
///    support::ThreadPool and append the resulting Table rows in
///    deterministic item order, so the emitted tables are
///    byte-identical to a serial evaluation.
///  * ScopedBenchReport: per-binary wall-clock / cache footer on
///    stderr (stdout stays reserved for the reproduced tables).
///
/// Threading contract: each matrix item is evaluated by exactly one
/// pool task, so a row function may freely use its own item (including
/// the workload's module) but must touch shared state only through the
/// caches. Row functions signal a bad matrix cell by throwing (e.g.
/// CompileError); runMatrix reports the cell on stderr and keeps
/// evaluating the remaining items instead of killing the binary.
///
/// Containment contract (degrade-don't-die, see docs/ROBUSTNESS.md):
/// with FPINT_SANDBOX=1 -- or automatically whenever FPINT_FAULT is
/// armed -- every matrix cell runs in its own forked child under
/// support::Subprocess limits. A cell that crashes, hangs, or runs out
/// of memory is retried with backoff (FPINT_CELL_RETRIES, default 2
/// retries) and finally degrades to a row of ERR cells; the table
/// still renders, the per-binary footer lists every degraded cell, and
/// the binary exits nonzero only under --strict / FPINT_STRICT=1
/// (bench::harnessExit()). Sandboxed cells are dispatched serially
/// from the orchestration thread (forking from pool workers is not
/// fork-safe) and do not contribute telemetry records: the child's
/// StatsRegistry dies with it.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_BENCH_BENCHCOMMON_H
#define FPINT_BENCH_BENCHCOMMON_H

#include "core/Pipeline.h"
#include "core/RunCache.h"
#include "stats/StatsRegistry.h"
#include "support/FaultInject.h"
#include "support/Subprocess.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace fpint {
namespace bench {

/// Process-wide degradation state shared by runMatrix (which registers
/// degraded cells), ScopedBenchReport (which summarizes them at exit)
/// and harnessExit() (which turns them into a nonzero exit only under
/// --strict).
struct HarnessState {
  std::mutex Mu;
  std::vector<std::string> DegradedCells;
  bool Strict = false;

  void addDegraded(std::string Cell) {
    std::lock_guard<std::mutex> Lock(Mu);
    DegradedCells.push_back(std::move(Cell));
  }
  size_t numDegraded() {
    std::lock_guard<std::mutex> Lock(Mu);
    return DegradedCells.size();
  }

  static HarnessState &global() {
    static HarnessState S;
    return S;
  }
};

/// Integer environment knob with a default.
inline int envInt(const char *Name, int Def) {
  const char *E = std::getenv(Name);
  if (!E || !*E)
    return Def;
  return std::atoi(E);
}

/// Whether matrix cells run fork-isolated. FPINT_SANDBOX=1 forces on,
/// FPINT_SANDBOX=0 forces off; otherwise the sandbox arms itself
/// whenever fault injection is armed, so an injected crash can never
/// take the harness down.
inline bool sandboxEnabled() {
  const char *E = std::getenv("FPINT_SANDBOX");
  if (E && *E)
    return E[0] != '0';
  return support::fault::enabled();
}

/// The exit code a bench main() should return: 0 normally (even with
/// degraded cells -- the table rendered), 1 when cells degraded and
/// strict mode (--strict or FPINT_STRICT=1) was requested.
inline int harnessExit() {
  HarnessState &H = HarnessState::global();
  return H.Strict && H.numDegraded() > 0 ? 1 : 0;
}

/// A pipeline produced unusable output for one matrix cell (the
/// harness must never report numbers from a broken build).
class CompileError : public std::runtime_error {
public:
  explicit CompileError(const std::string &What)
      : std::runtime_error(What) {}
};

using RunPtr = core::RunCache::RunPtr;

/// Compiles module \p M (identified by \p Name) under \p Config via
/// the process-wide cache; throws CompileError on pipeline failure.
inline RunPtr compileModule(const sir::Module &M, const std::string &Name,
                            const core::PipelineConfig &Config) {
  RunPtr Run = core::RunCache::global().compile(M, Name, Config);
  if (!Run->ok())
    throw CompileError("pipeline failed for " + Name + " (" +
                       partition::schemeName(Config.Scheme) + "): " +
                       (Run->Errors.empty() ? "output mismatch"
                                            : Run->Errors[0]));
  return Run;
}

/// Compiles \p W under \p Scheme (memoized); throws CompileError on
/// any pipeline error.
inline RunPtr compileWorkload(const workloads::Workload &W,
                              partition::Scheme Scheme,
                              partition::CostParams Costs =
                                  partition::CostParams()) {
  core::PipelineConfig Cfg;
  Cfg.Scheme = Scheme;
  Cfg.Costs = Costs;
  Cfg.TrainArgs = W.TrainArgs;
  Cfg.RefArgs = W.RefArgs;
  return compileModule(*W.M, W.Name, Cfg);
}

/// Simulates \p Run on \p Machine (memoized; replays the run's cached
/// ref-input trace, so the functional VM is not re-executed). With
/// FPINT_TELEMETRY=1 every simulated point is also recorded in the
/// process-wide StatsRegistry, from which ScopedBenchReport emits the
/// binary's bench_out/<name>.json report at exit.
inline timing::SimStats simulateRun(const RunPtr &Run,
                                    const timing::MachineConfig &Machine) {
  timing::SimStats S = core::RunCache::global().simulate(Run, Machine);
  stats::StatsRegistry &Reg = stats::StatsRegistry::global();
  if (Reg.enabled())
    Reg.record(Run->Name, Run->Config, Machine, S,
               Run->RefResult.Trap.Kind, Run->PassStats,
               stats::RegAllocSummary::of(Run->Alloc));
  return S;
}

/// One row-producing task of a bench matrix: returns the Table rows
/// for a single item (usually one workload).
using MatrixRows = std::vector<std::vector<std::string>>;

namespace detail {

/// Length-prefixed (u32 LE) framing of a cell's rows over the
/// sandbox payload pipe: numRows, then per row numCells, then per
/// cell length + bytes.
inline void packU32(std::string &Out, uint32_t V) {
  char B[4] = {static_cast<char>(V), static_cast<char>(V >> 8),
               static_cast<char>(V >> 16), static_cast<char>(V >> 24)};
  Out.append(B, 4);
}

inline bool unpackU32(const std::string &In, size_t &Pos, uint32_t &V) {
  if (Pos + 4 > In.size())
    return false;
  V = static_cast<uint8_t>(In[Pos]) |
      (static_cast<uint8_t>(In[Pos + 1]) << 8) |
      (static_cast<uint8_t>(In[Pos + 2]) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(In[Pos + 3])) << 24);
  Pos += 4;
  return true;
}

inline std::string packRows(const MatrixRows &Rows) {
  std::string Out;
  packU32(Out, static_cast<uint32_t>(Rows.size()));
  for (const std::vector<std::string> &R : Rows) {
    packU32(Out, static_cast<uint32_t>(R.size()));
    for (const std::string &C : R) {
      packU32(Out, static_cast<uint32_t>(C.size()));
      Out += C;
    }
  }
  return Out;
}

inline bool unpackRows(const std::string &In, MatrixRows &Rows) {
  size_t Pos = 0;
  uint32_t NumRows = 0;
  if (!unpackU32(In, Pos, NumRows))
    return false;
  Rows.clear();
  for (uint32_t R = 0; R < NumRows; ++R) {
    uint32_t NumCells = 0;
    if (!unpackU32(In, Pos, NumCells))
      return false;
    std::vector<std::string> Row;
    for (uint32_t C = 0; C < NumCells; ++C) {
      uint32_t Len = 0;
      if (!unpackU32(In, Pos, Len) || Pos + Len > In.size())
        return false;
      Row.emplace_back(In, Pos, Len);
      Pos += Len;
    }
    Rows.push_back(std::move(Row));
  }
  return Pos == In.size();
}

/// Display label for a degraded item: its .Name when it has one
/// (workloads), otherwise "<What> #<Index>".
template <typename Item>
std::string itemLabel(const Item &I, const char *What, size_t Index) {
  if constexpr (requires { std::string(I.Name); })
    return std::string(I.Name);
  else
    return std::string(What) + " #" + std::to_string(Index);
}

/// Runs one matrix cell in a forked child under sandbox limits, with
/// bounded retry-with-backoff. Returns true with the unpacked rows on
/// success; false with \p Err describing the final failure.
template <typename Item, typename RowFn>
bool runCellSandboxed(const Item &I, RowFn &Row, MatrixRows &Rows,
                      std::string &Err) {
  support::SandboxLimits Limits;
  Limits.WallMs = envInt("FPINT_CELL_TIMEOUT_MS", 120000);
  Limits.KillGraceMs = envInt("FPINT_CELL_KILL_GRACE_MS", 500);
  Limits.AddressSpaceMb =
      static_cast<uint64_t>(envInt("FPINT_CELL_AS_MB", 4096));
  const int Attempts = 1 + std::max(0, envInt("FPINT_CELL_RETRIES", 2));

  for (int Attempt = 1; Attempt <= Attempts; ++Attempt) {
    // Set pre-fork so the child inherits its attempt number; ":once"
    // fault specs use it to model transient failures a retry clears.
    support::fault::setAttempt(static_cast<unsigned>(Attempt));
    support::TaskResult R = support::Subprocess::run(
        [&](int PayloadFd) {
          support::fault::inject("cell");
          try {
            MatrixRows CellRows = Row(I);
            return support::Subprocess::writeAll(PayloadFd,
                                                 packRows(CellRows))
                       ? 0
                       : 2;
          } catch (const std::exception &E) {
            std::fprintf(stderr, "%s\n", E.what());
            return 3;
          }
        },
        Limits);
    support::fault::setAttempt(1);

    if (R.ok() && unpackRows(R.Payload, Rows))
      return true;

    Err = R.ok() ? std::string("malformed cell payload") : R.describe();
    if (!R.StderrTail.empty()) {
      std::string Tail = R.StderrTail;
      if (!Tail.empty() && Tail.back() == '\n')
        Tail.pop_back();
      size_t Line = Tail.rfind('\n');
      Err += ": " + (Line == std::string::npos ? Tail
                                               : Tail.substr(Line + 1));
    }
    if (Attempt < Attempts)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(50 * Attempt));
  }
  return false;
}

} // namespace detail

/// Evaluates Row(Items[i]) for every item and appends the produced
/// rows to \p T in item order, making the table byte-identical to a
/// serial evaluation.
///
/// Default mode fans the items out on the shared thread pool; a row
/// function that throws fails only its own cell (reported on stderr,
/// rows absent). Sandbox mode (see sandboxEnabled()) instead forks one
/// child per cell, serially: a cell that crashes, hangs, or exhausts
/// its address space is retried with backoff and finally degrades to a
/// single row of "ERR" cells padded to the header width, registered in
/// HarnessState for the exit summary.
template <typename Item, typename RowFn>
void runMatrix(const std::vector<Item> &Items, Table &T, RowFn Row,
               const char *What = "matrix cell") {
  if (sandboxEnabled()) {
    for (size_t I = 0; I < Items.size(); ++I) {
      MatrixRows Rows;
      std::string Err;
      if (detail::runCellSandboxed(Items[I], Row, Rows, Err)) {
        for (std::vector<std::string> &R : Rows)
          T.addRow(std::move(R));
        continue;
      }
      std::string Label = detail::itemLabel(Items[I], What, I);
      std::fprintf(stderr, "[bench] %s %zu (%s) degraded to ERR: %s\n",
                   What, I, Label.c_str(), Err.c_str());
      HarnessState::global().addDegraded(Label + ": " + Err);
      std::vector<std::string> ErrRow{Label};
      while (ErrRow.size() < std::max<size_t>(T.numCols(), 2))
        ErrRow.push_back("ERR");
      T.addRow(std::move(ErrRow));
    }
    return;
  }

  support::ThreadPool &Pool = support::ThreadPool::global();
  std::vector<std::future<MatrixRows>> Pending;
  Pending.reserve(Items.size());
  for (const Item &I : Items)
    Pending.push_back(Pool.submit([&I, &Row] { return Row(I); }));
  for (size_t I = 0; I < Pending.size(); ++I) {
    try {
      for (std::vector<std::string> &R : Pending[I].get())
        T.addRow(std::move(R));
    } catch (const std::exception &E) {
      std::fprintf(stderr, "[bench] %s %zu failed: %s\n", What, I,
                   E.what());
    }
  }
}

/// The (workloads x schemes x machines) convenience form from the
/// evaluation-runtime design: every (scheme, machine) pair is
/// compiled and simulated for each workload (all through the caches),
/// then Row emits the workload's rows from the warmed caches.
template <typename RowFn>
void runMatrix(const std::vector<workloads::Workload> &Ws,
               const std::vector<partition::Scheme> &Schemes,
               const std::vector<timing::MachineConfig> &Machines,
               Table &T, RowFn Row) {
  runMatrix(
      Ws, T,
      [&](const workloads::Workload &W) {
        for (partition::Scheme S : Schemes) {
          RunPtr Run = compileWorkload(W, S);
          for (const timing::MachineConfig &M : Machines)
            simulateRun(Run, M);
        }
        return Row(W);
      },
      "workload row");
}

/// Prints a wall-clock + parallelism + cache-effectiveness footer on
/// stderr when the binary exits, and -- when telemetry is enabled --
/// writes the binary's structured JSON report (one record per
/// simulated point) into bench_out/ (or $FPINT_BENCH_OUT).
/// Construct one at the top of main().
class ScopedBenchReport {
public:
  /// \p Argc / \p Argv (optional) let the binary honor --strict;
  /// FPINT_STRICT=1 is the environment equivalent.
  explicit ScopedBenchReport(const char *Name, int Argc = 0,
                             char **Argv = nullptr)
      : Name(Name), Start(std::chrono::steady_clock::now()) {
    bool Strict = envInt("FPINT_STRICT", 0) != 0;
    for (int A = 1; A < Argc; ++A)
      if (std::strcmp(Argv[A], "--strict") == 0)
        Strict = true;
    HarnessState::global().Strict = Strict;
  }

  ~ScopedBenchReport() {
    using namespace std::chrono;
    double Secs = duration_cast<duration<double>>(
                      steady_clock::now() - Start)
                      .count();
    core::RunCache::Stats S = core::RunCache::global().stats();
    std::fprintf(stderr,
                 "[bench] %s: wall %.2fs, jobs %u, compiles %llu "
                 "(%llu cached), sims %llu (%llu cached)\n",
                 Name, Secs, support::ThreadPool::global().threadCount(),
                 static_cast<unsigned long long>(S.CompileMisses),
                 static_cast<unsigned long long>(S.CompileHits),
                 static_cast<unsigned long long>(S.SimMisses),
                 static_cast<unsigned long long>(S.SimHits));

    {
      HarnessState &H = HarnessState::global();
      std::lock_guard<std::mutex> Lock(H.Mu);
      if (!H.DegradedCells.empty()) {
        std::fprintf(stderr,
                     "[bench] %s: %zu cell(s) degraded to ERR%s:\n",
                     Name, H.DegradedCells.size(),
                     H.Strict ? " (strict: exiting nonzero)" : "");
        for (const std::string &C : H.DegradedCells)
          std::fprintf(stderr, "[bench]   %s\n", C.c_str());
      }
    }

    stats::StatsRegistry &Reg = stats::StatsRegistry::global();
    if (!Reg.enabled() || Reg.numRecords() == 0)
      return;
    const char *Dir = std::getenv("FPINT_BENCH_OUT");
    std::string OutDir = Dir && *Dir ? Dir : "bench_out";
    std::string Err;
    if (Reg.writeReport(OutDir, Name, &Err))
      std::fprintf(stderr, "[bench] %s: wrote %s/%s.json (%zu runs)\n",
                   Name, OutDir.c_str(), Name, Reg.numRecords());
    else
      std::fprintf(stderr, "[bench] %s: telemetry report failed: %s\n",
                   Name, Err.c_str());
  }

private:
  const char *Name;
  std::chrono::steady_clock::time_point Start;
};

} // namespace bench
} // namespace fpint

#endif // FPINT_BENCH_BENCHCOMMON_H
