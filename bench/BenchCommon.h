//===- bench/BenchCommon.h - Shared harness helpers -----------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure/per-table reproduction binaries:
/// compile a workload under a scheme (checking the pipeline succeeded)
/// and optionally simulate it on a Table 1 machine.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_BENCH_BENCHCOMMON_H
#define FPINT_BENCH_BENCHCOMMON_H

#include "core/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>

namespace fpint {
namespace bench {

/// Compiles \p W under \p Scheme; aborts loudly on any pipeline error
/// (the harness must never report numbers from a broken build).
inline core::PipelineRun compileWorkload(const workloads::Workload &W,
                                         partition::Scheme Scheme,
                                         partition::CostParams Costs =
                                             partition::CostParams()) {
  core::PipelineConfig Cfg;
  Cfg.Scheme = Scheme;
  Cfg.Costs = Costs;
  Cfg.TrainArgs = W.TrainArgs;
  Cfg.RefArgs = W.RefArgs;
  core::PipelineRun Run = core::compileAndMeasure(*W.M, Cfg);
  if (!Run.ok()) {
    std::fprintf(stderr, "pipeline failed for %s (%s): %s\n",
                 W.Name.c_str(), partition::schemeName(Scheme),
                 Run.Errors.empty() ? "output mismatch"
                                    : Run.Errors[0].c_str());
    std::abort();
  }
  return Run;
}

} // namespace bench
} // namespace fpint

#endif // FPINT_BENCH_BENCHCOMMON_H
