//===- bench/table2_benchmarks.cpp - Reproduces Table 2 -------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2, "Benchmark programs": the benchmarks and the inputs used.
/// SPEC sources/inputs are proprietary, so each row describes the
/// synthetic stand-in (see workloads/Workloads.h) together with its
/// measured dynamic instruction count, static size, and run outputs, so
/// the substitution is fully reproducible.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"
#include "vm/VM.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace fpint;

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("table2_benchmarks", argc, argv);
  std::printf("Table 2: Benchmark programs (synthetic SPEC stand-ins)\n\n");
  std::vector<workloads::Workload> Ws = workloads::intWorkloads();
  for (workloads::Workload &W : workloads::fpWorkloads())
    Ws.push_back(std::move(W));
  Table T({"benchmark", "input", "dyn instrs (ref)", "static instrs",
           "outputs"});
  bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
    vm::VM::Options Opts;
    Opts.CollectProfile = true;
    vm::VM Machine(*W.M, Opts);
    auto R = Machine.run(W.RefArgs);
    if (!R.Ok) {
      std::fprintf(stderr, "%s failed: %s\n", W.Name.c_str(),
                   R.Error.c_str());
      return bench::MatrixRows{};
    }
    unsigned StaticInstrs = 0;
    for (const auto &F : W.M->functions())
      StaticInstrs += F->numInstrIds();
    return bench::MatrixRows{{W.Name, W.Input, Table::num(R.Steps),
                              Table::num(StaticInstrs),
                              Table::num(R.Output.size())}};
  });
  T.print();
  std::printf("\nPaper's Table 2 inputs: compress=test.in, gcc=amptjp.i "
              "(browse.lsp/stmt.i...),\nm88ksim=ctl.raw+dhrybig, "
              "ijpeg=vigo.ppm, perl=scrabbl.pl -- all proprietary, "
              "substituted\nper DESIGN.md section 2.\n");
  return bench::harnessExit();
}
