//===- bench/midend_delta.cpp - Mid-end pass deltas on fig8/fig9 ----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta study for the mid-end transform passes (GVN, LICM, unroll,
/// inline, and the combined "opt2" preset): for every SPECint95-style
/// workload and every pipeline variant, the Figure 8 metric (FPa share
/// of dynamic instructions) and the Figure 9 metric (speedup of the
/// partitioned binary on the augmented 4-way machine over the
/// unpartitioned binary on the conventional 4-way machine), plus the
/// per-variant delta against the default pipeline.
///
/// Both sides of each speedup use the *same* pipeline text -- only the
/// scheme differs -- so each row isolates what partitioning buys under
/// that mid-end configuration, and the delta columns isolate what the
/// mid-end changes about the paper's headline numbers. The "midend"
/// column counts transform-pass changes (MidEndReport::total), so a
/// zero-delta row with zero fires is "pass found nothing" while a
/// zero-delta row with fires means the transform was performance-
/// neutral on this input.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

using namespace fpint;

namespace {

struct PipelineVariant {
  const char *Label;  ///< Row label.
  const char *Passes; ///< Pipeline text ("" = default pipeline).
};

/// One (fpa%, speedup, midend fires) measurement point.
struct Point {
  double Fpa = 0.0;
  double Speedup = 0.0;
  unsigned MidendChanges = 0;
};

} // namespace

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("midend_delta", argc, argv);
  std::printf("Mid-end deltas: FPa share (fig8) and 4-way speedup (fig9) "
              "per pipeline\n\n");

  timing::MachineConfig Machine = timing::MachineConfig::fourWay();
  timing::MachineConfig Conventional = Machine;
  Conventional.FpaEnabled = false;

  const std::vector<PipelineVariant> Variants = {
      {"default", ""},
      {"gvn", "opt,gvn,profile,partition,fp-arg-passing,regalloc"},
      {"licm", "opt,licm,profile,partition,fp-arg-passing,regalloc"},
      {"unroll", "opt,unroll,profile,partition,fp-arg-passing,regalloc"},
      {"inline", "opt,inline,profile,partition,fp-arg-passing,regalloc"},
      {"opt2", "opt2"},
  };

  std::vector<workloads::Workload> Ws = workloads::intWorkloads();
  Table T({"benchmark", "pipeline", "midend", "fpa", "d(fpa)", "speedup",
           "d(spd)", "dyn instrs"});
  bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
    auto Measure = [&](const PipelineVariant &V) {
      auto ConfigFor = [&](partition::Scheme S) {
        core::PipelineConfig Cfg;
        Cfg.Scheme = S;
        Cfg.TrainArgs = W.TrainArgs;
        Cfg.RefArgs = W.RefArgs;
        if (*V.Passes)
          Cfg.Passes = V.Passes;
        return Cfg;
      };
      bench::RunPtr Conv =
          bench::compileModule(*W.M, W.Name, ConfigFor(partition::Scheme::None));
      bench::RunPtr Adv = bench::compileModule(
          *W.M, W.Name, ConfigFor(partition::Scheme::Advanced));
      Point P;
      P.Fpa = Adv->Stats.fpaFraction();
      P.Speedup = core::speedup(bench::simulateRun(Conv, Conventional),
                                bench::simulateRun(Adv, Machine));
      P.MidendChanges = Adv->Transform.total();
      return std::make_pair(P, Adv);
    };

    bench::MatrixRows Rows;
    Point Base;
    for (size_t I = 0; I < Variants.size(); ++I) {
      auto [P, Adv] = Measure(Variants[I]);
      if (I == 0)
        Base = P;
      Rows.push_back({W.Name, Variants[I].Label,
                      std::to_string(P.MidendChanges), Table::pct(P.Fpa),
                      Table::pct(P.Fpa - Base.Fpa),
                      Table::pct(P.Speedup - 1.0),
                      Table::pct(P.Speedup - Base.Speedup),
                      Table::num(Adv->Stats.Total)});
    }
    return Rows;
  });
  T.print();
  std::printf("\nDeltas are percentage points against the default pipeline "
              "(d(fpa) on the FPa\nshare, d(spd) on the fig9 speedup); "
              "\"midend\" counts transform-pass changes.\n");
  return bench::harnessExit();
}
