//===- bench/ablation_machine.cpp - Microarchitecture ablations -----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations over the simulated machine (not a paper figure, but they
/// probe the design choices behind Table 1 and the Figure 9/10 story):
///
///  * branch predictor kind (gshare vs McFarling-combining vs static
///    not-taken) -- the offload win depends on the front end keeping
///    both subsystems fed;
///  * issue width scaling (2 int+2 fp vs 4+4) with and without FPa --
///    the paper's Figure 10 point in one table: an augmented 2+2
///    machine recovers much of a conventional 4-wide INT machine.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

using namespace fpint;

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("ablation_machine", argc, argv);
  std::printf("Machine ablations (advanced scheme)\n\n");

  // Predictor ablation on the branchiest workloads.
  {
    std::vector<workloads::Workload> Ws;
    for (const char *Name : {"compress", "go", "m88ksim"})
      Ws.push_back(workloads::workloadByName(Name));
    Table T({"benchmark", "predictor", "accuracy", "cycles", "speedup vs "
                                                             "static"});
    bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
      bench::RunPtr Adv =
          bench::compileWorkload(W, partition::Scheme::Advanced);
      uint64_t StaticCycles = 0;
      bench::MatrixRows Rows;
      for (timing::PredictorKind K :
           {timing::PredictorKind::StaticNotTaken,
            timing::PredictorKind::Gshare,
            timing::PredictorKind::McFarling}) {
        timing::MachineConfig M = timing::MachineConfig::fourWay();
        M.Predictor = K;
        timing::SimStats S = bench::simulateRun(Adv, M);
        const char *KName = K == timing::PredictorKind::Gshare ? "gshare"
                            : K == timing::PredictorKind::McFarling
                                ? "mcfarling"
                                : "static-NT";
        if (K == timing::PredictorKind::StaticNotTaken)
          StaticCycles = S.Cycles;
        Rows.push_back(
            {K == timing::PredictorKind::StaticNotTaken ? W.Name : "",
             KName, Table::pct(S.branchAccuracy()), Table::num(S.Cycles),
             Table::pct(static_cast<double>(StaticCycles) /
                            static_cast<double>(S.Cycles) -
                        1.0)});
      }
      return Rows;
    });
    T.print();
  }

  // Fetch-policy ablation: Table 1's idealized "any 4" fetch vs a
  // front end that stops at taken control transfers.
  {
    std::printf("\nFetch-policy ablation (advanced scheme, 4-way)\n\n");
    std::vector<workloads::Workload> Ws;
    for (const char *Name : {"gcc", "li", "m88ksim"})
      Ws.push_back(workloads::workloadByName(Name));
    Table T({"benchmark", "ideal fetch cycles", "break-on-taken cycles",
             "slowdown"});
    bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
      bench::RunPtr Adv =
          bench::compileWorkload(W, partition::Scheme::Advanced);
      timing::MachineConfig Ideal = timing::MachineConfig::fourWay();
      timing::MachineConfig Breaking = Ideal;
      Breaking.FetchBreaksOnTaken = true;
      timing::SimStats SI = bench::simulateRun(Adv, Ideal);
      timing::SimStats SB = bench::simulateRun(Adv, Breaking);
      return bench::MatrixRows{
          {W.Name, Table::num(SI.Cycles), Table::num(SB.Cycles),
           Table::pct(static_cast<double>(SB.Cycles) /
                          static_cast<double>(SI.Cycles) -
                      1.0)}};
    });
    T.print();
  }

  // Width scaling: conventional 2+2, augmented 2+2, conventional 4+4.
  {
    std::printf("\nIssue-width ablation: does FPa augmentation buy back a "
                "wider INT machine?\n\n");
    std::vector<workloads::Workload> Ws = workloads::intWorkloads();
    Table T({"benchmark", "conv 4-way", "augmented 4-way", "conv 8-way",
             "aug recovers"});
    bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
      bench::RunPtr Conv =
          bench::compileWorkload(W, partition::Scheme::None);
      bench::RunPtr Adv =
          bench::compileWorkload(W, partition::Scheme::Advanced);
      timing::MachineConfig Four = timing::MachineConfig::fourWay();
      timing::MachineConfig FourConv = Four;
      FourConv.FpaEnabled = false;
      timing::MachineConfig EightConv = timing::MachineConfig::eightWay();
      EightConv.FpaEnabled = false;

      uint64_t C4 = bench::simulateRun(Conv, FourConv).Cycles;
      uint64_t A4 = bench::simulateRun(Adv, Four).Cycles;
      uint64_t C8 = bench::simulateRun(Conv, EightConv).Cycles;
      // Fraction of the 4-way -> 8-way conventional gap that the
      // augmented 4-way machine closes.
      double Gap = static_cast<double>(C4 - C8);
      double Closed = Gap > 0 ? static_cast<double>(C4 - A4) / Gap : 0.0;
      return bench::MatrixRows{{W.Name, Table::num(C4), Table::num(A4),
                                Table::num(C8), Table::pct(Closed)}};
    });
    T.print();
    std::printf("\n'aug recovers' = share of the conventional 4-way ->"
                " 8-way cycle gap closed by\naugmenting the 4-way machine "
                "instead of doubling its width.\n");
  }
  return bench::harnessExit();
}
