//===- bench/sim_throughput.cpp - Simulator throughput tracking -----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Not a paper figure: measures the timing simulator itself. For each
/// Figure 10 workload (advanced scheme, 8-way machine) the same packed
/// trace is simulated with the reference cycle loop and with the fast
/// path (packed SoA + dense ring + cycle skipping), best-of-N wall
/// time each, and the table reports simulated cycles per second plus
/// the fast/reference speedup. The summary line is the tracked metric:
/// the fast path must stay >= 2x the reference loop (gated only under
/// --strict / FPINT_STRICT=1; wall-clock numbers are inherently
/// machine-dependent, so the regular regression gate never reads
/// them).
///
/// Every point is also recorded through the run caches, so with
/// FPINT_TELEMETRY=1 the bench_out/sim_throughput.json report carries
/// the sim_wall_ms / sim_cycles_per_sec fields of the default
/// (fast-path) simulation.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

#include <chrono>

using namespace fpint;

namespace {

/// Best-of-N wall milliseconds of \p Body (minimum filters scheduler
/// noise better than the mean on a loaded machine).
template <typename F> double bestWallMs(int Reps, F &&Body) {
  double Best = 1e300;
  for (int R = 0; R < Reps; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    Body();
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
    if (Ms < Best)
      Best = Ms;
  }
  return Best;
}

std::string mcps(uint64_t Cycles, double WallMs) {
  if (WallMs <= 0.0)
    return "-";
  return Table::fmt(static_cast<double>(Cycles) / WallMs / 1000.0, 2);
}

} // namespace

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("sim_throughput", argc, argv);
  std::printf("Simulator throughput: fast path vs reference loop "
              "(fig10 workloads, 8-way)\n\n");

  const timing::MachineConfig Machine = timing::MachineConfig::eightWay();
  const int Reps = bench::envInt("FPINT_SIM_REPS", 5);

  std::vector<workloads::Workload> Ws = workloads::intWorkloads();
  Table T({"benchmark", "dyn instrs", "cycles", "ref Mcyc/s", "fast Mcyc/s",
           "speedup"});

  // Totals feed the summary metric; runMatrix evaluates rows on the
  // pool, so guard them.
  std::mutex TotalsMu;
  uint64_t TotalCycles = 0;
  double TotalRefMs = 0, TotalFastMs = 0;

  bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
    bench::RunPtr Run =
        bench::compileWorkload(W, partition::Scheme::Advanced);
    // Record the default simulation in the telemetry report (cached;
    // carries sim_wall_ms / sim_cycles_per_sec in bench_out JSON).
    bench::simulateRun(Run, Machine);

    const timing::PackedTrace &PT = Run->packedTrace();
    timing::Simulator Sim(Machine, Run->Alloc);
    Sim.setSampling({}); // Throughput of the exact simulation only.

    timing::SimStats RefStats, FastStats;
    Sim.setFastPath(false);
    double RefMs = bestWallMs(Reps, [&] { RefStats = Sim.run(PT); });
    Sim.setFastPath(true);
    double FastMs = bestWallMs(Reps, [&] { FastStats = Sim.run(PT); });

    if (RefStats.Cycles != FastStats.Cycles)
      throw bench::CompileError(
          "fast path diverged from reference on " + std::string(W.Name) +
          ": " + std::to_string(RefStats.Cycles) + " vs " +
          std::to_string(FastStats.Cycles) + " cycles");

    {
      std::lock_guard<std::mutex> Lock(TotalsMu);
      TotalCycles += RefStats.Cycles;
      TotalRefMs += RefMs;
      TotalFastMs += FastMs;
    }
    double Speedup = FastMs > 0.0 ? RefMs / FastMs : 0.0;
    return bench::MatrixRows{
        {W.Name, Table::num(RefStats.Instructions),
         Table::num(RefStats.Cycles), mcps(RefStats.Cycles, RefMs),
         mcps(FastStats.Cycles, FastMs), Table::fmt(Speedup, 2) + "x"}};
  });
  T.print();

  double Overall = TotalFastMs > 0.0 ? TotalRefMs / TotalFastMs : 0.0;
  std::printf("\nOverall: %s simulated cycles, reference %s Mcyc/s, "
              "fast %s Mcyc/s, speedup %.2fx (target >= 2x)\n",
              Table::num(TotalCycles).c_str(),
              mcps(TotalCycles, TotalRefMs).c_str(),
              mcps(TotalCycles, TotalFastMs).c_str(), Overall);

  if (Overall < 2.0) {
    std::fprintf(stderr,
                 "[bench] sim_throughput: fast path speedup %.2fx is below "
                 "the 2x target\n",
                 Overall);
    bench::HarnessState::global().addDegraded("sim_throughput speedup < 2x");
  }
  return bench::harnessExit();
}
