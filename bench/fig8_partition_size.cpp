//===- bench/fig8_partition_size.cpp - Reproduces Figure 8 ----------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 8, "Size of the FPa partition": the percentage of total
/// dynamic instructions the compiler offloads to the augmented FP
/// subsystem, per SPECint95 benchmark, for the basic and advanced
/// partitioning schemes. Paper ranges: basic 5-29%, advanced 9-41%;
/// advanced >= basic everywhere, roughly 2x for go and compress, with
/// ijpeg jumping from 10.7% to 32.1% and li barely moving.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

using namespace fpint;

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("fig8_partition_size", argc, argv);
  std::printf("Figure 8: Size of the FPa partition "
              "(%% of dynamic instructions offloaded)\n\n");

  std::vector<workloads::Workload> Ws = workloads::intWorkloads();
  Table T({"benchmark", "basic", "advanced", "adv/basic", "dyn instrs"});
  bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
    bench::RunPtr Basic =
        bench::compileWorkload(W, partition::Scheme::Basic);
    bench::RunPtr Adv =
        bench::compileWorkload(W, partition::Scheme::Advanced);
    double B = Basic->Stats.fpaFraction();
    double A = Adv->Stats.fpaFraction();
    return bench::MatrixRows{{W.Name, Table::pct(B), Table::pct(A),
                              Table::fmt(B > 0 ? A / B : 0.0),
                              Table::num(Adv->Stats.Total)}};
  });
  T.print();
  std::printf("\nPaper: basic 5%%-29%%, advanced 9%%-41%%; advanced ~2x basic "
              "for go/compress;\nijpeg 10.7%% -> 32.1%%; li shows almost no "
              "advanced-over-basic gain.\n");
  return bench::harnessExit();
}
