//===- bench/sec73_load_imbalance.cpp - Section 7.3 load imbalance --------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7.3's explanation for speedups not tracking partition sizes:
/// the greedy partitioner can under-utilize the INT subsystem. The paper
/// measures that for m88ksim the INT subsystem is idle in 12.4% of the
/// cycles in which the FPa subsystem executes at least one instruction.
/// This harness reports that metric (plus subsystem utilization) for
/// every benchmark under the advanced scheme on the 4-way machine.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

using namespace fpint;

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("sec73_load_imbalance", argc, argv);
  std::printf("Section 7.3: INT-idle-while-FPa-busy (advanced, 4-way)\n\n");
  timing::MachineConfig Machine = timing::MachineConfig::fourWay();

  std::vector<workloads::Workload> Ws = workloads::intWorkloads();
  Table T({"benchmark", "int idle | fpa busy", "fpa busy cycles",
           "int issue/cycle", "fp issue/cycle"});
  // The (workloads x schemes x machines) convenience form: the single
  // (Advanced, 4-way) cell is compiled+simulated on the pool, then the
  // row function reads the warmed caches.
  bench::runMatrix(Ws, {partition::Scheme::Advanced}, {Machine}, T,
                   [&](const workloads::Workload &W) {
    bench::RunPtr Adv =
        bench::compileWorkload(W, partition::Scheme::Advanced);
    timing::SimStats S = bench::simulateRun(Adv, Machine);
    return bench::MatrixRows{
        {W.Name, Table::pct(S.intIdleWhileFpBusy()),
         Table::num(S.FpBusyCycles),
         Table::fmt(static_cast<double>(S.IntIssued) /
                    static_cast<double>(S.Cycles)),
         Table::fmt(static_cast<double>(S.FpIssued) /
                    static_cast<double>(S.Cycles))}};
  });
  T.print();
  std::printf("\nPaper: for m88ksim the INT subsystem idles in 12.4%% of "
              "FPa-busy cycles,\npartly explaining why its speedup trails "
              "its partition size.\n");
  return bench::harnessExit();
}
