//===- bench/sec4_slice_profile.cpp - Section 4 slice accounting ----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4 motivates the greedy partitioning goal with a slice
/// census: "the LdSt slices of integer programs account for close to
/// 50% of all dynamic instructions executed. This puts an upper bound
/// on the size of the FPa partition." This harness reproduces that
/// census: for each benchmark it weighs every RDG node by its block's
/// execution count and classifies the dynamic instruction stream into
///
///   ldst slice      -- feeds a load/store address (pinned to INT),
///   memory ops      -- the loads/stores themselves (INT's LSU),
///   call/ret pinned -- calling-convention-pinned work,
///   unsupported     -- multiply/divide and other non-FPa opcodes,
///   offloadable     -- everything else (branch and store-value slices),
///
/// and prints the implied upper bound next to what the advanced scheme
/// actually achieves.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/CFG.h"
#include "analysis/RDG.h"
#include "partition/Assignment.h"
#include "support/Table.h"
#include "vm/VM.h"

#include <unordered_set>

using namespace fpint;

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("sec4_slice_profile", argc, argv);
  std::printf("Section 4: dynamic slice census and the FPa upper bound\n\n");

  Table T({"benchmark", "ldst slice", "mem ops", "call/ret", "unsupported",
           "offloadable bound", "advanced achieves"});

  std::vector<workloads::Workload> Ws = workloads::intWorkloads();
  bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
    // The census renumber()s functions before building RDGs; analyze a
    // private clone so the shared workload module is never mutated and
    // the rows can run concurrently with the other matrix tasks.
    std::unique_ptr<sir::Module> M = W.M->clone();
    M->renumber();

    // Profile the original (unpartitioned) program on the ref input.
    vm::VM::Options Opts;
    Opts.CollectProfile = true;
    vm::VM Machine(*M, Opts);
    auto R = Machine.run(W.RefArgs);
    if (!R.Ok)
      throw bench::CompileError("ref run failed for " + W.Name);

    double Total = 0, LdSt = 0, MemOps = 0, CallRet = 0, Unsupported = 0;
    for (const auto &F : M->functions()) {
      analysis::CFG Cfg(*F);
      analysis::RDG G(*F, Cfg);
      std::vector<bool> Slice = G.ldstSlice();

      // Classify each *instruction* once (not per split node).
      F->forEachInstr([&](const sir::Instruction &I) {
        double N = static_cast<double>(
            Machine.profile().countOf(I.parent()));
        if (N == 0)
          return;
        Total += N;
        if (I.isLoad() || I.isStore()) {
          MemOps += N;
          return;
        }
        if (I.op() == sir::Opcode::Call || I.op() == sir::Opcode::Ret ||
            I.op() == sir::Opcode::Jump) {
          CallRet += N;
          return;
        }
        unsigned Node = G.primaryNode(I);
        if (Node != ~0u && Slice[Node]) {
          LdSt += N;
          return;
        }
        if (!sir::fpaSupports(I.op()) && I.op() != sir::Opcode::Out) {
          Unsupported += N;
          return;
        }
      });
    }
    double Bound = 1.0 - (LdSt + MemOps + CallRet + Unsupported) / Total;

    bench::RunPtr Adv =
        bench::compileWorkload(W, partition::Scheme::Advanced);
    return bench::MatrixRows{
        {W.Name, Table::pct(LdSt / Total), Table::pct(MemOps / Total),
         Table::pct(CallRet / Total), Table::pct(Unsupported / Total),
         Table::pct(Bound), Table::pct(Adv->Stats.fpaFraction())}};
  });
  T.print();
  std::printf(
      "\nPaper (citing Palacharla & Smith): LdSt slices plus the memory "
      "operations\nthemselves approach ~50%% of dynamic instructions, "
      "bounding the FPa partition;\ncalling conventions and communication "
      "costs reduce achievable offload further.\n");
  return bench::harnessExit();
}
