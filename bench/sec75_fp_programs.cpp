//===- bench/sec75_fp_programs.cpp - Section 7.5 FP programs --------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7.5: applying the partitioning schemes to floating-point
/// programs. The paper found negligible change for all but one
/// benchmark, because FP programs' store-value and branch slices are
/// largely already floating point; the exception, ear (SPEC92), had 18%
/// of its instructions offloaded -- integer branch and store-value
/// slices -- for an 18% speedup on the 4-way machine.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

using namespace fpint;

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("sec75_fp_programs", argc, argv);
  std::printf("Section 7.5: Partitioning floating-point programs "
              "(advanced, 4-way)\n\n");
  timing::MachineConfig Machine = timing::MachineConfig::fourWay();
  timing::MachineConfig Conventional = Machine;
  Conventional.FpaEnabled = false;

  std::vector<workloads::Workload> Ws = workloads::fpWorkloads();
  Table T({"benchmark", "int offloaded", "native fp", "speedup",
           "conv cycles"});
  bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
    bench::RunPtr Conv =
        bench::compileWorkload(W, partition::Scheme::None);
    bench::RunPtr Adv =
        bench::compileWorkload(W, partition::Scheme::Advanced);
    timing::SimStats ConvStats = bench::simulateRun(Conv, Conventional);
    timing::SimStats AdvStats = bench::simulateRun(Adv, Machine);
    double NativeFp = static_cast<double>(Adv->Stats.NativeFp) /
                      static_cast<double>(Adv->Stats.Total);
    return bench::MatrixRows{
        {W.Name, Table::pct(Adv->Stats.fpaFraction()),
         Table::pct(NativeFp),
         Table::pct(core::speedup(ConvStats, AdvStats) - 1.0),
         Table::num(ConvStats.Cycles)}};
  });
  T.print();
  std::printf("\nPaper: negligible change for FP programs except ear: 18%% "
              "of its (integer\nbranch/store-value) computation offloaded, "
              "18%% speedup; no slowdowns observed.\n");
  return bench::harnessExit();
}
