//===- bench/fig10_speedup_8way.cpp - Reproduces Figure 10 ----------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 10, "Speedups on an 8-way machine": as Figure 9 but on the
/// Table 1 8-way (4 INT + 4 FP) configuration. The paper's point: the
/// improvements shrink because 4-wide INT issue already covers most of
/// the programs' parallelism; only high-ILP programs (m88ksim) retain a
/// sizable win.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

using namespace fpint;

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("fig10_speedup_8way", argc, argv);
  std::printf("Figure 10: Speedups over a conventional 8-way machine\n\n");
  timing::MachineConfig Machine = timing::MachineConfig::eightWay();
  timing::MachineConfig Conventional = Machine;
  Conventional.FpaEnabled = false;

  timing::MachineConfig FourWay = timing::MachineConfig::fourWay();
  timing::MachineConfig FourWayConv = FourWay;
  FourWayConv.FpaEnabled = false;

  std::vector<workloads::Workload> Ws = workloads::intWorkloads();
  Table T({"benchmark", "basic", "advanced", "advanced (4-way)",
           "8way/4way conv"});
  bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
    bench::RunPtr Conv =
        bench::compileWorkload(W, partition::Scheme::None);
    bench::RunPtr Basic =
        bench::compileWorkload(W, partition::Scheme::Basic);
    bench::RunPtr Adv =
        bench::compileWorkload(W, partition::Scheme::Advanced);

    timing::SimStats Conv8 = bench::simulateRun(Conv, Conventional);
    timing::SimStats Basic8 = bench::simulateRun(Basic, Machine);
    timing::SimStats Adv8 = bench::simulateRun(Adv, Machine);
    timing::SimStats Conv4 = bench::simulateRun(Conv, FourWayConv);
    timing::SimStats Adv4 = bench::simulateRun(Adv, FourWay);

    return bench::MatrixRows{
        {W.Name, Table::pct(core::speedup(Conv8, Basic8) - 1.0),
         Table::pct(core::speedup(Conv8, Adv8) - 1.0),
         Table::pct(core::speedup(Conv4, Adv4) - 1.0),
         Table::fmt(static_cast<double>(Conv4.Cycles) /
                    static_cast<double>(Conv8.Cycles))}};
  });
  T.print();
  std::printf("\nPaper: 8-way improvements are much smaller than 4-way "
              "because INT issue width\nalready covers the available "
              "parallelism; only high-ILP programs keep a win.\n");
  return bench::harnessExit();
}
