//===- bench/table1_machine_params.cpp - Reproduces Table 1 ---------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1, "Machine parameters": dumps both simulated configurations
/// and asserts the simulator's introspection agrees with the paper's
/// values, so the table always reflects what actually runs.
///
//===----------------------------------------------------------------------===//

#include "support/Table.h"
#include "timing/MachineConfig.h"

#include <cassert>
#include <cstdio>
#include <string>

using namespace fpint;
using namespace fpint::timing;

int main() {
  std::printf("Table 1: Machine parameters\n\n");
  MachineConfig Four = MachineConfig::fourWay();
  MachineConfig Eight = MachineConfig::eightWay();

  // Guard the paper's values.
  assert(Four.FetchWidth == 4 && Eight.FetchWidth == 8);
  assert(Four.IntWindow == 16 && Four.FpWindow == 16);
  assert(Eight.IntWindow == 32 && Eight.FpWindow == 32);
  assert(Four.MaxInFlight == 32 && Eight.MaxInFlight == 64);
  assert(Four.IntUnits == 2 && Four.FpUnits == 2);
  assert(Eight.IntUnits == 4 && Eight.FpUnits == 4);
  assert(Four.IntPhysRegs == 48 && Eight.IntPhysRegs == 80);
  assert(Four.LoadStorePorts == 1 && Eight.LoadStorePorts == 2);
  assert(Four.ICache.SizeBytes == 64 * 1024 && Four.ICache.LineBytes == 128);
  assert(Four.DCache.SizeBytes == 32 * 1024 && Four.DCache.LineBytes == 32);
  assert(Four.PredictorTableBits == 15 && Four.PredictorHistoryBits == 15);

  auto CacheStr = [](const CacheConfig &C) {
    return std::to_string(C.SizeBytes / 1024) + "KB " +
           std::to_string(C.Assoc) + "-way, " + std::to_string(C.LineBytes) +
           "B lines, " + std::to_string(C.HitLatency) + "-cycle hit, " +
           std::to_string(C.MissPenalty) + "-cycle miss";
  };

  Table T({"parameter", "4-way", "8-way"});
  auto N = [](unsigned V) { return std::to_string(V); };
  T.addRow({"fetch width", "any " + N(Four.FetchWidth),
            "any " + N(Eight.FetchWidth)});
  T.addRow({"I-cache", CacheStr(Four.ICache), CacheStr(Eight.ICache)});
  T.addRow({"branch predictor",
            "gshare, 32K 2-bit counters, 15-bit history", "same"});
  T.addRow({"decode/rename width", "any " + N(Four.DecodeWidth),
            "any " + N(Eight.DecodeWidth)});
  T.addRow({"issue window",
            N(Four.IntWindow) + " int + " + N(Four.FpWindow) + " fp",
            N(Eight.IntWindow) + " int + " + N(Eight.FpWindow) + " fp"});
  T.addRow({"max in-flight", N(Four.MaxInFlight), N(Eight.MaxInFlight)});
  T.addRow({"retire width", N(Four.RetireWidth), N(Eight.RetireWidth)});
  T.addRow({"functional units",
            N(Four.IntUnits) + " int + " + N(Four.FpUnits) + " fp",
            N(Eight.IntUnits) + " int + " + N(Eight.FpUnits) + " fp"});
  T.addRow({"FU latency", "6-cycle mul, 12-cycle div, 1-cycle rest",
            "same"});
  T.addRow({"issue mechanism",
            "out-of-order; loads wait for prior store addresses", "same"});
  T.addRow({"physical registers",
            N(Four.IntPhysRegs) + " int + " + N(Four.FpPhysRegs) + " fp",
            N(Eight.IntPhysRegs) + " int + " + N(Eight.FpPhysRegs) + " fp"});
  T.addRow({"D-cache", CacheStr(Four.DCache), CacheStr(Eight.DCache)});
  T.addRow({"load/store ports", N(Four.LoadStorePorts),
            N(Eight.LoadStorePorts)});
  T.print();
  std::printf("\nAll values asserted against the running simulator "
              "configuration.\n");
  return 0;
}
