//===- bench/sec66_load_balance.cpp - Section 6.6 load-balance ablation ---===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.6: "Both the partitioning algorithms presented earlier
/// greedily assign as much computation as possible to FPa without
/// considering whether this would underutilize the INT unit. ... the
/// algorithms could be improved to consider load balance." This harness
/// evaluates that proposed improvement: the advanced scheme with an FPa
/// share cap (CostParams::FpaShareCap) against the paper's greedy
/// default, reporting offload, INT-idle-while-FPa-busy, and 4-way
/// speedup for the benchmarks where the imbalance shows up most.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

using namespace fpint;

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("sec66_load_balance", argc, argv);
  std::printf("Section 6.6 ablation: greedy vs load-balanced advanced "
              "partitioning (4-way)\n\n");
  timing::MachineConfig Machine = timing::MachineConfig::fourWay();
  timing::MachineConfig Conventional = Machine;
  Conventional.FpaEnabled = false;

  const double Caps[] = {1.0, 0.40, 0.25};
  std::vector<workloads::Workload> Ws = workloads::intWorkloads();
  Table T({"benchmark", "cap", "offload", "int idle|fpa busy", "speedup"});
  bench::runMatrix(Ws, T, [&](const workloads::Workload &W) {
    bench::RunPtr Conv =
        bench::compileWorkload(W, partition::Scheme::None);
    timing::SimStats ConvStats = bench::simulateRun(Conv, Conventional);
    bench::MatrixRows Rows;
    for (double Cap : Caps) {
      partition::CostParams P;
      P.FpaShareCap = Cap;
      bench::RunPtr Adv =
          bench::compileWorkload(W, partition::Scheme::Advanced, P);
      timing::SimStats S = bench::simulateRun(Adv, Machine);
      Rows.push_back({Cap == 1.0 ? W.Name : "",
                      Cap == 1.0 ? "greedy" : Table::fmt(Cap, 2),
                      Table::pct(Adv->Stats.fpaFraction()),
                      Table::pct(S.intIdleWhileFpBusy()),
                      Table::pct(core::speedup(ConvStats, S) - 1.0)});
    }
    return Rows;
  });
  T.print();
  std::printf("\nThe cap trades offload for balance; where greedy "
              "partitioning left INT idle\n(compress/ijpeg here), a "
              "moderate cap recovers balance at little speedup cost.\n");
  return bench::harnessExit();
}
