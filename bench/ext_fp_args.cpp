//===- bench/ext_fp_args.cpp - Section 6.6 FP-argument-passing ablation ---===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's final Section 6.6 suggestion, evaluated: interprocedural
/// FP-register argument passing on top of the advanced scheme. For each
/// integer benchmark we compare copy traffic and 4-way speedup with the
/// extension off and on, plus a distilled call-intensive kernel where
/// the conversion fires on every hot call.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "sir/Parser.h"
#include "support/Table.h"

using namespace fpint;

namespace {

// A distilled hot-call kernel: an offloaded hash chain feeds a callee
// that consumes the argument in FPa too.
const char *HotCallKernel = R"(
global data 64
global acc 1

func fold(%v) {
entry:
  sll %a, %v, 1
  xor %b, %a, %v
  andi %c, %b, 4095
  sll %d, %c, 2
  sub %e, %d, %c
  xor %f, %e, %b
  lw %t, acc
  add %t2, %t, %f
  sw %t2, acc
  ret
}

func main(%n) {
entry:
  li %i, 0
loop:
  andi %ix, %i, 63
  sll %off, %ix, 2
  la %p, data
  add %ea, %p, %off
  lw %x, 0(%ea)
  sll %h1, %x, 3
  sub %h2, %h1, %x
  xor %h3, %h2, %i0
  addi %h4, %h3, 11
  sll %h5, %h4, 1
  xor %h6, %h5, %h4
  call fold(%h6)
  addi %i, %i, 1
  slt %t, %i, %n
  bne %t, %zero, loop
  lw %r, acc
  out %r
  ret
}
)";

} // namespace

namespace {

struct Item {
  std::string Name;
  const sir::Module *M = nullptr;
  std::vector<int32_t> Train, Ref;
};

} // namespace

int main(int argc, char **argv) {
  bench::ScopedBenchReport Report("ext_fp_args", argc, argv);
  std::printf("Section 6.6 extension: passing integer arguments in FP "
              "registers (advanced, 4-way)\n\n");
  timing::MachineConfig Machine = timing::MachineConfig::fourWay();
  timing::MachineConfig Conventional = Machine;
  Conventional.FpaEnabled = false;

  sir::ParseResult PR = sir::parseModule(HotCallKernel);
  if (!PR.ok())
    std::abort();
  std::vector<workloads::Workload> Ws = workloads::intWorkloads();

  std::vector<Item> Items;
  Items.push_back({"hot-call kernel", PR.M.get(), {200}, {4000}});
  for (const workloads::Workload &W : Ws)
    Items.push_back({W.Name, W.M.get(), W.TrainArgs, W.RefArgs});

  Table T({"benchmark", "slots converted", "copies off->on",
           "copy-backs off->on", "dyn instrs off->on", "speedup off",
           "speedup on"});
  bench::runMatrix(Items, T, [&](const Item &It) {
    core::PipelineConfig Base;
    Base.Scheme = partition::Scheme::None;
    Base.TrainArgs = It.Train;
    Base.RefArgs = It.Ref;
    bench::RunPtr Conv = bench::compileModule(*It.M, It.Name, Base);
    uint64_t ConvCycles = bench::simulateRun(Conv, Conventional).Cycles;

    core::PipelineConfig Off = Base;
    Off.Scheme = partition::Scheme::Advanced;
    bench::RunPtr OffRun = bench::compileModule(*It.M, It.Name, Off);
    core::PipelineConfig On = Off;
    On.EnableFpArgPassing = true;
    bench::RunPtr OnRun = bench::compileModule(*It.M, It.Name, On);

    timing::SimStats SOff = bench::simulateRun(OffRun, Machine);
    timing::SimStats SOn = bench::simulateRun(OnRun, Machine);
    return bench::MatrixRows{
        {It.Name, Table::num(OnRun->FpArgs.ArgsConverted),
         Table::num(OffRun->Stats.Copies) + " -> " +
             Table::num(OnRun->Stats.Copies),
         Table::num(OffRun->Stats.CopyBacks) + " -> " +
             Table::num(OnRun->Stats.CopyBacks),
         Table::num(OffRun->Stats.Total) + " -> " +
             Table::num(OnRun->Stats.Total),
         Table::pct(static_cast<double>(ConvCycles) / SOff.Cycles - 1.0),
         Table::pct(static_cast<double>(ConvCycles) / SOn.Cycles - 1.0)}};
  });
  T.print();
  std::printf("\nThe paper proposes this as future work; where argument "
              "values are computed and\nconsumed in FPa (the kernel), "
              "conversion deletes a cp_to_int + cp_to_fp round\ntrip per "
              "call. On this simulator the removed copies were latency-"
              "hidden, so the\nwin is instruction count/energy rather "
              "than cycles -- consistent with the paper\ncalling the "
              "copy overheads small to begin with.\n");
  return bench::harnessExit();
}
