//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build a small integer program with the IRBuilder, run the
/// full offload pipeline (profile -> advanced partition -> register
/// allocation -> equivalence check), and print the partitioned assembly
/// plus the paper's headline metrics. Instructions suffixed ",a" execute
/// in the augmented floating-point subsystem.
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sir/IRBuilder.h"
#include "sir/Printer.h"
#include "timing/Simulator.h"

#include <cstdio>

using namespace fpint;
using namespace fpint::sir;

int main() {
  // A program that sums squares-of-differences over a table: address
  // arithmetic stays in the INT subsystem, value chains can offload.
  Module M;
  M.addGlobal("table", 64);

  Function *F = M.addFunction("main");
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Fill = F->addBlock("fill");
  BasicBlock *Loop = F->addBlock("loop");
  BasicBlock *Done = F->addBlock("done");

  IRBuilder B(Entry);
  Reg I = F->newReg();
  Reg Zero = F->newReg(); // Never written: reads as 0.
  B.liInto(I, 0);
  Reg N = B.li(64);
  Reg Base = B.la("table");

  // fill: table[i] = i * 2 + 3
  B.setInsertPoint(Fill);
  Reg V = B.addi(B.sll(I, 1), 3);
  Reg Off = B.sll(I, 2);
  Reg Ea = B.add(Base, Off);
  B.sw(V, MemOperand::reg(Ea));
  Reg I1 = B.addi(I, 1);
  B.moveInto(I, I1);
  B.bne(B.slt(I, N), Zero, Fill);

  // loop: acc ^= (table[i] << 1) - table[i]; the chain from the loaded
  // value feeds only the accumulator -> offloadable.
  B.setInsertPoint(Loop);
  Reg Acc = F->newReg();
  Reg J = F->newReg();
  // (Acc and J were zero-initialized registers; set J explicitly.)
  Reg Off2 = B.sll(J, 2);
  Reg Ea2 = B.add(Base, Off2);
  Reg Val = B.lw(MemOperand::reg(Ea2));
  Reg Twice = B.sll(Val, 1);
  Reg Diff = B.sub(Twice, Val);
  Reg Acc2 = B.xor_(Acc, Diff);
  B.moveInto(Acc, Acc2);
  Reg J1 = B.addi(J, 1);
  B.moveInto(J, J1);
  B.bne(B.slt(J, N), Zero, Loop);

  B.setInsertPoint(Done);
  B.out(Acc);
  B.ret();
  M.renumber();

  // Run the paper's pipeline.
  core::PipelineConfig Cfg;
  Cfg.Scheme = partition::Scheme::Advanced;
  core::PipelineRun Run = core::compileAndMeasure(M, Cfg);
  if (!Run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 Run.Errors.empty() ? "output mismatch"
                                    : Run.Errors[0].c_str());
    return 1;
  }

  std::printf("=== partitioned + register-allocated program ===\n%s\n",
              toString(*Run.Compiled).c_str());
  std::printf("dynamic instructions:       %llu\n",
              static_cast<unsigned long long>(Run.Stats.Total));
  std::printf("offloaded to FPa:           %.1f%%\n",
              100.0 * Run.Stats.fpaFraction());
  std::printf("copy/duplicate overhead:    %.2f%%\n",
              100.0 * (Run.Stats.copyFraction() + Run.Stats.dupFraction()));
  std::printf("outputs match the original: %s\n",
              Run.OutputsMatchOriginal ? "yes" : "NO");

  // And the cycle-level payoff on the paper's 4-way machine.
  timing::MachineConfig Machine = timing::MachineConfig::fourWay();
  timing::MachineConfig Conventional = Machine;
  Conventional.FpaEnabled = false;
  core::PipelineConfig ConvCfg = Cfg;
  ConvCfg.Scheme = partition::Scheme::None;
  core::PipelineRun ConvRun = core::compileAndMeasure(M, ConvCfg);
  timing::SimStats ConvStats = core::simulate(ConvRun, Conventional);
  timing::SimStats AdvStats = core::simulate(Run, Machine);
  std::printf("conventional 4-way cycles:  %llu\n",
              static_cast<unsigned long long>(ConvStats.Cycles));
  std::printf("augmented 4-way cycles:     %llu  (speedup %.1f%%)\n",
              static_cast<unsigned long long>(AdvStats.Cycles),
              100.0 * (core::speedup(ConvStats, AdvStats) - 1.0));
  return 0;
}
