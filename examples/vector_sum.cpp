//===- examples/vector_sum.cpp - The paper's Figure 2 example -------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper opens with a vector sum (Figure 2): for floating-point
/// data, the loads, the add, and the store already use the FP subsystem;
/// for integer data the FP subsystem idles -- unless the compiler
/// offloads the add. This example shows both variants side by side: the
/// integer vector sum before and after basic partitioning, with the
/// loads/stores switching to their l.s/s.s forms and the add gaining
/// the ",a" suffix, exactly as in the paper's narrative.
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sir/Parser.h"
#include "sir/Printer.h"

#include <cstdio>

using namespace fpint;

namespace {

const char *IntSum = R"(
global a 64
global b 64
global c 64

func main() {
entry:
  li %i, 0
  li %n, 64
  la %pa, a
  la %pb, b
  la %pc, c
seed:
  sll %off0, %i, 2
  add %ea0, %pa, %off0
  sw %i, 0(%ea0)
  sll %tw, %i, 1
  add %eb0, %pb, %off0
  sw %tw, 0(%eb0)
  addi %i, %i, 1
  slt %t0, %i, %n
  bne %t0, %zero, seed
  li %j, 0
loop:
  sll %off, %j, 2
  add %ea, %pa, %off
  lw %va, 0(%ea)
  add %eb, %pb, %off
  lw %vb, 0(%eb)
  add %vc, %va, %vb
  add %ec, %pc, %off
  sw %vc, 0(%ec)
  addi %j, %j, 1
  slt %t, %j, %n
  bne %t, %zero, loop
  lw %chk, c+84
  out %chk
  ret
}
)";

} // namespace

int main() {
  sir::ParseResult PR = sir::parseModule(IntSum);
  if (!PR.ok()) {
    std::fprintf(stderr, "parse error: %s\n", PR.Error.c_str());
    return 1;
  }

  std::printf("=== integer vector sum, conventional code ===\n%s\n",
              sir::toString(*PR.M).c_str());

  core::PipelineConfig Cfg;
  Cfg.Scheme = partition::Scheme::Basic;
  Cfg.RunRegisterAllocation = false; // Keep virtual registers readable.
  core::PipelineRun Run = core::compileAndMeasure(*PR.M, Cfg);
  if (!Run.ok()) {
    std::fprintf(stderr, "pipeline failed\n");
    return 1;
  }

  std::printf("=== after basic partitioning (no extra instructions) ===\n"
              "%s\n",
              sir::toString(*Run.Compiled).c_str());
  std::printf("The c[i] = a[i] + b[i] add now executes in the FP subsystem "
              "(add,a), its\ninputs arrive via l.s loads and its result "
              "leaves via an s.s store -- the\npaper's Figure 2 "
              "transformation. %.1f%% of dynamic instructions offloaded;\n"
              "outputs match: %s.\n",
              100.0 * Run.Stats.fpaFraction(),
              Run.OutputsMatchOriginal ? "yes" : "NO");
  return 0;
}
