//===- examples/pipeline_speedup.cpp - End-to-end workload walkthrough ----===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end walkthrough for one benchmark (default: m88ksim, the
/// paper's best case; pass another Table 2 name as argv[1]): compile
/// under all three schemes, simulate on both Table 1 machines, and
/// print the full measurement record -- offload percentages, overheads,
/// cycle counts, IPCs, branch/cache statistics, and speedups.
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>

using namespace fpint;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "m88ksim";
  workloads::Workload W = workloads::workloadByName(Name);
  std::printf("workload: %s -- %s\ninput: %s\n\n", W.Name.c_str(),
              W.Description.c_str(), W.Input.c_str());

  timing::MachineConfig Four = timing::MachineConfig::fourWay();
  timing::MachineConfig Eight = timing::MachineConfig::eightWay();
  timing::MachineConfig FourConv = Four;
  FourConv.FpaEnabled = false;
  timing::MachineConfig EightConv = Eight;
  EightConv.FpaEnabled = false;

  Table T({"scheme", "offload", "ovh", "4-way cycles", "4-way IPC",
           "8-way cycles", "br acc", "dcache miss"});

  uint64_t Conv4 = 0, Conv8 = 0;
  for (partition::Scheme S :
       {partition::Scheme::None, partition::Scheme::Basic,
        partition::Scheme::Advanced}) {
    core::PipelineConfig Cfg;
    Cfg.Scheme = S;
    Cfg.TrainArgs = W.TrainArgs;
    Cfg.RefArgs = W.RefArgs;
    core::PipelineRun Run = core::compileAndMeasure(*W.M, Cfg);
    if (!Run.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   Run.Errors.empty() ? "output mismatch"
                                      : Run.Errors[0].c_str());
      return 1;
    }
    bool Conventional = S == partition::Scheme::None;
    timing::SimStats S4 =
        core::simulate(Run, Conventional ? FourConv : Four);
    timing::SimStats S8 =
        core::simulate(Run, Conventional ? EightConv : Eight);
    if (Conventional) {
      Conv4 = S4.Cycles;
      Conv8 = S8.Cycles;
    }
    double DMiss = S4.Loads ? static_cast<double>(S4.DCacheMisses) /
                                  static_cast<double>(S4.Loads)
                            : 0.0;
    T.addRow({partition::schemeName(S), Table::pct(Run.Stats.fpaFraction()),
              Table::pct(Run.Stats.copyFraction() + Run.Stats.dupFraction()),
              Table::num(S4.Cycles), Table::fmt(S4.ipc()),
              Table::num(S8.Cycles), Table::pct(S4.branchAccuracy()),
              Table::pct(DMiss)});
    if (!Conventional) {
      std::printf("%s speedup: %.1f%% (4-way), %.1f%% (8-way)\n",
                  partition::schemeName(S),
                  100.0 * (static_cast<double>(Conv4) / S4.Cycles - 1.0),
                  100.0 * (static_cast<double>(Conv8) / S8.Cycles - 1.0));
    }
  }
  std::printf("\n");
  T.print();
  return 0;
}
