//===- examples/invalidate_regs.cpp - The paper's Figures 3-6 example -----===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example: invalidate_for_call from gcc (Figure 3),
/// partitioned three ways:
///
///  * basic scheme (Figure 4): only the reg_tick increment component
///    moves; the branch slices through regno stay INT because regno
///    also feeds addresses;
///  * advanced scheme (Figures 5/6): copies or duplicates of the regno
///    chain free the branch slices to execute in FPa.
///
/// The example prints all three variants and the offload statistics so
/// the reader can line them up against the paper's figures.
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sir/Parser.h"
#include "sir/Printer.h"

#include <cstdio>

using namespace fpint;

namespace {

// The Figure 3 program (same fixture the test suite uses).
const char *InvalidateForCall = R"(
global regs_invalidated_by_call 1 = 151065093
global reg_tick 66 = -3 5 0 -1 2 9 -2 4 1 0 7 -5 3 3 -9 2
global deleted_count 1

func delete_equiv_reg(%regno) {
entry:
  lw %c, deleted_count
  addi %c1, %c, 1
  sw %c1, deleted_count
  ret
}

func main() {
entry:
  li %regno, 0                              # I1
loop:
  lw %mask, regs_invalidated_by_call        # I2
  srav %bit, %mask, %regno                  # I3
  andi %b1, %bit, 1                         # I4
  beq %b1, %zero, skip                      # I5
  move %arg, %regno                         # I6
  call delete_equiv_reg(%arg)               # I7
  la %base, reg_tick                        # I8
  sll %idx, %regno, 2                       # I9
  add %ea, %base, %idx                      # I10
  lw %tick, 0(%ea)                          # I11
  bltz %tick, skip                          # I12
  addi %tick1, %tick, 1                     # I13
  sw %tick1, 0(%ea)                         # I14
skip:
  addi %regno, %regno, 1                    # I15
  slti %t, %regno, 66                       # I16
  bne %t, %zero, loop                       # I17
  lw %dc, deleted_count
  out %dc
  ret
}
)";

void show(const char *Title, partition::Scheme S) {
  sir::ParseResult PR = sir::parseModule(InvalidateForCall);
  if (!PR.ok()) {
    std::fprintf(stderr, "parse error: %s\n", PR.Error.c_str());
    std::exit(1);
  }
  core::PipelineConfig Cfg;
  Cfg.Scheme = S;
  Cfg.RunRegisterAllocation = false; // Keep the listing close to Fig 4-6.
  core::PipelineRun Run = core::compileAndMeasure(*PR.M, Cfg);
  if (!Run.ok()) {
    std::fprintf(stderr, "pipeline failed for %s\n",
                 partition::schemeName(S));
    std::exit(1);
  }
  std::printf("=== %s ===\n%s", Title,
              sir::toString(*Run.Compiled->functionByName("main")).c_str());
  std::printf("offloaded: %.1f%% of dynamic instructions; copies+dups "
              "inserted: %u; outputs match: %s\n\n",
              100.0 * Run.Stats.fpaFraction(),
              Run.Rewrite.StaticCopies + Run.Rewrite.StaticDups +
                  Run.Rewrite.StaticCopyBacks,
              Run.OutputsMatchOriginal ? "yes" : "NO");
}

} // namespace

int main() {
  show("Figure 3: conventional code", partition::Scheme::None);
  show("Figure 4: basic partitioning (reg_tick component only)",
       partition::Scheme::Basic);
  show("Figures 5/6: advanced partitioning (regno duplicated/copied)",
       partition::Scheme::Advanced);
  return 0;
}
