//===- tools/fpint-loadgen.cpp - fpint-serve load generator ---------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a deterministic mixed hit/miss request schedule against a
/// running fpint-serve daemon over N concurrent client connections and
/// reports throughput, latency percentiles, and cache hit rates into
/// bench_out/serve_load.json (fpint-bench-report-v1, "serve" object --
/// informational-only in the fpint-report gate).
///
///   fpint-loadgen --socket PATH [options]
///
///     --requests N      total requests (default 2000)
///     --clients N       concurrent connections (default 8)
///     --seed S          schedule seed (default 1); the schedule is a
///                       pure function of (seed, requests, distinct,
///                       unique-frac), so re-running with the same
///                       values replays byte-identical requests -- the
///                       warm-cache rerun the CI smoke test relies on
///     --distinct N      size of the shared request pool (default 24)
///     --unique-frac F   fraction of requests with a once-only module
///                       (cold-cache misses; default 0.25)
///     --dump-bodies F   write every response body, in request order,
///                       to F (cold vs warm runs must be identical)
///     --min-hit-rate F  exit 1 unless (mem+disk hits)/requests >= F
///     --out DIR         report directory (default bench_out)
///     --wait-ms MS      retry window for the daemon socket to appear
///                       (default 5000)
///
/// Exit status: 0 ok, 1 transport failure or hit rate below the
/// floor, 2 usage.
///
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "serve/Server.h"
#include "stats/Report.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace fpint;

namespace {

struct Options {
  std::string SocketPath;
  unsigned Requests = 2000;
  unsigned Clients = 8;
  uint64_t Seed = 1;
  unsigned Distinct = 24;
  double UniqueFrac = 0.25;
  std::string DumpBodies;
  double MinHitRate = -1.0;
  std::string OutDir = "bench_out";
  int WaitMs = 5000;
};

/// splitmix64: the schedule must be identical across runs and hosts,
/// so no std:: engine (implementation-defined sequences).
uint64_t nextRand(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// A small integer vector-sum kernel whose content address varies with
/// \p Variant via a global initializer (arbitrary 31-bit values are
/// legal there, unlike immediates).
std::string makeModule(uint64_t Variant) {
  int32_t K = static_cast<int32_t>(Variant & 0x7fffffff);
  std::string S;
  S += "global a 8 = 3 1 4 1 5 9 2 6\n";
  S += "global b 8 = 2 7 1 8 2 8 1 8\n";
  S += "global k 1 = " + std::to_string(K) + "\n";
  S += "global c 8\n\n";
  S += "func main() {\n";
  S += "entry:\n";
  S += "  li %i, 0\n";
  S += "  li %n, 8\n";
  S += "  la %pa, a\n";
  S += "  la %pb, b\n";
  S += "  la %pk, k\n";
  S += "  la %pc, c\n";
  S += "  lw %vk, 0(%pk)\n";
  S += "loop:\n";
  S += "  sll %off, %i, 2\n";
  S += "  add %ea, %pa, %off\n";
  S += "  lw %va, 0(%ea)\n";
  S += "  add %eb, %pb, %off\n";
  S += "  lw %vb, 0(%eb)\n";
  S += "  add %vc, %va, %vb\n";
  S += "  add %vs, %vc, %vk\n";
  S += "  add %ec, %pc, %off\n";
  S += "  sw %vs, 0(%ec)\n";
  S += "  addi %i, %i, 1\n";
  S += "  slt %t, %i, %n\n";
  S += "  bne %t, %zero, loop\n";
  S += "  li %j, 0\n";
  S += "check:\n";
  S += "  sll %joff, %j, 2\n";
  S += "  add %ej, %pc, %joff\n";
  S += "  lw %vj, 0(%ej)\n";
  S += "  out %vj\n";
  S += "  addi %j, %j, 1\n";
  S += "  slt %t2, %j, %n\n";
  S += "  bne %t2, %zero, check\n";
  S += "  ret\n";
  S += "}\n";
  return S;
}

std::string makeRequest(uint64_t Variant, unsigned Point) {
  static const char *Schemes[] = {"none", "basic", "advanced"};
  static const char *Bases[] = {"4-way", "8-way"};
  json::Value Pipeline = json::Value::object();
  Pipeline.set("scheme", Schemes[Point % 3]);
  json::Value Machine = json::Value::object();
  Machine.set("base", Bases[(Point / 3) % 2]);
  json::Value Doc = json::Value::object();
  Doc.set("op", "compile");
  Doc.set("module", makeModule(Variant));
  Doc.set("pipeline", std::move(Pipeline));
  Doc.set("machine", std::move(Machine));
  Doc.set("simulate", true);
  return Doc.dump();
}

struct Result {
  double LatencyMs = 0;
  std::string Tier; ///< "memory" | "disk" | "none"; "" on transport loss.
  std::string Body;
  bool Ok = false; ///< body.status == "ok".
};

/// One client connection working its r = Tid, Tid+C, Tid+2C, ...
/// slice of the schedule in order.
void runClient(const Options &Opts, const std::vector<std::string> &Schedule,
               unsigned Tid, std::vector<Result> &Results,
               std::atomic<unsigned> &TransportErrors) {
  std::string Err;
  int Fd = serve::connectUnix(Opts.SocketPath, Err);
  if (Fd < 0) {
    std::fprintf(stderr, "fpint-loadgen: client %u: %s\n", Tid, Err.c_str());
    TransportErrors.fetch_add(1);
    return;
  }
  for (size_t R = Tid; R < Schedule.size(); R += Opts.Clients) {
    auto T0 = std::chrono::steady_clock::now();
    std::string RespText;
    if (!serve::writeFrame(Fd, Schedule[R]) ||
        serve::readFrame(Fd, 64u << 20, RespText) != serve::FrameStatus::Ok) {
      std::fprintf(stderr,
                   "fpint-loadgen: client %u: transport error at request "
                   "%zu\n",
                   Tid, R);
      TransportErrors.fetch_add(1);
      break;
    }
    auto T1 = std::chrono::steady_clock::now();

    Result &Out = Results[R];
    Out.LatencyMs =
        std::chrono::duration<double, std::milli>(T1 - T0).count();
    json::Value Resp;
    std::string ParseErr;
    if (json::Value::parse(RespText, Resp, &ParseErr)) {
      if (const json::Value *Cache = Resp.find("cache"))
        Out.Tier = Cache->strOr("tier", "none");
      if (const json::Value *Body = Resp.find("body")) {
        Out.Body = Body->dump();
        Out.Ok = Body->strOr("status", "") == "ok";
      }
    }
  }
  close(Fd);
}

/// Connect + ping with retries until the daemon answers or the window
/// closes.
bool waitForDaemon(const Options &Opts) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(Opts.WaitMs);
  for (;;) {
    std::string Err;
    int Fd = serve::connectUnix(Opts.SocketPath, Err);
    if (Fd >= 0) {
      std::string Resp;
      bool Up = serve::writeFrame(Fd, "{\"op\": \"ping\"}") &&
                serve::readFrame(Fd, 1u << 20, Resp) ==
                    serve::FrameStatus::Ok;
      close(Fd);
      if (Up)
        return true;
    }
    if (std::chrono::steady_clock::now() >= Deadline)
      return false;
    usleep(50 * 1000);
  }
}

double percentile(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  size_t I = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  return Sorted[std::min(I, Sorted.size() - 1)];
}

int usage(int Status) {
  std::fprintf(
      Status ? stderr : stdout,
      "usage: fpint-loadgen --socket PATH [--requests N] [--clients N]\n"
      "                     [--seed S] [--distinct N] [--unique-frac F]\n"
      "                     [--dump-bodies FILE] [--min-hit-rate F]\n"
      "                     [--out DIR] [--wait-ms MS]\n");
  return Status;
}

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto needArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "fpint-loadgen: %s needs an argument\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--socket")
      Opts.SocketPath = needArg("--socket");
    else if (A == "--requests")
      Opts.Requests = static_cast<unsigned>(std::atol(needArg("--requests")));
    else if (A == "--clients")
      Opts.Clients = static_cast<unsigned>(std::atol(needArg("--clients")));
    else if (A == "--seed")
      Opts.Seed = static_cast<uint64_t>(std::atoll(needArg("--seed")));
    else if (A == "--distinct")
      Opts.Distinct = static_cast<unsigned>(std::atol(needArg("--distinct")));
    else if (A == "--unique-frac")
      Opts.UniqueFrac = std::atof(needArg("--unique-frac"));
    else if (A == "--dump-bodies")
      Opts.DumpBodies = needArg("--dump-bodies");
    else if (A == "--min-hit-rate")
      Opts.MinHitRate = std::atof(needArg("--min-hit-rate"));
    else if (A == "--out")
      Opts.OutDir = needArg("--out");
    else if (A == "--wait-ms")
      Opts.WaitMs = static_cast<int>(std::atol(needArg("--wait-ms")));
    else if (A == "--help" || A == "-h")
      return usage(0);
    else {
      std::fprintf(stderr, "fpint-loadgen: unknown option %s\n", A.c_str());
      return usage(2);
    }
  }
  if (Opts.SocketPath.empty() || Opts.Requests == 0 || Opts.Clients == 0)
    return usage(2);

  // Deterministic schedule: pool points repeat (cache hits after first
  // touch), unique modules miss cold but replay identically on a warm
  // rerun with the same seed.
  std::vector<std::string> Schedule;
  Schedule.reserve(Opts.Requests);
  uint64_t Rng = Opts.Seed;
  unsigned Unique = 0;
  for (unsigned R = 0; R < Opts.Requests; ++R) {
    uint64_t Draw = nextRand(Rng);
    bool IsUnique = static_cast<double>(Draw % 10000) / 10000.0 <
                    Opts.UniqueFrac;
    unsigned Point = static_cast<unsigned>(nextRand(Rng) %
                                           std::max(1u, Opts.Distinct));
    if (IsUnique) {
      ++Unique;
      Schedule.push_back(makeRequest(1000000ull + R, Point));
    } else {
      Schedule.push_back(makeRequest(Point, Point));
    }
  }

  if (!waitForDaemon(Opts)) {
    std::fprintf(stderr, "fpint-loadgen: no daemon at %s after %d ms\n",
                 Opts.SocketPath.c_str(), Opts.WaitMs);
    return 1;
  }

  std::vector<Result> Results(Opts.Requests);
  std::atomic<unsigned> TransportErrors{0};
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C < Opts.Clients; ++C)
    Clients.emplace_back(runClient, std::cref(Opts), std::cref(Schedule), C,
                         std::ref(Results), std::ref(TransportErrors));
  for (std::thread &T : Clients)
    T.join();
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();

  uint64_t MemHits = 0, DiskHits = 0, Misses = 0, OkBodies = 0,
           ErrorBodies = 0, Answered = 0;
  std::vector<double> Latencies;
  for (const Result &R : Results) {
    if (R.Tier.empty())
      continue; // Lost to a transport error; counted separately.
    ++Answered;
    Latencies.push_back(R.LatencyMs);
    if (R.Tier == "memory")
      ++MemHits;
    else if (R.Tier == "disk")
      ++DiskHits;
    else
      ++Misses;
    if (R.Ok)
      ++OkBodies;
    else
      ++ErrorBodies;
  }
  std::sort(Latencies.begin(), Latencies.end());
  double HitRate =
      Answered ? static_cast<double>(MemHits + DiskHits) / Answered : 0.0;

  json::Value Serve = json::Value::object();
  Serve.set("requests", static_cast<uint64_t>(Opts.Requests));
  Serve.set("clients", Opts.Clients);
  Serve.set("distinct", Opts.Distinct);
  Serve.set("unique_requests", Unique);
  Serve.set("answered", Answered);
  Serve.set("transport_errors",
            static_cast<uint64_t>(TransportErrors.load()));
  Serve.set("ok_bodies", OkBodies);
  Serve.set("error_bodies", ErrorBodies);
  Serve.set("hits_memory", MemHits);
  Serve.set("hits_disk", DiskHits);
  Serve.set("misses", Misses);
  Serve.set("hit_rate", HitRate);
  Serve.set("wall_ms", WallMs);
  Serve.set("throughput_rps",
            WallMs > 0 ? static_cast<double>(Answered) / (WallMs / 1000.0)
                       : 0.0);
  Serve.set("p50_ms", percentile(Latencies, 0.50));
  Serve.set("p95_ms", percentile(Latencies, 0.95));
  Serve.set("p99_ms", percentile(Latencies, 0.99));

  json::Value Doc = json::Value::object();
  Doc.set("schema", stats::ReportSchema);
  Doc.set("binary", "fpint-loadgen");
  Doc.set("runs", json::Value::array());
  Doc.set("serve", std::move(Serve));

  std::string Err;
  if (!stats::writeReportDoc(Opts.OutDir, "serve_load", Doc, &Err)) {
    std::fprintf(stderr, "fpint-loadgen: %s\n", Err.c_str());
    return 1;
  }

  if (!Opts.DumpBodies.empty()) {
    std::ofstream Out(Opts.DumpBodies, std::ios::binary | std::ios::trunc);
    for (const Result &R : Results)
      Out << R.Body << "\n---\n";
    if (!Out) {
      std::fprintf(stderr, "fpint-loadgen: cannot write %s\n",
                   Opts.DumpBodies.c_str());
      return 1;
    }
  }

  std::printf("fpint-loadgen: %llu/%u answered, %llu ok, %llu error; "
              "hits mem %llu disk %llu, misses %llu (hit rate %.1f%%); "
              "p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, %.0f req/s\n",
              static_cast<unsigned long long>(Answered), Opts.Requests,
              static_cast<unsigned long long>(OkBodies),
              static_cast<unsigned long long>(ErrorBodies),
              static_cast<unsigned long long>(MemHits),
              static_cast<unsigned long long>(DiskHits),
              static_cast<unsigned long long>(Misses), HitRate * 100.0,
              percentile(Latencies, 0.50), percentile(Latencies, 0.95),
              percentile(Latencies, 0.99),
              WallMs > 0 ? static_cast<double>(Answered) / (WallMs / 1000.0)
                         : 0.0);

  if (TransportErrors.load() > 0)
    return 1;
  if (Opts.MinHitRate >= 0 && HitRate < Opts.MinHitRate) {
    std::fprintf(stderr,
                 "fpint-loadgen: hit rate %.3f below required %.3f\n",
                 HitRate, Opts.MinHitRate);
    return 1;
  }
  return 0;
}
