//===- tools/fpintc.cpp - Command-line driver ------------------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// fpintc: the repository's command-line front end. Reads a .sir
/// program (or a named built-in workload), runs the offload pipeline,
/// and prints whatever the user asks for: the partitioned assembly, a
/// Graphviz dot dump of a function's partitioned RDG, functional run
/// output, partition statistics, and cycle-level simulation results.
///
///   fpintc prog.sir --scheme=advanced --print --simulate=4way
///   fpintc @m88ksim --scheme=basic --stats
///   fpintc prog.sir --dot=main > rdg.dot
///   fpintc prog.sir --run --args=5,10
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/RDG.h"
#include "core/PassManager.h"
#include "core/Pipeline.h"
#include "partition/AdvancedPartitioner.h"
#include "partition/BasicPartitioner.h"
#include "partition/DotExport.h"
#include "regalloc/Allocator.h"
#include "sir/Parser.h"
#include "sir/Printer.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace fpint;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: fpintc <file.sir | @workload> [options]\n"
      "\n"
      "input:\n"
      "  file.sir             program in sir assembly\n"
      "  @name                built-in workload (@compress, @gcc, @go,\n"
      "                       @ijpeg, @li, @m88ksim, @perl, @ear, @swim, @tomcatv)\n"
      "\n"
      "pipeline options:\n"
      "  --scheme=S           none | basic | advanced (default advanced)\n"
      "  --ocopy=N            copy overhead o_copy (default 4.0)\n"
      "  --odupl=N            duplication overhead o_dupl (default 2.5)\n"
      "  --fpa-cap=F          load-balance cap on the FPa share (6.6)\n"
      "  --no-regalloc        stop before register allocation\n"
      "  --regalloc=NAME      register-allocator backend (regalloc |\n"
      "                       regalloc-linear; default regalloc)\n"
      "  --args=a,b           main() arguments for measurement runs\n"
      "  --train-args=a,b     main() arguments for the profiling run\n"
      "  --passes=TEXT        explicit pass pipeline (comma-separated\n"
      "                       names, fixpoint(...) combinator, the opt2\n"
      "                       mid-end preset, unroll<N> partial-unroll\n"
      "                       factors; see docs/PASSES.md and\n"
      "                       docs/TRANSFORMS.md; overrides $FPINT_PASSES)\n"
      "\n"
      "outputs:\n"
      "  --print              partitioned assembly\n"
      "  --dot=FUNC           Graphviz dot of FUNC's partitioned RDG\n"
      "  --run                execute and print the output stream\n"
      "  --stats              partition statistics (Figure 8 metrics)\n"
      "  --simulate=M         cycle simulation: 4way | 8way (Figure 9/10)\n"
      "  --trace=N            dump the first N dynamic trace entries\n"
      "  --print-after=PASS   dump the module after PASS to stderr\n"
      "  --time-passes        per-pass wall-clock / change / analysis-\n"
      "                       cache table to stderr\n");
}

bool parseIntList(const std::string &Text, std::vector<int32_t> &Out) {
  Out.clear();
  if (Text.empty())
    return true;
  std::stringstream In(Text);
  std::string Item;
  while (std::getline(In, Item, ',')) {
    try {
      Out.push_back(static_cast<int32_t>(std::stol(Item)));
    } catch (...) {
      return false;
    }
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage();
    return 2;
  }

  std::string Input;
  partition::Scheme Scheme = partition::Scheme::Advanced;
  partition::CostParams Costs;
  bool DoPrint = false, DoRun = false, DoStats = false, RegAlloc = true;
  bool TimePasses = false;
  unsigned TraceCount = 0;
  std::string DotFunc, SimMachine, Passes, PrintAfter, RegAllocator;
  std::vector<int32_t> Args, TrainArgs;
  bool TrainArgsSet = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      if (Arg.compare(0, Len, Prefix) == 0)
        return Arg.c_str() + Len;
      return nullptr;
    };
    if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    }
    if (Arg == "--print") {
      DoPrint = true;
    } else if (Arg == "--run") {
      DoRun = true;
    } else if (Arg == "--stats") {
      DoStats = true;
    } else if (Arg == "--no-regalloc") {
      RegAlloc = false;
    } else if (Arg == "--time-passes") {
      TimePasses = true;
    } else if (const char *V = Value("--scheme=")) {
      if (!std::strcmp(V, "none"))
        Scheme = partition::Scheme::None;
      else if (!std::strcmp(V, "basic"))
        Scheme = partition::Scheme::Basic;
      else if (!std::strcmp(V, "advanced"))
        Scheme = partition::Scheme::Advanced;
      else {
        std::fprintf(stderr, "fpintc: unknown scheme '%s'\n", V);
        return 2;
      }
    } else if (const char *V = Value("--ocopy=")) {
      Costs.CopyOverhead = std::atof(V);
    } else if (const char *V = Value("--odupl=")) {
      Costs.DupOverhead = std::atof(V);
    } else if (const char *V = Value("--fpa-cap=")) {
      Costs.FpaShareCap = std::atof(V);
    } else if (const char *V = Value("--passes=")) {
      Passes = V;
    } else if (const char *V = Value("--regalloc=")) {
      if (!regalloc::AllocatorRegistry::global().contains(V)) {
        std::fprintf(stderr, "fpintc: unknown register allocator '%s'", V);
        std::fprintf(stderr, " (known:");
        for (const std::string &Name :
             regalloc::AllocatorRegistry::global().names())
          std::fprintf(stderr, " %s", Name.c_str());
        std::fprintf(stderr, ")\n");
        return 2;
      }
      RegAllocator = V;
    } else if (const char *V = Value("--print-after=")) {
      PrintAfter = V;
    } else if (const char *V = Value("--dot=")) {
      DotFunc = V;
    } else if (const char *V = Value("--simulate=")) {
      SimMachine = V;
    } else if (const char *V = Value("--trace=")) {
      TraceCount = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = Value("--args=")) {
      if (!parseIntList(V, Args)) {
        std::fprintf(stderr, "fpintc: bad --args list\n");
        return 2;
      }
    } else if (const char *V = Value("--train-args=")) {
      if (!parseIntList(V, TrainArgs)) {
        std::fprintf(stderr, "fpintc: bad --train-args list\n");
        return 2;
      }
      TrainArgsSet = true;
    } else if (Arg.size() && Arg[0] == '-') {
      std::fprintf(stderr, "fpintc: unknown option '%s'\n", Arg.c_str());
      return 2;
    } else if (Input.empty()) {
      Input = Arg;
    } else {
      std::fprintf(stderr, "fpintc: multiple inputs\n");
      return 2;
    }
  }
  if (Input.empty()) {
    usage();
    return 2;
  }

  // Load the program.
  std::unique_ptr<sir::Module> M;
  if (Input[0] == '@') {
    workloads::Workload W = workloads::workloadByName(Input.substr(1));
    M = std::move(W.M);
    if (Args.empty())
      Args = W.RefArgs;
    if (!TrainArgsSet)
      TrainArgs = W.TrainArgs;
  } else {
    std::ifstream In(Input);
    if (!In) {
      std::fprintf(stderr, "fpintc: cannot open '%s'\n", Input.c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    sir::ParseResult PR = sir::parseModule(Buf.str());
    if (!PR.ok()) {
      std::fprintf(stderr, "%s:%u: error: %s\n", Input.c_str(), PR.Line,
                   PR.Error.c_str());
      return 1;
    }
    M = std::move(PR.M);
  }
  if (!TrainArgsSet && Input[0] != '@')
    TrainArgs = Args;

  // Standalone dot dump works directly off the partitioner, before
  // rewriting, so node identities match the input program.
  if (!DotFunc.empty()) {
    sir::Function *F = M->functionByName(DotFunc);
    if (!F) {
      std::fprintf(stderr, "fpintc: no function '%s'\n", DotFunc.c_str());
      return 1;
    }
    F->renumber();
    analysis::CFG Cfg(*F);
    analysis::RDG G(*F, Cfg);
    if (Scheme == partition::Scheme::None) {
      std::fputs(partition::toDot(G).c_str(), stdout);
      return 0;
    }
    analysis::BlockWeights Weights(*M, nullptr);
    partition::Assignment A =
        Scheme == partition::Scheme::Basic
            ? partition::partitionBasic(G)
            : partition::partitionAdvanced(G, Weights, Costs);
    std::fputs(partition::toDot(G, &A).c_str(), stdout);
    return 0;
  }

  core::PipelineConfig Cfg;
  Cfg.Scheme = Scheme;
  Cfg.Costs = Costs;
  Cfg.TrainArgs = TrainArgs;
  Cfg.RefArgs = Args;
  Cfg.RunRegisterAllocation = RegAlloc;
  Cfg.RegAllocator = RegAllocator;
  if (!Passes.empty()) {
    // Validate up front for a friendly diagnostic; compileAndMeasure
    // re-parses the same text.
    std::vector<std::unique_ptr<core::ModulePass>> Parsed;
    std::string ParseError;
    if (!core::parsePipeline(Passes, Parsed, ParseError)) {
      std::fprintf(stderr, "fpintc: bad --passes: %s\n", ParseError.c_str());
      return 2;
    }
    Cfg.Passes = Passes;
  }
  if (!PrintAfter.empty())
    setenv("FPINT_PRINT_AFTER", PrintAfter.c_str(), 1);
  core::PipelineRun Run = core::compileAndMeasure(*M, Cfg);
  if (TimePasses) {
    Table T({"pass", "wall ms", "changes", "analysis hit/miss/inval"});
    for (const core::PassStat &P : Run.PassStats)
      T.addRow({P.Name, Table::fmt(P.WallMs, 3), std::to_string(P.Changes),
                Table::num(P.AnalysisHits) + "/" +
                    Table::num(P.AnalysisMisses) + "/" +
                    Table::num(P.AnalysisInvalidations)});
    T.print(stderr);
  }
  if (!Run.ok()) {
    for (const std::string &E : Run.Errors)
      std::fprintf(stderr, "fpintc: error: %s\n", E.c_str());
    if (Run.Errors.empty())
      std::fprintf(stderr, "fpintc: error: output mismatch\n");
    return 1;
  }

  if (DoPrint)
    std::fputs(sir::toString(*Run.Compiled).c_str(), stdout);
  if (DoRun) {
    std::printf("exit value: %d\noutput:", Run.RefResult.ExitValue);
    for (int32_t V : Run.RefResult.Output)
      std::printf(" %d", V);
    std::printf("\n(%llu dynamic instructions)\n",
                static_cast<unsigned long long>(Run.RefResult.Steps));
  }
  if (DoStats) {
    std::printf("scheme:            %s\n", partition::schemeName(Scheme));
    std::printf("dynamic instrs:    %llu\n",
                static_cast<unsigned long long>(Run.Stats.Total));
    std::printf("offloaded to FPa:  %.2f%%\n",
                100.0 * Run.Stats.fpaFraction());
    std::printf("copy overhead:     %.2f%%\n",
                100.0 * Run.Stats.copyFraction());
    std::printf("dup overhead:      %.2f%%\n",
                100.0 * Run.Stats.dupFraction());
    std::printf("loads / stores:    %llu / %llu\n",
                static_cast<unsigned long long>(Run.Stats.Loads),
                static_cast<unsigned long long>(Run.Stats.Stores));
    std::printf("static copies/dups/copy-backs: %u / %u / %u\n",
                Run.Rewrite.StaticCopies, Run.Rewrite.StaticDups,
                Run.Rewrite.StaticCopyBacks);
  }
  if (TraceCount > 0) {
    vm::VM::Options TraceOpts;
    TraceOpts.CollectTrace = true;
    vm::VM Machine(*Run.Compiled, TraceOpts);
    auto TR = Machine.run(Args);
    if (!TR.Ok) {
      std::fprintf(stderr, "fpintc: trace run failed: %s\n",
                   TR.Error.c_str());
      return 1;
    }
    std::printf("# pc        instruction%*s taken/addr\n", 24, "");
    size_t Limit = std::min<size_t>(TraceCount, Machine.trace().size());
    for (size_t T = 0; T < Limit; ++T) {
      const vm::TraceEntry &TE = Machine.trace()[T];
      std::string Text = sir::toString(*TE.I);
      std::printf("%08x  %-34s", TE.Pc, Text.c_str());
      if (TE.I->isCondBranch())
        std::printf("  %s", TE.Taken ? "taken" : "not-taken");
      else if (TE.I->isLoad() || TE.I->isStore())
        std::printf("  @%08x", TE.MemAddr);
      std::printf("\n");
    }
    std::printf("... (%zu entries total)\n", Machine.trace().size());
  }
  if (!SimMachine.empty()) {
    if (!RegAlloc) {
      std::fprintf(stderr,
                   "fpintc: --simulate requires register allocation\n");
      return 1;
    }
    timing::MachineConfig Machine = SimMachine == "8way"
                                        ? timing::MachineConfig::eightWay()
                                        : timing::MachineConfig::fourWay();
    if (Scheme == partition::Scheme::None)
      Machine.FpaEnabled = false;
    timing::SimStats S = core::simulate(Run, Machine);
    std::printf("machine:           %s%s\n", Machine.Name,
                Machine.FpaEnabled ? " (augmented)" : " (conventional)");
    std::printf("cycles:            %llu\n",
                static_cast<unsigned long long>(S.Cycles));
    std::printf("IPC:               %.2f\n", S.ipc());
    std::printf("branch accuracy:   %.2f%%\n", 100.0 * S.branchAccuracy());
    std::printf("int/fp issued:     %llu / %llu\n",
                static_cast<unsigned long long>(S.IntIssued),
                static_cast<unsigned long long>(S.FpIssued));
    std::printf("int idle|fpa busy: %.2f%%\n",
                100.0 * S.intIdleWhileFpBusy());
    std::printf("dcache misses:     %llu\n",
                static_cast<unsigned long long>(S.DCacheMisses));
  }
  return 0;
}
