//===- tools/fpint-report.cpp - Bench result differ / regression gate -----===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diffs two structured bench-result trees (single JSON reports or
/// directories of them, as emitted by the bench binaries under
/// FPINT_TELEMETRY=1) and prints a per-metric delta table. Cycles
/// increases and IPC decreases beyond the tolerance are regressions
/// and make the exit status nonzero; with --check, structural problems
/// (runs or report files missing from the current tree, changed
/// dynamic instruction counts) also fail, which is how CI gates PRs
/// against the committed golden baseline.
///
/// Top-level "run_cache", "serve", and "campaign" objects (memoization
/// counters, serving metrics, and the resume/retry accounting that
/// fpint-explore publishes as a <stem>_campaign.json sidecar) render
/// as informational rows under --all and never gate, however large the
/// delta: how often a campaign resumed or retried describes the
/// environment, not the code under test.
///
///   fpint-report [--tolerance=PCT] [--check] [--all] BASELINE CURRENT
///
///     BASELINE, CURRENT   report file or directory of *.json reports
///     --tolerance=PCT     relative slack before a delta counts as a
///                         regression (default 0.1)
///     --check             fail (exit 1) on structural problems too
///     --all               print every compared metric, not only the
///                         rows with a nonzero delta
///
/// Exit status: 0 clean, 1 regression (or problem with --check),
/// 2 usage / unreadable input.
///
//===----------------------------------------------------------------------===//

#include "stats/Report.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

using namespace fpint;
namespace fs = std::filesystem;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// Loads PATH as basename -> parsed report. A single file becomes one
/// entry; a directory contributes every *.json inside (sorted).
bool loadTree(const std::string &Path,
              std::map<std::string, json::Value> &Out) {
  std::error_code EC;
  std::vector<std::string> Files;
  if (fs::is_directory(Path, EC)) {
    for (const auto &Ent : fs::directory_iterator(Path, EC))
      if (Ent.path().extension() == ".json")
        Files.push_back(Ent.path().string());
    std::sort(Files.begin(), Files.end());
    if (Files.empty()) {
      std::fprintf(stderr, "fpint-report: no *.json reports in %s\n",
                   Path.c_str());
      return false;
    }
  } else {
    Files.push_back(Path);
  }
  for (const std::string &F : Files) {
    std::string Text, Err;
    json::Value Doc;
    if (!readFile(F, Text)) {
      std::fprintf(stderr, "fpint-report: cannot read %s\n", F.c_str());
      return false;
    }
    if (!json::Value::parse(Text, Doc, &Err)) {
      std::fprintf(stderr, "fpint-report: %s: %s\n", F.c_str(), Err.c_str());
      return false;
    }
    Out.emplace(fs::path(F).stem().string(), std::move(Doc));
  }
  return true;
}

std::string fmtMetric(double V) {
  // Cycle/instruction counts print as integers, IPC with precision.
  if (V == static_cast<uint64_t>(V))
    return Table::num(static_cast<uint64_t>(V));
  return Table::fmt(V, 4);
}

} // namespace

int main(int argc, char **argv) {
  stats::DiffOptions Opts;
  bool Check = false, ShowAll = false;
  std::vector<std::string> Paths;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--check") {
      Check = true;
    } else if (A == "--all") {
      ShowAll = true;
    } else if (A.rfind("--tolerance=", 0) == 0) {
      Opts.TolerancePct = std::atof(A.c_str() + std::strlen("--tolerance="));
    } else if (A == "--help" || A == "-h") {
      std::printf("usage: fpint-report [--tolerance=PCT] [--check] [--all] "
                  "BASELINE CURRENT\n");
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "fpint-report: unknown option %s\n", A.c_str());
      return 2;
    } else {
      Paths.push_back(A);
    }
  }
  if (Paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: fpint-report [--tolerance=PCT] [--check] [--all] "
                 "BASELINE CURRENT\n");
    return 2;
  }

  std::map<std::string, json::Value> Base, Cur;
  if (!loadTree(Paths[0], Base) || !loadTree(Paths[1], Cur))
    return 2;

  Table T({"report", "run", "metric", "baseline", "current", "delta",
           "status"});
  unsigned Regressions = 0;
  std::vector<std::string> Problems;

  for (const auto &KV : Base) {
    auto It = Cur.find(KV.first);
    if (It == Cur.end()) {
      Problems.push_back("report missing from current tree: " + KV.first +
                         ".json");
      continue;
    }
    stats::DiffResult R = stats::diffReports(KV.second, It->second, Opts);
    Regressions += R.Regressions;
    for (const std::string &P : R.Problems)
      Problems.push_back(KV.first + ": " + P);
    for (const stats::MetricDelta &D : R.Deltas) {
      // Informational metrics (sim_wall_ms) never gate and are noisy
      // by nature; show them only on request.
      if (D.Informational && !ShowAll)
        continue;
      if (!ShowAll && !D.Regression && D.Base == D.Current)
        continue;
      T.addRow({KV.first, D.RunId, D.Metric, fmtMetric(D.Base),
                fmtMetric(D.Current), Table::pct(D.DeltaPct / 100.0, 2),
                D.Regression ? "REGRESSED" : D.Informational ? "info" : "ok"});
    }
  }

  if (T.numRows())
    T.print();
  else
    std::printf("no metric deltas (%zu reports compared)\n", Base.size());
  for (const std::string &P : Problems)
    std::printf("problem: %s\n", P.c_str());
  std::printf("%u regression(s), %zu problem(s), tolerance %.3g%%\n",
              Regressions, Problems.size(), Opts.TolerancePct);

  if (Regressions)
    return 1;
  if (Check && !Problems.empty())
    return 1;
  return 0;
}
