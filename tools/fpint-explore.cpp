//===- tools/fpint-explore.cpp - Durable design-space sweep driver --------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first consumer of the durable campaign runtime: sweeps machine
/// design points (issue widths, FU mixes, windows, predictors, D-cache
/// sizes) crossed with workloads, one crash-contained campaign cell
/// per point, and publishes the Pareto frontier of augmented-vs-
/// conventional speedup against an integer resource-cost score.
///
///   fpint-explore [options]
///
///     --grid NAME        smoke | small | full (default small)
///     --workloads A,B,C  workload subset (default per grid)
///     --out PATH         frontier report (default bench_out/explore.json;
///                        a run-varying <stem>_campaign.json sidecar
///                        lands next to it)
///     --state-dir DIR    campaign journal directory (default
///                        $FPINT_CAMPAIGN_DIR, then campaign_state)
///     --fresh            discard any existing journal first
///     --jobs N           1 = run cells inline; default: thread pool
///     --strict           exit 1 if any cell degraded to ERR
///     --list             print the grid and exit
///
/// Interrupt it at any point -- SIGKILL included -- and rerun with the
/// same arguments: completed cells replay from the journal and only
/// unfinished ones execute. The published explore.json is byte-
/// identical either way (docs/CAMPAIGNS.md).
///
//===----------------------------------------------------------------------===//

#include "campaign/Explore.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace fpint;

namespace {

int usage(int Status) {
  std::fprintf(Status ? stderr : stdout,
               "usage: fpint-explore [--grid smoke|small|full]\n"
               "                     [--workloads A,B,C] [--out PATH]\n"
               "                     [--state-dir DIR] [--fresh] [--jobs N]\n"
               "                     [--strict] [--list]\n");
  return Status;
}

std::vector<std::string> splitList(const std::string &Text) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Comma = Text.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Text.size();
    if (Comma > Pos)
      Out.push_back(Text.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  campaign::ExploreOptions Opts;
  bool List = false;
  bool Fresh = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto needArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "fpint-explore: %s needs an argument\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--grid") {
      Opts.Grid = needArg("--grid");
    } else if (A == "--workloads") {
      Opts.Workloads = splitList(needArg("--workloads"));
    } else if (A == "--out") {
      Opts.OutPath = needArg("--out");
    } else if (A == "--state-dir") {
      Opts.StateDir = needArg("--state-dir");
    } else if (A == "--fresh") {
      Fresh = true;
    } else if (A == "--jobs") {
      Opts.Jobs = std::atoi(needArg("--jobs"));
    } else if (A == "--strict") {
      Opts.Strict = true;
    } else if (A == "--list") {
      List = true;
    } else if (A == "--help" || A == "-h") {
      return usage(0);
    } else {
      std::fprintf(stderr, "fpint-explore: unknown option %s\n", A.c_str());
      return usage(2);
    }
  }

  if (List) {
    std::vector<campaign::MachinePoint> Grid =
        campaign::exploreGrid(Opts.Grid);
    if (Grid.empty()) {
      std::fprintf(stderr, "fpint-explore: unknown grid '%s'\n",
                   Opts.Grid.c_str());
      return 2;
    }
    for (const campaign::MachinePoint &P : Grid)
      std::printf("%-24s cost %llu\n", P.Label.c_str(),
                  static_cast<unsigned long long>(
                      campaign::resourceCost(P.M)));
    std::printf("%zu machine points in grid '%s'\n", Grid.size(),
                Opts.Grid.c_str());
    return 0;
  }

  if (Fresh) {
    std::string Dir = Opts.StateDir;
    if (Dir.empty()) {
      const char *E = std::getenv("FPINT_CAMPAIGN_DIR");
      Dir = E && *E ? E : "campaign_state";
    }
    std::error_code EC;
    std::filesystem::remove(std::filesystem::path(Dir) / "journal.wal", EC);
  }

  return campaign::runExplore(Opts, nullptr);
}
