//===- tools/fpint-serve.cpp - Compilation-as-a-service daemon ------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fpint compile+measure daemon. Accepts length-prefixed JSON
/// requests (sir module text + pipeline config + machine config, see
/// docs/SERVING.md) over a Unix-domain socket or a stdin/stdout pipe,
/// answers from a two-tier content-addressed result cache, and runs
/// misses in the subprocess sandbox so a poisoned module degrades to
/// one typed ERR response instead of taking the service down.
///
///   fpint-serve --socket PATH [options]     serve a Unix socket
///   fpint-serve --stdio [options]           one framed stream on
///                                           stdin/stdout (single
///                                           connection, then exit)
///
///     --cache-dir DIR   on-disk result store (default serve_cache,
///                       env FPINT_SERVE_CACHE)
///     --jobs N          worker threads for the socket accept loop
///                       (default auto, env FPINT_SERVE_JOBS)
///     --no-sandbox      execute misses in-process (tests only; a
///                       crashing request kills the daemon)
///
/// Every option also has an FPINT_SERVE_* environment override; flags
/// win over the environment. SIGINT/SIGTERM drain the accept loop and
/// exit 0.
///
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "serve/Server.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

using namespace fpint;

namespace {

std::atomic<bool> GStop{false};

void onSignal(int) { GStop.store(true); }

/// Single-connection pipe transport: frames arrive on stdin, responses
/// leave on stdout. Returns the process exit status.
int serveStdio(serve::Server &Server) {
  std::string ReqBytes;
  for (;;) {
    switch (serve::readFrame(STDIN_FILENO, Server.options().MaxRequestBytes,
                             ReqBytes)) {
    case serve::FrameStatus::Ok:
      if (!serve::writeFrame(STDOUT_FILENO, Server.handleRequest(ReqBytes)))
        return 1;
      break;
    case serve::FrameStatus::Eof:
      return 0;
    case serve::FrameStatus::Oversized: {
      // The stream is unframed from here on; answer and give up.
      json::Value Doc = json::Value::object();
      Doc.set("schema", serve::ResponseSchema);
      Doc.set("body",
              serve::errorBody("bad_request",
                               "request exceeds " +
                                   std::to_string(
                                       Server.options().MaxRequestBytes) +
                                   " bytes"));
      serve::writeFrame(STDOUT_FILENO, Doc.dump());
      return 1;
    }
    case serve::FrameStatus::Truncated:
    case serve::FrameStatus::IoError:
      return 1;
    }
  }
}

int usage(int Status) {
  std::fprintf(Status ? stderr : stdout,
               "usage: fpint-serve (--socket PATH | --stdio)\n"
               "                   [--cache-dir DIR] [--jobs N] "
               "[--no-sandbox]\n");
  return Status;
}

} // namespace

int main(int argc, char **argv) {
  serve::ServerOptions Opts = serve::ServerOptions::fromEnv();
  std::string SocketPath;
  bool Stdio = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto needArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "fpint-serve: %s needs an argument\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--socket") {
      SocketPath = needArg("--socket");
    } else if (A == "--stdio") {
      Stdio = true;
    } else if (A == "--cache-dir") {
      Opts.CacheDir = needArg("--cache-dir");
    } else if (A == "--jobs") {
      Opts.Jobs = static_cast<unsigned>(std::atol(needArg("--jobs")));
    } else if (A == "--no-sandbox") {
      Opts.Sandbox = false;
    } else if (A == "--help" || A == "-h") {
      return usage(0);
    } else {
      std::fprintf(stderr, "fpint-serve: unknown option %s\n", A.c_str());
      return usage(2);
    }
  }
  if (Stdio == !SocketPath.empty())
    return usage(2); // Exactly one transport.

  serve::Server Server(Opts);

  if (Stdio)
    return serveStdio(Server);

  std::string Err;
  int ListenFd = serve::listenUnix(SocketPath, Err);
  if (ListenFd < 0) {
    std::fprintf(stderr, "fpint-serve: %s\n", Err.c_str());
    return 1;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::fprintf(stderr, "fpint-serve: listening on %s (cache %s)\n",
               SocketPath.c_str(), Opts.CacheDir.c_str());

  Server.serveLoop(ListenFd, GStop);

  serve::Server::Counters C = Server.counters();
  std::fprintf(stderr,
               "fpint-serve: drained: %llu requests, %llu mem hits, "
               "%llu disk hits, %llu misses, %llu sandbox deaths\n",
               static_cast<unsigned long long>(C.Requests),
               static_cast<unsigned long long>(C.MemHits),
               static_cast<unsigned long long>(C.DiskHits),
               static_cast<unsigned long long>(C.Misses),
               static_cast<unsigned long long>(C.SandboxDeaths));
  unlink(SocketPath.c_str());
  // In-flight connections may still be parked in blocking reads on
  // their fds; the loop already drained accept, so skip the idle
  // waits and leave.
  std::fflush(nullptr);
  _exit(0);
}
