//===- tools/fpint-fuzz.cpp - Differential fuzzing driver ------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// fpint-fuzz: generates random sir modules and checks, for each, that
/// every partitioning pipeline variant preserves the program's exact
/// semantics (output stream, exit value, memory image) and that the
/// timing simulator and stats subsystem agree on the dynamic
/// instruction counts per partition. On a mismatch it shrinks the
/// module with the delta-debugging reducer and writes a regression
/// file for the corpus.
///
///   fpint-fuzz --iters 500 --seed 1
///   fpint-fuzz --one 0x1234abcd --preset memory     # replay one module
///   fpint-fuzz --iters 2000 --write-repro tests/corpus/regressions
///
/// The base seed defaults to $FPINT_FUZZ_SEED (then 1); every failure
/// message prints the exact --one module seed that reproduces it.
///
//===----------------------------------------------------------------------===//

#include "sir/Printer.h"
#include "sir/Verifier.h"
#include "testgen/Generator.h"
#include "testgen/Oracle.h"
#include "testgen/Reducer.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace fpint;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: fpint-fuzz [options]\n"
      "\n"
      "  --iters N            modules to generate and check (default 100)\n"
      "  --seed S             base seed (default: $FPINT_FUZZ_SEED, then 1)\n"
      "  --one S              check exactly one module with module seed S\n"
      "  --preset NAME        generator preset (default cycles through all);\n"
      "                       one of: default branchy memory fp calls tiny\n"
      "                       intonly\n"
      "  --write-repro DIR    where reduced repros go (default\n"
      "                       tests/corpus/regressions)\n"
      "  --no-reduce          report mismatches without shrinking\n"
      "  --no-timing          skip the simulator cross-checks (faster)\n"
      "  --keep-going         check all iterations even after a failure\n"
      "  --emit               print each generated module (debugging)\n"
      "  --quiet              only print failures and the final summary\n");
}

uint64_t parseSeed(const char *S) {
  return std::strtoull(S, nullptr, 0);
}

struct FuzzStats {
  uint64_t Modules = 0;
  uint64_t Skipped = 0;
  uint64_t DynInstrs = 0;
  uint64_t Failures = 0;
};

/// Builds the oracle predicate used both for detection and reduction.
testgen::OracleOptions makeOracleOptions(bool CheckTiming) {
  testgen::OracleOptions Opts;
  Opts.CheckTiming = CheckTiming;
  return Opts;
}

std::string sanitizeFileName(std::string S) {
  for (char &C : S)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return S;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Iters = 100;
  uint64_t BaseSeed = 1;
  if (const char *Env = std::getenv("FPINT_FUZZ_SEED"))
    BaseSeed = parseSeed(Env);
  bool HaveOne = false;
  uint64_t OneSeed = 0;
  std::string Preset; // Empty: cycle through all presets.
  std::string ReproDir = "tests/corpus/regressions";
  bool Reduce = true, CheckTiming = true, KeepGoing = false, Emit = false,
       Quiet = false;

  for (int A = 1; A < argc; ++A) {
    const char *Arg = argv[A];
    auto Value = [&]() -> const char * {
      if (A + 1 >= argc) {
        std::fprintf(stderr, "fpint-fuzz: %s needs a value\n", Arg);
        std::exit(2);
      }
      return argv[++A];
    };
    if (!std::strcmp(Arg, "--iters"))
      Iters = parseSeed(Value());
    else if (!std::strcmp(Arg, "--seed"))
      BaseSeed = parseSeed(Value());
    else if (!std::strcmp(Arg, "--one")) {
      HaveOne = true;
      OneSeed = parseSeed(Value());
    } else if (!std::strcmp(Arg, "--preset"))
      Preset = Value();
    else if (!std::strcmp(Arg, "--write-repro"))
      ReproDir = Value();
    else if (!std::strcmp(Arg, "--no-reduce"))
      Reduce = false;
    else if (!std::strcmp(Arg, "--no-timing"))
      CheckTiming = false;
    else if (!std::strcmp(Arg, "--keep-going"))
      KeepGoing = true;
    else if (!std::strcmp(Arg, "--emit"))
      Emit = true;
    else if (!std::strcmp(Arg, "--quiet"))
      Quiet = true;
    else {
      usage();
      return 2;
    }
  }

  const std::vector<std::string> &Presets = testgen::presetNames();
  testgen::OracleOptions OracleOpts = makeOracleOptions(CheckTiming);
  FuzzStats Stats;
  int Exit = 0;

  for (uint64_t It = 0; It < (HaveOne ? 1 : Iters); ++It) {
    uint64_t ModSeed =
        HaveOne ? OneSeed : testgen::moduleSeed(BaseSeed, It);
    const std::string &PresetName =
        !Preset.empty() ? Preset : Presets[It % Presets.size()];
    testgen::GenConfig Config = testgen::presetConfig(PresetName);

    std::unique_ptr<sir::Module> M = testgen::generateModule(Config, ModSeed);
    std::string Text = sir::toString(*M);
    if (Emit)
      std::printf("# seed=0x%" PRIx64 " preset=%s\n%s\n", ModSeed,
                  PresetName.c_str(), Text.c_str());

    // Generated modules must satisfy the strict verifier (this is the
    // generator's contract; a violation is a generator bug).
    sir::VerifyOptions Strict;
    Strict.CheckDataflow = true;
    std::vector<std::string> Diags = sir::verify(*M, Strict);
    if (!Diags.empty()) {
      std::fprintf(stderr,
                   "GENERATOR BUG seed=0x%" PRIx64 " iter=%" PRIu64
                   " preset=%s: %s\n",
                   ModSeed, It, PresetName.c_str(), Diags.front().c_str());
      ++Stats.Failures;
      Exit = 1;
      if (!KeepGoing)
        break;
      continue;
    }

    testgen::OracleReport Report = testgen::runOracle(*M, OracleOpts);
    ++Stats.Modules;
    Stats.DynInstrs += Report.BaselineDynInstrs;

    if (Report.BaselineSkipped) {
      ++Stats.Skipped;
      if (!Quiet)
        std::fprintf(stderr,
                     "skip seed=0x%" PRIx64 " iter=%" PRIu64 ": %s\n", ModSeed,
                     It, Report.BaselineError.c_str());
      continue;
    }
    if (Report.ok())
      continue;

    ++Stats.Failures;
    Exit = 1;
    std::fprintf(stderr,
                 "MISMATCH seed=0x%" PRIx64 " iter=%" PRIu64 " preset=%s\n",
                 ModSeed, It, PresetName.c_str());
    for (const std::string &Msg : Report.Mismatches)
      std::fprintf(stderr, "  %s\n", Msg.c_str());
    std::fprintf(stderr,
                 "  reproduce: fpint-fuzz --one 0x%" PRIx64 " --preset %s\n",
                 ModSeed, PresetName.c_str());

    if (Reduce) {
      testgen::InterestingPredicate StillFails =
          [&](const sir::Module &Candidate) {
            testgen::OracleReport R = testgen::runOracle(Candidate, OracleOpts);
            return !R.BaselineSkipped && !R.Mismatches.empty();
          };
      testgen::ReduceOutcome Reduced = testgen::reduceModule(Text, StillFails);
      std::fprintf(stderr,
                   "  reduced to %u instructions (%u probes)\n",
                   Reduced.InstrCount, Reduced.Probes);

      char Name[128];
      std::snprintf(Name, sizeof(Name), "seed_0x%" PRIx64 "_%s.sir", ModSeed,
                    sanitizeFileName(PresetName).c_str());
      std::string Path = ReproDir + "/" + Name;
      std::ofstream Out(Path);
      if (Out) {
        Out << "# fpint-fuzz regression (auto-reduced)\n"
            << "# seed=0x" << std::hex << ModSeed << std::dec << " preset="
            << PresetName << "\n";
        for (const std::string &Msg : Report.Mismatches)
          Out << "# " << Msg << "\n";
        Out << Reduced.Text;
        std::fprintf(stderr, "  repro written to %s\n", Path.c_str());
      } else {
        std::fprintf(stderr, "  could not write %s\n", Path.c_str());
      }
    }
    if (!KeepGoing)
      break;
  }

  std::printf("fpint-fuzz: %" PRIu64 " modules, %" PRIu64 " skipped, %" PRIu64
              " dynamic instructions checked, %" PRIu64
              " mismatches (base seed 0x%" PRIx64 ")\n",
              Stats.Modules, Stats.Skipped, Stats.DynInstrs, Stats.Failures,
              BaseSeed);
  return Exit;
}
